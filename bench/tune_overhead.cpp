//===- bench/tune_overhead.cpp - Autotuner overhead micro-benchmarks ----------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark timings of the mapping autotuner's stages
// (src/tuner/), so CI catches the search itself getting slow:
//
//   * enumerate — design-space construction (fusion-level probing
//                 dominates: one clone + aggressive-fusion dry run),
//   * cost      — one candidate through the analytic cost model
//                 (clone, fuse, compile, buffer analysis, Eq. 1,
//                 partitioner, frequency/bandwidth models),
//   * search    — a full beam search, analytic only (no simulation),
//   * tune      — the whole tuneProgram pipeline including top-K
//                 simulator validation on worker threads.
//
// The workload is a small diffusion2d chain: large enough that every
// stage does real work, small enough that `tune` stays in micro-bench
// territory. The checked-in baseline lives in
// bench/baselines/tune_overhead_baseline.json and is enforced by
// tools/check_perf.py in CI.
//
//===----------------------------------------------------------------------===//

#include "tuner/Tuner.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace stencilflow;
using namespace stencilflow::tuner;

namespace {

StencilProgram makeProgram() { return workloads::diffusion2dChain(3, 16, 32); }

PipelineOptions baseOptions() {
  PipelineOptions Base;
  Base.Simulator.UnconstrainedMemory = true;
  return Base;
}

void BM_Tuner_EnumerateSpace(benchmark::State &State) {
  StencilProgram Program = makeProgram();
  for (auto _ : State) {
    Expected<DesignSpace> Space =
        DesignSpace::enumerate(Program, DesignSpaceOptions(), 8);
    if (!Space) {
      State.SkipWithError(Space.message().c_str());
      return;
    }
    benchmark::DoNotOptimize(Space->size());
  }
}
BENCHMARK(BM_Tuner_EnumerateSpace)->Unit(benchmark::kMicrosecond);

void BM_Tuner_CostOneCandidate(benchmark::State &State) {
  StencilProgram Program = makeProgram();
  PipelineOptions Base = baseOptions();
  CostModel Model(Program, Base);
  CandidateMapping Mapping;
  Mapping.VectorWidth = 8;
  Mapping.FusionPairs = 1;
  for (auto _ : State) {
    CandidateCost Cost = Model.cost(Mapping);
    if (!Cost.Feasible) {
      State.SkipWithError(Cost.PruneReason.c_str());
      return;
    }
    benchmark::DoNotOptimize(Cost.PredictedCycles);
  }
}
BENCHMARK(BM_Tuner_CostOneCandidate)->Unit(benchmark::kMicrosecond);

void BM_Tuner_AnalyticSearch(benchmark::State &State) {
  StencilProgram Program = makeProgram();
  PipelineOptions Base = baseOptions();
  TuneOptions Options;
  Options.Search.CandidateBudget = 24; // Below the space size: beam.
  Options.Simulate = false;
  for (auto _ : State) {
    Expected<TuningOutcome> Out = tuneProgram(Program, Base, Options);
    if (!Out) {
      State.SkipWithError(Out.message().c_str());
      return;
    }
    benchmark::DoNotOptimize(Out->Report.Explored);
  }
}
BENCHMARK(BM_Tuner_AnalyticSearch)->Unit(benchmark::kMillisecond);

void BM_Tuner_FullTune(benchmark::State &State) {
  StencilProgram Program = makeProgram();
  PipelineOptions Base = baseOptions();
  TuneOptions Options;
  Options.Search.CandidateBudget = 24;
  Options.TopK = 2;
  for (auto _ : State) {
    Expected<TuningOutcome> Out = tuneProgram(Program, Base, Options);
    if (!Out || !Out->BestRun.ValidationPassed) {
      State.SkipWithError(Out ? "winning plan failed validation"
                              : Out.message().c_str());
      return;
    }
    benchmark::DoNotOptimize(Out->Report.SimulatedCount);
  }
}
BENCHMARK(BM_Tuner_FullTune)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
