//===- bench/ablation_fault_resilience.cpp - Resilience ablation --------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablation of the distributed fabric's resilience layer (Sec. VI-B
// hardening). Three experiments on a multi-device Jacobi chain:
//
//  1. Zero-overhead check: the reliable transport (sequence numbers,
//     checksums, Go-Back-N retransmit) with an empty fault plan must
//     finish in exactly the plain transport's cycle count.
//  2. Corruption sweep: in-flight payload corruption from 0% to 50% per
//     transmission; the protocol absorbs every fault bit-exactly, at a
//     cycle cost that grows with the corruption rate, until a permanently
//     poisoned link exhausts its retransmit budget.
//  3. Device loss: a mid-run permanent device failure recovered by the
//     pipeline's re-partition-and-retry policy, versus the structured
//     failure when recovery is disabled.
//
//===----------------------------------------------------------------------===//

#include "common/BenchUtils.h"
#include "runtime/Pipeline.h"
#include "runtime/ReferenceExecutor.h"
#include "runtime/Validation.h"
#include "sim/Fault.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace stencilflow;
using namespace stencilflow::bench;

namespace {

struct FaultPoint {
  bool Succeeded = false;
  int64_t Cycles = 0;
  int64_t Transmissions = 0;
  int64_t Retransmissions = 0;
  int64_t Corrupted = 0;
  bool BitExact = false;
  std::string Message;
};

FaultPoint runWithPlan(const CompiledProgram &Compiled,
                       const DataflowAnalysis &Dataflow,
                       const Partition &Placement,
                       const sim::FaultPlan *Plan) {
  FaultPoint Point;
  sim::SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.Faults = Plan;
  auto M = sim::Machine::build(Compiled, Dataflow, &Placement, Config);
  if (!M) {
    Point.Message = M.message();
    return Point;
  }
  auto Inputs = materializeInputs(Compiled.program());
  auto Result = M->run(Inputs);
  if (!Result) {
    Point.Message = Result.message();
    return Point;
  }
  Point.Succeeded = true;
  Point.Cycles = Result->Stats.Cycles;
  for (const auto &[Name, Link] : Result->Stats.Links) {
    Point.Transmissions += Link.Transmissions;
    Point.Retransmissions += Link.Retransmissions;
    Point.Corrupted += Link.CorruptedVectors;
  }
  auto Reference = runReference(Compiled, Inputs);
  Point.BitExact = true;
  for (const std::string &Output : Compiled.program().Outputs) {
    ValidationReport Report = validateField(
        Output, Result->Outputs.at(Output), Reference->field(Output));
    Point.BitExact &= Report.Passed;
  }
  return Point;
}

} // namespace

int main() {
  printHeader("Ablation - fault injection and graceful degradation");

  StencilProgram Program = workloads::jacobi3dChain(6, 4, 12, 12);
  auto Compiled = CompiledProgram::compile(std::move(Program));
  auto Dataflow = analyzeDataflow(*Compiled);
  PartitionOptions PartOptions;
  PartOptions.TargetUtilization = 1.0;
  PartOptions.Device.DSPs = 7 * 3; // Three chained stencils per device.
  PartOptions.MaxDevices = 64;
  auto Placement = partitionProgram(*Compiled, *Dataflow, PartOptions);
  std::printf("workload: 6-stage Jacobi chain on %zu devices\n\n",
              Placement->numDevices());

  // 1. Protocol overhead with faults disabled.
  FaultPoint Plain =
      runWithPlan(*Compiled, *Dataflow, *Placement, nullptr);
  sim::FaultPlan EmptyPlan;
  FaultPoint Reliable =
      runWithPlan(*Compiled, *Dataflow, *Placement, &EmptyPlan);
  double Overhead =
      100.0 * (static_cast<double>(Reliable.Cycles) /
                   static_cast<double>(Plain.Cycles) -
               1.0);
  std::printf("reliable-transport overhead, no faults: %lld vs %lld "
              "cycles (%+.2f%%)%s\n\n",
              static_cast<long long>(Reliable.Cycles),
              static_cast<long long>(Plain.Cycles), Overhead,
              Overhead <= 2.0 ? "" : "  ** exceeds the 2% budget **");

  // 2. Corruption-rate sweep.
  std::printf("%12s %10s %10s %12s %12s %10s\n", "corruption",
              "outcome", "cycles", "slowdown", "retransmit", "bit-exact");
  for (double Probability :
       {0.0, 0.01, 0.05, 0.10, 0.20, 0.50, 1.00}) {
    sim::FaultPlan Plan;
    Plan.Seed = 1;
    sim::FaultEvent Corrupt;
    Corrupt.Kind = sim::FaultKind::PayloadCorruption;
    Corrupt.Probability = Probability;
    Plan.Events.push_back(Corrupt);
    FaultPoint Point =
        runWithPlan(*Compiled, *Dataflow, *Placement, &Plan);
    if (Point.Succeeded)
      std::printf("%11.0f%% %10s %10lld %11.2fx %12lld %10s\n",
                  Probability * 100.0, "completed",
                  static_cast<long long>(Point.Cycles),
                  static_cast<double>(Point.Cycles) /
                      static_cast<double>(Plain.Cycles),
                  static_cast<long long>(Point.Retransmissions),
                  Point.BitExact ? "yes" : "NO");
    else
      std::printf("%11.0f%% %10s %10s %12s %12s %10s\n",
                  Probability * 100.0, "aborted", "-", "-", "-", "-");
  }

  // 3. Graceful degradation after a permanent device failure.
  std::printf("\ndevice loss at cycle 200 (device 1 of %zu):\n",
              Placement->numDevices());
  for (bool Recover : {true, false}) {
    sim::FaultPlan Plan;
    sim::FaultEvent Death;
    Death.Kind = sim::FaultKind::DeviceFailure;
    Death.Device = 1;
    Death.StartCycle = 200;
    Plan.Events.push_back(Death);

    PipelineOptions Options;
    Options.Simulator.UnconstrainedMemory = true;
    Options.Simulator.Faults = &Plan;
    Options.Partitioning = PartOptions;
    Options.RecoverFromDeviceLoss = Recover;
    auto Result =
        runPipeline(workloads::jacobi3dChain(6, 4, 12, 12), Options);
    if (Result) {
      std::printf("  recovery %s: %d attempt(s), %d device(s) lost, "
                  "validation %s\n",
                  Recover ? "on " : "off", Result->Recovery.Attempts,
                  Result->Recovery.DevicesLost,
                  Result->ValidationPassed ? "passed" : "FAILED");
      for (const std::string &Line : Result->Recovery.Log)
        std::printf("    %s\n", Line.c_str());
    } else {
      std::printf("  recovery %s: failed (%s, exit code %d)\n",
                  Recover ? "on " : "off",
                  errorCodeName(Result.code()),
                  exitCodeFor(Result.code()));
    }
  }
  return 0;
}
