//===- bench/tab1_peak_kernels.cpp - Table I reproduction ---------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table I: the highest-performing kernels and their resource
// usage. For each kernel the harness grows the chain until the device is
// full (85% target utilization, like the partitioner), reports the Eq. 1
// performance at the modeled frequency and the resource breakdown, and
// prints the temporal-blocking baseline estimate (Zohouri et al. style)
// plus the literature rows carried for comparison.
//
//===----------------------------------------------------------------------===//

#include "baselines/Comparators.h"
#include "common/BenchUtils.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <algorithm>
#include <functional>

using namespace stencilflow;
using namespace stencilflow::bench;
using namespace stencilflow::baselines;

namespace {

struct KernelSpec {
  std::string Name;
  double PaperGOps;
  std::function<StencilProgram(int Chain)> Build;
};

/// Longest chain fitting one device at 85% utilization.
ModelPoint maximizeChain(const KernelSpec &Spec, int &BestChain) {
  DeviceResources Device = DeviceResources::stratix10GX2800();
  DeviceResources Budget;
  Budget.ALMs = Device.ALMs * 85 / 100;
  Budget.FFs = Device.FFs * 85 / 100;
  Budget.M20Ks = Device.M20Ks * 85 / 100;
  Budget.DSPs = Device.DSPs * 85 / 100;

  ModelPoint Best;
  BestChain = 0;
  // Exponential then linear refinement.
  int Low = 1, High = 1;
  auto fits = [&](int Chain, ModelPoint &Point) {
    auto Compiled = CompiledProgram::compile(Spec.Build(Chain));
    if (!Compiled)
      return false;
    auto Dataflow = analyzeDataflow(*Compiled);
    Point = evaluateModel(*Compiled, *Dataflow, Device);
    return Point.Resources.fitsWithin(Budget);
  };
  // The practical kernel-count limit of the toolchain (see
  // PartitionOptions::MaxStencilsPerDevice) caps the chain as well.
  const int KernelCountLimit = PartitionOptions().MaxStencilsPerDevice;
  ModelPoint Point;
  while (High <= KernelCountLimit && fits(High, Point)) {
    Best = Point;
    BestChain = High;
    Low = High;
    High *= 2;
  }
  High = std::min(High, KernelCountLimit + 1);
  // Binary search between Low and High.
  while (High - Low > 1) {
    int Mid = (Low + High) / 2;
    if (fits(Mid, Point)) {
      Best = Point;
      BestChain = Mid;
      Low = Mid;
    } else {
      High = Mid;
    }
  }
  return Best;
}

} // namespace

int main() {
  printHeader("Table I - highest performing kernels and their resource "
              "usage");
  DeviceResources Device = DeviceResources::stratix10GX2800();
  std::printf("available: ALM %lldK, FF %.1fM, M20K %lld, DSP %lld\n\n",
              static_cast<long long>(Device.ALMs / 1000),
              static_cast<double>(Device.FFs) / 1e6,
              static_cast<long long>(Device.M20Ks),
              static_cast<long long>(Device.DSPs));

  // Analysis domains chosen so that internal buffers mirror the paper's
  // M20K footprints (2 planes per Jacobi 3D stencil, 2 rows per 2D).
  std::vector<KernelSpec> Kernels = {
      {"Jacobi 3D (W=1)", 265.0,
       [](int Chain) {
         return workloads::jacobi3dChain(Chain, 8192, 64, 64, 1);
       }},
      {"Jacobi 3D (W=8)", 921.0,
       [](int Chain) {
         return workloads::jacobi3dChain(Chain, 8192, 96, 96, 8);
       }},
      {"Diffusion 2D (W=8)", 1313.0,
       [](int Chain) {
         return workloads::diffusion2dChain(Chain, 16384, 1024, 8);
       }},
      {"Diffusion 3D (W=8)", 1152.0,
       [](int Chain) {
         return workloads::diffusion3dChain(Chain, 8192, 96, 96, 8);
       }},
  };

  std::printf("%-22s %6s %10s %10s | %8s %8s %7s %6s\n", "kernel", "chain",
              "GOp/s", "paper", "ALM", "FF", "M20K", "DSP");
  for (const KernelSpec &Spec : Kernels) {
    int Chain = 0;
    ModelPoint Point = maximizeChain(Spec, Chain);
    std::printf(
        "%-22s %6d %10.1f %10.1f | %6lldK %6lldK %7lld %6lld\n",
        Spec.Name.c_str(), Chain, Point.GOps, Spec.PaperGOps,
        static_cast<long long>(Point.Resources.ALMs / 1000),
        static_cast<long long>(Point.Resources.FFs / 1000),
        static_cast<long long>(Point.Resources.M20Ks),
        static_cast<long long>(Point.Resources.DSPs));
  }

  // Simulator verification: a scaled version of the Jacobi chain must
  // sustain II=1 (cycles == Eq. 1 bound).
  {
    auto Compiled = CompiledProgram::compile(
        workloads::jacobi3dChain(32, 12, 24, 24, 1));
    auto Dataflow = analyzeDataflow(*Compiled);
    sim::SimConfig Config;
    Config.UnconstrainedMemory = true;
    SimPoint Sim = simulate(*Compiled, *Dataflow, nullptr, Config);
    std::printf("\ncycle-level check (32-chain, scaled domain): %lld "
                "cycles vs model %lld (efficiency %.3f)\n",
                static_cast<long long>(Sim.Cycles),
                static_cast<long long>(Sim.ExpectedCycles),
                Sim.EfficiencyVsModel);
  }

  // Temporal-blocking baseline (Zohouri et al. style), Diffusion 2D/3D.
  printHeader("Temporal-blocking baseline (combined spatial/temporal "
              "blocking, W=16)");
  {
    TemporalBlockingEstimate D2 = estimateTemporalBlocking(
        /*FlopsPerCell=*/9, /*DSPsPerCell=*/9, /*ALMsPerCell=*/900, 2);
    TemporalBlockingEstimate D3 = estimateTemporalBlocking(
        /*FlopsPerCell=*/13, /*DSPsPerCell=*/13, /*ALMsPerCell=*/1300, 3);
    std::printf("Diffusion 2D baseline: %.1f GOp/s (T=%d, redundancy "
                "%.2fx; paper reports 913 on Stratix 10)\n",
                D2.EffectiveGOpPerSecond, D2.TemporalDegree,
                D2.RedundancyFactor);
    std::printf("Diffusion 3D baseline: %.1f GOp/s (T=%d, redundancy "
                "%.2fx; paper reports 934 on Stratix 10)\n",
                D3.EffectiveGOpPerSecond, D3.TemporalDegree,
                D3.RedundancyFactor);
  }

  printHeader("Published results carried for comparison");
  for (const PublishedResult &Row : publishedStencilResults())
    std::printf("%-36s %-28s %8.1f GOp/s\n", Row.Name.c_str(),
                Row.Device.c_str(), Row.GOpPerSecond);
  return 0;
}
