//===- bench/parallel_speedup.cpp - Parallel-engine speedup harness -----------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Wall-clock comparison of the serial reference stepper and the
// event-sliced parallel engine on a multi-device Jacobi chain at the
// fig14/fig15 simulation scale. For every thread count the harness
// verifies cycle-exact agreement with the serial engine before reporting
// a speedup, so a "fast but wrong" engine cannot produce a number.
//
// Usage: ./parallel_speedup [--chain N] [--per-device N]
//                           [--k K] [--j J] [--i I]
//                           [--reps R] [--threads-max T] [--csv FILE]
//
// Defaults build a 16-stencil chain split 2 per device across 8 devices.
// Results land in docs/parallel_speedup.md; regenerate on a machine with
// at least as many cores as simulated devices for meaningful multi-thread
// numbers (the epoch protocol gives identical *results* at any core
// count, but only distinct cores give wall-clock parallelism).
//
//===----------------------------------------------------------------------===//

#include "common/BenchUtils.h"
#include "runtime/InputData.h"
#include "support/CommandLine.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace stencilflow;
using namespace stencilflow::bench;

namespace {

struct Measurement {
  double WallMs = 0.0;
  int64_t Cycles = 0;
  int64_t Epochs = 0;
  int64_t SerialFallback = 0;
  int64_t Skipped = 0;
  std::string Engine;
  bool Succeeded = false;
  std::string Message;
};

/// Runs the machine \p Reps times and keeps the fastest wall time (the
/// usual benchmark convention: minimum filters scheduler noise).
Measurement measure(const CompiledProgram &Compiled,
                    const DataflowAnalysis &Dataflow,
                    const Partition &Placement, const sim::SimConfig &Config,
                    const std::map<std::string, std::vector<double>> &Inputs,
                    int Reps) {
  Measurement M;
  auto Machine = sim::Machine::build(Compiled, Dataflow, &Placement, Config);
  if (!Machine) {
    M.Message = Machine.message();
    return M;
  }
  M.WallMs = 1e300;
  for (int Rep = 0; Rep != Reps; ++Rep) {
    auto Start = std::chrono::steady_clock::now();
    auto Result = Machine->run(Inputs);
    auto End = std::chrono::steady_clock::now();
    if (!Result) {
      M.Succeeded = false;
      M.Message = Result.message();
      return M;
    }
    double Ms =
        std::chrono::duration<double, std::milli>(End - Start).count();
    M.WallMs = std::min(M.WallMs, Ms);
    M.Cycles = Result->Stats.Cycles;
    M.Epochs = Result->Stats.ParallelEpochs;
    M.SerialFallback = Result->Stats.SerialFallbackCycles;
    M.Skipped = Result->Stats.SkippedCycles;
    M.Engine = Result->Stats.Engine;
    M.Succeeded = true;
  }
  return M;
}

} // namespace

int main(int argc, char **argv) {
  auto Args = CommandLine::parse(argc, argv,
                                 {"chain", "per-device", "k", "j", "i",
                                  "reps", "threads-max", "csv"});
  if (!Args) {
    std::fprintf(stderr, "error: %s\n", Args.message().c_str());
    return 1;
  }
  const int Chain = static_cast<int>(Args->getInt("chain", 16));
  const int PerDevice = static_cast<int>(Args->getInt("per-device", 2));
  const int64_t K = Args->getInt("k", 16);
  const int64_t J = Args->getInt("j", 48);
  const int64_t I = Args->getInt("i", 48);
  const int Reps = static_cast<int>(Args->getInt("reps", 3));
  const int ThreadsMax = static_cast<int>(Args->getInt("threads-max", 8));

  printHeader(formatString(
      "Parallel-engine speedup - %d-stencil Jacobi 3D chain, %lld x %lld "
      "x %lld, %d stencil(s)/device",
      Chain, static_cast<long long>(K), static_cast<long long>(J),
      static_cast<long long>(I), PerDevice));
  std::printf("host: %u hardware thread(s)\n\n",
              std::thread::hardware_concurrency());

  StencilProgram Program = workloads::jacobi3dChain(Chain, K, J, I);
  auto Compiled = CompiledProgram::compile(std::move(Program));
  if (!Compiled) {
    std::fprintf(stderr, "error: %s\n", Compiled.message().c_str());
    return 1;
  }
  auto Dataflow = analyzeDataflow(*Compiled);
  PartitionOptions PartOptions;
  PartOptions.TargetUtilization = 1.0;
  PartOptions.Device.DSPs =
      7 * Compiled->program().VectorWidth * PerDevice;
  PartOptions.MaxDevices = 64;
  auto Placement = partitionProgram(*Compiled, *Dataflow, PartOptions);
  if (!Placement) {
    std::fprintf(stderr, "error: %s\n", Placement.message().c_str());
    return 1;
  }
  std::printf("devices: %zu\n\n", Placement->numDevices());
  auto Inputs = materializeInputs(Compiled->program());

  sim::SimConfig Config;
  Config.UnconstrainedMemory = true;

  Measurement Serial =
      measure(*Compiled, *Dataflow, *Placement, Config, Inputs, Reps);
  if (!Serial.Succeeded) {
    std::fprintf(stderr, "serial run failed: %s\n", Serial.Message.c_str());
    return 1;
  }

  std::printf("%-10s %8s %12s %9s %9s %10s %10s %10s\n", "engine",
              "threads", "sim-cycles", "wall-ms", "speedup", "epochs",
              "fallback", "skipped");
  std::printf("%-10s %8s %12lld %9.1f %9s %10s %10s %10s\n", "serial", "-",
              static_cast<long long>(Serial.Cycles), Serial.WallMs, "1.00x",
              "-", "-", "-");

  std::string Csv = "engine,threads,sim_cycles,wall_ms,speedup,epochs,"
                    "serial_fallback_cycles,skipped_cycles\n";
  Csv += formatString("serial,0,%lld,%.3f,1.0,0,0,0\n",
                      static_cast<long long>(Serial.Cycles), Serial.WallMs);

  bool AllExact = true;
  for (int Threads = 1; Threads <= ThreadsMax; Threads *= 2) {
    sim::SimConfig Par = Config;
    Par.Engine = sim::SimEngine::Parallel;
    Par.Threads = Threads;
    Measurement P =
        measure(*Compiled, *Dataflow, *Placement, Par, Inputs, Reps);
    if (!P.Succeeded) {
      std::fprintf(stderr, "parallel (%d threads) failed: %s\n", Threads,
                   P.Message.c_str());
      return 1;
    }
    if (P.Cycles != Serial.Cycles) {
      std::fprintf(stderr,
                   "EXACTNESS VIOLATION at %d threads: parallel %lld "
                   "cycles vs serial %lld\n",
                   Threads, static_cast<long long>(P.Cycles),
                   static_cast<long long>(Serial.Cycles));
      AllExact = false;
    }
    double Speedup = Serial.WallMs / P.WallMs;
    std::printf("%-10s %8d %12lld %9.1f %8.2fx %10lld %10lld %10lld\n",
                P.Engine.c_str(), Threads,
                static_cast<long long>(P.Cycles), P.WallMs, Speedup,
                static_cast<long long>(P.Epochs),
                static_cast<long long>(P.SerialFallback),
                static_cast<long long>(P.Skipped));
    Csv += formatString("parallel,%d,%lld,%.3f,%.3f,%lld,%lld,%lld\n",
                        Threads, static_cast<long long>(P.Cycles), P.WallMs,
                        Speedup, static_cast<long long>(P.Epochs),
                        static_cast<long long>(P.SerialFallback),
                        static_cast<long long>(P.Skipped));
  }

  if (Args->has("csv")) {
    std::string Path = Args->getString("csv");
    if (Error Err = sim::writeTextFileAtomic(Path, Csv))
      std::fprintf(stderr, "error: %s\n", Err.message().c_str());
    else
      std::printf("\ncsv: wrote %s\n", Path.c_str());
  }
  std::printf("\nexactness: %s\n",
              AllExact ? "all thread counts cycle-exact vs serial"
                       : "VIOLATED (see above)");
  return AllExact ? 0 : 1;
}
