//===- bench/fig14_iterative_scaling.cpp - Fig. 14 reproduction ---------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Fig. 14: performance scaling of chained Jacobi 3D stencils
// (the iterative-stencil workload of Sec. VIII-C) without vectorization,
// on a single device and spanning up to 8 devices. For every chain length
// the harness reports the Eq. 1 upper bound at the modeled frequency (the
// paper's dashed line) and — for chains that are cheap enough to simulate
// cycle by cycle — the simulator's achieved fraction of that bound.
//
// Paper reference points: 264 GOp/s on one device, 1.5 TOp/s on 8 FPGAs.
//
//===----------------------------------------------------------------------===//

#include "common/BenchUtils.h"
#include "sdfg/TemporalUnroll.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace stencilflow;
using namespace stencilflow::bench;

int main() {
  printHeader("Fig. 14 - Jacobi 3D chain scaling, W=1 (paper: 264 GOp/s "
              "single device, 1.5 TOp/s on 8 FPGAs)");

  // Large analysis domain (L negligible relative to N, as in the paper)
  // and a small simulation domain for cycle-level verification.
  const int64_t K = 16384, J = 64, I = 64; // Large domain: L << N.
  const int64_t SimK = 12, SimJ = 24, SimI = 24;
  const int SimulateUpTo = 64;

  std::printf("%8s %8s %9s %9s %11s %10s %9s\n", "stencils", "devices",
              "freq/MHz", "GOp/s", "ALM-util", "DSP-util", "sim-eff");

  DeviceResources Device = DeviceResources::stratix10GX2800();
  PartitionOptions PartOptions;
  double SingleDeviceBest = 0.0;
  double MultiDeviceBest = 0.0;

  for (int Chain : {1, 2, 4, 8, 16, 32, 48, 64, 80, 96, 112, 128, 160,
                    224, 336, 448, 672, 896, 1024}) {
    StencilProgram Program = workloads::jacobi3dChain(Chain, K, J, I);
    auto Compiled = CompiledProgram::compile(std::move(Program));
    if (!Compiled) {
      std::printf("%8d  error: %s\n", Chain, Compiled.message().c_str());
      continue;
    }
    auto Dataflow = analyzeDataflow(*Compiled);
    auto Placement = partitionProgram(*Compiled, *Dataflow, PartOptions);
    if (!Placement) {
      std::printf("%8d  does not fit on 8 devices\n", Chain);
      continue;
    }
    size_t Devices = Placement->numDevices();

    // Per-device frequency is set by the fullest device.
    double Frequency = 1e9;
    double PeakUtilALM = 0.0, PeakUtilDSP = 0.0;
    for (const DevicePlacement &D : Placement->Devices) {
      Frequency = std::min(Frequency,
                           estimateFrequencyMHz(D.Resources, Device));
      PeakUtilALM = std::max(
          PeakUtilALM, static_cast<double>(D.Resources.ALMs) /
                           static_cast<double>(Device.ALMs));
      PeakUtilDSP = std::max(
          PeakUtilDSP, static_cast<double>(D.Resources.DSPs) /
                           static_cast<double>(Device.DSPs));
    }
    RuntimeEstimate Runtime = computeRuntimeEstimate(*Compiled, *Dataflow);
    double GOps = Runtime.opsPerSecond(Frequency * 1e6) / 1e9;
    if (Devices == 1)
      SingleDeviceBest = std::max(SingleDeviceBest, GOps);
    MultiDeviceBest = std::max(MultiDeviceBest, GOps);

    // Cycle-level verification on a scaled domain.
    std::string SimText = "-";
    if (Chain <= SimulateUpTo) {
      StencilProgram SimProgram =
          workloads::jacobi3dChain(Chain, SimK, SimJ, SimI);
      auto SimCompiled = CompiledProgram::compile(std::move(SimProgram));
      auto SimDataflow = analyzeDataflow(*SimCompiled);
      sim::SimConfig Config;
      Config.UnconstrainedMemory = true;
      SimPoint Sim = simulate(*SimCompiled, *SimDataflow, nullptr, Config);
      SimText = Sim.Succeeded
                    ? formatString("%.3f", Sim.EfficiencyVsModel)
                    : "FAIL";
    }

    std::printf("%8d %8zu %9.0f %9.1f %10.1f%% %9.1f%% %9s\n", Chain,
                Devices, Frequency, GOps, 100.0 * PeakUtilALM,
                100.0 * PeakUtilDSP, SimText.c_str());
  }

  std::printf("\nbest single device: %.1f GOp/s (paper: 264)\n",
              SingleDeviceBest);
  std::printf("best multi device:  %.1f GOp/s across 8 devices (paper: "
              "1500)\n",
              MultiDeviceBest);

  // Temporal blocking: the iterative workload above run as a *time loop*
  // rather than a pre-chained program. The host loop executes the
  // single-step pipeline T times, paying the full off-chip round trip
  // (and pipeline drain) every generation; unrolling T timesteps into
  // the dataflow graph (sdfg::unrollTimeSteps, the compiled form of the
  // same chain) streams T generations through per round trip. Both runs
  // use the DDR4 memory-controller model. Host-loop passes are identical
  // in cycle count (the dataflow is data-independent), so the baseline
  // simulates one pass and scales by T.
  printHeader("Temporal blocking - T-pass host loop vs. T-deep unrolled "
              "pipeline (jacobi3d, DDR4 model)");
  StencilProgram Step = workloads::jacobi3dChain(1, SimK, SimJ, SimI);
  auto StepCompiled = CompiledProgram::compile(Step.clone());
  auto StepDataflow = analyzeDataflow(*StepCompiled);
  SimPoint StepSim = simulate(*StepCompiled, *StepDataflow);
  if (!StepSim.Succeeded) {
    std::printf("single-step simulation failed: %s\n",
                StepSim.Message.c_str());
    return 1;
  }

  std::printf("%4s %12s %12s %9s %13s %13s %9s\n", "T", "loop-cycles",
              "unrolled", "speedup", "loop-MiB", "unrolled-MiB",
              "traffic");
  for (int T : {1, 2, 4, 8}) {
    auto Unrolled = sdfg::unrollTimeSteps(Step, T);
    if (!Unrolled) {
      std::printf("%4d  unroll error: %s\n", T,
                  Unrolled.message().c_str());
      continue;
    }
    auto Compiled = CompiledProgram::compile(Unrolled.takeValue());
    auto Dataflow = analyzeDataflow(*Compiled);
    SimPoint Sim = simulate(*Compiled, *Dataflow);
    if (!Sim.Succeeded) {
      std::printf("%4d  simulation failed: %s\n", T,
                  Sim.Message.c_str());
      continue;
    }
    int64_t LoopCycles = StepSim.Cycles * T;
    double LoopBytes = StepSim.MemoryBytesMoved * static_cast<double>(T);
    std::printf("%4d %12lld %12lld %8.2fx %13.2f %13.2f %8.2fx\n", T,
                static_cast<long long>(LoopCycles),
                static_cast<long long>(Sim.Cycles),
                static_cast<double>(LoopCycles) /
                    static_cast<double>(Sim.Cycles),
                LoopBytes / (1024.0 * 1024.0),
                Sim.MemoryBytesMoved / (1024.0 * 1024.0),
                LoopBytes / Sim.MemoryBytesMoved);
  }
  std::printf("\nspeedup / traffic: T-pass host loop over the unrolled "
              "pipeline, in simulated cycles and off-chip bytes — the "
              "unrolled pipeline amortizes one round trip over T "
              "generations, so traffic approaches T-fold\n");
  return 0;
}
