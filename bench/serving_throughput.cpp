//===- bench/serving_throughput.cpp - Serving daemon benchmarks ----------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark timings of the serving core (serve/Server.h), driven
// in-process through the same Server::submit path the daemon's socket
// transport uses:
//
//  - BM_ServeHitPath / BM_ServeMissPath: per-request service time when
//    the compiled-plan cache hits (execute only) vs misses (compile +
//    execute). The hit path skipping the pipeline's compile half is the
//    whole point of the cache; CI gates on the checked-in ratio.
//  - BM_ServeTunedMissPath: the expensive miss — autotuning the mapping
//    before caching it — i.e. the work repeat tenants amortize.
//  - BM_ServeOpenLoopBurst: an open-loop synthetic client fleet: a burst
//    of requests submitted without pacing, 1:4 miss:hit mix, collected
//    as futures. Reports jobs/s plus p50/p99 service latency (queue +
//    compile + execute) as counters; BENCH_serving.json records them.
//
// All benchmarks measure process CPU time (the work happens on the
// server's worker threads, so the calling thread's own CPU time would
// only see synchronization overhead) and rank by real time. Numbers
// land in BENCH_serving.json; bench/baselines/serving_baseline.json is
// the perf-smoke reference for tools/check_perf.py.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "frontend/ProgramLoader.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <future>
#include <vector>

using namespace stencilflow;
using namespace stencilflow::serve;

namespace {

/// The serving workload: a short diffusion chain on a grid small enough
/// that compile time and execute time are the same order of magnitude —
/// the cache effect shows up directly in the per-request numbers.
json::Value servedProgram() {
  return programToJson(workloads::diffusion2dChain(2, 32, 32));
}

Request runRequest(const json::Value &Program) {
  Request R;
  R.Op = RequestOp::Run;
  R.Program = Program;
  return R;
}

/// A request whose plan key is unique per \p Epoch: stepping the target
/// utilization by the key quantum (1e-3) forces a fresh compilation
/// without changing the workload meaningfully.
Request missRequest(const json::Value &Program, int Epoch) {
  Request R = runRequest(Program);
  R.Options.TargetUtilization = 0.500 + 0.001 * (Epoch % 300);
  return R;
}

void BM_ServeHitPath(benchmark::State &State) {
  ServerOptions O;
  O.Workers = 1;
  Server S(O);
  S.start();
  json::Value Program = servedProgram();
  // Warm the cache; every timed iteration must hit.
  Response Warm = S.handle(runRequest(Program));
  if (!Warm.Ok) {
    State.SkipWithError(("warmup failed: " + Warm.ErrorMessage).c_str());
    return;
  }
  for (auto _ : State) {
    Response R = S.handle(runRequest(Program));
    if (!R.Ok || !R.CacheHit || !*R.CacheHit) {
      State.SkipWithError("expected a cache hit");
      return;
    }
    benchmark::DoNotOptimize(R);
  }
  ServeStats Stats = S.stats();
  State.counters["cache_hits"] =
      benchmark::Counter(static_cast<double>(Stats.CacheHits));
  S.stop();
}
BENCHMARK(BM_ServeHitPath)->MeasureProcessCPUTime()->UseRealTime();

void BM_ServeMissPath(benchmark::State &State) {
  ServerOptions O;
  O.Workers = 1;
  O.CacheCapacity = 64; // far fewer than distinct keys: always a miss
  Server S(O);
  S.start();
  json::Value Program = servedProgram();
  int Epoch = 0;
  for (auto _ : State) {
    Response R = S.handle(missRequest(Program, Epoch++));
    if (!R.Ok || !R.CacheHit || *R.CacheHit) {
      State.SkipWithError("expected a cache miss");
      return;
    }
    benchmark::DoNotOptimize(R);
  }
  S.stop();
}
BENCHMARK(BM_ServeMissPath)->MeasureProcessCPUTime()->UseRealTime();

void BM_ServeTunedMissPath(benchmark::State &State) {
  ServerOptions O;
  O.Workers = 1;
  O.CacheCapacity = 64;
  Server S(O);
  S.start();
  json::Value Program = servedProgram();
  int Epoch = 0;
  for (auto _ : State) {
    Request R = missRequest(Program, Epoch++);
    R.Options.Tune = true;
    R.Options.TuneBudget = 16;
    Response Out = S.handle(std::move(R));
    if (!Out.Ok || *Out.CacheHit) {
      State.SkipWithError("expected a tuned cache miss");
      return;
    }
    benchmark::DoNotOptimize(Out);
  }
  S.stop();
}
BENCHMARK(BM_ServeTunedMissPath)->MeasureProcessCPUTime()->UseRealTime();

void BM_ServeOpenLoopBurst(benchmark::State &State) {
  // The synthetic multi-tenant client: each iteration fires a burst of
  // requests open-loop (no pacing, submit then collect), 1 miss per 4
  // hits, against a worker pool. Service latency = queue + compile +
  // execute, straight from the responses.
  constexpr int Burst = 32;
  ServerOptions O;
  O.Workers = 4;
  O.QueueDepth = Burst; // admit the whole burst; nothing sheds
  Server S(O);
  S.start();
  json::Value Program = servedProgram();
  S.handle(runRequest(Program)); // warm the hit entry

  std::vector<int64_t> ServiceMicros;
  int64_t Jobs = 0;
  double Seconds = 0.0;
  int Epoch = 0;
  for (auto _ : State) {
    auto Start = std::chrono::steady_clock::now();
    std::vector<std::future<Response>> Pending;
    Pending.reserve(Burst);
    for (int I = 0; I != Burst; ++I)
      Pending.push_back(S.submit(I % 5 == 0
                                     ? missRequest(Program, Epoch++)
                                     : runRequest(Program)));
    for (std::future<Response> &F : Pending) {
      Response R = F.get();
      if (!R.Ok) {
        State.SkipWithError(("burst request failed: " + R.ErrorMessage)
                                .c_str());
        return;
      }
      ServiceMicros.push_back(R.QueueMicros + R.CompileMicros +
                              R.ExecuteMicros);
    }
    Jobs += Burst;
    Seconds += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - Start)
                   .count();
  }
  std::sort(ServiceMicros.begin(), ServiceMicros.end());
  if (!ServiceMicros.empty()) {
    State.counters["jobs_per_second"] =
        benchmark::Counter(static_cast<double>(Jobs) / Seconds);
    State.counters["p50_service_us"] = benchmark::Counter(
        static_cast<double>(ServiceMicros[ServiceMicros.size() / 2]));
    State.counters["p99_service_us"] = benchmark::Counter(
        static_cast<double>(
            ServiceMicros[ServiceMicros.size() * 99 / 100]));
  }
  ServeStats Stats = S.stats();
  State.counters["shed"] =
      benchmark::Counter(static_cast<double>(Stats.Shed));
  S.stop();
}
BENCHMARK(BM_ServeOpenLoopBurst)
    ->MeasureProcessCPUTime()
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
