//===- bench/highorder.cpp - High-order workload family perf gate --------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Perf tracking for the high-order workload family: radius-1..4
// wave-equation steps in 2D, radius-2/4 in 3D, and the HotSpot thermal
// update. Wider finite-difference rings grow the on-chip buffer depth
// linearly with the radius while the off-chip traffic stays one
// read + one write per time level, so the simulated cycle count should
// stay roughly flat across radii — a regression here usually means the
// ring-buffer sizing or the channel scheduler started serializing taps.
//
// Like temporal_blocking, the simulated elapsed time at 300 MHz is
// reported as manual time so the JSON `real_time` is deterministic;
// `cpu_time` tracks the simulator's host-side speed for
// tools/check_perf.py. Off-chip traffic rides along as the
// `offchip_bytes` counter.
//
//===----------------------------------------------------------------------===//

#include "core/DataflowAnalysis.h"
#include "runtime/InputData.h"
#include "sim/Machine.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace stencilflow;

namespace {

constexpr double FrequencyHz = 300.0e6;

/// Simulates one single-pass run of \p Program per benchmark iteration,
/// reporting simulated seconds as manual time.
void runSimulated(benchmark::State &State, StencilProgram Program) {
  auto Compiled = CompiledProgram::compile(std::move(Program));
  if (!Compiled) {
    State.SkipWithError(Compiled.message().c_str());
    return;
  }
  auto Dataflow = analyzeDataflow(*Compiled);
  if (!Dataflow) {
    State.SkipWithError(Dataflow.message().c_str());
    return;
  }
  auto Inputs = materializeInputs(Compiled->program());
  sim::SimConfig Config; // DDR4 memory-controller model on by default.
  int64_t Cycles = 0;
  double Bytes = 0.0;
  for (auto _ : State) {
    auto M = sim::Machine::build(*Compiled, *Dataflow, nullptr, Config);
    auto Result = M->run(Inputs);
    if (!Result) {
      State.SkipWithError(Result.message().c_str());
      return;
    }
    Cycles = Result->Stats.Cycles;
    Bytes = 0.0;
    for (double B : Result->Stats.MemoryBytesMoved)
      Bytes += B;
    State.SetIterationTime(static_cast<double>(Cycles) / FrequencyHz);
  }
  State.counters["sim_cycles"] = static_cast<double>(Cycles);
  State.counters["offchip_bytes"] = Bytes;
}

void BM_HighOrderWave2D(benchmark::State &State) {
  const int Radius = static_cast<int>(State.range(0));
  runSimulated(State, workloads::wave2dChain(Radius, 1, 48, 64));
}
BENCHMARK(BM_HighOrderWave2D)->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->UseManualTime();

void BM_HighOrderWave3D(benchmark::State &State) {
  const int Radius = static_cast<int>(State.range(0));
  runSimulated(State, workloads::wave3dChain(Radius, 1, 12, 16, 24));
}
BENCHMARK(BM_HighOrderWave3D)->Arg(2)->Arg(4)->UseManualTime();

void BM_HighOrderHotspot(benchmark::State &State) {
  runSimulated(State, workloads::hotspot2dChain(1, 48, 64));
}
BENCHMARK(BM_HighOrderHotspot)->UseManualTime();

} // namespace

BENCHMARK_MAIN();
