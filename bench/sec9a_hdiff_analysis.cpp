//===- bench/sec9a_hdiff_analysis.cpp - Sec. IX-A reproduction ----------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the horizontal-diffusion analysis of Sec. IX-A: the
// operation census of the DAG, the off-chip data volumes under perfect
// reuse (reads 5*IJK + 5 line elements, writes 4*IJK), the arithmetic
// intensity (Eq. 2), the bandwidth-bound performance roofline (Eq. 3) and
// the bandwidth required to saturate the peak measured compute (Eq. 4).
//
//===----------------------------------------------------------------------===//

#include "common/BenchUtils.h"
#include "sdfg/StencilFusion.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace stencilflow;
using namespace stencilflow::bench;

namespace {

void report(const char *Title, const CompiledProgram &Compiled) {
  compute::OpCensus Census = Compiled.totalCensus();
  std::printf("\n--- %s (%zu stencil nodes) ---\n", Title,
              Compiled.program().Nodes.size());
  std::printf("ops/cell: %lld add, %lld mul, %lld sqrt, %lld min/max, "
              "%lld cmp, %lld branches  (paper: 87 add, 41 mul, 2 sqrt, "
              "2+2 min/max, 20 branches)\n",
              static_cast<long long>(Census.Additions),
              static_cast<long long>(Census.Multiplications),
              static_cast<long long>(Census.SquareRoots),
              static_cast<long long>(Census.MinMax),
              static_cast<long long>(Census.Comparisons),
              static_cast<long long>(Census.Branches));

  MemoryTraffic Traffic = computeMemoryTraffic(Compiled);
  const Shape &Space = Compiled.program().IterationSpace;
  int64_t KJI = Space.numCells();
  std::printf("reads %lld elements (5*KJI = %lld + lines), writes %lld "
              "(4*KJI = %lld)\n",
              static_cast<long long>(Traffic.ReadElements),
              static_cast<long long>(5 * KJI),
              static_cast<long long>(Traffic.WriteElements),
              static_cast<long long>(4 * KJI));
  std::printf("steady-state operands/cycle: %lld (paper: ~9)\n",
              static_cast<long long>(Traffic.OperandsPerCycle));

  RooflineAnalysis Roofline = computeRoofline(Compiled);
  std::printf("arithmetic intensity: %.3f Op/operand, %.3f Op/B  (paper "
              "Eq. 2: %.3f Op/operand, %.3f Op/B)\n",
              Roofline.OpsPerOperand, Roofline.OpsPerByte, 130.0 / 9.0,
              65.0 / 18.0);
  std::printf("roofline at 58.3 GB/s measured bandwidth: %.1f GOp/s "
              "(paper Eq. 3: 210.5)\n",
              Roofline.boundPerformance(58.3e9) / 1e9);
  std::printf("roofline at 76.8 GB/s datasheet bandwidth: %.1f GOp/s "
              "(paper: 277.3)\n",
              Roofline.boundPerformance(76.8e9) / 1e9);
  std::printf("bandwidth to saturate 917.1 GOp/s compute: %.1f GB/s "
              "(paper Eq. 4: 254.0)\n",
              Roofline.requiredBandwidth(917.1e9) / 1e9);
}

} // namespace

int main() {
  printHeader("Sec. IX-A - horizontal diffusion analysis (128x128x80 "
              "domain)");

  StencilProgram Program = workloads::horizontalDiffusion(80, 128, 128);
  auto Unfused = CompiledProgram::compile(Program.clone());
  if (!Unfused) {
    std::printf("error: %s\n", Unfused.message().c_str());
    return 1;
  }
  report("as written (Fig. 17b form)", *Unfused);

  auto Fusion = fuseAllStencils(Program);
  if (!Fusion) {
    std::printf("error: %s\n", Fusion.message().c_str());
    return 1;
  }
  auto Fused = CompiledProgram::compile(std::move(Program));
  report(formatString("after aggressive fusion (%d pairs, Fig. 17c form)",
                      Fusion->FusedPairs)
             .c_str(),
         *Fused);

  // The initialization-latency fraction the paper quotes (~0.7%).
  auto Dataflow = analyzeDataflow(*Fused);
  RuntimeEstimate Runtime = computeRuntimeEstimate(*Fused, *Dataflow);
  std::printf("\ninitialization latency L = %lld cycles = %.2f%% of N "
              "(paper: ~0.7%%)\n",
              static_cast<long long>(Runtime.LatencyCycles),
              100.0 * static_cast<double>(Runtime.LatencyCycles) /
                  static_cast<double>(Runtime.StreamedCycles));
  return 0;
}
