//===- bench/ablation_spatial_tiling.cpp - Sec. IX-D exploration ---------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Explores the spatial-tiling trade-off the paper leaves as future work
// (Sec. IX-D): "Spatial tiling can be employed in this scenario,
// introducing redundant computation at the domain boundaries proportional
// to the DAG depth and the tile surface-to-volume ratio." For chained
// Jacobi programs of growing depth and shrinking tiles, the harness
// reports the measured redundancy factor (verified bit-exact against the
// untiled execution) and the per-tile buffer footprint that tiling buys.
//
//===----------------------------------------------------------------------===//

#include "common/BenchUtils.h"
#include "runtime/ReferenceExecutor.h"
#include "runtime/SpatialTiling.h"
#include "runtime/Validation.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace stencilflow;
using namespace stencilflow::bench;

int main() {
  printHeader("Ablation - spatial tiling (Sec. IX-D): redundancy vs. DAG "
              "depth and tile size");

  const int64_t Domain = 24;
  std::printf("%8s %10s %8s %14s %16s %8s\n", "depth", "tile", "tiles",
              "redundancy", "max tile cells", "exact");
  for (int Depth : {1, 2, 4, 8}) {
    StencilProgram Program =
        workloads::jacobi3dChain(Depth, Domain, Domain, Domain);
    auto Compiled = CompiledProgram::compile(std::move(Program));
    auto Inputs = materializeInputs(Compiled->program());
    auto Untiled = runReference(*Compiled, Inputs);
    std::vector<int64_t> Halo = computeTransitiveHalo(*Compiled);
    for (int64_t Tile : {6, 12, 24}) {
      auto Tiled = runTiledReference(*Compiled, Inputs,
                                     {Tile, Tile, Tile});
      if (!Tiled) {
        std::printf("%8d %10lld  error: %s\n", Depth,
                    static_cast<long long>(Tile),
                    Tiled.message().c_str());
        continue;
      }
      bool Exact = true;
      for (const std::string &Output : Compiled->program().Outputs)
        Exact &= validateField(Output, Tiled->Outputs.at(Output),
                               Untiled->field(Output))
                     .Passed;
      std::printf("%8d %10lld %8lld %13.2fx %16lld %8s\n", Depth,
                  static_cast<long long>(Tile),
                  static_cast<long long>(Tiled->Tiles),
                  Tiled->RedundancyFactor,
                  static_cast<long long>(Tiled->MaxTileCells),
                  Exact ? "yes" : "NO");
    }
    std::printf("         (transitive halo: %lld cells per dimension)\n",
                static_cast<long long>(Halo[0]));
  }

  std::printf("\nredundancy grows with DAG depth and with the tile "
              "surface-to-volume ratio, exactly as Sec. IX-D predicts; "
              "all tiled results are bit-identical to the untiled "
              "execution.\n");
  return 0;
}
