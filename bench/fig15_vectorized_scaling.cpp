//===- bench/fig15_vectorized_scaling.cpp - Fig. 15 reproduction --------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Fig. 15: the same chained-Jacobi scaling experiment with
// 4-way vectorization. Vectorization coarsens the stencil units (the
// useful-logic ratio improves) and multiplies throughput per stencil by
// W, at the cost of W-times the DSPs per stencil; the per-device chain is
// shorter but each link is W-times faster. Crossing edges carry W
// elements per cycle and are checked against the network link budget.
//
// Paper reference points: 568.2 GOp/s on one device, 4.2 TOp/s on 8.
//
//===----------------------------------------------------------------------===//

#include "common/BenchUtils.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace stencilflow;
using namespace stencilflow::bench;

int main() {
  const int W = 4;
  printHeader(formatString(
      "Fig. 15 - Jacobi 3D chain scaling, W=%d (paper: 568.2 GOp/s single "
      "device, 4.2 TOp/s on 8 FPGAs)",
      W));

  const int64_t K = 16384, J = 64, I = 64; // Large domain: L << N.
  const int64_t SimK = 12, SimJ = 24, SimI = 24;
  const int SimulateUpTo = 48;

  // Network feasibility of W=4 crossing streams: W * 4 B at 300 MHz =
  // 4.8 GB/s against 2 x 5 GB/s links per hop.
  sim::SimConfig NetworkCheck;
  double CrossingBytesPerCycle = W * 4.0;
  double HopBudget =
      NetworkCheck.LinkBytesPerCycle * NetworkCheck.LinksPerHop;
  std::printf("crossing stream demand: %.1f B/cycle of %.1f B/cycle hop "
              "budget (%s)\n\n",
              CrossingBytesPerCycle, HopBudget,
              CrossingBytesPerCycle <= HopBudget ? "feasible"
                                                 : "network bound");

  std::printf("%8s %8s %9s %9s %11s %10s %9s\n", "stencils", "devices",
              "freq/MHz", "GOp/s", "ALM-util", "DSP-util", "sim-eff");

  DeviceResources Device = DeviceResources::stratix10GX2800();
  PartitionOptions PartOptions;
  double SingleDeviceBest = 0.0, MultiDeviceBest = 0.0;

  for (int Chain : {1, 2, 4, 8, 16, 32, 48, 64, 80, 96, 112, 128, 160,
                    224, 320, 448, 640, 896, 960}) {
    StencilProgram Program = workloads::jacobi3dChain(Chain, K, J, I, W);
    auto Compiled = CompiledProgram::compile(std::move(Program));
    if (!Compiled) {
      std::printf("%8d  error: %s\n", Chain, Compiled.message().c_str());
      continue;
    }
    auto Dataflow = analyzeDataflow(*Compiled);
    auto Placement = partitionProgram(*Compiled, *Dataflow, PartOptions);
    if (!Placement) {
      std::printf("%8d  does not fit on 8 devices\n", Chain);
      continue;
    }
    size_t Devices = Placement->numDevices();
    double Frequency = 1e9;
    double PeakUtilALM = 0.0, PeakUtilDSP = 0.0;
    for (const DevicePlacement &D : Placement->Devices) {
      Frequency = std::min(Frequency,
                           estimateFrequencyMHz(D.Resources, Device));
      PeakUtilALM = std::max(
          PeakUtilALM, static_cast<double>(D.Resources.ALMs) /
                           static_cast<double>(Device.ALMs));
      PeakUtilDSP = std::max(
          PeakUtilDSP, static_cast<double>(D.Resources.DSPs) /
                           static_cast<double>(Device.DSPs));
    }
    RuntimeEstimate Runtime = computeRuntimeEstimate(*Compiled, *Dataflow);
    double GOps = Runtime.opsPerSecond(Frequency * 1e6) / 1e9;
    if (Devices == 1)
      SingleDeviceBest = std::max(SingleDeviceBest, GOps);
    MultiDeviceBest = std::max(MultiDeviceBest, GOps);

    std::string SimText = "-";
    if (Chain <= SimulateUpTo) {
      StencilProgram SimProgram =
          workloads::jacobi3dChain(Chain, SimK, SimJ, SimI, W);
      auto SimCompiled = CompiledProgram::compile(std::move(SimProgram));
      auto SimDataflow = analyzeDataflow(*SimCompiled);
      sim::SimConfig Config;
      Config.UnconstrainedMemory = true;
      SimPoint Sim = simulate(*SimCompiled, *SimDataflow, nullptr, Config);
      SimText = Sim.Succeeded
                    ? formatString("%.3f", Sim.EfficiencyVsModel)
                    : "FAIL";
    }
    std::printf("%8d %8zu %9.0f %9.1f %10.1f%% %9.1f%% %9s\n", Chain,
                Devices, Frequency, GOps, 100.0 * PeakUtilALM,
                100.0 * PeakUtilDSP, SimText.c_str());
  }

  std::printf("\nbest single device: %.1f GOp/s (paper: 568.2)\n",
              SingleDeviceBest);
  std::printf("best multi device:  %.1f GOp/s across 8 devices (paper: "
              "4200)\n",
              MultiDeviceBest);
  return 0;
}
