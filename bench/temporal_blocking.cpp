//===- bench/temporal_blocking.cpp - Temporal-blocking perf gate --------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Perf gate for temporal blocking (Sec. VIII-C turned into a
// transformation): executing T timesteps of an iterative stencil as a
// T-pass host loop must be *slower in simulated time* than executing the
// T-deep unrolled pipeline once, and must move ~T-fold more off-chip
// bytes. Both sides run the cycle simulator with the DDR4
// memory-controller model.
//
// The benchmarks report the simulated elapsed time at 300 MHz as manual
// time, so `real_time` in the JSON output is deterministic and CI can
// gate BM_TemporalUnrolled < BM_TemporalHostLoop without flakiness;
// `cpu_time` still measures the simulator's host-side speed and feeds
// tools/check_perf.py regression tracking. Off-chip traffic is attached
// as the `offchip_bytes` counter.
//
// Host-loop passes have identical cycle counts (the dataflow is
// data-independent), so each benchmark iteration re-runs the single-step
// machine T times on the same inputs rather than marshalling outputs
// back to inputs; the simulated cost per pass is the same either way.
//
//===----------------------------------------------------------------------===//

#include "core/DataflowAnalysis.h"
#include "runtime/InputData.h"
#include "sdfg/TemporalUnroll.h"
#include "sim/Machine.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace stencilflow;

namespace {

constexpr double FrequencyHz = 300.0e6;

StencilProgram makeStep() { return workloads::diffusion2dChain(1, 48, 64); }

void BM_TemporalHostLoop(benchmark::State &State) {
  const int T = static_cast<int>(State.range(0));
  auto Compiled = CompiledProgram::compile(makeStep());
  auto Dataflow = analyzeDataflow(*Compiled);
  auto Inputs = materializeInputs(Compiled->program());
  sim::SimConfig Config; // DDR4 model on by default.
  int64_t Cycles = 0;
  double Bytes = 0.0;
  for (auto _ : State) {
    Cycles = 0;
    Bytes = 0.0;
    for (int Pass = 0; Pass < T; ++Pass) {
      auto M = sim::Machine::build(*Compiled, *Dataflow, nullptr, Config);
      auto Result = M->run(Inputs);
      if (!Result) {
        State.SkipWithError(Result.message().c_str());
        return;
      }
      Cycles += Result->Stats.Cycles;
      for (double B : Result->Stats.MemoryBytesMoved)
        Bytes += B;
    }
    State.SetIterationTime(static_cast<double>(Cycles) / FrequencyHz);
  }
  State.counters["sim_cycles"] = static_cast<double>(Cycles);
  State.counters["offchip_bytes"] = Bytes;
}
BENCHMARK(BM_TemporalHostLoop)->Arg(8)->UseManualTime();

void BM_TemporalUnrolled(benchmark::State &State) {
  const int T = static_cast<int>(State.range(0));
  auto Unrolled = sdfg::unrollTimeSteps(makeStep(), T);
  if (!Unrolled) {
    State.SkipWithError(Unrolled.message().c_str());
    return;
  }
  auto Compiled = CompiledProgram::compile(Unrolled.takeValue());
  auto Dataflow = analyzeDataflow(*Compiled);
  auto Inputs = materializeInputs(Compiled->program());
  sim::SimConfig Config;
  int64_t Cycles = 0;
  double Bytes = 0.0;
  for (auto _ : State) {
    auto M = sim::Machine::build(*Compiled, *Dataflow, nullptr, Config);
    auto Result = M->run(Inputs);
    if (!Result) {
      State.SkipWithError(Result.message().c_str());
      return;
    }
    Cycles = Result->Stats.Cycles;
    Bytes = 0.0;
    for (double B : Result->Stats.MemoryBytesMoved)
      Bytes += B;
    State.SetIterationTime(static_cast<double>(Cycles) / FrequencyHz);
  }
  State.counters["sim_cycles"] = static_cast<double>(Cycles);
  State.counters["offchip_bytes"] = Bytes;
}
BENCHMARK(BM_TemporalUnrolled)->Arg(8)->UseManualTime();

} // namespace

BENCHMARK_MAIN();
