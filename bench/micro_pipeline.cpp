//===- bench/micro_pipeline.cpp - Framework micro-benchmarks ------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark timings of the framework itself: parsing, semantic
// analysis, kernel compilation, dataflow analysis, code generation,
// reference execution and cycle-level simulation throughput. These
// correspond to the "compilation" half of the paper's stack (Sec. VII) —
// everything short of vendor synthesis.
//
//===----------------------------------------------------------------------===//

#include "codegen/OpenCLEmitter.h"
#include "core/DataflowAnalysis.h"
#include "frontend/Parser.h"
#include "runtime/InputData.h"
#include "runtime/ReferenceExecutor.h"
#include "sdfg/StencilFusion.h"
#include "sim/Machine.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace stencilflow;

namespace {

void BM_ParseStencilCode(benchmark::State &State) {
  const char *Source =
      "t = a[0,0,-1] + a[0,0,1] + a[0,-1,0] + a[0,1,0];"
      "u = sqrt(t * t + 1.0);"
      "out = a[0,0,0] > 0.5 ? u : t * 0.25;";
  for (auto _ : State) {
    auto Code = parseStencilCode(Source);
    benchmark::DoNotOptimize(Code);
  }
}
BENCHMARK(BM_ParseStencilCode);

void BM_CompileHdiff(benchmark::State &State) {
  StencilProgram Program = workloads::horizontalDiffusion(8, 16, 16);
  for (auto _ : State) {
    auto Compiled = CompiledProgram::compile(Program.clone());
    benchmark::DoNotOptimize(Compiled);
  }
}
BENCHMARK(BM_CompileHdiff);

void BM_DataflowAnalysisHdiff(benchmark::State &State) {
  auto Compiled = CompiledProgram::compile(
      workloads::horizontalDiffusion(8, 16, 16));
  for (auto _ : State) {
    auto Dataflow = analyzeDataflow(*Compiled);
    benchmark::DoNotOptimize(Dataflow);
  }
}
BENCHMARK(BM_DataflowAnalysisHdiff);

void BM_FuseHdiff(benchmark::State &State) {
  StencilProgram Program = workloads::horizontalDiffusion(8, 16, 16);
  for (auto _ : State) {
    StencilProgram Copy = Program.clone();
    auto Report = fuseAllStencils(Copy);
    benchmark::DoNotOptimize(Report);
  }
}
BENCHMARK(BM_FuseHdiff);

void BM_EmitOpenCLHdiff(benchmark::State &State) {
  auto Compiled = CompiledProgram::compile(
      workloads::horizontalDiffusion(8, 16, 16));
  auto Dataflow = analyzeDataflow(*Compiled);
  for (auto _ : State) {
    auto Sources = emitOpenCL(*Compiled, *Dataflow);
    benchmark::DoNotOptimize(Sources);
  }
}
BENCHMARK(BM_EmitOpenCLHdiff);

void BM_ReferenceExecutorCellsPerSecond(benchmark::State &State) {
  auto Compiled = CompiledProgram::compile(
      workloads::horizontalDiffusion(8, 32, 32));
  auto Inputs = materializeInputs(Compiled->program());
  int64_t Cells = Compiled->program().IterationSpace.numCells();
  for (auto _ : State) {
    auto Result = runReference(*Compiled, Inputs);
    benchmark::DoNotOptimize(Result);
  }
  State.SetItemsProcessed(State.iterations() * Cells);
}
BENCHMARK(BM_ReferenceExecutorCellsPerSecond);

void BM_SimulatorCyclesPerSecond(benchmark::State &State) {
  auto Compiled = CompiledProgram::compile(
      workloads::jacobi3dChain(8, 8, 16, 16));
  auto Dataflow = analyzeDataflow(*Compiled);
  sim::SimConfig Config;
  Config.UnconstrainedMemory = true;
  auto Inputs = materializeInputs(Compiled->program());
  int64_t Cycles = 0;
  for (auto _ : State) {
    auto M = sim::Machine::build(*Compiled, *Dataflow, nullptr, Config);
    auto Result = M->run(Inputs);
    benchmark::DoNotOptimize(Result);
    if (Result)
      Cycles = Result->Stats.Cycles;
  }
  State.SetItemsProcessed(State.iterations() * Cycles);
}
BENCHMARK(BM_SimulatorCyclesPerSecond);

// The reliable-transport guard: with a fault plan attached but empty, the
// remote streams run the full Go-Back-N protocol (sequence numbers,
// checksums, send window) yet must simulate the *same cycle count* as the
// plain transport — the simulated protocol overhead is zero, and the
// host-side bookkeeping must stay within ~2% wall-clock of the plain
// path. Compare this benchmark's rate against
// BM_SimulatorTwoDevicePlain to audit the latter; the former is asserted
// here (and bit-exactness in tests/fault_test.cpp).
void simulateTwoDeviceChain(benchmark::State &State,
                            const sim::FaultPlan *Plan) {
  auto Compiled = CompiledProgram::compile(
      workloads::jacobi3dChain(6, 8, 16, 16));
  auto Dataflow = analyzeDataflow(*Compiled);
  PartitionOptions Options;
  Options.TargetUtilization = 1.0;
  Options.Device.DSPs = 7 * 3; // Three chained stencils per device.
  Options.MaxDevices = 64;
  auto Placement = partitionProgram(*Compiled, *Dataflow, Options);
  sim::SimConfig Config;
  Config.UnconstrainedMemory = true;
  auto Inputs = materializeInputs(Compiled->program());
  Config.Faults = nullptr;
  auto Baseline =
      sim::Machine::build(*Compiled, *Dataflow, &*Placement, Config)
          ->run(Inputs);
  Config.Faults = Plan;
  int64_t Cycles = 0;
  for (auto _ : State) {
    auto M =
        sim::Machine::build(*Compiled, *Dataflow, &*Placement, Config);
    auto Result = M->run(Inputs);
    benchmark::DoNotOptimize(Result);
    if (Result)
      Cycles = Result->Stats.Cycles;
  }
  if (Plan && Cycles != Baseline->Stats.Cycles)
    State.SkipWithError("reliable transport changed the cycle count");
  State.SetItemsProcessed(State.iterations() * Cycles);
}

void BM_SimulatorTwoDevicePlain(benchmark::State &State) {
  simulateTwoDeviceChain(State, nullptr);
}
BENCHMARK(BM_SimulatorTwoDevicePlain);

void BM_SimulatorTwoDeviceReliable(benchmark::State &State) {
  static const sim::FaultPlan EmptyPlan;
  simulateTwoDeviceChain(State, &EmptyPlan);
}
BENCHMARK(BM_SimulatorTwoDeviceReliable);

} // namespace

BENCHMARK_MAIN();
