//===- bench/tab2_horizontal_diffusion.cpp - Table II reproduction ------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table II (horizontal diffusion benchmarks, 128x128x80
// domain) and the silicon-efficiency comparison of Sec. IX-C:
//
//   - "Stratix 10": the fused program, 8-way vectorized, simulated with
//     the DDR4 memory-controller model (memory bound, Sec. IX-B);
//   - "Stratix 10*": 16-way vectorized with simulated infinite memory
//     bandwidth (compute bound);
//   - "Xeon 12C" / "P100" / "V100": roofline comparator models at the
//     program's arithmetic intensity, plus an actual multi-threaded run
//     of the reference executor on this host for a real load/store
//     measurement.
//
//===----------------------------------------------------------------------===//

#include "baselines/Comparators.h"
#include "common/BenchUtils.h"
#include "runtime/ReferenceExecutor.h"
#include "sdfg/StencilFusion.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <thread>

using namespace stencilflow;
using namespace stencilflow::bench;
using namespace stencilflow::baselines;

namespace {

struct Row {
  std::string Name;
  double RuntimeUs = 0.0;
  double GOps = 0.0;
  std::string PeakBW;
  double PercentRoof = 0.0;
  double SiliconEff = -1.0;
};

void printRow(const Row &R) {
  std::printf("%-14s %10.0f %10.1f %12s ", R.Name.c_str(), R.RuntimeUs,
              R.GOps, R.PeakBW.c_str());
  if (R.PercentRoof > 0)
    std::printf("%7.0f%%", R.PercentRoof);
  else
    std::printf("%8s", "-");
  if (R.SiliconEff >= 0)
    std::printf(" %10.2f", R.SiliconEff);
  else
    std::printf(" %10s", "-");
  std::printf("\n");
}

} // namespace

int main() {
  const int64_t K = 80, J = 128, I = 128;
  printHeader("Table II - horizontal diffusion benchmarks (128x128x80)");

  // The fused program defines the executed operation count.
  StencilProgram Fused = workloads::horizontalDiffusion(K, J, I, 8);
  auto Fusion = fuseAllStencils(Fused);
  if (!Fusion) {
    std::printf("error: %s\n", Fusion.message().c_str());
    return 1;
  }
  auto Compiled = CompiledProgram::compile(Fused.clone());
  if (!Compiled) {
    std::printf("error: %s\n", Compiled.message().c_str());
    return 1;
  }
  RooflineAnalysis Roofline = computeRoofline(*Compiled);
  double TotalOps = static_cast<double>(Compiled->totalCensus().flops()) *
                    static_cast<double>(K * J * I);
  std::printf("program: %zu fused stencils, %.0f MOp per evaluation, "
              "intensity %.2f Op/B\n\n",
              Compiled->program().Nodes.size(), TotalOps / 1e6,
              Roofline.OpsPerByte);

  std::printf("%-14s %10s %10s %12s %8s %10s\n", "platform",
              "runtime/us", "GOp/s", "peak BW", "%Roof.",
              "GOp/s/mm2");

  // --- Stratix 10 (DDR4-bound, W=8) ---------------------------------------
  {
    auto Dataflow = analyzeDataflow(*Compiled);
    ModelPoint Model = evaluateModel(*Compiled, *Dataflow);
    sim::SimConfig Config; // Constrained memory.
    SimPoint Sim = simulate(*Compiled, *Dataflow, nullptr, Config);
    Row R;
    R.Name = "Stratix 10";
    if (Sim.Succeeded) {
      double Seconds = static_cast<double>(Sim.Cycles) /
                       (Model.FrequencyMHz * 1e6);
      R.RuntimeUs = Seconds * 1e6;
      R.GOps = TotalOps / Seconds / 1e9;
      R.PeakBW = formatString(
          "%.0f GB/s", Sim.AchievedBytesPerCycle * Model.FrequencyMHz *
                           1e6 / 1e9);
      R.PercentRoof =
          100.0 * R.GOps * 1e9 / Roofline.boundPerformance(76.8e9);
      R.SiliconEff = R.GOps / PlatformSpec::stratix10DieAreaMM2();
    } else {
      R.PeakBW = "FAILED: " + Sim.Message;
    }
    printRow(R);
    std::printf("%-14s %10s %10s %12s (paper)\n", "", "1178", "145",
                "77 GB/s");
  }

  // --- Stratix 10* (simulated infinite bandwidth, W=16) -------------------
  {
    StencilProgram Wide = workloads::horizontalDiffusion(K, J, I, 16);
    auto WideFusion = fuseAllStencils(Wide);
    (void)WideFusion;
    auto WideCompiled = CompiledProgram::compile(std::move(Wide));
    auto Dataflow = analyzeDataflow(*WideCompiled);
    ModelPoint Model = evaluateModel(*WideCompiled, *Dataflow);
    sim::SimConfig Config;
    Config.UnconstrainedMemory = true;
    SimPoint Sim = simulate(*WideCompiled, *Dataflow, nullptr, Config);
    Row R;
    R.Name = "Stratix 10*";
    if (Sim.Succeeded) {
      double Seconds = static_cast<double>(Sim.Cycles) /
                       (Model.FrequencyMHz * 1e6);
      R.RuntimeUs = Seconds * 1e6;
      R.GOps = TotalOps / Seconds / 1e9;
      R.PeakBW = "inf";
      R.SiliconEff = R.GOps / PlatformSpec::stratix10DieAreaMM2();
    } else {
      R.PeakBW = "FAILED: " + Sim.Message;
    }
    printRow(R);
    std::printf("%-14s %10s %10s %12s (paper)\n", "", "332", "513", "inf");
  }

  // --- Load/store comparators (roofline models, Sec. IX-B) ----------------
  struct PaperRow {
    PlatformSpec Spec;
    double PaperRuntime;
    double PaperGOps;
  };
  for (const PaperRow &Comparator :
       {PaperRow{PlatformSpec::xeon12c(), 5270, 32},
        PaperRow{PlatformSpec::p100(), 810, 210},
        PaperRow{PlatformSpec::v100(), 201, 849}}) {
    PlatformResult Result = modelPlatform(Comparator.Spec, TotalOps,
                                          Roofline.OpsPerByte);
    Row R;
    R.Name = Comparator.Spec.Name;
    R.RuntimeUs = Result.RuntimeSeconds * 1e6;
    R.GOps = Result.OpsPerSecond / 1e9;
    R.PeakBW = formatString(
        "%.0f GB/s", Comparator.Spec.PeakBandwidthBytesPerSec / 1e9);
    R.PercentRoof = 100.0 * Result.FractionOfRoofline;
    R.SiliconEff = Result.SiliconEfficiency >= 0 &&
                           Comparator.Spec.DieAreaMM2 > 0
                       ? Result.SiliconEfficiency
                       : -1.0;
    printRow(R);
    std::printf("%-14s %10.0f %10.0f %12s (paper)\n", "",
                Comparator.PaperRuntime, Comparator.PaperGOps, "");
  }

  // --- A real load/store measurement on this host -------------------------
  {
    unsigned Threads = std::max(1u, std::thread::hardware_concurrency());
    auto Inputs = materializeInputs(Compiled->program());
    auto Start = std::chrono::steady_clock::now();
    auto Result = runReferenceParallel(*Compiled, Inputs,
                                       static_cast<int>(Threads));
    auto End = std::chrono::steady_clock::now();
    double Seconds = std::chrono::duration<double>(End - Start).count();
    if (Result)
      std::printf("\nthis host (%u thread(s), interpreted reference "
                  "executor): %.0f us, %.2f GOp/s\n",
                  Threads, Seconds * 1e6, TotalOps / Seconds / 1e9);
  }

  std::printf("\npaper silicon efficiency (Sec. IX-C): Stratix 10 "
              "0.21 / 0.71 (with/without memory bottleneck), P100 0.34, "
              "V100 1.04 GOp/s/mm2\n");
  return 0;
}
