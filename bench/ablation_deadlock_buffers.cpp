//===- bench/ablation_deadlock_buffers.cpp - Fig. 4/8 ablation ----------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablation of the delay-buffer analysis (Fig. 4, Fig. 8, Sec. IV-B): runs
// the reconvergent diamond DAG with channel capacities swept from the
// bare minimum up to the analysis-computed depth. Capacities below the
// required delay deadlock (detected and reported by the simulator);
// capacities at or above it stream to completion in exactly C = L + N
// cycles.
//
//===----------------------------------------------------------------------===//

#include "common/BenchUtils.h"
#include "frontend/Parser.h"
#include "frontend/SemanticAnalysis.h"

#include <cstdio>

using namespace stencilflow;
using namespace stencilflow::bench;

namespace {

StencilProgram buildDiamond(int64_t Size) {
  StencilProgram Program;
  Program.Name = "diamond";
  Program.IterationSpace = Shape({Size, Size});
  Field Input;
  Input.Name = "in";
  Input.DimensionMask = {true, true};
  Input.Source = DataSource::random(4);
  Program.Inputs.push_back(std::move(Input));
  auto addNode = [&](const std::string &Name, const std::string &Source) {
    StencilNode Node;
    Node.Name = Name;
    Node.Code = parseStencilCode(Source).takeValue();
    Program.Nodes.push_back(std::move(Node));
  };
  addNode("A", "A = in[0, 0] * 2.0;");
  addNode("B", "B = A[-1, 0] + A[1, 0] + A[0, -1] + A[0, 1];");
  addNode("C", "C = A[0, 0] + B[0, 0];");
  Program.Outputs = {"C"};
  Error Err = analyzeProgram(Program);
  assert(!Err);
  (void)Err;
  return Program;
}

} // namespace

int main() {
  printHeader("Ablation - delay buffers vs. deadlock (Fig. 4 diamond)");
  const int64_t Size = 48;
  auto Compiled = CompiledProgram::compile(buildDiamond(Size));
  auto Dataflow = analyzeDataflow(*Compiled);
  const DataflowEdge *Critical = Dataflow->findEdge("A", "C");
  std::printf("analysis: edge A->C requires a delay buffer of %lld "
              "vectors (B's initialization %lld + circuit %lld minus "
              "A->C's own fill)\n\n",
              static_cast<long long>(Critical->BufferDepth),
              static_cast<long long>(Dataflow->nodeInfo("B").InitCycles),
              static_cast<long long>(
                  Dataflow->nodeInfo("B").CircuitLatency));

  std::printf("%16s %10s %12s %10s\n", "channel depth", "outcome",
              "cycles", "C=L+N");
  for (int64_t Depth :
       {static_cast<int64_t>(4), static_cast<int64_t>(16),
        Critical->BufferDepth / 2, Critical->BufferDepth - 1,
        Critical->BufferDepth + 2, Critical->BufferDepth + 8}) {
    sim::SimConfig Config;
    Config.UnconstrainedMemory = true;
    Config.ClampChannelsToMinimum = Depth <= Critical->BufferDepth;
    Config.MinChannelDepth = Depth;
    SimPoint Sim = simulate(*Compiled, *Dataflow, nullptr, Config);
    if (Sim.Succeeded)
      std::printf("%16lld %10s %12lld %10lld\n",
                  static_cast<long long>(Depth), "completes",
                  static_cast<long long>(Sim.Cycles),
                  static_cast<long long>(Sim.ExpectedCycles));
    else
      std::printf("%16lld %10s %12s %10s\n",
                  static_cast<long long>(Depth), "DEADLOCK", "-", "-");
  }

  std::printf("\nwith analysis-sized buffers the program streams to "
              "completion at the Eq. 1 bound; undersized channels "
              "reproduce the Fig. 4 deadlock.\n");
  return 0;
}
