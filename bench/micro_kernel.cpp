//===- bench/micro_kernel.cpp - Kernel execution engine micro-benchmarks ------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark timings of the kernel execution tiers
// (compute/Engine.h) over representative stencil tapes:
//
//   * jacobi2d  — the 5-point Laplacian weighted sum (specializes into the
//                 weighted-sum chain evaluator),
//   * jacobi3d  — the 7-point Jacobi weighted sum,
//   * hdiff     — an hdiff-class tape with select/min/max/sqrt that cannot
//                 chain-specialize (the Specialized tier falls back to the
//                 fused batched tape).
//
// The Jit tier compiles each tape to native code through the host
// toolchain and the Auto tier picks a tier per kernel; both register only
// when a compiler is available, so the benchmark binary still runs on
// toolchain-less machines (check_perf.py tolerates the missing names).
//
// Every non-scalar benchmark first proves itself bit-exact against the
// scalar reference interpreter on a randomized probe set (NaN payloads
// excepted, see tests/engine_test.cpp) and aborts with SkipWithError on
// any mismatch — a speedup only counts when the bits agree.
//
// The checked-in baseline lives in bench/baselines/micro_kernel_baseline.json
// and is enforced by tools/check_perf.py in CI.
//
//===----------------------------------------------------------------------===//

#include "compute/Engine.h"
#include "compute/Jit.h"
#include "compute/Kernel.h"
#include "frontend/Parser.h"
#include "frontend/SemanticAnalysis.h"
#include "ir/StencilProgram.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

using namespace stencilflow;
using namespace stencilflow::compute;

namespace {

/// Compiles a single-node program around \p Source into a Kernel.
Kernel makeKernel(const std::string &Source,
                  const std::vector<int64_t> &Extents,
                  DataType Type = DataType::Float32) {
  StencilProgram P;
  P.IterationSpace = Shape(Extents);
  Field Input;
  Input.Name = "a";
  Input.Type = Type;
  Input.DimensionMask = std::vector<bool>(P.IterationSpace.rank(), true);
  Input.Source = DataSource::random(7);
  P.Inputs.push_back(std::move(Input));
  StencilNode Node;
  Node.Name = "out";
  Node.Type = Type;
  auto Code = parseStencilCode(Source);
  if (!Code)
    std::abort();
  Node.Code = Code.takeValue();
  P.Nodes.push_back(std::move(Node));
  P.Outputs = {"out"};
  if (analyzeProgram(P))
    std::abort();
  auto Compiled = Kernel::compile(*P.findNode("out"), {});
  if (!Compiled)
    std::abort();
  return Compiled.takeValue();
}

const char *Jacobi2dSource =
    "out = a[-1, 0] + a[1, 0] + a[0, -1] + a[0, 1] - 4.0 * a[0, 0];";

const char *Jacobi3dSource =
    "out = 0.142857 * (a[0,0,0] + a[-1,0,0] + a[1,0,0] + a[0,-1,0] + "
    "a[0,1,0] + a[0,0,-1] + a[0,0,1]);";

// An hdiff-class tape: Laplacian plus flux limiting through compares and
// selects, with min/max/sqrt mixed in. No chain form exists, so this
// measures the fused batched tape under the Specialized tier.
const char *HdiffSource =
    "lap = a[-1, 0] + a[1, 0] + a[0, -1] + a[0, 1] - 4.0 * a[0, 0];"
    "flx = lap * (a[0, 1] - a[0, 0]);"
    "fly = lap * (a[1, 0] - a[0, 0]);"
    "fx = flx > 0.0 ? 0.0 : flx;"
    "fy = fly > 0.0 ? 0.0 : fly;"
    "out = a[0, 0] - 0.25 * (fx + fy) + sqrt(fabs(min(flx, max(fly, "
    "lap))));";

uint64_t bitsOf(double Value) {
  uint64_t Pattern;
  std::memcpy(&Pattern, &Value, sizeof(Pattern));
  return Pattern;
}

/// Verifies \p Eval matches the scalar reference bit-for-bit over a
/// randomized probe set (zeros included: the drain-padding case). Both-NaN
/// results compare equal regardless of payload.
bool verifyAgainstScalar(const Kernel &Krn, const KernelEvaluator &Eval,
                         int Lanes) {
  KernelEvaluator Ref = KernelEvaluator::compile(Krn, KernelEngine::Scalar,
                                                 Lanes);
  size_t NumInputs = Krn.inputs().size();
  std::vector<double> SoA(NumInputs * static_cast<size_t>(Lanes));
  std::vector<double> OutGot(static_cast<size_t>(Lanes));
  std::vector<double> OutWant(static_cast<size_t>(Lanes));
  std::vector<double> ScratchGot(Eval.scratchDoubles());
  std::vector<double> ScratchWant(Ref.scratchDoubles());
  Random Rng(1234);
  for (int Probe = 0; Probe != 64; ++Probe) {
    for (double &V : SoA)
      V = Probe == 0 ? 0.0 : Rng.nextDoubleInRange(-8.0, 8.0);
    Eval.evaluate(SoA.data(), OutGot.data(), ScratchGot.data());
    Ref.evaluate(SoA.data(), OutWant.data(), ScratchWant.data());
    for (int Lane = 0; Lane != Lanes; ++Lane) {
      if (std::isnan(OutGot[Lane]) && std::isnan(OutWant[Lane]))
        continue;
      if (bitsOf(OutGot[Lane]) != bitsOf(OutWant[Lane]))
        return false;
    }
  }
  return true;
}

/// Times one tier over one kernel at vector width \p Lanes. Items
/// processed counts lanes (cells) per evaluate, so rates compare directly
/// across tiers.
void runTier(benchmark::State &State, const Kernel &Krn, KernelEngine Tier,
             int Lanes) {
  KernelEvaluator Eval = KernelEvaluator::compile(Krn, Tier, Lanes);
  if (Tier != KernelEngine::Scalar && !verifyAgainstScalar(Krn, Eval, Lanes)) {
    State.SkipWithError("tier diverges from the scalar reference");
    return;
  }
  size_t NumInputs = Krn.inputs().size();
  std::vector<double> SoA(NumInputs * static_cast<size_t>(Lanes));
  Random Rng(99);
  for (double &V : SoA)
    V = Rng.nextDoubleInRange(-4.0, 4.0);
  std::vector<double> Out(static_cast<size_t>(Lanes));
  std::vector<double> Scratch(Eval.scratchDoubles());
  for (auto _ : State) {
    Eval.evaluate(SoA.data(), Out.data(), Scratch.data());
    benchmark::DoNotOptimize(Out.data());
    benchmark::ClobberMemory();
  }
  State.SetItemsProcessed(State.iterations() * Lanes);
  State.SetLabel(std::string(kernelEngineName(Eval.tier())) +
                 (Eval.specialization().empty()
                      ? ""
                      : ":" + std::string(Eval.specialization())));
}

const Kernel &jacobi2d() {
  static Kernel Krn = makeKernel(Jacobi2dSource, {64, 64});
  return Krn;
}
const Kernel &jacobi3d() {
  static Kernel Krn = makeKernel(Jacobi3dSource, {16, 16, 16});
  return Krn;
}
const Kernel &hdiff() {
  static Kernel Krn = makeKernel(HdiffSource, {64, 64});
  return Krn;
}

void BM_Jacobi2D_Scalar(benchmark::State &State) {
  runTier(State, jacobi2d(), KernelEngine::Scalar, 8);
}
void BM_Jacobi2D_Batched(benchmark::State &State) {
  runTier(State, jacobi2d(), KernelEngine::Batched, 8);
}
void BM_Jacobi2D_Specialized(benchmark::State &State) {
  runTier(State, jacobi2d(), KernelEngine::Specialized, 8);
}
void BM_Jacobi2D_Jit(benchmark::State &State) {
  runTier(State, jacobi2d(), KernelEngine::Jit, 8);
}
void BM_Jacobi2D_Auto(benchmark::State &State) {
  runTier(State, jacobi2d(), KernelEngine::Auto, 8);
}
BENCHMARK(BM_Jacobi2D_Scalar);
BENCHMARK(BM_Jacobi2D_Batched);
BENCHMARK(BM_Jacobi2D_Specialized);

void BM_Jacobi3D_Scalar(benchmark::State &State) {
  runTier(State, jacobi3d(), KernelEngine::Scalar, 8);
}
void BM_Jacobi3D_Batched(benchmark::State &State) {
  runTier(State, jacobi3d(), KernelEngine::Batched, 8);
}
void BM_Jacobi3D_Specialized(benchmark::State &State) {
  runTier(State, jacobi3d(), KernelEngine::Specialized, 8);
}
void BM_Jacobi3D_Jit(benchmark::State &State) {
  runTier(State, jacobi3d(), KernelEngine::Jit, 8);
}
void BM_Jacobi3D_Auto(benchmark::State &State) {
  runTier(State, jacobi3d(), KernelEngine::Auto, 8);
}
BENCHMARK(BM_Jacobi3D_Scalar);
BENCHMARK(BM_Jacobi3D_Batched);
BENCHMARK(BM_Jacobi3D_Specialized);

void BM_Hdiff_Scalar(benchmark::State &State) {
  runTier(State, hdiff(), KernelEngine::Scalar, 8);
}
void BM_Hdiff_Batched(benchmark::State &State) {
  runTier(State, hdiff(), KernelEngine::Batched, 8);
}
void BM_Hdiff_Specialized(benchmark::State &State) {
  runTier(State, hdiff(), KernelEngine::Specialized, 8);
}
void BM_Hdiff_Jit(benchmark::State &State) {
  runTier(State, hdiff(), KernelEngine::Jit, 8);
}
void BM_Hdiff_Auto(benchmark::State &State) {
  runTier(State, hdiff(), KernelEngine::Auto, 8);
}
BENCHMARK(BM_Hdiff_Scalar);
BENCHMARK(BM_Hdiff_Batched);
BENCHMARK(BM_Hdiff_Specialized);

// Scalar width 1: the serial pre-PR configuration, for reference.
void BM_Jacobi2D_ScalarW1(benchmark::State &State) {
  runTier(State, jacobi2d(), KernelEngine::Scalar, 1);
}
void BM_Jacobi2D_SpecializedW1(benchmark::State &State) {
  runTier(State, jacobi2d(), KernelEngine::Specialized, 1);
}
BENCHMARK(BM_Jacobi2D_ScalarW1);
BENCHMARK(BM_Jacobi2D_SpecializedW1);

/// The Jit/Auto benchmarks only make sense when a host compiler exists;
/// registering them conditionally keeps the binary runnable (and the perf
/// check meaningful) on toolchain-less machines — check_perf.py warns
/// about baseline names missing from the current run instead of failing.
int registerJitBenchmarks() {
  if (!jit::compilerAvailable())
    return 0;
  BENCHMARK(BM_Jacobi2D_Jit);
  BENCHMARK(BM_Jacobi2D_Auto);
  BENCHMARK(BM_Jacobi3D_Jit);
  BENCHMARK(BM_Jacobi3D_Auto);
  BENCHMARK(BM_Hdiff_Jit);
  BENCHMARK(BM_Hdiff_Auto);
  return 1;
}
const int JitBenchmarksRegistered = registerJitBenchmarks();

} // namespace

BENCHMARK_MAIN();
