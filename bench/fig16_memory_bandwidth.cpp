//===- bench/fig16_memory_bandwidth.cpp - Fig. 16 reproduction ----------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Fig. 16: effective off-chip bandwidth as the number of
// parallel access points grows, for scalar (32-bit per access point) and
// 4-way vectorized endpoints. Programs with P independent input streams
// feeding a single reduction stencil are run on the simulator with the
// DDR4 memory-controller model (4 banks, 76.8 GB/s peak, per-transaction
// overhead and crossbar arbitration pressure).
//
// Paper reference points: scalar flattens at 36.4 GB/s (47% of peak)
// after ~24 access points; 4-way vectorized reaches 58.3 GB/s (76% of
// peak) with a mild efficiency dip (~0.94x) at 12 access points.
//
//===----------------------------------------------------------------------===//

#include "baselines/Comparators.h"
#include "common/BenchUtils.h"
#include "frontend/SemanticAnalysis.h"
#include "frontend/Parser.h"
#include "sdfg/TemporalUnroll.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace stencilflow;
using namespace stencilflow::bench;

namespace {

/// P input streams summed into one output: P + 1 memory endpoints.
StencilProgram buildAccessPointProgram(int Points, int64_t Cells, int W) {
  StencilProgram Program;
  Program.Name = formatString("bw_%dpt_w%d", Points, W);
  Program.IterationSpace = Shape({Cells});
  Program.VectorWidth = W;
  std::string Sum;
  for (int P = 0; P < Points; ++P) {
    Field Input;
    Input.Name = formatString("in%d", P);
    Input.DimensionMask = {true};
    Input.Source = DataSource::random(static_cast<uint64_t>(P) + 1);
    Program.Inputs.push_back(std::move(Input));
    if (P)
      Sum += " + ";
    Sum += formatString("in%d[0]", P);
  }
  StencilNode Node;
  Node.Name = "out";
  Node.Code = parseStencilCode("out = " + Sum + ";").takeValue();
  Program.Nodes.push_back(std::move(Node));
  Program.Outputs = {"out"};
  Error Err = analyzeProgram(Program);
  assert(!Err && "bandwidth program failed analysis");
  (void)Err;
  return Program;
}

/// One measured configuration: effective bandwidth plus the stall
/// attribution that explains the plateau.
struct BandwidthPoint {
  double GBs = 0.0;
  /// Fraction of endpoint stall cycles denied by the memory controller —
  /// ~1.0 on the plateau (bandwidth-bound), ~0 before it.
  double MemoryDeniedShare = 0.0;
  std::string DominantStall = "none";
};

/// Simulated effective bandwidth in GB/s at \p FrequencyMHz.
BandwidthPoint measure(int Points, int W, double FrequencyMHz) {
  int64_t Cells = 16384 * W;
  auto Compiled =
      CompiledProgram::compile(buildAccessPointProgram(Points, Cells, W));
  assert(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  sim::SimConfig Config; // DDR4 model on by default.
  SimPoint Sim = simulate(*Compiled, *Dataflow, nullptr, Config);
  BandwidthPoint Point;
  if (!Sim.Succeeded) {
    std::printf("  simulation failed: %s\n", Sim.Message.c_str());
    return Point;
  }
  Point.GBs = Sim.AchievedBytesPerCycle * FrequencyMHz * 1e6 / 1e9;
  int64_t EndpointTotal = Sim.EndpointStalls.total();
  if (EndpointTotal > 0)
    Point.MemoryDeniedShare =
        static_cast<double>(
            Sim.EndpointStalls[sim::StallCause::MemoryDenied]) /
        static_cast<double>(EndpointTotal);
  Point.DominantStall = Sim.dominantStall();
  return Point;
}

} // namespace

int main() {
  const double FrequencyMHz = 300.0;
  const double PeakGBs = 256.0 * FrequencyMHz * 1e6 / 1e9; // 76.8 GB/s.
  printHeader(formatString(
      "Fig. 16 - effective bandwidth vs. parallel access points (peak "
      "%.1f GB/s)",
      PeakGBs));

  std::printf("%10s %12s %14s %14s %10s %12s %10s\n", "operands",
              "requested", "scalar GB/s", "W=4 GB/s", "bound",
              "mem-denied", "dominant");
  for (int Operands : {1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48,
                       56, 64, 80, 96}) {
    // Requested bandwidth if memory were infinite: operands * 4 B/cycle
    // (reads) + one output stream.
    double Requested =
        (Operands + 1) * 4.0 * FrequencyMHz * 1e6 / 1e9;
    BandwidthPoint Scalar = measure(Operands, 1, FrequencyMHz);
    BandwidthPoint Vectorized;
    if (Operands % 4 == 0)
      Vectorized = measure(Operands / 4, 4, FrequencyMHz);
    std::printf("%10d %11.1f %14.1f %14s %9.1f %11.0f%% %10s\n", Operands,
                Requested, Scalar.GBs,
                Operands % 4 == 0
                    ? formatString("%.1f", Vectorized.GBs).c_str()
                    : "-",
                std::min(Requested, PeakGBs),
                100.0 * Scalar.MemoryDeniedShare,
                Scalar.DominantStall.c_str());
  }
  std::printf("\npaper plateaus: scalar 36.4 GB/s (47%% of peak), "
              "4-way vectorized 58.3 GB/s (76%% of peak)\n");
  std::printf("mem-denied / dominant: share of scalar endpoint stall "
              "cycles denied by the memory controller, and the dominant "
              "stall cause — the plateau is reached exactly when "
              "memory-denied dominates\n");

  // Temporal blocking against the analytic Zohouri-style roofline
  // (baselines::estimateTemporalBlocking): for each unroll degree T the
  // analytic column predicts T * flops/cell * W * f derated by the halo
  // redundancy of spatial blocking, with the estimator's device budget
  // clamped so it sizes exactly T steps. The measured column runs the
  // T-deep unrolled diffusion2d pipeline on the simulator with the same
  // DDR4 memory model as the sweep above and reports its sustained
  // GOp/s at 300 MHz; the error column records how far the analytic
  // roofline sits from cycle-accurate reality (pipeline drain and
  // memory-transaction overhead, which the estimate ignores).
  printHeader("Temporal blocking roofline - analytic estimate vs. "
              "simulated unrolled pipeline (diffusion2d, W=1, 300 MHz)");
  StencilProgram Step = workloads::diffusion2dChain(1, 64, 96);
  auto StepCompiled = CompiledProgram::compile(Step.clone());
  assert(StepCompiled);
  auto StepDataflow = analyzeDataflow(*StepCompiled);
  RuntimeEstimate StepRuntime =
      computeRuntimeEstimate(*StepCompiled, *StepDataflow);
  ResourceUsage StepResources =
      estimateProgramResources(*StepCompiled, *StepDataflow);

  std::printf("%4s %15s %15s %9s %13s %12s\n", "T", "analytic GOp/s",
              "measured GOp/s", "error", "bytes/step", "GB/s");
  for (int T : {1, 2, 4, 8}) {
    baselines::TemporalBlockingConfig Config;
    Config.VectorWidth = Step.VectorWidth;
    Config.FrequencyMHz = FrequencyMHz;
    // Budget the estimator's device to exactly T steps so it becomes a
    // per-degree roofline instead of a deepest-fit design point.
    Config.Device.DSPs = StepResources.DSPs * T;
    baselines::TemporalBlockingEstimate Estimate =
        baselines::estimateTemporalBlocking(
            StepRuntime.FlopsPerCell, StepResources.DSPs,
            StepResources.ALMs, Step.IterationSpace.rank(), Config);

    auto Unrolled = sdfg::unrollTimeSteps(Step, T);
    assert(Unrolled);
    auto Compiled = CompiledProgram::compile(Unrolled.takeValue());
    assert(Compiled);
    auto Dataflow = analyzeDataflow(*Compiled);
    sim::SimConfig SimCfg; // DDR4 model on by default.
    SimPoint Sim = simulate(*Compiled, *Dataflow, nullptr, SimCfg);
    if (!Sim.Succeeded) {
      std::printf("%4d  simulation failed: %s\n", T, Sim.Message.c_str());
      continue;
    }
    RuntimeEstimate Runtime = computeRuntimeEstimate(*Compiled, *Dataflow);
    double Seconds =
        static_cast<double>(Sim.Cycles) / (FrequencyMHz * 1e6);
    double MeasuredGOps =
        static_cast<double>(Runtime.TotalFlops) / Seconds / 1e9;
    double ErrorPct = 100.0 *
                      (Estimate.EffectiveGOpPerSecond - MeasuredGOps) /
                      MeasuredGOps;
    std::printf("%4d %15.2f %15.2f %8.1f%% %13.0f %12.2f\n", T,
                Estimate.EffectiveGOpPerSecond, MeasuredGOps, ErrorPct,
                Sim.MemoryBytesMoved / static_cast<double>(T),
                Sim.MemoryBytesMoved / Seconds / 1e9);
  }
  std::printf("\nbytes/step: off-chip traffic per generation — constant "
              "input+output volume amortized over T on-chip timesteps\n");
  return 0;
}
