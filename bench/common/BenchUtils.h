//===- bench/common/BenchUtils.h - Shared benchmark helpers -------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the benchmark harnesses: model-based performance
/// evaluation of a program (resource estimate, frequency, Eq. 1 runtime)
/// and simulator-based verification on scaled domains.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_BENCH_COMMON_BENCHUTILS_H
#define STENCILFLOW_BENCH_COMMON_BENCHUTILS_H

#include "core/DataflowAnalysis.h"
#include "core/Partitioner.h"
#include "core/ResourceModel.h"
#include "core/RuntimeModel.h"
#include "runtime/InputData.h"
#include "sim/Machine.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <string>

namespace stencilflow {
namespace bench {

/// Model-based evaluation of a single-device program: Eq. 1 cycles at the
/// utilization-derived frequency.
struct ModelPoint {
  RuntimeEstimate Runtime;
  ResourceUsage Resources;
  double FrequencyMHz = 0.0;
  double GOps = 0.0;
  bool Fits = true;
};

inline ModelPoint evaluateModel(const CompiledProgram &Compiled,
                                const DataflowAnalysis &Dataflow,
                                const DeviceResources &Device =
                                    DeviceResources::stratix10GX2800()) {
  ModelPoint Point;
  Point.Runtime = computeRuntimeEstimate(Compiled, Dataflow);
  Point.Resources = estimateProgramResources(Compiled, Dataflow);
  Point.FrequencyMHz = estimateFrequencyMHz(Point.Resources, Device);
  Point.GOps =
      Point.Runtime.opsPerSecond(Point.FrequencyMHz * 1e6) / 1e9;
  Point.Fits = Point.Resources.fitsWithin(Device);
  return Point;
}

/// Runs the cycle simulator and reports the achieved fraction of the
/// model bound (1.0 = the pipeline sustained II=1 end to end), plus the
/// stall attribution explaining any shortfall.
struct SimPoint {
  int64_t Cycles = 0;
  int64_t ExpectedCycles = 0;
  double EfficiencyVsModel = 0.0;
  double AchievedBytesPerCycle = 0.0;
  /// Total off-chip traffic of the run, summed over all devices. The
  /// temporal-blocking sweeps gate on this: a T-deep unrolled pipeline
  /// must move ~T-fold fewer bytes than T host-loop passes.
  double MemoryBytesMoved = 0.0;
  bool Succeeded = false;
  std::string Message;

  /// Aggregated per-cause stall cycles across all stencil units, and
  /// across the memory endpoints (readers + writers). When a bench
  /// plateaus, the dominant cause says why: memory-denied endpoint stalls
  /// mean bandwidth saturation (Fig. 16), input-starved unit stalls point
  /// upstream, output-blocked ones point downstream.
  sim::StallBreakdown UnitStalls;
  sim::StallBreakdown EndpointStalls;

  /// Short label of the dominant stall cause overall, "none" if the run
  /// never stalled.
  std::string dominantStall() const {
    sim::StallBreakdown Total = UnitStalls;
    Total += EndpointStalls;
    if (Total.total() == 0)
      return "none";
    return sim::stallCauseName(Total.dominant());
  }
};

inline SimPoint simulate(const CompiledProgram &Compiled,
                         const DataflowAnalysis &Dataflow,
                         const Partition *Placement = nullptr,
                         sim::SimConfig Config = {}) {
  SimPoint Point;
  auto M = sim::Machine::build(Compiled, Dataflow, Placement, Config);
  if (!M) {
    Point.Message = M.message();
    return Point;
  }
  auto Inputs = materializeInputs(Compiled.program());
  auto Result = M->run(Inputs);
  if (!Result) {
    Point.Message = Result.message();
    return Point;
  }
  Point.Succeeded = true;
  Point.Cycles = Result->Stats.Cycles;
  Point.ExpectedCycles = M->expectedCycles();
  Point.EfficiencyVsModel = static_cast<double>(Point.ExpectedCycles) /
                            static_cast<double>(Point.Cycles);
  for (double Bytes : Result->Stats.AchievedMemoryBytesPerCycle)
    Point.AchievedBytesPerCycle += Bytes;
  for (double Bytes : Result->Stats.MemoryBytesMoved)
    Point.MemoryBytesMoved += Bytes;
  for (const auto &[Name, Stalls] : Result->Stats.UnitStalls)
    Point.UnitStalls += Stalls;
  for (const auto &[Name, Stalls] : Result->Stats.ReaderStalls)
    Point.EndpointStalls += Stalls;
  for (const auto &[Name, Stalls] : Result->Stats.WriterStalls)
    Point.EndpointStalls += Stalls;
  return Point;
}

/// Prints a horizontal rule and a centered title.
inline void printHeader(const std::string &Title) {
  std::printf("\n%s\n%s\n%s\n",
              std::string(78, '=').c_str(), Title.c_str(),
              std::string(78, '=').c_str());
}

} // namespace bench
} // namespace stencilflow

#endif // STENCILFLOW_BENCH_COMMON_BENCHUTILS_H
