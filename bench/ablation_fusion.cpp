//===- bench/ablation_fusion.cpp - Sec. V-B fusion ablation -------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablation of the StencilFusion transformation (Sec. V-B): for the
// horizontal-diffusion case study and synthetic chains, compares the
// unfused and aggressively fused programs on: node count, pipeline
// latency L, on-chip buffer footprint, resource estimate, and simulated
// cycles. Spatial fusion does not change the schedule — it coarsens
// stencil units (fewer pipelines, better useful-logic ratio) and prunes
// initialization latencies when windows overlap.
//
//===----------------------------------------------------------------------===//

#include "common/BenchUtils.h"
#include "sdfg/StencilFusion.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace stencilflow;
using namespace stencilflow::bench;

namespace {

void compare(const char *Title, StencilProgram Program, bool Simulate) {
  std::printf("\n--- %s ---\n", Title);
  StencilProgram FusedProgram = Program.clone();
  auto Fusion = fuseAllStencils(FusedProgram);
  if (!Fusion) {
    std::printf("fusion failed: %s\n", Fusion.message().c_str());
    return;
  }

  std::printf("%-12s %8s %10s %12s %10s %8s %10s\n", "variant", "nodes",
              "L/cycles", "buffers/el", "ALM", "DSP", "sim-cycles");
  for (bool UseFused : {false, true}) {
    const StencilProgram &Variant = UseFused ? FusedProgram : Program;
    auto Compiled = CompiledProgram::compile(Variant.clone());
    if (!Compiled) {
      std::printf("compile failed: %s\n", Compiled.message().c_str());
      return;
    }
    auto Dataflow = analyzeDataflow(*Compiled);
    ModelPoint Model = evaluateModel(*Compiled, *Dataflow);
    int64_t BufferElements =
        Dataflow->totalDelayBufferElements(Variant.VectorWidth);
    for (const NodeBuffers &Buffers : Dataflow->Buffers)
      BufferElements += Buffers.totalBufferElements();

    std::string SimText = "-";
    if (Simulate) {
      sim::SimConfig Config;
      Config.UnconstrainedMemory = true;
      SimPoint Sim = simulate(*Compiled, *Dataflow, nullptr, Config);
      SimText = Sim.Succeeded
                    ? formatString("%lld",
                                   static_cast<long long>(Sim.Cycles))
                    : "FAIL";
    }
    std::printf("%-12s %8zu %10lld %12lld %9lldK %8lld %10s\n",
                UseFused ? "fused" : "unfused", Variant.Nodes.size(),
                static_cast<long long>(Dataflow->PipelineLatency),
                static_cast<long long>(BufferElements),
                static_cast<long long>(Model.Resources.ALMs / 1000),
                static_cast<long long>(Model.Resources.DSPs),
                SimText.c_str());
  }
  std::printf("(%d pairs fused)\n", Fusion->FusedPairs);
}

} // namespace

int main() {
  printHeader("Ablation - aggressive stencil fusion (Sec. V-B)");

  compare("horizontal diffusion 16x32x32",
          workloads::horizontalDiffusion(16, 32, 32), /*Simulate=*/true);
  compare("Jacobi 3D chain x4, 16x24x24",
          workloads::jacobi3dChain(4, 16, 24, 24), /*Simulate=*/true);
  compare("Diffusion 2D chain x6, 96x96",
          workloads::diffusion2dChain(6, 96, 96), /*Simulate=*/true);
  compare("horizontal diffusion 80x128x128 (analysis only)",
          workloads::horizontalDiffusion(80, 128, 128),
          /*Simulate=*/false);

  std::printf("\nnote: fusing a chain folds all its stencil units into "
              "one coarse unit — the number of pipelines (and with it "
              "per-unit control overhead) drops, while compute logic is "
              "conserved or duplicated at the boundary halo.\n");
  return 0;
}
