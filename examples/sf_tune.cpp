//===- examples/sf_tune.cpp - Mapping autotuner CLI ----------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Design-space exploration over the paper's mapping knobs — vectorization
// width (Sec. IV-C), stencil fusion (Sec. V-B), device count and
// partitioner target utilization (Sec. III-B) — ranked by the analytic
// runtime/resource models and validated on the cycle-level simulator.
//
// Usage:  ./sf_tune (<program.json> | --workload NAME) [flags]
//         (--help lists them)
//
// Takes the shared autotuner flag pack (support/Args.h: --tune-budget
// --tune-seed --tune-top-k --tune-workers --tune-beam --no-simulate —
// the same spellings run_program's --auto-tune mode uses) plus:
//
//   --workload NAME   a built-in benchmark (jacobi3d, diffusion2d,
//                     diffusion3d, hdiff) instead of a description file
//   --length N        chain length for the first three workloads
//   --max-devices N   cap the device axis of the design space
//   --kernel-engines LIST  comma-separated kernel-execution axis
//                     (e.g. "specialized,jit,auto"); default keeps the
//                     base configuration's single tier
//   --temporal-degrees LIST  comma-separated temporal-blocking axis
//                     (e.g. "1,2,4,8"); degrees above 1 unroll the
//                     program's time loop on-chip (requires time_loop
//                     bindings); default keeps the base degree
//   --json FILE       write the machine-readable TuningReport
//   --candidates      print the per-candidate table
//   --constrained-memory   model the finite memory controller
//
// Exit codes follow the shared table printed by --help
// (support/Error.h exitCodeLegend).
//
//===----------------------------------------------------------------------===//

#include "StencilFlow.h"
#include "support/Args.h"
#include "support/StringUtils.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace stencilflow;

namespace {

Expected<StencilProgram> builtinWorkload(const std::string &Name,
                                         int Length) {
  if (Name == "jacobi3d")
    return workloads::jacobi3dChain(Length, 16, 32, 64);
  if (Name == "diffusion2d")
    return workloads::diffusion2dChain(Length, 64, 64);
  if (Name == "diffusion3d")
    return workloads::diffusion3dChain(Length, 16, 32, 64);
  if (Name == "hdiff")
    return workloads::horizontalDiffusion();
  return makeError(ErrorCode::InvalidInput,
                   "unknown workload '" + Name +
                       "' (expected jacobi3d, diffusion2d, diffusion3d, "
                       "or hdiff)");
}

} // namespace

int main(int argc, char **argv) {
  cli::ArgSet Spec("sf_tune",
                   "Design-space exploration over the mapping knobs, "
                   "ranked analytically and validated on the simulator.",
                   "(<program.json> | --workload NAME)");
  Spec.group("input")
      .option("workload", "NAME",
              "built-in benchmark: jacobi3d diffusion2d diffusion3d hdiff")
      .option("length", "N", "chain length for the built-in workloads")
      .flag("constrained-memory",
            "model the finite memory controller (default is ideal memory)")
      .option("max-devices", "N", "cap the device axis of the space")
      .pack(cli::tuneFlagSpecs())
      .group("output")
      .option("kernel-engines", "LIST",
              "comma-separated kernel-execution axis, e.g. specialized,jit")
      .option("temporal-degrees", "LIST",
              "comma-separated temporal-blocking axis, e.g. 1,2,4,8")
      .option("json", "FILE", "write the machine-readable TuningReport")
      .flag("candidates", "print the per-candidate table");
  auto Args = Spec.parse(argc, argv);
  if (!Args) {
    std::fprintf(stderr, "error: %s\n", Args.message().c_str());
    return 1;
  }
  if (Spec.helpShown())
    return 0;
  bool HaveWorkload = Args->has("workload");
  if (Args->positional().size() != (HaveWorkload ? 0u : 1u)) {
    std::fprintf(stderr, "%s\n", Spec.usageLine().c_str());
    return 1;
  }

  Expected<Session> S = [&]() -> Expected<Session> {
    if (!HaveWorkload)
      return Session::fromFile(Args->positional()[0]);
    Expected<StencilProgram> P = builtinWorkload(
        Args->getString("workload"),
        static_cast<int>(Args->getInt("length", 8)));
    if (!P)
      return P.takeError();
    return Session::fromProgram(P.takeValue());
  }();
  if (!S) {
    std::fprintf(stderr, "error: %s\n", S.message().c_str());
    return exitCodeFor(S.code());
  }
  std::printf("%s\n", S->program().summary().c_str());

  S->unconstrainedMemory(!Args->has("constrained-memory"));
  if (Args->has("max-devices"))
    S->pipelineOptions().Partitioning.MaxDevices =
        static_cast<int>(Args->getInt("max-devices", 8));

  // The unified --tune-* spellings (support/Args.h tuneFlagSpecs);
  // --tune-beam and --kernel-engines are search-axis overrides beyond the
  // fluent Session knobs, so the options block is assembled explicitly.
  tuner::TuneOptions Opts;
  Opts.Search.CandidateBudget =
      static_cast<int>(Args->getInt("tune-budget", 64));
  Opts.Search.BeamWidth = static_cast<int>(Args->getInt("tune-beam", 6));
  Opts.Search.Seed = static_cast<uint64_t>(
      Args->getInt("tune-seed", 0x5F3759DF));
  Opts.TopK = static_cast<int>(Args->getInt("tune-top-k", 3));
  Opts.Workers = static_cast<int>(Args->getInt("tune-workers", 0));
  Opts.Simulate = !Args->has("no-simulate");
  if (Args->has("kernel-engines")) {
    for (const std::string &Name :
         splitString(Args->getString("kernel-engines"), ',')) {
      Expected<compute::KernelEngine> Engine = compute::parseKernelEngine(Name);
      if (!Engine) {
        std::fprintf(stderr, "error: %s\n", Engine.message().c_str());
        return 1;
      }
      Opts.Space.KernelEngines.push_back(*Engine);
    }
  }
  if (Args->has("temporal-degrees")) {
    for (const std::string &Token :
         splitString(Args->getString("temporal-degrees"), ',')) {
      char *End = nullptr;
      long Degree = std::strtol(Token.c_str(), &End, 10);
      if (Token.empty() || End == nullptr || *End != '\0') {
        std::fprintf(stderr,
                     "error: --temporal-degrees: '%s' is not an integer\n",
                     Token.c_str());
        return 1;
      }
      Opts.Space.TemporalDegrees.push_back(static_cast<int>(Degree));
    }
  }

  Expected<tuner::TuningOutcome> Out = S->tune(Opts);
  if (!Out) {
    std::fprintf(stderr, "error: %s\n", Out.message().c_str());
    return exitCodeFor(Out.code());
  }
  const tuner::TuningReport &Report = Out->Report;
  std::printf("%s", Report.summary().c_str());

  if (Args->has("candidates")) {
    std::printf("%-18s %5s %10s %10s %8s %5s %6s  %s\n", "candidate",
                "round", "predicted", "simulated", "err%", "dev", "util%",
                "status");
    for (const tuner::CandidateRecord &R : Report.Candidates) {
      if (!R.Cost.Feasible) {
        std::printf("%-18s %5d %10s %10s %8s %5s %6s  pruned: %s\n",
                    R.Mapping.id().c_str(), R.Round, "-", "-", "-", "-",
                    "-", R.Cost.PruneReason.c_str());
        continue;
      }
      std::printf(
          "%-18s %5d %10lld %10s %8s %5d %6.1f  %s\n",
          R.Mapping.id().c_str(), R.Round,
          static_cast<long long>(R.Cost.PredictedCycles),
          R.Simulated && R.SimulationError.empty()
              ? std::to_string(R.SimulatedCycles).c_str()
              : "-",
          R.Simulated && R.SimulationError.empty()
              ? (std::to_string(R.ModelErrorPct).substr(0, 5)).c_str()
              : "-",
          R.Cost.Devices, R.Cost.PeakUtilization * 100.0,
          !R.Simulated            ? "costed"
          : !R.SimulationError.empty() ? R.SimulationError.c_str()
          : R.ValidationPassed    ? "validated"
                                  : "VALIDATION FAILED");
    }
  }

  if (Args->has("json")) {
    std::string Path = Args->getString("json");
    if (Error Err = sim::writeTextFileAtomic(Path, Report.toJson())) {
      std::fprintf(stderr, "error: %s\n", Err.message().c_str());
      return 1;
    }
    std::printf("report: wrote %s\n", Path.c_str());
  }

  if (Opts.Simulate) {
    const tuner::CandidateRecord *Best = Report.best();
    std::printf("plan %s: %zu device(s), %.0f MHz, %s\n",
                Best->Mapping.id().c_str(),
                Out->BestRun.Placement.numDevices(),
                Best->Cost.FrequencyMHz,
                Out->BestRun.Resources
                    .report(DeviceResources::stratix10GX2800())
                    .c_str());
    const sim::SimStats &BestStats = Out->BestRun.Simulation.Stats;
    std::string Tiers = BestStats.kernelTierSummary();
    std::printf("kernel engine: %s requested, effective: %s\n",
                BestStats.KernelExec.c_str(),
                Tiers.empty() ? "<none>" : Tiers.c_str());
    for (const ValidationReport &V : Out->BestRun.Validations)
      std::printf("validation: %s\n", V.Summary.c_str());
    return Out->BestRun.ValidationPassed
               ? 0
               : exitCodeFor(ErrorCode::ValidationMismatch);
  }
  return 0;
}
