//===- examples/quickstart.cpp - Hello, StencilFlow ---------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Quickstart: define a 2D Laplace stencil program in the JSON description
// format (paper Sec. II, Lst. 1), run the full pipeline through the
// stencilflow::Session facade — analysis, buffering, code generation,
// simulated hardware execution — and validate the result against the
// reference executor.
//
// Run:  ./quickstart [--size N] [--vectorize W] [--emit] [--parallel]
//
//===----------------------------------------------------------------------===//

#include "StencilFlow.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace stencilflow;

int main(int argc, char **argv) {
  auto Args = CommandLine::parse(argc, argv,
                                 {"size", "vectorize", "emit", "parallel"});
  if (!Args) {
    std::fprintf(stderr, "error: %s\n", Args.message().c_str());
    return 1;
  }
  long long Size = Args->getInt("size", 64);
  long long W = Args->getInt("vectorize", 1);

  // A stencil program is a JSON description: iteration space, inputs with
  // data sources, and a DAG of stencil operations.
  std::string Json = formatString(R"({
    "name": "laplace2d",
    "dimensions": [%lld, %lld],
    "vectorization": %lld,
    "inputs": {
      "a": {"data_type": "float32", "data": {"kind": "random", "seed": 42}}
    },
    "outputs": ["b"],
    "program": {
      "b": {
        "computation":
          "b = a[0,-1] + a[0,1] + a[-1,0] + a[1,0] - 4.0 * a[0,0];",
        "boundary_conditions": {"a": {"type": "constant", "value": 0.0}}
      }
    }
  })",
                                  Size, Size, W);

  // The Session facade is the library's front door: load once, chain the
  // configuration, run.
  Expected<Session> S = Session::fromJsonText(Json);
  if (!S) {
    std::fprintf(stderr, "error: %s\n", S.message().c_str());
    return 1;
  }
  std::printf("%s\n", S->program().summary().c_str());

  S->unconstrainedMemory(true).emitCode(Args->has("emit"));
  if (Args->has("parallel"))
    S->engine(sim::SimEngine::Parallel);

  Expected<PipelineResult> Result = S->run();
  if (!Result) {
    std::fprintf(stderr, "error: %s\n", Result.message().c_str());
    return 1;
  }

  std::printf("dataflow analysis:\n%s\n", Result->Dataflow.report().c_str());
  std::printf("expected cycles (Eq. 1): C = L + N = %lld + %lld = %lld\n",
              static_cast<long long>(Result->Runtime.LatencyCycles),
              static_cast<long long>(Result->Runtime.StreamedCycles),
              static_cast<long long>(Result->Runtime.TotalCycles));
  std::printf("simulated cycles:        %lld (%s engine)\n",
              static_cast<long long>(Result->Simulation.Stats.Cycles),
              Result->Simulation.Stats.Engine.c_str());
  std::printf("modeled frequency:       %.0f MHz\n", Result->FrequencyMHz);
  std::printf("resources:               %s\n",
              Result->Resources
                  .report(DeviceResources::stratix10GX2800())
                  .c_str());
  std::printf("simulated performance:   %.2f GOp/s\n",
              Result->simulatedOpsPerSecond() / 1e9);
  for (const ValidationReport &Report : Result->Validations)
    std::printf("validation: %s\n", Report.Summary.c_str());

  if (Args->has("emit"))
    for (const GeneratedSource &Source : Result->Sources)
      std::printf("\n===== %s =====\n%s", Source.FileName.c_str(),
                  Source.Source.c_str());

  return Result->ValidationPassed ? 0 : 1;
}
