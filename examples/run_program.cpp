//===- examples/run_program.cpp - The Fig. 13 one-shot driver ------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// "StencilFlow can directly run the stencil program from the input
// description, transparently executing parsing, dependency analysis,
// buffering analysis, [dataflow] generation, domain-specific optimization,
// ... code generation, ... execution of the program, and validation of
// results." (paper Sec. VII)
//
// Usage:  ./run_program <program.json>
//             [--fuse] [--emit] [--dot] [--vectorize W]
//             [--constrained-memory] [--report]
//             [--trace FILE] [--metrics FILE] [--trace-stride N]
//             [--fault-plan FILE] [--stall-timeout N]
//             [--parallel] [--threads N]
//
// --trace writes a Chrome trace-event timeline of the simulation (open in
// chrome://tracing or https://ui.perfetto.dev); --metrics writes a tidy
// CSV of the per-component stall attribution and channel occupancies.
// --fault-plan injects a deterministic fault schedule (see sim/Fault.h for
// the JSON format) and switches remote streams to the reliable transport;
// --stall-timeout enables the progress watchdog. --parallel selects the
// epoch-synchronized parallel engine (--threads pins its worker count);
// tracing requires the serial engine, so --trace wins when both are given.
// --auto-tune runs the mapping autotuner (tuner/Tuner.h) instead of a
// single configuration: the best found mapping (vector width, fusion,
// devices, utilization) is applied, simulated, and validated;
// --tune-budget caps the candidates searched, --tune-seed fixes the beam
// search's PRNG seed (identical seed + space => identical trajectory), and
// --tune-json dumps the machine-readable TuningReport. Sample descriptions
// live in examples/programs/.
//
// --checkpoint-dir enables crash-safe snapshots (sim/Checkpoint.h):
// --checkpoint-every sets the cycle cadence, --checkpoint-every-seconds the
// wall-clock cadence, --checkpoint-keep the retention bound, and --resume
// restarts from a snapshot file or from the latest snapshot in a directory
// (cycle- and bit-exact with the uninterrupted run).
// --crash-after-checkpoints N is the crash-consistency test hook: the
// process SIGKILLs itself right after the N-th snapshot is persisted.
//
// The exit code classifies the outcome so CI scripts can branch on it:
// 0 success, 1 unclassified error, 2 validation mismatch, 3 deadlock,
// 4 cycle limit, 5 device lost, 6 link failure, 7 data corruption,
// 8 starvation, 9 invalid snapshot, 10 incompatible snapshot (see
// support/Error.h exitCodeFor).
//
//===----------------------------------------------------------------------===//

#include "StencilFlow.h"
#include "sdfg/Lowering.h"
#include "support/CommandLine.h"
#include "support/Json.h"

#include <cstdio>

using namespace stencilflow;

int main(int argc, char **argv) {
  auto Args = CommandLine::parse(
      argc, argv,
      {"fuse", "emit", "dot", "vectorize", "constrained-memory", "report",
       "trace", "metrics", "trace-stride", "fault-plan", "stall-timeout",
       "parallel", "threads", "kernel-engine", "auto-tune", "tune-budget",
       "tune-seed", "tune-json", "checkpoint-dir", "checkpoint-every",
       "checkpoint-every-seconds", "checkpoint-keep", "resume",
       "crash-after-checkpoints"});
  if (!Args) {
    std::fprintf(stderr, "error: %s\n", Args.message().c_str());
    return 1;
  }
  if (Args->positional().size() != 1) {
    std::fprintf(stderr, "usage: run_program <program.json> [--fuse] "
                         "[--emit] [--dot] [--vectorize W] "
                         "[--constrained-memory] [--report] "
                         "[--trace FILE] [--metrics FILE] "
                         "[--trace-stride N] [--fault-plan FILE] "
                         "[--stall-timeout N] [--parallel] [--threads N] "
                         "[--kernel-engine "
                         "scalar|batched|specialized|jit|auto] "
                         "[--auto-tune] [--tune-budget N] "
                         "[--tune-seed N] [--tune-json FILE] "
                         "[--checkpoint-dir DIR] [--checkpoint-every N] "
                         "[--checkpoint-every-seconds S] "
                         "[--checkpoint-keep K] [--resume PATH|DIR] "
                         "[--crash-after-checkpoints N]\n");
    return 1;
  }

  Expected<Session> S = Session::fromFile(Args->positional()[0]);
  if (!S) {
    std::fprintf(stderr, "error: %s\n", S.message().c_str());
    return 1;
  }
  if (Args->has("vectorize"))
    S->vectorize(static_cast<int>(Args->getInt("vectorize", 1)));
  std::printf("%s\n", S->program().summary().c_str());

  S->fuseStencils(Args->has("fuse"))
      .emitCode(Args->has("emit"))
      .unconstrainedMemory(!Args->has("constrained-memory"))
      .stallTimeout(Args->getInt("stall-timeout", 0));

  if (Args->has("fault-plan")) {
    Expected<json::Value> PlanJson =
        json::parseFile(Args->getString("fault-plan"));
    if (!PlanJson) {
      std::fprintf(stderr, "error: %s\n", PlanJson.message().c_str());
      return 1;
    }
    Expected<sim::FaultPlan> Parsed = sim::FaultPlan::fromJson(*PlanJson);
    if (!Parsed) {
      std::fprintf(stderr, "error: %s\n", Parsed.message().c_str());
      return 1;
    }
    std::printf("faults: injecting %zu event(s), seed %llu\n",
                Parsed->Events.size(),
                static_cast<unsigned long long>(Parsed->Seed));
    S->faults(Parsed.takeValue());
  }

  if (Args->has("trace"))
    S->trace(Args->getInt("trace-stride", 16));

  if (Args->has("kernel-engine")) {
    Expected<compute::KernelEngine> Engine =
        compute::parseKernelEngine(Args->getString("kernel-engine"));
    if (!Engine) {
      std::fprintf(stderr, "error: %s\n", Engine.message().c_str());
      return 1;
    }
    S->kernelEngine(*Engine);
  }

  if (Args->has("checkpoint-dir")) {
    sim::SimConfig &Sim = S->pipelineOptions().Simulator;
    Sim.CheckpointDir = Args->getString("checkpoint-dir");
    Sim.CheckpointEveryCycles = Args->getInt("checkpoint-every", 0);
    Sim.CheckpointEverySeconds =
        static_cast<double>(Args->getInt("checkpoint-every-seconds", 0));
    Sim.CheckpointKeep =
        static_cast<int>(Args->getInt("checkpoint-keep", 3));
    Sim.CheckpointCrashAfter =
        static_cast<int>(Args->getInt("crash-after-checkpoints", 0));
  }
  if (Args->has("resume"))
    S->resumeFrom(Args->getString("resume"));

  if (Args->has("parallel")) {
    if (Args->has("trace"))
      std::fprintf(stderr, "warning: tracing requires the serial engine; "
                           "ignoring --parallel\n");
    else
      S->engine(sim::SimEngine::Parallel,
                static_cast<int>(Args->getInt("threads", 0)));
  }

  if (Args->has("auto-tune")) {
    // Tune instead of running one configuration: search the mapping
    // space, then report the winning plan's simulated, validated run.
    tuner::TuneOptions TuneOpts;
    TuneOpts.Search.CandidateBudget =
        static_cast<int>(Args->getInt("tune-budget", 64));
    if (Args->has("tune-seed"))
      TuneOpts.Search.Seed =
          static_cast<uint64_t>(Args->getInt("tune-seed", 0));
    Expected<tuner::TuningOutcome> Tuned = S->tune(TuneOpts);
    if (!Tuned) {
      std::fprintf(stderr, "error: %s\n", Tuned.message().c_str());
      return exitCodeFor(Tuned.code());
    }
    std::printf("%s", Tuned->Report.summary().c_str());
    if (Args->has("tune-json")) {
      std::string Path = Args->getString("tune-json");
      if (Error Err = sim::writeTextFileAtomic(Path, Tuned->Report.toJson()))
        std::fprintf(stderr, "error: %s\n", Err.message().c_str());
      else
        std::printf("report: wrote %s\n", Path.c_str());
    }
    const PipelineResult &Best = Tuned->BestRun;
    std::printf("devices: %zu, frequency %.0f MHz, resources %s\n",
                Best.Placement.numDevices(), Best.FrequencyMHz,
                Best.Resources.report(DeviceResources::stratix10GX2800())
                    .c_str());
    std::printf("cycles: %lld simulated vs %lld modeled (Eq. 1)\n",
                static_cast<long long>(Best.Simulation.Stats.Cycles),
                static_cast<long long>(Best.Runtime.TotalCycles));
    std::string BestTiers = Best.Simulation.Stats.kernelTierSummary();
    std::printf("kernel engine: %s requested, effective: %s\n",
                Best.Simulation.Stats.KernelExec.c_str(),
                BestTiers.empty() ? "<none>" : BestTiers.c_str());
    for (const ValidationReport &Report : Best.Validations)
      std::printf("validation: %s\n", Report.Summary.c_str());
    return Best.ValidationPassed
               ? 0
               : exitCodeFor(ErrorCode::ValidationMismatch);
  }

  Expected<PipelineResult> Result = S->run();
  // Write the trace even when the pipeline fails: a deadlocked or
  // cycle-limited simulation is exactly when the timeline is most useful.
  if (Args->has("trace")) {
    std::string Path = Args->getString("trace");
    if (Error Err = S->tracer()->writeChromeTrace(Path))
      std::fprintf(stderr, "error: %s\n", Err.message().c_str());
    else
      std::printf("trace: wrote %s (open in chrome://tracing or "
                  "ui.perfetto.dev)\n",
                  Path.c_str());
  }
  if (!Result) {
    std::fprintf(stderr, "error: %s\n", Result.message().c_str());
    return exitCodeFor(Result.code());
  }

  if (Args->has("metrics")) {
    std::string Path = Args->getString("metrics");
    if (Error Err = sim::writeTextFileAtomic(
            Path, sim::formatMetricsCsv(Result->Simulation.Stats)))
      std::fprintf(stderr, "error: %s\n", Err.message().c_str());
    else
      std::printf("metrics: wrote %s\n", Path.c_str());
  }

  if (Args->has("report"))
    std::printf("%s\n", Result->Dataflow.report().c_str());

  if (Args->has("dot")) {
    auto G = sdfg::buildSDFG(Result->Compiled, Result->Dataflow);
    if (G)
      std::printf("%s\n", G->toDot().c_str());
  }

  std::printf("devices: %zu, frequency %.0f MHz, resources %s\n",
              Result->Placement.numDevices(), Result->FrequencyMHz,
              Result->Resources
                  .report(DeviceResources::stratix10GX2800())
                  .c_str());
  std::printf("cycles: %lld simulated vs %lld modeled (Eq. 1); %.2f GOp/s "
              "at the modeled frequency\n",
              static_cast<long long>(Result->Simulation.Stats.Cycles),
              static_cast<long long>(Result->Runtime.TotalCycles),
              Result->simulatedOpsPerSecond() / 1e9);
  const sim::SimStats &Stats = Result->Simulation.Stats;
  std::printf("engine: %s (%lld epochs, %lld serial-fallback cycles, "
              "%lld cycles fast-forwarded)\n",
              Stats.Engine.c_str(),
              static_cast<long long>(Stats.ParallelEpochs),
              static_cast<long long>(Stats.SerialFallbackCycles),
              static_cast<long long>(Stats.SkippedCycles));
  std::string Tiers = Stats.kernelTierSummary();
  std::printf("kernel engine: %s requested, effective: %s "
              "(%lld specialized, %lld jitted)\n",
              Stats.KernelExec.c_str(),
              Tiers.empty() ? "<none>" : Tiers.c_str(),
              static_cast<long long>(Stats.SpecializedUnits),
              static_cast<long long>(Stats.JittedUnits));
  sim::StallBreakdown TotalStalls;
  for (const auto &[Name, Stalls] : Stats.UnitStalls)
    TotalStalls += Stalls;
  for (const auto &[Name, Stalls] : Stats.ReaderStalls)
    TotalStalls += Stalls;
  for (const auto &[Name, Stalls] : Stats.WriterStalls)
    TotalStalls += Stalls;
  if (TotalStalls.total() > 0)
    std::printf("stalls: %lld component-cycles, dominant cause: %s\n",
                static_cast<long long>(TotalStalls.total()),
                sim::stallCauseName(TotalStalls.dominant()));
  if (!Result->Recovery.Log.empty()) {
    for (const std::string &Line : Result->Recovery.Log)
      std::printf("recovery: %s\n", Line.c_str());
    std::printf("recovery: %s after %d attempt(s)\n",
                sim::terminationReasonName(
                    Result->Simulation.Termination),
                Result->Recovery.Attempts);
  }
  for (const ValidationReport &Report : Result->Validations)
    std::printf("validation: %s\n", Report.Summary.c_str());

  if (Args->has("emit"))
    for (const GeneratedSource &Source : Result->Sources)
      std::printf("\n===== %s =====\n%s", Source.FileName.c_str(),
                  Source.Source.c_str());
  return Result->ValidationPassed
             ? 0
             : exitCodeFor(ErrorCode::ValidationMismatch);
}
