//===- examples/run_program.cpp - The Fig. 13 one-shot driver ------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// "StencilFlow can directly run the stencil program from the input
// description, transparently executing parsing, dependency analysis,
// buffering analysis, [dataflow] generation, domain-specific optimization,
// ... code generation, ... execution of the program, and validation of
// results." (paper Sec. VII)
//
// Usage:  ./run_program <program.json> [flags]   (--help lists them)
//
// Flags come from the shared CLI surface (support/Args.h): the session
// pack (--fuse --simplify --vectorize --constrained-memory
// --kernel-engine --parallel --threads --stall-timeout), the checkpoint
// pack (--checkpoint-dir --checkpoint-every --checkpoint-every-seconds
// --checkpoint-keep --resume --crash-after-checkpoints), and the
// autotuner pack (--tune-budget --tune-seed --tune-top-k --tune-workers)
// behind --auto-tune; plus this tool's own knobs:
//
//   --emit          print generated OpenCL kernel sources
//   --dot           print the extracted SDFG in Graphviz format
//   --report        print the dataflow/buffering analysis report
//   --trace FILE    write a Chrome trace-event timeline of the simulation
//                   (open in chrome://tracing or https://ui.perfetto.dev);
//                   requires the serial engine, so it wins over --parallel
//   --trace-stride N  counter sampling stride for --trace
//   --metrics FILE  write a tidy CSV of stall attribution and occupancies
//   --fault-plan FILE  inject a deterministic fault schedule (sim/Fault.h)
//                   and switch remote streams to the reliable transport
//   --auto-tune     run the mapping autotuner instead of one
//                   configuration; the winning mapping is applied,
//                   simulated, and validated
//   --tune-json FILE  dump the machine-readable TuningReport
//
// The process exit code classifies the outcome so CI scripts can branch
// on it — see the table printed by --help (support/Error.h
// exitCodeLegend), e.g. 0 success, 2 validation mismatch, 3 deadlock,
// 9 invalid snapshot.
//
//===----------------------------------------------------------------------===//

#include "StencilFlow.h"
#include "sdfg/Lowering.h"
#include "runtime/SessionArgs.h"
#include "support/Args.h"
#include "support/Json.h"

#include <cstdio>

using namespace stencilflow;

int main(int argc, char **argv) {
  cli::ArgSet Spec("run_program",
                   "One-shot pipeline driver: parse, analyze, partition, "
                   "simulate, and validate a stencil program description.",
                   "<program.json>");
  Spec.pack(cli::sessionFlagSpecs())
      .group("output")
      .flag("emit", "print generated OpenCL kernel sources")
      .flag("dot", "print the extracted SDFG in Graphviz format")
      .flag("report", "print the dataflow/buffering analysis report")
      .option("trace", "FILE", "write a Chrome trace-event timeline")
      .option("trace-stride", "N", "counter sampling stride for --trace")
      .option("metrics", "FILE", "write the stall/occupancy metrics CSV")
      .group("resilience")
      .option("fault-plan", "FILE",
              "inject a deterministic fault schedule (sim/Fault.h)")
      .pack(cli::checkpointFlagSpecs())
      .group("autotuning")
      .flag("auto-tune", "search the mapping space instead of running "
                         "one configuration")
      .option("tune-json", "FILE", "dump the machine-readable TuningReport")
      .pack(cli::tuneFlagSpecs());
  auto Args = Spec.parse(argc, argv);
  if (!Args) {
    std::fprintf(stderr, "error: %s\n", Args.message().c_str());
    return 1;
  }
  if (Spec.helpShown())
    return 0;
  if (Args->positional().size() != 1) {
    std::fprintf(stderr, "%s\n", Spec.usageLine().c_str());
    return 1;
  }

  Expected<Session> S = Session::fromFile(Args->positional()[0]);
  if (!S) {
    std::fprintf(stderr, "error: %s\n", S.message().c_str());
    return 1;
  }
  std::printf("%s\n", S->program().summary().c_str());

  // Tracing requires the serial engine; --trace wins over --parallel.
  bool Parallel = Args->has("parallel");
  if (Parallel && Args->has("trace")) {
    std::fprintf(stderr, "warning: tracing requires the serial engine; "
                         "ignoring --parallel\n");
    Parallel = false;
  }
  if (Error Err = cli::applySessionArgs(*S, *Args)) {
    std::fprintf(stderr, "error: %s\n", Err.message().c_str());
    return exitCodeFor(Err.code());
  }
  if (!Parallel)
    S->engine(sim::SimEngine::Serial);
  if (Error Err = cli::applyCheckpointArgs(*S, *Args)) {
    std::fprintf(stderr, "error: %s\n", Err.message().c_str());
    return exitCodeFor(Err.code());
  }
  S->emitCode(Args->has("emit"));

  if (Args->has("fault-plan")) {
    Expected<json::Value> PlanJson =
        json::parseFile(Args->getString("fault-plan"));
    if (!PlanJson) {
      std::fprintf(stderr, "error: %s\n", PlanJson.message().c_str());
      return 1;
    }
    Expected<sim::FaultPlan> Parsed = sim::FaultPlan::fromJson(*PlanJson);
    if (!Parsed) {
      std::fprintf(stderr, "error: %s\n", Parsed.message().c_str());
      return 1;
    }
    std::printf("faults: injecting %zu event(s), seed %llu\n",
                Parsed->Events.size(),
                static_cast<unsigned long long>(Parsed->Seed));
    S->faults(Parsed.takeValue());
  }

  if (Args->has("trace"))
    S->trace(Args->getInt("trace-stride", 16));

  if (Args->has("auto-tune")) {
    // Tune instead of running one configuration: search the mapping
    // space, then report the winning plan's simulated, validated run.
    // The shared applier seeds the fluent tune* knobs; the no-argument
    // tune() overload folds them into the search options.
    if (Error Err = cli::applyTuneArgs(*S, *Args)) {
      std::fprintf(stderr, "error: %s\n", Err.message().c_str());
      return exitCodeFor(Err.code());
    }
    Expected<tuner::TuningOutcome> Tuned = S->tune();
    if (!Tuned) {
      std::fprintf(stderr, "error: %s\n", Tuned.message().c_str());
      return exitCodeFor(Tuned.code());
    }
    std::printf("%s", Tuned->Report.summary().c_str());
    if (Args->has("tune-json")) {
      std::string Path = Args->getString("tune-json");
      if (Error Err = sim::writeTextFileAtomic(Path, Tuned->Report.toJson()))
        std::fprintf(stderr, "error: %s\n", Err.message().c_str());
      else
        std::printf("report: wrote %s\n", Path.c_str());
    }
    const PipelineResult &Best = Tuned->BestRun;
    std::printf("devices: %zu, frequency %.0f MHz, resources %s\n",
                Best.Placement.numDevices(), Best.FrequencyMHz,
                Best.Resources.report(DeviceResources::stratix10GX2800())
                    .c_str());
    std::printf("cycles: %lld simulated vs %lld modeled (Eq. 1)\n",
                static_cast<long long>(Best.Simulation.Stats.Cycles),
                static_cast<long long>(Best.Runtime.TotalCycles));
    std::string BestTiers = Best.Simulation.Stats.kernelTierSummary();
    std::printf("kernel engine: %s requested, effective: %s\n",
                Best.Simulation.Stats.KernelExec.c_str(),
                BestTiers.empty() ? "<none>" : BestTiers.c_str());
    for (const ValidationReport &Report : Best.Validations)
      std::printf("validation: %s\n", Report.Summary.c_str());
    return Best.ValidationPassed
               ? 0
               : exitCodeFor(ErrorCode::ValidationMismatch);
  }

  Expected<PipelineResult> Result = S->run();
  // Write the trace even when the pipeline fails: a deadlocked or
  // cycle-limited simulation is exactly when the timeline is most useful.
  if (Args->has("trace")) {
    std::string Path = Args->getString("trace");
    if (Error Err = S->tracer()->writeChromeTrace(Path))
      std::fprintf(stderr, "error: %s\n", Err.message().c_str());
    else
      std::printf("trace: wrote %s (open in chrome://tracing or "
                  "ui.perfetto.dev)\n",
                  Path.c_str());
  }
  if (!Result) {
    std::fprintf(stderr, "error: %s\n", Result.message().c_str());
    return exitCodeFor(Result.code());
  }

  if (Args->has("metrics")) {
    std::string Path = Args->getString("metrics");
    if (Error Err = sim::writeTextFileAtomic(
            Path, sim::formatMetricsCsv(Result->Simulation.Stats)))
      std::fprintf(stderr, "error: %s\n", Err.message().c_str());
    else
      std::printf("metrics: wrote %s\n", Path.c_str());
  }

  if (Args->has("report"))
    std::printf("%s\n", Result->Dataflow.report().c_str());

  if (Args->has("dot")) {
    auto G = sdfg::buildSDFG(Result->Compiled, Result->Dataflow);
    if (G)
      std::printf("%s\n", G->toDot().c_str());
  }

  std::printf("devices: %zu, frequency %.0f MHz, resources %s\n",
              Result->Placement.numDevices(), Result->FrequencyMHz,
              Result->Resources
                  .report(DeviceResources::stratix10GX2800())
                  .c_str());
  std::printf("cycles: %lld simulated vs %lld modeled (Eq. 1); %.2f GOp/s "
              "at the modeled frequency\n",
              static_cast<long long>(Result->Simulation.Stats.Cycles),
              static_cast<long long>(Result->Runtime.TotalCycles),
              Result->simulatedOpsPerSecond() / 1e9);
  const sim::SimStats &Stats = Result->Simulation.Stats;
  std::printf("engine: %s (%lld epochs, %lld serial-fallback cycles, "
              "%lld cycles fast-forwarded)\n",
              Stats.Engine.c_str(),
              static_cast<long long>(Stats.ParallelEpochs),
              static_cast<long long>(Stats.SerialFallbackCycles),
              static_cast<long long>(Stats.SkippedCycles));
  std::string Tiers = Stats.kernelTierSummary();
  std::printf("kernel engine: %s requested, effective: %s "
              "(%lld specialized, %lld jitted)\n",
              Stats.KernelExec.c_str(),
              Tiers.empty() ? "<none>" : Tiers.c_str(),
              static_cast<long long>(Stats.SpecializedUnits),
              static_cast<long long>(Stats.JittedUnits));
  sim::StallBreakdown TotalStalls;
  for (const auto &[Name, Stalls] : Stats.UnitStalls)
    TotalStalls += Stalls;
  for (const auto &[Name, Stalls] : Stats.ReaderStalls)
    TotalStalls += Stalls;
  for (const auto &[Name, Stalls] : Stats.WriterStalls)
    TotalStalls += Stalls;
  if (TotalStalls.total() > 0)
    std::printf("stalls: %lld component-cycles, dominant cause: %s\n",
                static_cast<long long>(TotalStalls.total()),
                sim::stallCauseName(TotalStalls.dominant()));
  if (!Result->Recovery.Log.empty()) {
    for (const std::string &Line : Result->Recovery.Log)
      std::printf("recovery: %s\n", Line.c_str());
    std::printf("recovery: %s after %d attempt(s)\n",
                sim::terminationReasonName(
                    Result->Simulation.Termination),
                Result->Recovery.Attempts);
  }
  for (const ValidationReport &Report : Result->Validations)
    std::printf("validation: %s\n", Report.Summary.c_str());

  if (Args->has("emit"))
    for (const GeneratedSource &Source : Result->Sources)
      std::printf("\n===== %s =====\n%s", Source.FileName.c_str(),
                  Source.Source.c_str());
  return Result->ValidationPassed
             ? 0
             : exitCodeFor(ErrorCode::ValidationMismatch);
}
