//===- examples/run_program.cpp - The Fig. 13 one-shot driver ------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// "StencilFlow can directly run the stencil program from the input
// description, transparently executing parsing, dependency analysis,
// buffering analysis, [dataflow] generation, domain-specific optimization,
// ... code generation, ... execution of the program, and validation of
// results." (paper Sec. VII)
//
// Usage:  ./run_program <program.json>
//             [--fuse] [--emit] [--dot] [--vectorize W]
//             [--constrained-memory] [--report]
//
// Sample descriptions live in examples/programs/.
//
//===----------------------------------------------------------------------===//

#include "frontend/ProgramLoader.h"
#include "runtime/Pipeline.h"
#include "sdfg/Lowering.h"
#include "support/CommandLine.h"

#include <cstdio>

using namespace stencilflow;

int main(int argc, char **argv) {
  auto Args = CommandLine::parse(
      argc, argv,
      {"fuse", "emit", "dot", "vectorize", "constrained-memory", "report"});
  if (!Args) {
    std::fprintf(stderr, "error: %s\n", Args.message().c_str());
    return 1;
  }
  if (Args->positional().size() != 1) {
    std::fprintf(stderr, "usage: run_program <program.json> [--fuse] "
                         "[--emit] [--dot] [--vectorize W] "
                         "[--constrained-memory] [--report]\n");
    return 1;
  }

  Expected<StencilProgram> Program =
      loadProgramFile(Args->positional()[0]);
  if (!Program) {
    std::fprintf(stderr, "error: %s\n", Program.message().c_str());
    return 1;
  }
  if (Args->has("vectorize")) {
    Program->VectorWidth = static_cast<int>(Args->getInt("vectorize", 1));
    if (Error Err = Program->validate()) {
      std::fprintf(stderr, "error: %s\n", Err.message().c_str());
      return 1;
    }
  }
  std::printf("%s\n", Program->summary().c_str());

  PipelineOptions Options;
  Options.FuseStencils = Args->has("fuse");
  Options.EmitCode = Args->has("emit");
  Options.Simulator.UnconstrainedMemory = !Args->has("constrained-memory");

  Expected<PipelineResult> Result = runPipeline(Program.takeValue(),
                                                Options);
  if (!Result) {
    std::fprintf(stderr, "error: %s\n", Result.message().c_str());
    return 1;
  }

  if (Args->has("report"))
    std::printf("%s\n", Result->Dataflow.report().c_str());

  if (Args->has("dot")) {
    auto G = sdfg::buildSDFG(Result->Compiled, Result->Dataflow);
    if (G)
      std::printf("%s\n", G->toDot().c_str());
  }

  std::printf("devices: %zu, frequency %.0f MHz, resources %s\n",
              Result->Placement.numDevices(), Result->FrequencyMHz,
              Result->Resources
                  .report(DeviceResources::stratix10GX2800())
                  .c_str());
  std::printf("cycles: %lld simulated vs %lld modeled (Eq. 1); %.2f GOp/s "
              "at the modeled frequency\n",
              static_cast<long long>(Result->Simulation.Stats.Cycles),
              static_cast<long long>(Result->Runtime.TotalCycles),
              Result->simulatedOpsPerSecond() / 1e9);
  for (const ValidationReport &Report : Result->Validations)
    std::printf("validation: %s\n", Report.Summary.c_str());

  if (Options.EmitCode)
    for (const GeneratedSource &Source : Result->Sources)
      std::printf("\n===== %s =====\n%s", Source.FileName.c_str(),
                  Source.Source.c_str());
  return Result->ValidationPassed ? 0 : 1;
}
