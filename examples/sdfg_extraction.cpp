//===- examples/sdfg_extraction.cpp - The external-programs path --------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The "external programs" path of paper Fig. 13: instead of a JSON
// description, the input is a dataflow graph (SDFG) containing
// domain-specific stencil library nodes — the form a front-end compiler
// like Dawn produces for COSMO kernels (Fig. 17a). The graph is
// canonicalized with the MapFission and NestDim transformations
// (Sec. V-A), the standard stencil program is extracted, aggressively
// fused (Sec. V-B), and executed on the simulated hardware.
//
// Run:  ./sdfg_extraction [--size N]
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "runtime/Pipeline.h"
#include "sdfg/Graph.h"
#include "sdfg/Transforms.h"
#include "support/CommandLine.h"

#include <cstdio>

using namespace stencilflow;
using namespace stencilflow::sdfg;

namespace {

/// Builds a Dawn-style SDFG: a vertical map over k containing a chain of
/// two 2D stencils communicating through a scoped transient (Fig. 17a in
/// miniature).
SDFG buildExternalSDFG(int64_t K, int64_t Size) {
  SDFG G("external_laplap");
  G.Domain = Shape({K, Size, Size});
  (void)G.addContainer(Container{"field_in", DataType::Float32,
                                 {true, true, true}, ContainerKind::Array,
                                 0, false});
  (void)G.addContainer(Container{"lap", DataType::Float32,
                                 {false, true, true}, ContainerKind::Array,
                                 0, true});
  (void)G.addContainer(Container{"field_out", DataType::Float32,
                                 {true, true, true}, ContainerKind::Array,
                                 0, false});

  State &S = G.addState("vertical_loop");
  auto [Entry, Exit] = S.addMap("k", 0, K);

  StencilNode Lap;
  Lap.Name = "lap_op";
  Lap.Code = parseStencilCode("lap_op = field_in[0,-1] + field_in[0,1] + "
                              "field_in[-1,0] + field_in[1,0] - 4.0 * "
                              "field_in[0,0];")
                 .takeValue();
  Lap.Boundaries["field_in"] = BoundaryCondition::constant(0.0);
  StencilLibraryNode *LapNode = S.addStencil(std::move(Lap));

  StencilNode LapLap;
  LapLap.Name = "laplap_op";
  LapLap.Code = parseStencilCode("laplap_op = lap[0,-1] + lap[0,1] + "
                                 "lap[-1,0] + lap[1,0] - 4.0 * lap[0,0];")
                    .takeValue();
  LapLap.Boundaries["lap"] = BoundaryCondition::constant(0.0);
  StencilLibraryNode *LapLapNode = S.addStencil(std::move(LapLap));

  AccessNode *In = S.addAccess("field_in");
  AccessNode *Tmp = S.addAccess("lap");
  AccessNode *Out = S.addAccess("field_out");
  S.connect(In, Entry, "field_in");
  S.connect(Entry, LapNode, "field_in");
  S.connect(LapNode, Tmp, "lap");
  S.connect(Tmp, LapLapNode, "lap");
  S.connect(LapLapNode, Exit, "field_out");
  S.connect(Exit, Out, "field_out");
  return G;
}

} // namespace

int main(int argc, char **argv) {
  auto Args = CommandLine::parse(argc, argv, {"size", "k"});
  if (!Args) {
    std::fprintf(stderr, "error: %s\n", Args.message().c_str());
    return 1;
  }
  int64_t K = Args->getInt("k", 8);
  int64_t Size = Args->getInt("size", 32);

  SDFG G = buildExternalSDFG(K, Size);
  std::printf("input SDFG (Fig. 17a style):\n%s\n", G.toDot().c_str());

  // Canonicalize: MapFission splits the vertical map, NestDim raises each
  // 2D stencil to 3D.
  if (Error Err = canonicalize(G)) {
    std::fprintf(stderr, "error: %s\n", Err.message().c_str());
    return 1;
  }
  std::printf("canonicalized SDFG (Fig. 17b style):\n%s\n",
              G.toDot().c_str());

  Expected<StencilProgram> Program = extractStencilProgram(G);
  if (!Program) {
    std::fprintf(stderr, "error: %s\n", Program.message().c_str());
    return 1;
  }
  std::printf("extracted stencil program:\n%s\n",
              Program->summary().c_str());

  PipelineOptions Options;
  Options.FuseStencils = true;
  Options.Simulator.UnconstrainedMemory = true;
  Expected<PipelineResult> Result = runPipeline(Program.takeValue(),
                                                Options);
  if (!Result) {
    std::fprintf(stderr, "error: %s\n", Result.message().c_str());
    return 1;
  }
  std::printf("after aggressive fusion: %zu stencil(s) (Fig. 17c style)\n",
              Result->Compiled.program().Nodes.size());
  std::printf("simulated %lld cycles; validation %s\n",
              static_cast<long long>(Result->Simulation.Stats.Cycles),
              Result->ValidationPassed ? "PASSED" : "FAILED");
  return Result->ValidationPassed ? 0 : 1;
}
