//===- examples/sf_serve.cpp - Multi-tenant serving daemon ---------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The serving daemon: accepts compile+simulate requests as line-delimited
// JSON (serve/Protocol.h), backed by a worker pool with a compiled-plan
// cache and admission control (serve/Server.h). Repeat traffic for the
// same (program, mapping, kernel engine) skips the pipeline's compile
// half entirely; overload is shed with typed, retryable error responses
// instead of queue blowup.
//
// Usage:  ./sf_serve --socket PATH [serving flags]     daemon mode
//         ./sf_serve --once [serving flags]            stdin -> stdout,
//                                                      then exit
//         ./sf_serve --client --socket PATH            forward stdin lines
//                                                      to a running daemon
//         (--help lists all flags)
//
// Daemon mode prints "listening on <path>" once ready and shuts down
// gracefully on SIGTERM/SIGINT or a "shutdown" request: the listener
// closes, admitted jobs drain, queued jobs are shed, the socket file is
// unlinked. --once serves the same protocol over stdin/stdout with no
// sockets or signals — what the tests and CI smoke drive.
//
//===----------------------------------------------------------------------===//

#include "serve/SocketServer.h"
#include "support/Args.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace stencilflow;

namespace {

serve::SocketServer *ActiveDaemon = nullptr;

void onSignal(int) {
  if (ActiveDaemon)
    ActiveDaemon->requestShutdown();
}

/// --once: the full protocol over stdin/stdout, no sockets. "shutdown"
/// ends the loop early; EOF is the normal exit.
int serveOnce(serve::Server &Core) {
  Core.start();
  std::string Line;
  int C;
  bool Done = false;
  while (!Done && (C = std::fgetc(stdin)) != EOF) {
    if (C != '\n') {
      Line.push_back(static_cast<char>(C));
      continue;
    }
    if (Line.empty())
      continue;
    serve::Response Out;
    Expected<serve::Request> Req = serve::Request::fromJsonText(Line);
    Line.clear();
    if (!Req) {
      Out = serve::Response::failure("", Req.takeError());
    } else if (Req->Op == serve::RequestOp::Shutdown) {
      Out.Id = Req->Id;
      Out.Ok = true;
      Done = true;
    } else {
      Out = Core.handle(std::move(*Req));
    }
    std::printf("%s\n", Out.toJsonText().c_str());
    std::fflush(stdout);
  }
  Core.stop();
  return 0;
}

/// --client: forward stdin lines to a running daemon, print its
/// responses. Keeps the CI smoke pure shell.
int runClient(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (Fd < 0 || ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                          sizeof(Addr)) < 0) {
    std::fprintf(stderr, "error: cannot connect to '%s': %s\n",
                 Path.c_str(), std::strerror(errno));
    if (Fd >= 0)
      ::close(Fd);
    return 1;
  }

  std::string Line;
  int C;
  auto DrainOne = [&]() -> bool {
    // Read exactly one newline-terminated response.
    std::string Response;
    char Ch;
    ssize_t N;
    while ((N = ::read(Fd, &Ch, 1)) == 1) {
      if (Ch == '\n') {
        std::printf("%s\n", Response.c_str());
        std::fflush(stdout);
        return true;
      }
      Response.push_back(Ch);
    }
    return false;
  };
  while ((C = std::fgetc(stdin)) != EOF) {
    if (C != '\n') {
      Line.push_back(static_cast<char>(C));
      continue;
    }
    if (Line.empty())
      continue;
    Line.push_back('\n');
    size_t Off = 0;
    while (Off < Line.size()) {
      ssize_t W = ::write(Fd, Line.data() + Off, Line.size() - Off);
      if (W <= 0) {
        std::fprintf(stderr, "error: daemon closed the connection\n");
        ::close(Fd);
        return 1;
      }
      Off += static_cast<size_t>(W);
    }
    Line.clear();
    if (!DrainOne()) {
      std::fprintf(stderr, "error: daemon closed the connection\n");
      ::close(Fd);
      return 1;
    }
  }
  ::close(Fd);
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  cli::ArgSet Spec("sf_serve",
                   "Multi-tenant serving daemon: line-delimited JSON "
                   "requests, a compiled-plan cache, and admission "
                   "control over a shared device pool.");
  Spec.group("mode")
      .option("socket", "PATH", "AF_UNIX socket path (daemon/client mode)")
      .flag("once", "serve stdin -> stdout instead of a socket, then exit")
      .flag("client", "forward stdin request lines to a running daemon")
      .group("serving")
      .option("serve-workers", "N", "worker threads executing jobs (default 2)")
      .option("queue-depth", "N",
              "bounded admission queue; excess load is shed (default 16)")
      .option("cache-capacity", "N",
              "compiled-plan cache capacity in plans (default 64)")
      .option("device-pool", "N",
              "simulated devices shared by all jobs (default 8)")
      .flag("constrained-memory",
            "model the finite memory controller (default is ideal memory)");
  auto Args = Spec.parse(argc, argv);
  if (!Args) {
    std::fprintf(stderr, "error: %s\n", Args.message().c_str());
    return 1;
  }
  if (Spec.helpShown())
    return 0;
  if (!Args->positional().empty()) {
    std::fprintf(stderr, "%s\n", Spec.usageLine().c_str());
    return 1;
  }

  std::string Socket = Args->getString("socket");
  bool Once = Args->has("once");
  bool Client = Args->has("client");
  if (Client) {
    if (Socket.empty()) {
      std::fprintf(stderr, "error: --client needs --socket PATH\n");
      return 1;
    }
    return runClient(Socket);
  }
  if (!Once && Socket.empty()) {
    std::fprintf(stderr, "error: pick a mode: --socket PATH or --once\n");
    return 1;
  }

  serve::ServerOptions Options;
  Options.Workers = static_cast<int>(Args->getInt("serve-workers", 2));
  Options.QueueDepth = static_cast<int>(Args->getInt("queue-depth", 16));
  Options.CacheCapacity =
      static_cast<size_t>(Args->getInt("cache-capacity", 64));
  Options.DevicePool = static_cast<int>(Args->getInt("device-pool", 8));
  Options.Base.Simulator.UnconstrainedMemory =
      !Args->has("constrained-memory");
  serve::Server Core(Options);

  if (Once)
    return serveOnce(Core);

  serve::SocketServer Daemon(Core, Socket);
  if (Error Err = Daemon.open()) {
    std::fprintf(stderr, "error: %s\n", Err.message().c_str());
    return exitCodeFor(Err.code());
  }
  ActiveDaemon = &Daemon;
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::signal(SIGPIPE, SIG_IGN);
  std::printf("listening on %s (workers %d, queue %d, cache %zu, "
              "device pool %d)\n",
              Daemon.path().c_str(), Options.Workers, Options.QueueDepth,
              Options.CacheCapacity, Options.DevicePool);
  std::fflush(stdout);
  Daemon.run();
  ActiveDaemon = nullptr;

  serve::ServeStats Final = Core.stats();
  std::printf("served %lld request(s): %lld completed, %lld failed, "
              "%lld shed, %lld rejected; cache %lld hit(s) / %lld "
              "miss(es)\n",
              static_cast<long long>(Final.Received),
              static_cast<long long>(Final.Completed),
              static_cast<long long>(Final.Failed),
              static_cast<long long>(Final.Shed),
              static_cast<long long>(Final.Rejected),
              static_cast<long long>(Final.CacheHits),
              static_cast<long long>(Final.CacheMisses));
  return 0;
}
