//===- examples/horizontal_diffusion.cpp - The COSMO case study ----------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The weather-simulation application study of paper Sec. IX: the COSMO
// horizontal-diffusion stencil program (Smagorinsky diffusion of the wind
// components plus 4th-order diffusion of w and the pressure perturbation).
// Loads the program, optionally applies aggressive stencil fusion
// (Fig. 17c), prints the DAG, the operation census and arithmetic
// intensity (Sec. IX-A, Eq. 2-4), and runs the simulated hardware with
// validation.
//
// Run:  ./horizontal_diffusion [--k K --j J --i I] [--no-fusion]
//                              [--vectorize W]
//
//===----------------------------------------------------------------------===//

#include "runtime/Pipeline.h"
#include "support/CommandLine.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace stencilflow;

int main(int argc, char **argv) {
  auto Args = CommandLine::parse(
      argc, argv, {"k", "j", "i", "no-fusion", "vectorize"});
  if (!Args) {
    std::fprintf(stderr, "error: %s\n", Args.message().c_str());
    return 1;
  }
  // Default: a reduced domain so the cycle-level simulation finishes in
  // seconds; pass --k 80 --j 128 --i 128 for the MeteoSwiss benchmark size.
  long long K = Args->getInt("k", 16);
  long long J = Args->getInt("j", 32);
  long long I = Args->getInt("i", 32);
  int W = static_cast<int>(Args->getInt("vectorize", 1));

  StencilProgram Program = workloads::horizontalDiffusion(K, J, I, W);
  std::printf("%s\n", Program.summary().c_str());

  PipelineOptions Options;
  Options.FuseStencils = !Args->has("no-fusion");
  Options.Simulator.UnconstrainedMemory = true;
  Expected<PipelineResult> Result = runPipeline(std::move(Program), Options);
  if (!Result) {
    std::fprintf(stderr, "error: %s\n", Result.message().c_str());
    return 1;
  }

  if (Options.FuseStencils)
    std::printf("aggressive fusion merged %d producer/consumer pairs -> "
                "%zu stencil(s)\n\n",
                Result->FusedPairs,
                Result->Compiled.program().Nodes.size());

  compute::OpCensus Census = Result->Compiled.totalCensus();
  std::printf("operation census per cell (paper: 87 add, 41 mul, 2 sqrt, "
              "2 min, 2 max, 20 branches):\n");
  std::printf("  %lld additions, %lld multiplications, %lld square "
              "roots,\n  %lld min/max, %lld comparisons, %lld "
              "data-dependent branches\n",
              static_cast<long long>(Census.Additions),
              static_cast<long long>(Census.Multiplications),
              static_cast<long long>(Census.SquareRoots),
              static_cast<long long>(Census.MinMax),
              static_cast<long long>(Census.Comparisons),
              static_cast<long long>(Census.Branches));

  RooflineAnalysis Roofline = computeRoofline(Result->Compiled);
  MemoryTraffic Traffic = computeMemoryTraffic(Result->Compiled);
  std::printf("\narithmetic intensity: %.2f Op/operand = %.2f Op/B "
              "(paper: %.2f / %.2f)\n",
              Roofline.OpsPerOperand, Roofline.OpsPerByte, 130.0 / 9.0,
              65.0 / 18.0);
  std::printf("roofline bound at 58.3 GB/s measured bandwidth: %.1f "
              "GOp/s (paper Eq. 3: 210.5)\n",
              Roofline.boundPerformance(58.3e9) / 1e9);
  std::printf("operands per cycle in steady state: %lld (paper: ~9)\n",
              static_cast<long long>(Traffic.OperandsPerCycle));

  std::printf("\npipeline latency L = %lld cycles over N = %lld "
              "iterations (L/N = %.2f%%)\n",
              static_cast<long long>(Result->Runtime.LatencyCycles),
              static_cast<long long>(Result->Runtime.StreamedCycles),
              100.0 * static_cast<double>(Result->Runtime.LatencyCycles) /
                  static_cast<double>(Result->Runtime.StreamedCycles));
  std::printf("simulated cycles %lld at %.0f MHz -> %.0f us, %.1f GOp/s\n",
              static_cast<long long>(Result->Simulation.Stats.Cycles),
              Result->FrequencyMHz, Result->simulatedSeconds() * 1e6,
              Result->simulatedOpsPerSecond() / 1e9);
  std::printf("resources: %s\n",
              Result->Resources
                  .report(DeviceResources::stratix10GX2800())
                  .c_str());
  for (const ValidationReport &Report : Result->Validations)
    std::printf("validation: %s\n", Report.Summary.c_str());
  return Result->ValidationPassed ? 0 : 1;
}
