//===- examples/jacobi_multidevice.cpp - Spanning multiple devices ------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The distributed scenario of paper Sec. III-B / Fig. 5: a chain of Jacobi
// 3D stencils long enough to exceed one device's resources. The
// partitioner splits the DAG across devices in topological order, crossing
// edges become SMI remote streams, and the multi-device design is
// simulated end to end (including network latency and link bandwidth) and
// validated against the reference executor.
//
// Run:  ./jacobi_multidevice [--length N] [--devices D] [--size S]
//
//===----------------------------------------------------------------------===//

#include "runtime/Pipeline.h"
#include "support/CommandLine.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace stencilflow;

int main(int argc, char **argv) {
  auto Args = CommandLine::parse(argc, argv, {"length", "devices", "size"});
  if (!Args) {
    std::fprintf(stderr, "error: %s\n", Args.message().c_str());
    return 1;
  }
  int Length = static_cast<int>(Args->getInt("length", 12));
  int Devices = static_cast<int>(Args->getInt("devices", 4));
  long long Size = Args->getInt("size", 16);

  StencilProgram Program =
      workloads::jacobi3dChain(Length, Size, Size, Size);
  std::printf("chained %d Jacobi 3D stencils over %s cells\n", Length,
              Program.IterationSpace.toString().c_str());

  PipelineOptions Options;
  Options.Simulator.UnconstrainedMemory = true;
  // Shrink the per-device budget so the chain must span devices, standing
  // in for genuinely huge designs on real hardware.
  Options.Partitioning.TargetUtilization = 1.0;
  Options.Partitioning.Device.DSPs =
      7 * Program.VectorWidth * ((Length + Devices - 1) / Devices);
  Options.Partitioning.MaxDevices = Devices;

  Expected<PipelineResult> Result = runPipeline(std::move(Program), Options);
  if (!Result) {
    std::fprintf(stderr, "error: %s\n", Result.message().c_str());
    return 1;
  }

  std::printf("\n%s\n", Result->Placement.report().c_str());
  std::printf("simulated cycles: %lld (single-device model bound: %lld)\n",
              static_cast<long long>(Result->Simulation.Stats.Cycles),
              static_cast<long long>(Result->Runtime.TotalCycles));
  std::printf("network traffic:  %.1f KB across %zu remote stream(s)\n",
              Result->Simulation.Stats.NetworkBytesMoved / 1024.0,
              Result->Placement.RemoteStreams.size());
  for (const ValidationReport &Report : Result->Validations)
    std::printf("validation: %s\n", Report.Summary.c_str());
  return Result->ValidationPassed ? 0 : 1;
}
