//===- examples/sf_fuzz.cpp - Differential stencil-program fuzzer --------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The fuzzing driver: generates seeded random stencil programs
// (fuzz/Generate.h) and runs each one through the full pipeline under a
// seeded matrix of configurations — serial/parallel engines, every
// kernel tier, temporal degrees, fault plans, checkpoint/resume —
// asserting bit-exact agreement with the reference oracle
// (fuzz/Differential.h). Divergences are written as JSON reproducers;
// `--replay` re-runs one, and `--minimize` greedily shrinks it while it
// still reproduces (fuzz/Minimize.h).
//
// Usage:
//   sf_fuzz --seed 42 --iterations 200            # a fuzzing campaign
//   sf_fuzz --seed 42 --profile deep-rings        # bias the generator
//   sf_fuzz --replay finding-7-0-mismatch.json    # reproduce one finding
//   sf_fuzz --replay finding.json --minimize      # ... and shrink it
//
// Determinism: the same --seed always generates the same programs and
// samples the same configuration matrix, so a campaign is exactly
// repeatable. The exit code classifies the worst finding (0 none,
// 2 mismatch, 3 deadlock, 1 other) so CI can branch on it.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Differential.h"
#include "fuzz/Generate.h"
#include "fuzz/Minimize.h"
#include "support/Args.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "sim/Trace.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace stencilflow;
using namespace stencilflow::fuzz;

/// Applies the generator-shape flags on top of a profile preset.
static GenConfig genConfigFromArgs(const CommandLine &Args,
                                   Error &Err) {
  GenConfig Config;
  std::string Profile = Args.getString("profile");
  if (Profile == "deep-rings")
    Config = GenConfig::deepRings();
  else if (Profile == "wide-dags")
    Config = GenConfig::wideDags();
  else if (Profile == "degenerate")
    Config = GenConfig::degenerate();
  else if (!Profile.empty() && Profile != "default")
    Err = makeError(ErrorCode::InvalidInput,
                    "unknown --profile '" + Profile +
                        "' (default, deep-rings, wide-dags, degenerate)");
  if (Args.has("max-nodes"))
    Config.MaxNodes = static_cast<int>(Args.getInt("max-nodes", 5));
  if (Args.has("max-radius"))
    Config.MaxRadius = static_cast<int>(Args.getInt("max-radius", 4));
  if (Args.has("max-extent"))
    Config.MaxExtent = Args.getInt("max-extent", 16);
  if (Args.has("max-rank"))
    Config.MaxRank = static_cast<int>(Args.getInt("max-rank", 3));
  return Config;
}

/// Applies the matrix-axis flags.
static Error matrixFromArgs(const CommandLine &Args,
                            MatrixOptions &Matrix) {
  Matrix.ParallelEngine = !Args.has("no-parallel");
  Matrix.JitTiers = !Args.has("no-jit");
  Matrix.FaultAxis = !Args.has("no-faults");
  Matrix.ResumeAxis = !Args.has("no-resume");
  Matrix.ConfigsPerProgram = static_cast<int>(Args.getInt("configs", 5));
  if (Args.has("temporal-degrees")) {
    Matrix.TemporalDegrees.clear();
    for (const std::string &Token :
         splitString(Args.getString("temporal-degrees"), ',')) {
      int Degree = std::atoi(Token.c_str());
      if (Degree < 1)
        return makeError(ErrorCode::InvalidInput,
                         "--temporal-degrees wants positive integers, got '" +
                             Token + "'");
      Matrix.TemporalDegrees.push_back(Degree);
    }
  }
  return Error::success();
}

static void printFinding(const FuzzFinding &Finding) {
  std::printf("  FINDING %s seed=%llu config=%s\n    %s\n",
              findingKindName(Finding.Kind),
              static_cast<unsigned long long>(Finding.Seed),
              Finding.Config.id().c_str(), Finding.Detail.c_str());
}

/// Replays (and optionally minimizes) one reproducer file.
static int replayFinding(const std::string &Path, bool Minimize,
                         const DiffOptions &Options) {
  Expected<json::Value> Doc = json::parseFile(Path);
  if (!Doc) {
    std::fprintf(stderr, "error: %s\n", Doc.message().c_str());
    return 1;
  }
  Expected<FuzzFinding> Finding = FuzzFinding::fromJson(*Doc);
  if (!Finding) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(),
                 Finding.message().c_str());
    return 1;
  }
  std::printf("replaying %s (%s under %s)\n", Path.c_str(),
              findingKindName(Finding->Kind), Finding->Config.id().c_str());
  std::optional<FuzzFinding> Replayed =
      runConfig(Finding->Program, Finding->Seed, Finding->Config, Options);
  if (!Replayed) {
    std::printf("did not reproduce: the pipeline agrees with the oracle\n");
    return 0;
  }
  printFinding(*Replayed);
  if (Minimize) {
    MinimizeResult Minimized = minimizeFinding(*Replayed, Options);
    std::printf("minimized: %d accepted / %d attempted mutations "
                "(%zu nodes, %lld cells)\n",
                Minimized.Steps, Minimized.Attempts,
                Minimized.Finding.Program.Nodes.size(),
                static_cast<long long>(
                    Minimized.Finding.Program.IterationSpace.numCells()));
    std::string MinPath = Path + ".min.json";
    if (Error Err = sim::writeTextFileAtomic(
            MinPath, Minimized.Finding.toJson().toPrettyString() + "\n"))
      std::fprintf(stderr, "error: %s\n", Err.message().c_str());
    else
      std::printf("wrote %s\n", MinPath.c_str());
    Replayed = std::move(Minimized.Finding);
  }
  std::vector<FuzzFinding> Findings;
  Findings.push_back(std::move(*Replayed));
  return exitCodeForFindings(Findings);
}

int main(int argc, char **argv) {
  cli::ArgSet Spec(
      "sf_fuzz",
      "Differential fuzzer: random valid stencil programs through the "
      "full pipeline under a seeded configuration matrix, checked "
      "bit-exactly against the reference oracle.",
      "[flags]");
  Spec.group("campaign")
      .option("seed", "N", "base seed; iteration i fuzzes seed N+i "
                           "(default 1)")
      .option("iterations", "N", "programs to generate (default 50)")
      .option("seconds", "S", "wall-clock budget; stops early when "
                              "exceeded (default off)")
      .option("findings", "DIR",
              "write finding reproducers here (default fuzz_findings)")
      .option("scratch", "DIR", "checkpoint scratch directory")
      .group("generator")
      .option("profile", "NAME",
              "default | deep-rings | wide-dags | degenerate")
      .option("max-nodes", "N", "cap stencils per program")
      .option("max-radius", "N", "cap access radius (default 4)")
      .option("max-extent", "N", "cap per-dimension extent (default 16)")
      .option("max-rank", "N", "cap dimensionality (default 3)")
      .group("matrix")
      .option("configs", "N",
              "sampled configurations per program on top of the base "
              "config (default 5)")
      .option("temporal-degrees", "CSV",
              "temporal degrees to sample (default 1,2,4)")
      .flag("no-parallel", "disable the parallel-engine axis")
      .flag("no-jit", "disable the jit/auto kernel tiers")
      .flag("no-faults", "disable the fault-plan axis")
      .flag("no-resume", "disable the checkpoint/resume axis")
      .group("replay")
      .option("replay", "FILE", "re-run one finding reproducer and exit")
      .flag("minimize", "with --replay: greedily shrink the reproducer "
                        "while it still fails, writing FILE.min.json");
  auto Args = Spec.parse(argc, argv);
  if (!Args) {
    std::fprintf(stderr, "error: %s\n", Args.message().c_str());
    return 1;
  }
  if (Spec.helpShown())
    return 0;

  DiffOptions Options;
  Options.FindingsDir = Args->has("findings") ? Args->getString("findings")
                                              : "fuzz_findings";
  if (Args->has("scratch"))
    Options.ScratchDir = Args->getString("scratch");
  if (Error Err = matrixFromArgs(*Args, Options.Matrix)) {
    std::fprintf(stderr, "error: %s\n", Err.message().c_str());
    return 1;
  }

  if (Args->has("replay"))
    return replayFinding(Args->getString("replay"), Args->has("minimize"),
                         Options);

  Error ProfileErr;
  GenConfig Config = genConfigFromArgs(*Args, ProfileErr);
  if (ProfileErr) {
    std::fprintf(stderr, "error: %s\n", ProfileErr.message().c_str());
    return 1;
  }

  uint64_t BaseSeed = static_cast<uint64_t>(Args->getInt("seed", 1));
  int Iterations = static_cast<int>(Args->getInt("iterations", 50));
  double Seconds = Args->getDouble("seconds", 0.0);
  auto Start = std::chrono::steady_clock::now();

  std::vector<FuzzFinding> Findings;
  int Programs = 0, Runs = 0;
  for (int Iteration = 0; Iteration < Iterations; ++Iteration) {
    if (Seconds > 0) {
      double Elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - Start)
                           .count();
      if (Elapsed >= Seconds) {
        std::printf("wall budget reached after %d programs\n", Programs);
        break;
      }
    }
    uint64_t Seed = BaseSeed + static_cast<uint64_t>(Iteration);
    StencilProgram Program = generateProgram(Seed, Config);
    DiffResult Result = runDifferential(Program, Seed, Options);
    ++Programs;
    Runs += Result.Runs;
    for (FuzzFinding &Finding : Result.Findings) {
      printFinding(Finding);
      Findings.push_back(std::move(Finding));
    }
    if ((Iteration + 1) % 25 == 0)
      std::printf("  ... %d/%d programs, %d runs, %zu findings\n",
                  Iteration + 1, Iterations, Runs, Findings.size());
  }

  std::printf("%d programs, %d pipeline runs, %zu findings", Programs, Runs,
              Findings.size());
  if (!Findings.empty())
    std::printf(" (reproducers in %s/)", Options.FindingsDir.c_str());
  std::printf("\n");
  return exitCodeForFindings(Findings);
}
