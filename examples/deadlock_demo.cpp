//===- examples/deadlock_demo.cpp - The Fig. 4 deadlock -----------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Demonstrates the deadlock scenario of paper Fig. 4: stencil C consumes
// both A directly and A through B. B buffers two full rows of A before
// producing, so without a delay buffer on the direct A->C edge, A blocks
// on C (full channel), C waits on B (empty channel), and B waits on A — a
// circular dependency. The delay-buffer analysis of Sec. IV-B sizes the
// A->C FIFO to absorb exactly B's initialization delay, restoring
// continuous streaming.
//
// Run:  ./deadlock_demo [--size N]
//
//===----------------------------------------------------------------------===//

#include "core/DataflowAnalysis.h"
#include "runtime/InputData.h"
#include "sim/Machine.h"
#include "frontend/Parser.h"
#include "frontend/SemanticAnalysis.h"
#include "support/CommandLine.h"

#include <cstdio>

using namespace stencilflow;

namespace {

StencilProgram buildDiamond(int64_t Size) {
  StencilProgram Program;
  Program.Name = "fig4_diamond";
  Program.IterationSpace = Shape({Size, Size});
  Field Input;
  Input.Name = "in";
  Input.DimensionMask = {true, true};
  Input.Source = DataSource::random(4);
  Program.Inputs.push_back(std::move(Input));

  auto addNode = [&](const std::string &Name, const std::string &Source) {
    StencilNode Node;
    Node.Name = Name;
    auto Code = parseStencilCode(Source);
    Node.Code = Code.takeValue();
    Program.Nodes.push_back(std::move(Node));
  };
  addNode("A", "A = in[0, 0] * 2.0;");
  addNode("B", "B = A[-1, 0] + A[1, 0] + A[0, -1] + A[0, 1];");
  addNode("C", "C = A[0, 0] + B[0, 0];");
  Program.Outputs = {"C"};
  Error Err = analyzeProgram(Program);
  (void)Err;
  return Program;
}

} // namespace

int main(int argc, char **argv) {
  auto Args = CommandLine::parse(argc, argv, {"size"});
  if (!Args) {
    std::fprintf(stderr, "error: %s\n", Args.message().c_str());
    return 1;
  }
  int64_t Size = Args->getInt("size", 32);

  StencilProgram Program = buildDiamond(Size);
  auto Compiled = CompiledProgram::compile(Program.clone());
  auto Dataflow = analyzeDataflow(*Compiled);
  auto Inputs = materializeInputs(Compiled->program());

  std::printf("Fig. 4 diamond: C consumes A directly and through B\n\n");
  std::printf("%s\n", Dataflow->report().c_str());

  // Attempt 1: all channels clamped to a minimal FIFO depth -> deadlock.
  {
    sim::SimConfig Config;
    Config.UnconstrainedMemory = true;
    Config.ClampChannelsToMinimum = true;
    Config.MinChannelDepth = 4;
    auto M = sim::Machine::build(*Compiled, *Dataflow, nullptr, Config);
    auto Result = M->run(Inputs);
    std::printf("--- without delay buffers (all FIFOs at depth 4) ---\n");
    if (!Result)
      std::printf("%s\n", Result.message().c_str());
    else
      std::printf("unexpectedly completed!\n");
  }

  // Attempt 2: channels carry the analysis' delay-buffer depths -> runs.
  {
    sim::SimConfig Config;
    Config.UnconstrainedMemory = true;
    auto M = sim::Machine::build(*Compiled, *Dataflow, nullptr, Config);
    auto Result = M->run(Inputs);
    std::printf("--- with the Sec. IV-B delay buffers ---\n");
    if (!Result) {
      std::printf("error: %s\n", Result.message().c_str());
      return 1;
    }
    std::printf("completed in %lld cycles (model bound C = L + N = %lld)\n",
                static_cast<long long>(Result->Stats.Cycles),
                static_cast<long long>(M->expectedCycles()));
  }
  return 0;
}
