//===- codegen/OpenCLEmitter.cpp - Annotated OpenCL generation ----------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/OpenCLEmitter.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

using namespace stencilflow;

namespace {

/// Scalar C type of \p Type.
std::string scalarType(DataType Type) {
  return std::string(dataTypeOpenCLName(Type));
}

/// Vector C type for W lanes.
std::string vectorType(DataType Type, int W) {
  if (W == 1)
    return scalarType(Type);
  return scalarType(Type) + formatString("%d", W);
}

std::string channelName(const std::string &Source,
                        const std::string &Consumer) {
  return "ch_" + Source + "__to__" + Consumer;
}

/// Emits a floating-point literal with the type's suffix.
std::string literalText(double Value, DataType Type) {
  std::string Text;
  if (Value == std::floor(Value) && std::fabs(Value) < 1e15)
    Text = formatString("%.1f", Value);
  else
    Text = formatString("%.9g", Value);
  if (Type == DataType::Float32)
    Text += "f";
  return Text;
}

/// Math intrinsic spelling for the element type.
std::string intrinsicText(Intrinsic Fn, DataType Type) {
  bool F32 = Type == DataType::Float32;
  switch (Fn) {
  case Intrinsic::Sqrt:
    return F32 ? "sqrtf" : "sqrt";
  case Intrinsic::Abs:
    return F32 ? "fabsf" : "fabs";
  case Intrinsic::Exp:
    return F32 ? "expf" : "exp";
  case Intrinsic::Log:
    return F32 ? "logf" : "log";
  case Intrinsic::Sin:
    return F32 ? "sinf" : "sin";
  case Intrinsic::Cos:
    return F32 ? "cosf" : "cos";
  case Intrinsic::Tanh:
    return F32 ? "tanhf" : "tanh";
  case Intrinsic::Floor:
    return F32 ? "floorf" : "floor";
  case Intrinsic::Ceil:
    return F32 ? "ceilf" : "ceil";
  case Intrinsic::Min:
    return F32 ? "fminf" : "fmin";
  case Intrinsic::Max:
    return F32 ? "fmaxf" : "fmax";
  case Intrinsic::Pow:
    return F32 ? "powf" : "pow";
  }
  return "<?>";
}

/// Renders an expression, mapping field accesses to their predicated slot
/// variables (in_<slot>).
std::string emitExpr(const Expr &E, const compute::Kernel &Kernel,
                     DataType Type) {
  switch (E.kind()) {
  case ExprKind::Literal:
    return literalText(cast<LiteralExpr>(&E)->value(), Type);
  case ExprKind::FieldAccess: {
    const auto *Access = cast<FieldAccessExpr>(&E);
    int Slot = Kernel.inputIndex(Access->field(), Access->offset());
    assert(Slot >= 0 && "access without a kernel slot");
    return formatString("in_%d", Slot);
  }
  case ExprKind::LocalRef:
    return cast<LocalRefExpr>(&E)->name();
  case ExprKind::Unary: {
    const auto *Unary = cast<UnaryExpr>(&E);
    const char *Op = Unary->op() == UnaryOp::Neg ? "-" : "!";
    return formatString("(%s%s)", Op,
                        emitExpr(Unary->operand(), Kernel, Type).c_str());
  }
  case ExprKind::Binary: {
    const auto *Binary = cast<BinaryExpr>(&E);
    return formatString("(%s %s %s)",
                        emitExpr(Binary->lhs(), Kernel, Type).c_str(),
                        std::string(binaryOpSpelling(Binary->op())).c_str(),
                        emitExpr(Binary->rhs(), Kernel, Type).c_str());
  }
  case ExprKind::Call: {
    const auto *Call = cast<CallExpr>(&E);
    std::string Text = intrinsicText(Call->intrinsic(), Type) + "(";
    for (size_t I = 0, N = Call->args().size(); I != N; ++I) {
      if (I)
        Text += ", ";
      Text += emitExpr(*Call->args()[I], Kernel, Type);
    }
    return Text + ")";
  }
  case ExprKind::Select: {
    const auto *Select = cast<SelectExpr>(&E);
    return formatString(
        "(%s ? %s : %s)",
        emitExpr(Select->condition(), Kernel, Type).c_str(),
        emitExpr(Select->trueValue(), Kernel, Type).c_str(),
        emitExpr(Select->falseValue(), Kernel, Type).c_str());
  }
  }
  return "<?>";
}

/// Everything the emitter needs about one device's design.
struct DeviceContext {
  int Device = 0;
  std::vector<size_t> Nodes;         ///< Node indices placed here.
  std::set<std::string> ReadFields;  ///< Off-chip inputs read here.
  std::vector<std::string> Outputs;  ///< Program outputs written here.
};

} // namespace

Expected<std::vector<GeneratedSource>>
stencilflow::emitOpenCL(const CompiledProgram &Compiled,
                        const DataflowAnalysis &Dataflow,
                        const Partition *Placement,
                        const EmitterOptions &Options) {
  const StencilProgram &Program = Compiled.program();
  int W = Program.VectorWidth;
  int64_t Iterations = Program.IterationSpace.numCells() / W;
  size_t Rank = Program.IterationSpace.rank();
  std::vector<std::string> Dims = StencilProgram::dimensionNames(Rank);

  auto deviceOf = [&](const std::string &Node) {
    return Placement ? Placement->deviceOf(Node) : 0;
  };
  int NumDevices = 1;
  for (const StencilNode &Node : Program.Nodes)
    NumDevices = std::max(NumDevices, deviceOf(Node.Name) + 1);

  std::vector<DeviceContext> Devices(static_cast<size_t>(NumDevices));
  for (int D = 0; D != NumDevices; ++D)
    Devices[static_cast<size_t>(D)].Device = D;
  for (size_t Index : Compiled.topologicalOrder()) {
    const StencilNode &Node = Program.Nodes[Index];
    DeviceContext &Ctx =
        Devices[static_cast<size_t>(deviceOf(Node.Name))];
    Ctx.Nodes.push_back(Index);
    for (const FieldAccesses &FA : Node.Accesses)
      if (Program.findInput(FA.Field))
        Ctx.ReadFields.insert(FA.Field);
    if (Program.isProgramOutput(Node.Name))
      Ctx.Outputs.push_back(Node.Name);
  }

  std::vector<GeneratedSource> Sources;
  for (DeviceContext &Ctx : Devices) {
    std::string S;
    S += formatString("// Generated by StencilFlow: program '%s', device %d"
                      " of %d\n",
                      Program.Name.c_str(), Ctx.Device, NumDevices);
    S += formatString("// Iteration space %s, vectorization W=%d\n\n",
                      Program.IterationSpace.toString().c_str(), W);
    S += "#pragma OPENCL EXTENSION cl_intel_channels : enable\n";
    bool HasRemote = false;
    if (Placement)
      for (const RemoteStream &Stream : Placement->RemoteStreams)
        if (Stream.SourceDevice == Ctx.Device ||
            Stream.ConsumerDevice == Ctx.Device)
          HasRemote = true;
    if (HasRemote) {
      S += "#include <smi.h> // Streaming Message Interface (Sec. VI-B)\n";
      // Reliable framing: every inter-device vector travels with a
      // sequence number and a CRC-32 of its payload, mirroring the
      // simulator's Go-Back-N transport (sim/Machine.cpp). The receiver
      // drops out-of-sequence or corrupted frames; the SMI runtime's
      // rewind covers the gap.
      S += "\ntypedef struct { uint seq; uint crc; } sf_frame_t;\n\n";
      S += "inline uint sf_crc32(const uchar *data, int len) {\n"
           "  uint crc = 0xFFFFFFFFu;\n"
           "  for (int i = 0; i < len; ++i) {\n"
           "    crc ^= data[i];\n"
           "    #pragma unroll\n"
           "    for (int b = 0; b < 8; ++b)\n"
           "      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));\n"
           "  }\n"
           "  return ~crc;\n"
           "}\n";
    }
    S += "\n";

    // Channel declarations: every edge whose consumer lives here and whose
    // producer also lives here (or is one of our memory readers).
    auto edgeIsLocal = [&](const DataflowEdge &Edge) {
      if (deviceOf(Edge.Consumer) != Ctx.Device)
        return false;
      if (Program.findInput(Edge.Source))
        return true; // Reader is instantiated on the consumer's device.
      return deviceOf(Edge.Source) == Ctx.Device;
    };
    for (const DataflowEdge &Edge : Dataflow.Edges) {
      if (!edgeIsLocal(Edge))
        continue;
      int64_t Depth = Edge.BufferDepth + Options.ExtraChannelDepth;
      S += formatString(
          "channel %s %s __attribute__((depth(%lld))); // delay buffer "
          "%lld\n",
          vectorType(Program.fieldType(Edge.Source), W).c_str(),
          channelName(Edge.Source, Edge.Consumer).c_str(),
          static_cast<long long>(Depth),
          static_cast<long long>(Edge.BufferDepth));
    }
    for (const std::string &Output : Ctx.Outputs)
      S += formatString("channel %s %s __attribute__((depth(64)));\n",
                        vectorType(Program.fieldType(Output), W).c_str(),
                        channelName(Output, "memory").c_str());
    S += "\n";

    // Memory readers: one prefetcher per off-chip input, fanned out to
    // every local consumer.
    for (const std::string &FieldName : Ctx.ReadFields) {
      const Field *Input = Program.findInput(FieldName);
      if (!Input->isFullRank())
        continue; // Lower-rank inputs are passed as kernel arguments.
      std::string VType = vectorType(Input->Type, W);
      S += formatString("__kernel void read_%s(__global const %s *restrict "
                        "mem) {\n",
                        FieldName.c_str(), VType.c_str());
      S += formatString("  for (long i = 0; i < %lld; ++i) {\n",
                        static_cast<long long>(Iterations));
      S += formatString("    const %s value = mem[i];\n", VType.c_str());
      for (size_t Index : Ctx.Nodes) {
        const StencilNode &Node = Program.Nodes[Index];
        if (Node.accessesFor(FieldName) &&
            Dataflow.findEdge(FieldName, Node.Name))
          S += formatString("    write_channel_intel(%s, value);\n",
                            channelName(FieldName, Node.Name).c_str());
      }
      S += "  }\n}\n\n";
    }

    // Stencil units.
    for (size_t Index : Ctx.Nodes) {
      const StencilNode &Node = Program.Nodes[Index];
      const compute::Kernel &Kernel = Compiled.kernel(Index);
      const NodeBuffers &Buffers = Dataflow.Buffers[Index];
      std::string SType = scalarType(Node.Type);
      std::string VType = vectorType(Node.Type, W);
      int64_t Init = Buffers.InitCycles;

      // ROM (lower-rank) inputs become kernel arguments; hence no autorun
      // when present.
      std::vector<std::string> RomFields;
      for (const FieldAccesses &FA : Node.Accesses) {
        const Field *Input = Program.findInput(FA.Field);
        if (Input && !Input->isFullRank())
          RomFields.push_back(FA.Field);
      }

      S += "__attribute__((max_global_work_dim(0)))\n";
      if (RomFields.empty())
        S += "__attribute__((autorun))\n";
      S += formatString("__kernel void stencil_%s(", Node.Name.c_str());
      for (size_t R = 0; R != RomFields.size(); ++R) {
        if (R)
          S += ", ";
        S += formatString("__global const %s *restrict rom_%s",
                          scalarType(Program.fieldType(RomFields[R])).c_str(),
                          RomFields[R].c_str());
      }
      S += ") {\n";

      // Send sequence counters for the reliable framing, one per remote
      // consumer of this node.
      for (size_t Consumer : Program.consumersOf(Node.Name)) {
        const StencilNode &ConsumerNode = Program.Nodes[Consumer];
        if (deviceOf(ConsumerNode.Name) != Ctx.Device)
          S += formatString("  uint smi_seq_%s_to_%s = 0;\n",
                            Node.Name.c_str(),
                            ConsumerNode.Name.c_str());
      }

      // Shift registers (Intel shift-register pattern, Sec. VI-A).
      struct StreamInfo {
        std::string Field;
        int64_t Size;
        int64_t MinLinear;
        int64_t Delay; // Fill-delay steps.
      };
      std::vector<StreamInfo> Streams;
      for (const InternalBuffer &Buffer : Buffers.Buffers) {
        StreamInfo Info;
        Info.Field = Buffer.Field;
        Info.Size =
            (Buffer.InitCycles + 1) * W + std::max<int64_t>(
                                              0, -Buffer.MinLinear);
        Info.MinLinear = Buffer.MinLinear;
        Info.Delay = Init - Buffer.InitCycles;
        Streams.push_back(Info);
        S += formatString("  %s sreg_%s[%lld]; // internal buffer, %lld "
                          "elements of reuse\n",
                          SType.c_str(), Buffer.Field.c_str(),
                          static_cast<long long>(Info.Size),
                          static_cast<long long>(Buffer.SizeElements));
      }

      // Output index counters for boundary predication.
      for (const std::string &Dim : Dims)
        S += formatString("  long %s = 0;\n", Dim.c_str());
      S += formatString(
          "  for (long it = 0; it < %lld; ++it) { // fully pipelined, "
          "II=1\n",
          static_cast<long long>(Iterations + Init));

      // Shift phase.
      for (const StreamInfo &Info : Streams) {
        S += "    #pragma unroll\n";
        S += formatString(
            "    for (int s = 0; s < %lld; ++s)\n      sreg_%s[s] = "
            "sreg_%s[s + %d];\n",
            static_cast<long long>(Info.Size - W), Info.Field.c_str(),
            Info.Field.c_str(), W);
      }

      // Update phase.
      for (const StreamInfo &Info : Streams) {
        S += formatString(
            "    if (it >= %lld && it < %lld) {\n",
            static_cast<long long>(Info.Delay),
            static_cast<long long>(Info.Delay + Iterations));
        S += formatString("      const %s value = read_channel_intel(%s);\n",
                          VType.c_str(),
                          channelName(Info.Field, Node.Name).c_str());
        if (W == 1) {
          S += formatString("      sreg_%s[%lld] = value;\n",
                            Info.Field.c_str(),
                            static_cast<long long>(Info.Size - 1));
        } else {
          S += "      #pragma unroll\n";
          S += formatString(
              "      for (int w = 0; w < %d; ++w)\n        sreg_%s[%lld + "
              "w] = value[w];\n",
              W, Info.Field.c_str(),
              static_cast<long long>(Info.Size - W));
        }
        S += "    }\n";
      }

      // Compute phase with per-lane boundary predication; the conditional
      // write suppresses results during initialization.
      S += formatString("    if (it >= %lld) {\n",
                        static_cast<long long>(Init));
      S += formatString("      %s result;\n", VType.c_str());
      S += "      #pragma unroll\n";
      S += formatString("      for (int w = 0; w < %d; ++w) {\n", W);
      // Predicated slot loads.
      for (size_t Slot = 0, NumSlots = Kernel.inputs().size();
           Slot != NumSlots; ++Slot) {
        const compute::KernelInput &Input = Kernel.inputs()[Slot];
        BoundaryCondition Boundary = Node.boundaryFor(Input.Field);
        std::vector<bool> Mask = Program.fieldDimensionMask(Input.Field);
        bool FullRank = std::all_of(Mask.begin(), Mask.end(),
                                    [](bool B) { return B; });
        // Bounds predicate over the logical index.
        std::string Pred;
        size_t Component = 0;
        for (size_t Dim = 0; Dim != Rank; ++Dim) {
          if (!Mask[Dim])
            continue;
          int Off = Input.Off[Component++];
          std::string Idx = Dims[Dim];
          if (Dim + 1 == Rank)
            Idx += " + w";
          if (Off != 0)
            Idx += formatString(" + (%d)", Off);
          if (!Pred.empty())
            Pred += " && ";
          Pred += formatString("(%s >= 0 && %s < %lld)", Idx.c_str(),
                               Idx.c_str(),
                               static_cast<long long>(
                                   Program.IterationSpace.extent(Dim)));
        }
        if (Pred.empty())
          Pred = "1";

        std::string Read, Center;
        if (FullRank) {
          const StreamInfo *Info = nullptr;
          for (const StreamInfo &Candidate : Streams)
            if (Candidate.Field == Input.Field)
              Info = &Candidate;
          assert(Info && "streamed slot without a shift register");
          int64_t Tap =
              Program.IterationSpace.linearize(Input.Off) - Info->MinLinear;
          Read = formatString("sreg_%s[%lld + w]", Input.Field.c_str(),
                              static_cast<long long>(Tap));
          Center = formatString("sreg_%s[%lld + w]", Input.Field.c_str(),
                                static_cast<long long>(-Info->MinLinear));
        } else {
          // ROM lookup with row-major strides over the spanned dims.
          Shape FieldShape = Program.fieldShape(Input.Field);
          std::vector<int64_t> Strides(FieldShape.rank(), 1);
          for (size_t Dim = FieldShape.rank(); Dim-- > 1;)
            Strides[Dim - 1] = Strides[Dim] * FieldShape.extent(Dim);
          auto romIndex = [&](bool WithOffsets) {
            std::string Text = "0";
            size_t Comp = 0;
            for (size_t Dim = 0; Dim != Rank; ++Dim) {
              if (!Mask[Dim])
                continue;
              std::string Idx = Dims[Dim];
              if (Dim + 1 == Rank)
                Idx += " + w";
              if (WithOffsets && Input.Off[Comp] != 0)
                Idx += formatString(" + (%d)", Input.Off[Comp]);
              Text += formatString(" + (%s) * %lld", Idx.c_str(),
                                   static_cast<long long>(Strides[Comp]));
              ++Comp;
            }
            return Text;
          };
          Read = formatString("rom_%s[%s]", Input.Field.c_str(),
                              romIndex(true).c_str());
          Center = formatString("rom_%s[%s]", Input.Field.c_str(),
                                romIndex(false).c_str());
        }

        std::string Fallback = Boundary.Kind == BoundaryKind::Copy
                                   ? Center
                                   : literalText(Boundary.Value, Node.Type);
        S += formatString("        const %s in_%zu = (%s) ? %s : %s;\n",
                          SType.c_str(), Slot, Pred.c_str(), Read.c_str(),
                          Fallback.c_str());
      }
      // Statements.
      for (size_t StmtIndex = 0;
           StmtIndex != Node.Code.Statements.size(); ++StmtIndex) {
        const Assignment &Stmt = Node.Code.Statements[StmtIndex];
        bool Final = StmtIndex + 1 == Node.Code.Statements.size();
        std::string Value = emitExpr(*Stmt.Value, Kernel, Node.Type);
        if (Final) {
          if (W == 1)
            S += formatString("        result = %s;\n", Value.c_str());
          else
            S += formatString("        result[w] = %s;\n", Value.c_str());
        } else {
          S += formatString("        const %s %s = %s;\n", SType.c_str(),
                            Stmt.Target.c_str(), Value.c_str());
        }
      }
      S += "      }\n";

      // Emit to all consumers (and the writer when this is an output).
      for (size_t Consumer : Program.consumersOf(Node.Name)) {
        const StencilNode &ConsumerNode = Program.Nodes[Consumer];
        if (deviceOf(ConsumerNode.Name) == Ctx.Device) {
          S += formatString("      write_channel_intel(%s, result);\n",
                            channelName(Node.Name, ConsumerNode.Name)
                                .c_str());
        } else {
          // Framed remote push: header (seq + payload CRC) then payload.
          S += formatString(
              "      { // remote stream to device %d\n"
              "        sf_frame_t frame;\n"
              "        frame.seq = smi_seq_%s_to_%s++;\n"
              "        frame.crc = sf_crc32((const uchar *)&result, "
              "(int)sizeof(result));\n"
              "        SMI_Push(&smi_%s_to_%s, &frame);\n"
              "        SMI_Push(&smi_%s_to_%s, &result);\n"
              "      }\n",
              deviceOf(ConsumerNode.Name), Node.Name.c_str(),
              ConsumerNode.Name.c_str(), Node.Name.c_str(),
              ConsumerNode.Name.c_str(), Node.Name.c_str(),
              ConsumerNode.Name.c_str());
        }
      }
      if (Program.isProgramOutput(Node.Name))
        S += formatString("      write_channel_intel(%s, result);\n",
                          channelName(Node.Name, "memory").c_str());

      // Index increment (innermost advances by W).
      std::string Advance;
      for (size_t Dim = Rank; Dim-- > 0;) {
        if (Dim + 1 == Rank) {
          Advance = formatString(
              "      %s += %d;\n      if (%s == %lld) {\n        %s = 0;\n",
              Dims[Dim].c_str(), W, Dims[Dim].c_str(),
              static_cast<long long>(Program.IterationSpace.extent(Dim)),
              Dims[Dim].c_str());
        } else {
          Advance += formatString(
              "        ++%s;\n        if (%s == %lld) {\n          %s = "
              "0;\n",
              Dims[Dim].c_str(), Dims[Dim].c_str(),
              static_cast<long long>(Program.IterationSpace.extent(Dim)),
              Dims[Dim].c_str());
        }
      }
      S += Advance;
      for (size_t Dim = 0; Dim != Rank; ++Dim)
        S += Dim + 1 == Rank ? "      }\n"
                             : std::string(8 - 2 * 0, ' ') + "}\n";
      S += "    }\n";
      S += "  }\n}\n\n";
    }

    // Remote-stream receivers: pops on this device are embedded in the
    // consumer kernels via channels fed by SMI bridge kernels.
    if (Placement) {
      for (const RemoteStream &Stream : Placement->RemoteStreams) {
        if (Stream.ConsumerDevice != Ctx.Device)
          continue;
        std::string VType =
            vectorType(Program.fieldType(Stream.Source), W);
        // The receiver verifies sequence and CRC; corrupted or stale
        // frames are dropped and the sender's Go-Back-N rewind re-covers
        // the gap, so only clean in-order vectors reach the compute
        // kernels.
        S += formatString(
            "__attribute__((autorun))\n__kernel void smi_recv_%s_to_%s() "
            "{\n  uint seq = 0;\n  for (long i = 0; i < %lld;) {\n    "
            "sf_frame_t frame;\n    %s value;\n    "
            "SMI_Pop(&smi_%s_to_%s, &frame);\n    "
            "SMI_Pop(&smi_%s_to_%s, &value);\n    "
            "if (frame.seq == seq &&\n        frame.crc == "
            "sf_crc32((const uchar *)&value, (int)sizeof(value))) {\n"
            "      write_channel_intel(%s, value);\n      ++seq;\n      "
            "++i;\n    } // else: corrupted or stale frame; dropped.\n  "
            "}\n}\n\n",
            Stream.Source.c_str(), Stream.Consumer.c_str(),
            static_cast<long long>(Iterations), VType.c_str(),
            Stream.Source.c_str(), Stream.Consumer.c_str(),
            Stream.Source.c_str(), Stream.Consumer.c_str(),
            channelName(Stream.Source, Stream.Consumer).c_str());
      }
    }

    // Writers.
    for (const std::string &Output : Ctx.Outputs) {
      std::string VType = vectorType(Program.fieldType(Output), W);
      S += formatString(
          "__kernel void write_%s(__global %s *restrict mem) {\n  for "
          "(long i = 0; i < %lld; ++i)\n    mem[i] = "
          "read_channel_intel(%s);\n}\n\n",
          Output.c_str(), VType.c_str(),
          static_cast<long long>(Iterations),
          channelName(Output, "memory").c_str());
    }

    GeneratedSource Generated;
    Generated.Device = Ctx.Device;
    Generated.FileName =
        formatString("%s_device%d.cl", Program.Name.c_str(), Ctx.Device);
    Generated.Source = std::move(S);
    Sources.push_back(std::move(Generated));
  }

  // Host-interface summary.
  std::string Host;
  Host += formatString("// Host interface for '%s' (%d device(s))\n",
                       Program.Name.c_str(), NumDevices);
  Host += "// Buffers to allocate and copy before launch:\n";
  for (const Field &Input : Program.Inputs)
    if (!Program.consumersOf(Input.Name).empty())
      Host += formatString(
          "//   input  %-16s %s x %lld cells\n", Input.Name.c_str(),
          std::string(dataTypeName(Input.Type)).c_str(),
          static_cast<long long>(
              Input.shapeWithin(Program.IterationSpace).numCells()));
  for (const std::string &Output : Program.Outputs)
    Host += formatString(
        "//   output %-16s %s x %lld cells\n", Output.c_str(),
        std::string(dataTypeName(Program.fieldType(Output))).c_str(),
        static_cast<long long>(Program.IterationSpace.numCells()));
  Host += formatString("// Expected cycles: C = L + N (Eq. 1)\n");

  GeneratedSource HostSource;
  HostSource.Device = -1;
  HostSource.FileName = Program.Name + "_host.cpp";
  HostSource.Source = std::move(Host);
  Sources.push_back(std::move(HostSource));
  return Sources;
}
