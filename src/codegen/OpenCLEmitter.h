//===- codegen/OpenCLEmitter.h - Annotated OpenCL generation ------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Code generation in the style of the Intel FPGA SDK for OpenCL backend
/// (paper Sec. VI): each stencil unit becomes an autorun kernel with
/// shift-register internal buffers, channels carry the delay-buffer depth
/// annotations, dedicated prefetcher/writer kernels interface off-chip
/// memory, loops carry pipelining/unrolling annotations, and remote
/// streams emit SMI-style push/pop calls (Sec. VI-B).
///
/// Without the vendor toolchain the emitted source is not synthesized; it
/// is the code-generation artifact of the stack (golden-tested, and the
/// faithful textual twin of what the simulator executes).
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_CODEGEN_OPENCLEMITTER_H
#define STENCILFLOW_CODEGEN_OPENCLEMITTER_H

#include "core/DataflowAnalysis.h"
#include "core/Partitioner.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace stencilflow {

/// One emitted translation unit (one device = one bitstream, Sec. VI-B).
struct GeneratedSource {
  int Device = 0;
  std::string FileName; ///< e.g. "program_device0.cl".
  std::string Source;
};

/// Emission options.
struct EmitterOptions {
  /// Extra slack added to each channel depth on top of the analysis value
  /// (matches the simulator's MinChannelDepth).
  int64_t ExtraChannelDepth = 8;
};

/// Emits kernel source for every device of \p Placement (or a single
/// device when \p Placement is nullptr), plus a host-interface summary as
/// the last element (FileName "<name>_host.cpp").
Expected<std::vector<GeneratedSource>>
emitOpenCL(const CompiledProgram &Compiled, const DataflowAnalysis &Dataflow,
           const Partition *Placement = nullptr,
           const EmitterOptions &Options = {});

} // namespace stencilflow

#endif // STENCILFLOW_CODEGEN_OPENCLEMITTER_H
