//===- core/ResourceModel.cpp - FPGA resource & frequency model --------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/ResourceModel.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace stencilflow;

DeviceResources DeviceResources::stratix10GX2800() {
  DeviceResources Device;
  Device.ALMs = 692000;
  Device.FFs = 2800000;
  Device.M20Ks = 8900;
  Device.DSPs = 4468;
  return Device;
}

double ResourceUsage::peakUtilization(const DeviceResources &Device) const {
  double Peak = 0.0;
  Peak = std::max(Peak, static_cast<double>(ALMs) /
                            static_cast<double>(Device.ALMs));
  Peak = std::max(Peak, static_cast<double>(FFs) /
                            static_cast<double>(Device.FFs));
  Peak = std::max(Peak, static_cast<double>(M20Ks) /
                            static_cast<double>(Device.M20Ks));
  Peak = std::max(Peak, static_cast<double>(DSPs) /
                            static_cast<double>(Device.DSPs));
  return Peak;
}

std::string ResourceUsage::report(const DeviceResources &Device) const {
  return formatString(
      "ALM %lldK (%.1f%%), FF %lldK (%.1f%%), M20K %lld (%.1f%%), DSP %lld "
      "(%.1f%%)",
      static_cast<long long>(ALMs / 1000),
      100.0 * static_cast<double>(ALMs) / static_cast<double>(Device.ALMs),
      static_cast<long long>(FFs / 1000),
      100.0 * static_cast<double>(FFs) / static_cast<double>(Device.FFs),
      static_cast<long long>(M20Ks),
      100.0 * static_cast<double>(M20Ks) / static_cast<double>(Device.M20Ks),
      static_cast<long long>(DSPs),
      100.0 * static_cast<double>(DSPs) / static_cast<double>(Device.DSPs));
}

namespace {

int64_t m20ksForBytes(int64_t Bytes, const ResourceModelConfig &Config) {
  if (Bytes <= 0)
    return 0;
  return (Bytes + Config.M20KBytes - 1) / Config.M20KBytes;
}

} // namespace

ResourceUsage
stencilflow::estimateNodeResources(const CompiledProgram &Compiled,
                                   size_t NodeIndex,
                                   const NodeBuffers &Buffers,
                                   const ResourceModelConfig &Config) {
  const StencilProgram &Program = Compiled.program();
  const compute::Kernel &Kernel = Compiled.kernel(NodeIndex);
  compute::OpCensus Census = Kernel.census();
  int64_t W = Program.VectorWidth;
  size_t ElementBytes = dataTypeSize(Program.Nodes[NodeIndex].Type);

  int64_t FlopLanes = (Census.Additions + Census.Multiplications) * W;
  int64_t DivSqrtLanes = (Census.Divisions + Census.SquareRoots) * W;
  int64_t TranscendentalLanes = Census.Transcendental * W;
  int64_t CheapLanes =
      (Census.MinMax + Census.Comparisons + Census.Branches + Census.Other) *
      W;
  int64_t InputLanes = static_cast<int64_t>(Kernel.inputs().size()) * W;

  ResourceUsage Usage;
  Usage.ALMs = Config.ALMsPerStencilBase +
               FlopLanes * Config.ALMsPerFlopLane +
               DivSqrtLanes * Config.ALMsPerDivSqrtLane +
               TranscendentalLanes * Config.ALMsPerTranscendentalLane +
               CheapLanes * Config.ALMsPerCheapOpLane +
               InputLanes * Config.ALMsPerInputLane;
  Usage.DSPs = FlopLanes * Config.DSPsPerFlopLane +
               DivSqrtLanes * Config.DSPsPerDivSqrtLane +
               TranscendentalLanes * Config.DSPsPerTranscendentalLane;

  Usage.M20Ks = Config.M20KsPerStencilBase;
  for (const InternalBuffer &Buffer : Buffers.Buffers)
    if (Buffer.NeedsShiftRegister)
      Usage.M20Ks += m20ksForBytes(
          Buffer.SizeElements * static_cast<int64_t>(ElementBytes), Config);

  Usage.FFs = static_cast<int64_t>(
      std::llround(Config.FFsPerALM * static_cast<double>(Usage.ALMs)));
  return Usage;
}

ResourceUsage
stencilflow::estimateEdgeResources(const CompiledProgram &Compiled,
                                   const DataflowEdge &Edge,
                                   const ResourceModelConfig &Config) {
  const StencilProgram &Program = Compiled.program();
  size_t ElementBytes = dataTypeSize(Program.fieldType(Edge.Source));
  ResourceUsage Usage;
  int64_t Bytes = Edge.BufferDepth * Program.VectorWidth *
                  static_cast<int64_t>(ElementBytes);
  Usage.M20Ks = m20ksForBytes(Bytes, Config);
  // Channel wiring contributes a small amount of logic.
  Usage.ALMs = 50 + Edge.BufferDepth / 64;
  Usage.FFs = static_cast<int64_t>(
      std::llround(Config.FFsPerALM * static_cast<double>(Usage.ALMs)));
  return Usage;
}

ResourceUsage
stencilflow::estimateMemoryEndpoint(int Lanes, size_t ElementBytes,
                                    const ResourceModelConfig &Config) {
  ResourceUsage Usage;
  Usage.ALMs = Config.ALMsPerMemoryEndpointBase +
               static_cast<int64_t>(Lanes) * Config.ALMsPerMemoryEndpointLane;
  Usage.M20Ks = Config.M20KsPerMemoryEndpoint +
                m20ksForBytes(static_cast<int64_t>(Lanes) *
                                  static_cast<int64_t>(ElementBytes) * 64,
                              Config);
  Usage.FFs = static_cast<int64_t>(
      std::llround(Config.FFsPerALM * static_cast<double>(Usage.ALMs)));
  return Usage;
}

ResourceUsage
stencilflow::estimateNetworkEndpoint(const ResourceModelConfig &Config) {
  ResourceUsage Usage;
  Usage.ALMs = Config.ALMsPerNetworkEndpoint;
  Usage.M20Ks = Config.M20KsPerNetworkEndpoint;
  Usage.FFs = static_cast<int64_t>(
      std::llround(Config.FFsPerALM * static_cast<double>(Usage.ALMs)));
  return Usage;
}

ResourceUsage
stencilflow::estimateProgramResources(const CompiledProgram &Compiled,
                                      const DataflowAnalysis &Dataflow,
                                      const ResourceModelConfig &Config) {
  const StencilProgram &Program = Compiled.program();
  ResourceUsage Total;

  for (size_t I = 0, E = Program.Nodes.size(); I != E; ++I)
    Total += estimateNodeResources(Compiled, I, Dataflow.Buffers[I], Config);

  for (const DataflowEdge &Edge : Dataflow.Edges)
    Total += estimateEdgeResources(Compiled, Edge, Config);

  // One reader endpoint per off-chip input that is actually consumed; one
  // writer endpoint per program output.
  for (const Field &Input : Program.Inputs)
    if (!Program.consumersOf(Input.Name).empty())
      Total += estimateMemoryEndpoint(
          Input.isFullRank() ? Program.VectorWidth : 1,
          dataTypeSize(Input.Type), Config);
  for (const std::string &Output : Program.Outputs)
    Total += estimateMemoryEndpoint(Program.VectorWidth,
                                    dataTypeSize(Program.fieldType(Output)),
                                    Config);
  return Total;
}

double stencilflow::estimateFrequencyMHz(const ResourceUsage &Usage,
                                         const DeviceResources &Device,
                                         const ResourceModelConfig &Config) {
  double Utilization = Usage.peakUtilization(Device);
  double Frequency =
      Config.MaxFrequencyMHz - Config.FrequencySlopeMHz * Utilization;
  return std::max(Config.MinFrequencyMHz, Frequency);
}
