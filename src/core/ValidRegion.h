//===- core/ValidRegion.h - Shrink-boundary output regions --------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The valid output region of a stencil under the \c shrink boundary
/// condition (paper Sec. II): "all computed values that read out of bounds
/// values are simply ignored in the output". A cell is valid when every
/// access of the stencil stays in bounds, i.e. the interior region obtained
/// by trimming each dimension by the largest negative and positive offsets.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_CORE_VALIDREGION_H
#define STENCILFLOW_CORE_VALIDREGION_H

#include "ir/StencilProgram.h"

#include <cstdint>
#include <vector>

namespace stencilflow {

/// An axis-aligned region [Lo[d], Hi[d]) per dimension.
struct ValidRegion {
  std::vector<int64_t> Lo;
  std::vector<int64_t> Hi;

  /// True if \p Index lies inside the region.
  bool contains(const std::vector<int64_t> &Index) const {
    for (size_t Dim = 0; Dim != Lo.size(); ++Dim)
      if (Index[Dim] < Lo[Dim] || Index[Dim] >= Hi[Dim])
        return false;
    return true;
  }

  /// Number of cells inside the region (0 if empty).
  int64_t numCells() const {
    int64_t Total = 1;
    for (size_t Dim = 0; Dim != Lo.size(); ++Dim) {
      if (Hi[Dim] <= Lo[Dim])
        return 0;
      Total *= Hi[Dim] - Lo[Dim];
    }
    return Total;
  }
};

/// Computes the shrink-valid output region of \p Node. For nodes without
/// shrink this is the full iteration space.
ValidRegion computeValidRegion(const StencilProgram &Program,
                               const StencilNode &Node);

} // namespace stencilflow

#endif // STENCILFLOW_CORE_VALIDREGION_H
