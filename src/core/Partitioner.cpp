//===- core/Partitioner.cpp - Multi-device mapping ---------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Partitioner.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace stencilflow;

int Partition::deviceOf(const std::string &Name) const {
  auto It = NodeDevice.find(Name);
  assert(It != NodeDevice.end() && "deviceOf() of an unplaced node");
  return It->second;
}

std::string Partition::report() const {
  std::string Result =
      formatString("partition across %zu device(s):\n", Devices.size());
  for (size_t D = 0, E = Devices.size(); D != E; ++D) {
    const DevicePlacement &Device = Devices[D];
    Result += formatString("  device %zu: %zu stencil(s), inputs {%s}, "
                           "outputs {%s}\n",
                           D, Device.Nodes.size(),
                           joinStrings(Device.ReplicatedInputs, ", ").c_str(),
                           joinStrings(Device.OutputsWritten, ", ").c_str());
  }
  for (const RemoteStream &Stream : RemoteStreams)
    Result += formatString("  remote stream %s -> %s (device %d -> %d)\n",
                           Stream.Source.c_str(), Stream.Consumer.c_str(),
                           Stream.SourceDevice, Stream.ConsumerDevice);
  return Result;
}

Expected<Partition>
stencilflow::partitionProgram(const CompiledProgram &Compiled,
                              const DataflowAnalysis &Dataflow,
                              const PartitionOptions &Options) {
  const StencilProgram &Program = Compiled.program();
  DeviceResources Budget;
  Budget.ALMs = static_cast<int64_t>(
      Options.TargetUtilization * static_cast<double>(Options.Device.ALMs));
  Budget.FFs = static_cast<int64_t>(
      Options.TargetUtilization * static_cast<double>(Options.Device.FFs));
  Budget.M20Ks = static_cast<int64_t>(
      Options.TargetUtilization * static_cast<double>(Options.Device.M20Ks));
  Budget.DSPs = static_cast<int64_t>(
      Options.TargetUtilization * static_cast<double>(Options.Device.DSPs));

  Partition Result;
  Result.Devices.emplace_back();
  ResourceUsage Current; // Usage of the device being filled.

  auto nodeCost = [&](size_t Index) {
    ResourceUsage Cost = estimateNodeResources(
        Compiled, Index, Dataflow.Buffers[Index], Options.ResourceConfig);
    // Incoming delay buffers live on the consumer's device.
    for (const DataflowEdge &Edge : Dataflow.Edges)
      if (Edge.Consumer == Program.Nodes[Index].Name)
        Cost += estimateEdgeResources(Compiled, Edge,
                                      Options.ResourceConfig);
    return Cost;
  };

  for (size_t Index : Compiled.topologicalOrder()) {
    ResourceUsage Cost = nodeCost(Index);
    if (!Cost.fitsWithin(Budget))
      return makeError(ErrorCode::Infeasible,
                       "stencil '" + Program.Nodes[Index].Name +
                       "' alone exceeds one device's capacity (" +
                       Cost.report(Options.Device) + ")");
    ResourceUsage Combined = Current + Cost;
    bool KernelCountExceeded =
        static_cast<int>(Result.Devices.back().Nodes.size()) >=
        Options.MaxStencilsPerDevice;
    if (!Combined.fitsWithin(Budget) || KernelCountExceeded) {
      // Spill to a new device.
      if (static_cast<int>(Result.Devices.size()) >= Options.MaxDevices)
        return makeError(ErrorCode::Infeasible,
                         formatString("program does not fit on %d "
                                      "device(s)", Options.MaxDevices));
      Result.Devices.emplace_back();
      Current = Cost;
    } else {
      Current = Combined;
    }
    int Device = static_cast<int>(Result.Devices.size()) - 1;
    Result.Devices.back().Nodes.push_back(Program.Nodes[Index].Name);
    Result.NodeDevice[Program.Nodes[Index].Name] = Device;
  }

  // Derive replicated inputs, written outputs, and remote streams.
  for (size_t Index = 0, E = Program.Nodes.size(); Index != E; ++Index) {
    const StencilNode &Node = Program.Nodes[Index];
    int ConsumerDevice = Result.NodeDevice.at(Node.Name);
    DevicePlacement &Placement =
        Result.Devices[static_cast<size_t>(ConsumerDevice)];
    for (const FieldAccesses &FA : Node.Accesses) {
      if (Program.findInput(FA.Field)) {
        if (std::find(Placement.ReplicatedInputs.begin(),
                      Placement.ReplicatedInputs.end(),
                      FA.Field) == Placement.ReplicatedInputs.end())
          Placement.ReplicatedInputs.push_back(FA.Field);
        continue;
      }
      int SourceDevice = Result.NodeDevice.at(FA.Field);
      if (SourceDevice == ConsumerDevice)
        continue;
      assert(SourceDevice < ConsumerDevice &&
             "topological placement must be monotonic");
      Result.RemoteStreams.push_back(
          RemoteStream{FA.Field, Node.Name, SourceDevice, ConsumerDevice});
    }
  }
  for (const std::string &Output : Program.Outputs) {
    int Device = Result.NodeDevice.at(Output);
    Result.Devices[static_cast<size_t>(Device)].OutputsWritten.push_back(
        Output);
  }

  // Account per-device resources including endpoints.
  for (size_t D = 0, E = Result.Devices.size(); D != E; ++D) {
    DevicePlacement &Placement = Result.Devices[D];
    ResourceUsage Usage;
    for (const std::string &NodeName : Placement.Nodes) {
      size_t Index = static_cast<size_t>(Program.nodeIndex(NodeName));
      Usage += nodeCost(Index);
    }
    for (const std::string &Input : Placement.ReplicatedInputs) {
      const Field *InputField = Program.findInput(Input);
      Usage += estimateMemoryEndpoint(
          InputField->isFullRank() ? Program.VectorWidth : 1,
          dataTypeSize(InputField->Type), Options.ResourceConfig);
    }
    for (const std::string &Output : Placement.OutputsWritten)
      Usage += estimateMemoryEndpoint(Program.VectorWidth,
                                      dataTypeSize(Program.fieldType(Output)),
                                      Options.ResourceConfig);
    for (const RemoteStream &Stream : Result.RemoteStreams)
      if (Stream.SourceDevice == static_cast<int>(D) ||
          Stream.ConsumerDevice == static_cast<int>(D))
        Usage += estimateNetworkEndpoint(Options.ResourceConfig);
    Placement.Resources = Usage;
  }

  return Result;
}
