//===- core/ResourceModel.h - FPGA resource & frequency model -----*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A calibrated resource model of the paper's testbed device (BittWare
/// 520N: Intel Stratix 10 GX 2800, Sec. VIII-B) used in place of the
/// Quartus place-and-route flow. It estimates adaptive logic modules
/// (ALMs), flip-flops (FFs), M20K memory blocks, and DSPs per stencil
/// unit, per delay buffer, per memory endpoint, and per network endpoint,
/// and derives an achievable clock frequency from utilization (the paper
/// reports 292-317 MHz across all benchmarks).
///
/// Calibration constants are grouped in \c ResourceModelConfig so ablation
/// benchmarks can vary them; defaults were fitted to Table I of the paper
/// (documented in EXPERIMENTS.md).
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_CORE_RESOURCEMODEL_H
#define STENCILFLOW_CORE_RESOURCEMODEL_H

#include "core/CompiledProgram.h"
#include "core/DataflowAnalysis.h"

#include <cstdint>
#include <string>

namespace stencilflow {

/// Resource capacities of one device (after subtracting the board shell,
/// matching the "Total Avail." row of Table I).
struct DeviceResources {
  int64_t ALMs = 0;
  int64_t FFs = 0;
  int64_t M20Ks = 0;
  int64_t DSPs = 0;

  /// The paper's testbed FPGA: Stratix 10 GX 2800 with the BittWare
  /// p520_max_sg280l shell (692K ALMs, 2.8M FFs, 8.9K M20Ks, 4468 DSPs
  /// available to user logic).
  static DeviceResources stratix10GX2800();
};

/// Estimated resource usage of a (partial) design.
struct ResourceUsage {
  int64_t ALMs = 0;
  int64_t FFs = 0;
  int64_t M20Ks = 0;
  int64_t DSPs = 0;

  ResourceUsage &operator+=(const ResourceUsage &Other) {
    ALMs += Other.ALMs;
    FFs += Other.FFs;
    M20Ks += Other.M20Ks;
    DSPs += Other.DSPs;
    return *this;
  }
  friend ResourceUsage operator+(ResourceUsage A, const ResourceUsage &B) {
    A += B;
    return A;
  }

  /// True if this design fits within \p Device.
  bool fitsWithin(const DeviceResources &Device) const {
    return ALMs <= Device.ALMs && FFs <= Device.FFs &&
           M20Ks <= Device.M20Ks && DSPs <= Device.DSPs;
  }

  /// Highest utilization fraction across the four resource classes.
  double peakUtilization(const DeviceResources &Device) const;

  /// "ALM 64.8%, FF 48.0%, M20K 28.6%, DSP 51.6%"-style report.
  std::string report(const DeviceResources &Device) const;
};

/// Calibration constants of the model. All per-operation costs are per
/// vector lane.
struct ResourceModelConfig {
  // --- Compute logic ---
  int64_t ALMsPerStencilBase = 1500; ///< Control, predication, scheduling.
  int64_t ALMsPerFlopLane = 100;     ///< Adds/muls (pipeline regs included).
  int64_t ALMsPerDivSqrtLane = 700;  ///< Divide/sqrt soft logic.
  int64_t ALMsPerTranscendentalLane = 1400;
  int64_t ALMsPerCheapOpLane = 20;   ///< Min/max/compare/select/logic.
  int64_t ALMsPerInputLane = 15;     ///< Boundary predication per tap.
  int64_t DSPsPerFlopLane = 1;       ///< Hardened fp32 add/mul.
  int64_t DSPsPerDivSqrtLane = 4;
  int64_t DSPsPerTranscendentalLane = 8;
  double FFsPerALM = 2.3;            ///< Observed FF:ALM ratio (Table I).

  // --- On-chip memory ---
  int64_t M20KBytes = 2560;        ///< Usable bytes per M20K block.
  int64_t M20KsPerStencilBase = 4; ///< FIFOs and scheduler state.

  // --- Off-chip memory endpoints ---
  int64_t ALMsPerMemoryEndpointBase = 4000;
  int64_t ALMsPerMemoryEndpointLane = 600;
  int64_t M20KsPerMemoryEndpoint = 16; ///< Prefetch/store burst buffers.

  // --- Network (SMI) endpoints ---
  int64_t ALMsPerNetworkEndpoint = 12000;
  int64_t M20KsPerNetworkEndpoint = 32;

  // --- Frequency model ---
  double MaxFrequencyMHz = 317.0; ///< At near-zero utilization.
  double MinFrequencyMHz = 250.0;
  double FrequencySlopeMHz = 25.0; ///< Drop per 100% peak utilization.
};

/// Estimates the resources of stencil unit \p NodeIndex, including its
/// internal (shift-register) buffers.
ResourceUsage estimateNodeResources(const CompiledProgram &Compiled,
                                    size_t NodeIndex,
                                    const NodeBuffers &Buffers,
                                    const ResourceModelConfig &Config = {});

/// Estimates the resources of the delay buffer on \p Edge.
ResourceUsage estimateEdgeResources(const CompiledProgram &Compiled,
                                    const DataflowEdge &Edge,
                                    const ResourceModelConfig &Config = {});

/// Estimates one off-chip memory endpoint (reader or writer) moving
/// \p Lanes elements of \p ElementBytes per cycle.
ResourceUsage estimateMemoryEndpoint(int Lanes, size_t ElementBytes,
                                     const ResourceModelConfig &Config = {});

/// Estimates one network (SMI) endpoint.
ResourceUsage estimateNetworkEndpoint(const ResourceModelConfig &Config = {});

/// Estimates a complete single-device design: all stencil units, delay
/// buffers, and one endpoint per off-chip input/output stream.
ResourceUsage
estimateProgramResources(const CompiledProgram &Compiled,
                         const DataflowAnalysis &Dataflow,
                         const ResourceModelConfig &Config = {});

/// Achievable clock frequency in MHz given \p Usage on \p Device: the
/// paper observes 292-317 MHz, degrading mildly with utilization.
double estimateFrequencyMHz(const ResourceUsage &Usage,
                            const DeviceResources &Device,
                            const ResourceModelConfig &Config = {});

} // namespace stencilflow

#endif // STENCILFLOW_CORE_RESOURCEMODEL_H
