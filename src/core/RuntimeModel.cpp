//===- core/RuntimeModel.cpp - Expected runtime & roofline -------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/RuntimeModel.h"

using namespace stencilflow;

RuntimeEstimate
stencilflow::computeRuntimeEstimate(const CompiledProgram &Compiled,
                                    const DataflowAnalysis &Dataflow) {
  const StencilProgram &Program = Compiled.program();
  RuntimeEstimate Estimate;
  Estimate.StreamedCycles =
      Program.IterationSpace.numCells() / Program.VectorWidth;
  Estimate.LatencyCycles = Dataflow.PipelineLatency;
  Estimate.TotalCycles = Estimate.LatencyCycles + Estimate.StreamedCycles;
  Estimate.FlopsPerCell = Compiled.totalCensus().flops();
  Estimate.TotalFlops =
      Estimate.FlopsPerCell * Program.IterationSpace.numCells();
  return Estimate;
}

MemoryTraffic
stencilflow::computeMemoryTraffic(const CompiledProgram &Compiled) {
  const StencilProgram &Program = Compiled.program();
  MemoryTraffic Traffic;
  int64_t StreamedEndpoints = 0;

  for (const Field &Input : Program.Inputs) {
    // Skip inputs nobody reads (legal but dead).
    if (Program.consumersOf(Input.Name).empty())
      continue;
    Shape FieldShape = Input.shapeWithin(Program.IterationSpace);
    Traffic.ReadElements += FieldShape.numCells();
    Traffic.ReadBytes +=
        FieldShape.numCells() *
        static_cast<int64_t>(dataTypeSize(Input.Type));
    if (Input.isFullRank())
      ++StreamedEndpoints;
    // Lower-dimensional inputs are preloaded before the streaming phase and
    // do not consume steady-state bandwidth.
  }

  for (const std::string &Output : Program.Outputs) {
    const StencilNode *Node = Program.findNode(Output);
    assert(Node && "validated program output must exist");
    Traffic.WriteElements += Program.IterationSpace.numCells();
    Traffic.WriteBytes += Program.IterationSpace.numCells() *
                          static_cast<int64_t>(dataTypeSize(Node->Type));
    ++StreamedEndpoints;
  }

  Traffic.OperandsPerCycle = StreamedEndpoints * Program.VectorWidth;
  return Traffic;
}

RooflineAnalysis
stencilflow::computeRoofline(const CompiledProgram &Compiled) {
  const StencilProgram &Program = Compiled.program();
  MemoryTraffic Traffic = computeMemoryTraffic(Compiled);
  int64_t TotalFlops =
      Compiled.totalCensus().flops() * Program.IterationSpace.numCells();

  RooflineAnalysis Roofline;
  if (Traffic.totalElements() > 0)
    Roofline.OpsPerOperand = static_cast<double>(TotalFlops) /
                             static_cast<double>(Traffic.totalElements());
  if (Traffic.totalBytes() > 0)
    Roofline.OpsPerByte = static_cast<double>(TotalFlops) /
                          static_cast<double>(Traffic.totalBytes());
  return Roofline;
}
