//===- core/DataflowAnalysis.h - Delay buffers & pipeline latency -*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delay buffers for inter-stencil reuse and deadlock freedom
/// (paper Sec. IV-B), and the global pipeline latency used by the runtime
/// model (Sec. VIII-A).
///
/// Two factors delay data along a path through the DAG: the critical path
/// of each stencil's compute circuit, and the initialization phase in which
/// internal buffers fill. Traversing the DAG in topological order we
/// compute, for every edge arriving at a node, the highest delay along any
/// path from any source. The delay buffer placed on an edge is the highest
/// delay across *all* of the node's incoming edges minus the delay of that
/// edge — so every node has at least one incoming edge with buffer size
/// zero, and producers that run ahead (Fig. 4) can deposit their data
/// without blocking, which guarantees deadlock freedom and continuous
/// streaming.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_CORE_DATAFLOWANALYSIS_H
#define STENCILFLOW_CORE_DATAFLOWANALYSIS_H

#include "compute/Bytecode.h"
#include "core/BufferAnalysis.h"
#include "core/CompiledProgram.h"
#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace stencilflow {

/// One streamed edge of the dataflow graph: from a source (off-chip input
/// reader or producer stencil) into a consumer stencil.
struct DataflowEdge {
  /// Field streamed along the edge (an input field or a producer node's
  /// output; the producer node has the same name as the field).
  std::string Source;

  /// Consuming stencil node.
  std::string Consumer;

  /// Cycles the consumer spends filling this edge's internal buffer before
  /// its first element is useful (the per-field initialization phase,
  /// Sec. IV-A).
  int64_t FillCycles = 0;

  /// Highest delay (cycles) along any path from any source through this
  /// edge, *including the contribution of the initialization phase of the
  /// consuming node itself* (Sec. IV-B): the total delay of the source
  /// plus this edge's FillCycles.
  int64_t PathDelay = 0;

  /// Delay-buffer depth in vector units: the highest PathDelay among the
  /// consumer's incoming edges minus this edge's PathDelay. At least one
  /// incoming edge of every node has depth zero (Sec. IV-B).
  int64_t BufferDepth = 0;
};

/// Per-node timing contributions.
struct NodeDataflow {
  std::string Node;

  /// Initialization phase: cycles of input consumed before the first
  /// output (max over the node's internal buffers; Sec. IV-A).
  int64_t InitCycles = 0;

  /// Critical path of the compute circuit in cycles (Sec. IV-B). Typically
  /// small (<100 cycles).
  int64_t CircuitLatency = 0;

  /// Highest total delay from any source through this node, including its
  /// own initialization phase and circuit latency.
  int64_t TotalDelay = 0;
};

/// Complete dataflow analysis of a program.
struct DataflowAnalysis {
  /// Internal buffers, one entry per node (node order).
  std::vector<NodeBuffers> Buffers;

  /// Timing, one entry per node (node order).
  std::vector<NodeDataflow> Nodes;

  /// Streamed edges with their delay-buffer depths.
  std::vector<DataflowEdge> Edges;

  /// Pipeline latency L of the whole program (Eq. 1): the highest total
  /// delay into any program output.
  int64_t PipelineLatency = 0;

  /// Returns the edge from \p Source into \p Consumer, or nullptr.
  const DataflowEdge *findEdge(const std::string &Source,
                               const std::string &Consumer) const;

  /// Timing entry for node \p Name; must exist.
  const NodeDataflow &nodeInfo(const std::string &Name) const;

  /// Buffer entry for node \p Name; must exist.
  const NodeBuffers &bufferInfo(const std::string &Name) const;

  /// Total on-chip storage of all delay buffers, in elements
  /// (vector units * W).
  int64_t totalDelayBufferElements(int VectorWidth) const;

  /// Human-readable report of buffers and delays.
  std::string report() const;
};

/// Runs the full dataflow analysis over \p Compiled.
Expected<DataflowAnalysis>
analyzeDataflow(const CompiledProgram &Compiled,
                const compute::LatencyTable &Latencies = {});

} // namespace stencilflow

#endif // STENCILFLOW_CORE_DATAFLOWANALYSIS_H
