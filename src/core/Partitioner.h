//===- core/Partitioner.h - Multi-device mapping ------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mapping to the distributed setting (paper Sec. III-B, Fig. 5). To scale
/// beyond one chip's off-chip bandwidth, on-chip memory and logic, designs
/// span multiple devices: some inter-stencil connections cross devices and
/// become network (SMI remote) streams, and off-chip data must be present
/// in the DRAM of every device that accesses it, implying replication.
///
/// The partitioner assigns stencil nodes to devices in topological order,
/// greedily filling each device up to a target utilization of the resource
/// model. Monotonic assignment in topological order guarantees all remote
/// streams flow from lower- to higher-numbered devices, matching the
/// testbed's chained FPGA topology (Sec. VIII-B).
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_CORE_PARTITIONER_H
#define STENCILFLOW_CORE_PARTITIONER_H

#include "core/DataflowAnalysis.h"
#include "core/ResourceModel.h"
#include "support/Error.h"

#include <map>
#include <string>
#include <vector>

namespace stencilflow {

/// Everything placed on one device.
struct DevicePlacement {
  /// Stencil nodes mapped to this device, in topological order.
  std::vector<std::string> Nodes;

  /// Off-chip input fields that must be resident in this device's DRAM
  /// (inputs consumed by any node placed here). Inputs consumed on several
  /// devices are replicated to each (Fig. 5).
  std::vector<std::string> ReplicatedInputs;

  /// Program outputs written back from this device.
  std::vector<std::string> OutputsWritten;

  /// Estimated resource usage of this device's design, including network
  /// endpoints.
  ResourceUsage Resources;
};

/// An inter-stencil connection that crosses devices: realized as an SMI
/// remote stream (Sec. VI-B).
struct RemoteStream {
  std::string Source;   ///< Producing field/node.
  std::string Consumer; ///< Consuming node.
  int SourceDevice = 0;
  int ConsumerDevice = 0;
};

/// A complete multi-device mapping.
struct Partition {
  std::vector<DevicePlacement> Devices;
  std::vector<RemoteStream> RemoteStreams;

  size_t numDevices() const { return Devices.size(); }

  /// Device index of node \p Name; the node must be placed.
  int deviceOf(const std::string &Name) const;

  /// Human-readable placement report.
  std::string report() const;

private:
  friend Expected<Partition>
  partitionProgram(const CompiledProgram &, const DataflowAnalysis &,
                   const struct PartitionOptions &);
  std::map<std::string, int> NodeDevice;
};

/// Partitioning options.
struct PartitionOptions {
  /// Per-device capacities.
  DeviceResources Device = DeviceResources::stratix10GX2800();

  /// Maximum devices available (the paper's testbed chains up to 8).
  int MaxDevices = 8;

  /// Fraction of each resource class the partitioner may fill before
  /// spilling to the next device. Real place-and-route fails well below
  /// 100%; the paper's largest designs stop at ~82% ALMs.
  double TargetUtilization = 0.85;

  /// Practical limit on stencil units per device. The Intel OpenCL
  /// toolchain struggles to place designs with many hundreds of kernels
  /// and channels long before raw resources are exhausted — the paper's
  /// best unvectorized chain stops near 128 stencils at only ~34% ALM
  /// utilization (Tab. I), which this knob models.
  int MaxStencilsPerDevice = 128;

  /// Resource model calibration.
  ResourceModelConfig ResourceConfig;
};

/// Maps \p Compiled onto one or more devices. Fails if a single node
/// exceeds one device's capacity or more than MaxDevices are needed.
Expected<Partition> partitionProgram(const CompiledProgram &Compiled,
                                     const DataflowAnalysis &Dataflow,
                                     const PartitionOptions &Options = {});

} // namespace stencilflow

#endif // STENCILFLOW_CORE_PARTITIONER_H
