//===- core/ValidRegion.cpp - Shrink-boundary output regions -----------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/ValidRegion.h"

#include <algorithm>

using namespace stencilflow;

ValidRegion stencilflow::computeValidRegion(const StencilProgram &Program,
                                            const StencilNode &Node) {
  size_t Rank = Program.IterationSpace.rank();
  ValidRegion Region;
  Region.Lo.assign(Rank, 0);
  Region.Hi = Program.IterationSpace.extents();
  if (!Node.ShrinkOutput)
    return Region;

  for (const FieldAccesses &FA : Node.Accesses) {
    std::vector<bool> Mask = Program.fieldDimensionMask(FA.Field);
    for (const Offset &Off : FA.Offsets) {
      // Map the field's offset components back onto program dimensions.
      size_t Component = 0;
      for (size_t Dim = 0; Dim != Rank; ++Dim) {
        if (!Mask[Dim])
          continue;
        int O = Off[Component++];
        if (O < 0)
          Region.Lo[Dim] = std::max<int64_t>(Region.Lo[Dim], -O);
        else if (O > 0)
          Region.Hi[Dim] = std::min<int64_t>(
              Region.Hi[Dim], Program.IterationSpace.extent(Dim) - O);
      }
    }
  }
  return Region;
}
