//===- core/DataflowAnalysis.cpp - Delay buffers & pipeline latency ----------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/DataflowAnalysis.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <map>

using namespace stencilflow;

const DataflowEdge *
DataflowAnalysis::findEdge(const std::string &Source,
                           const std::string &Consumer) const {
  for (const DataflowEdge &Edge : Edges)
    if (Edge.Source == Source && Edge.Consumer == Consumer)
      return &Edge;
  return nullptr;
}

const NodeDataflow &
DataflowAnalysis::nodeInfo(const std::string &Name) const {
  for (const NodeDataflow &Node : Nodes)
    if (Node.Node == Name)
      return Node;
  assert(false && "nodeInfo() of an unknown node");
  return Nodes.front();
}

const NodeBuffers &
DataflowAnalysis::bufferInfo(const std::string &Name) const {
  for (const NodeBuffers &Buffers : this->Buffers)
    if (Buffers.Node == Name)
      return Buffers;
  assert(false && "bufferInfo() of an unknown node");
  return Buffers.front();
}

int64_t DataflowAnalysis::totalDelayBufferElements(int VectorWidth) const {
  int64_t Total = 0;
  for (const DataflowEdge &Edge : Edges)
    Total += Edge.BufferDepth * VectorWidth;
  return Total;
}

std::string DataflowAnalysis::report() const {
  std::string Result;
  Result += "node timing (cycles):\n";
  for (const NodeDataflow &Node : Nodes)
    Result += formatString("  %-24s init=%-8lld circuit=%-6lld total=%lld\n",
                           Node.Node.c_str(),
                           static_cast<long long>(Node.InitCycles),
                           static_cast<long long>(Node.CircuitLatency),
                           static_cast<long long>(Node.TotalDelay));
  Result += "delay buffers (vector units):\n";
  for (const DataflowEdge &Edge : Edges)
    Result += formatString("  %-24s -> %-20s delay=%-8lld buffer=%lld\n",
                           Edge.Source.c_str(), Edge.Consumer.c_str(),
                           static_cast<long long>(Edge.PathDelay),
                           static_cast<long long>(Edge.BufferDepth));
  Result += formatString("pipeline latency L = %lld cycles\n",
                         static_cast<long long>(PipelineLatency));
  return Result;
}

Expected<DataflowAnalysis>
stencilflow::analyzeDataflow(const CompiledProgram &Compiled,
                             const compute::LatencyTable &Latencies) {
  const StencilProgram &Program = Compiled.program();

  DataflowAnalysis Result;
  Result.Buffers = computeAllBuffers(Program);
  Result.Nodes.resize(Program.Nodes.size());

  // Total delay from any source to each field's first available element.
  // Off-chip inputs are available from cycle 0 (prefetchers read ahead of
  // computations, Sec. VI).
  std::map<std::string, int64_t> FieldDelay;
  for (const Field &Input : Program.Inputs)
    FieldDelay[Input.Name] = 0;

  for (size_t Index : Compiled.topologicalOrder()) {
    const StencilNode &Node = Program.Nodes[Index];
    NodeDataflow &Info = Result.Nodes[Index];
    Info.Node = Node.Name;
    Info.InitCycles = Result.Buffers[Index].InitCycles;
    Info.CircuitLatency =
        Compiled.kernel(Index).criticalPathLatency(Latencies);

    // Gather incoming streamed edges. The per-edge delay is the source's
    // total delay plus the time this edge's internal buffer spends filling
    // at the consumer ("including the contribution of the initialization
    // phase of the node itself", Sec. IV-B).
    std::vector<DataflowEdge> Incoming;
    int64_t MaxDelay = 0;
    for (const FieldAccesses &FA : Node.Accesses) {
      std::vector<bool> Mask = Program.fieldDimensionMask(FA.Field);
      bool FullRank = std::all_of(Mask.begin(), Mask.end(),
                                  [](bool Spanned) { return Spanned; });
      if (!FullRank)
        continue; // Preloaded ROM, not a streamed edge.
      auto It = FieldDelay.find(FA.Field);
      assert(It != FieldDelay.end() &&
             "topological order visited a consumer before its producer");
      DataflowEdge Edge;
      Edge.Source = FA.Field;
      Edge.Consumer = Node.Name;
      for (const InternalBuffer &Buffer : Result.Buffers[Index].Buffers)
        if (Buffer.Field == FA.Field)
          Edge.FillCycles = Buffer.InitCycles;
      Edge.PathDelay = It->second + Edge.FillCycles;
      MaxDelay = std::max(MaxDelay, Edge.PathDelay);
      Incoming.push_back(std::move(Edge));
    }

    // Delay buffer per edge: highest delay across all edges minus the
    // edge's own delay; at least one edge gets zero (Sec. IV-B).
    for (DataflowEdge &Edge : Incoming) {
      Edge.BufferDepth = MaxDelay - Edge.PathDelay;
      Result.Edges.push_back(std::move(Edge));
    }

    // The node's first output emerges once the slowest edge's buffer is
    // full and the value has traversed the compute circuit.
    Info.TotalDelay = MaxDelay + Info.CircuitLatency;
    FieldDelay[Node.Name] = Info.TotalDelay;
  }

  for (const std::string &Output : Program.Outputs)
    Result.PipelineLatency =
        std::max(Result.PipelineLatency, FieldDelay.at(Output));
  return Result;
}
