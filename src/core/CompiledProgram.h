//===- core/CompiledProgram.h - Program + compiled kernels --------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stencil program together with its per-node compiled kernels and
/// topological order — the common substrate the analyses, code generators,
/// simulator and reference executor all operate on.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_CORE_COMPILEDPROGRAM_H
#define STENCILFLOW_CORE_COMPILEDPROGRAM_H

#include "compute/Kernel.h"
#include "ir/StencilProgram.h"
#include "support/Error.h"

#include <vector>

namespace stencilflow {

/// A validated stencil program with one compiled kernel per node.
class CompiledProgram {
public:
  /// Validates \p Program and compiles every node.
  static Expected<CompiledProgram>
  compile(StencilProgram Program,
          const compute::KernelOptions &Options = {});

  const StencilProgram &program() const { return Program; }
  StencilProgram &program() { return Program; }

  /// Kernel of node \p Index (program().Nodes order).
  const compute::Kernel &kernel(size_t Index) const {
    assert(Index < Kernels.size() && "node index out of range");
    return Kernels[Index];
  }

  /// Kernel of the node named \p Name; the node must exist.
  const compute::Kernel &kernelFor(const std::string &Name) const;

  /// Node indices in topological order.
  const std::vector<size_t> &topologicalOrder() const { return TopoOrder; }

  /// Aggregate per-cell operation census over all nodes (Sec. IX-A).
  compute::OpCensus totalCensus() const;

private:
  StencilProgram Program;
  std::vector<compute::Kernel> Kernels;
  std::vector<size_t> TopoOrder;
};

} // namespace stencilflow

#endif // STENCILFLOW_CORE_COMPILEDPROGRAM_H
