//===- core/BufferAnalysis.cpp - Internal reuse buffers ----------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/BufferAnalysis.h"

#include <algorithm>

using namespace stencilflow;

NodeBuffers stencilflow::computeNodeBuffers(const StencilProgram &Program,
                                            const StencilNode &Node) {
  NodeBuffers Result;
  Result.Node = Node.Name;
  int64_t W = Program.VectorWidth;

  for (const FieldAccesses &FA : Node.Accesses) {
    // Lower-dimensional inputs are preloaded ROMs, not streamed buffers.
    std::vector<bool> Mask = Program.fieldDimensionMask(FA.Field);
    bool FullRank = std::all_of(Mask.begin(), Mask.end(),
                                [](bool Spanned) { return Spanned; });
    if (!FullRank)
      continue;

    InternalBuffer Buffer;
    Buffer.Field = FA.Field;

    // Linearize all offsets in memory order of the iteration space.
    std::vector<int64_t> Linearized;
    Linearized.reserve(FA.Offsets.size());
    for (const Offset &Off : FA.Offsets)
      Linearized.push_back(Program.IterationSpace.linearize(Off));
    auto [MinIt, MaxIt] =
        std::minmax_element(Linearized.begin(), Linearized.end());
    // The buffered window always includes the center (offset 0): the
    // streaming schedule is anchored there, and copy boundaries substitute
    // the center value. For every stencil in the paper the window already
    // spans the center, so this matches its buffer sizes.
    int64_t MinLinear = std::min<int64_t>(*MinIt, 0);
    int64_t MaxLinear = std::max<int64_t>(*MaxIt, 0);

    Buffer.MinLinear = MinLinear;
    Buffer.MaxLinear = MaxLinear;
    Buffer.DistanceElements = MaxLinear - MinLinear;
    Buffer.SizeElements = Buffer.DistanceElements + W;
    Buffer.NeedsShiftRegister = FA.Offsets.size() > 1;
    // With W elements arriving per cycle, the first output needs the full
    // distance between the lowest and highest access to be resident.
    Buffer.InitCycles = (Buffer.DistanceElements + W - 1) / W;

    Buffer.TapsElements.reserve(Linearized.size());
    for (int64_t Linear : Linearized)
      Buffer.TapsElements.push_back(Linear - MinLinear);
    std::sort(Buffer.TapsElements.begin(), Buffer.TapsElements.end());

    Result.Buffers.push_back(std::move(Buffer));
  }

  for (const InternalBuffer &Buffer : Result.Buffers)
    Result.InitCycles = std::max(Result.InitCycles, Buffer.InitCycles);

  // Synchronize fill start times: the largest buffer starts immediately,
  // smaller ones wait max{B} - B_i cycles (Sec. IV-A).
  for (InternalBuffer &Buffer : Result.Buffers)
    Buffer.FillDelayCycles = Result.InitCycles - Buffer.InitCycles;

  return Result;
}

std::vector<NodeBuffers>
stencilflow::computeAllBuffers(const StencilProgram &Program) {
  std::vector<NodeBuffers> Result;
  Result.reserve(Program.Nodes.size());
  for (const StencilNode &Node : Program.Nodes)
    Result.push_back(computeNodeBuffers(Program, Node));
  return Result;
}
