//===- core/RuntimeModel.h - Expected runtime & roofline ----------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The expected-runtime model of Sec. VIII-A and the arithmetic-intensity /
/// roofline analysis of Sec. IX-A.
///
/// All StencilFlow architectures are fully pipelined with initiation
/// interval I = 1, so the cycles to process N inputs are C = L + N (Eq. 1),
/// where L is the pipeline latency (initialization phases plus circuit
/// latencies along the critical DAG path) and N is the number of iterations
/// (domain cells divided by the vectorization width W). N covers the
/// streaming phase where all stencils run pipeline-parallel; L covers
/// initialization, is proportional to (D-1)-dimensional slices only, and
/// becomes negligible for large domains.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_CORE_RUNTIMEMODEL_H
#define STENCILFLOW_CORE_RUNTIMEMODEL_H

#include "core/CompiledProgram.h"
#include "core/DataflowAnalysis.h"

#include <cstdint>

namespace stencilflow {

/// Expected-runtime estimate for a program (Eq. 1).
struct RuntimeEstimate {
  /// N: iterations in the streaming phase = cells / W.
  int64_t StreamedCycles = 0;

  /// L: pipeline latency in cycles.
  int64_t LatencyCycles = 0;

  /// C = L + I*N with I = 1.
  int64_t TotalCycles = 0;

  /// Floating-point operations per cell summed over all stencil nodes
  /// (paper accounting; see compute::OpCensus::flops()).
  int64_t FlopsPerCell = 0;

  /// Total floating-point operations of the program evaluation.
  int64_t TotalFlops = 0;

  /// Runtime in seconds at clock frequency \p FrequencyHz.
  double seconds(double FrequencyHz) const {
    return static_cast<double>(TotalCycles) / FrequencyHz;
  }

  /// Performance in Op/s at \p FrequencyHz.
  double opsPerSecond(double FrequencyHz) const {
    return static_cast<double>(TotalFlops) / seconds(FrequencyHz);
  }
};

/// Computes the expected runtime of \p Compiled given its dataflow
/// analysis.
RuntimeEstimate computeRuntimeEstimate(const CompiledProgram &Compiled,
                                       const DataflowAnalysis &Dataflow);

/// Off-chip memory traffic under perfect reuse: every input field is read
/// exactly once, every output written exactly once (Sec. IV-A: "data should
/// only be loaded once").
struct MemoryTraffic {
  int64_t ReadElements = 0;
  int64_t WriteElements = 0;
  int64_t ReadBytes = 0;
  int64_t WriteBytes = 0;

  /// Operands that must be moved per cycle of the streaming phase to keep
  /// the pipeline running: W elements per streamed input and output stream.
  int64_t OperandsPerCycle = 0;

  int64_t totalElements() const { return ReadElements + WriteElements; }
  int64_t totalBytes() const { return ReadBytes + WriteBytes; }

  /// Required off-chip bandwidth in bytes/s at \p FrequencyHz for the
  /// streaming phase to never stall on memory.
  double requiredBandwidth(double FrequencyHz, size_t ElementBytes) const {
    return static_cast<double>(OperandsPerCycle) *
           static_cast<double>(ElementBytes) * FrequencyHz;
  }
};

/// Computes the memory traffic of \p Compiled.
MemoryTraffic computeMemoryTraffic(const CompiledProgram &Compiled);

/// Arithmetic-intensity / roofline quantities (Sec. IX-A, Eq. 2-4).
struct RooflineAnalysis {
  /// Ops per operand: total flops / total operands moved (Eq. before 2).
  double OpsPerOperand = 0.0;

  /// Ops per byte (Eq. 2).
  double OpsPerByte = 0.0;

  /// Highest achievable performance in Op/s at \p BandwidthBytesPerSec
  /// (Eq. 3).
  double boundPerformance(double BandwidthBytesPerSec) const {
    return OpsPerByte * BandwidthBytesPerSec;
  }

  /// Bandwidth in B/s required to saturate \p OpsPerSecond compute
  /// performance (Eq. 4).
  double requiredBandwidth(double OpsPerSecond) const {
    return OpsPerSecond / OpsPerByte;
  }
};

/// Computes the roofline quantities of \p Compiled.
RooflineAnalysis computeRoofline(const CompiledProgram &Compiled);

} // namespace stencilflow

#endif // STENCILFLOW_CORE_RUNTIMEMODEL_H
