//===- core/CompiledProgram.cpp - Program + compiled kernels -----------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/CompiledProgram.h"

using namespace stencilflow;

Expected<CompiledProgram>
CompiledProgram::compile(StencilProgram Program,
                         const compute::KernelOptions &Options) {
  if (Error Err = Program.validate())
    return Err;
  CompiledProgram Result;
  Result.Program = std::move(Program);
  Result.Kernels.reserve(Result.Program.Nodes.size());
  for (const StencilNode &Node : Result.Program.Nodes) {
    Expected<compute::Kernel> Compiled = compute::Kernel::compile(Node,
                                                                  Options);
    if (!Compiled)
      return Compiled.takeError();
    Result.Kernels.push_back(Compiled.takeValue());
  }
  Expected<std::vector<size_t>> Order = Result.Program.topologicalOrder();
  if (!Order)
    return Order.takeError();
  Result.TopoOrder = Order.takeValue();
  return Result;
}

const compute::Kernel &
CompiledProgram::kernelFor(const std::string &Name) const {
  int Index = Program.nodeIndex(Name);
  assert(Index >= 0 && "kernelFor() of an unknown node");
  return Kernels[static_cast<size_t>(Index)];
}

compute::OpCensus CompiledProgram::totalCensus() const {
  compute::OpCensus Census;
  for (const compute::Kernel &Kern : Kernels)
    Census += Kern.census();
  return Census;
}
