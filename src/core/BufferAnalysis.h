//===- core/BufferAnalysis.h - Internal reuse buffers -------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal buffers for intra-stencil reuse (paper Sec. IV-A).
///
/// When a stencil reads the same field at multiple offsets, the elements
/// between the lowest and highest offset in memory order are kept in an
/// on-chip shift register. The buffer size is the largest distance between
/// any two offsets in memory order, plus the vector width: e.g. in a 3D
/// space {K, J, I}, accesses a[0,1,0] and a[0,-1,0] buffer two rows
/// (2I + W elements), while b[0,0,0] and b[1,0,0] buffer a 2D slice
/// (IJ + W elements). Buffer sizes are up to a constant number of
/// (D-1)-dimensional slices.
///
/// Filling the buffers delays the first output: the initialization phase of
/// a stencil is max{B_1, ..., B_F}, and a buffer with size B_i only starts
/// filling after max{B} - B_i iterations so all fields stay synchronized.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_CORE_BUFFERANALYSIS_H
#define STENCILFLOW_CORE_BUFFERANALYSIS_H

#include "ir/StencilProgram.h"

#include <cstdint>
#include <string>
#include <vector>

namespace stencilflow {

/// The internal buffer of one (stencil, field) pair.
struct InternalBuffer {
  /// The buffered input field.
  std::string Field;

  /// True if the field is accessed at two or more offsets and therefore
  /// needs a shift register; single-access fields pass straight through
  /// (size counts just the vector itself).
  bool NeedsShiftRegister = false;

  /// Largest distance between any two accesses in memory order, in
  /// elements (0 for a single access at the center).
  int64_t DistanceElements = 0;

  /// Lowest and highest linearized access offsets (both clamped to include
  /// the center, 0). DistanceElements = MaxLinear - MinLinear.
  int64_t MinLinear = 0;
  int64_t MaxLinear = 0;

  /// Buffer size in elements: DistanceElements + W (Sec. IV-A).
  int64_t SizeElements = 0;

  /// Cycles of input consumption before the first output can be produced:
  /// ceil(DistanceElements / W). This is the buffer's contribution to the
  /// initialization phase.
  int64_t InitCycles = 0;

  /// Number of cycles to wait before this buffer starts filling, so it is
  /// synchronized with the stencil's largest buffer:
  /// maxInitCycles - InitCycles.
  int64_t FillDelayCycles = 0;

  /// Tap positions into the shift register: each access offset's distance
  /// from the lowest (oldest) access, in elements. Sorted ascending; the
  /// highest tap equals DistanceElements.
  std::vector<int64_t> TapsElements;
};

/// Buffer analysis result for one stencil node.
struct NodeBuffers {
  std::string Node;

  /// One entry per *streamed* (full-rank) input field, in access order.
  /// Lower-dimensional inputs are preloaded into on-chip ROMs before
  /// streaming begins and need no shift registers.
  std::vector<InternalBuffer> Buffers;

  /// Initialization phase of the node in cycles:
  /// max over buffers of InitCycles (0 if no streamed input has reuse).
  int64_t InitCycles = 0;

  /// Total on-chip elements held by this node's internal buffers.
  int64_t totalBufferElements() const {
    int64_t Total = 0;
    for (const InternalBuffer &Buffer : Buffers)
      if (Buffer.NeedsShiftRegister)
        Total += Buffer.SizeElements;
    return Total;
  }
};

/// Computes internal buffers for one node of \p Program.
NodeBuffers computeNodeBuffers(const StencilProgram &Program,
                               const StencilNode &Node);

/// Computes internal buffers for every node, in node order.
std::vector<NodeBuffers> computeAllBuffers(const StencilProgram &Program);

} // namespace stencilflow

#endif // STENCILFLOW_CORE_BUFFERANALYSIS_H
