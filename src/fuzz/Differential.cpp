//===- fuzz/Differential.cpp - Differential pipeline fuzzing ----------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Differential.h"

#include "core/CompiledProgram.h"
#include "frontend/ProgramLoader.h"
#include "runtime/InputData.h"
#include "runtime/Iterate.h"
#include "runtime/ReferenceExecutor.h"
#include "runtime/Session.h"
#include "sim/Checkpoint.h"
#include "sim/Fault.h"
#include "sim/Trace.h"
#include "support/Random.h"
#include "support/StringUtils.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdlib>
#include <set>

using namespace stencilflow;
using namespace stencilflow::fuzz;

//===----------------------------------------------------------------------===//
// Finding kinds
//===----------------------------------------------------------------------===//

const char *fuzz::findingKindName(FindingKind Kind) {
  switch (Kind) {
  case FindingKind::Mismatch:
    return "mismatch";
  case FindingKind::Deadlock:
    return "deadlock";
  case FindingKind::Crash:
    return "crash";
  case FindingKind::ErrorAsymmetry:
    return "error-asymmetry";
  }
  return "unknown";
}

std::optional<FindingKind> fuzz::findingKindFromName(std::string_view Name) {
  for (FindingKind Kind :
       {FindingKind::Mismatch, FindingKind::Deadlock, FindingKind::Crash,
        FindingKind::ErrorAsymmetry})
    if (Name == findingKindName(Kind))
      return Kind;
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// DiffConfig
//===----------------------------------------------------------------------===//

std::string DiffConfig::id() const {
  std::string Id = Parallel ? "parallel" : "serial";
  Id += "/" + Kernel;
  Id += formatString("/t%d", TemporalDegree);
  if (Faults)
    Id += "/faults";
  if (Resume)
    Id += "/resume";
  return Id;
}

json::Value DiffConfig::toJson() const {
  json::Object O;
  O.set("parallel", json::Value(Parallel));
  O.set("kernel", json::Value(Kernel));
  O.set("temporal_degree", json::Value(TemporalDegree));
  O.set("faults", json::Value(Faults));
  O.set("resume", json::Value(Resume));
  return json::Value(std::move(O));
}

Expected<DiffConfig> DiffConfig::fromJson(const json::Value &V) {
  if (!V.isObject())
    return makeError(ErrorCode::InvalidInput,
                     "finding 'config' must be an object");
  const json::Object &O = V.getObject();
  DiffConfig Config;
  if (const json::Value *P = O.get("parallel"); P && P->isBoolean())
    Config.Parallel = P->getBoolean();
  if (const json::Value *K = O.get("kernel"); K && K->isString())
    Config.Kernel = K->getString();
  if (const json::Value *T = O.get("temporal_degree"); T && T->isNumber())
    Config.TemporalDegree = static_cast<int>(T->getInteger());
  if (const json::Value *F = O.get("faults"); F && F->isBoolean())
    Config.Faults = F->getBoolean();
  if (const json::Value *R = O.get("resume"); R && R->isBoolean())
    Config.Resume = R->getBoolean();
  if (Config.TemporalDegree < 1)
    return makeError(ErrorCode::InvalidInput,
                     "config 'temporal_degree' must be >= 1");
  Expected<compute::KernelEngine> Kernel =
      compute::parseKernelEngine(Config.Kernel);
  if (!Kernel)
    return Kernel.takeError();
  return Config;
}

//===----------------------------------------------------------------------===//
// FuzzFinding
//===----------------------------------------------------------------------===//

json::Value FuzzFinding::toJson() const {
  json::Object O;
  O.set("kind", json::Value(findingKindName(Kind)));
  // CRCs and the seed are 64-bit; JSON numbers are doubles, so render
  // them as hex strings to stay lossless.
  O.set("seed", json::Value(formatString("0x%" PRIx64, Seed)));
  O.set("config", Config.toJson());
  O.set("detail", json::Value(Detail));
  O.set("expected_crc", json::Value(formatString("0x%" PRIx64, ExpectedCrc)));
  O.set("actual_crc", json::Value(formatString("0x%" PRIx64, ActualCrc)));
  O.set("program", programToJson(Program));
  return json::Value(std::move(O));
}

static uint64_t parseHex64(const json::Value *V) {
  if (!V || !V->isString())
    return 0;
  return strtoull(V->getString().c_str(), nullptr, 0);
}

Expected<FuzzFinding> FuzzFinding::fromJson(const json::Value &V) {
  if (!V.isObject())
    return makeError(ErrorCode::InvalidInput, "finding must be an object");
  const json::Object &O = V.getObject();
  FuzzFinding Finding;
  if (const json::Value *K = O.get("kind"); K && K->isString()) {
    std::optional<FindingKind> Kind = findingKindFromName(K->getString());
    if (!Kind)
      return makeError(ErrorCode::InvalidInput,
                       "unknown finding kind '" + K->getString() + "'");
    Finding.Kind = *Kind;
  }
  Finding.Seed = parseHex64(O.get("seed"));
  if (const json::Value *C = O.get("config")) {
    Expected<DiffConfig> Config = DiffConfig::fromJson(*C);
    if (!Config)
      return Config.takeError();
    Finding.Config = std::move(*Config);
  }
  if (const json::Value *D = O.get("detail"); D && D->isString())
    Finding.Detail = D->getString();
  Finding.ExpectedCrc = parseHex64(O.get("expected_crc"));
  Finding.ActualCrc = parseHex64(O.get("actual_crc"));
  const json::Value *P = O.get("program");
  if (!P)
    return makeError(ErrorCode::InvalidInput,
                     "finding requires a 'program' object");
  Expected<StencilProgram> Program = programFromJson(*P);
  if (!Program)
    return Program.takeError();
  Finding.Program = std::move(*Program);
  return Finding;
}

//===----------------------------------------------------------------------===//
// CRCs and the oracle
//===----------------------------------------------------------------------===//

uint64_t
fuzz::outputsCrc(const std::vector<std::string> &Order,
                 const std::map<std::string, std::vector<double>> &Fields) {
  uint64_t Crc = sim::fnv1a(nullptr, 0);
  for (const std::string &Name : Order) {
    Crc = sim::fnv1a(Name.data(), Name.size(), Crc);
    auto It = Fields.find(Name);
    if (It == Fields.end())
      continue;
    Crc = sim::fnv1a(It->second.data(), It->second.size() * sizeof(double),
                     Crc);
  }
  return Crc;
}

Expected<uint64_t> fuzz::oracleCrc(const StencilProgram &Program,
                                   int TemporalDegree) {
  Expected<CompiledProgram> Compiled =
      CompiledProgram::compile(Program.clone());
  if (!Compiled)
    return Compiled.takeError();
  auto Inputs = materializeInputs(Compiled->program());
  Expected<ExecutionResult> Result =
      Program.TimeLoop.empty()
          ? runReference(*Compiled, Inputs)
          : iterateReference(*Compiled, std::move(Inputs), Program.TimeLoop,
                             TemporalDegree);
  if (!Result)
    return Result.takeError();
  return outputsCrc(Program.Outputs, Result->Fields);
}

//===----------------------------------------------------------------------===//
// Scratch-directory housekeeping (POSIX; no std::filesystem in the tree)
//===----------------------------------------------------------------------===//

/// Deletes every regular file directly inside \p Dir (checkpoint
/// directories are flat). Missing directory is fine.
static void clearDirectory(const std::string &Dir) {
  DIR *D = opendir(Dir.c_str());
  if (!D)
    return;
  while (dirent *Entry = readdir(D)) {
    std::string Name = Entry->d_name;
    if (Name == "." || Name == "..")
      continue;
    ::unlink((Dir + "/" + Name).c_str());
  }
  closedir(D);
}

/// True if \p Dir contains at least one regular entry.
static bool directoryHasFiles(const std::string &Dir) {
  DIR *D = opendir(Dir.c_str());
  if (!D)
    return false;
  bool Any = false;
  while (dirent *Entry = readdir(D)) {
    std::string Name = Entry->d_name;
    if (Name != "." && Name != "..") {
      Any = true;
      break;
    }
  }
  closedir(D);
  return Any;
}

//===----------------------------------------------------------------------===//
// Running one configuration
//===----------------------------------------------------------------------===//

/// A mild transient fault plan, deterministic in \p Seed: a memory
/// brownout and a link degrade over early windows, plus low-probability
/// payload corruption (the attached plan switches remote streams to the
/// reliable transport, so corruption is retransmitted — results must stay
/// bit-exact). Factors stay >= 0.5 and windows short so the run cannot
/// blow past the cycle limit and masquerade as a deadlock.
static sim::FaultPlan mildFaultPlan(uint64_t Seed) {
  Random Rng(Seed ^ 0x9e3779b97f4a7c15ull);
  sim::FaultPlan Plan;
  Plan.Seed = Rng.nextUInt64();

  sim::FaultEvent Brownout;
  Brownout.Kind = sim::FaultKind::MemoryBrownout;
  Brownout.Device = 0;
  Brownout.StartCycle = static_cast<int64_t>(Rng.nextBounded(64));
  Brownout.EndCycle = Brownout.StartCycle + 64 +
                      static_cast<int64_t>(Rng.nextBounded(128));
  Brownout.Factor = 0.5 + 0.25 * Rng.nextDouble();
  Plan.Events.push_back(Brownout);

  sim::FaultEvent Degrade;
  Degrade.Kind = sim::FaultKind::LinkDegrade;
  Degrade.Hop = -1;
  Degrade.StartCycle = static_cast<int64_t>(Rng.nextBounded(96));
  Degrade.EndCycle = Degrade.StartCycle + 32 +
                     static_cast<int64_t>(Rng.nextBounded(96));
  Degrade.Factor = 0.5 + 0.25 * Rng.nextDouble();
  Plan.Events.push_back(Degrade);

  sim::FaultEvent Corruption;
  Corruption.Kind = sim::FaultKind::PayloadCorruption;
  Corruption.Hop = -1;
  Corruption.Probability = 0.02;
  Plan.Events.push_back(Corruption);
  return Plan;
}

namespace {
/// What one pipeline execution produced, pre-classification.
struct RunOutcome {
  bool Ok = false;
  ErrorCode Code = ErrorCode::Unknown;
  std::string Message;
  bool ValidationPassed = true;
  uint64_t Crc = 0;
};
} // namespace

/// Builds a session for \p Config and runs it once. \p ResumePath, when
/// non-empty, resumes from that checkpoint directory; \p CheckpointDir,
/// when non-empty, enables snapshotting into it.
static RunOutcome executeOnce(const StencilProgram &Program,
                              const DiffConfig &Config, uint64_t Seed,
                              const std::string &CheckpointDir,
                              const std::string &ResumePath) {
  Session S = Session::fromProgram(Program.clone());
  S.unconstrainedMemory(true);
  if (Config.Parallel)
    S.engine(sim::SimEngine::Parallel, 2);
  Expected<compute::KernelEngine> Kernel =
      compute::parseKernelEngine(Config.Kernel);
  if (Kernel)
    S.kernelEngine(*Kernel);
  if (Config.TemporalDegree > 1)
    S.temporalDegree(Config.TemporalDegree);
  if (Config.Faults)
    S.faults(mildFaultPlan(Seed));
  if (!CheckpointDir.empty())
    S.checkpointEvery(16, CheckpointDir, /*Keep=*/4);
  if (!ResumePath.empty())
    S.resumeFrom(ResumePath);

  RunOutcome Outcome;
  Expected<PipelineResult> Result = S.run();
  if (!Result) {
    Outcome.Code = Result.code();
    Outcome.Message = Result.message();
    return Outcome;
  }
  Outcome.Ok = true;
  Outcome.ValidationPassed = Result->ValidationPassed;
  Outcome.Crc = outputsCrc(Program.Outputs, Result->Simulation.Outputs);
  return Outcome;
}

/// Classifies a failed run. Returns std::nullopt for failures that are
/// legitimate behavior rather than bugs (resource infeasibility depends
/// on the configuration, so it is not an asymmetry).
static std::optional<FindingKind> classifyFailure(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Infeasible:
    return std::nullopt;
  case ErrorCode::Deadlock:
  case ErrorCode::Starvation:
  case ErrorCode::CycleLimit:
    return FindingKind::Deadlock;
  case ErrorCode::Unknown:
  case ErrorCode::DataCorruption:
    return FindingKind::Crash;
  default:
    return FindingKind::ErrorAsymmetry;
  }
}

std::optional<FuzzFinding> fuzz::runConfig(const StencilProgram &Program,
                                           uint64_t Seed,
                                           const DiffConfig &Config,
                                           const DiffOptions &Options) {
  FuzzFinding Finding;
  Finding.Seed = Seed;
  Finding.Config = Config;
  Finding.Program = Program.clone();

  Expected<uint64_t> Oracle = oracleCrc(Program, Config.TemporalDegree);
  if (!Oracle) {
    // The oracle itself refusing a generated program is a generator bug;
    // surface it as a crash finding rather than silently skipping.
    Finding.Kind = FindingKind::Crash;
    Finding.Detail = "reference oracle failed: " + Oracle.message();
    return Finding;
  }
  Finding.ExpectedCrc = *Oracle;

  std::string Scratch;
  if (Config.Resume) {
    Scratch = Options.scratchDir();
    ::mkdir(Scratch.c_str(), 0755);
    clearDirectory(Scratch);
  }

  // Fills the finding's classification fields. Returns true on
  // divergence; false when the outcome is acceptable (bit-exact success,
  // or a legitimately infeasible configuration).
  auto Diverged = [&](const RunOutcome &Outcome, const char *Phase) {
    if (!Outcome.Ok) {
      std::optional<FindingKind> Kind = classifyFailure(Outcome.Code);
      if (!Kind)
        return false; // Infeasible: legitimate, not a finding.
      Finding.Kind = *Kind;
      Finding.Detail = formatString("%s failed (%s): ", Phase,
                                    errorCodeName(Outcome.Code)) +
                       Outcome.Message;
      return true;
    }
    if (!Outcome.ValidationPassed) {
      Finding.Kind = FindingKind::Mismatch;
      Finding.Detail =
          formatString("%s failed the pipeline's own validation", Phase);
      Finding.ActualCrc = Outcome.Crc;
      return true;
    }
    if (Outcome.Crc != Finding.ExpectedCrc) {
      Finding.Kind = FindingKind::Mismatch;
      Finding.Detail =
          formatString("%s output CRC diverges from the oracle", Phase);
      Finding.ActualCrc = Outcome.Crc;
      return true;
    }
    return false;
  };

  // Phase 1: the configured run (checkpointing when the resume axis is
  // on — snapshotting must not perturb the simulation).
  RunOutcome First = executeOnce(Program, Config, Seed, Scratch,
                                 /*ResumePath=*/"");
  if (Diverged(First, Config.Resume ? "checkpointed run" : "run"))
    return std::optional<FuzzFinding>(std::move(Finding));
  if (!First.Ok) // Infeasible under this configuration; nothing to check.
    return std::nullopt;

  // Phase 2 (resume axis): restart from the latest snapshot on a fresh
  // session; the resumed run must be bit-exact with the oracle too. A
  // run short enough to finish before the first snapshot has nothing to
  // resume from — that is not a divergence.
  if (Config.Resume && directoryHasFiles(Scratch)) {
    RunOutcome Second = executeOnce(Program, Config, Seed,
                                    /*CheckpointDir=*/"", Scratch);
    if (Diverged(Second, "resumed run"))
      return std::optional<FuzzFinding>(std::move(Finding));
  }
  if (Config.Resume)
    clearDirectory(Scratch);
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// The matrix
//===----------------------------------------------------------------------===//

/// Samples one matrix point from \p Rng under \p Matrix for a program
/// with (\p HasTimeLoop) time-loop bindings.
static DiffConfig sampleConfig(Random &Rng,
                               const MatrixOptions &Matrix, bool HasTimeLoop) {
  static const char *const BaseKernels[] = {"scalar", "batched",
                                            "specialized"};
  static const char *const JitKernels[] = {"scalar", "batched", "specialized",
                                           "jit", "auto"};
  DiffConfig Config;
  Config.Parallel = Matrix.ParallelEngine && Rng.nextBool(0.5);
  if (Matrix.JitTiers)
    Config.Kernel = JitKernels[Rng.nextBounded(5)];
  else
    Config.Kernel = BaseKernels[Rng.nextBounded(3)];
  if (HasTimeLoop && !Matrix.TemporalDegrees.empty())
    Config.TemporalDegree =
        Matrix.TemporalDegrees[Rng.nextBounded(
            static_cast<uint64_t>(Matrix.TemporalDegrees.size()))];
  Config.Faults = Matrix.FaultAxis && Rng.nextBool(0.35);
  Config.Resume = Matrix.ResumeAxis && Rng.nextBool(0.35);
  return Config;
}

DiffResult fuzz::runDifferential(const StencilProgram &Program, uint64_t Seed,
                                 const DiffOptions &Options) {
  DiffResult Result;

  // The base configuration always runs: it pins the pipeline's serial /
  // specialized / single-step behavior to the oracle, so any sampled
  // divergence is attributable to the varied axis.
  std::vector<DiffConfig> Configs;
  Configs.push_back(DiffConfig());

  Random Rng(Seed ^ 0xdf900294d8f554a5ull);
  std::set<std::string> SeenIds = {Configs.front().id()};
  bool HasTimeLoop = !Program.TimeLoop.empty();
  int Budget = std::max(0, Options.Matrix.ConfigsPerProgram);
  // Oversample: duplicates (dedup by id) do not count against the budget.
  for (int Attempt = 0; Attempt < Budget * 8 &&
                        static_cast<int>(Configs.size()) < 1 + Budget;
       ++Attempt) {
    DiffConfig Config = sampleConfig(Rng, Options.Matrix, HasTimeLoop);
    if (SeenIds.insert(Config.id()).second)
      Configs.push_back(std::move(Config));
  }

  int Index = 0;
  for (const DiffConfig &Config : Configs) {
    Result.Configs.push_back(Config);
    Result.Runs += Config.Resume ? 2 : 1;
    std::optional<FuzzFinding> Finding =
        runConfig(Program, Seed, Config, Options);
    if (!Finding)
      continue;
    if (!Options.FindingsDir.empty())
      (void)writeFinding(*Finding, Options.FindingsDir, Index++);
    Result.Findings.push_back(std::move(*Finding));
  }
  return Result;
}

Expected<std::string> fuzz::writeFinding(const FuzzFinding &Finding,
                                         const std::string &Dir, int Index) {
  ::mkdir(Dir.c_str(), 0755); // EEXIST is fine; the write below reports.
  std::string Path =
      Dir + formatString("/finding-%" PRIu64 "-%d-%s.json", Finding.Seed,
                         Index, findingKindName(Finding.Kind));
  if (Error Err = sim::writeTextFileAtomic(
          Path, Finding.toJson().toPrettyString() + "\n"))
    return Err;
  return Path;
}

int fuzz::exitCodeForFindings(const std::vector<FuzzFinding> &Findings) {
  if (Findings.empty())
    return 0;
  bool AnyMismatch = false, AnyDeadlock = false;
  for (const FuzzFinding &Finding : Findings) {
    AnyMismatch |= Finding.Kind == FindingKind::Mismatch;
    AnyDeadlock |= Finding.Kind == FindingKind::Deadlock;
  }
  if (AnyMismatch)
    return exitCodeFor(ErrorCode::ValidationMismatch);
  if (AnyDeadlock)
    return exitCodeFor(ErrorCode::Deadlock);
  return 1;
}
