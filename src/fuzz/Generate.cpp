//===- fuzz/Generate.cpp - Seeded random stencil programs ---------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Generate.h"

#include "frontend/Parser.h"
#include "frontend/SemanticAnalysis.h"
#include "support/Random.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <string>
#include <vector>

using namespace stencilflow;
using namespace stencilflow::fuzz;

GenConfig GenConfig::deepRings() {
  GenConfig C;
  C.MinRank = 2;
  C.MinExtent = 10; // Room for radius-4 offsets (extent/2 - 1 >= 4).
  C.MaxExtent = 24;
  C.MaxNodes = 4;
  C.MaxInputs = 2;
  C.MaxExtraOperands = 1;
  C.WideDagProbability = 0.1;
  C.DeepRingProbability = 0.85;
  C.MaxTapsPerField = 7;
  C.CopyChainProbability = 0.0;
  C.ConstantNodeProbability = 0.0;
  return C;
}

GenConfig GenConfig::wideDags() {
  GenConfig C;
  C.MinNodes = 4;
  C.MaxNodes = 8;
  C.MaxInputs = 4;
  C.MaxExtraOperands = 3;
  C.WideDagProbability = 0.9;
  C.MaxRadius = 2;
  C.DeepRingProbability = 0.0;
  C.CopyChainProbability = 0.0;
  C.ConstantNodeProbability = 0.0;
  return C;
}

GenConfig GenConfig::degenerate() {
  GenConfig C;
  C.MaxNodes = 6;
  C.MaxRadius = 2;
  C.ZeroCoefficientProbability = 0.4;
  C.CopyChainProbability = 0.3;
  C.ConstantNodeProbability = 0.3;
  C.IntrinsicProbability = 0.05;
  C.SelectProbability = 0.1;
  return C;
}

namespace {

/// A field visible to later nodes: an input or an earlier node's output.
struct FieldInfo {
  std::string Name;
  DataType Type = DataType::Float32;
  std::vector<bool> Mask; // Spanned dimensions.
};

/// Exactly representable coefficients (multiples of 1/16) render through
/// %g and re-parse bit-identically, so reproducer JSON round-trips.
std::string randomCoefficient(Random &Rng, bool AllowZero) {
  int64_t Ticks = Rng.nextInRange(-8, 8);
  if (!AllowZero && Ticks == 0)
    Ticks = 1;
  return formatString("%g", static_cast<double>(Ticks) * 0.0625);
}

std::string renderOffset(const std::string &Field,
                         const std::vector<int> &Off) {
  std::string Out = Field + "[";
  for (size_t I = 0; I != Off.size(); ++I)
    Out += formatString(I + 1 == Off.size() ? "%d" : "%d,", Off[I]);
  return Out + "]";
}

/// Builds the deduplicated tap list for one consumed field: offsets
/// sampled within the per-dimension envelope min(radius, extent/2 - 1).
std::vector<std::string> sampleTaps(Random &Rng, const GenConfig &Config,
                                    const FieldInfo &Field,
                                    const Shape &Space) {
  int Radius = Rng.nextBool(Config.DeepRingProbability)
                   ? Config.MaxRadius
                   : static_cast<int>(Rng.nextInRange(0, Config.MaxRadius));
  std::vector<size_t> Spanned;
  for (size_t Dim = 0; Dim != Field.Mask.size(); ++Dim)
    if (Field.Mask[Dim])
      Spanned.push_back(Dim);

  std::set<std::vector<int>> Seen;
  int Taps = static_cast<int>(Rng.nextInRange(1, Config.MaxTapsPerField));
  bool ForceCenter = Rng.nextBool(0.7);
  for (int Tap = 0; Tap != Taps; ++Tap) {
    std::vector<int> Off;
    for (size_t Dim : Spanned) {
      int MaxOff = static_cast<int>(
          std::min<int64_t>(Radius, Space.extent(Dim) / 2 - 1));
      if (MaxOff < 0)
        MaxOff = 0;
      Off.push_back(static_cast<int>(Rng.nextInRange(-MaxOff, MaxOff)));
    }
    Seen.insert(std::move(Off));
  }
  if (ForceCenter)
    Seen.insert(std::vector<int>(Spanned.size(), 0));

  std::vector<std::string> Out;
  for (const std::vector<int> &Off : Seen)
    Out.push_back(renderOffset(Field.Name, Off));
  return Out;
}

/// Recursive random expression over the node's tap and local pools. Only
/// shapes that keep values finite are emitted: division is by nonzero
/// literals, sqrt goes through abs, exp through -abs, and comparisons
/// appear only as ternary conditions.
struct ExprBuilder {
  Random &Rng;
  const GenConfig &Config;
  const std::vector<std::string> &Taps;
  const std::vector<std::string> &Locals;

  std::string leaf() {
    double P = Rng.nextDouble();
    if (P < 0.25 || Taps.empty())
      return randomCoefficient(Rng, /*AllowZero=*/true);
    if (P < 0.4 && !Locals.empty())
      return Locals[Rng.nextBounded(Locals.size())];
    return Taps[Rng.nextBounded(Taps.size())];
  }

  std::string build(int Depth) {
    if (Depth <= 0)
      return leaf();
    double P = Rng.nextDouble();
    if (P < 0.4) {
      const char *Ops[] = {"+", "-", "*"};
      return "(" + build(Depth - 1) + " " + Ops[Rng.nextBounded(3)] + " " +
             build(Depth - 1) + ")";
    }
    P -= 0.4;
    if (P < 0.1) {
      const char *Divisors[] = {"1.25", "1.5", "2.0", "4.0"};
      return "(" + build(Depth - 1) + " / " +
             Divisors[Rng.nextBounded(4)] + ")";
    }
    P -= 0.1;
    if (P < Config.IntrinsicProbability) {
      switch (Rng.nextBounded(8)) {
      case 0:
        return "sqrt(abs(" + build(Depth - 1) + "))";
      case 1:
        return "abs(" + build(Depth - 1) + ")";
      case 2:
        return "tanh(" + build(Depth - 1) + ")";
      case 3:
        return "sin(" + build(Depth - 1) + ")";
      case 4:
        return "cos(" + build(Depth - 1) + ")";
      case 5:
        return "floor(" + build(Depth - 1) + ")";
      case 6:
        return "min(" + build(Depth - 1) + ", " + build(Depth - 1) + ")";
      default:
        return "max(" + build(Depth - 1) + ", " + build(Depth - 1) + ")";
      }
    }
    P -= Config.IntrinsicProbability;
    if (P < Config.SelectProbability) {
      const char *Cmps[] = {">", "<", ">=", "<="};
      return "((" + build(Depth - 1) + " " + Cmps[Rng.nextBounded(4)] + " " +
             build(Depth - 1) + ") ? " + build(Depth - 1) + " : " +
             build(Depth - 1) + ")";
    }
    return leaf();
  }
};

/// Parses \p Source into node \p Name, analyzes it, and derives boundary
/// conditions from the recovered accesses (the workload recipe).
void addGeneratedStencil(Random &Rng, const GenConfig &Config,
                         StencilProgram &Program, const std::string &Name,
                         DataType Type, const std::string &Source) {
  StencilNode Node;
  Node.Name = Name;
  Node.Type = Type;
  Expected<StencilCode> Code = parseStencilCode(Source);
  assert(Code && "generated stencil failed to parse");
  Node.Code = Code.takeValue();
  Program.Nodes.push_back(std::move(Node));
  StencilNode &Added = Program.Nodes.back();
  Error Err = analyzeNode(Program, Added);
  assert(!Err && "generated stencil failed analysis");
  (void)Err;
  for (const FieldAccesses &FA : Added.Accesses) {
    bool HasCenter = false;
    for (const Offset &Off : FA.Offsets)
      HasCenter |= std::all_of(Off.begin(), Off.end(),
                               [](int O) { return O == 0; });
    if (HasCenter && Rng.nextBool(Config.CopyBoundaryProbability))
      Added.Boundaries[FA.Field] = BoundaryCondition::copy();
    else
      Added.Boundaries[FA.Field] = BoundaryCondition::constant(
          static_cast<double>(Rng.nextInRange(-4, 4)) * 0.25);
  }
}

} // namespace

StencilProgram fuzz::generateProgram(uint64_t Seed, const GenConfig &Config) {
  Random Rng(Seed);
  StencilProgram Program;
  Program.Name = formatString("fuzz_%llu",
                              static_cast<unsigned long long>(Seed));

  // Iteration space and vectorization. The innermost extent is rounded up
  // to a multiple of the width so validate()'s divisibility rule holds.
  size_t Rank = static_cast<size_t>(
      Rng.nextInRange(Config.MinRank, Config.MaxRank));
  std::vector<int64_t> Extents;
  for (size_t Dim = 0; Dim != Rank; ++Dim)
    Extents.push_back(Rng.nextInRange(Config.MinExtent, Config.MaxExtent));
  int Width = 1;
  if (Rng.nextBool(Config.VectorizeProbability))
    Width = Rng.nextBool() ? 2 : 4;
  Extents[Rank - 1] += (Width - Extents[Rank - 1] % Width) % Width;
  Program.IterationSpace = Shape(std::move(Extents));
  Program.VectorWidth = Width;

  // Inputs: in0 is always full-rank (the time-loop feedback target);
  // later inputs may span a single dimension.
  std::vector<FieldInfo> Fields;
  int NumInputs = static_cast<int>(Rng.nextInRange(1, Config.MaxInputs));
  for (int I = 0; I != NumInputs; ++I) {
    Field Input;
    Input.Name = formatString("in%d", I);
    Input.Type = Rng.nextBool(Config.Float64Probability)
                     ? DataType::Float64
                     : DataType::Float32;
    Input.DimensionMask = std::vector<bool>(Rank, true);
    if (I > 0 && Rank > 1 && Rng.nextBool(Config.LineInputProbability)) {
      Input.DimensionMask.assign(Rank, false);
      Input.DimensionMask[Rng.nextBounded(Rank)] = true;
    }
    // Mask the data seed to 53 bits: programToJson stores numbers as
    // doubles, and reproducers must round-trip the seed exactly.
    Input.Source = DataSource::random(Rng.nextUInt64() & ((1ull << 53) - 1));
    Fields.push_back({Input.Name, Input.Type, Input.DimensionMask});
    Program.Inputs.push_back(std::move(Input));
  }

  // Nodes, in dependency order: each consumes a backbone producer (the
  // previous node for chains, any earlier field for wide DAGs) plus a few
  // extra operands. All sampled taps appear in the final weighted sum, so
  // every consumed field is genuinely read.
  int NumNodes = static_cast<int>(
      Rng.nextInRange(Config.MinNodes, Config.MaxNodes));
  for (int N = 0; N != NumNodes; ++N) {
    std::string Name = formatString("n%d", N);
    DataType Type = Rng.nextBool(Config.Float64Probability)
                        ? DataType::Float64
                        : DataType::Float32;

    size_t Backbone =
        (N == 0 || Rng.nextBool(Config.WideDagProbability))
            ? Rng.nextBounded(Fields.size())
            : Fields.size() - 1;
    std::vector<size_t> Consumed{Backbone};
    int Extras = static_cast<int>(
        Rng.nextInRange(0, Config.MaxExtraOperands));
    for (int E = 0; E != Extras; ++E) {
      size_t Pick = Rng.nextBounded(Fields.size());
      if (std::find(Consumed.begin(), Consumed.end(), Pick) ==
          Consumed.end())
        Consumed.push_back(Pick);
    }

    std::string Source;
    double Degenerate = Rng.nextDouble();
    if (Degenerate < Config.CopyChainProbability) {
      // Pure copy of the backbone's center value.
      const FieldInfo &F = Fields[Backbone];
      size_t SpannedDims = static_cast<size_t>(
          std::count(F.Mask.begin(), F.Mask.end(), true));
      Source = Name + " = " +
               renderOffset(F.Name, std::vector<int>(SpannedDims, 0)) + ";";
    } else if (Degenerate <
               Config.CopyChainProbability + Config.ConstantNodeProbability) {
      // Effectively constant: a zero-weighted access keeps the node legal
      // (analysis rejects stencils that read no fields), and Simplify
      // folds the tape down to the literal.
      std::vector<std::string> Taps = sampleTaps(
          Rng, Config, Fields[Backbone], Program.IterationSpace);
      Source = Name + " = 0 * " + Taps.front() + " + " +
               randomCoefficient(Rng, /*AllowZero=*/true) + ";";
    } else {
      std::vector<std::string> AllTaps;
      for (size_t FieldIndex : Consumed)
        for (std::string &Tap : sampleTaps(Rng, Config, Fields[FieldIndex],
                                           Program.IterationSpace))
          AllTaps.push_back(std::move(Tap));

      std::vector<std::string> Locals;
      int NumLocals = static_cast<int>(
          Rng.nextInRange(0, Config.MaxLocals));
      ExprBuilder Builder{Rng, Config, AllTaps, Locals};
      for (int L = 0; L != NumLocals; ++L) {
        std::string Local = formatString("l%d", L);
        Source += Local + " = " +
                  Builder.build(static_cast<int>(
                      Rng.nextInRange(1, Config.MaxDepth))) +
                  ";\n";
        Locals.push_back(std::move(Local));
      }

      // Final statement: a weighted sum over every tap (so each consumed
      // field is used) plus the last local when one exists.
      Source += Name + " = ";
      for (size_t Tap = 0; Tap != AllTaps.size(); ++Tap) {
        bool Zero = Rng.nextBool(Config.ZeroCoefficientProbability);
        Source += (Zero ? std::string("0")
                        : randomCoefficient(Rng, /*AllowZero=*/false)) +
                  " * " + AllTaps[Tap];
        if (Tap + 1 != AllTaps.size() || !Locals.empty())
          Source += " + ";
      }
      if (!Locals.empty())
        Source += randomCoefficient(Rng, /*AllowZero=*/false) + " * " +
                  Locals.back();
      Source += ";";
    }

    addGeneratedStencil(Rng, Config, Program, Name, Type, Source);
    Fields.push_back({Name, Type, std::vector<bool>(Rank, true)});
  }

  // Outputs: every sink (validate() requires each non-output node to have
  // a consumer, and a DAG always has at least one sink).
  for (const StencilNode &Node : Program.Nodes)
    if (Program.consumersOf(Node.Name).empty())
      Program.Outputs.push_back(Node.Name);

  // Optional time loop: bind sinks back onto full-rank inputs. The bound
  // node's type is forced to the input's so the binding satisfies the
  // unroll legality rules (full-rank, same element type, bound once).
  if (Rng.nextBool(Config.TimeLoopProbability)) {
    std::vector<std::string> FreeInputs;
    for (const Field &Input : Program.Inputs)
      if (Input.isFullRank())
        FreeInputs.push_back(Input.Name);
    std::vector<std::string> FreeSinks = Program.Outputs;
    while (!FreeInputs.empty() && !FreeSinks.empty()) {
      std::string InputName = FreeInputs.front();
      std::string SinkName = FreeSinks.front();
      FreeInputs.erase(FreeInputs.begin());
      FreeSinks.erase(FreeSinks.begin());
      Program.findNode(SinkName)->Type =
          Program.findInput(InputName)->Type;
      Program.TimeLoop.push_back({SinkName, InputName});
      if (!Rng.nextBool(Config.MultiBindingProbability))
        break;
    }
  }

  Error Err = analyzeProgram(Program);
  assert(!Err && "generated program failed analysis");
  (void)Err;
  return Program;
}
