//===- fuzz/Differential.h - Differential pipeline fuzzing --------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential half of the fuzzer: run one generated program through
/// the full pipeline under a seeded matrix of configurations — Serial vs
/// Parallel engines, every kernel tier (including Jit and Auto), temporal
/// degrees {1, 2, 4}, transient fault plans on/off, and a
/// checkpoint-then-resume pass that restarts mid-run from a snapshot —
/// and assert that every single run is bit-exact (FNV-1a CRC over the
/// output fields) against the `ReferenceExecutor` / `iterateReference`
/// oracle, and free of deadlocks.
///
/// Any divergence is classified into a typed `FuzzFinding`:
///
///  - \b mismatch: the run completed but its output CRC differs from the
///    oracle's (or the pipeline's own validation failed);
///  - \b deadlock: the simulator aborted with Deadlock / Starvation /
///    CycleLimit — the buffer-sizing guarantee was violated;
///  - \b error-asymmetry: one configuration failed with a typed error
///    while the oracle (and hence the base configuration) succeeds;
///  - \b crash: an unclassified (ErrorCode::Unknown / DataCorruption)
///    failure escaped the typed taxonomy.
///
/// Each finding carries the full reproducer — program JSON, generator
/// seed, and the failing configuration — and is written atomically to a
/// findings directory, so one `sf_fuzz --replay <file>` reproduces it.
///
/// Determinism contract: `runDifferential(P, Seed)` samples the matrix
/// from `Seed` alone, so the same seed always exercises the same
/// configurations and yields the same findings.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_FUZZ_DIFFERENTIAL_H
#define STENCILFLOW_FUZZ_DIFFERENTIAL_H

#include "ir/StencilProgram.h"
#include "support/Error.h"
#include "support/Json.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace stencilflow {
namespace fuzz {

/// Divergence taxonomy. Ordered by severity (for exit-code selection).
enum class FindingKind {
  Mismatch,       ///< Completed, but not bit-exact against the oracle.
  Deadlock,       ///< Deadlock / starvation / cycle-limit abort.
  Crash,          ///< Unclassified failure (Unknown / DataCorruption).
  ErrorAsymmetry, ///< Typed failure where the oracle succeeds.
};

/// Stable kebab-case name, e.g. "error-asymmetry".
const char *findingKindName(FindingKind Kind);

/// Inverse of \c findingKindName.
std::optional<FindingKind> findingKindFromName(std::string_view Name);

/// One point of the configuration matrix.
struct DiffConfig {
  bool Parallel = false; ///< Parallel engine (2 worker threads) vs Serial.
  std::string Kernel = "specialized"; ///< compute::parseKernelEngine name.
  int TemporalDegree = 1; ///< > 1 only for programs with a time loop.
  bool Faults = false;    ///< Transient fault plan + reliable transport.
  bool Resume = false;    ///< Checkpoint, then re-run resuming mid-stream.

  /// Compact identity, e.g. "parallel/jit/t4/faults/resume".
  std::string id() const;

  json::Value toJson() const;
  static Expected<DiffConfig> fromJson(const json::Value &V);
};

/// Which matrix axes are enabled and how densely to sample them.
struct MatrixOptions {
  bool ParallelEngine = true;
  bool JitTiers = true; ///< Include the jit and auto kernel tiers.
  bool FaultAxis = true;
  bool ResumeAxis = true;
  std::vector<int> TemporalDegrees = {1, 2, 4};

  /// Configurations sampled per program on top of the always-run base
  /// configuration (serial / specialized / T=1 / no faults / no resume).
  int ConfigsPerProgram = 5;
};

/// One confirmed divergence, with everything needed to reproduce it.
struct FuzzFinding {
  FindingKind Kind = FindingKind::Mismatch;
  uint64_t Seed = 0;  ///< Generator seed (0 for replayed corpus programs).
  DiffConfig Config;  ///< The failing configuration.
  std::string Detail; ///< Human-readable divergence description.
  uint64_t ExpectedCrc = 0;
  uint64_t ActualCrc = 0;
  StencilProgram Program; ///< The reproducer.

  /// Full reproducer document: kind, seed, config, detail, program JSON.
  json::Value toJson() const;
  static Expected<FuzzFinding> fromJson(const json::Value &V);
};

/// Cross-cutting differential-run options.
struct DiffOptions {
  MatrixOptions Matrix;

  /// When non-empty, every finding is written here atomically as
  /// `finding-<seed>-<n>-<kind>.json` (the directory is created).
  std::string FindingsDir;

  /// Scratch directory for the resume axis' checkpoint snapshots
  /// (created; cleaned between configurations). Defaults to
  /// "<FindingsDir>/scratch", or "sf_fuzz_scratch" when FindingsDir is
  /// empty.
  std::string ScratchDir;

  std::string scratchDir() const {
    if (!ScratchDir.empty())
      return ScratchDir;
    return FindingsDir.empty() ? "sf_fuzz_scratch"
                               : FindingsDir + "/scratch";
  }
};

/// FNV-1a over the output fields' names and raw bit patterns, in
/// \p Order. The bit-exactness comparator of the whole fuzzer.
uint64_t outputsCrc(const std::vector<std::string> &Order,
                    const std::map<std::string, std::vector<double>> &Fields);

/// The oracle: reference-executes \p Program (iterating the time loop
/// \p TemporalDegree steps when > 1) and returns the output CRC.
Expected<uint64_t> oracleCrc(const StencilProgram &Program,
                             int TemporalDegree);

/// Runs \p Program under \p Config and compares against the oracle.
/// Returns the finding on divergence, std::nullopt on agreement.
/// \p Seed only labels the finding.
std::optional<FuzzFinding> runConfig(const StencilProgram &Program,
                                     uint64_t Seed, const DiffConfig &Config,
                                     const DiffOptions &Options);

/// The outcome of one full differential iteration.
struct DiffResult {
  std::vector<DiffConfig> Configs; ///< Matrix points exercised, in order.
  std::vector<FuzzFinding> Findings;
  int Runs = 0; ///< Pipeline executions (resume runs twice per config).
};

/// Samples the configuration matrix deterministically from \p Seed and
/// runs \p Program under every sampled point. Degrees > 1 apply only to
/// programs with time-loop bindings.
DiffResult runDifferential(const StencilProgram &Program, uint64_t Seed,
                           const DiffOptions &Options);

/// Writes \p Finding atomically into \p Dir (created on demand); returns
/// the file path. \p Index disambiguates multiple findings per seed.
Expected<std::string> writeFinding(const FuzzFinding &Finding,
                                   const std::string &Dir, int Index);

/// Exit code for the most severe finding of a run (0 when \p Findings is
/// empty): mismatch maps to the ValidationMismatch exit code, deadlock to
/// Deadlock, everything else to 1.
int exitCodeForFindings(const std::vector<FuzzFinding> &Findings);

} // namespace fuzz
} // namespace stencilflow

#endif // STENCILFLOW_FUZZ_DIFFERENTIAL_H
