//===- fuzz/Minimize.cpp - Greedy fuzz-finding reduction --------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Minimize.h"

#include "frontend/SemanticAnalysis.h"
#include "ir/Expr.h"

#include <algorithm>
#include <cmath>
#include <set>

using namespace stencilflow;
using namespace stencilflow::fuzz;

//===----------------------------------------------------------------------===//
// Candidate repair
//===----------------------------------------------------------------------===//

/// Re-derives everything a structural mutation can invalidate — accesses,
/// boundary entries, the output list, time-loop bindings — and
/// re-validates. Returns false when the mutated program cannot be made
/// well-formed (the mutation is then rejected).
static bool sanitize(StencilProgram &Program) {
  if (Program.Nodes.empty())
    return false;

  // Accesses are derived from the source text; recompute them first so
  // the boundary pruning below sees the post-mutation reads.
  for (StencilNode &Node : Program.Nodes)
    if (analyzeNode(Program, Node))
      return false;

  for (StencilNode &Node : Program.Nodes) {
    // Drop boundary entries for fields the node no longer reads, and
    // demote copy boundaries whose center access a mutation removed.
    for (auto It = Node.Boundaries.begin(); It != Node.Boundaries.end();) {
      const FieldAccesses *Accesses = Node.accessesFor(It->first);
      if (!Accesses) {
        It = Node.Boundaries.erase(It);
        continue;
      }
      if (It->second.Kind == BoundaryKind::Copy) {
        bool HasCenter = std::any_of(
            Accesses->Offsets.begin(), Accesses->Offsets.end(),
            [](const Offset &Off) {
              return std::all_of(Off.begin(), Off.end(),
                                 [](int C) { return C == 0; });
            });
        if (!HasCenter)
          It->second = BoundaryCondition::constant(0.0);
      }
      ++It;
    }
  }

  // Every consumer-less node must be a program output; keep the original
  // output order where possible.
  std::vector<std::string> Outputs;
  for (const std::string &Name : Program.Outputs)
    if (Program.findNode(Name) && Program.consumersOf(Name).empty())
      Outputs.push_back(Name);
  for (const StencilNode &Node : Program.Nodes)
    if (Program.consumersOf(Node.Name).empty() &&
        std::find(Outputs.begin(), Outputs.end(), Node.Name) == Outputs.end())
      Outputs.push_back(Node.Name);
  Program.Outputs = std::move(Outputs);

  // Prune feedback bindings whose endpoints a mutation removed.
  Program.TimeLoop.erase(
      std::remove_if(Program.TimeLoop.begin(), Program.TimeLoop.end(),
                     [&](const IterationBinding &Binding) {
                       return !Program.isProgramOutput(Binding.Output) ||
                              !Program.findInput(Binding.Input);
                     }),
      Program.TimeLoop.end());

  return !static_cast<bool>(Program.validate());
}

//===----------------------------------------------------------------------===//
// Mutations
//===----------------------------------------------------------------------===//

/// Drops the sink node at \p Index. Returns false when the drop is
/// structurally off-limits (last node, non-sink, or a feedback source the
/// failing configuration needs).
static bool dropSinkNode(StencilProgram &Program, size_t Index,
                         bool KeepTimeLoop) {
  if (Program.Nodes.size() <= 1 || Index >= Program.Nodes.size())
    return false;
  const std::string Name = Program.Nodes[Index].Name;
  if (!Program.consumersOf(Name).empty())
    return false;
  if (KeepTimeLoop)
    for (const IterationBinding &Binding : Program.TimeLoop)
      if (Binding.Output == Name)
        return false;
  Program.Nodes.erase(Program.Nodes.begin() + static_cast<long>(Index));
  return true;
}

/// Halves every extent (floored to the legal minimum implied by the
/// program's accesses and vector width). Returns false when already
/// minimal.
static bool shrinkExtents(StencilProgram &Program) {
  size_t Rank = Program.IterationSpace.rank();
  std::vector<int64_t> MaxOff(Rank, 0);
  for (const StencilNode &Node : Program.Nodes)
    for (const FieldAccesses &FA : Node.Accesses)
      for (const Offset &Off : FA.Offsets) {
        // Lower-rank fields span a suffix/subset of the dimensions; map
        // the offset onto the spanned dims via the field's mask.
        std::vector<bool> Mask = Program.fieldDimensionMask(FA.Field);
        size_t Pos = 0;
        for (size_t Dim = 0; Dim < Rank; ++Dim) {
          if (Dim < Mask.size() && !Mask[Dim])
            continue;
          if (Pos < Off.size())
            MaxOff[Dim] = std::max(MaxOff[Dim],
                                   static_cast<int64_t>(std::abs(Off[Pos])));
          ++Pos;
        }
      }

  bool Changed = false;
  std::vector<int64_t> Extents = Program.IterationSpace.extents();
  for (size_t Dim = 0; Dim < Rank; ++Dim) {
    // The generator keeps offsets within extent/2 - 1; preserve that
    // envelope so the buffer analysis stays in its supported regime.
    int64_t Floor = std::max<int64_t>(2, 2 * (MaxOff[Dim] + 1));
    int64_t Halved = std::max(Floor, Extents[Dim] / 2);
    if (Dim + 1 == Rank) {
      int64_t W = Program.VectorWidth;
      Halved = std::max(Halved, static_cast<int64_t>(W));
      if (Halved % W != 0)
        Halved += W - Halved % W;
    }
    if (Halved < Extents[Dim]) {
      Extents[Dim] = Halved;
      Changed = true;
    }
  }
  if (Changed)
    Program.IterationSpace = Shape(std::move(Extents));
  return Changed;
}

/// Halves every field-access offset toward the center. Returns false when
/// all accesses are already centered.
static bool shrinkOffsets(StencilProgram &Program) {
  bool Changed = false;
  for (StencilNode &Node : Program.Nodes)
    for (Assignment &Statement : Node.Code.Statements)
      walkExprMutable(Statement.Value, [&](ExprPtr &E) {
        if (E->kind() != ExprKind::FieldAccess)
          return;
        auto *Access = static_cast<FieldAccessExpr *>(E.get());
        Offset Off = Access->offset();
        bool Any = false;
        for (int &C : Off)
          if (C != 0) {
            C /= 2; // Truncation pulls toward 0 from both sides.
            Any = true;
          }
        if (Any) {
          Access->setOffset(std::move(Off));
          Changed = true;
        }
      });
  return Changed;
}

/// Replaces every literal outside {0, 1} with 1. Returns false when there
/// is nothing to simplify.
static bool collapseLiterals(StencilProgram &Program) {
  bool Changed = false;
  for (StencilNode &Node : Program.Nodes)
    for (Assignment &Statement : Node.Code.Statements)
      walkExprMutable(Statement.Value, [&](ExprPtr &E) {
        if (E->kind() != ExprKind::Literal)
          return;
        double Value = static_cast<LiteralExpr *>(E.get())->value();
        if (Value != 0.0 && Value != 1.0) {
          E = std::make_unique<LiteralExpr>(1.0);
          Changed = true;
        }
      });
  return Changed;
}

/// Drops the local-temporary statement at \p Statement of node \p Node.
/// The candidate is rejected later if a surviving statement still reads
/// the local.
static bool dropStatement(StencilProgram &Program, size_t NodeIndex,
                          size_t Statement) {
  if (NodeIndex >= Program.Nodes.size())
    return false;
  StencilCode &Code = Program.Nodes[NodeIndex].Code;
  if (Code.Statements.size() <= 1 || Statement + 1 >= Code.Statements.size())
    return false;
  Code.Statements.erase(Code.Statements.begin() +
                        static_cast<long>(Statement));
  return true;
}

//===----------------------------------------------------------------------===//
// The greedy loop
//===----------------------------------------------------------------------===//

static FuzzFinding cloneFinding(const FuzzFinding &Finding) {
  FuzzFinding Clone;
  Clone.Kind = Finding.Kind;
  Clone.Seed = Finding.Seed;
  Clone.Config = Finding.Config;
  Clone.Detail = Finding.Detail;
  Clone.ExpectedCrc = Finding.ExpectedCrc;
  Clone.ActualCrc = Finding.ActualCrc;
  Clone.Program = Finding.Program.clone();
  return Clone;
}

MinimizeResult fuzz::minimizeFinding(const FuzzFinding &Finding,
                                     const DiffOptions &Options,
                                     int MaxAttempts) {
  MinimizeResult Result;
  Result.Finding = cloneFinding(Finding);
  StencilProgram Current = Finding.Program.clone();
  bool KeepTimeLoop = Finding.Config.TemporalDegree > 1;

  // Tries one mutation: sanitize the candidate, replay the failing
  // configuration, and accept only while the same kind still reproduces.
  auto Try = [&](StencilProgram Candidate) {
    if (Result.Attempts >= MaxAttempts)
      return false;
    if (!sanitize(Candidate))
      return false;
    ++Result.Attempts;
    std::optional<FuzzFinding> Replay =
        runConfig(Candidate, Finding.Seed, Finding.Config, Options);
    if (!Replay || Replay->Kind != Finding.Kind)
      return false;
    // Keep the candidate as the new baseline *before* moving the replayed
    // finding into the result: the finding owns the only other copy of the
    // program, and stealing from it first would leave a moved-from
    // (rank-0) program in Result.Finding.
    Current = std::move(Candidate);
    Result.Finding = std::move(*Replay);
    ++Result.Steps;
    return true;
  };

  bool Progress = true;
  while (Progress && Result.Attempts < MaxAttempts) {
    Progress = false;

    // 1. Drop sink nodes, most recently defined first (later nodes are
    //    more likely to be incidental consumers of the interesting one).
    for (size_t Index = Current.Nodes.size(); Index-- > 0;) {
      StencilProgram Candidate = Current.clone();
      if (dropSinkNode(Candidate, Index, KeepTimeLoop) &&
          Try(std::move(Candidate)))
        Progress = true;
    }

    // 2. Shrink the iteration space.
    {
      StencilProgram Candidate = Current.clone();
      if (shrinkExtents(Candidate) && Try(std::move(Candidate)))
        Progress = true;
    }

    // 3. Pull accesses toward the center.
    {
      StencilProgram Candidate = Current.clone();
      if (shrinkOffsets(Candidate) && Try(std::move(Candidate)))
        Progress = true;
    }

    // 4. Collapse coefficients to 1.
    {
      StencilProgram Candidate = Current.clone();
      if (collapseLiterals(Candidate) && Try(std::move(Candidate)))
        Progress = true;
    }

    // 5. Drop local temporaries, last first.
    for (size_t Node = 0; Node < Current.Nodes.size(); ++Node)
      for (size_t Statement = Current.Nodes[Node].Code.Statements.size();
           Statement-- > 0;) {
        StencilProgram Candidate = Current.clone();
        if (dropStatement(Candidate, Node, Statement) &&
            Try(std::move(Candidate)))
          Progress = true;
      }
  }
  return Result;
}
