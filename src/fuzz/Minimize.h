//===- fuzz/Minimize.h - Greedy fuzz-finding reduction ------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A greedy test-case minimizer for fuzz findings. Starting from a
/// reproducer program, it repeatedly tries simplifying mutations — drop a
/// sink stencil, shrink the iteration space, pull accesses toward the
/// center, collapse coefficients to one, drop local temporaries — and
/// keeps a mutation only while the finding still reproduces with the
/// same kind under the same failing configuration. Every accepted
/// candidate is re-analyzed and re-validated, so the minimized program
/// is itself a well-formed reproducer that replays through `sf_fuzz
/// --replay`.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_FUZZ_MINIMIZE_H
#define STENCILFLOW_FUZZ_MINIMIZE_H

#include "fuzz/Differential.h"

namespace stencilflow {
namespace fuzz {

/// The outcome of a minimization run.
struct MinimizeResult {
  FuzzFinding Finding; ///< The minimized reproducer (kind preserved).
  int Steps = 0;       ///< Accepted mutations.
  int Attempts = 0;    ///< Mutations tried (including rejected ones).
};

/// Greedily shrinks \p Finding's program while `runConfig` keeps
/// reproducing a finding of the same kind under the finding's
/// configuration. \p MaxAttempts bounds the total number of candidate
/// executions. Returns the (possibly unchanged) minimized finding.
MinimizeResult minimizeFinding(const FuzzFinding &Finding,
                               const DiffOptions &Options,
                               int MaxAttempts = 200);

} // namespace fuzz
} // namespace stencilflow

#endif // STENCILFLOW_FUZZ_MINIMIZE_H
