//===- fuzz/Generate.h - Seeded random stencil programs -----------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded, deterministic random `StencilProgram` generator. Every
/// generated program is valid *by construction*: stencil code is built as
/// source text, parsed by the real frontend, analyzed per node, and the
/// boundary conditions are derived from the recovered accesses — exactly
/// the recipe the hand-written workloads use — so the result always
/// passes `SemanticAnalysis` and `StencilProgram::validate()`.
///
/// The generator samples the whole program shape: dimensionality (1D-3D),
/// per-dimension extents, vectorization, access radius (0-4, the deep
/// ring-buffer regime no hand-written workload covers), operand counts,
/// boundary-condition kinds (constant / copy), element types
/// (float32/float64), multi-stencil DAG topologies (chains, fan-out,
/// fan-in), optional lower-dimensional inputs, and optional `time_loop`
/// feedback bindings so the temporal-blocking axis gets coverage too.
///
/// `GenConfig` is the knob surface: CI can bias the distribution toward
/// deep rings (large radii on narrow chains) or wide DAGs (heavy fan-out),
/// or toward the degenerate tapes (zero coefficients, copy chains,
/// effectively-constant nodes) that stress compute/Simplify.
///
/// Determinism contract: the same (Seed, GenConfig) pair produces the
/// same program on every platform — the generator draws exclusively from
/// support/Random.h and never consults global state.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_FUZZ_GENERATE_H
#define STENCILFLOW_FUZZ_GENERATE_H

#include "ir/StencilProgram.h"

#include <cstdint>

namespace stencilflow {
namespace fuzz {

/// Distribution knobs of the random program generator. Defaults describe
/// a balanced mix; the named presets below bias specific regimes.
struct GenConfig {
  // --- Iteration space -----------------------------------------------------
  int MinRank = 1;
  int MaxRank = 3;
  int64_t MinExtent = 4;
  int64_t MaxExtent = 16;

  /// Probability of a vectorized program (width 2 or 4; the innermost
  /// extent is rounded up to a multiple of the width).
  double VectorizeProbability = 0.25;

  // --- DAG topology --------------------------------------------------------
  int MinNodes = 1;
  int MaxNodes = 5;
  int MaxInputs = 3;

  /// Extra consumed fields per node beyond the backbone producer.
  int MaxExtraOperands = 2;

  /// Probability that a node's backbone producer is drawn uniformly from
  /// *all* earlier fields instead of the immediately preceding node —
  /// higher values produce wide, bushy DAGs instead of deep chains.
  double WideDagProbability = 0.35;

  /// Probability of a lower-dimensional (line) input when rank > 1.
  double LineInputProbability = 0.2;

  // --- Stencil shape -------------------------------------------------------
  /// Access radius is sampled in [0, MaxRadius] (clamped per dimension so
  /// offsets stay within extent/2 - 1, the same envelope the buffer
  /// analysis sizes for).
  int MaxRadius = 4;

  /// Probability of forcing the sampled radius to MaxRadius — bias toward
  /// the deep-ring regime.
  double DeepRingProbability = 0.25;

  /// Offsets sampled per consumed field (deduplicated).
  int MaxTapsPerField = 5;

  /// Local temporaries per node (the final statement rides on top).
  int MaxLocals = 3;

  /// Expression depth of each local temporary.
  int MaxDepth = 3;

  // --- Feature probabilities ----------------------------------------------
  double SelectProbability = 0.2;
  double IntrinsicProbability = 0.2;
  double CopyBoundaryProbability = 0.3;
  double Float64Probability = 0.3;
  double TimeLoopProbability = 0.4;

  /// Probability of a second feedback binding when the program has
  /// a time loop plus enough sinks and full-rank inputs.
  double MultiBindingProbability = 0.3;

  // --- Degenerate tapes (compute/Simplify coverage) ------------------------
  /// Per-term probability of a zero coefficient in a node's final
  /// weighted sum.
  double ZeroCoefficientProbability = 0.05;

  /// Probability that a node is a pure copy of one producer
  /// (`n = f[0,...];`).
  double CopyChainProbability = 0.05;

  /// Probability that a node is effectively constant: `0 * f[...] + c`
  /// (a literal-only node is illegal — analysis requires every stencil to
  /// read at least one field — so this is the closest legal shape, and
  /// Simplify folds it to the constant).
  double ConstantNodeProbability = 0.05;

  /// Deep rings: maximal radii on long, narrow chains — the regime that
  /// stresses ring-buffer sizing and fusion legality.
  static GenConfig deepRings();

  /// Wide DAGs: heavy fan-out/fan-in with many inputs and small radii —
  /// the regime that stresses channel routing and partitioning.
  static GenConfig wideDags();

  /// Degenerate tapes: mostly copies, zero coefficients, and
  /// effectively-constant nodes — the regime that stresses
  /// compute/Simplify folding.
  static GenConfig degenerate();
};

/// Generates a valid, fully analyzed program from \p Seed. Same seed and
/// config, same program — on every platform.
StencilProgram generateProgram(uint64_t Seed, const GenConfig &Config = {});

} // namespace fuzz
} // namespace stencilflow

#endif // STENCILFLOW_FUZZ_GENERATE_H
