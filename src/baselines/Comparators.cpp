//===- baselines/Comparators.cpp - Comparator platforms & baselines -----------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/Comparators.h"

#include <algorithm>
#include <limits>
#include <cmath>

using namespace stencilflow;
using namespace stencilflow::baselines;

PlatformSpec PlatformSpec::xeon12c() {
  PlatformSpec Spec;
  Spec.Name = "Xeon 12C";
  Spec.PeakBandwidthBytesPerSec = 68e9;
  Spec.PeakOpsPerSec = 0.5e12;
  Spec.MeasuredRooflineFraction = 0.13;
  Spec.DieAreaMM2 = 0.0; // Not part of the silicon-efficiency comparison.
  return Spec;
}

PlatformSpec PlatformSpec::p100() {
  PlatformSpec Spec;
  Spec.Name = "P100";
  Spec.PeakBandwidthBytesPerSec = 732e9;
  Spec.PeakOpsPerSec = 9.3e12;
  Spec.MeasuredRooflineFraction = 0.08;
  Spec.DieAreaMM2 = 610.0;
  return Spec;
}

PlatformSpec PlatformSpec::v100() {
  PlatformSpec Spec;
  Spec.Name = "V100";
  Spec.PeakBandwidthBytesPerSec = 900e9;
  Spec.PeakOpsPerSec = 14e12;
  Spec.MeasuredRooflineFraction = 0.26;
  Spec.DieAreaMM2 = 815.0;
  return Spec;
}

PlatformResult baselines::modelPlatform(const PlatformSpec &Spec,
                                        double TotalOps,
                                        double OpsPerByte) {
  PlatformResult Result;
  Result.RooflineBound =
      std::min(Spec.PeakOpsPerSec,
               Spec.PeakBandwidthBytesPerSec * OpsPerByte);
  Result.OpsPerSecond =
      Result.RooflineBound * Spec.MeasuredRooflineFraction;
  Result.RuntimeSeconds = TotalOps / Result.OpsPerSecond;
  Result.FractionOfRoofline = Spec.MeasuredRooflineFraction;
  if (Spec.DieAreaMM2 > 0)
    Result.SiliconEfficiency =
        Result.OpsPerSecond / 1e9 / Spec.DieAreaMM2;
  return Result;
}

std::vector<PublishedResult> baselines::publishedStencilResults() {
  return {
      {"Diffusion 2D (Zohouri et al.)", "Stratix 10 GX 2800", 913.0},
      {"Diffusion 3D (Zohouri et al.)", "Stratix 10 GX 2800", 934.0},
      {"Waidyasooriya and Hariyama", "Arria 10 GX 1150", 630.0},
      {"SODA (Jacobi 3D)", "ADM-PCIE-KU3", 135.0},
      {"Niu et al.", "Virtex-6 SX475T", 119.0},
      {"Ben-Nun et al. (DaCe)", "Virtex UltraScale+ VCU1525", 139.0},
  };
}

TemporalBlockingEstimate
baselines::estimateTemporalBlocking(int64_t FlopsPerCell,
                                    int64_t DSPsPerCell,
                                    int64_t ALMsPerCell, size_t Dimensions,
                                    const TemporalBlockingConfig &Config) {
  TemporalBlockingEstimate Estimate;
  int W = Config.VectorWidth;

  // Deepest replication that fits: each time step instantiates the full
  // per-cell datapath W-wide plus fixed block-management overhead.
  int64_t DSPPerStep = DSPsPerCell * W;
  int64_t ALMPerStep =
      ALMsPerCell * W + Config.Resources.ALMsPerStencilBase;
  int64_t ByDSP = DSPPerStep > 0 ? Config.Device.DSPs / DSPPerStep
                                 : std::numeric_limits<int64_t>::max();
  int64_t ByALM = ALMPerStep > 0 ? Config.Device.ALMs * 85 / 100 /
                                       ALMPerStep
                                 : std::numeric_limits<int64_t>::max();
  Estimate.TemporalDegree = static_cast<int>(std::min(ByDSP, ByALM));
  if (Estimate.TemporalDegree < 1)
    Estimate.TemporalDegree = 1;

  // Spatial blocking wastes the halo ring: the design streams along the
  // innermost dimension and blocks the remaining d-1, each losing
  // 2 * halo * T cells of useful edge.
  double Edge = static_cast<double>(Config.BlockEdge);
  double MaxDepthByHalo =
      (Edge / 2.0 - 2.0) / static_cast<double>(Config.HaloPerStep);
  if (static_cast<double>(Estimate.TemporalDegree) > MaxDepthByHalo)
    Estimate.TemporalDegree = static_cast<int>(MaxDepthByHalo);
  double UsefulEdge =
      Edge - 2.0 * Config.HaloPerStep *
                 static_cast<double>(Estimate.TemporalDegree);
  Estimate.RedundancyFactor =
      std::pow(Edge / UsefulEdge, static_cast<double>(Dimensions - 1));

  double RawOpsPerSec = static_cast<double>(Estimate.TemporalDegree) *
                        static_cast<double>(FlopsPerCell) *
                        static_cast<double>(W) * Config.FrequencyMHz * 1e6;
  Estimate.EffectiveGOpPerSecond =
      RawOpsPerSec / Estimate.RedundancyFactor / 1e9;

  Estimate.Resources.DSPs = DSPPerStep * Estimate.TemporalDegree;
  Estimate.Resources.ALMs = ALMPerStep * Estimate.TemporalDegree;
  Estimate.Resources.FFs = static_cast<int64_t>(
      Config.Resources.FFsPerALM *
      static_cast<double>(Estimate.Resources.ALMs));
  // Each time step buffers its block working set (one slice of the
  // blocked region) on chip.
  int64_t SliceCells = 1;
  for (size_t Dim = 1; Dim < Dimensions; ++Dim)
    SliceCells *= Config.BlockEdge;
  Estimate.Resources.M20Ks =
      Estimate.TemporalDegree *
      (SliceCells * 4 / Config.Resources.M20KBytes + 8);
  return Estimate;
}
