//===- baselines/Comparators.h - Comparator platforms & baselines -*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Comparator models for the paper's evaluation tables:
///
///  - roofline models of the CPU/GPU platforms in Tab. II (Xeon E5-2690v3,
///    Tesla P100, Tesla V100), parameterized by datasheet bandwidth, peak
///    compute, empirical efficiency and die area (Sec. IX-B/C);
///  - a temporal-blocking FPGA baseline in the style of Zohouri et al.
///    (combined spatial and temporal blocking), the hand-tuned design
///    compared against in Tab. I;
///  - the published literature results carried as constants in Tab. I.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_BASELINES_COMPARATORS_H
#define STENCILFLOW_BASELINES_COMPARATORS_H

#include "core/ResourceModel.h"

#include <cstdint>
#include <string>
#include <vector>

namespace stencilflow {
namespace baselines {

/// A load/store comparator platform.
struct PlatformSpec {
  std::string Name;
  double PeakBandwidthBytesPerSec = 0.0;
  double PeakOpsPerSec = 0.0;
  /// Fraction of the bandwidth roofline the platform reaches on the
  /// horizontal-diffusion program (the %Roof column of Tab. II: memory-
  /// latency-bound kernels fall well short of streaming bandwidth).
  double MeasuredRooflineFraction = 1.0;
  double DieAreaMM2 = 0.0;

  /// 12-core Intel Xeon E5-2690v3: 68 GB/s, ~0.5 TFLOP/s fp32, 13% of
  /// roofline measured by the paper.
  static PlatformSpec xeon12c();
  /// NVIDIA Tesla P100: 732 GB/s, 9.3 TFLOP/s fp32, 8% of roofline,
  /// 610 mm^2 (TSMC 16 nm).
  static PlatformSpec p100();
  /// NVIDIA Tesla V100: 900 GB/s, 14 TFLOP/s fp32, 26% of roofline,
  /// 815 mm^2 (TSMC 12 nm).
  static PlatformSpec v100();
  /// The Stratix 10 die for silicon-efficiency accounting: ~700 mm^2
  /// (Intel 14 nm, half a Stratix 10M).
  static double stratix10DieAreaMM2() { return 700.0; }
};

/// Modeled execution of a program on a load/store platform.
struct PlatformResult {
  double RuntimeSeconds = 0.0;
  double OpsPerSecond = 0.0;
  double RooflineBound = 0.0;     ///< Ops/s at full streaming bandwidth.
  double FractionOfRoofline = 0.0;
  double SiliconEfficiency = 0.0; ///< GOp/s per mm^2.
};

/// Applies the roofline model (Eq. 3) with the platform's measured
/// efficiency: performance = min(peak, eff * bw * intensity).
PlatformResult modelPlatform(const PlatformSpec &Spec, double TotalOps,
                             double OpsPerByte);

/// One published result carried for comparison (Tab. I).
struct PublishedResult {
  std::string Name;
  std::string Device;
  double GOpPerSecond = 0.0;
};

/// The literature rows of Tab. I.
std::vector<PublishedResult> publishedStencilResults();

/// Configuration of the temporal-blocking baseline (Zohouri et al.: one
/// stencil pipeline replicated T times in depth, iterating over spatial
/// blocks with halos, vector width 16).
struct TemporalBlockingConfig {
  int VectorWidth = 16;
  /// Spatial block edge per blocked dimension (the stencil streams along
  /// the innermost dimension and blocks the remaining d-1).
  int64_t BlockEdge = 512;
  int HaloPerStep = 1; ///< Halo cells consumed per time step per side.
  double FrequencyMHz = 300.0;
  DeviceResources Device = DeviceResources::stratix10GX2800();
  ResourceModelConfig Resources;
};

/// Estimated performance of the temporal-blocking baseline.
struct TemporalBlockingEstimate {
  int TemporalDegree = 0;       ///< Replicated time steps T.
  double EffectiveGOpPerSecond = 0.0;
  double RedundancyFactor = 1.0; ///< Wasted work from block halos.
  ResourceUsage Resources;
};

/// Sizes the deepest temporal-blocking pipeline that fits the device for a
/// stencil with the given per-cell operation counts, then derates it by
/// the halo redundancy of spatial blocking.
TemporalBlockingEstimate
estimateTemporalBlocking(int64_t FlopsPerCell, int64_t DSPsPerCell,
                         int64_t ALMsPerCell, size_t Dimensions,
                         const TemporalBlockingConfig &Config = {});

} // namespace baselines
} // namespace stencilflow

#endif // STENCILFLOW_BASELINES_COMPARATORS_H
