//===- ir/Expr.cpp - Stencil computation AST --------------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Expr.h"

#include "support/StringUtils.h"

#include <cmath>

using namespace stencilflow;

// Out-of-line virtual anchor (see LLVM coding standards).
Expr::~Expr() = default;

void stencilflow::walkExpr(const Expr &Root,
                           const std::function<void(const Expr &)> &Fn) {
  Fn(Root);
  Root.visitChildren(
      [&](const Expr &Child) { walkExpr(Child, Fn); });
}

void stencilflow::walkExprMutable(ExprPtr &Root,
                                  const std::function<void(ExprPtr &)> &Fn) {
  Root->visitChildrenMutable(
      [&](ExprPtr &Child) { walkExprMutable(Child, Fn); });
  Fn(Root);
}

//===----------------------------------------------------------------------===//
// Cloning
//===----------------------------------------------------------------------===//

ExprPtr LiteralExpr::clone() const {
  return std::make_unique<LiteralExpr>(Value);
}

ExprPtr FieldAccessExpr::clone() const {
  return std::make_unique<FieldAccessExpr>(Field, Off);
}

ExprPtr LocalRefExpr::clone() const {
  return std::make_unique<LocalRefExpr>(Name);
}

ExprPtr UnaryExpr::clone() const {
  return std::make_unique<UnaryExpr>(Op, Operand->clone());
}

ExprPtr BinaryExpr::clone() const {
  return std::make_unique<BinaryExpr>(Op, LHS->clone(), RHS->clone());
}

ExprPtr CallExpr::clone() const {
  std::vector<ExprPtr> ClonedArgs;
  ClonedArgs.reserve(Args.size());
  for (const ExprPtr &Arg : Args)
    ClonedArgs.push_back(Arg->clone());
  return std::make_unique<CallExpr>(Fn, std::move(ClonedArgs));
}

ExprPtr SelectExpr::clone() const {
  return std::make_unique<SelectExpr>(Condition->clone(), TrueValue->clone(),
                                      FalseValue->clone());
}

StencilCode StencilCode::clone() const {
  StencilCode Result;
  Result.Statements.reserve(Statements.size());
  for (const Assignment &Stmt : Statements)
    Result.Statements.push_back(Stmt.clone());
  return Result;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

std::string_view stencilflow::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  }
  return "<invalid>";
}

bool stencilflow::isComparison(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
  case BinaryOp::Eq:
  case BinaryOp::Ne:
    return true;
  default:
    return false;
  }
}

std::string_view stencilflow::intrinsicName(Intrinsic Fn) {
  switch (Fn) {
  case Intrinsic::Sqrt:
    return "sqrt";
  case Intrinsic::Abs:
    return "fabs";
  case Intrinsic::Exp:
    return "exp";
  case Intrinsic::Log:
    return "log";
  case Intrinsic::Sin:
    return "sin";
  case Intrinsic::Cos:
    return "cos";
  case Intrinsic::Tanh:
    return "tanh";
  case Intrinsic::Floor:
    return "floor";
  case Intrinsic::Ceil:
    return "ceil";
  case Intrinsic::Min:
    return "min";
  case Intrinsic::Max:
    return "max";
  case Intrinsic::Pow:
    return "pow";
  }
  return "<invalid>";
}

unsigned stencilflow::intrinsicArity(Intrinsic Fn) {
  switch (Fn) {
  case Intrinsic::Min:
  case Intrinsic::Max:
  case Intrinsic::Pow:
    return 2;
  default:
    return 1;
  }
}

Expected<Intrinsic> stencilflow::parseIntrinsic(std::string_view Name) {
  if (Name == "sqrt")
    return Intrinsic::Sqrt;
  if (Name == "fabs" || Name == "abs")
    return Intrinsic::Abs;
  if (Name == "exp")
    return Intrinsic::Exp;
  if (Name == "log")
    return Intrinsic::Log;
  if (Name == "sin")
    return Intrinsic::Sin;
  if (Name == "cos")
    return Intrinsic::Cos;
  if (Name == "tanh")
    return Intrinsic::Tanh;
  if (Name == "floor")
    return Intrinsic::Floor;
  if (Name == "ceil")
    return Intrinsic::Ceil;
  if (Name == "min" || Name == "fmin")
    return Intrinsic::Min;
  if (Name == "max" || Name == "fmax")
    return Intrinsic::Max;
  if (Name == "pow")
    return Intrinsic::Pow;
  return makeError("unknown function '" + std::string(Name) +
                   "' (stencil code may only call standard math functions)");
}

std::string LiteralExpr::toString() const {
  if (Value == std::floor(Value) && std::fabs(Value) < 1e15)
    return formatString("%.1f", Value);
  return formatString("%g", Value);
}

std::string FieldAccessExpr::toString() const {
  if (Off.empty())
    return Field;
  return Field + offsetToString(Off);
}

std::string LocalRefExpr::toString() const { return Name; }

std::string UnaryExpr::toString() const {
  const char *Spelling = Op == UnaryOp::Neg ? "-" : "!";
  return formatString("(%s%s)", Spelling, Operand->toString().c_str());
}

std::string BinaryExpr::toString() const {
  return formatString("(%s %s %s)", LHS->toString().c_str(),
                      std::string(binaryOpSpelling(Op)).c_str(),
                      RHS->toString().c_str());
}

std::string CallExpr::toString() const {
  std::string Result(intrinsicName(Fn));
  Result += "(";
  for (size_t I = 0, E = Args.size(); I != E; ++I) {
    if (I != 0)
      Result += ", ";
    Result += Args[I]->toString();
  }
  return Result + ")";
}

std::string SelectExpr::toString() const {
  return formatString("(%s ? %s : %s)", Condition->toString().c_str(),
                      TrueValue->toString().c_str(),
                      FalseValue->toString().c_str());
}

std::string StencilCode::toString() const {
  std::string Result;
  for (const Assignment &Stmt : Statements) {
    Result += Stmt.Target;
    Result += " = ";
    Result += Stmt.Value->toString();
    Result += ";\n";
  }
  return Result;
}
