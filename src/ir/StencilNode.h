//===- ir/StencilNode.h - One stencil operation -------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stencil node of the program DAG (paper Sec. II): a code segment
/// evaluated at every point of the iteration space, reading one or more
/// input fields at constant offsets and producing exactly one output, with
/// boundary conditions describing out-of-bounds handling.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_IR_STENCILNODE_H
#define STENCILFLOW_IR_STENCILNODE_H

#include "ir/Boundary.h"
#include "ir/DataType.h"
#include "ir/Expr.h"
#include "ir/Shape.h"

#include <map>
#include <string>
#include <vector>

namespace stencilflow {

/// The set of accesses a stencil makes into one input field, as recovered by
/// semantic analysis. Offsets are unique and sorted by memory order.
struct FieldAccesses {
  std::string Field;
  std::vector<Offset> Offsets;
};

/// One stencil operation in the program DAG. Produces exactly one output
/// field named after the node.
struct StencilNode {
  /// Node name; also the name of the output field it produces.
  std::string Name;

  /// Output element type.
  DataType Type = DataType::Float32;

  /// The computation executed per cell. The final assignment's target must
  /// equal \c Name.
  StencilCode Code;

  /// Per-input boundary conditions (Constant or Copy). Inputs without an
  /// explicit entry default to constant 0.
  std::map<std::string, BoundaryCondition> Boundaries;

  /// True if out-of-bounds-reading outputs are dropped (shrink boundary
  /// condition, specified on the output).
  bool ShrinkOutput = false;

  /// Accesses per input field, filled in by semantic analysis
  /// (frontend::analyzeProgram). Order is deterministic: fields in first-use
  /// order, offsets sorted by linearized memory order.
  std::vector<FieldAccesses> Accesses;

  /// Returns the boundary condition for \p Field (constant 0 by default).
  BoundaryCondition boundaryFor(const std::string &Field) const {
    auto It = Boundaries.find(Field);
    return It == Boundaries.end() ? BoundaryCondition::constant(0.0)
                                  : It->second;
  }

  /// Returns the recovered accesses for \p Field, or nullptr if the node
  /// does not read it.
  const FieldAccesses *accessesFor(const std::string &Field) const {
    for (const FieldAccesses &FA : Accesses)
      if (FA.Field == Field)
        return &FA;
    return nullptr;
  }

  /// Names of all fields this node reads, in deterministic order.
  std::vector<std::string> inputFields() const {
    std::vector<std::string> Result;
    Result.reserve(Accesses.size());
    for (const FieldAccesses &FA : Accesses)
      Result.push_back(FA.Field);
    return Result;
  }

  StencilNode clone() const {
    StencilNode Result;
    Result.Name = Name;
    Result.Type = Type;
    Result.Code = Code.clone();
    Result.Boundaries = Boundaries;
    Result.ShrinkOutput = ShrinkOutput;
    Result.Accesses = Accesses;
    return Result;
  }
};

} // namespace stencilflow

#endif // STENCILFLOW_IR_STENCILNODE_H
