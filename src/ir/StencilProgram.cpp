//===- ir/StencilProgram.cpp - Stencil program DAG --------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/StencilProgram.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <set>

using namespace stencilflow;

StencilProgram StencilProgram::clone() const {
  StencilProgram Result;
  Result.Name = Name;
  Result.IterationSpace = IterationSpace;
  Result.VectorWidth = VectorWidth;
  Result.Inputs = Inputs;
  Result.Outputs = Outputs;
  Result.TimeLoop = TimeLoop;
  Result.Nodes.reserve(Nodes.size());
  for (const StencilNode &Node : Nodes)
    Result.Nodes.push_back(Node.clone());
  return Result;
}

const Field *StencilProgram::findInput(const std::string &Name) const {
  for (const Field &Input : Inputs)
    if (Input.Name == Name)
      return &Input;
  return nullptr;
}

const StencilNode *StencilProgram::findNode(const std::string &Name) const {
  for (const StencilNode &Node : Nodes)
    if (Node.Name == Name)
      return &Node;
  return nullptr;
}

StencilNode *StencilProgram::findNode(const std::string &Name) {
  for (StencilNode &Node : Nodes)
    if (Node.Name == Name)
      return &Node;
  return nullptr;
}

int StencilProgram::nodeIndex(const std::string &Name) const {
  for (size_t I = 0, E = Nodes.size(); I != E; ++I)
    if (Nodes[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

DataType StencilProgram::fieldType(const std::string &Name) const {
  if (const Field *Input = findInput(Name))
    return Input->Type;
  const StencilNode *Node = findNode(Name);
  assert(Node && "fieldType() of an undefined field");
  return Node->Type;
}

std::vector<bool>
StencilProgram::fieldDimensionMask(const std::string &Name) const {
  if (const Field *Input = findInput(Name))
    return Input->DimensionMask;
  assert(findNode(Name) && "fieldDimensionMask() of an undefined field");
  return std::vector<bool>(IterationSpace.rank(), true);
}

Shape StencilProgram::fieldShape(const std::string &Name) const {
  if (const Field *Input = findInput(Name))
    return Input->shapeWithin(IterationSpace);
  assert(findNode(Name) && "fieldShape() of an undefined field");
  return IterationSpace;
}

std::vector<size_t>
StencilProgram::consumersOf(const std::string &Name) const {
  std::vector<size_t> Consumers;
  for (size_t I = 0, E = Nodes.size(); I != E; ++I)
    if (Nodes[I].accessesFor(Name))
      Consumers.push_back(I);
  return Consumers;
}

bool StencilProgram::isProgramOutput(const std::string &Name) const {
  return std::find(Outputs.begin(), Outputs.end(), Name) != Outputs.end();
}

Expected<std::vector<size_t>> StencilProgram::topologicalOrder() const {
  // Kahn's algorithm over stencil nodes; edges follow produced fields.
  std::vector<size_t> InDegree(Nodes.size(), 0);
  std::vector<std::vector<size_t>> Successors(Nodes.size());
  for (size_t I = 0, E = Nodes.size(); I != E; ++I) {
    for (const FieldAccesses &FA : Nodes[I].Accesses) {
      int Producer = nodeIndex(FA.Field);
      if (Producer < 0)
        continue; // Off-chip input, not a DAG edge between stencils.
      Successors[static_cast<size_t>(Producer)].push_back(I);
      ++InDegree[I];
    }
  }

  std::vector<size_t> Ready;
  for (size_t I = 0, E = Nodes.size(); I != E; ++I)
    if (InDegree[I] == 0)
      Ready.push_back(I);

  std::vector<size_t> Order;
  Order.reserve(Nodes.size());
  while (!Ready.empty()) {
    // Pop the smallest index for a deterministic order.
    auto MinIt = std::min_element(Ready.begin(), Ready.end());
    size_t Node = *MinIt;
    Ready.erase(MinIt);
    Order.push_back(Node);
    for (size_t Succ : Successors[Node])
      if (--InDegree[Succ] == 0)
        Ready.push_back(Succ);
  }

  if (Order.size() != Nodes.size()) {
    for (size_t I = 0, E = Nodes.size(); I != E; ++I)
      if (InDegree[I] != 0)
        return makeError("stencil program contains a cycle through node '" +
                         Nodes[I].Name + "'");
  }
  return Order;
}

Error StencilProgram::validate() const {
  size_t Rank = IterationSpace.rank();
  if (Rank < 1 || Rank > 3)
    return makeError(formatString(
        "stencil programs must have 1, 2, or 3 dimensions, got %zu", Rank));
  if (VectorWidth < 1)
    return makeError("vector width must be positive");
  if (IterationSpace.extent(Rank - 1) % VectorWidth != 0)
    return makeError(formatString(
        "vector width %d does not divide the innermost extent %lld",
        VectorWidth,
        static_cast<long long>(IterationSpace.extent(Rank - 1))));

  // Unique field names across inputs and node outputs.
  std::set<std::string> Names;
  for (const Field &Input : Inputs) {
    if (!Names.insert(Input.Name).second)
      return makeError("duplicate field name '" + Input.Name + "'");
    if (Input.DimensionMask.size() != Rank)
      return makeError("input '" + Input.Name +
                       "' has a dimension mask of wrong rank");
  }
  for (const StencilNode &Node : Nodes)
    if (!Names.insert(Node.Name).second)
      return makeError("duplicate field name '" + Node.Name + "'");

  for (const StencilNode &Node : Nodes) {
    if (Node.Code.Statements.empty())
      return makeError("stencil '" + Node.Name + "' has no statements");
    if (Node.Code.Statements.back().Target != Node.Name)
      return makeError("the final statement of stencil '" + Node.Name +
                       "' must assign to '" + Node.Name + "'");
    if (Node.Accesses.empty())
      return makeError("stencil '" + Node.Name +
                       "' reads no fields (was semantic analysis run?)");
    for (const FieldAccesses &FA : Node.Accesses) {
      if (!isFieldDefined(FA.Field))
        return makeError("stencil '" + Node.Name +
                         "' reads undefined field '" + FA.Field + "'");
      size_t FieldRank = 0;
      for (bool Spanned : fieldDimensionMask(FA.Field))
        FieldRank += Spanned;
      for (const Offset &Off : FA.Offsets)
        if (Off.size() != FieldRank)
          return makeError(formatString(
              "stencil '%s' accesses field '%s' (rank %zu) with a rank-%zu "
              "offset %s",
              Node.Name.c_str(), FA.Field.c_str(), FieldRank, Off.size(),
              offsetToString(Off).c_str()));
    }
    for (const auto &[FieldName, Boundary] : Node.Boundaries) {
      if (Boundary.Kind == BoundaryKind::Shrink)
        return makeError("shrink is an output boundary condition, but is "
                         "attached to input '" +
                         FieldName + "' of stencil '" + Node.Name + "'");
      if (!Node.accessesFor(FieldName))
        return makeError("stencil '" + Node.Name +
                         "' declares a boundary condition for '" + FieldName +
                         "' but does not read it");
      if (Boundary.Kind == BoundaryKind::Copy) {
        // Copy substitutes the center value for out-of-bounds reads, so
        // the center must be part of the buffered window.
        const FieldAccesses *FA = Node.accessesFor(FieldName);
        bool HasCenter = false;
        for (const Offset &Off : FA->Offsets)
          HasCenter |= std::all_of(Off.begin(), Off.end(),
                                   [](int O) { return O == 0; });
        if (!HasCenter)
          return makeError("stencil '" + Node.Name +
                           "' uses a copy boundary for '" + FieldName +
                           "' but never accesses its center value");
      }
    }
  }

  for (const std::string &Output : Outputs)
    if (!findNode(Output))
      return makeError("program output '" + Output +
                       "' is not produced by any stencil");
  if (Outputs.empty())
    return makeError("stencil program has no outputs");

  // Every non-output node must have at least one consumer; otherwise its
  // results are silently discarded, which is almost certainly a bug in the
  // program description.
  for (const StencilNode &Node : Nodes)
    if (!isProgramOutput(Node.Name) && consumersOf(Node.Name).empty())
      return makeError("stencil '" + Node.Name +
                       "' is neither a program output nor read by any other "
                       "stencil");

  Expected<std::vector<size_t>> Order = topologicalOrder();
  if (!Order)
    return Order.takeError();
  return Error::success();
}

std::string StencilProgram::summary() const {
  std::string Result = formatString(
      "stencil program '%s': %s iteration space, W=%d, %zu inputs, %zu "
      "stencils, %zu outputs\n",
      Name.c_str(), IterationSpace.toString().c_str(), VectorWidth,
      Inputs.size(), Nodes.size(), Outputs.size());
  for (const Field &Input : Inputs)
    Result += formatString("  input  %-20s %s %s\n", Input.Name.c_str(),
                           std::string(dataTypeName(Input.Type)).c_str(),
                           Input.shapeWithin(IterationSpace).toString().c_str());
  Expected<std::vector<size_t>> Order = topologicalOrder();
  const std::vector<size_t> *Indices = nullptr;
  std::vector<size_t> Fallback;
  if (Order) {
    Indices = &*Order;
  } else {
    Fallback.resize(Nodes.size());
    for (size_t I = 0; I != Nodes.size(); ++I)
      Fallback[I] = I;
    Indices = &Fallback;
  }
  for (size_t I : *Indices) {
    const StencilNode &Node = Nodes[I];
    std::string InputsDesc;
    for (const FieldAccesses &FA : Node.Accesses) {
      if (!InputsDesc.empty())
        InputsDesc += ", ";
      InputsDesc += formatString("%s(x%zu)", FA.Field.c_str(),
                                 FA.Offsets.size());
    }
    Result += formatString("  stencil %-19s <- %s%s\n", Node.Name.c_str(),
                           InputsDesc.c_str(),
                           isProgramOutput(Node.Name) ? "  [output]" : "");
  }
  return Result;
}

std::vector<std::string> StencilProgram::dimensionNames(size_t Rank) {
  assert(Rank >= 1 && Rank <= 3 && "programs are 1, 2, or 3 dimensional");
  static const char *AllNames[3] = {"k", "j", "i"};
  std::vector<std::string> Names;
  for (size_t I = 3 - Rank; I != 3; ++I)
    Names.push_back(AllNames[I]);
  return Names;
}
