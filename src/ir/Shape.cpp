//===- ir/Shape.cpp - Iteration spaces and access offsets -----------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Shape.h"

#include "support/StringUtils.h"

using namespace stencilflow;

std::string stencilflow::offsetToString(const Offset &Off) {
  std::string Result = "[";
  for (size_t I = 0, E = Off.size(); I != E; ++I) {
    if (I != 0)
      Result += ", ";
    Result += formatString("%d", Off[I]);
  }
  return Result + "]";
}

std::string Shape::toString() const {
  if (Extents.empty())
    return "scalar";
  std::string Result;
  for (size_t I = 0, E = Extents.size(); I != E; ++I) {
    if (I != 0)
      Result += "x";
    Result += formatString("%lld", static_cast<long long>(Extents[I]));
  }
  return Result;
}
