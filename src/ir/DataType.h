//===- ir/DataType.h - Scalar data types -------------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scalar element types supported by stencil programs. The paper's
/// benchmarks focus on 32-bit floating point (Sec. VIII-B), but the stack
/// supports any type recognized by the underlying compiler; we mirror that
/// with float32/float64/int32/int64.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_IR_DATATYPE_H
#define STENCILFLOW_IR_DATATYPE_H

#include "support/Error.h"

#include <cstddef>
#include <string>
#include <string_view>

namespace stencilflow {

/// Scalar element type of a field.
enum class DataType { Float32, Float64, Int32, Int64 };

/// Returns the size of \p Type in bytes.
size_t dataTypeSize(DataType Type);

/// Returns the canonical spelling ("float32", ...).
std::string_view dataTypeName(DataType Type);

/// Returns the OpenCL spelling ("float", "double", "int", "long").
std::string_view dataTypeOpenCLName(DataType Type);

/// Parses a type name; accepts canonical and OpenCL spellings.
Expected<DataType> parseDataType(std::string_view Name);

/// Returns true for floating-point types.
bool isFloatingPoint(DataType Type);

} // namespace stencilflow

#endif // STENCILFLOW_IR_DATATYPE_H
