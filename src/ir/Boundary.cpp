//===- ir/Boundary.cpp - Boundary conditions -------------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Boundary.h"

using namespace stencilflow;

std::string_view stencilflow::boundaryKindName(BoundaryKind Kind) {
  switch (Kind) {
  case BoundaryKind::Constant:
    return "constant";
  case BoundaryKind::Copy:
    return "copy";
  case BoundaryKind::Shrink:
    return "shrink";
  }
  return "<invalid>";
}

Expected<BoundaryKind> stencilflow::parseBoundaryKind(std::string_view Name) {
  if (Name == "constant")
    return BoundaryKind::Constant;
  if (Name == "copy")
    return BoundaryKind::Copy;
  if (Name == "shrink")
    return BoundaryKind::Shrink;
  return makeError("unknown boundary condition '" + std::string(Name) + "'");
}
