//===- ir/Field.h - Logical fields --------------------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Logical input fields of a stencil program (paper Sec. II). A field has a
/// data type and spans a subset of the program's dimensions: 3D stencils may
/// read from 2D, 1D, or 0D (scalar) arrays using subsets of their indices.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_IR_FIELD_H
#define STENCILFLOW_IR_FIELD_H

#include "ir/DataType.h"
#include "ir/Shape.h"

#include <cstdint>
#include <string>
#include <vector>

namespace stencilflow {

/// How an off-chip input field is populated when a program is executed.
/// The paper's program definitions "must additionally provide data sources
/// for each input field" (Sec. II); we support synthetic sources so that
/// programs are runnable without external data files.
struct DataSource {
  enum class Kind {
    Zero,     ///< All cells zero.
    Constant, ///< All cells a given constant.
    Random,   ///< Deterministic pseudo-random values in [0, 1).
    Ramp      ///< Cell i holds i * Value (useful for debugging).
  };

  Kind SourceKind = Kind::Random;
  double Value = 1.0;
  uint64_t Seed = 42;

  static DataSource zero() { return DataSource{Kind::Zero, 0.0, 0}; }
  static DataSource constant(double Value) {
    return DataSource{Kind::Constant, Value, 0};
  }
  static DataSource random(uint64_t Seed) {
    return DataSource{Kind::Random, 0.0, Seed};
  }
  static DataSource ramp(double Step) {
    return DataSource{Kind::Ramp, Step, 0};
  }
};

/// An off-chip input field.
///
/// \c DimensionMask has one entry per program dimension; true marks the
/// dimensions this field spans. A full-rank field streams through the
/// dataflow graph; lower-dimensional fields (fewer true entries, including
/// none for scalars) are preloaded into on-chip ROMs before streaming
/// starts, which is how sub-dimensional inputs are realized in hardware.
struct Field {
  std::string Name;
  DataType Type = DataType::Float32;
  std::vector<bool> DimensionMask;
  DataSource Source;

  /// Number of dimensions this field spans.
  size_t rank() const {
    size_t Count = 0;
    for (bool Spanned : DimensionMask)
      Count += Spanned;
    return Count;
  }

  /// Returns true if the field spans every program dimension.
  bool isFullRank() const {
    for (bool Spanned : DimensionMask)
      if (!Spanned)
        return false;
    return true;
  }

  /// Computes the field's own shape from the program iteration space.
  /// Scalars yield an empty (rank-0) shape.
  Shape shapeWithin(const Shape &IterationSpace) const {
    std::vector<int64_t> Extents;
    for (size_t Dim = 0; Dim != DimensionMask.size(); ++Dim)
      if (DimensionMask[Dim])
        Extents.push_back(IterationSpace.extent(Dim));
    return Shape(std::move(Extents));
  }
};

} // namespace stencilflow

#endif // STENCILFLOW_IR_FIELD_H
