//===- ir/Shape.h - Iteration spaces and access offsets ----------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iteration-space shapes and relative access offsets (paper Sec. II).
///
/// Stencil programs have 1, 2, or 3 dimensions; all stencils iterate over
/// the same iteration space. Memory order is row-major with the *last*
/// dimension innermost, matching the paper's convention of a 3D space
/// {K, J, I} where I is the fastest-varying index. Offsets are linearized
/// in this memory order; the distance between linearized offsets determines
/// internal buffer sizes (Sec. IV-A).
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_IR_SHAPE_H
#define STENCILFLOW_IR_SHAPE_H

#include "support/Error.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace stencilflow {

/// A relative access offset, e.g. a[0, 1, 0]. Rank matches the field rank.
using Offset = std::vector<int>;

/// Renders an offset as "[k, j, i]".
std::string offsetToString(const Offset &Off);

/// An iteration space or field shape: extents in memory order, last
/// dimension innermost.
class Shape {
public:
  Shape() = default;
  explicit Shape(std::vector<int64_t> Extents) : Extents(std::move(Extents)) {
    for ([[maybe_unused]] int64_t E : this->Extents)
      assert(E > 0 && "shape extents must be positive");
  }

  /// Number of dimensions (0 for scalars).
  size_t rank() const { return Extents.size(); }

  /// Extent of dimension \p Dim.
  int64_t extent(size_t Dim) const {
    assert(Dim < Extents.size() && "dimension out of range");
    return Extents[Dim];
  }

  const std::vector<int64_t> &extents() const { return Extents; }

  /// Total number of cells (1 for scalars).
  int64_t numCells() const {
    int64_t Total = 1;
    for (int64_t E : Extents)
      Total *= E;
    return Total;
  }

  /// Linearizes a relative \p Off in memory order: for shape {K, J, I},
  /// lin([k, j, i]) = (k*J + j)*I + i. The result can be negative.
  /// The distance between the largest and smallest linearized access of a
  /// field determines its internal buffer size (Sec. IV-A).
  int64_t linearize(const Offset &Off) const {
    assert(Off.size() == Extents.size() && "offset rank mismatch");
    int64_t Linear = 0;
    for (size_t Dim = 0; Dim != Extents.size(); ++Dim)
      Linear = Linear * Extents[Dim] + Off[Dim];
    return Linear;
  }

  /// Linearizes an absolute index (all entries within bounds).
  int64_t linearizeIndex(const std::vector<int64_t> &Index) const {
    assert(Index.size() == Extents.size() && "index rank mismatch");
    int64_t Linear = 0;
    for (size_t Dim = 0; Dim != Extents.size(); ++Dim) {
      assert(Index[Dim] >= 0 && Index[Dim] < Extents[Dim] &&
             "index out of bounds");
      Linear = Linear * Extents[Dim] + Index[Dim];
    }
    return Linear;
  }

  /// Converts a linear cell number back to a multi-dimensional index.
  std::vector<int64_t> delinearize(int64_t Linear) const {
    std::vector<int64_t> Index(Extents.size());
    for (size_t Dim = Extents.size(); Dim-- > 0;) {
      Index[Dim] = Linear % Extents[Dim];
      Linear /= Extents[Dim];
    }
    return Index;
  }

  bool operator==(const Shape &Other) const = default;

  /// Renders as "128x128x80".
  std::string toString() const;

private:
  std::vector<int64_t> Extents;
};

} // namespace stencilflow

#endif // STENCILFLOW_IR_SHAPE_H
