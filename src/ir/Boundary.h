//===- ir/Boundary.h - Boundary conditions -----------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Boundary conditions for out-of-bounds accesses (paper Sec. II):
///
///  - \b constant: out-of-bounds accesses read a given constant value;
///    specified per input field.
///  - \b copy: out-of-bounds accesses read the value at offset 0 in all
///    dimensions (the "center" value); specified per input field.
///  - \b shrink: computed values that read out-of-bounds values are ignored
///    in the output; specified on the stencil's output.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_IR_BOUNDARY_H
#define STENCILFLOW_IR_BOUNDARY_H

#include "support/Error.h"

#include <string>

namespace stencilflow {

/// Kind of boundary handling.
enum class BoundaryKind {
  Constant, ///< Replace out-of-bounds reads with a constant.
  Copy,     ///< Replace out-of-bounds reads with the center value.
  Shrink    ///< Drop output cells whose computation read out of bounds.
};

/// A boundary-condition definition attached to an input field (Constant,
/// Copy) or to the stencil output (Shrink).
struct BoundaryCondition {
  BoundaryKind Kind = BoundaryKind::Constant;
  /// The replacement value for \c Constant boundaries.
  double Value = 0.0;

  static BoundaryCondition constant(double Value) {
    return BoundaryCondition{BoundaryKind::Constant, Value};
  }
  static BoundaryCondition copy() {
    return BoundaryCondition{BoundaryKind::Copy, 0.0};
  }
  static BoundaryCondition shrink() {
    return BoundaryCondition{BoundaryKind::Shrink, 0.0};
  }

  bool operator==(const BoundaryCondition &Other) const = default;
};

/// Returns "constant" / "copy" / "shrink".
std::string_view boundaryKindName(BoundaryKind Kind);

/// Parses a boundary kind name.
Expected<BoundaryKind> parseBoundaryKind(std::string_view Name);

} // namespace stencilflow

#endif // STENCILFLOW_IR_BOUNDARY_H
