//===- ir/StencilProgram.h - Stencil program DAG ------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stencil program: a directed acyclic graph of stencil operations on a
/// structured grid (paper Sec. II, Fig. 2). Nodes are stencil operations or
/// memory containers; edges are dependencies between stencils and memories.
/// Each stencil produces exactly one output; all stencils iterate over the
/// same iteration space.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_IR_STENCILPROGRAM_H
#define STENCILFLOW_IR_STENCILPROGRAM_H

#include "ir/Field.h"
#include "ir/StencilNode.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace stencilflow {

/// Feeds program output \p Output into input field \p Input at the start
/// of the next time step. Both must be full-rank fields of the same type.
/// Bindings describe the program's time loop; they are honored either by
/// the host loop (runtime/Iterate.h) or unrolled on-chip by
/// sdfg::unrollTimeSteps (temporal blocking).
struct IterationBinding {
  std::string Output;
  std::string Input;
};

/// A complete stencil program: iteration space, off-chip inputs, stencil
/// nodes, and the set of fields written back to off-chip memory.
class StencilProgram {
public:
  /// Program name (used in generated code and reports).
  std::string Name = "program";

  /// The global iteration space; 1, 2, or 3 dimensions. All stencils
  /// iterate over this space (Sec. II).
  Shape IterationSpace;

  /// Vectorization factor W (Sec. IV-C). Must divide the innermost extent.
  int VectorWidth = 1;

  /// Off-chip input fields.
  std::vector<Field> Inputs;

  /// Names of fields written back to off-chip memory. Fields produced by a
  /// stencil but not listed here stream directly to their consumers only.
  std::vector<std::string> Outputs;

  /// The stencil operations, in definition order (not necessarily
  /// topological).
  std::vector<StencilNode> Nodes;

  /// Output -> input feedback edges describing the program's time loop
  /// (empty for programs without one). Consumed by iterateReference (host
  /// loop through off-chip memory) and by sdfg::unrollTimeSteps (on-chip
  /// temporal blocking).
  std::vector<IterationBinding> TimeLoop;

  /// Deep copy (nodes own expression trees).
  StencilProgram clone() const;

  /// Returns the input field named \p Name, or nullptr.
  const Field *findInput(const std::string &Name) const;

  /// Returns the node named \p Name (producing field \p Name), or nullptr.
  const StencilNode *findNode(const std::string &Name) const;
  StencilNode *findNode(const std::string &Name);

  /// Returns the index of node \p Name, or -1.
  int nodeIndex(const std::string &Name) const;

  /// Returns true if \p Name is an input field or a node output.
  bool isFieldDefined(const std::string &Name) const {
    return findInput(Name) != nullptr || findNode(Name) != nullptr;
  }

  /// Element type of field \p Name (input or node output). The field must
  /// be defined.
  DataType fieldType(const std::string &Name) const;

  /// Dimension mask of field \p Name within the program iteration space.
  /// Node outputs are always full rank.
  std::vector<bool> fieldDimensionMask(const std::string &Name) const;

  /// Shape of field \p Name.
  Shape fieldShape(const std::string &Name) const;

  /// Indices of nodes that read field \p Name.
  std::vector<size_t> consumersOf(const std::string &Name) const;

  /// Returns true if \p Name is written back to off-chip memory.
  bool isProgramOutput(const std::string &Name) const;

  /// Node indices in a topological order of the stencil DAG, or an error
  /// naming a node on a cycle.
  Expected<std::vector<size_t>> topologicalOrder() const;

  /// Full semantic validation. Requires access information to have been
  /// filled in by frontend::analyzeProgram.
  Error validate() const;

  /// Human-readable DAG summary for diagnostics.
  std::string summary() const;

  /// Conventional dimension names for codegen/printing: 3D -> {k, j, i},
  /// 2D -> {j, i}, 1D -> {i}.
  static std::vector<std::string> dimensionNames(size_t Rank);
};

} // namespace stencilflow

#endif // STENCILFLOW_IR_STENCILPROGRAM_H
