//===- ir/Expr.h - Stencil computation AST -----------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract syntax tree of a stencil's per-cell computation
/// (paper Sec. II). The code segment of a stencil node is restricted to be
/// analyzable: arithmetic, comparisons, standard math intrinsics, local
/// temporaries, and ternary conditionals (including data-dependent
/// branches). No external data structures or functions, so the critical
/// path and operation census can be computed exactly (Sec. IV-B, IX-A).
///
/// The hierarchy uses hand-rolled LLVM-style RTTI via support/Casting.h.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_IR_EXPR_H
#define STENCILFLOW_IR_EXPR_H

#include "ir/Shape.h"
#include "support/Casting.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace stencilflow {

class Expr;
/// Owning pointer to an expression node.
using ExprPtr = std::unique_ptr<Expr>;

/// Discriminator for the expression hierarchy.
enum class ExprKind {
  Literal,
  FieldAccess,
  LocalRef,
  Unary,
  Binary,
  Call,
  Select
};

/// Base class of all expression nodes.
class Expr {
public:
  virtual ~Expr();

  ExprKind kind() const { return Kind; }

  /// Deep-copies this expression.
  virtual ExprPtr clone() const = 0;

  /// Renders the expression as source text (parseable by the frontend).
  virtual std::string toString() const = 0;

  /// Invokes \p Fn on each direct child.
  virtual void
  visitChildren(const std::function<void(const Expr &)> &Fn) const = 0;

  /// Invokes \p Fn on each direct child pointer, allowing replacement.
  virtual void visitChildrenMutable(const std::function<void(ExprPtr &)> &Fn) = 0;

protected:
  explicit Expr(ExprKind Kind) : Kind(Kind) {}

private:
  const ExprKind Kind;
};

/// Recursively visits \p Root and all transitive children, pre-order.
void walkExpr(const Expr &Root, const std::function<void(const Expr &)> &Fn);

/// Recursively visits all expression slots (including \p Root itself),
/// post-order, allowing in-place replacement.
void walkExprMutable(ExprPtr &Root, const std::function<void(ExprPtr &)> &Fn);

/// A floating-point literal constant.
class LiteralExpr : public Expr {
public:
  explicit LiteralExpr(double Value) : Expr(ExprKind::Literal), Value(Value) {}

  double value() const { return Value; }

  ExprPtr clone() const override;
  std::string toString() const override;
  void visitChildren(const std::function<void(const Expr &)> &) const override {}
  void visitChildrenMutable(const std::function<void(ExprPtr &)> &) override {}

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Literal; }

private:
  double Value;
};

/// A relative access into an input field, e.g. `a[0, -1, 0]`, or a bare
/// reference `a` to a lower-dimensional (including scalar) field.
class FieldAccessExpr : public Expr {
public:
  FieldAccessExpr(std::string Field, Offset Off)
      : Expr(ExprKind::FieldAccess), Field(std::move(Field)),
        Off(std::move(Off)) {}

  const std::string &field() const { return Field; }
  void setField(std::string Name) { Field = std::move(Name); }
  const Offset &offset() const { return Off; }
  void setOffset(Offset NewOff) { Off = std::move(NewOff); }

  ExprPtr clone() const override;
  std::string toString() const override;
  void visitChildren(const std::function<void(const Expr &)> &) const override {}
  void visitChildrenMutable(const std::function<void(ExprPtr &)> &) override {}

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::FieldAccess;
  }

private:
  std::string Field;
  Offset Off;
};

/// A reference to a local temporary defined by an earlier assignment in the
/// same stencil code block.
class LocalRefExpr : public Expr {
public:
  explicit LocalRefExpr(std::string Name)
      : Expr(ExprKind::LocalRef), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }

  ExprPtr clone() const override;
  std::string toString() const override;
  void visitChildren(const std::function<void(const Expr &)> &) const override {}
  void visitChildrenMutable(const std::function<void(ExprPtr &)> &) override {}

  static bool classof(const Expr *E) { return E->kind() == ExprKind::LocalRef; }

private:
  std::string Name;
};

/// Unary operators.
enum class UnaryOp { Neg, Not };

/// A unary operation.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Operand)
      : Expr(ExprKind::Unary), Op(Op), Operand(std::move(Operand)) {}

  UnaryOp op() const { return Op; }
  const Expr &operand() const { return *Operand; }

  ExprPtr clone() const override;
  std::string toString() const override;
  void visitChildren(const std::function<void(const Expr &)> &Fn) const override {
    Fn(*Operand);
  }
  void visitChildrenMutable(const std::function<void(ExprPtr &)> &Fn) override {
    Fn(Operand);
  }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Unary; }

private:
  UnaryOp Op;
  ExprPtr Operand;
};

/// Binary operators, including comparisons and logical connectives.
enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And,
  Or
};

/// Returns the source spelling of \p Op ("+", "<=", ...).
std::string_view binaryOpSpelling(BinaryOp Op);

/// Returns true for <, <=, >, >=, ==, !=.
bool isComparison(BinaryOp Op);

/// A binary operation.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr LHS, ExprPtr RHS)
      : Expr(ExprKind::Binary), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinaryOp op() const { return Op; }
  const Expr &lhs() const { return *LHS; }
  const Expr &rhs() const { return *RHS; }

  ExprPtr clone() const override;
  std::string toString() const override;
  void visitChildren(const std::function<void(const Expr &)> &Fn) const override {
    Fn(*LHS);
    Fn(*RHS);
  }
  void visitChildrenMutable(const std::function<void(ExprPtr &)> &Fn) override {
    Fn(LHS);
    Fn(RHS);
  }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }

private:
  BinaryOp Op;
  ExprPtr LHS, RHS;
};

/// Math intrinsics permitted in stencil code (paper Sec. II: "standard math
/// functions").
enum class Intrinsic {
  Sqrt,
  Abs,
  Exp,
  Log,
  Sin,
  Cos,
  Tanh,
  Floor,
  Ceil,
  Min,
  Max,
  Pow
};

/// Returns the source spelling of \p Fn ("sqrt", "min", ...).
std::string_view intrinsicName(Intrinsic Fn);

/// Returns the arity of \p Fn (1 or 2).
unsigned intrinsicArity(Intrinsic Fn);

/// Looks up an intrinsic by name; returns an error for unknown functions,
/// enforcing the "no external functions" restriction.
Expected<Intrinsic> parseIntrinsic(std::string_view Name);

/// A call to a math intrinsic.
class CallExpr : public Expr {
public:
  CallExpr(Intrinsic Fn, std::vector<ExprPtr> Args)
      : Expr(ExprKind::Call), Fn(Fn), Args(std::move(Args)) {}

  Intrinsic intrinsic() const { return Fn; }
  const std::vector<ExprPtr> &args() const { return Args; }

  ExprPtr clone() const override;
  std::string toString() const override;
  void visitChildren(const std::function<void(const Expr &)> &Visit) const override {
    for (const ExprPtr &Arg : Args)
      Visit(*Arg);
  }
  void visitChildrenMutable(const std::function<void(ExprPtr &)> &Visit) override {
    for (ExprPtr &Arg : Args)
      Visit(Arg);
  }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Call; }

private:
  Intrinsic Fn;
  std::vector<ExprPtr> Args;
};

/// A ternary conditional `cond ? a : b` — the data-dependent branches the
/// paper explicitly supports (Sec. II).
class SelectExpr : public Expr {
public:
  SelectExpr(ExprPtr Condition, ExprPtr TrueValue, ExprPtr FalseValue)
      : Expr(ExprKind::Select), Condition(std::move(Condition)),
        TrueValue(std::move(TrueValue)), FalseValue(std::move(FalseValue)) {}

  const Expr &condition() const { return *Condition; }
  const Expr &trueValue() const { return *TrueValue; }
  const Expr &falseValue() const { return *FalseValue; }

  ExprPtr clone() const override;
  std::string toString() const override;
  void visitChildren(const std::function<void(const Expr &)> &Fn) const override {
    Fn(*Condition);
    Fn(*TrueValue);
    Fn(*FalseValue);
  }
  void visitChildrenMutable(const std::function<void(ExprPtr &)> &Fn) override {
    Fn(Condition);
    Fn(TrueValue);
    Fn(FalseValue);
  }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Select; }

private:
  ExprPtr Condition, TrueValue, FalseValue;
};

/// One assignment statement in a stencil's code block. The final assignment
/// of a block defines the stencil's output value.
struct Assignment {
  std::string Target;
  ExprPtr Value;

  Assignment clone() const { return Assignment{Target, Value->clone()}; }
};

/// An entire stencil code block: an ordered list of assignments.
struct StencilCode {
  std::vector<Assignment> Statements;

  StencilCode clone() const;

  /// Renders the block as source text, one statement per line.
  std::string toString() const;
};

} // namespace stencilflow

#endif // STENCILFLOW_IR_EXPR_H
