//===- ir/DataType.cpp - Scalar data types ----------------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/DataType.h"

using namespace stencilflow;

size_t stencilflow::dataTypeSize(DataType Type) {
  switch (Type) {
  case DataType::Float32:
  case DataType::Int32:
    return 4;
  case DataType::Float64:
  case DataType::Int64:
    return 8;
  }
  return 0;
}

std::string_view stencilflow::dataTypeName(DataType Type) {
  switch (Type) {
  case DataType::Float32:
    return "float32";
  case DataType::Float64:
    return "float64";
  case DataType::Int32:
    return "int32";
  case DataType::Int64:
    return "int64";
  }
  return "<invalid>";
}

std::string_view stencilflow::dataTypeOpenCLName(DataType Type) {
  switch (Type) {
  case DataType::Float32:
    return "float";
  case DataType::Float64:
    return "double";
  case DataType::Int32:
    return "int";
  case DataType::Int64:
    return "long";
  }
  return "<invalid>";
}

Expected<DataType> stencilflow::parseDataType(std::string_view Name) {
  if (Name == "float32" || Name == "float")
    return DataType::Float32;
  if (Name == "float64" || Name == "double")
    return DataType::Float64;
  if (Name == "int32" || Name == "int")
    return DataType::Int32;
  if (Name == "int64" || Name == "long")
    return DataType::Int64;
  return makeError("unknown data type '" + std::string(Name) + "'");
}

bool stencilflow::isFloatingPoint(DataType Type) {
  return Type == DataType::Float32 || Type == DataType::Float64;
}
