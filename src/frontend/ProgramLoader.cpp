//===- frontend/ProgramLoader.cpp - JSON program descriptions ---------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/ProgramLoader.h"

#include "frontend/Parser.h"
#include "frontend/SemanticAnalysis.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace stencilflow;
using json::Value;

namespace {

/// Renders the offending JSON value for error context, truncated so
/// messages stay one line: ` (got {"kind": 1})`.
std::string got(const Value &V) {
  std::string Text = V.toString();
  constexpr size_t MaxLen = 80;
  if (Text.size() > MaxLen)
    Text = Text.substr(0, MaxLen - 3) + "...";
  return " (got " + Text + ")";
}

/// Same, for a field that may be absent entirely.
std::string got(const Value *V) {
  return V ? got(*V) : std::string(" (missing)");
}

/// Malformed-description error: "<json path>: <what> (got <value>)". The
/// path names the offending field in the document (e.g. "inputs.a.data"),
/// so the message pinpoints what to fix without re-reading the schema.
Error badField(const std::string &Path, const std::string &What,
               const Value *V) {
  return makeError(ErrorCode::InvalidInput, Path + ": " + What + got(V));
}

Expected<DataSource> dataSourceFromJson(const Value &V,
                                        const std::string &Path) {
  if (!V.isObject())
    return badField(Path, "data source must be an object", &V);
  const json::Object &Obj = V.getObject();
  const Value *KindValue = Obj.get("kind");
  if (!KindValue || !KindValue->isString())
    return badField(Path, "data source requires a string 'kind'", &V);
  const std::string &Kind = KindValue->getString();
  if (Kind == "zero")
    return DataSource::zero();
  if (Kind == "constant") {
    const Value *Val = Obj.get("value");
    if (!Val || !Val->isNumber())
      return badField(Path + ".value",
                      "constant data source requires a numeric 'value'",
                      Val);
    return DataSource::constant(Val->getNumber());
  }
  if (Kind == "random") {
    uint64_t Seed = 42;
    if (const Value *SeedValue = Obj.get("seed")) {
      if (!SeedValue->isNumber())
        return badField(Path + ".seed",
                        "random data source 'seed' must be a number",
                        SeedValue);
      Seed = static_cast<uint64_t>(SeedValue->getInteger());
    }
    return DataSource::random(Seed);
  }
  if (Kind == "ramp") {
    double Step = 1.0;
    if (const Value *StepValue = Obj.get("step")) {
      if (!StepValue->isNumber())
        return badField(Path + ".step",
                        "ramp data source 'step' must be a number",
                        StepValue);
      Step = StepValue->getNumber();
    }
    return DataSource::ramp(Step);
  }
  return badField(Path + ".kind",
                  "unknown data source kind (zero, constant, random, ramp)",
                  KindValue);
}

Value dataSourceToJson(const DataSource &Source) {
  json::Object Obj;
  switch (Source.SourceKind) {
  case DataSource::Kind::Zero:
    Obj.set("kind", "zero");
    break;
  case DataSource::Kind::Constant:
    Obj.set("kind", "constant");
    Obj.set("value", Source.Value);
    break;
  case DataSource::Kind::Random:
    Obj.set("kind", "random");
    Obj.set("seed", static_cast<int64_t>(Source.Seed));
    break;
  case DataSource::Kind::Ramp:
    Obj.set("kind", "ramp");
    Obj.set("step", Source.Value);
    break;
  }
  return Value(std::move(Obj));
}

Expected<BoundaryCondition> boundaryFromJson(const Value &V,
                                             const std::string &Path) {
  if (!V.isObject())
    return badField(Path, "boundary condition must be an object", &V);
  const json::Object &Obj = V.getObject();
  const Value *TypeValue = Obj.get("type");
  if (!TypeValue || !TypeValue->isString())
    return badField(Path, "boundary condition requires a string 'type'",
                    &V);
  Expected<BoundaryKind> Kind = parseBoundaryKind(TypeValue->getString());
  if (!Kind)
    return Kind.takeError().addContext(Path + ".type");
  switch (*Kind) {
  case BoundaryKind::Constant: {
    double BoundaryValue = 0.0;
    if (const Value *Val = Obj.get("value")) {
      if (!Val->isNumber())
        return badField(Path + ".value",
                        "constant boundary 'value' must be a number", Val);
      BoundaryValue = Val->getNumber();
    }
    return BoundaryCondition::constant(BoundaryValue);
  }
  case BoundaryKind::Copy:
    return BoundaryCondition::copy();
  case BoundaryKind::Shrink:
    return BoundaryCondition::shrink();
  }
  return badField(Path, "invalid boundary kind", TypeValue);
}

Value boundaryToJson(const BoundaryCondition &Boundary) {
  json::Object Obj;
  Obj.set("type", std::string(boundaryKindName(Boundary.Kind)));
  if (Boundary.Kind == BoundaryKind::Constant)
    Obj.set("value", Boundary.Value);
  return Value(std::move(Obj));
}

/// Maps a list of dimension names (e.g. ["k", "i"]) to a mask over the
/// program dimensions.
Expected<std::vector<bool>>
dimensionMaskFromNames(const std::vector<Value> &Names, size_t Rank,
                       const std::string &Path) {
  std::vector<std::string> DimNames = StencilProgram::dimensionNames(Rank);
  std::vector<bool> Mask(Rank, false);
  for (const Value &NameValue : Names) {
    if (!NameValue.isString())
      return badField(Path, "input dimension names must be strings",
                      &NameValue);
    const std::string &Name = NameValue.getString();
    auto It = std::find(DimNames.begin(), DimNames.end(), Name);
    if (It == DimNames.end()) {
      std::string Known;
      for (const std::string &Dim : DimNames)
        Known += (Known.empty() ? "" : ", ") + Dim;
      return makeError(ErrorCode::InvalidInput,
                       Path + ": unknown dimension name '" + Name +
                           "' (this program has: " + Known + ")");
    }
    Mask[static_cast<size_t>(It - DimNames.begin())] = true;
  }
  return Mask;
}

} // namespace

Expected<StencilProgram> stencilflow::programFromJson(const Value &Root) {
  if (!Root.isObject())
    return makeError("program description must be a JSON object");
  const json::Object &Obj = Root.getObject();

  StencilProgram Program;
  if (const Value *Name = Obj.get("name")) {
    if (!Name->isString())
      return badField("name", "must be a string", Name);
    Program.Name = Name->getString();
  }

  const Value *Dims = Obj.get("dimensions");
  if (!Dims || !Dims->isArray())
    return badField("dimensions", "program requires a 'dimensions' array",
                    Dims);
  std::vector<int64_t> Extents;
  for (const Value &Extent : Dims->getArray()) {
    if (!Extent.isNumber() || Extent.getNumber() <= 0 ||
        Extent.getNumber() != std::floor(Extent.getNumber()))
      return badField("dimensions", "must contain positive integers",
                      &Extent);
    Extents.push_back(Extent.getInteger());
  }
  if (Extents.empty() || Extents.size() > 3)
    return badField("dimensions", "programs must have 1, 2, or 3 dimensions",
                    Dims);
  Program.IterationSpace = Shape(std::move(Extents));
  size_t Rank = Program.IterationSpace.rank();

  if (const Value *W = Obj.get("vectorization")) {
    if (!W->isNumber() || W->getNumber() < 1 ||
        W->getNumber() != std::floor(W->getNumber()))
      return badField("vectorization", "must be a positive integer", W);
    Program.VectorWidth = static_cast<int>(W->getInteger());
  }

  // Inputs.
  if (const Value *Inputs = Obj.get("inputs")) {
    if (!Inputs->isObject())
      return badField("inputs", "must be an object", Inputs);
    for (const auto &[InputName, InputValue] : Inputs->getObject()) {
      std::string Path = "inputs." + InputName;
      if (!InputValue->isObject())
        return badField(Path, "input must be an object", InputValue.get());
      const json::Object &InputObj = InputValue->getObject();
      Field Input;
      Input.Name = InputName;
      Input.DimensionMask = std::vector<bool>(Rank, true);
      if (const Value *Type = InputObj.get("data_type")) {
        if (!Type->isString())
          return badField(Path + ".data_type", "must be a string", Type);
        Expected<DataType> Parsed = parseDataType(Type->getString());
        if (!Parsed)
          return Parsed.takeError().addContext(Path + ".data_type");
        Input.Type = *Parsed;
      }
      if (const Value *InputDims = InputObj.get("dimensions")) {
        if (!InputDims->isArray())
          return badField(Path + ".dimensions",
                          "must be an array of dimension names", InputDims);
        Expected<std::vector<bool>> Mask = dimensionMaskFromNames(
            InputDims->getArray(), Rank, Path + ".dimensions");
        if (!Mask)
          return Mask.takeError();
        Input.DimensionMask = *Mask;
      }
      if (const Value *Source = InputObj.get("data")) {
        Expected<DataSource> Parsed =
            dataSourceFromJson(*Source, Path + ".data");
        if (!Parsed)
          return Parsed.takeError();
        Input.Source = *Parsed;
      }
      Program.Inputs.push_back(std::move(Input));
    }
  }

  // Stencil nodes.
  const Value *ProgramNodes = Obj.get("program");
  if (!ProgramNodes || !ProgramNodes->isObject())
    return badField("program", "requires a 'program' object of stencils",
                    ProgramNodes);
  for (const auto &[NodeName, NodeValue] : ProgramNodes->getObject()) {
    std::string Path = "program." + NodeName;
    if (!NodeValue->isObject())
      return badField(Path, "stencil must be an object", NodeValue.get());
    const json::Object &NodeObj = NodeValue->getObject();
    StencilNode Node;
    Node.Name = NodeName;

    const Value *Computation = NodeObj.get("computation");
    if (!Computation || !Computation->isString())
      return badField(Path + ".computation",
                      "stencil requires a 'computation' string",
                      Computation);
    Expected<StencilCode> Code = parseStencilCode(Computation->getString());
    if (!Code)
      return Code.takeError().addContext(Path + ".computation");
    Node.Code = Code.takeValue();

    if (const Value *Type = NodeObj.get("data_type")) {
      if (!Type->isString())
        return badField(Path + ".data_type", "must be a string", Type);
      Expected<DataType> Parsed = parseDataType(Type->getString());
      if (!Parsed)
        return Parsed.takeError().addContext(Path + ".data_type");
      Node.Type = *Parsed;
    }

    if (const Value *Boundaries = NodeObj.get("boundary_conditions")) {
      if (!Boundaries->isObject())
        return badField(Path + ".boundary_conditions", "must be an object",
                        Boundaries);
      for (const auto &[FieldName, BoundaryValue] : Boundaries->getObject()) {
        Expected<BoundaryCondition> Boundary = boundaryFromJson(
            *BoundaryValue, Path + ".boundary_conditions." + FieldName);
        if (!Boundary)
          return Boundary.takeError();
        Node.Boundaries[FieldName] = *Boundary;
      }
    }

    if (const Value *Shrink = NodeObj.get("shrink")) {
      if (!Shrink->isBoolean())
        return badField(Path + ".shrink", "must be a boolean", Shrink);
      Node.ShrinkOutput = Shrink->getBoolean();
    }

    Program.Nodes.push_back(std::move(Node));
  }

  // Outputs. Default: nodes nobody consumes. (Consumption is only known
  // after semantic analysis, so explicit outputs are resolved first.)
  if (const Value *Outputs = Obj.get("outputs")) {
    if (!Outputs->isArray())
      return badField("outputs", "must be an array of field names",
                      Outputs);
    for (const Value &Output : Outputs->getArray()) {
      if (!Output.isString())
        return badField("outputs", "must be an array of field names",
                        &Output);
      Program.Outputs.push_back(Output.getString());
    }
  }

  // Time loop: output -> input feedback bindings for iterative programs.
  if (const Value *TimeLoop = Obj.get("time_loop")) {
    if (!TimeLoop->isArray())
      return badField("time_loop", "must be an array of bindings",
                      TimeLoop);
    size_t Index = 0;
    for (const Value &Entry : TimeLoop->getArray()) {
      std::string Path = formatString("time_loop[%zu]", Index++);
      if (!Entry.isObject())
        return badField(Path, "'time_loop' entries must be objects",
                        &Entry);
      const json::Object &EntryObj = Entry.getObject();
      const Value *Output = EntryObj.get("output");
      const Value *Input = EntryObj.get("input");
      if (!Output || !Output->isString() || !Input || !Input->isString())
        return badField(
            Path, "'time_loop' entries require 'output' and 'input' "
                  "field names",
            &Entry);
      Program.TimeLoop.push_back({Output->getString(), Input->getString()});
    }
  }

  if (Error Err = analyzeProgram(Program)) {
    // If outputs were defaulted, retry after inferring sinks.
    if (!Program.Outputs.empty())
      return Err;
    for (StencilNode &Node : Program.Nodes)
      if (Error NodeErr = analyzeNode(Program, Node))
        return NodeErr;
    for (const StencilNode &Node : Program.Nodes)
      if (Program.consumersOf(Node.Name).empty())
        Program.Outputs.push_back(Node.Name);
    if (Error RetryErr = Program.validate())
      return RetryErr;
  }
  return Program;
}

Expected<StencilProgram>
stencilflow::programFromJsonText(std::string_view Text) {
  Expected<Value> Parsed = json::parse(Text);
  if (!Parsed)
    return Parsed.takeError().addContext("parsing program description");
  return programFromJson(*Parsed);
}

Expected<StencilProgram>
stencilflow::loadProgramFile(const std::string &Path) {
  Expected<Value> Parsed = json::parseFile(Path);
  if (!Parsed)
    return Parsed.takeError();
  Expected<StencilProgram> Program = programFromJson(*Parsed);
  if (!Program)
    return Program.takeError().addContext(Path);
  return Program;
}

Value stencilflow::programToJson(const StencilProgram &Program) {
  json::Object Root;
  Root.set("name", Program.Name);

  std::vector<Value> Dims;
  for (int64_t Extent : Program.IterationSpace.extents())
    Dims.emplace_back(Extent);
  Root.set("dimensions", Value(std::move(Dims)));
  Root.set("vectorization", Program.VectorWidth);

  json::Object Inputs;
  std::vector<std::string> DimNames =
      StencilProgram::dimensionNames(Program.IterationSpace.rank());
  for (const Field &Input : Program.Inputs) {
    json::Object InputObj;
    InputObj.set("data_type", std::string(dataTypeName(Input.Type)));
    if (!Input.isFullRank()) {
      std::vector<Value> Names;
      for (size_t Dim = 0; Dim != Input.DimensionMask.size(); ++Dim)
        if (Input.DimensionMask[Dim])
          Names.emplace_back(DimNames[Dim]);
      InputObj.set("dimensions", Value(std::move(Names)));
    }
    InputObj.set("data", dataSourceToJson(Input.Source));
    Inputs.set(Input.Name, Value(std::move(InputObj)));
  }
  Root.set("inputs", Value(std::move(Inputs)));

  std::vector<Value> Outputs;
  for (const std::string &Output : Program.Outputs)
    Outputs.emplace_back(Output);
  Root.set("outputs", Value(std::move(Outputs)));

  // Omitted when empty so fingerprints of loop-free programs are stable.
  if (!Program.TimeLoop.empty()) {
    std::vector<Value> TimeLoop;
    for (const IterationBinding &Binding : Program.TimeLoop) {
      json::Object BindingObj;
      BindingObj.set("output", Binding.Output);
      BindingObj.set("input", Binding.Input);
      TimeLoop.emplace_back(std::move(BindingObj));
    }
    Root.set("time_loop", Value(std::move(TimeLoop)));
  }

  json::Object NodesObj;
  for (const StencilNode &Node : Program.Nodes) {
    json::Object NodeObj;
    NodeObj.set("computation", Node.Code.toString());
    NodeObj.set("data_type", std::string(dataTypeName(Node.Type)));
    if (!Node.Boundaries.empty()) {
      json::Object Boundaries;
      for (const auto &[FieldName, Boundary] : Node.Boundaries)
        Boundaries.set(FieldName, boundaryToJson(Boundary));
      NodeObj.set("boundary_conditions", Value(std::move(Boundaries)));
    }
    if (Node.ShrinkOutput)
      NodeObj.set("shrink", true);
    NodesObj.set(Node.Name, Value(std::move(NodeObj)));
  }
  Root.set("program", Value(std::move(NodesObj)));
  return Value(std::move(Root));
}
