//===- frontend/ProgramLoader.cpp - JSON program descriptions ---------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/ProgramLoader.h"

#include "frontend/Parser.h"
#include "frontend/SemanticAnalysis.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace stencilflow;
using json::Value;

namespace {

Expected<DataSource> dataSourceFromJson(const Value &V) {
  if (!V.isObject())
    return makeError("data source must be an object");
  const json::Object &Obj = V.getObject();
  const Value *KindValue = Obj.get("kind");
  if (!KindValue || !KindValue->isString())
    return makeError("data source requires a string 'kind'");
  const std::string &Kind = KindValue->getString();
  if (Kind == "zero")
    return DataSource::zero();
  if (Kind == "constant") {
    const Value *Val = Obj.get("value");
    if (!Val || !Val->isNumber())
      return makeError("constant data source requires a numeric 'value'");
    return DataSource::constant(Val->getNumber());
  }
  if (Kind == "random") {
    uint64_t Seed = 42;
    if (const Value *SeedValue = Obj.get("seed")) {
      if (!SeedValue->isNumber())
        return makeError("random data source 'seed' must be a number");
      Seed = static_cast<uint64_t>(SeedValue->getInteger());
    }
    return DataSource::random(Seed);
  }
  if (Kind == "ramp") {
    double Step = 1.0;
    if (const Value *StepValue = Obj.get("step")) {
      if (!StepValue->isNumber())
        return makeError("ramp data source 'step' must be a number");
      Step = StepValue->getNumber();
    }
    return DataSource::ramp(Step);
  }
  return makeError("unknown data source kind '" + Kind + "'");
}

Value dataSourceToJson(const DataSource &Source) {
  json::Object Obj;
  switch (Source.SourceKind) {
  case DataSource::Kind::Zero:
    Obj.set("kind", "zero");
    break;
  case DataSource::Kind::Constant:
    Obj.set("kind", "constant");
    Obj.set("value", Source.Value);
    break;
  case DataSource::Kind::Random:
    Obj.set("kind", "random");
    Obj.set("seed", static_cast<int64_t>(Source.Seed));
    break;
  case DataSource::Kind::Ramp:
    Obj.set("kind", "ramp");
    Obj.set("step", Source.Value);
    break;
  }
  return Value(std::move(Obj));
}

Expected<BoundaryCondition> boundaryFromJson(const Value &V) {
  if (!V.isObject())
    return makeError("boundary condition must be an object");
  const json::Object &Obj = V.getObject();
  const Value *TypeValue = Obj.get("type");
  if (!TypeValue || !TypeValue->isString())
    return makeError("boundary condition requires a string 'type'");
  Expected<BoundaryKind> Kind = parseBoundaryKind(TypeValue->getString());
  if (!Kind)
    return Kind.takeError();
  switch (*Kind) {
  case BoundaryKind::Constant: {
    double BoundaryValue = 0.0;
    if (const Value *Val = Obj.get("value")) {
      if (!Val->isNumber())
        return makeError("constant boundary 'value' must be a number");
      BoundaryValue = Val->getNumber();
    }
    return BoundaryCondition::constant(BoundaryValue);
  }
  case BoundaryKind::Copy:
    return BoundaryCondition::copy();
  case BoundaryKind::Shrink:
    return BoundaryCondition::shrink();
  }
  return makeError("invalid boundary kind");
}

Value boundaryToJson(const BoundaryCondition &Boundary) {
  json::Object Obj;
  Obj.set("type", std::string(boundaryKindName(Boundary.Kind)));
  if (Boundary.Kind == BoundaryKind::Constant)
    Obj.set("value", Boundary.Value);
  return Value(std::move(Obj));
}

/// Maps a list of dimension names (e.g. ["k", "i"]) to a mask over the
/// program dimensions.
Expected<std::vector<bool>>
dimensionMaskFromNames(const std::vector<Value> &Names, size_t Rank) {
  std::vector<std::string> DimNames = StencilProgram::dimensionNames(Rank);
  std::vector<bool> Mask(Rank, false);
  for (const Value &NameValue : Names) {
    if (!NameValue.isString())
      return makeError("input dimension names must be strings");
    const std::string &Name = NameValue.getString();
    auto It = std::find(DimNames.begin(), DimNames.end(), Name);
    if (It == DimNames.end())
      return makeError("unknown dimension name '" + Name + "'");
    Mask[static_cast<size_t>(It - DimNames.begin())] = true;
  }
  return Mask;
}

} // namespace

Expected<StencilProgram> stencilflow::programFromJson(const Value &Root) {
  if (!Root.isObject())
    return makeError("program description must be a JSON object");
  const json::Object &Obj = Root.getObject();

  StencilProgram Program;
  if (const Value *Name = Obj.get("name")) {
    if (!Name->isString())
      return makeError("'name' must be a string");
    Program.Name = Name->getString();
  }

  const Value *Dims = Obj.get("dimensions");
  if (!Dims || !Dims->isArray())
    return makeError("program requires a 'dimensions' array");
  std::vector<int64_t> Extents;
  for (const Value &Extent : Dims->getArray()) {
    if (!Extent.isNumber() || Extent.getNumber() <= 0 ||
        Extent.getNumber() != std::floor(Extent.getNumber()))
      return makeError("'dimensions' must contain positive integers");
    Extents.push_back(Extent.getInteger());
  }
  if (Extents.empty() || Extents.size() > 3)
    return makeError("programs must have 1, 2, or 3 dimensions");
  Program.IterationSpace = Shape(std::move(Extents));
  size_t Rank = Program.IterationSpace.rank();

  if (const Value *W = Obj.get("vectorization")) {
    if (!W->isNumber() || W->getNumber() < 1 ||
        W->getNumber() != std::floor(W->getNumber()))
      return makeError("'vectorization' must be a positive integer");
    Program.VectorWidth = static_cast<int>(W->getInteger());
  }

  // Inputs.
  if (const Value *Inputs = Obj.get("inputs")) {
    if (!Inputs->isObject())
      return makeError("'inputs' must be an object");
    for (const auto &[InputName, InputValue] : Inputs->getObject()) {
      if (!InputValue->isObject())
        return makeError("input '" + InputName + "' must be an object");
      const json::Object &InputObj = InputValue->getObject();
      Field Input;
      Input.Name = InputName;
      Input.DimensionMask = std::vector<bool>(Rank, true);
      if (const Value *Type = InputObj.get("data_type")) {
        if (!Type->isString())
          return makeError("input 'data_type' must be a string");
        Expected<DataType> Parsed = parseDataType(Type->getString());
        if (!Parsed)
          return Parsed.takeError();
        Input.Type = *Parsed;
      }
      if (const Value *InputDims = InputObj.get("dimensions")) {
        if (!InputDims->isArray())
          return makeError("input 'dimensions' must be an array of names");
        Expected<std::vector<bool>> Mask =
            dimensionMaskFromNames(InputDims->getArray(), Rank);
        if (!Mask)
          return Mask.takeError();
        Input.DimensionMask = *Mask;
      }
      if (const Value *Source = InputObj.get("data")) {
        Expected<DataSource> Parsed = dataSourceFromJson(*Source);
        if (!Parsed)
          return Parsed.takeError().addContext("input '" + InputName + "'");
        Input.Source = *Parsed;
      }
      Program.Inputs.push_back(std::move(Input));
    }
  }

  // Stencil nodes.
  const Value *ProgramNodes = Obj.get("program");
  if (!ProgramNodes || !ProgramNodes->isObject())
    return makeError("program requires a 'program' object of stencils");
  for (const auto &[NodeName, NodeValue] : ProgramNodes->getObject()) {
    if (!NodeValue->isObject())
      return makeError("stencil '" + NodeName + "' must be an object");
    const json::Object &NodeObj = NodeValue->getObject();
    StencilNode Node;
    Node.Name = NodeName;

    const Value *Computation = NodeObj.get("computation");
    if (!Computation || !Computation->isString())
      return makeError("stencil '" + NodeName +
                       "' requires a 'computation' string");
    Expected<StencilCode> Code = parseStencilCode(Computation->getString());
    if (!Code)
      return Code.takeError().addContext("stencil '" + NodeName + "'");
    Node.Code = Code.takeValue();

    if (const Value *Type = NodeObj.get("data_type")) {
      if (!Type->isString())
        return makeError("stencil 'data_type' must be a string");
      Expected<DataType> Parsed = parseDataType(Type->getString());
      if (!Parsed)
        return Parsed.takeError();
      Node.Type = *Parsed;
    }

    if (const Value *Boundaries = NodeObj.get("boundary_conditions")) {
      if (!Boundaries->isObject())
        return makeError("'boundary_conditions' must be an object");
      for (const auto &[FieldName, BoundaryValue] : Boundaries->getObject()) {
        Expected<BoundaryCondition> Boundary =
            boundaryFromJson(*BoundaryValue);
        if (!Boundary)
          return Boundary.takeError().addContext("stencil '" + NodeName +
                                                 "'");
        Node.Boundaries[FieldName] = *Boundary;
      }
    }

    if (const Value *Shrink = NodeObj.get("shrink")) {
      if (!Shrink->isBoolean())
        return makeError("'shrink' must be a boolean");
      Node.ShrinkOutput = Shrink->getBoolean();
    }

    Program.Nodes.push_back(std::move(Node));
  }

  // Outputs. Default: nodes nobody consumes. (Consumption is only known
  // after semantic analysis, so explicit outputs are resolved first.)
  if (const Value *Outputs = Obj.get("outputs")) {
    if (!Outputs->isArray())
      return makeError("'outputs' must be an array of field names");
    for (const Value &Output : Outputs->getArray()) {
      if (!Output.isString())
        return makeError("'outputs' must be an array of field names");
      Program.Outputs.push_back(Output.getString());
    }
  }

  // Time loop: output -> input feedback bindings for iterative programs.
  if (const Value *TimeLoop = Obj.get("time_loop")) {
    if (!TimeLoop->isArray())
      return makeError("'time_loop' must be an array of bindings");
    for (const Value &Entry : TimeLoop->getArray()) {
      if (!Entry.isObject())
        return makeError("'time_loop' entries must be objects");
      const json::Object &EntryObj = Entry.getObject();
      const Value *Output = EntryObj.get("output");
      const Value *Input = EntryObj.get("input");
      if (!Output || !Output->isString() || !Input || !Input->isString())
        return makeError(
            "'time_loop' entries require 'output' and 'input' field names");
      Program.TimeLoop.push_back({Output->getString(), Input->getString()});
    }
  }

  if (Error Err = analyzeProgram(Program)) {
    // If outputs were defaulted, retry after inferring sinks.
    if (!Program.Outputs.empty())
      return Err;
    for (StencilNode &Node : Program.Nodes)
      if (Error NodeErr = analyzeNode(Program, Node))
        return NodeErr;
    for (const StencilNode &Node : Program.Nodes)
      if (Program.consumersOf(Node.Name).empty())
        Program.Outputs.push_back(Node.Name);
    if (Error RetryErr = Program.validate())
      return RetryErr;
  }
  return Program;
}

Expected<StencilProgram>
stencilflow::programFromJsonText(std::string_view Text) {
  Expected<Value> Parsed = json::parse(Text);
  if (!Parsed)
    return Parsed.takeError().addContext("parsing program description");
  return programFromJson(*Parsed);
}

Expected<StencilProgram>
stencilflow::loadProgramFile(const std::string &Path) {
  Expected<Value> Parsed = json::parseFile(Path);
  if (!Parsed)
    return Parsed.takeError();
  Expected<StencilProgram> Program = programFromJson(*Parsed);
  if (!Program)
    return Program.takeError().addContext(Path);
  return Program;
}

Value stencilflow::programToJson(const StencilProgram &Program) {
  json::Object Root;
  Root.set("name", Program.Name);

  std::vector<Value> Dims;
  for (int64_t Extent : Program.IterationSpace.extents())
    Dims.emplace_back(Extent);
  Root.set("dimensions", Value(std::move(Dims)));
  Root.set("vectorization", Program.VectorWidth);

  json::Object Inputs;
  std::vector<std::string> DimNames =
      StencilProgram::dimensionNames(Program.IterationSpace.rank());
  for (const Field &Input : Program.Inputs) {
    json::Object InputObj;
    InputObj.set("data_type", std::string(dataTypeName(Input.Type)));
    if (!Input.isFullRank()) {
      std::vector<Value> Names;
      for (size_t Dim = 0; Dim != Input.DimensionMask.size(); ++Dim)
        if (Input.DimensionMask[Dim])
          Names.emplace_back(DimNames[Dim]);
      InputObj.set("dimensions", Value(std::move(Names)));
    }
    InputObj.set("data", dataSourceToJson(Input.Source));
    Inputs.set(Input.Name, Value(std::move(InputObj)));
  }
  Root.set("inputs", Value(std::move(Inputs)));

  std::vector<Value> Outputs;
  for (const std::string &Output : Program.Outputs)
    Outputs.emplace_back(Output);
  Root.set("outputs", Value(std::move(Outputs)));

  // Omitted when empty so fingerprints of loop-free programs are stable.
  if (!Program.TimeLoop.empty()) {
    std::vector<Value> TimeLoop;
    for (const IterationBinding &Binding : Program.TimeLoop) {
      json::Object BindingObj;
      BindingObj.set("output", Binding.Output);
      BindingObj.set("input", Binding.Input);
      TimeLoop.emplace_back(std::move(BindingObj));
    }
    Root.set("time_loop", Value(std::move(TimeLoop)));
  }

  json::Object NodesObj;
  for (const StencilNode &Node : Program.Nodes) {
    json::Object NodeObj;
    NodeObj.set("computation", Node.Code.toString());
    NodeObj.set("data_type", std::string(dataTypeName(Node.Type)));
    if (!Node.Boundaries.empty()) {
      json::Object Boundaries;
      for (const auto &[FieldName, Boundary] : Node.Boundaries)
        Boundaries.set(FieldName, boundaryToJson(Boundary));
      NodeObj.set("boundary_conditions", Value(std::move(Boundaries)));
    }
    if (Node.ShrinkOutput)
      NodeObj.set("shrink", true);
    NodesObj.set(Node.Name, Value(std::move(NodeObj)));
  }
  Root.set("program", Value(std::move(NodesObj)));
  return Value(std::move(Root));
}
