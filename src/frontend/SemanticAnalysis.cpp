//===- frontend/SemanticAnalysis.cpp - Name resolution & access inference ---==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/SemanticAnalysis.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <set>

using namespace stencilflow;

namespace {

/// Compares offsets in memory order (outer dimensions first). Since
/// dimension extents dominate, lexicographic order on the offset vector is
/// exactly memory order.
bool offsetLess(const Offset &A, const Offset &B) {
  return std::lexicographical_compare(A.begin(), A.end(), B.begin(), B.end());
}

} // namespace

Error stencilflow::analyzeNode(const StencilProgram &Program,
                               StencilNode &Node) {
  std::set<std::string> Locals;
  // Field name -> deduplicated offsets, kept in first-use order.
  std::vector<FieldAccesses> Accesses;

  auto recordAccess = [&](const std::string &Field, const Offset &Off) {
    for (FieldAccesses &FA : Accesses) {
      if (FA.Field != Field)
        continue;
      if (std::find(FA.Offsets.begin(), FA.Offsets.end(), Off) ==
          FA.Offsets.end())
        FA.Offsets.push_back(Off);
      return;
    }
    Accesses.push_back(FieldAccesses{Field, {Off}});
  };

  for (size_t StmtIndex = 0, NumStmts = Node.Code.Statements.size();
       StmtIndex != NumStmts; ++StmtIndex) {
    Assignment &Stmt = Node.Code.Statements[StmtIndex];
    bool IsFinal = StmtIndex + 1 == NumStmts;

    // Resolve names and collect accesses in the right-hand side.
    Error DeferredError;
    walkExprMutable(Stmt.Value, [&](ExprPtr &E) {
      if (DeferredError)
        return;
      if (auto *Ref = dyn_cast<LocalRefExpr>(E.get())) {
        if (Locals.count(Ref->name()))
          return; // A local temporary; stays a LocalRefExpr.
        if (Program.isFieldDefined(Ref->name())) {
          size_t FieldRank = 0;
          for (bool Spanned : Program.fieldDimensionMask(Ref->name()))
            FieldRank += Spanned;
          Offset Zero(FieldRank, 0);
          std::string Field = Ref->name();
          E = std::make_unique<FieldAccessExpr>(Field, Zero);
          recordAccess(Field, Zero);
          return;
        }
        DeferredError = makeError(
            "stencil '" + Node.Name + "': use of undefined name '" +
            Ref->name() + "' (not a local temporary or a defined field)");
        return;
      }
      if (auto *Access = dyn_cast<FieldAccessExpr>(E.get())) {
        if (Locals.count(Access->field())) {
          DeferredError = makeError("stencil '" + Node.Name +
                                    "': local temporary '" + Access->field() +
                                    "' cannot be indexed with offsets");
          return;
        }
        if (!Program.isFieldDefined(Access->field())) {
          DeferredError = makeError("stencil '" + Node.Name +
                                    "': access to undefined field '" +
                                    Access->field() + "'");
          return;
        }
        size_t FieldRank = 0;
        for (bool Spanned : Program.fieldDimensionMask(Access->field()))
          FieldRank += Spanned;
        if (Access->offset().size() != FieldRank) {
          DeferredError = makeError(formatString(
              "stencil '%s': field '%s' has rank %zu but is accessed with "
              "offset %s",
              Node.Name.c_str(), Access->field().c_str(), FieldRank,
              offsetToString(Access->offset()).c_str()));
          return;
        }
        recordAccess(Access->field(), Access->offset());
      }
    });
    if (DeferredError)
      return DeferredError;

    // Register the assignment target.
    if (IsFinal) {
      if (Stmt.Target != Node.Name)
        return makeError("the final statement of stencil '" + Node.Name +
                         "' must assign to '" + Node.Name + "', not '" +
                         Stmt.Target + "'");
    } else {
      if (Program.isFieldDefined(Stmt.Target) || Stmt.Target == Node.Name)
        return makeError("stencil '" + Node.Name + "': local temporary '" +
                         Stmt.Target + "' shadows a field");
      Locals.insert(Stmt.Target);
    }
  }

  if (Accesses.empty())
    return makeError("stencil '" + Node.Name + "' reads no fields");

  if (std::any_of(Accesses.begin(), Accesses.end(),
                  [&](const FieldAccesses &FA) {
                    return FA.Field == Node.Name;
                  }))
    return makeError("stencil '" + Node.Name + "' reads its own output");

  for (FieldAccesses &FA : Accesses)
    std::sort(FA.Offsets.begin(), FA.Offsets.end(), offsetLess);
  Node.Accesses = std::move(Accesses);
  return Error::success();
}

Error stencilflow::analyzeProgram(StencilProgram &Program) {
  for (StencilNode &Node : Program.Nodes)
    if (Error Err = analyzeNode(Program, Node))
      return Err;
  return Program.validate();
}
