//===- frontend/Lexer.h - Stencil DSL lexer ----------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the stencil computation DSL (paper Sec. II). The language
/// is a small, analyzable expression language: identifiers, numeric
/// literals, arithmetic and comparison operators, ternary conditionals,
/// bracketss for constant offsets, and calls to standard math functions.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_FRONTEND_LEXER_H
#define STENCILFLOW_FRONTEND_LEXER_H

#include "support/Error.h"

#include <string>
#include <string_view>
#include <vector>

namespace stencilflow {

/// Token kinds of the stencil DSL.
enum class TokenKind {
  Identifier,
  Number,
  Plus,         // +
  Minus,        // -
  Star,         // *
  Slash,        // /
  Less,         // <
  LessEqual,    // <=
  Greater,      // >
  GreaterEqual, // >=
  EqualEqual,   // ==
  NotEqual,     // !=
  AmpAmp,       // &&
  PipePipe,     // ||
  Not,          // !
  Question,     // ?
  Colon,        // :
  Assign,       // =
  Semicolon,    // ;
  Comma,        // ,
  LeftParen,    // (
  RightParen,   // )
  LeftBracket,  // [
  RightBracket, // ]
  EndOfInput
};

/// Returns a printable name for \p Kind (for diagnostics).
std::string_view tokenKindName(TokenKind Kind);

/// One token with its source position (1-based line and column).
struct Token {
  TokenKind Kind = TokenKind::EndOfInput;
  std::string Text;
  double NumberValue = 0.0;
  unsigned Line = 1;
  unsigned Column = 1;
};

/// Tokenizes \p Source. `#` and `//` line comments are skipped.
Expected<std::vector<Token>> tokenize(std::string_view Source);

} // namespace stencilflow

#endif // STENCILFLOW_FRONTEND_LEXER_H
