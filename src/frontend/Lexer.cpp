//===- frontend/Lexer.cpp - Stencil DSL lexer -------------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include "support/StringUtils.h"

#include <cctype>
#include <cstdlib>

using namespace stencilflow;

std::string_view stencilflow::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Number:
    return "number";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::NotEqual:
    return "'!='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Not:
    return "'!'";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::LeftParen:
    return "'('";
  case TokenKind::RightParen:
    return "')'";
  case TokenKind::LeftBracket:
    return "'['";
  case TokenKind::RightBracket:
    return "']'";
  case TokenKind::EndOfInput:
    return "end of input";
  }
  return "<invalid>";
}

Expected<std::vector<Token>> stencilflow::tokenize(std::string_view Source) {
  std::vector<Token> Tokens;
  unsigned Line = 1, Column = 1;
  size_t Pos = 0;

  auto advance = [&](size_t Count = 1) {
    for (size_t I = 0; I != Count; ++I) {
      if (Pos < Source.size() && Source[Pos] == '\n') {
        ++Line;
        Column = 1;
      } else {
        ++Column;
      }
      ++Pos;
    }
  };

  auto push = [&](TokenKind Kind, std::string Text) {
    Token Tok;
    Tok.Kind = Kind;
    Tok.Text = std::move(Text);
    Tok.Line = Line;
    Tok.Column = Column;
    Tokens.push_back(std::move(Tok));
  };

  while (Pos < Source.size()) {
    char C = Source[Pos];
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    // Line comments: '#' or '//'.
    if (C == '#' ||
        (C == '/' && Pos + 1 < Source.size() && Source[Pos + 1] == '/')) {
      while (Pos < Source.size() && Source[Pos] != '\n')
        advance();
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      unsigned StartColumn = Column;
      while (Pos < Source.size() &&
             (std::isalnum(static_cast<unsigned char>(Source[Pos])) ||
              Source[Pos] == '_'))
        advance();
      Token Tok;
      Tok.Kind = TokenKind::Identifier;
      Tok.Text = std::string(Source.substr(Start, Pos - Start));
      Tok.Line = Line;
      Tok.Column = StartColumn;
      Tokens.push_back(std::move(Tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '.' && Pos + 1 < Source.size() &&
         std::isdigit(static_cast<unsigned char>(Source[Pos + 1])))) {
      size_t Start = Pos;
      unsigned StartColumn = Column;
      while (Pos < Source.size() &&
             (std::isdigit(static_cast<unsigned char>(Source[Pos])) ||
              Source[Pos] == '.' || Source[Pos] == 'e' || Source[Pos] == 'E' ||
              ((Source[Pos] == '+' || Source[Pos] == '-') && Pos > Start &&
               (Source[Pos - 1] == 'e' || Source[Pos - 1] == 'E'))))
        advance();
      std::string Text(Source.substr(Start, Pos - Start));
      // Accept C-style float suffixes like 0.25f.
      if (Pos < Source.size() && (Source[Pos] == 'f' || Source[Pos] == 'F'))
        advance();
      char *End = nullptr;
      double Value = std::strtod(Text.c_str(), &End);
      if (End != Text.c_str() + Text.size())
        return makeError(formatString("%u:%u: invalid number '%s'", Line,
                                      StartColumn, Text.c_str()));
      Token Tok;
      Tok.Kind = TokenKind::Number;
      Tok.Text = std::move(Text);
      Tok.NumberValue = Value;
      Tok.Line = Line;
      Tok.Column = StartColumn;
      Tokens.push_back(std::move(Tok));
      continue;
    }

    auto twoChar = [&](char Next) {
      return Pos + 1 < Source.size() && Source[Pos + 1] == Next;
    };

    switch (C) {
    case '+':
      push(TokenKind::Plus, "+");
      advance();
      break;
    case '-':
      push(TokenKind::Minus, "-");
      advance();
      break;
    case '*':
      push(TokenKind::Star, "*");
      advance();
      break;
    case '/':
      push(TokenKind::Slash, "/");
      advance();
      break;
    case '<':
      if (twoChar('=')) {
        push(TokenKind::LessEqual, "<=");
        advance(2);
      } else {
        push(TokenKind::Less, "<");
        advance();
      }
      break;
    case '>':
      if (twoChar('=')) {
        push(TokenKind::GreaterEqual, ">=");
        advance(2);
      } else {
        push(TokenKind::Greater, ">");
        advance();
      }
      break;
    case '=':
      if (twoChar('=')) {
        push(TokenKind::EqualEqual, "==");
        advance(2);
      } else {
        push(TokenKind::Assign, "=");
        advance();
      }
      break;
    case '!':
      if (twoChar('=')) {
        push(TokenKind::NotEqual, "!=");
        advance(2);
      } else {
        push(TokenKind::Not, "!");
        advance();
      }
      break;
    case '&':
      if (!twoChar('&'))
        return makeError(
            formatString("%u:%u: expected '&&' (bitwise operators are not "
                         "part of the stencil DSL)",
                         Line, Column));
      push(TokenKind::AmpAmp, "&&");
      advance(2);
      break;
    case '|':
      if (!twoChar('|'))
        return makeError(
            formatString("%u:%u: expected '||' (bitwise operators are not "
                         "part of the stencil DSL)",
                         Line, Column));
      push(TokenKind::PipePipe, "||");
      advance(2);
      break;
    case '?':
      push(TokenKind::Question, "?");
      advance();
      break;
    case ':':
      push(TokenKind::Colon, ":");
      advance();
      break;
    case ';':
      push(TokenKind::Semicolon, ";");
      advance();
      break;
    case ',':
      push(TokenKind::Comma, ",");
      advance();
      break;
    case '(':
      push(TokenKind::LeftParen, "(");
      advance();
      break;
    case ')':
      push(TokenKind::RightParen, ")");
      advance();
      break;
    case '[':
      push(TokenKind::LeftBracket, "[");
      advance();
      break;
    case ']':
      push(TokenKind::RightBracket, "]");
      advance();
      break;
    default:
      return makeError(
          formatString("%u:%u: unexpected character '%c'", Line, Column, C));
    }
  }

  Token End;
  End.Kind = TokenKind::EndOfInput;
  End.Line = Line;
  End.Column = Column;
  Tokens.push_back(std::move(End));
  return Tokens;
}
