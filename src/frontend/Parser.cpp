//===- frontend/Parser.cpp - Stencil DSL parser -----------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"
#include "support/StringUtils.h"

#include <cmath>

using namespace stencilflow;

namespace {

/// Recursive-descent parser over a token stream.
class Parser {
public:
  explicit Parser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  Expected<StencilCode> parseCode() {
    StencilCode Code;
    while (!at(TokenKind::EndOfInput)) {
      Expected<Assignment> Stmt = parseStatement();
      if (!Stmt)
        return Stmt.takeError();
      Code.Statements.push_back(std::move(*Stmt));
    }
    if (Code.Statements.empty())
      return makeError("stencil code contains no statements");
    return Code;
  }

  Expected<ExprPtr> parseSingleExpression() {
    Expected<ExprPtr> Result = parseExpr();
    if (!Result)
      return Result;
    if (!at(TokenKind::EndOfInput))
      return error("trailing tokens after expression");
    return Result;
  }

private:
  std::vector<Token> Tokens;
  size_t Pos = 0;

  const Token &current() const { return Tokens[Pos]; }
  bool at(TokenKind Kind) const { return current().Kind == Kind; }

  bool consume(TokenKind Kind) {
    if (!at(Kind))
      return false;
    ++Pos;
    return true;
  }

  Error error(const std::string &Message) const {
    return makeError(formatString("%u:%u: %s", current().Line,
                                  current().Column, Message.c_str()));
  }

  Error expectedError(TokenKind Kind) const {
    return error(formatString("expected %s, got %s",
                              std::string(tokenKindName(Kind)).c_str(),
                              std::string(tokenKindName(current().Kind))
                                  .c_str()));
  }

  Expected<Assignment> parseStatement() {
    if (!at(TokenKind::Identifier))
      return error("expected an assignment statement");
    std::string Target = current().Text;
    ++Pos;
    if (!consume(TokenKind::Assign))
      return expectedError(TokenKind::Assign);
    Expected<ExprPtr> Value = parseExpr();
    if (!Value)
      return Value.takeError();
    if (!consume(TokenKind::Semicolon))
      return expectedError(TokenKind::Semicolon);
    return Assignment{std::move(Target), Value.takeValue()};
  }

  Expected<ExprPtr> parseExpr() {
    Expected<ExprPtr> Cond = parseOr();
    if (!Cond)
      return Cond;
    if (!consume(TokenKind::Question))
      return Cond;
    Expected<ExprPtr> TrueValue = parseExpr();
    if (!TrueValue)
      return TrueValue;
    if (!consume(TokenKind::Colon))
      return expectedError(TokenKind::Colon);
    Expected<ExprPtr> FalseValue = parseExpr();
    if (!FalseValue)
      return FalseValue;
    return ExprPtr(std::make_unique<SelectExpr>(
        Cond.takeValue(), TrueValue.takeValue(), FalseValue.takeValue()));
  }

  Expected<ExprPtr> parseOr() {
    Expected<ExprPtr> LHS = parseAnd();
    if (!LHS)
      return LHS;
    while (consume(TokenKind::PipePipe)) {
      Expected<ExprPtr> RHS = parseAnd();
      if (!RHS)
        return RHS;
      LHS = ExprPtr(std::make_unique<BinaryExpr>(BinaryOp::Or, LHS.takeValue(),
                                                 RHS.takeValue()));
    }
    return LHS;
  }

  Expected<ExprPtr> parseAnd() {
    Expected<ExprPtr> LHS = parseCmp();
    if (!LHS)
      return LHS;
    while (consume(TokenKind::AmpAmp)) {
      Expected<ExprPtr> RHS = parseCmp();
      if (!RHS)
        return RHS;
      LHS = ExprPtr(std::make_unique<BinaryExpr>(BinaryOp::And,
                                                 LHS.takeValue(),
                                                 RHS.takeValue()));
    }
    return LHS;
  }

  Expected<ExprPtr> parseCmp() {
    Expected<ExprPtr> LHS = parseAdd();
    if (!LHS)
      return LHS;
    BinaryOp Op;
    switch (current().Kind) {
    case TokenKind::Less:
      Op = BinaryOp::Lt;
      break;
    case TokenKind::LessEqual:
      Op = BinaryOp::Le;
      break;
    case TokenKind::Greater:
      Op = BinaryOp::Gt;
      break;
    case TokenKind::GreaterEqual:
      Op = BinaryOp::Ge;
      break;
    case TokenKind::EqualEqual:
      Op = BinaryOp::Eq;
      break;
    case TokenKind::NotEqual:
      Op = BinaryOp::Ne;
      break;
    default:
      return LHS;
    }
    ++Pos;
    Expected<ExprPtr> RHS = parseAdd();
    if (!RHS)
      return RHS;
    return ExprPtr(std::make_unique<BinaryExpr>(Op, LHS.takeValue(),
                                                RHS.takeValue()));
  }

  Expected<ExprPtr> parseAdd() {
    Expected<ExprPtr> LHS = parseMul();
    if (!LHS)
      return LHS;
    while (at(TokenKind::Plus) || at(TokenKind::Minus)) {
      BinaryOp Op = at(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
      ++Pos;
      Expected<ExprPtr> RHS = parseMul();
      if (!RHS)
        return RHS;
      LHS = ExprPtr(std::make_unique<BinaryExpr>(Op, LHS.takeValue(),
                                                 RHS.takeValue()));
    }
    return LHS;
  }

  Expected<ExprPtr> parseMul() {
    Expected<ExprPtr> LHS = parseUnary();
    if (!LHS)
      return LHS;
    while (at(TokenKind::Star) || at(TokenKind::Slash)) {
      BinaryOp Op = at(TokenKind::Star) ? BinaryOp::Mul : BinaryOp::Div;
      ++Pos;
      Expected<ExprPtr> RHS = parseUnary();
      if (!RHS)
        return RHS;
      LHS = ExprPtr(std::make_unique<BinaryExpr>(Op, LHS.takeValue(),
                                                 RHS.takeValue()));
    }
    return LHS;
  }

  Expected<ExprPtr> parseUnary() {
    if (consume(TokenKind::Minus)) {
      Expected<ExprPtr> Operand = parseUnary();
      if (!Operand)
        return Operand;
      // Fold negation of literals immediately so "-4.0" is a literal.
      if (auto *Lit = dyn_cast<LiteralExpr>(Operand->get()))
        return ExprPtr(std::make_unique<LiteralExpr>(-Lit->value()));
      return ExprPtr(
          std::make_unique<UnaryExpr>(UnaryOp::Neg, Operand.takeValue()));
    }
    if (consume(TokenKind::Not)) {
      Expected<ExprPtr> Operand = parseUnary();
      if (!Operand)
        return Operand;
      return ExprPtr(
          std::make_unique<UnaryExpr>(UnaryOp::Not, Operand.takeValue()));
    }
    return parsePrimary();
  }

  Expected<ExprPtr> parsePrimary() {
    if (at(TokenKind::Number)) {
      double Value = current().NumberValue;
      ++Pos;
      return ExprPtr(std::make_unique<LiteralExpr>(Value));
    }
    if (consume(TokenKind::LeftParen)) {
      Expected<ExprPtr> Inner = parseExpr();
      if (!Inner)
        return Inner;
      if (!consume(TokenKind::RightParen))
        return expectedError(TokenKind::RightParen);
      return Inner;
    }
    if (!at(TokenKind::Identifier))
      return error(formatString(
          "expected an expression, got %s",
          std::string(tokenKindName(current().Kind)).c_str()));

    std::string Name = current().Text;
    ++Pos;

    if (consume(TokenKind::LeftBracket)) {
      Offset Off;
      while (true) {
        bool Negative = consume(TokenKind::Minus);
        if (!at(TokenKind::Number))
          return error("field offsets must be integer constants");
        double Value = current().NumberValue;
        if (Value != std::floor(Value))
          return error("field offsets must be integer constants");
        ++Pos;
        int Component = static_cast<int>(Value);
        Off.push_back(Negative ? -Component : Component);
        if (consume(TokenKind::RightBracket))
          break;
        if (!consume(TokenKind::Comma))
          return expectedError(TokenKind::Comma);
      }
      return ExprPtr(
          std::make_unique<FieldAccessExpr>(std::move(Name), std::move(Off)));
    }

    if (consume(TokenKind::LeftParen)) {
      Expected<Intrinsic> Fn = parseIntrinsic(Name);
      if (!Fn)
        return Fn.takeError();
      std::vector<ExprPtr> Args;
      if (!consume(TokenKind::RightParen)) {
        while (true) {
          Expected<ExprPtr> Arg = parseExpr();
          if (!Arg)
            return Arg;
          Args.push_back(Arg.takeValue());
          if (consume(TokenKind::RightParen))
            break;
          if (!consume(TokenKind::Comma))
            return expectedError(TokenKind::Comma);
        }
      }
      if (Args.size() != intrinsicArity(*Fn))
        return error(formatString("%s expects %u argument(s), got %zu",
                                  Name.c_str(), intrinsicArity(*Fn),
                                  Args.size()));
      return ExprPtr(std::make_unique<CallExpr>(*Fn, std::move(Args)));
    }

    // Bare identifier: resolved by semantic analysis to a local temporary
    // or to a field access.
    return ExprPtr(std::make_unique<LocalRefExpr>(std::move(Name)));
  }
};

} // namespace

Expected<StencilCode> stencilflow::parseStencilCode(std::string_view Source) {
  Expected<std::vector<Token>> Tokens = tokenize(Source);
  if (!Tokens)
    return Tokens.takeError();
  return Parser(Tokens.takeValue()).parseCode();
}

Expected<ExprPtr> stencilflow::parseExpression(std::string_view Source) {
  Expected<std::vector<Token>> Tokens = tokenize(Source);
  if (!Tokens)
    return Tokens.takeError();
  return Parser(Tokens.takeValue()).parseSingleExpression();
}
