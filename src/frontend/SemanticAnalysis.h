//===- frontend/SemanticAnalysis.h - Name resolution & access inference -*- C++
//-*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis of a stencil program: resolves bare identifiers to
/// local temporaries or field accesses, enforces the analyzability
/// restrictions of the DSL (paper Sec. II), and recovers the per-field
/// access-offset sets that drive the buffer analyses (Sec. IV).
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_FRONTEND_SEMANTICANALYSIS_H
#define STENCILFLOW_FRONTEND_SEMANTICANALYSIS_H

#include "ir/StencilProgram.h"
#include "support/Error.h"

namespace stencilflow {

/// Runs semantic analysis over every node of \p Program:
///
///  - bare identifiers become \c LocalRefExpr (earlier assignment in the
///    same block) or zero-offset \c FieldAccessExpr (defined field);
///  - locals must be assigned before use and must not shadow fields;
///  - field accesses must reference defined fields with offsets of the
///    field's rank;
///  - each node's \c Accesses list is populated (fields in first-use order,
///    offsets deduplicated and sorted in memory order);
///  - a node must not read its own output.
///
/// On success the program passes \c StencilProgram::validate().
Error analyzeProgram(StencilProgram &Program);

/// Analyzes a single node against \p Program (exposed for incremental
/// construction and for the transformation passes, which re-run analysis
/// after rewriting code blocks).
Error analyzeNode(const StencilProgram &Program, StencilNode &Node);

} // namespace stencilflow

#endif // STENCILFLOW_FRONTEND_SEMANTICANALYSIS_H
