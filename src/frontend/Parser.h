//===- frontend/Parser.h - Stencil DSL parser --------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for stencil computation code (paper Sec. II).
///
/// Grammar (statements are assignments; the final assignment defines the
/// stencil's output):
/// \code
///   code    := stmt+
///   stmt    := IDENT '=' expr ';'
///   expr    := or ('?' expr ':' expr)?
///   or      := and ('||' and)*
///   and     := cmp ('&&' cmp)*
///   cmp     := add (CMPOP add)?
///   add     := mul (('+'|'-') mul)*
///   mul     := unary (('*'|'/') unary)*
///   unary   := ('-'|'!') unary | primary
///   primary := NUMBER
///            | IDENT                       (local temp or scalar field)
///            | IDENT '[' INT {',' INT} ']' (field access at constant offset)
///            | IDENT '(' expr {',' expr} ')'  (math intrinsic)
///            | '(' expr ')'
/// \endcode
///
/// Bare identifiers are parsed as \c LocalRefExpr; semantic analysis
/// (SemanticAnalysis.h) resolves them to local temporaries or field
/// accesses.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_FRONTEND_PARSER_H
#define STENCILFLOW_FRONTEND_PARSER_H

#include "ir/Expr.h"
#include "support/Error.h"

#include <string_view>

namespace stencilflow {

/// Parses a full stencil code block (one or more assignments).
Expected<StencilCode> parseStencilCode(std::string_view Source);

/// Parses a single expression (no trailing semicolon). Used by tests and
/// by programmatic builders.
Expected<ExprPtr> parseExpression(std::string_view Source);

} // namespace stencilflow

#endif // STENCILFLOW_FRONTEND_PARSER_H
