//===- frontend/ProgramLoader.h - JSON program descriptions ------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loader and writer for the JSON-based program-description format (paper
/// Sec. II, Lst. 1). Only the minimum information needed to instantiate the
/// stencil DAG is required; everything else defaults sensibly.
///
/// Format:
/// \code
/// {
///   "name": "laplace2d",                      // optional
///   "dimensions": [128, 128],                 // iteration space (1-3D)
///   "vectorization": 1,                       // optional, W (Sec. IV-C)
///   "inputs": {
///     "a": {
///       "data_type": "float32",               // optional
///       "dimensions": ["j", "i"],             // optional subset for
///                                             // lower-dimensional inputs
///       "data": {"kind": "random", "seed": 7} // optional data source
///     }
///   },
///   "outputs": ["b"],
///   "program": {
///     "b": {
///       "computation":
///         "b = a[0,-1] + a[0,1] + a[-1,0] + a[1,0] - 4.0 * a[0,0];",
///       "data_type": "float32",               // optional
///       "boundary_conditions": {
///         "a": {"type": "constant", "value": 0.0}
///       },
///       "shrink": false                       // optional output shrink
///     }
///   }
/// }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_FRONTEND_PROGRAMLOADER_H
#define STENCILFLOW_FRONTEND_PROGRAMLOADER_H

#include "ir/StencilProgram.h"
#include "support/Error.h"
#include "support/Json.h"

#include <string>
#include <string_view>

namespace stencilflow {

/// Builds a fully analyzed stencil program from a parsed JSON description.
Expected<StencilProgram> programFromJson(const json::Value &Description);

/// Parses JSON text and builds a program.
Expected<StencilProgram> programFromJsonText(std::string_view Text);

/// Loads a program description from a file.
Expected<StencilProgram> loadProgramFile(const std::string &Path);

/// Serializes \p Program back to a JSON description (round-trippable).
json::Value programToJson(const StencilProgram &Program);

} // namespace stencilflow

#endif // STENCILFLOW_FRONTEND_PROGRAMLOADER_H
