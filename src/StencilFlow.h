//===- StencilFlow.h - Library umbrella header --------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one header an application needs: the \c stencilflow::Session facade
/// plus the types its configuration and results expose (programs, pipeline
/// options/results, simulator config, fault plans, traces). Subsystem
/// headers remain available for lower-level embedding — this umbrella only
/// aggregates, it defines nothing.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_STENCILFLOW_H
#define STENCILFLOW_STENCILFLOW_H

#include "frontend/ProgramLoader.h"
#include "runtime/Pipeline.h"
#include "runtime/Session.h"
#include "sim/Config.h"
#include "sim/Fault.h"
#include "sim/Machine.h"
#include "sim/Trace.h"
#include "support/Error.h"
#include "tuner/Tuner.h"

#endif // STENCILFLOW_STENCILFLOW_H
