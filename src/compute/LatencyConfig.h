//===- compute/LatencyConfig.h - Latency tables from JSON ---------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operation latencies "are both type and architecture dependent. As a
/// result, these latencies can be provided as configuration to the
/// framework" (paper Sec. IV-B). This loads a latency table from a JSON
/// object of mnemonic -> cycles, e.g.:
///
/// \code
///   {"add": 3, "mul": 3, "div": 28, "sqrt": 28}
/// \endcode
///
/// Unlisted operations keep their conservative defaults.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_COMPUTE_LATENCYCONFIG_H
#define STENCILFLOW_COMPUTE_LATENCYCONFIG_H

#include "compute/Bytecode.h"
#include "support/Error.h"
#include "support/Json.h"

#include <string_view>

namespace stencilflow {
namespace compute {

/// Parses an opcode mnemonic ("add", "sqrt", ...) as printed by
/// opCodeName.
Expected<OpCode> parseOpCodeName(std::string_view Name);

/// Builds a latency table from a JSON object; unknown keys or
/// non-integer values are errors.
Expected<LatencyTable> latencyTableFromJson(const json::Value &Config);

/// Parses JSON text and builds a latency table.
Expected<LatencyTable> latencyTableFromJsonText(std::string_view Text);

} // namespace compute
} // namespace stencilflow

#endif // STENCILFLOW_COMPUTE_LATENCYCONFIG_H
