//===- compute/Engine.h - Lane-batched kernel execution engine ----*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kernel execution engine: evaluates a compiled stencil kernel for all
/// W vector lanes of a cycle at once instead of lane-by-lane. The paper's
/// performance model assumes fully pipelined W-lane vectorized units
/// (Sec. VI); the simulator mirrors that by amortizing the per-instruction
/// dispatch over the whole vector and keeping the register file in
/// structure-of-arrays layout so the per-lane inner loops autovectorize.
///
/// Four tiers plus a per-unit selection mode, selected by \c KernelEngine:
///
///  - \b Scalar: delegates to Kernel::evaluate per lane. The reference
///    implementation every other tier must match bit-for-bit.
///  - \b Batched: runs a compiled tape (constant folding, dead-register
///    elimination, register renumbering) once per vector with one dispatch
///    per instruction.
///  - \b Specialized: additionally fuses multiply-add patterns and
///    pattern-matches pure weighted-sum / Laplacian accumulator chains
///    (the dominant stencil shape) into a pre-templated native evaluator;
///    kernels that do not match fall back to the fused batched tape.
///  - \b Jit: emits one straight-line C++ function for the fused tape at
///    runtime, builds it into a shared object with the host toolchain
///    (same -ffp-contract=off discipline as this library), and dlopens it
///    (compute/Jit.h). No per-instruction dispatch at all; falls back to
///    Specialized when no host compiler is available.
///  - \b Auto: not a tier but a per-unit policy — picks the best tier for
///    each kernel from its tape shape and the vector width (see
///    compute/Jit.h for the selection rules). \c tier() always reports
///    what actually runs.
///
/// Bit-exactness contract: every tier performs the same operations in the
/// same order with the same per-operation rounding (\c roundToType) as the
/// scalar interpreter, including padding lanes. Fused multiply-adds keep
/// both intermediate roundings (round(a + round(b*c))), and the translation
/// unit is built with -ffp-contract=off so the compiler cannot contract
/// them into hardware FMAs.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_COMPUTE_ENGINE_H
#define STENCILFLOW_COMPUTE_ENGINE_H

#include "compute/Kernel.h"
#include "support/Error.h"

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace stencilflow {
namespace compute {

/// Which kernel execution tier the simulator uses.
enum class KernelEngine : uint8_t {
  Scalar,      ///< Per-lane reference interpreter (Kernel::evaluate).
  Batched,     ///< Lane-batched tape interpreter.
  Specialized, ///< Batched + fusion + weighted-sum chain specialization.
  Jit,         ///< Runtime C++ codegen of the fused tape (compute/Jit.h).
  Auto         ///< Per-kernel tier selection from tape shape and width.
};

/// Returns a printable name ("scalar", "batched", "specialized", "jit",
/// "auto").
const char *kernelEngineName(KernelEngine Engine);

/// Parses a --kernel-engine value.
Expected<KernelEngine> parseKernelEngine(std::string_view Name);

/// One compiled tape operation. Mirrors compute::OpCode with three fused
/// superinstructions appended; \c Dst is explicit because dead-register
/// elimination renumbers the register file.
struct TapeOp {
  enum class Kind : uint8_t {
    // Keep in sync with OpCode (static_assert in Engine.cpp).
    Const,
    Input,
    Neg,
    Not,
    Add,
    Sub,
    Mul,
    Div,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    Sqrt,
    Abs,
    Exp,
    Log,
    Sin,
    Cos,
    Tanh,
    Floor,
    Ceil,
    Min,
    Max,
    Pow,
    Select,
    MulAdd,  ///< dst = round(a + round(b*c))
    MulSub,  ///< dst = round(a - round(b*c))
    MulRSub, ///< dst = round(round(b*c) - a)
  };

  Kind Op = Kind::Const;
  int32_t Dst = -1;
  int32_t A = -1;
  int32_t B = -1;
  int32_t C = -1;
  int32_t InputIndex = -1;
  double Constant = 0.0;
};

/// One term of a specialized weighted-sum accumulator chain. A leaf operand
/// is either a kernel input slot (rounded on load; rounding is idempotent so
/// this matches the tape's explicit Input instruction) or a pre-rounded
/// constant.
struct ChainTerm {
  enum class Kind : uint8_t {
    Init,   ///< acc = X
    Add,    ///< acc = round(acc + X)
    Sub,    ///< acc = round(acc - X)
    RSub,   ///< acc = round(X - acc)
    Mul,    ///< acc = round(acc * X)
    MulAdd, ///< acc = round(acc + round(X*Y))
    MulSub, ///< acc = round(acc - round(X*Y))
    MulRSub ///< acc = round(round(X*Y) - acc)
  };

  Kind Op = Kind::Init;
  int32_t XInput = -1; ///< Input slot of X, or -1 if X is XConst.
  int32_t YInput = -1; ///< Input slot of Y, or -1 if Y is YConst.
  double XConst = 0.0;
  double YConst = 0.0;
};

/// A kernel compiled for one execution tier at a fixed vector width.
///
/// The evaluator is immutable after compile() and holds no mutable state,
/// so one instance may be shared by concurrent shards as long as each call
/// site passes its own scratch buffer.
class KernelEvaluator {
public:
  KernelEvaluator() = default;

  /// Compiles \p Krn for \p Engine at vector width \p Lanes. Never fails:
  /// the Specialized tier degrades to the fused batched tape when no
  /// specialization pattern matches, the Jit tier degrades to Specialized
  /// when no host compiler is available (or the runtime compile fails),
  /// and Auto picks a tier per kernel. The *effective* tier is always
  /// observable through \c tier().
  static KernelEvaluator compile(const Kernel &Krn, KernelEngine Engine,
                                 int Lanes);

  /// The tier that actually executes: compile(Specialized) reports Batched
  /// when no specialization matched, compile(Jit) reports Specialized or
  /// Batched when the runtime compile fell back, and compile(Auto) reports
  /// whatever the per-kernel policy chose. Never reports Auto.
  KernelEngine tier() const { return Tier; }

  /// Name of the matched specialization ("weighted-sum-chain", "jit"), or
  /// empty.
  std::string_view specialization() const { return Specialization; }

  /// Scratch doubles evaluate() needs (may be zero for specialized tiers).
  size_t scratchDoubles() const { return ScratchDoubles; }

  /// Instructions in the compiled tape (post folding/fusion/DRE). For the
  /// scalar tier this is the original kernel tape length.
  size_t tapeLength() const { return TapeLen; }

  /// Vector width this evaluator was compiled for.
  int lanes() const { return Lanes; }

  /// Evaluates all lanes of one cycle. \p SoAInputs holds the gathered
  /// input slots in structure-of-arrays layout (slot-major:
  /// SoAInputs[Slot * Lanes + Lane]); \p Out receives lanes() results;
  /// \p Scratch must have at least scratchDoubles() entries.
  void evaluate(const double *SoAInputs, double *Out, double *Scratch) const;

private:
  const Kernel *Krn = nullptr; ///< Scalar tier delegate.
  KernelEngine Tier = KernelEngine::Scalar;
  int Lanes = 1;
  DataType Type = DataType::Float32;
  int32_t NumRegs = 0;
  int32_t OutReg = -1;
  int32_t NumInputs = 0;
  size_t ScratchDoubles = 0;
  size_t TapeLen = 0;
  std::vector<TapeOp> Ops;        ///< Batched tape.
  std::vector<ChainTerm> Chain;   ///< Specialized chain (if matched).
  std::string_view Specialization; ///< Static string; never dangles.

  /// Jit tier: the dlsym'd entry point plus a shared handle that keeps
  /// the dlopened object mapped for as long as any evaluator (or the
  /// process-wide cache) references it.
  void (*JitFn)(const double *SoAInputs, double *Out) = nullptr;
  std::shared_ptr<void> JitHandle;
};

} // namespace compute
} // namespace stencilflow

#endif // STENCILFLOW_COMPUTE_ENGINE_H
