//===- compute/Bytecode.cpp - Stencil compute bytecode ----------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "compute/Bytecode.h"

#include <cassert>
#include <cmath>

using namespace stencilflow;
using namespace stencilflow::compute;

double compute::roundToType(double Value, DataType Type) {
  switch (Type) {
  case DataType::Float32:
    return static_cast<double>(static_cast<float>(Value));
  case DataType::Float64:
    return Value;
  case DataType::Int32:
    return static_cast<double>(static_cast<int32_t>(Value));
  case DataType::Int64:
    return static_cast<double>(static_cast<int64_t>(Value));
  }
  return Value;
}

double compute::evalOpUnrounded(OpCode Op, double A, double B, double C) {
  switch (Op) {
  case OpCode::Neg:
    return -A;
  case OpCode::Not:
    return A == 0.0 ? 1.0 : 0.0;
  case OpCode::Add:
    return A + B;
  case OpCode::Sub:
    return A - B;
  case OpCode::Mul:
    return A * B;
  case OpCode::Div:
    return A / B;
  case OpCode::Lt:
    return A < B ? 1.0 : 0.0;
  case OpCode::Le:
    return A <= B ? 1.0 : 0.0;
  case OpCode::Gt:
    return A > B ? 1.0 : 0.0;
  case OpCode::Ge:
    return A >= B ? 1.0 : 0.0;
  case OpCode::Eq:
    return A == B ? 1.0 : 0.0;
  case OpCode::Ne:
    return A != B ? 1.0 : 0.0;
  case OpCode::And:
    return (A != 0.0 && B != 0.0) ? 1.0 : 0.0;
  case OpCode::Or:
    return (A != 0.0 || B != 0.0) ? 1.0 : 0.0;
  case OpCode::Sqrt:
    return std::sqrt(A);
  case OpCode::Abs:
    return std::fabs(A);
  case OpCode::Exp:
    return std::exp(A);
  case OpCode::Log:
    return std::log(A);
  case OpCode::Sin:
    return std::sin(A);
  case OpCode::Cos:
    return std::cos(A);
  case OpCode::Tanh:
    return std::tanh(A);
  case OpCode::Floor:
    return std::floor(A);
  case OpCode::Ceil:
    return std::ceil(A);
  case OpCode::Min:
    return std::fmin(A, B);
  case OpCode::Max:
    return std::fmax(A, B);
  case OpCode::Pow:
    return std::pow(A, B);
  case OpCode::Select:
    return A != 0.0 ? B : C;
  case OpCode::Const:
  case OpCode::Input:
    break;
  }
  assert(false && "evalOpUnrounded on a non-computing opcode");
  return 0.0;
}

std::string_view compute::opCodeName(OpCode Op) {
  switch (Op) {
  case OpCode::Const:
    return "const";
  case OpCode::Input:
    return "input";
  case OpCode::Neg:
    return "neg";
  case OpCode::Not:
    return "not";
  case OpCode::Add:
    return "add";
  case OpCode::Sub:
    return "sub";
  case OpCode::Mul:
    return "mul";
  case OpCode::Div:
    return "div";
  case OpCode::Lt:
    return "lt";
  case OpCode::Le:
    return "le";
  case OpCode::Gt:
    return "gt";
  case OpCode::Ge:
    return "ge";
  case OpCode::Eq:
    return "eq";
  case OpCode::Ne:
    return "ne";
  case OpCode::And:
    return "and";
  case OpCode::Or:
    return "or";
  case OpCode::Sqrt:
    return "sqrt";
  case OpCode::Abs:
    return "abs";
  case OpCode::Exp:
    return "exp";
  case OpCode::Log:
    return "log";
  case OpCode::Sin:
    return "sin";
  case OpCode::Cos:
    return "cos";
  case OpCode::Tanh:
    return "tanh";
  case OpCode::Floor:
    return "floor";
  case OpCode::Ceil:
    return "ceil";
  case OpCode::Min:
    return "min";
  case OpCode::Max:
    return "max";
  case OpCode::Pow:
    return "pow";
  case OpCode::Select:
    return "select";
  }
  return "<invalid>";
}

unsigned compute::opCodeArity(OpCode Op) {
  switch (Op) {
  case OpCode::Const:
  case OpCode::Input:
    return 0;
  case OpCode::Neg:
  case OpCode::Not:
  case OpCode::Sqrt:
  case OpCode::Abs:
  case OpCode::Exp:
  case OpCode::Log:
  case OpCode::Sin:
  case OpCode::Cos:
  case OpCode::Tanh:
  case OpCode::Floor:
  case OpCode::Ceil:
    return 1;
  case OpCode::Select:
    return 3;
  default:
    return 2;
  }
}

LatencyTable::LatencyTable() {
  // Conservative defaults modeling hardened fp32 units on a Stratix
  // 10-class device; see Sec. IV-B ("default to conservative values to
  // account for the worst case scenario").
  auto set = [&](OpCode Op, int64_t Cycles) { Latencies[Op] = Cycles; };
  set(OpCode::Const, 0);
  set(OpCode::Input, 0);
  set(OpCode::Neg, 1);
  set(OpCode::Not, 1);
  set(OpCode::Add, 4);
  set(OpCode::Sub, 4);
  set(OpCode::Mul, 4);
  set(OpCode::Div, 16);
  set(OpCode::Lt, 2);
  set(OpCode::Le, 2);
  set(OpCode::Gt, 2);
  set(OpCode::Ge, 2);
  set(OpCode::Eq, 2);
  set(OpCode::Ne, 2);
  set(OpCode::And, 1);
  set(OpCode::Or, 1);
  set(OpCode::Sqrt, 18);
  set(OpCode::Abs, 1);
  set(OpCode::Exp, 24);
  set(OpCode::Log, 24);
  set(OpCode::Sin, 30);
  set(OpCode::Cos, 30);
  set(OpCode::Tanh, 30);
  set(OpCode::Floor, 2);
  set(OpCode::Ceil, 2);
  set(OpCode::Min, 2);
  set(OpCode::Max, 2);
  set(OpCode::Pow, 40);
  set(OpCode::Select, 1);
}

OpCensus &OpCensus::operator+=(const OpCensus &Other) {
  Additions += Other.Additions;
  Multiplications += Other.Multiplications;
  Divisions += Other.Divisions;
  SquareRoots += Other.SquareRoots;
  MinMax += Other.MinMax;
  Comparisons += Other.Comparisons;
  Branches += Other.Branches;
  Transcendental += Other.Transcendental;
  this->Other += Other.Other;
  return *this;
}
