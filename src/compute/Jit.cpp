//===- compute/Jit.cpp - Runtime C++ codegen for kernel tapes -----------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
// The emitted translation unit is self-contained (libm prototypes are
// declared inline, constants travel as bit patterns) so the runtime
// compile needs no include path, and it is built with -ffp-contract=off —
// the same rounding discipline as this library — so the JIT'd code is
// bit-exact with the interpreter tiers.
//
//===----------------------------------------------------------------------===//

#include "compute/Jit.h"

#include "support/StringUtils.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <utility>

#include <dlfcn.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

using namespace stencilflow;
using namespace stencilflow::compute;
using namespace stencilflow::compute::jit;

namespace {

bool isExecutable(const std::string &Path) {
  return !Path.empty() && ::access(Path.c_str(), X_OK) == 0;
}

/// Resolves \p Name against PATH (or directly when it contains a slash).
std::string findExecutable(const std::string &Name) {
  if (Name.empty())
    return "";
  if (Name.find('/') != std::string::npos)
    return isExecutable(Name) ? Name : "";
  const char *PathEnv = std::getenv("PATH");
  if (!PathEnv)
    return "";
  std::string Dirs(PathEnv);
  size_t Pos = 0;
  while (Pos <= Dirs.size()) {
    size_t End = Dirs.find(':', Pos);
    if (End == std::string::npos)
      End = Dirs.size();
    std::string Candidate = Dirs.substr(Pos, End - Pos);
    if (!Candidate.empty()) {
      Candidate += "/" + Name;
      if (isExecutable(Candidate))
        return Candidate;
    }
    Pos = End + 1;
  }
  return "";
}

/// The bit pattern of a double (for emitting constants exactly).
uint64_t bitsOf(double Value) {
  uint64_t Pattern;
  std::memcpy(&Pattern, &Value, sizeof(Pattern));
  return Pattern;
}

/// FNV-1a over a byte span.
void hashBytes(uint64_t &H, const void *Data, size_t Size) {
  const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != Size; ++I) {
    H ^= Bytes[I];
    H *= 0x100000001B3ULL;
  }
}

void hashInt(uint64_t &H, int64_t Value) { hashBytes(H, &Value, sizeof(Value)); }

/// The process-wide shared-object cache, keyed by (tape hash, lanes). The
/// element type is folded into the hash. Guarded by one mutex — compiles
/// serialize, which also keeps temp-dir traffic tame when tuner workers
/// build machines concurrently.
struct Cache {
  std::mutex Mutex;
  std::map<std::pair<uint64_t, int>, JitKernel> Entries;
  CacheStats Stats;
};

Cache &cache() {
  static Cache C;
  return C;
}

/// Writes \p Text to \p Path; false on any short write.
bool writeFile(const std::string &Path, const std::string &Text) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), File);
  bool Closed = std::fclose(File) == 0;
  return Written == Text.size() && Closed;
}

/// Wall-clock bound on one compiler invocation, from the
/// STENCILFLOW_JIT_TIMEOUT_S environment variable (seconds; 0 or a
/// non-numeric value disables the bound). A hung or thrashing host
/// compiler must degrade the run to the Specialized tier, not wedge it.
double jitTimeoutSeconds() {
  const char *Env = std::getenv("STENCILFLOW_JIT_TIMEOUT_S");
  if (!Env || !*Env)
    return 60.0;
  char *End = nullptr;
  double Seconds = std::strtod(Env, &End);
  if (End == Env || Seconds < 0.0)
    return 0.0;
  return Seconds;
}

/// Runs `Compiler -O2 -fPIC -shared -ffp-contract=off
/// -fno-tree-vectorize -o So Cpp` directly (no shell) in its own process
/// group, killing the whole group if it outlives the wall-clock budget.
/// Returns true on a zero exit; sets \p TimedOut when the bound fired.
///
/// -fno-tree-vectorize is load-bearing for bit-exactness, not a tuning
/// choice: GCC 12's vectorizer folds the (double)(float)x narrowing
/// round-trip that implements float32 rounding (SF_R) into a plain copy
/// when it vectorizes the lane loop (observed as cvtpd2ps/cvtps2pd
/// collapsing to movupd at Lanes >= 2), so jitted float32 kernels
/// reading float64 operands silently skipped the narrowing and diverged
/// from every other tier. Found by the differential fuzzer (sf_fuzz).
bool runCompiler(const std::string &Compiler, const std::string &So,
                 const std::string &Cpp, bool &TimedOut) {
  TimedOut = false;
  double TimeoutS = jitTimeoutSeconds();
  pid_t Pid = ::fork();
  if (Pid < 0)
    return false;
  if (Pid == 0) {
    // Child: own process group, so a timeout kill reaps cc1plus/ld too.
    ::setpgid(0, 0);
    int Null = ::open("/dev/null", O_WRONLY);
    if (Null >= 0) {
      ::dup2(Null, STDOUT_FILENO);
      ::dup2(Null, STDERR_FILENO);
      ::close(Null);
    }
    ::execl(Compiler.c_str(), Compiler.c_str(), "-O2", "-fPIC", "-shared",
            "-ffp-contract=off", "-fno-tree-vectorize", "-o", So.c_str(),
            Cpp.c_str(), static_cast<char *>(nullptr));
    ::_exit(127);
  }
  ::setpgid(Pid, Pid); // Also from the parent: close the fork/exec race.

  const long PollNs = 10 * 1000 * 1000; // 10 ms.
  double WaitedS = 0.0;
  for (;;) {
    int Status = 0;
    pid_t Done = ::waitpid(Pid, &Status, WNOHANG);
    if (Done == Pid)
      return WIFEXITED(Status) && WEXITSTATUS(Status) == 0;
    if (Done < 0 && errno != EINTR)
      return false;
    if (TimeoutS > 0.0 && WaitedS >= TimeoutS) {
      TimedOut = true;
      ::kill(-Pid, SIGKILL);
      ::waitpid(Pid, &Status, 0);
      return false;
    }
    struct timespec Ts = {0, PollNs};
    ::nanosleep(&Ts, nullptr);
    WaitedS += static_cast<double>(PollNs) * 1e-9;
  }
}

/// Builds \p Source into a shared object and returns the dlopened,
/// dlsym'd entry point; empty on any failure. All temporary files are
/// removed before returning (the mapping survives the unlink).
JitKernel buildSharedObject(const std::string &Compiler,
                            const std::string &Source, bool &TimedOut) {
  TimedOut = false;
  const char *TmpEnv = std::getenv("TMPDIR");
  std::string Template =
      std::string(TmpEnv && *TmpEnv ? TmpEnv : "/tmp") + "/sf-jit-XXXXXX";
  std::vector<char> Dir(Template.begin(), Template.end());
  Dir.push_back('\0');
  if (!::mkdtemp(Dir.data()))
    return {};
  std::string Base(Dir.data());
  std::string Cpp = Base + "/kernel.cpp";
  std::string So = Base + "/kernel.so";
  auto Cleanup = [&]() {
    ::unlink(Cpp.c_str());
    ::unlink(So.c_str());
    ::rmdir(Base.c_str());
  };

  JitKernel Result;
  if (!writeFile(Cpp, Source)) {
    Cleanup();
    return Result;
  }
  // Same contraction discipline as sf_compute: two explicit roundings in
  // the fused ops must stay two roundings.
  if (!runCompiler(Compiler, So, Cpp, TimedOut)) {
    Cleanup();
    return Result;
  }
  void *Handle = ::dlopen(So.c_str(), RTLD_NOW | RTLD_LOCAL);
  Cleanup(); // The mapping stays valid after the unlink.
  if (!Handle)
    return Result;
  void *Sym = ::dlsym(Handle, "sf_jit_eval");
  if (!Sym) {
    ::dlclose(Handle);
    return Result;
  }
  Result.Fn = reinterpret_cast<JitFunction>(Sym);
  Result.Handle =
      std::shared_ptr<void>(Handle, [](void *H) { ::dlclose(H); });
  return Result;
}

} // namespace

std::string jit::compilerPath() {
  // The override wins outright: pointing it at a nonexistent binary is the
  // supported way to force the no-compiler fallback (tests use this).
  if (const char *Override = std::getenv("STENCILFLOW_JIT_CXX"))
    return findExecutable(Override);
  for (const char *Candidate : {"c++", "g++", "clang++"}) {
    std::string Found = findExecutable(Candidate);
    if (!Found.empty())
      return Found;
  }
  return "";
}

bool jit::compilerAvailable() { return !compilerPath().empty(); }

uint64_t jit::hashTape(const std::vector<TapeOp> &Ops, int32_t OutReg,
                       DataType Type) {
  uint64_t H = 0xCBF29CE484222325ULL;
  hashInt(H, static_cast<int64_t>(Type));
  hashInt(H, OutReg);
  hashInt(H, static_cast<int64_t>(Ops.size()));
  for (const TapeOp &O : Ops) {
    hashInt(H, static_cast<int64_t>(O.Op));
    hashInt(H, O.Dst);
    hashInt(H, O.A);
    hashInt(H, O.B);
    hashInt(H, O.C);
    hashInt(H, O.InputIndex);
    hashInt(H, static_cast<int64_t>(bitsOf(O.Constant)));
  }
  return H;
}

std::string jit::emitTapeSource(const std::vector<TapeOp> &Ops,
                                int32_t OutReg, DataType Type, int Lanes) {
  std::string Out;
  Out += "// StencilFlow JIT'd kernel tape; built with -ffp-contract=off\n"
         "// and -fno-tree-vectorize (the vectorizer folds the SF_R\n"
         "// float32 narrowing round-trip into a copy; see runCompiler).\n";
  Out += formatString("// ops=%zu lanes=%d type=%d\n", Ops.size(), Lanes,
                      static_cast<int>(Type));
  // Self-contained libm prototypes: no include path needed at runtime.
  Out += "extern \"C\" {\n"
         "double sqrt(double); double fabs(double); double exp(double);\n"
         "double log(double); double sin(double); double cos(double);\n"
         "double tanh(double); double floor(double); double ceil(double);\n"
         "double fmin(double, double); double fmax(double, double);\n"
         "double pow(double, double);\n"
         "}\n";
  // The per-type rounding rule, identical to Engine.cpp's Round policies.
  switch (Type) {
  case DataType::Float32:
    Out += "#define SF_R(x) ((double)(float)(x))\n";
    break;
  case DataType::Float64:
    Out += "#define SF_R(x) (x)\n";
    break;
  case DataType::Int32:
    Out += "#define SF_R(x) ((double)(__INT32_TYPE__)(x))\n";
    break;
  case DataType::Int64:
    Out += "#define SF_R(x) ((double)(__INT64_TYPE__)(x))\n";
    break;
  }
  // Constants as exact bit patterns — decimal round-trips could perturb
  // the last ulp.
  Out += "static inline double sf_c(unsigned long long Bits) {\n"
         "  double Value;\n"
         "  __builtin_memcpy(&Value, &Bits, sizeof(Value));\n"
         "  return Value;\n"
         "}\n";
  Out += "extern \"C\" void sf_jit_eval(const double *__restrict__ In,\n"
         "                             double *__restrict__ Out) {\n";
  Out += formatString("  for (int L = 0; L != %d; ++L) {\n", Lanes);

  auto reg = [](int32_t R) { return formatString("r%d", R); };
  for (const TapeOp &O : Ops) {
    std::string A = reg(O.A), B = reg(O.B), C = reg(O.C);
    std::string Expr;
    switch (O.Op) {
    case TapeOp::Kind::Const:
      Expr = formatString("sf_c(0x%016llxULL)",
                          static_cast<unsigned long long>(bitsOf(O.Constant)));
      break;
    case TapeOp::Kind::Input:
      Expr = formatString("SF_R(In[%d + L])", O.InputIndex * Lanes);
      break;
    case TapeOp::Kind::Neg:
      Expr = "SF_R(-" + A + ")";
      break;
    case TapeOp::Kind::Not:
      Expr = "SF_R(" + A + " == 0.0 ? 1.0 : 0.0)";
      break;
    case TapeOp::Kind::Add:
      Expr = "SF_R(" + A + " + " + B + ")";
      break;
    case TapeOp::Kind::Sub:
      Expr = "SF_R(" + A + " - " + B + ")";
      break;
    case TapeOp::Kind::Mul:
      Expr = "SF_R(" + A + " * " + B + ")";
      break;
    case TapeOp::Kind::Div:
      Expr = "SF_R(" + A + " / " + B + ")";
      break;
    case TapeOp::Kind::Lt:
      Expr = "SF_R(" + A + " < " + B + " ? 1.0 : 0.0)";
      break;
    case TapeOp::Kind::Le:
      Expr = "SF_R(" + A + " <= " + B + " ? 1.0 : 0.0)";
      break;
    case TapeOp::Kind::Gt:
      Expr = "SF_R(" + A + " > " + B + " ? 1.0 : 0.0)";
      break;
    case TapeOp::Kind::Ge:
      Expr = "SF_R(" + A + " >= " + B + " ? 1.0 : 0.0)";
      break;
    case TapeOp::Kind::Eq:
      Expr = "SF_R(" + A + " == " + B + " ? 1.0 : 0.0)";
      break;
    case TapeOp::Kind::Ne:
      Expr = "SF_R(" + A + " != " + B + " ? 1.0 : 0.0)";
      break;
    case TapeOp::Kind::And:
      Expr = "SF_R((" + A + " != 0.0 && " + B + " != 0.0) ? 1.0 : 0.0)";
      break;
    case TapeOp::Kind::Or:
      Expr = "SF_R((" + A + " != 0.0 || " + B + " != 0.0) ? 1.0 : 0.0)";
      break;
    case TapeOp::Kind::Sqrt:
      Expr = "SF_R(sqrt(" + A + "))";
      break;
    case TapeOp::Kind::Abs:
      Expr = "SF_R(fabs(" + A + "))";
      break;
    case TapeOp::Kind::Exp:
      Expr = "SF_R(exp(" + A + "))";
      break;
    case TapeOp::Kind::Log:
      Expr = "SF_R(log(" + A + "))";
      break;
    case TapeOp::Kind::Sin:
      Expr = "SF_R(sin(" + A + "))";
      break;
    case TapeOp::Kind::Cos:
      Expr = "SF_R(cos(" + A + "))";
      break;
    case TapeOp::Kind::Tanh:
      Expr = "SF_R(tanh(" + A + "))";
      break;
    case TapeOp::Kind::Floor:
      Expr = "SF_R(floor(" + A + "))";
      break;
    case TapeOp::Kind::Ceil:
      Expr = "SF_R(ceil(" + A + "))";
      break;
    case TapeOp::Kind::Min:
      Expr = "SF_R(fmin(" + A + ", " + B + "))";
      break;
    case TapeOp::Kind::Max:
      Expr = "SF_R(fmax(" + A + ", " + B + "))";
      break;
    case TapeOp::Kind::Pow:
      Expr = "SF_R(pow(" + A + ", " + B + "))";
      break;
    case TapeOp::Kind::Select:
      Expr = "SF_R(" + A + " != 0.0 ? " + B + " : " + C + ")";
      break;
    case TapeOp::Kind::MulAdd:
      Expr = "SF_R(" + A + " + SF_R(" + B + " * " + C + "))";
      break;
    case TapeOp::Kind::MulSub:
      Expr = "SF_R(" + A + " - SF_R(" + B + " * " + C + "))";
      break;
    case TapeOp::Kind::MulRSub:
      Expr = "SF_R(SF_R(" + B + " * " + C + ") - " + A + ")";
      break;
    }
    Out += "    double " + reg(O.Dst) + " = " + Expr + ";\n";
    // Every register is assigned exactly once per lane; dead ones were
    // already eliminated, so no (void) silencing is needed.
  }
  Out += "    Out[L] = " + reg(OutReg) + ";\n";
  Out += "  }\n}\n";
  return Out;
}

JitKernel jit::compileTape(const std::vector<TapeOp> &Ops, int32_t OutReg,
                           DataType Type, int Lanes) {
  std::pair<uint64_t, int> Key(hashTape(Ops, OutReg, Type), Lanes);
  Cache &C = cache();
  std::lock_guard<std::mutex> Lock(C.Mutex);
  auto It = C.Entries.find(Key);
  if (It != C.Entries.end()) {
    ++C.Stats.Hits;
    return It->second;
  }
  std::string Compiler = compilerPath();
  if (Compiler.empty()) {
    ++C.Stats.Failures;
    return {};
  }
  bool TimedOut = false;
  JitKernel Built = buildSharedObject(
      Compiler, emitTapeSource(Ops, OutReg, Type, Lanes), TimedOut);
  if (!Built) {
    // Not cached: a transient failure (full /tmp, OOM compiler) should not
    // poison later attempts, and the common miss (no compiler) never gets
    // this far.
    ++C.Stats.Failures;
    if (TimedOut)
      ++C.Stats.Timeouts;
    return Built;
  }
  ++C.Stats.Misses;
  C.Entries.emplace(Key, Built);
  return Built;
}

CacheStats jit::cacheStats() {
  Cache &C = cache();
  std::lock_guard<std::mutex> Lock(C.Mutex);
  CacheStats Stats = C.Stats;
  Stats.Entries = C.Entries.size();
  return Stats;
}

KernelEngine jit::chooseTierForAuto(size_t TapeLen, bool ChainMatched,
                                    int Lanes) {
  // A bare Input/Const leaf: the chain evaluator's Init term (or a
  // two-op batched tape) is already a plain copy — not worth a compile.
  if (TapeLen <= 1)
    return KernelEngine::Specialized;
  // Very short matched chains at W=1 have near-zero dispatch overhead
  // (bench: 15 ns for the 5-term Laplacian); the JIT's win is amortizing
  // dispatch over lanes and terms, so spend the compile only when there
  // is something to amortize.
  if (Lanes == 1 && ChainMatched && TapeLen <= 4)
    return KernelEngine::Specialized;
  return compilerAvailable() ? KernelEngine::Jit : KernelEngine::Specialized;
}
