//===- compute/Kernel.cpp - Compiled stencil kernels -------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "compute/Kernel.h"

#include "support/StringUtils.h"

#include <cmath>
#include <cstring>
#include <map>
#include <tuple>

using namespace stencilflow;
using namespace stencilflow::compute;

namespace {

OpCode binaryOpCode(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return OpCode::Add;
  case BinaryOp::Sub:
    return OpCode::Sub;
  case BinaryOp::Mul:
    return OpCode::Mul;
  case BinaryOp::Div:
    return OpCode::Div;
  case BinaryOp::Lt:
    return OpCode::Lt;
  case BinaryOp::Le:
    return OpCode::Le;
  case BinaryOp::Gt:
    return OpCode::Gt;
  case BinaryOp::Ge:
    return OpCode::Ge;
  case BinaryOp::Eq:
    return OpCode::Eq;
  case BinaryOp::Ne:
    return OpCode::Ne;
  case BinaryOp::And:
    return OpCode::And;
  case BinaryOp::Or:
    return OpCode::Or;
  }
  assert(false && "unknown binary op");
  return OpCode::Add;
}

OpCode intrinsicOpCode(Intrinsic Fn) {
  switch (Fn) {
  case Intrinsic::Sqrt:
    return OpCode::Sqrt;
  case Intrinsic::Abs:
    return OpCode::Abs;
  case Intrinsic::Exp:
    return OpCode::Exp;
  case Intrinsic::Log:
    return OpCode::Log;
  case Intrinsic::Sin:
    return OpCode::Sin;
  case Intrinsic::Cos:
    return OpCode::Cos;
  case Intrinsic::Tanh:
    return OpCode::Tanh;
  case Intrinsic::Floor:
    return OpCode::Floor;
  case Intrinsic::Ceil:
    return OpCode::Ceil;
  case Intrinsic::Min:
    return OpCode::Min;
  case Intrinsic::Max:
    return OpCode::Max;
  case Intrinsic::Pow:
    return OpCode::Pow;
  }
  assert(false && "unknown intrinsic");
  return OpCode::Sqrt;
}

/// Incrementally builds the instruction tape with value numbering.
class KernelBuilder {
public:
  KernelBuilder(const StencilNode &Node, const KernelOptions &Options)
      : Node(Node), Options(Options) {}

  Expected<int> build() {
    int OutputReg = -1;
    for (const Assignment &Stmt : Node.Code.Statements) {
      Expected<int> Reg = emitExpr(*Stmt.Value);
      if (!Reg)
        return Reg;
      Locals[Stmt.Target] = *Reg;
      OutputReg = *Reg;
    }
    return OutputReg;
  }

  std::vector<KernelInput> takeInputs() { return std::move(Inputs); }
  std::vector<Instruction> takeCode() { return std::move(Code); }

private:
  const StencilNode &Node;
  KernelOptions Options;
  std::vector<KernelInput> Inputs;
  std::vector<Instruction> Code;
  std::map<std::string, int> Locals;
  // Value numbering: (op, a, b, c, const-bits, input-index) -> register.
  std::map<std::tuple<OpCode, int, int, int, uint64_t, int>, int> Numbering;

  int intern(Instruction Inst) {
    uint64_t ConstBits;
    static_assert(sizeof(ConstBits) == sizeof(Inst.Constant));
    std::memcpy(&ConstBits, &Inst.Constant, sizeof(ConstBits));
    auto Key = std::make_tuple(Inst.Op, Inst.A, Inst.B, Inst.C, ConstBits,
                               Inst.InputIndex);
    if (Options.EnableCSE) {
      auto It = Numbering.find(Key);
      if (It != Numbering.end())
        return It->second;
    }
    int Reg = static_cast<int>(Code.size());
    Code.push_back(Inst);
    Numbering[Key] = Reg;
    return Reg;
  }

  int emitConst(double Value) {
    Instruction Inst;
    Inst.Op = OpCode::Const;
    Inst.Constant = roundToType(Value, Node.Type);
    return intern(Inst);
  }

  int emitInput(const std::string &Field, const Offset &Off) {
    int Index = -1;
    for (size_t I = 0, E = Inputs.size(); I != E; ++I)
      if (Inputs[I].Field == Field && Inputs[I].Off == Off)
        Index = static_cast<int>(I);
    if (Index < 0) {
      Index = static_cast<int>(Inputs.size());
      Inputs.push_back(KernelInput{Field, Off});
    }
    Instruction Inst;
    Inst.Op = OpCode::Input;
    Inst.InputIndex = Index;
    return intern(Inst);
  }

  int emitOp(OpCode Op, int A, int B = -1, int C = -1) {
    if (Options.EnableConstantFolding && isConstReg(A) &&
        (B < 0 || isConstReg(B)) && (C < 0 || isConstReg(C))) {
      double Folded =
          evalOpUnrounded(Op, constValue(A), B < 0 ? 0.0 : constValue(B),
                          C < 0 ? 0.0 : constValue(C));
      return emitConst(Folded);
    }
    Instruction Inst;
    Inst.Op = Op;
    Inst.A = A;
    Inst.B = B;
    Inst.C = C;
    return intern(Inst);
  }

  bool isConstReg(int Reg) const {
    return Code[static_cast<size_t>(Reg)].Op == OpCode::Const;
  }
  double constValue(int Reg) const {
    return Code[static_cast<size_t>(Reg)].Constant;
  }

  Expected<int> emitExpr(const Expr &E) {
    switch (E.kind()) {
    case ExprKind::Literal:
      return emitConst(cast<LiteralExpr>(&E)->value());
    case ExprKind::FieldAccess: {
      const auto *Access = cast<FieldAccessExpr>(&E);
      return emitInput(Access->field(), Access->offset());
    }
    case ExprKind::LocalRef: {
      const auto *Ref = cast<LocalRefExpr>(&E);
      auto It = Locals.find(Ref->name());
      if (It == Locals.end())
        return makeError("stencil '" + Node.Name +
                         "': unresolved local '" + Ref->name() +
                         "' (semantic analysis must run before compilation)");
      return It->second;
    }
    case ExprKind::Unary: {
      const auto *Unary = cast<UnaryExpr>(&E);
      Expected<int> Operand = emitExpr(Unary->operand());
      if (!Operand)
        return Operand;
      OpCode Op = Unary->op() == UnaryOp::Neg ? OpCode::Neg : OpCode::Not;
      return emitOp(Op, *Operand);
    }
    case ExprKind::Binary: {
      const auto *Binary = cast<BinaryExpr>(&E);
      Expected<int> LHS = emitExpr(Binary->lhs());
      if (!LHS)
        return LHS;
      Expected<int> RHS = emitExpr(Binary->rhs());
      if (!RHS)
        return RHS;
      return emitOp(binaryOpCode(Binary->op()), *LHS, *RHS);
    }
    case ExprKind::Call: {
      const auto *Call = cast<CallExpr>(&E);
      std::vector<int> Args;
      for (const ExprPtr &Arg : Call->args()) {
        Expected<int> Reg = emitExpr(*Arg);
        if (!Reg)
          return Reg;
        Args.push_back(*Reg);
      }
      OpCode Op = intrinsicOpCode(Call->intrinsic());
      return emitOp(Op, Args[0], Args.size() > 1 ? Args[1] : -1);
    }
    case ExprKind::Select: {
      const auto *Select = cast<SelectExpr>(&E);
      Expected<int> Cond = emitExpr(Select->condition());
      if (!Cond)
        return Cond;
      Expected<int> TrueValue = emitExpr(Select->trueValue());
      if (!TrueValue)
        return TrueValue;
      Expected<int> FalseValue = emitExpr(Select->falseValue());
      if (!FalseValue)
        return FalseValue;
      return emitOp(OpCode::Select, *Cond, *TrueValue, *FalseValue);
    }
    }
    return makeError("unknown expression kind");
  }
};

} // namespace

Expected<Kernel> Kernel::compile(const StencilNode &Node,
                                 const KernelOptions &Options) {
  KernelBuilder Builder(Node, Options);
  Expected<int> OutputReg = Builder.build();
  if (!OutputReg)
    return OutputReg.takeError();
  Kernel Result;
  Result.Inputs = Builder.takeInputs();
  Result.Code = Builder.takeCode();
  Result.OutputRegister = *OutputReg;
  Result.Type = Node.Type;
  assert(Result.OutputRegister >= 0 && "empty kernel");
  return Result;
}

int Kernel::inputIndex(const std::string &Field, const Offset &Off) const {
  for (size_t I = 0, E = Inputs.size(); I != E; ++I)
    if (Inputs[I].Field == Field && Inputs[I].Off == Off)
      return static_cast<int>(I);
  return -1;
}

double Kernel::evaluate(const double *InputValues, double *Scratch) const {
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    const Instruction &Inst = Code[I];
    double Result;
    switch (Inst.Op) {
    case OpCode::Const:
      Result = Inst.Constant; // Already rounded at compile time.
      Scratch[I] = Result;
      continue;
    case OpCode::Input:
      Result = roundToType(
          InputValues[static_cast<size_t>(Inst.InputIndex)], Type);
      Scratch[I] = Result;
      continue;
    default:
      Result = evalOpUnrounded(Inst.Op, Scratch[Inst.A],
                               Inst.B >= 0 ? Scratch[Inst.B] : 0.0,
                               Inst.C >= 0 ? Scratch[Inst.C] : 0.0);
      Scratch[I] = roundToType(Result, Type);
    }
  }
  return Scratch[static_cast<size_t>(OutputRegister)];
}

double Kernel::evaluate(const std::vector<double> &InputValues) const {
  assert(InputValues.size() == Inputs.size() && "wrong number of inputs");
  std::vector<double> Scratch(Code.size());
  return evaluate(InputValues.data(), Scratch.data());
}

int64_t Kernel::criticalPathLatency(const LatencyTable &Latencies) const {
  std::vector<int64_t> Depth(Code.size(), 0);
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    const Instruction &Inst = Code[I];
    int64_t OperandDepth = 0;
    if (Inst.A >= 0)
      OperandDepth = std::max(OperandDepth, Depth[Inst.A]);
    if (Inst.B >= 0)
      OperandDepth = std::max(OperandDepth, Depth[Inst.B]);
    if (Inst.C >= 0)
      OperandDepth = std::max(OperandDepth, Depth[Inst.C]);
    Depth[I] = OperandDepth + Latencies.latency(Inst.Op);
  }
  return Depth[static_cast<size_t>(OutputRegister)];
}

OpCensus Kernel::census() const {
  OpCensus Census;
  for (const Instruction &Inst : Code) {
    switch (Inst.Op) {
    case OpCode::Const:
    case OpCode::Input:
      break;
    case OpCode::Add:
    case OpCode::Sub:
      ++Census.Additions;
      break;
    case OpCode::Mul:
      ++Census.Multiplications;
      break;
    case OpCode::Div:
      ++Census.Divisions;
      break;
    case OpCode::Sqrt:
      ++Census.SquareRoots;
      break;
    case OpCode::Min:
    case OpCode::Max:
      ++Census.MinMax;
      break;
    case OpCode::Lt:
    case OpCode::Le:
    case OpCode::Gt:
    case OpCode::Ge:
    case OpCode::Eq:
    case OpCode::Ne:
      ++Census.Comparisons;
      break;
    case OpCode::Select:
      ++Census.Branches;
      break;
    case OpCode::Exp:
    case OpCode::Log:
    case OpCode::Sin:
    case OpCode::Cos:
    case OpCode::Tanh:
    case OpCode::Pow:
      ++Census.Transcendental;
      break;
    case OpCode::Neg:
    case OpCode::Not:
    case OpCode::Abs:
    case OpCode::Floor:
    case OpCode::Ceil:
    case OpCode::And:
    case OpCode::Or:
      ++Census.Other;
      break;
    }
  }
  return Census;
}

std::string Kernel::dump() const {
  std::string Result;
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    const Instruction &Inst = Code[I];
    Result += formatString("r%zu = %s", I,
                           std::string(opCodeName(Inst.Op)).c_str());
    if (Inst.Op == OpCode::Const) {
      Result += formatString(" %g", Inst.Constant);
    } else if (Inst.Op == OpCode::Input) {
      const KernelInput &Input = Inputs[static_cast<size_t>(Inst.InputIndex)];
      Result += formatString(" %s%s", Input.Field.c_str(),
                             Input.Off.empty()
                                 ? ""
                                 : offsetToString(Input.Off).c_str());
    } else {
      if (Inst.A >= 0)
        Result += formatString(" r%d", Inst.A);
      if (Inst.B >= 0)
        Result += formatString(" r%d", Inst.B);
      if (Inst.C >= 0)
        Result += formatString(" r%d", Inst.C);
    }
    if (static_cast<int>(I) == OutputRegister)
      Result += "  ; output";
    Result += "\n";
  }
  return Result;
}
