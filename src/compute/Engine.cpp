//===- compute/Engine.cpp - Lane-batched kernel execution engine -------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
// This translation unit is compiled with -ffp-contract=off (see
// src/compute/CMakeLists.txt): the fused tape ops keep the scalar
// interpreter's two-rounding semantics, so letting the compiler contract
// a + b*c into an FMA would break bit-exactness for Float64 kernels.
//
//===----------------------------------------------------------------------===//

#include "compute/Engine.h"

#include "compute/Jit.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace stencilflow;
using namespace stencilflow::compute;

using Kind = TapeOp::Kind;

// The tape reuses OpCode's encoding for the shared prefix so translation is
// a cast and the chain matcher can reason about both uniformly.
static_assert(static_cast<int>(Kind::Const) == static_cast<int>(OpCode::Const));
static_assert(static_cast<int>(Kind::Input) == static_cast<int>(OpCode::Input));
static_assert(static_cast<int>(Kind::Add) == static_cast<int>(OpCode::Add));
static_assert(static_cast<int>(Kind::Div) == static_cast<int>(OpCode::Div));
static_assert(static_cast<int>(Kind::And) == static_cast<int>(OpCode::And));
static_assert(static_cast<int>(Kind::Sqrt) == static_cast<int>(OpCode::Sqrt));
static_assert(static_cast<int>(Kind::Tanh) == static_cast<int>(OpCode::Tanh));
static_assert(static_cast<int>(Kind::Pow) == static_cast<int>(OpCode::Pow));
static_assert(static_cast<int>(Kind::Select) ==
              static_cast<int>(OpCode::Select));

const char *compute::kernelEngineName(KernelEngine Engine) {
  switch (Engine) {
  case KernelEngine::Scalar:
    return "scalar";
  case KernelEngine::Batched:
    return "batched";
  case KernelEngine::Specialized:
    return "specialized";
  case KernelEngine::Jit:
    return "jit";
  case KernelEngine::Auto:
    return "auto";
  }
  return "<invalid>";
}

Expected<KernelEngine> compute::parseKernelEngine(std::string_view Name) {
  if (Name == "scalar")
    return KernelEngine::Scalar;
  if (Name == "batched")
    return KernelEngine::Batched;
  if (Name == "specialized")
    return KernelEngine::Specialized;
  if (Name == "jit")
    return KernelEngine::Jit;
  if (Name == "auto")
    return KernelEngine::Auto;
  return makeError("unknown kernel engine '" + std::string(Name) +
                   "' (expected scalar, batched, specialized, jit, or auto)");
}

namespace {

//===----------------------------------------------------------------------===//
// Rounding policies: one struct per DataType so the per-lane loops are
// instantiated with the rounding inlined (no per-element switch).
//===----------------------------------------------------------------------===//

struct RoundF32 {
  static double r(double V) { return static_cast<double>(static_cast<float>(V)); }
};
struct RoundF64 {
  static double r(double V) { return V; }
};
struct RoundI32 {
  static double r(double V) { return static_cast<double>(static_cast<int32_t>(V)); }
};
struct RoundI64 {
  static double r(double V) { return static_cast<double>(static_cast<int64_t>(V)); }
};

//===----------------------------------------------------------------------===//
// Batched tape interpreter: one dispatch per instruction, per-lane inner
// loops over a slot-major SoA register file (Scratch[Reg * W + Lane]).
//===----------------------------------------------------------------------===//

template <class R>
void runTape(const TapeOp *Ops, size_t N, const double *In, int W,
             double *Scratch, int32_t OutReg, double *Out) {
  for (size_t I = 0; I != N; ++I) {
    const TapeOp &O = Ops[I];
    double *D = Scratch + static_cast<size_t>(O.Dst) * W;
    const double *A = O.A >= 0 ? Scratch + static_cast<size_t>(O.A) * W : nullptr;
    const double *B = O.B >= 0 ? Scratch + static_cast<size_t>(O.B) * W : nullptr;
    const double *C = O.C >= 0 ? Scratch + static_cast<size_t>(O.C) * W : nullptr;
    switch (O.Op) {
    case Kind::Const:
      for (int L = 0; L != W; ++L)
        D[L] = O.Constant; // Already rounded at compile time.
      break;
    case Kind::Input: {
      const double *S = In + static_cast<size_t>(O.InputIndex) * W;
      for (int L = 0; L != W; ++L)
        D[L] = R::r(S[L]);
      break;
    }
    case Kind::Neg:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(-A[L]);
      break;
    case Kind::Not:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(A[L] == 0.0 ? 1.0 : 0.0);
      break;
    case Kind::Add:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(A[L] + B[L]);
      break;
    case Kind::Sub:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(A[L] - B[L]);
      break;
    case Kind::Mul:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(A[L] * B[L]);
      break;
    case Kind::Div:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(A[L] / B[L]);
      break;
    case Kind::Lt:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(A[L] < B[L] ? 1.0 : 0.0);
      break;
    case Kind::Le:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(A[L] <= B[L] ? 1.0 : 0.0);
      break;
    case Kind::Gt:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(A[L] > B[L] ? 1.0 : 0.0);
      break;
    case Kind::Ge:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(A[L] >= B[L] ? 1.0 : 0.0);
      break;
    case Kind::Eq:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(A[L] == B[L] ? 1.0 : 0.0);
      break;
    case Kind::Ne:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(A[L] != B[L] ? 1.0 : 0.0);
      break;
    case Kind::And:
      for (int L = 0; L != W; ++L)
        D[L] = R::r((A[L] != 0.0 && B[L] != 0.0) ? 1.0 : 0.0);
      break;
    case Kind::Or:
      for (int L = 0; L != W; ++L)
        D[L] = R::r((A[L] != 0.0 || B[L] != 0.0) ? 1.0 : 0.0);
      break;
    case Kind::Sqrt:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(std::sqrt(A[L]));
      break;
    case Kind::Abs:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(std::fabs(A[L]));
      break;
    case Kind::Exp:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(std::exp(A[L]));
      break;
    case Kind::Log:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(std::log(A[L]));
      break;
    case Kind::Sin:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(std::sin(A[L]));
      break;
    case Kind::Cos:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(std::cos(A[L]));
      break;
    case Kind::Tanh:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(std::tanh(A[L]));
      break;
    case Kind::Floor:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(std::floor(A[L]));
      break;
    case Kind::Ceil:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(std::ceil(A[L]));
      break;
    case Kind::Min:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(std::fmin(A[L], B[L]));
      break;
    case Kind::Max:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(std::fmax(A[L], B[L]));
      break;
    case Kind::Pow:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(std::pow(A[L], B[L]));
      break;
    case Kind::Select:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(A[L] != 0.0 ? B[L] : C[L]);
      break;
    case Kind::MulAdd:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(A[L] + R::r(B[L] * C[L]));
      break;
    case Kind::MulSub:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(A[L] - R::r(B[L] * C[L]));
      break;
    case Kind::MulRSub:
      for (int L = 0; L != W; ++L)
        D[L] = R::r(R::r(B[L] * C[L]) - A[L]);
      break;
    }
  }
  const double *Result = Scratch + static_cast<size_t>(OutReg) * W;
  std::copy(Result, Result + W, Out);
}

//===----------------------------------------------------------------------===//
// Specialized weighted-sum chain evaluator. The accumulator lives directly
// in Out[]; leaves are loaded (and re-rounded, which is idempotent) from
// the SoA input block, so no register file is needed at all.
//===----------------------------------------------------------------------===//

/// Applies a single-leaf term: Out[l] = op(Out[l], X_l) with the leaf source
/// branch hoisted out of the lane loop.
template <class R, class F>
inline void applyOneLeaf(const ChainTerm &T, const double *In, int W,
                         double *Out, F Op) {
  if (T.XInput >= 0) {
    const double *X = In + static_cast<size_t>(T.XInput) * W;
    for (int L = 0; L != W; ++L)
      Out[L] = Op(Out[L], R::r(X[L]));
  } else {
    const double X = T.XConst;
    for (int L = 0; L != W; ++L)
      Out[L] = Op(Out[L], X);
  }
}

/// Applies a two-leaf term: Out[l] = op(Out[l], X_l, Y_l).
template <class R, class F>
inline void applyTwoLeaf(const ChainTerm &T, const double *In, int W,
                         double *Out, F Op) {
  if (T.XInput >= 0 && T.YInput >= 0) {
    const double *X = In + static_cast<size_t>(T.XInput) * W;
    const double *Y = In + static_cast<size_t>(T.YInput) * W;
    for (int L = 0; L != W; ++L)
      Out[L] = Op(Out[L], R::r(X[L]), R::r(Y[L]));
  } else if (T.XInput >= 0) {
    const double *X = In + static_cast<size_t>(T.XInput) * W;
    const double Y = T.YConst;
    for (int L = 0; L != W; ++L)
      Out[L] = Op(Out[L], R::r(X[L]), Y);
  } else if (T.YInput >= 0) {
    const double X = T.XConst;
    const double *Y = In + static_cast<size_t>(T.YInput) * W;
    for (int L = 0; L != W; ++L)
      Out[L] = Op(Out[L], X, R::r(Y[L]));
  } else {
    const double X = T.XConst, Y = T.YConst;
    for (int L = 0; L != W; ++L)
      Out[L] = Op(Out[L], X, Y);
  }
}

template <class R>
void runChain(const ChainTerm *Terms, size_t N, const double *In, int W,
              double *Out) {
  for (size_t I = 0; I != N; ++I) {
    const ChainTerm &T = Terms[I];
    switch (T.Op) {
    case ChainTerm::Kind::Init:
      applyOneLeaf<R>(T, In, W, Out, [](double, double X) { return X; });
      break;
    case ChainTerm::Kind::Add:
      applyOneLeaf<R>(T, In, W, Out,
                      [](double Acc, double X) { return R::r(Acc + X); });
      break;
    case ChainTerm::Kind::Sub:
      applyOneLeaf<R>(T, In, W, Out,
                      [](double Acc, double X) { return R::r(Acc - X); });
      break;
    case ChainTerm::Kind::RSub:
      applyOneLeaf<R>(T, In, W, Out,
                      [](double Acc, double X) { return R::r(X - Acc); });
      break;
    case ChainTerm::Kind::Mul:
      applyOneLeaf<R>(T, In, W, Out,
                      [](double Acc, double X) { return R::r(Acc * X); });
      break;
    case ChainTerm::Kind::MulAdd:
      applyTwoLeaf<R>(T, In, W, Out, [](double Acc, double X, double Y) {
        return R::r(Acc + R::r(X * Y));
      });
      break;
    case ChainTerm::Kind::MulSub:
      applyTwoLeaf<R>(T, In, W, Out, [](double Acc, double X, double Y) {
        return R::r(Acc - R::r(X * Y));
      });
      break;
    case ChainTerm::Kind::MulRSub:
      applyTwoLeaf<R>(T, In, W, Out, [](double Acc, double X, double Y) {
        return R::r(R::r(X * Y) - Acc);
      });
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Tape compilation passes.
//===----------------------------------------------------------------------===//

bool isLeaf(const TapeOp &O) {
  return O.Op == Kind::Const || O.Op == Kind::Input;
}

/// Translates the kernel's SSA instruction tape (instruction I writes
/// register I) into the explicit-destination tape form.
std::vector<TapeOp> buildTape(const Kernel &Krn) {
  std::vector<TapeOp> Ops;
  Ops.reserve(Krn.instructions().size());
  for (size_t I = 0, E = Krn.instructions().size(); I != E; ++I) {
    const Instruction &Inst = Krn.instructions()[I];
    TapeOp O;
    O.Op = static_cast<Kind>(Inst.Op);
    O.Dst = static_cast<int32_t>(I);
    O.A = Inst.A;
    O.B = Inst.B;
    O.C = Inst.C;
    O.InputIndex = Inst.InputIndex;
    O.Constant = Inst.Constant;
    Ops.push_back(O);
  }
  return Ops;
}

/// Folds computing ops whose operands are all constants. KernelBuilder
/// already folds during emission, but CSE can still leave foldable ops when
/// folding was disabled at kernel-compile time, and it keeps the engine
/// correct for any tape source. Uses the exact same round(evalOpUnrounded)
/// sequence as the scalar interpreter, so folded constants are bit-exact.
void foldConstants(std::vector<TapeOp> &Ops, DataType Type) {
  for (TapeOp &O : Ops) {
    if (isLeaf(O))
      continue;
    auto constOf = [&](int32_t Reg, double &Value) {
      if (Reg < 0) {
        Value = 0.0;
        return true;
      }
      const TapeOp &Def = Ops[static_cast<size_t>(Reg)];
      if (Def.Op != Kind::Const)
        return false;
      Value = Def.Constant;
      return true;
    };
    double A, B, C;
    if (!constOf(O.A, A) || !constOf(O.B, B) || !constOf(O.C, C))
      continue;
    // Runs before fusion, so O.Op is always within the OpCode range here.
    double Folded =
        roundToType(evalOpUnrounded(static_cast<OpCode>(O.Op), A, B, C), Type);
    int32_t Dst = O.Dst;
    O = TapeOp();
    O.Op = Kind::Const;
    O.Dst = Dst;
    O.Constant = Folded;
  }
}

/// Fuses a single-use Mul feeding an Add/Sub into MulAdd/MulSub/MulRSub.
/// Only fuses positions where the fused form evaluates operands in the
/// exact same order as the two-instruction original (no commuting: a+b and
/// b+a can differ in NaN payload bits, and we promise bit-exactness).
void fuseMulOps(std::vector<TapeOp> &Ops, int32_t OutReg) {
  std::vector<int32_t> Uses(Ops.size(), 0);
  auto use = [&](int32_t Reg) {
    if (Reg >= 0)
      ++Uses[static_cast<size_t>(Reg)];
  };
  for (const TapeOp &O : Ops) {
    use(O.A);
    use(O.B);
    use(O.C);
  }
  use(OutReg); // The output register is live even with zero operand uses.

  auto singleUseMul = [&](int32_t Reg) {
    return Reg >= 0 && Uses[static_cast<size_t>(Reg)] == 1 &&
           Ops[static_cast<size_t>(Reg)].Op == Kind::Mul;
  };
  for (TapeOp &O : Ops) {
    if (O.Op == Kind::Add && singleUseMul(O.B)) {
      // a + (b*c)  ->  MulAdd(a, b, c)
      const TapeOp &M = Ops[static_cast<size_t>(O.B)];
      O.Op = Kind::MulAdd;
      O.B = M.A;
      O.C = M.B;
    } else if (O.Op == Kind::Sub && singleUseMul(O.B)) {
      // a - (b*c)  ->  MulSub(a, b, c)
      const TapeOp &M = Ops[static_cast<size_t>(O.B)];
      O.Op = Kind::MulSub;
      O.B = M.A;
      O.C = M.B;
    } else if (O.Op == Kind::Sub && singleUseMul(O.A)) {
      // (b*c) - a  ->  MulRSub(a, b, c)
      const TapeOp &M = Ops[static_cast<size_t>(O.A)];
      O.Op = Kind::MulRSub;
      O.A = O.B;
      O.B = M.A;
      O.C = M.B;
    }
  }
  // The consumed Mul ops are now dead; eliminateDead() removes them.
}

/// Removes ops whose destination never reaches the output register and
/// renumbers the surviving registers densely (better scratch locality).
/// Returns the renumbered output register.
int32_t eliminateDead(std::vector<TapeOp> &Ops, int32_t OutReg) {
  std::vector<char> Live(Ops.size(), 0);
  Live[static_cast<size_t>(OutReg)] = 1;
  for (size_t I = Ops.size(); I-- > 0;) {
    if (!Live[I])
      continue;
    const TapeOp &O = Ops[I];
    if (O.A >= 0)
      Live[static_cast<size_t>(O.A)] = 1;
    if (O.B >= 0)
      Live[static_cast<size_t>(O.B)] = 1;
    if (O.C >= 0)
      Live[static_cast<size_t>(O.C)] = 1;
  }
  std::vector<int32_t> NewReg(Ops.size(), -1);
  size_t Next = 0;
  for (size_t I = 0, E = Ops.size(); I != E; ++I) {
    if (!Live[I])
      continue;
    TapeOp O = Ops[I];
    O.Dst = static_cast<int32_t>(Next);
    if (O.A >= 0)
      O.A = NewReg[static_cast<size_t>(O.A)];
    if (O.B >= 0)
      O.B = NewReg[static_cast<size_t>(O.B)];
    if (O.C >= 0)
      O.C = NewReg[static_cast<size_t>(O.C)];
    NewReg[I] = static_cast<int32_t>(Next);
    Ops[Next++] = O;
  }
  Ops.resize(Next);
  return NewReg[static_cast<size_t>(OutReg)];
}

/// Pattern-matches a pure accumulator chain: every computing op extends the
/// running accumulator with leaf (Input/Const) operands, in tape order,
/// without commuting any operand. This covers weighted sums, Laplacians,
/// and most select-free arithmetic stencil cores after madd fusion.
bool matchChain(const std::vector<TapeOp> &Ops, int32_t OutReg,
                std::vector<ChainTerm> &Terms) {
  auto leaf = [&](int32_t Reg, int32_t &Input, double &Constant) {
    if (Reg < 0)
      return false;
    const TapeOp &Def = Ops[static_cast<size_t>(Reg)];
    if (Def.Op == Kind::Input) {
      Input = Def.InputIndex;
      return true;
    }
    if (Def.Op == Kind::Const) {
      Input = -1;
      Constant = Def.Constant;
      return true;
    }
    return false;
  };

  Terms.clear();
  int32_t Prev = -1; // Destination of the previous chain op.
  for (const TapeOp &O : Ops) {
    if (isLeaf(O))
      continue;
    ChainTerm First, Term;
    bool HasFirst = false;
    switch (O.Op) {
    case Kind::Add:
    case Kind::Sub:
    case Kind::Mul: {
      bool AccInA = Prev >= 0 && O.A == Prev;
      bool AccInB = Prev >= 0 && O.B == Prev;
      if (AccInA) {
        // acc OP leaf.
        if (!leaf(O.B, Term.XInput, Term.XConst))
          return false;
        Term.Op = O.Op == Kind::Add   ? ChainTerm::Kind::Add
                  : O.Op == Kind::Sub ? ChainTerm::Kind::Sub
                                      : ChainTerm::Kind::Mul;
      } else if (AccInB && O.Op == Kind::Sub) {
        // leaf - acc keeps operand order under RSub; leaf + acc and
        // leaf * acc commute in general (NaN payload selection), so those
        // only match under the Const carve-out below.
        if (!leaf(O.A, Term.XInput, Term.XConst))
          return false;
        Term.Op = ChainTerm::Kind::RSub;
      } else if (AccInB && (O.Op == Kind::Add || O.Op == Kind::Mul)) {
        // const + acc / const * acc: IEEE add/mul only depend on operand
        // order when both operands can be NaN (which NaN's payload wins).
        // A non-NaN constant rules that out, so evaluating as acc + const
        // / acc * const is bit-exact — this is what lets jacobi3d's final
        // `const * sum` specialize. Input leaves stay rejected: they can
        // carry NaNs at runtime.
        if (!leaf(O.A, Term.XInput, Term.XConst) || Term.XInput >= 0 ||
            std::isnan(Term.XConst))
          return false;
        Term.Op =
            O.Op == Kind::Add ? ChainTerm::Kind::Add : ChainTerm::Kind::Mul;
      } else if (Terms.empty()) {
        // Chain start: both operands are leaves.
        if (!leaf(O.A, First.XInput, First.XConst) ||
            !leaf(O.B, Term.XInput, Term.XConst))
          return false;
        First.Op = ChainTerm::Kind::Init;
        HasFirst = true;
        Term.Op = O.Op == Kind::Add   ? ChainTerm::Kind::Add
                  : O.Op == Kind::Sub ? ChainTerm::Kind::Sub
                                      : ChainTerm::Kind::Mul;
      } else {
        return false;
      }
      break;
    }
    case Kind::MulAdd:
    case Kind::MulSub:
    case Kind::MulRSub: {
      if (!leaf(O.B, Term.XInput, Term.XConst) ||
          !leaf(O.C, Term.YInput, Term.YConst))
        return false;
      if (Prev >= 0 && O.A == Prev) {
        // Accumulator feeds the addend side.
      } else if (Terms.empty() && leaf(O.A, First.XInput, First.XConst)) {
        First.Op = ChainTerm::Kind::Init;
        HasFirst = true;
      } else {
        return false;
      }
      Term.Op = O.Op == Kind::MulAdd   ? ChainTerm::Kind::MulAdd
                : O.Op == Kind::MulSub ? ChainTerm::Kind::MulSub
                                       : ChainTerm::Kind::MulRSub;
      break;
    }
    default:
      return false; // Div, comparisons, Select, intrinsics: no chain form.
    }
    if (HasFirst)
      Terms.push_back(First);
    Terms.push_back(Term);
    Prev = O.Dst;
  }

  if (Prev < 0) {
    // No computing ops at all: the output is a bare Input or Const.
    ChainTerm Init;
    Init.Op = ChainTerm::Kind::Init;
    if (!leaf(OutReg, Init.XInput, Init.XConst))
      return false;
    Terms.push_back(Init);
    return true;
  }
  // Every intermediate accumulator is consumed by the next chain op by
  // construction (leaf operands can only name Input/Const registers), so
  // the chain is valid iff it ends on the output register.
  return Prev == OutReg;
}

} // namespace

KernelEvaluator KernelEvaluator::compile(const Kernel &Krn,
                                         KernelEngine Engine, int Lanes) {
  assert(Lanes >= 1 && "vector width must be positive");
  KernelEvaluator E;
  E.Krn = &Krn;
  E.Lanes = Lanes;
  E.Type = Krn.elementType();
  E.NumInputs = static_cast<int32_t>(Krn.inputs().size());
  if (Engine == KernelEngine::Scalar) {
    E.Tier = KernelEngine::Scalar;
    E.NumRegs = static_cast<int32_t>(Krn.instructions().size());
    E.OutReg = Krn.outputRegister();
    E.TapeLen = Krn.instructions().size();
    // Kernel scratch plus one gathered lane column of inputs.
    E.ScratchDoubles = Krn.instructions().size() + Krn.inputs().size();
    return E;
  }

  std::vector<TapeOp> Ops = buildTape(Krn);
  int32_t OutReg = Krn.outputRegister();
  foldConstants(Ops, E.Type);
  // DRE before fusion: dead ops (unreferenced locals, folded operands)
  // would otherwise inflate use counts and block profitable fusions.
  OutReg = eliminateDead(Ops, OutReg);
  // Every tier above Batched runs on the fused tape; Batched stays unfused
  // so it keeps measuring the plain one-dispatch-per-OpCode interpreter.
  bool WantFusion = Engine != KernelEngine::Batched;
  if (WantFusion) {
    fuseMulOps(Ops, OutReg);
    OutReg = eliminateDead(Ops, OutReg); // Drop the consumed Mul ops.
  }

  E.Tier = KernelEngine::Batched;
  E.OutReg = OutReg;
  E.NumRegs = static_cast<int32_t>(Ops.size());
  E.TapeLen = Ops.size();
  E.ScratchDoubles = Ops.size() * static_cast<size_t>(Lanes);

  std::vector<ChainTerm> Terms;
  bool ChainMatched = WantFusion && matchChain(Ops, OutReg, Terms);

  // Resolve Auto to a concrete tier for this kernel's tape shape; tier()
  // reports the resolved choice, never Auto itself.
  KernelEngine Want = Engine;
  if (Engine == KernelEngine::Auto)
    Want = jit::chooseTierForAuto(Ops.size(), ChainMatched, Lanes);

  if (Want == KernelEngine::Jit) {
    if (jit::JitKernel Code = jit::compileTape(Ops, OutReg, E.Type, Lanes)) {
      E.Tier = KernelEngine::Jit;
      E.JitFn = Code.Fn;
      E.JitHandle = std::move(Code.Handle);
      E.Specialization = "jit";
      E.ScratchDoubles = 0; // Straight-line code: locals live in registers.
      return E;
    }
    Want = KernelEngine::Specialized; // No compiler (or build failed).
  }

  if (Want == KernelEngine::Specialized && ChainMatched) {
    E.Tier = KernelEngine::Specialized;
    E.Chain = std::move(Terms);
    E.Specialization = "weighted-sum-chain";
    E.ScratchDoubles = 0; // The accumulator lives in Out[].
    E.TapeLen = E.Chain.size();
    return E;
  }
  E.Ops = std::move(Ops);
  return E;
}

void KernelEvaluator::evaluate(const double *SoAInputs, double *Out,
                               double *Scratch) const {
  assert(Krn && "evaluate() on a default-constructed evaluator");
  switch (Tier) {
  case KernelEngine::Scalar: {
    // Reference tier: transpose each lane's column out of the SoA block and
    // run the scalar interpreter, exactly like the pre-engine simulator.
    double *Column = Scratch + Krn->instructions().size();
    for (int L = 0; L != Lanes; ++L) {
      for (int32_t S = 0; S != NumInputs; ++S)
        Column[S] = SoAInputs[static_cast<size_t>(S) * Lanes + L];
      Out[L] = Krn->evaluate(Column, Scratch);
    }
    return;
  }
  case KernelEngine::Batched:
    switch (Type) {
    case DataType::Float32:
      runTape<RoundF32>(Ops.data(), Ops.size(), SoAInputs, Lanes, Scratch,
                        OutReg, Out);
      return;
    case DataType::Float64:
      runTape<RoundF64>(Ops.data(), Ops.size(), SoAInputs, Lanes, Scratch,
                        OutReg, Out);
      return;
    case DataType::Int32:
      runTape<RoundI32>(Ops.data(), Ops.size(), SoAInputs, Lanes, Scratch,
                        OutReg, Out);
      return;
    case DataType::Int64:
      runTape<RoundI64>(Ops.data(), Ops.size(), SoAInputs, Lanes, Scratch,
                        OutReg, Out);
      return;
    }
    return;
  case KernelEngine::Specialized:
    switch (Type) {
    case DataType::Float32:
      runChain<RoundF32>(Chain.data(), Chain.size(), SoAInputs, Lanes, Out);
      return;
    case DataType::Float64:
      runChain<RoundF64>(Chain.data(), Chain.size(), SoAInputs, Lanes, Out);
      return;
    case DataType::Int32:
      runChain<RoundI32>(Chain.data(), Chain.size(), SoAInputs, Lanes, Out);
      return;
    case DataType::Int64:
      runChain<RoundI64>(Chain.data(), Chain.size(), SoAInputs, Lanes, Out);
      return;
    }
    return;
  case KernelEngine::Jit:
    JitFn(SoAInputs, Out);
    return;
  case KernelEngine::Auto:
    break; // compile() always resolves Auto to a concrete tier.
  }
  assert(false && "unreachable kernel tier");
}
