//===- compute/Jit.h - Runtime C++ codegen for kernel tapes -------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Jit kernel tier: emits one straight-line, vectorizable C++ function
/// for a unit's compiled tape (post folding / madd fusion / dead-register
/// elimination), builds it into a shared object with the host toolchain,
/// and dlopens it. This is the "one straight-line pipeline per node"
/// discipline of the paper applied to the simulator itself: no per-
/// instruction dispatch remains at all — the tape IS the machine code.
///
/// Bit-exactness: the emitted source performs the exact operation sequence
/// of the tape with an explicit \c roundToType cast after every op
/// (constants are embedded as pre-rounded bit patterns, never decimal
/// literals), and the runtime compile uses the same \c -ffp-contract=off
/// flag as the sf_compute library, so no FMA contraction can collapse the
/// fused ops' two roundings. The emitted function links against the same
/// process libm for the intrinsics.
///
/// Compiled objects are cached process-wide per (tape hash, vector width)
/// — two units with identical tapes at the same width share one shared
/// object, and repeated Machine::build calls (the tuner!) compile each
/// distinct tape once. Handles are reference-counted: the cache and every
/// evaluator hold a shared handle, and the object is dlclosed when the
/// last reference drops. Temporary source/object files are removed as soon
/// as the object is mapped.
///
/// Failure is never fatal: when no host compiler is found (or the compile,
/// dlopen, or dlsym step fails) \c compileTape returns an empty result and
/// KernelEvaluator::compile falls back to the Specialized tier. The
/// \c STENCILFLOW_JIT_CXX environment variable overrides compiler
/// discovery (useful to force the fallback path in tests: point it at a
/// nonexistent binary).
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_COMPUTE_JIT_H
#define STENCILFLOW_COMPUTE_JIT_H

#include "compute/Engine.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace stencilflow {
namespace compute {
namespace jit {

/// Signature of an emitted kernel: gathered SoA inputs in, one result per
/// lane out (lane count and rounding are baked into the code).
using JitFunction = void (*)(const double *SoAInputs, double *Out);

/// A successfully jitted tape: the entry point plus the shared handle
/// keeping the dlopened object mapped. Empty (Fn == nullptr) on failure.
struct JitKernel {
  JitFunction Fn = nullptr;
  std::shared_ptr<void> Handle;
  explicit operator bool() const { return Fn != nullptr; }
};

/// Path of the host C++ compiler the JIT would invoke: the
/// STENCILFLOW_JIT_CXX environment variable when set, otherwise the first
/// of c++/g++/clang++ found executable on PATH. Empty when none resolves.
std::string compilerPath();

/// True when \c compilerPath() resolves — the cheap availability probe
/// callers use to decide between the Jit tier and the fallback.
bool compilerAvailable();

/// Stable 64-bit hash of a compiled tape (ops, output register, element
/// type). Together with the vector width this keys the shared-object
/// cache; identical tapes hash identically across Machine::build calls.
uint64_t hashTape(const std::vector<TapeOp> &Ops, int32_t OutReg,
                  DataType Type);

/// Emits the C++ translation unit for \p Ops at vector width \p Lanes.
/// Exposed separately from \c compileTape so tests can golden-check the
/// rounding discipline without invoking a compiler.
std::string emitTapeSource(const std::vector<TapeOp> &Ops, int32_t OutReg,
                           DataType Type, int Lanes);

/// Compiles \p Ops to native code (or returns the cached object for this
/// (tape hash, width)). Returns an empty JitKernel when no compiler is
/// available or any build step fails; never throws, never leaks the
/// temporary files or the dlopen handle. Thread-safe.
JitKernel compileTape(const std::vector<TapeOp> &Ops, int32_t OutReg,
                      DataType Type, int Lanes);

/// Observability for tests and stats: cache hits/misses/failures since
/// process start, and the number of live cached objects. Timeouts counts
/// compiler invocations killed by the wall-clock bound (the
/// STENCILFLOW_JIT_TIMEOUT_S environment variable, default 60 seconds;
/// 0 disables); each timeout is also a failure.
struct CacheStats {
  size_t Entries = 0;
  size_t Hits = 0;
  size_t Misses = 0;
  size_t Failures = 0;
  size_t Timeouts = 0;
};
CacheStats cacheStats();

/// Per-kernel tier policy for KernelEngine::Auto, decided from the tape
/// shape and vector width: trivial tapes (a bare Input/Const leaf) and
/// very short matched chains at W=1 stay on the Specialized tier (the
/// chain evaluator's setup cost is already near zero there and no compile
/// is spawned); everything else prefers Jit when a compiler is available,
/// else Specialized. \p ChainMatched tells the policy whether the tape has
/// a chain form; \p TapeLen is the fused tape length.
KernelEngine chooseTierForAuto(size_t TapeLen, bool ChainMatched, int Lanes);

} // namespace jit
} // namespace compute
} // namespace stencilflow

#endif // STENCILFLOW_COMPUTE_JIT_H
