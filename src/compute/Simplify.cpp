//===- compute/Simplify.cpp - Algebraic simplification -------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "compute/Simplify.h"

using namespace stencilflow;
using namespace stencilflow::compute;

namespace {

bool isLiteral(const Expr &E, double Value) {
  const auto *Lit = dyn_cast<LiteralExpr>(&E);
  return Lit && Lit->value() == Value;
}

/// Structural equality of small trees (used for `cond ? a : a`).
bool sameExpr(const Expr &A, const Expr &B) {
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case ExprKind::Literal:
    return cast<LiteralExpr>(&A)->value() == cast<LiteralExpr>(&B)->value();
  case ExprKind::LocalRef:
    return cast<LocalRefExpr>(&A)->name() == cast<LocalRefExpr>(&B)->name();
  case ExprKind::FieldAccess: {
    const auto *FA = cast<FieldAccessExpr>(&A);
    const auto *FB = cast<FieldAccessExpr>(&B);
    return FA->field() == FB->field() && FA->offset() == FB->offset();
  }
  case ExprKind::Unary: {
    const auto *UA = cast<UnaryExpr>(&A);
    const auto *UB = cast<UnaryExpr>(&B);
    return UA->op() == UB->op() && sameExpr(UA->operand(), UB->operand());
  }
  case ExprKind::Binary: {
    const auto *BA = cast<BinaryExpr>(&A);
    const auto *BB = cast<BinaryExpr>(&B);
    return BA->op() == BB->op() && sameExpr(BA->lhs(), BB->lhs()) &&
           sameExpr(BA->rhs(), BB->rhs());
  }
  case ExprKind::Call: {
    const auto *CA = cast<CallExpr>(&A);
    const auto *CB = cast<CallExpr>(&B);
    if (CA->intrinsic() != CB->intrinsic() ||
        CA->args().size() != CB->args().size())
      return false;
    for (size_t Arg = 0; Arg != CA->args().size(); ++Arg)
      if (!sameExpr(*CA->args()[Arg], *CB->args()[Arg]))
        return false;
    return true;
  }
  case ExprKind::Select: {
    const auto *SA = cast<SelectExpr>(&A);
    const auto *SB = cast<SelectExpr>(&B);
    return sameExpr(SA->condition(), SB->condition()) &&
           sameExpr(SA->trueValue(), SB->trueValue()) &&
           sameExpr(SA->falseValue(), SB->falseValue());
  }
  }
  return false;
}

/// Applies one local rewrite to \p E if a rule matches.
bool rewriteOnce(ExprPtr &E) {
  if (auto *Binary = dyn_cast<BinaryExpr>(E.get())) {
    ExprPtr *Kept = nullptr;
    // Extract mutable child handles via the visitor.
    ExprPtr *LHS = nullptr, *RHS = nullptr;
    Binary->visitChildrenMutable([&](ExprPtr &Child) {
      if (!LHS)
        LHS = &Child;
      else
        RHS = &Child;
    });
    switch (Binary->op()) {
    case BinaryOp::Add:
      if (isLiteral(**LHS, 0.0))
        Kept = RHS;
      else if (isLiteral(**RHS, 0.0))
        Kept = LHS;
      break;
    case BinaryOp::Sub:
      if (isLiteral(**RHS, 0.0))
        Kept = LHS;
      break;
    case BinaryOp::Mul:
      if (isLiteral(**LHS, 1.0))
        Kept = RHS;
      else if (isLiteral(**RHS, 1.0))
        Kept = LHS;
      else if (isLiteral(**LHS, 0.0) || isLiteral(**RHS, 0.0)) {
        E = std::make_unique<LiteralExpr>(0.0);
        return true;
      }
      break;
    case BinaryOp::Div:
      if (isLiteral(**RHS, 1.0))
        Kept = LHS;
      break;
    default:
      break;
    }
    if (Kept) {
      E = std::move(*Kept);
      return true;
    }
    return false;
  }

  if (auto *Unary = dyn_cast<UnaryExpr>(E.get())) {
    ExprPtr *Operand = nullptr;
    Unary->visitChildrenMutable([&](ExprPtr &Child) { Operand = &Child; });
    if (auto *Inner = dyn_cast<UnaryExpr>(Operand->get())) {
      if (Inner->op() == Unary->op()) {
        // -(-x) -> x; !(!x) would change 2.0 to 1.0, so only fold Neg.
        if (Unary->op() == UnaryOp::Neg) {
          ExprPtr *InnerOperand = nullptr;
          Inner->visitChildrenMutable(
              [&](ExprPtr &Child) { InnerOperand = &Child; });
          E = std::move(*InnerOperand);
          return true;
        }
      }
    }
    return false;
  }

  if (auto *Select = dyn_cast<SelectExpr>(E.get())) {
    ExprPtr *Cond = nullptr, *TrueValue = nullptr, *FalseValue = nullptr;
    Select->visitChildrenMutable([&](ExprPtr &Child) {
      if (!Cond)
        Cond = &Child;
      else if (!TrueValue)
        TrueValue = &Child;
      else
        FalseValue = &Child;
    });
    if (const auto *Lit = dyn_cast<LiteralExpr>(Cond->get())) {
      E = Lit->value() != 0.0 ? std::move(*TrueValue)
                              : std::move(*FalseValue);
      return true;
    }
    if (sameExpr(**TrueValue, **FalseValue)) {
      E = std::move(*TrueValue);
      return true;
    }
    return false;
  }
  return false;
}

} // namespace

int compute::simplifyExpr(ExprPtr &Root) {
  int Rewrites = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    walkExprMutable(Root, [&](ExprPtr &E) {
      while (rewriteOnce(E)) {
        ++Rewrites;
        Changed = true;
      }
    });
  }
  return Rewrites;
}

int compute::simplifyCode(StencilCode &Code) {
  int Rewrites = 0;
  for (Assignment &Stmt : Code.Statements)
    Rewrites += simplifyExpr(Stmt.Value);
  return Rewrites;
}

int compute::simplifyNodeCode(StencilNode &Node) {
  return simplifyCode(Node.Code);
}
