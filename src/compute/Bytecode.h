//===- compute/Bytecode.h - Stencil compute bytecode -------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The linear, SSA-style instruction form that stencil ASTs are compiled
/// into. This "tape" is what both the reference executor and the hardware
/// simulator evaluate per cell, and it is the basis for the critical-path
/// latency computation (paper Sec. IV-B: "the AST formed by computation of
/// a stencil operation forms another DAG, whose critical path adds a delay
/// between a sequence of inputs entering and exiting the pipeline") and the
/// operation census of Sec. IX-A.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_COMPUTE_BYTECODE_H
#define STENCILFLOW_COMPUTE_BYTECODE_H

#include "ir/DataType.h"
#include "ir/Expr.h"

#include <cstdint>
#include <map>
#include <string>

namespace stencilflow {
namespace compute {

/// Bytecode operations. Instruction I writes register I (pure SSA).
enum class OpCode {
  Const,  ///< Register <- immediate constant.
  Input,  ///< Register <- kernel input slot (one (field, offset) pair).
  Neg,
  Not,
  Add,
  Sub,
  Mul,
  Div,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And,
  Or,
  Sqrt,
  Abs,
  Exp,
  Log,
  Sin,
  Cos,
  Tanh,
  Floor,
  Ceil,
  Min,
  Max,
  Pow,
  Select ///< Register <- A != 0 ? B : C (data-dependent branch).
};

/// Returns a printable mnemonic for \p Op.
std::string_view opCodeName(OpCode Op);

/// Returns the number of register operands of \p Op (0 for Const/Input).
unsigned opCodeArity(OpCode Op);

/// Rounds \p Value to \p Type's precision. Float32 kernels round every
/// intermediate to float, matching the per-operation rounding of hardware
/// fp32 units (and of the fp32 OpenCL kernels the real system generates).
/// Shared by the scalar interpreter, the lane-batched engine
/// (compute/Engine.h), and compile-time constant folding, so all three
/// produce bit-identical values.
double roundToType(double Value, DataType Type);

/// Evaluates one computing operation on already-rounded operands, without
/// rounding the result (the caller applies \c roundToType). Must not be
/// called with OpCode::Const or OpCode::Input.
double evalOpUnrounded(OpCode Op, double A, double B, double C);

/// One bytecode instruction. Operand fields A/B/C index earlier registers.
struct Instruction {
  OpCode Op = OpCode::Const;
  int A = -1;
  int B = -1;
  int C = -1;
  double Constant = 0.0; ///< Immediate for OpCode::Const.
  int InputIndex = -1;   ///< Slot for OpCode::Input.
};

/// Per-operation pipeline latencies in cycles.
///
/// Latencies are "both type and architecture dependent ... provided as
/// configuration to the framework, and default to conservative values"
/// (Sec. IV-B). The defaults model hardened fp32 arithmetic on a
/// Stratix 10-class device.
class LatencyTable {
public:
  /// Builds the default (conservative) table.
  LatencyTable();

  /// Latency in cycles of \p Op.
  int64_t latency(OpCode Op) const { return Latencies.at(Op); }

  /// Overrides the latency of \p Op.
  void setLatency(OpCode Op, int64_t Cycles) { Latencies[Op] = Cycles; }

private:
  std::map<OpCode, int64_t> Latencies;
};

/// Operation counts of a compiled kernel, following the accounting of
/// Sec. IX-A: additions and subtractions count as additions; min/max,
/// comparisons and branches are tracked separately and excluded from the
/// floating-point operation count.
struct OpCensus {
  int64_t Additions = 0;       ///< Add + Sub.
  int64_t Multiplications = 0; ///< Mul.
  int64_t Divisions = 0;       ///< Div.
  int64_t SquareRoots = 0;     ///< Sqrt.
  int64_t MinMax = 0;          ///< Min + Max.
  int64_t Comparisons = 0;     ///< Lt/Le/Gt/Ge/Eq/Ne.
  int64_t Branches = 0;        ///< Select (data-dependent branches).
  int64_t Transcendental = 0;  ///< Exp/Log/Sin/Cos/Tanh/Pow.
  int64_t Other = 0;           ///< Neg/Not/Floor/Ceil/And/Or.

  /// Floating-point operations in the paper's accounting (Eq. 2 counts
  /// additions + multiplications + square roots; we include divisions and
  /// transcendentals for programs that use them).
  int64_t flops() const {
    return Additions + Multiplications + Divisions + SquareRoots +
           Transcendental;
  }

  /// Total operations of any kind.
  int64_t total() const {
    return Additions + Multiplications + Divisions + SquareRoots + MinMax +
           Comparisons + Branches + Transcendental + Other;
  }

  OpCensus &operator+=(const OpCensus &Other);
};

} // namespace compute
} // namespace stencilflow

#endif // STENCILFLOW_COMPUTE_BYTECODE_H
