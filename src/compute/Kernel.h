//===- compute/Kernel.h - Compiled stencil kernels ----------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compiled stencil kernel: the node's code block lowered to bytecode
/// with constant folding and common-subexpression elimination (the paper
/// notes that fused code sections "increase the opportunity for common
/// subexpression elimination by the optimizing compiler", Sec. V-B — here
/// we are that compiler). Kernels expose:
///
///  - the unique (field, offset) input slots the computation reads;
///  - per-cell evaluation for the simulator and reference executor;
///  - the critical-path latency under a configurable latency table;
///  - the operation census used for arithmetic-intensity analysis.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_COMPUTE_KERNEL_H
#define STENCILFLOW_COMPUTE_KERNEL_H

#include "compute/Bytecode.h"
#include "ir/DataType.h"
#include "ir/StencilNode.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace stencilflow {
namespace compute {

/// One kernel input slot: a unique (field, offset) pair.
struct KernelInput {
  std::string Field;
  Offset Off;

  bool operator==(const KernelInput &Other) const = default;
};

/// Compilation options.
struct KernelOptions {
  bool EnableConstantFolding = true;
  bool EnableCSE = true;
};

/// A stencil node's computation compiled to straight-line bytecode.
class Kernel {
public:
  /// Compiles \p Node's code block. Semantic analysis must have run (bare
  /// names resolved, accesses recovered).
  static Expected<Kernel> compile(const StencilNode &Node,
                                  const KernelOptions &Options = {});

  /// The unique input slots, in deterministic order.
  const std::vector<KernelInput> &inputs() const { return Inputs; }

  /// Index of the slot for (\p Field, \p Off), or -1 if the kernel does not
  /// read it.
  int inputIndex(const std::string &Field, const Offset &Off) const;

  /// The instruction tape.
  const std::vector<Instruction> &instructions() const { return Code; }

  /// Register holding the stencil's output value.
  int outputRegister() const { return OutputRegister; }

  /// Element type used for rounding (Float32 rounds after every operation,
  /// matching per-op hardware rounding).
  DataType elementType() const { return Type; }

  /// Evaluates one cell. \p InputValues has one entry per input slot;
  /// \p Scratch must have at least instructions().size() entries and is
  /// reused across calls to avoid allocation.
  double evaluate(const double *InputValues, double *Scratch) const;

  /// Convenience wrapper that allocates scratch (slow path; tests only).
  double evaluate(const std::vector<double> &InputValues) const;

  /// Critical-path latency through the instruction DAG in cycles
  /// (Sec. IV-B).
  int64_t criticalPathLatency(const LatencyTable &Latencies) const;

  /// Operation counts (Sec. IX-A).
  OpCensus census() const;

  /// Disassembles the tape for debugging and golden tests.
  std::string dump() const;

private:
  std::vector<KernelInput> Inputs;
  std::vector<Instruction> Code;
  int OutputRegister = -1;
  DataType Type = DataType::Float32;
};

} // namespace compute
} // namespace stencilflow

#endif // STENCILFLOW_COMPUTE_KERNEL_H
