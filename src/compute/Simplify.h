//===- compute/Simplify.h - Algebraic simplification --------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algebraic simplification of stencil expressions, complementing the
/// constant folding and common-subexpression elimination performed during
/// kernel compilation. Simplification prunes operations before the
/// resource model counts them — the software analogue of the logic the
/// optimizing HLS compiler would strip (paper Sec. V-B notes that fused
/// code "increases the opportunity for common subexpression elimination by
/// the optimizing compiler"; identities are the other half of that).
///
/// Applied rules (value-preserving for finite inputs; x*0 and x-x change
/// NaN/Inf propagation exactly as -ffast-math style HLS flows do, which is
/// why the pass is opt-in):
///
///   x + 0, 0 + x, x - 0      ->  x
///   x * 1, 1 * x, x / 1      ->  x
///   x * 0, 0 * x             ->  0
///   cond ? a : a             ->  a
///   <const-cond> ? a : b     ->  a or b
///   -(-x), !(!x)             ->  x
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_COMPUTE_SIMPLIFY_H
#define STENCILFLOW_COMPUTE_SIMPLIFY_H

#include "ir/Expr.h"
#include "ir/StencilNode.h"

namespace stencilflow {
namespace compute {

/// Simplifies one expression in place. Returns the number of rewrites.
int simplifyExpr(ExprPtr &Root);

/// Simplifies every statement of \p Code. Returns the number of rewrites.
int simplifyCode(StencilCode &Code);

/// Simplifies every node of \p Program (access metadata is refreshed by
/// the caller via frontend::analyzeProgram when accesses may have been
/// pruned). Returns the number of rewrites.
int simplifyNodeCode(StencilNode &Node);

} // namespace compute
} // namespace stencilflow

#endif // STENCILFLOW_COMPUTE_SIMPLIFY_H
