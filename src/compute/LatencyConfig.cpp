//===- compute/LatencyConfig.cpp - Latency tables from JSON --------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "compute/LatencyConfig.h"

#include <cmath>

using namespace stencilflow;
using namespace stencilflow::compute;

Expected<OpCode> compute::parseOpCodeName(std::string_view Name) {
  static const OpCode AllOps[] = {
      OpCode::Const, OpCode::Input, OpCode::Neg,   OpCode::Not,
      OpCode::Add,   OpCode::Sub,   OpCode::Mul,   OpCode::Div,
      OpCode::Lt,    OpCode::Le,    OpCode::Gt,    OpCode::Ge,
      OpCode::Eq,    OpCode::Ne,    OpCode::And,   OpCode::Or,
      OpCode::Sqrt,  OpCode::Abs,   OpCode::Exp,   OpCode::Log,
      OpCode::Sin,   OpCode::Cos,   OpCode::Tanh,  OpCode::Floor,
      OpCode::Ceil,  OpCode::Min,   OpCode::Max,   OpCode::Pow,
      OpCode::Select};
  for (OpCode Op : AllOps)
    if (opCodeName(Op) == Name)
      return Op;
  return makeError("unknown operation '" + std::string(Name) +
                   "' in latency configuration");
}

Expected<LatencyTable>
compute::latencyTableFromJson(const json::Value &Config) {
  if (!Config.isObject())
    return makeError("latency configuration must be a JSON object");
  LatencyTable Table;
  for (const auto &[Name, Value] : Config.getObject()) {
    Expected<OpCode> Op = parseOpCodeName(Name);
    if (!Op)
      return Op.takeError();
    if (!Value->isNumber() || Value->getNumber() < 0 ||
        Value->getNumber() != std::floor(Value->getNumber()))
      return makeError("latency of '" + Name +
                       "' must be a non-negative integer");
    Table.setLatency(*Op, Value->getInteger());
  }
  return Table;
}

Expected<LatencyTable>
compute::latencyTableFromJsonText(std::string_view Text) {
  Expected<json::Value> Parsed = json::parse(Text);
  if (!Parsed)
    return Parsed.takeError().addContext("latency configuration");
  return latencyTableFromJson(*Parsed);
}
