//===- tuner/Tuner.cpp - Mapping autotuner front door -------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tuner/Tuner.h"

#include "runtime/Session.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <optional>
#include <thread>

using namespace stencilflow;
using namespace stencilflow::tuner;

namespace {

/// Runs the full pipeline (simulate + validate) for one candidate. Each
/// job owns a private program copy and option block, so jobs are
/// embarrassingly parallel.
Expected<PipelineResult> runCandidate(const StencilProgram &Program,
                                      const PipelineOptions &Base,
                                      const CandidateMapping &Mapping) {
  Expected<StencilProgram> Applied = applyMapping(Program, Mapping);
  if (!Applied)
    return Applied.takeError();
  PipelineOptions O = Base;
  O.FuseStencils = false; // Fusion is part of the mapping, already applied.
  O.TemporalDegree = 1;   // Unrolling too — re-unrolling would square T.
  O.Simulate = true;
  O.Validate = true;
  O.EmitCode = false;
  O.AllowMultiDevice = true; // The mapping's device budget governs.
  O.Partitioning.MaxDevices = Mapping.MaxDevices;
  O.Partitioning.TargetUtilization = Mapping.TargetUtilization;
  O.Simulator.KernelExec = Mapping.KernelExec;
  O.Simulator.Trace = nullptr; // One tracer cannot record N runs at once.
  return runPipeline(Applied.takeValue(), O);
}

/// Ranks simulated, validation-passing records: fastest simulated time,
/// then fewest devices, lowest peak utilization, id.
bool rankBySimulation(const CandidateRecord &A, const CandidateRecord &B) {
  if (A.SimulatedSeconds != B.SimulatedSeconds)
    return A.SimulatedSeconds < B.SimulatedSeconds;
  if (A.Cost.Devices != B.Cost.Devices)
    return A.Cost.Devices < B.Cost.Devices;
  if (A.Cost.PeakUtilization != B.Cost.PeakUtilization)
    return A.Cost.PeakUtilization < B.Cost.PeakUtilization;
  return A.Mapping.id() < B.Mapping.id();
}

} // namespace

Expected<TuningOutcome>
stencilflow::tuner::tuneProgram(const StencilProgram &Program,
                                const PipelineOptions &Base,
                                const TuneOptions &Options) {
  // The kernel-engine and temporal-degree axes default to the base
  // configuration's values so the space (and every existing trajectory)
  // is unchanged unless the caller opts into exploring them.
  DesignSpaceOptions SpaceOpts = Options.Space;
  if (SpaceOpts.KernelEngines.empty())
    SpaceOpts.KernelEngines = {Base.Simulator.KernelExec};
  if (SpaceOpts.TemporalDegrees.empty())
    SpaceOpts.TemporalDegrees = {std::max(1, Base.TemporalDegree)};
  Expected<DesignSpace> Space = DesignSpace::enumerate(
      Program, SpaceOpts, Base.Partitioning.MaxDevices);
  if (!Space)
    return Space.takeError().addContext("design space");

  // The default mapping — unvectorized, unfused, base partitioning and
  // kernel tier — snapped onto the enumerated axes so it is a point of
  // the space.
  size_t Index[6];
  Space->closestIndices(
      CandidateMapping{1, 0, Base.Partitioning.MaxDevices,
                       Base.Partitioning.TargetUtilization,
                       std::max(1, Base.TemporalDegree),
                       Base.Simulator.KernelExec},
      Index);
  CandidateMapping Default = Space->at(Index[0], Index[1], Index[2],
                                       Index[3], Index[4], Index[5]);

  CostModel Model(Program, Base);
  SearchResult Search =
      searchDesignSpace(*Space, Model, Options.Search, Default);

  TuningReport Report;
  Report.ProgramName = Program.Name;
  Report.SearchKind = std::move(Search.Kind);
  Report.Seed = Options.Search.Seed;
  Report.SpaceSize = Space->size();
  Report.Candidates = std::move(Search.Records);

  // The default is part of the beam seed, so it is normally already
  // costed; guard anyway (e.g. a budget of 1 point).
  for (size_t I = 0; I != Report.Candidates.size(); ++I)
    if (Report.Candidates[I].Mapping == Default)
      Report.DefaultIndex = static_cast<int>(I);
  if (Report.DefaultIndex < 0) {
    CandidateRecord Record;
    Record.Mapping = Default;
    Record.Cost = Model.cost(Default);
    Report.DefaultIndex = static_cast<int>(Report.Candidates.size());
    Report.Candidates.push_back(std::move(Record));
  }

  Report.Explored = Report.Candidates.size();
  for (const CandidateRecord &R : Report.Candidates)
    Report.Pruned += R.Cost.Feasible ? 0 : 1;
  Report.ParetoFront = paretoFront(Report.Candidates);

  // Analytic ranking of the feasible survivors.
  std::vector<size_t> Ranked;
  for (size_t I = 0; I != Report.Candidates.size(); ++I)
    if (Report.Candidates[I].Cost.Feasible)
      Ranked.push_back(I);
  if (Ranked.empty())
    return makeError(
        ErrorCode::Infeasible,
        formatString("no feasible mapping among %zu explored candidate(s) "
                     "of '%s'",
                     Report.Explored, Program.Name.c_str()));
  std::sort(Ranked.begin(), Ranked.end(), [&](size_t A, size_t B) {
    return rankByPrediction(Report.Candidates[A], Report.Candidates[B]);
  });

  TuningOutcome Outcome;
  if (!Options.Simulate) {
    Report.BestIndex = static_cast<int>(Ranked[0]);
    Outcome.Best = Report.Candidates[Ranked[0]].Mapping;
    Outcome.Report = std::move(Report);
    return Outcome;
  }

  // Simulation set: the analytic top-K plus the default baseline.
  std::vector<size_t> Jobs(
      Ranked.begin(),
      Ranked.begin() + std::min<size_t>(std::max(1, Options.TopK),
                                        Ranked.size()));
  if (Report.Candidates[Report.DefaultIndex].Cost.Feasible &&
      std::find(Jobs.begin(), Jobs.end(),
                static_cast<size_t>(Report.DefaultIndex)) == Jobs.end())
    Jobs.push_back(static_cast<size_t>(Report.DefaultIndex));

  // Candidates simulate concurrently; results land in per-job slots so
  // thread scheduling cannot reorder anything observable.
  std::vector<std::optional<Expected<PipelineResult>>> Slots(Jobs.size());
  std::atomic<size_t> NextJob{0};
  auto Worker = [&]() {
    for (;;) {
      size_t Job = NextJob.fetch_add(1);
      if (Job >= Jobs.size())
        return;
      Slots[Job].emplace(runCandidate(
          Program, Base, Report.Candidates[Jobs[Job]].Mapping));
    }
  };
  size_t WorkerCount = Options.Workers > 0
                           ? static_cast<size_t>(Options.Workers)
                           : std::max(1u, std::thread::hardware_concurrency());
  WorkerCount = std::min(WorkerCount, Jobs.size());
  if (WorkerCount <= 1) {
    Worker();
  } else {
    std::vector<std::thread> Threads;
    for (size_t I = 0; I != WorkerCount; ++I)
      Threads.emplace_back(Worker);
    for (std::thread &T : Threads)
      T.join();
  }

  for (size_t Job = 0; Job != Jobs.size(); ++Job) {
    CandidateRecord &R = Report.Candidates[Jobs[Job]];
    Expected<PipelineResult> &Run = *Slots[Job];
    R.Simulated = true;
    ++Report.SimulatedCount;
    if (!Run) {
      R.SimulationError = Run.message();
      continue;
    }
    R.SimulatedCycles = Run->Simulation.Stats.Cycles;
    // One clock for both sides of the comparison: the cost model's
    // worst-device frequency. Like PredictedSeconds, amortize over the
    // temporal degree so candidates compete on seconds per timestep;
    // SimulatedCycles stays the raw per-pass count for ModelErrorPct.
    R.SimulatedSeconds =
        static_cast<double>(R.SimulatedCycles) /
        (R.Cost.FrequencyMHz * 1e6 * std::max(1, R.Mapping.TemporalDegree));
    R.ValidationPassed = Run->ValidationPassed;
    if (R.SimulatedCycles > 0)
      R.ModelErrorPct =
          100.0 *
          std::abs(static_cast<double>(R.Cost.PredictedCycles) -
                   static_cast<double>(R.SimulatedCycles)) /
          static_cast<double>(R.SimulatedCycles);
  }

  // Refit the first-order slowdown factors against this run's simulated
  // ground truth; observable via report.Calibration and the JSON dump.
  calibrateSlowdowns(Report);

  // The plan: fastest simulated candidate that passed bit-exact
  // validation against the reference executor.
  int BestJob = -1;
  for (size_t Job = 0; Job != Jobs.size(); ++Job) {
    const CandidateRecord &R = Report.Candidates[Jobs[Job]];
    if (!R.SimulationError.empty() || !R.ValidationPassed)
      continue;
    if (BestJob < 0 ||
        rankBySimulation(R, Report.Candidates[Jobs[BestJob]]))
      BestJob = static_cast<int>(Job);
  }
  if (BestJob < 0)
    return makeError(ErrorCode::Infeasible,
                     formatString("all %zu simulated candidate(s) of '%s' "
                                  "failed simulation or validation",
                                  Jobs.size(), Program.Name.c_str()));

  Report.BestIndex = static_cast<int>(Jobs[BestJob]);
  Outcome.Best = Report.Candidates[Jobs[BestJob]].Mapping;
  Outcome.BestRun = Slots[BestJob]->takeValue();
  Outcome.Report = std::move(Report);
  return Outcome;
}

//===----------------------------------------------------------------------===//
// Session facade
//===----------------------------------------------------------------------===//

// Defined here rather than in runtime/Session.cpp so sf_runtime does not
// depend on sf_tuner (the tuner sits above the pipeline it drives).
Expected<tuner::TuningOutcome>
Session::tune(const tuner::TuneOptions &Options) {
  if (Error Err = Program.validate())
    return Err.addContext("program validation");
  return tuner::tuneProgram(Program, Opts, Options);
}

Expected<tuner::TuningOutcome> Session::tune() {
  // Fold the fluent tune* setters into an option block; axis overrides
  // beyond these knobs go through the explicit tune(Options) overload.
  tuner::TuneOptions Options;
  Options.Search.CandidateBudget = Tuning.Budget;
  if (Tuning.HaveSeed)
    Options.Search.Seed = Tuning.Seed;
  Options.TopK = Tuning.TopK;
  Options.Workers = Tuning.Workers;
  Options.Simulate = Tuning.Simulate;
  return tune(Options);
}
