//===- tuner/DesignSpace.cpp - Mapping candidate enumeration ------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tuner/DesignSpace.h"

#include "sdfg/StencilFusion.h"
#include "sdfg/TemporalUnroll.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace stencilflow;
using namespace stencilflow::tuner;

std::string CandidateMapping::id() const {
  std::string Id =
      formatString("W%d-F%d-D%d-U%d", VectorWidth, FusionPairs, MaxDevices,
                   static_cast<int>(std::lround(TargetUtilization * 100)));
  // Suffixes only appear for non-default values, keeping ids from the
  // original four-axis space (golden trajectories, saved reports) stable.
  if (KernelExec != compute::KernelEngine::Specialized)
    Id += formatString("-K%s", compute::kernelEngineName(KernelExec));
  if (TemporalDegree > 1)
    Id += formatString("-T%d", TemporalDegree);
  return Id;
}

namespace {

/// Sorts ascending and removes duplicates.
template <typename T> void sortUnique(std::vector<T> &Values) {
  std::sort(Values.begin(), Values.end());
  Values.erase(std::unique(Values.begin(), Values.end()), Values.end());
}

/// Index of the axis value closest to \p Want (lowest index on ties).
template <typename T>
size_t closestIndex(const std::vector<T> &Axis, T Want) {
  size_t Best = 0;
  for (size_t I = 1; I < Axis.size(); ++I)
    if (std::abs(static_cast<double>(Axis[I]) - static_cast<double>(Want)) <
        std::abs(static_cast<double>(Axis[Best]) - static_cast<double>(Want)))
      Best = I;
  return Best;
}

/// Validates an explicitly provided axis vector: every entry must be at
/// least \p Min and entries must be pairwise distinct. Derived defaults
/// never pass through here — only caller-specified axes get typed errors.
template <typename T>
Error checkExplicitAxis(const char *Axis, const std::vector<T> &Values,
                        T Min) {
  for (size_t I = 0; I != Values.size(); ++I) {
    if (Values[I] < Min)
      return makeError(
          ErrorCode::InvalidInput,
          formatString("%s axis entry %g is below the minimum %g", Axis,
                       static_cast<double>(Values[I]),
                       static_cast<double>(Min)));
    for (size_t J = I + 1; J != Values.size(); ++J)
      if (Values[I] == Values[J])
        return makeError(ErrorCode::InvalidInput,
                         formatString("%s axis entry %g appears twice", Axis,
                                      static_cast<double>(Values[I])));
  }
  return Error::success();
}

} // namespace

Expected<DesignSpace> DesignSpace::enumerate(const StencilProgram &Program,
                                             const DesignSpaceOptions &Options,
                                             int MaxDevicesCap) {
  if (Program.IterationSpace.rank() == 0)
    return makeError(ErrorCode::InvalidInput,
                     "cannot enumerate a design space for a rank-0 program");
  int64_t Innermost =
      Program.IterationSpace.extent(Program.IterationSpace.rank() - 1);

  // Explicit axis vectors are configuration, not a wish list: malformed
  // entries (non-positive, duplicated) are typed errors instead of being
  // silently enumerated or dropped. Derived defaults below keep the silent
  // per-program filtering.
  if (Error Err = checkExplicitAxis("vector-width", Options.VectorWidths, 1))
    return Err;
  if (Error Err = checkExplicitAxis("fusion-level", Options.FusionLevels, 0))
    return Err;
  if (Error Err = checkExplicitAxis("device-count", Options.DeviceCounts, 1))
    return Err;
  if (Error Err = checkExplicitAxis("temporal-degree",
                                    Options.TemporalDegrees, 1))
    return Err;
  for (double U : Options.TargetUtilizations)
    if (U <= 0.0 || U > 1.0)
      return makeError(
          ErrorCode::InvalidInput,
          formatString("target-utilization axis entry %g lies outside (0, 1]",
                       U));
  if (Error Err = checkExplicitAxis("target-utilization",
                                    Options.TargetUtilizations, 0.0))
    return Err;

  DesignSpace Space;

  // Vectorization widths: candidates must divide the innermost extent
  // (Sec. IV-C); non-divisors are not merely slow, they are illegal.
  std::vector<int> WidthSeed =
      Options.VectorWidths.empty() ? std::vector<int>{1, 2, 4, 8}
                                   : Options.VectorWidths;
  for (int W : WidthSeed)
    if (W >= 1 && Innermost % W == 0)
      Space.Widths.push_back(W);
  sortUnique(Space.Widths);
  if (Space.Widths.empty())
    return makeError(ErrorCode::InvalidInput,
                     formatString("no candidate vector width divides the "
                                  "innermost extent %lld",
                                  static_cast<long long>(Innermost)));

  // Fusion levels: probe how many pairs the aggressive pass fuses; every
  // level is a prefix of that trajectory (sdfg::fuseStencilsUpTo). A
  // failing probe means no legal fusion — the axis collapses to {0}.
  StencilProgram Probe = Program.clone();
  Expected<FusionReport> Aggressive = fuseAllStencils(Probe);
  Space.MaxPairs = Aggressive ? Aggressive->FusedPairs : 0;
  std::vector<int> LevelSeed =
      Options.FusionLevels.empty()
          ? std::vector<int>{0, 1, Space.MaxPairs / 2, Space.MaxPairs}
          : Options.FusionLevels;
  for (int F : LevelSeed)
    if (F >= 0 && F <= Space.MaxPairs)
      Space.Levels.push_back(F);
  Space.Levels.push_back(0); // The unfused mapping is always a candidate.
  sortUnique(Space.Levels);

  // Device budgets, capped at the testbed size.
  std::vector<int> DeviceSeed =
      Options.DeviceCounts.empty() ? std::vector<int>{1, 2, 4, 8}
                                   : Options.DeviceCounts;
  for (int D : DeviceSeed)
    if (D >= 1 && D <= MaxDevicesCap)
      Space.Devices.push_back(D);
  sortUnique(Space.Devices);
  if (Space.Devices.empty())
    Space.Devices.push_back(1);

  // Partitioner target utilizations.
  std::vector<double> UtilSeed =
      Options.TargetUtilizations.empty()
          ? std::vector<double>{0.70, 0.85, 0.95}
          : Options.TargetUtilizations;
  for (double U : UtilSeed)
    if (U > 0.0 && U <= 1.0)
      Space.Utils.push_back(U);
  sortUnique(Space.Utils);
  if (Space.Utils.empty())
    return makeError(ErrorCode::InvalidInput,
                     "no candidate target utilization lies in (0, 1]");

  // Temporal blocking degrees. Like the engine axis this defaults to a
  // single value (the tuner substitutes its base configuration's degree),
  // so the space only grows when the caller opts in. Degrees above 1
  // replicate the pipeline through sdfg::unrollTimeSteps, which needs the
  // program to declare time-loop bindings.
  Space.Degrees = Options.TemporalDegrees.empty()
                      ? std::vector<int>{1}
                      : Options.TemporalDegrees;
  sortUnique(Space.Degrees);
  if (Space.Degrees.back() > 1 && Program.TimeLoop.empty())
    return makeError(
        ErrorCode::InvalidInput,
        formatString("temporal degree %d requires time-loop bindings, but "
                     "program '%s' declares none",
                     Space.Degrees.back(), Program.Name.c_str()));

  // Kernel execution tiers. The axis defaults to the single Specialized
  // tier (the tuner substitutes its base configuration's tier), so the
  // space only grows when the caller opts in.
  Space.Engines = Options.KernelEngines.empty()
                      ? std::vector<compute::KernelEngine>{
                            compute::KernelEngine::Specialized}
                      : Options.KernelEngines;
  sortUnique(Space.Engines);

  // Materialize the cross product in lexicographic axis order.
  for (int W : Space.Widths)
    for (int F : Space.Levels)
      for (int D : Space.Devices)
        for (double U : Space.Utils)
          for (int T : Space.Degrees)
            for (compute::KernelEngine K : Space.Engines)
              Space.All.push_back(CandidateMapping{W, F, D, U, T, K});
  return Space;
}

CandidateMapping DesignSpace::at(size_t Wi, size_t Fi, size_t Di, size_t Ui,
                                 size_t Ti, size_t Ki) const {
  assert(Wi < Widths.size() && Fi < Levels.size() && Di < Devices.size() &&
         Ui < Utils.size() && Ti < Degrees.size() && Ki < Engines.size() &&
         "axis index out of range");
  return CandidateMapping{Widths[Wi],  Levels[Fi], Devices[Di],
                          Utils[Ui],   Degrees[Ti], Engines[Ki]};
}

void DesignSpace::closestIndices(const CandidateMapping &M,
                                 size_t Index[6]) const {
  Index[0] = closestIndex(Widths, M.VectorWidth);
  Index[1] = closestIndex(Levels, M.FusionPairs);
  Index[2] = closestIndex(Devices, M.MaxDevices);
  Index[3] = closestIndex(Utils, M.TargetUtilization);
  Index[4] = closestIndex(Degrees, M.TemporalDegree);
  // The engine axis is categorical: snap to the exact engine when present,
  // else to the first axis value.
  Index[5] = 0;
  for (size_t I = 0; I != Engines.size(); ++I)
    if (Engines[I] == M.KernelExec)
      Index[5] = I;
}

Expected<StencilProgram>
stencilflow::tuner::applyMapping(const StencilProgram &Program,
                                 const CandidateMapping &Mapping) {
  StencilProgram Applied = Program.clone();
  // Pipeline order: unroll first, as compilePipeline does — fusion levels
  // probed on the base program remain legal on the unrolled one.
  if (Mapping.TemporalDegree != 1) {
    Expected<StencilProgram> Unrolled =
        sdfg::unrollTimeSteps(Applied, Mapping.TemporalDegree);
    if (!Unrolled)
      return Unrolled.takeError().addContext(
          formatString("unrolling %d timestep(s)", Mapping.TemporalDegree));
    Applied = Unrolled.takeValue();
  }
  if (Mapping.FusionPairs > 0) {
    Expected<FusionReport> Fusion =
        fuseStencilsUpTo(Applied, Mapping.FusionPairs);
    if (!Fusion)
      return Fusion.takeError().addContext(
          formatString("fusing %d pair(s)", Mapping.FusionPairs));
  }
  Applied.VectorWidth = Mapping.VectorWidth;
  if (Error Err = Applied.validate())
    return Err.addContext("mapping " + Mapping.id());
  return Applied;
}
