//===- tuner/CostModel.cpp - Analytic candidate ranking -----------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tuner/CostModel.h"

#include "compute/Simplify.h"
#include "frontend/SemanticAnalysis.h"

#include <algorithm>
#include <cmath>

using namespace stencilflow;
using namespace stencilflow::tuner;

namespace {

/// Marks \p Cost pruned at some pipeline stage.
CandidateCost pruned(CandidateCost Cost, std::string Reason) {
  Cost.Feasible = false;
  Cost.PruneReason = std::move(Reason);
  return Cost;
}

/// Steady-state off-chip demand of one device in bytes per cycle: every
/// full-rank replicated input is read and every output written W elements
/// per cycle, each stream paying the per-transaction bus overhead, plus
/// crossbar arbitration pressure per active endpoint (the same DRAM model
/// the simulator charges, sim/Config.h).
double deviceMemoryDemand(const StencilProgram &Program,
                          const DevicePlacement &Device, int VectorWidth,
                          const sim::SimConfig &Sim) {
  double Bytes = 0.0;
  int Endpoints = 0;
  for (const std::string &Input : Device.ReplicatedInputs) {
    const Field *F = Program.findInput(Input);
    if (!F || !F->isFullRank())
      continue; // Sub-dimensional inputs are preloaded ROMs, not streams.
    Bytes += static_cast<double>(VectorWidth) *
                 static_cast<double>(dataTypeSize(F->Type)) +
             Sim.TransactionOverheadBytes;
    ++Endpoints;
  }
  for (const std::string &Output : Device.OutputsWritten) {
    Bytes += static_cast<double>(VectorWidth) *
                 static_cast<double>(dataTypeSize(
                     Program.fieldType(Output))) +
             Sim.TransactionOverheadBytes;
    ++Endpoints;
  }
  return Bytes + Endpoints * Sim.ArbitrationPenaltyBytesPerEndpoint;
}

} // namespace

CandidateCost CostModel::cost(const CandidateMapping &Mapping) const {
  CandidateCost Cost;
  Cost.FusedPairs = Mapping.FusionPairs;
  Cost.TemporalDegree = Mapping.TemporalDegree;

  // Stage 1: apply the program-transforming knobs (fusion, width).
  Expected<StencilProgram> Applied = applyMapping(Program, Mapping);
  if (!Applied)
    return pruned(std::move(Cost), "mapping: " + Applied.message());

  // Mirror the pipeline's optional simplification so predictions price the
  // same circuit the simulator will run.
  if (Base.SimplifyCode) {
    for (StencilNode &Node : Applied->Nodes)
      compute::simplifyNodeCode(Node);
    if (Error Err = analyzeProgram(*Applied))
      return pruned(std::move(Cost), "simplification: " + Err.message());
  }

  // Stage 2: compile and size the buffers; failures here are the
  // buffer-sizing / deadlock-freedom prune (Sec. IV-B).
  Expected<CompiledProgram> Compiled =
      CompiledProgram::compile(Applied.takeValue(), Base.Kernel);
  if (!Compiled)
    return pruned(std::move(Cost), "compilation: " + Compiled.message());
  Expected<DataflowAnalysis> Dataflow =
      analyzeDataflow(*Compiled, Base.Latencies);
  if (!Dataflow)
    return pruned(std::move(Cost), "dataflow: " + Dataflow.message());

  RuntimeEstimate Runtime = computeRuntimeEstimate(*Compiled, *Dataflow);
  Cost.ModelCycles = Runtime.TotalCycles;

  // Stage 3: partition under the mapping's device budget and target
  // utilization; the partitioner enforces the ResourceModel capacity
  // checks, so an over-capacity candidate is pruned here.
  PartitionOptions PartOptions = Base.Partitioning;
  PartOptions.MaxDevices = Mapping.MaxDevices;
  PartOptions.TargetUtilization = Mapping.TargetUtilization;
  Expected<Partition> Placement =
      partitionProgram(*Compiled, *Dataflow, PartOptions);
  if (!Placement)
    return pruned(std::move(Cost), "partitioning: " + Placement.message());
  Cost.Devices = static_cast<int>(Placement->numDevices());

  // Frequency and utilization come from the worst (most utilized) device:
  // all devices in the chain run off one design clock.
  const DevicePlacement *Worst = nullptr;
  for (const DevicePlacement &Device : Placement->Devices) {
    double Peak = Device.Resources.peakUtilization(PartOptions.Device);
    if (Peak > Cost.PeakUtilization || !Worst) {
      Cost.PeakUtilization = Peak;
      Worst = &Device;
    }
  }
  Cost.FrequencyMHz =
      estimateFrequencyMHz(Worst->Resources, PartOptions.Device,
                           PartOptions.ResourceConfig);

  // Bandwidth ceilings on the streaming phase.
  const sim::SimConfig &Sim = Base.Simulator;
  const StencilProgram &Prog = Compiled->program();
  if (!Sim.UnconstrainedMemory) {
    for (const DevicePlacement &Device : Placement->Devices) {
      double Demand = deviceMemoryDemand(Prog, Device, Prog.VectorWidth, Sim);
      Cost.MemorySlowdown = std::max(Cost.MemorySlowdown,
                                     Demand / Sim.PeakMemoryBytesPerCycle);
    }
  }
  for (int Hop = 0; Hop + 1 < Cost.Devices; ++Hop) {
    double HopBytes = 0.0;
    for (const RemoteStream &Stream : Placement->RemoteStreams)
      if (Stream.SourceDevice <= Hop && Hop < Stream.ConsumerDevice)
        HopBytes += static_cast<double>(Prog.VectorWidth) *
                    static_cast<double>(
                        dataTypeSize(Prog.fieldType(Stream.Source)));
    Cost.NetworkSlowdown =
        std::max(Cost.NetworkSlowdown,
                 HopBytes / (Sim.LinkBytesPerCycle * Sim.LinksPerHop));
  }

  // Network latency: remote streams add per-hop store-and-forward delay to
  // the pipeline fill; the longest source-to-consumer span dominates.
  int64_t NetworkLatency = 0;
  for (const RemoteStream &Stream : Placement->RemoteStreams)
    NetworkLatency =
        std::max(NetworkLatency,
                 static_cast<int64_t>(Stream.ConsumerDevice -
                                      Stream.SourceDevice) *
                     Sim.NetworkLatencyCyclesPerHop);

  double Slowdown = std::max(Cost.MemorySlowdown, Cost.NetworkSlowdown);
  Cost.PredictedCycles =
      Runtime.LatencyCycles + NetworkLatency +
      static_cast<int64_t>(std::ceil(
          static_cast<double>(Runtime.StreamedCycles) * Slowdown));
  // Rank on seconds per *timestep*: a degree-T circuit advances T
  // generations per pass, so its per-pass cycles are amortized over T.
  Cost.PredictedSeconds =
      static_cast<double>(Cost.PredictedCycles) /
      (Cost.FrequencyMHz * 1e6 * std::max(1, Mapping.TemporalDegree));
  Cost.Feasible = true;
  return Cost;
}
