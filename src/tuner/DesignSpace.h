//===- tuner/DesignSpace.h - Mapping candidate enumeration --------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The design space of the mapping autotuner: the cross product of the
/// paper's mapping knobs. A \c CandidateMapping fixes
///
///  - the vectorization width W (Sec. IV-C / VIII-A, Eq. 1: N = cells / W),
///  - the stencil-fusion level (Sec. V-B; level k applies the first k steps
///    of the aggressive fusion pass, see sdfg::fuseStencilsUpTo),
///  - the device budget of the partitioner (Sec. III-B), and
///  - the partitioner's target utilization (how full each device may get
///    before spilling to the next one).
///
/// \c DesignSpace::enumerate derives sensible per-program axes (widths that
/// divide the innermost extent, fusion levels up to the legal maximum,
/// device counts up to the testbed cap) and materializes the cross product
/// in deterministic lexicographic order, so search trajectories are
/// reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_TUNER_DESIGNSPACE_H
#define STENCILFLOW_TUNER_DESIGNSPACE_H

#include "compute/Engine.h"
#include "ir/StencilProgram.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace stencilflow {
namespace tuner {

/// One point of the design space: a complete mapping configuration.
struct CandidateMapping {
  /// Vectorization width W; must divide the innermost extent.
  int VectorWidth = 1;

  /// Stencil-fusion level: number of producer/consumer pairs fused, as a
  /// prefix of the aggressive pass's trajectory (0 = unfused).
  int FusionPairs = 0;

  /// Device budget handed to the partitioner.
  int MaxDevices = 1;

  /// Partitioner target utilization (fraction of each resource class).
  double TargetUtilization = 0.85;

  /// Temporal blocking degree T: timesteps of the program's time loop
  /// unrolled on-chip (sdfg/TemporalUnroll.h). Replicates area/DSPs ~T
  /// times while amortizing off-chip bandwidth over T generations — the
  /// Zohouri et al. trade the cost model prices via the replay of the
  /// compile half on the unrolled program.
  int TemporalDegree = 1;

  /// Kernel execution tier the simulator uses for this candidate. Not a
  /// hardware knob like the other axes, but it decides how fast the
  /// testbed evaluates a candidate — and with Auto/Jit in the axis the
  /// tuner can trade runtime-compile latency against steady-state speed.
  compute::KernelEngine KernelExec = compute::KernelEngine::Specialized;

  /// Stable identity, e.g. "W4-F2-D2-U85" (utilization in percent). A
  /// "-K<engine>" suffix appears only for non-default engines and a
  /// "-T<degree>" suffix only for degrees > 1, so ids from the smaller
  /// spaces are unchanged.
  std::string id() const;

  friend bool operator==(const CandidateMapping &A,
                         const CandidateMapping &B) {
    return A.VectorWidth == B.VectorWidth &&
           A.FusionPairs == B.FusionPairs &&
           A.MaxDevices == B.MaxDevices &&
           A.TargetUtilization == B.TargetUtilization &&
           A.TemporalDegree == B.TemporalDegree &&
           A.KernelExec == B.KernelExec;
  }
};

/// Axis overrides; any empty vector is derived from the program.
/// Explicitly provided vectors are validated: non-positive entries
/// (negative fusion levels, utilizations outside (0, 1]) and duplicates
/// are typed InvalidInput errors rather than silently enumerated.
/// Derived defaults keep the silent per-program filtering (widths to
/// divisors, levels to the legal maximum, devices to the testbed cap).
struct DesignSpaceOptions {
  /// Candidate vectorization widths. Default: {1, 2, 4, 8} filtered to
  /// divisors of the innermost extent.
  std::vector<int> VectorWidths;

  /// Candidate fusion levels. Default: {0, 1, max/2, max} (deduplicated)
  /// where max is the number of pairs the aggressive pass fuses.
  std::vector<int> FusionLevels;

  /// Candidate device budgets. Default: {1, 2, 4, 8} capped at the
  /// partitioner's MaxDevices.
  std::vector<int> DeviceCounts;

  /// Candidate target utilizations. Default: {0.70, 0.85, 0.95}.
  std::vector<double> TargetUtilizations;

  /// Candidate temporal blocking degrees. Default: the base
  /// configuration's degree alone (so the space does not grow unless the
  /// caller opts in, e.g. sf_tune --temporal-degrees=1,2,4,8). Degrees
  /// above 1 require the program to declare time-loop bindings.
  std::vector<int> TemporalDegrees;

  /// Candidate kernel execution tiers. Default: the single tier of the
  /// base configuration (so the space does not grow unless the caller
  /// opts in, e.g. sf_tune --kernel-engines=specialized,jit,auto).
  std::vector<compute::KernelEngine> KernelEngines;
};

/// The enumerated candidate set plus its per-axis structure (the axes are
/// what the beam search's neighborhood moves walk along).
class DesignSpace {
public:
  /// Enumerates the space for \p Program. \p MaxDevicesCap bounds the
  /// device-count axis (the caller's testbed size).
  static Expected<DesignSpace> enumerate(const StencilProgram &Program,
                                         const DesignSpaceOptions &Options,
                                         int MaxDevicesCap);

  /// All candidates, in deterministic lexicographic axis order.
  const std::vector<CandidateMapping> &candidates() const { return All; }
  size_t size() const { return All.size(); }

  /// Number of pairs the aggressive fusion pass would fuse.
  int maxFusionPairs() const { return MaxPairs; }

  /// The axes, each sorted ascending (engines by enum order).
  const std::vector<int> &vectorWidths() const { return Widths; }
  const std::vector<int> &fusionLevels() const { return Levels; }
  const std::vector<int> &deviceCounts() const { return Devices; }
  const std::vector<double> &targetUtilizations() const { return Utils; }
  const std::vector<int> &temporalDegrees() const { return Degrees; }
  const std::vector<compute::KernelEngine> &kernelEngines() const {
    return Engines;
  }

  /// The candidate at axis indices (Wi, Fi, Di, Ui, Ti, Ki).
  CandidateMapping at(size_t Wi, size_t Fi, size_t Di, size_t Ui, size_t Ti,
                      size_t Ki) const;

  /// Axis indices of the candidate closest to \p M (each axis snaps to the
  /// nearest value — the engine axis to an exact match, else index 0; used
  /// to seed the beam search at the default mapping).
  void closestIndices(const CandidateMapping &M, size_t Index[6]) const;

private:
  std::vector<CandidateMapping> All;
  std::vector<int> Widths;
  std::vector<int> Levels;
  std::vector<int> Devices;
  std::vector<double> Utils;
  std::vector<int> Degrees;
  std::vector<compute::KernelEngine> Engines;
  int MaxPairs = 0;
};

/// Applies the program-transforming knobs of \p Mapping to a copy of
/// \p Program, in pipeline order: unrolls \c TemporalDegree timesteps,
/// fuses \c FusionPairs pairs, and sets the vectorization width (fusion
/// levels enumerated on the base program stay legal on the unrolled one,
/// which has at least as many fusable pairs). Fails when the width does
/// not divide the innermost extent or fusion breaks validation.
/// Partitioning knobs (device budget, target utilization) are applied to
/// PipelineOptions by the caller.
Expected<StencilProgram> applyMapping(const StencilProgram &Program,
                                      const CandidateMapping &Mapping);

} // namespace tuner
} // namespace stencilflow

#endif // STENCILFLOW_TUNER_DESIGNSPACE_H
