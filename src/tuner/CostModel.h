//===- tuner/CostModel.h - Analytic candidate ranking -------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analytic cost model of the mapping autotuner. For each candidate it
/// replays the static half of the pipeline — fuse, compile, dataflow
/// analysis, partitioning — and combines
///
///  - the expected-runtime model C = L + N (Sec. VIII-A, Eq. 1),
///  - the utilization-derived frequency model (core/ResourceModel), using
///    the worst (most utilized) device of the partition, and
///  - bandwidth ceilings: per-device off-chip memory demand against
///    SimConfig's DRAM model, and per-hop remote-stream demand against the
///    link capacity (Sec. VI-B),
///
/// into a predicted cycle count and wall-clock seconds. Candidates that
/// fail any stage — illegal width, fusion failure, deadlocked/unsizable
/// buffers, or a partition exceeding capacity — are *pruned* (returned
/// infeasible with the stage's diagnostic), never errors: an infeasible
/// point is a normal part of the space.
///
/// With unconstrained memory and one device the prediction equals the
/// simulator's cycle count exactly (the simulator asserts this invariant
/// in tests/pipeline_test.cpp); bandwidth-constrained and multi-device
/// predictions are approximate, with the error bound pinned down by
/// tests/tuner_test.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_TUNER_COSTMODEL_H
#define STENCILFLOW_TUNER_COSTMODEL_H

#include "runtime/Pipeline.h"
#include "tuner/DesignSpace.h"

#include <cstdint>
#include <string>

namespace stencilflow {
namespace tuner {

/// The analytic verdict on one candidate mapping.
struct CandidateCost {
  /// False when the candidate was pruned; \c PruneReason says why.
  bool Feasible = false;
  std::string PruneReason;

  /// Eq. 1 cycles C = L + N, before bandwidth/network corrections.
  int64_t ModelCycles = 0;

  /// Predicted cycles including network latency and the dominant
  /// bandwidth slowdown of the streaming phase.
  int64_t PredictedCycles = 0;

  /// Clock frequency of the worst (most utilized) device.
  double FrequencyMHz = 0.0;

  /// PredictedCycles at FrequencyMHz, divided by the temporal degree —
  /// the ranking objective. A degree-T candidate's circuit advances T
  /// timesteps per pass, so candidates compete on seconds *per timestep*;
  /// PredictedCycles stays the raw per-pass count (it must match the
  /// simulator bit-for-bit in the single-device exactness invariant).
  double PredictedSeconds = 0.0;

  /// Timesteps unrolled on-chip by this candidate (the normalizer above).
  int TemporalDegree = 1;

  /// Streaming-phase slowdown factors (>= 1; 1 = not a bottleneck).
  double MemorySlowdown = 1.0;
  double NetworkSlowdown = 1.0;

  /// Devices the partitioner actually used (<= the mapping's budget).
  int Devices = 0;

  /// Highest utilization fraction across devices and resource classes.
  double PeakUtilization = 0.0;

  /// Fused pairs actually applied.
  int FusedPairs = 0;
};

/// Costs candidate mappings of one program under one base configuration.
/// Stateless apart from the (borrowed) program and options; \c cost may be
/// called from multiple threads.
class CostModel {
public:
  /// \p Program and \p Base must outlive the model.
  CostModel(const StencilProgram &Program, const PipelineOptions &Base)
      : Program(Program), Base(Base) {}

  /// Prices \p Mapping. Infeasible candidates come back with
  /// Feasible = false and a prune reason, not an error. The kernel-engine
  /// axis is cost-invariant by design: every engine tier is bit-exact and
  /// models the same hardware, so it changes how fast the testbed
  /// evaluates a candidate, never the predicted cycles.
  CandidateCost cost(const CandidateMapping &Mapping) const;

private:
  const StencilProgram &Program;
  const PipelineOptions &Base;
};

} // namespace tuner
} // namespace stencilflow

#endif // STENCILFLOW_TUNER_COSTMODEL_H
