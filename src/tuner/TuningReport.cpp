//===- tuner/TuningReport.cpp - Machine-readable tuning results ---------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tuner/TuningReport.h"

#include "support/JsonWriter.h"
#include "support/StringUtils.h"

using namespace stencilflow;
using namespace stencilflow::tuner;

std::vector<size_t>
stencilflow::tuner::paretoFront(const std::vector<CandidateRecord> &Records) {
  auto Dominates = [](const CandidateCost &A, const CandidateCost &B) {
    bool NoWorse = A.PredictedSeconds <= B.PredictedSeconds &&
                   A.Devices <= B.Devices &&
                   A.PeakUtilization <= B.PeakUtilization;
    bool Better = A.PredictedSeconds < B.PredictedSeconds ||
                  A.Devices < B.Devices ||
                  A.PeakUtilization < B.PeakUtilization;
    return NoWorse && Better;
  };
  std::vector<size_t> Front;
  for (size_t I = 0; I != Records.size(); ++I) {
    if (!Records[I].Cost.Feasible)
      continue;
    bool Dominated = false;
    for (size_t J = 0; J != Records.size() && !Dominated; ++J)
      Dominated = J != I && Records[J].Cost.Feasible &&
                  Dominates(Records[J].Cost, Records[I].Cost);
    if (!Dominated)
      Front.push_back(I);
  }
  return Front;
}

namespace {

void writeCandidate(json::JsonWriter &W, const CandidateRecord &R) {
  W.beginObject();
  W.attribute("id", R.Mapping.id());
  W.attribute("vector_width", R.Mapping.VectorWidth);
  W.attribute("fusion_pairs", R.Mapping.FusionPairs);
  W.attribute("max_devices", R.Mapping.MaxDevices);
  W.attribute("target_utilization", R.Mapping.TargetUtilization);
  W.attribute("temporal_degree", R.Mapping.TemporalDegree);
  W.attribute("kernel_engine",
              compute::kernelEngineName(R.Mapping.KernelExec));
  W.attribute("round", R.Round);
  W.attribute("feasible", R.Cost.Feasible);
  if (!R.Cost.Feasible) {
    W.attribute("prune_reason", R.Cost.PruneReason);
  } else {
    W.attribute("model_cycles", R.Cost.ModelCycles);
    W.attribute("predicted_cycles", R.Cost.PredictedCycles);
    W.attribute("predicted_seconds", R.Cost.PredictedSeconds);
    W.attribute("frequency_mhz", R.Cost.FrequencyMHz);
    W.attribute("memory_slowdown", R.Cost.MemorySlowdown);
    W.attribute("network_slowdown", R.Cost.NetworkSlowdown);
    W.attribute("devices", R.Cost.Devices);
    W.attribute("peak_utilization", R.Cost.PeakUtilization);
  }
  W.attribute("simulated", R.Simulated);
  if (R.Simulated) {
    if (!R.SimulationError.empty()) {
      W.attribute("simulation_error", R.SimulationError);
    } else {
      W.attribute("validation_passed", R.ValidationPassed);
      W.attribute("simulated_cycles", R.SimulatedCycles);
      W.attribute("simulated_seconds", R.SimulatedSeconds);
      W.attribute("model_error_pct", R.ModelErrorPct);
    }
  }
  W.endObject();
}

} // namespace

std::string TuningReport::toJson() const {
  std::string Out;
  json::JsonWriter W(Out);
  W.beginObject();
  W.attribute("program", ProgramName);
  W.attribute("search", SearchKind);
  W.attribute("seed", static_cast<int64_t>(Seed));
  W.attribute("space_size", SpaceSize);
  W.attribute("explored", Explored);
  W.attribute("pruned", Pruned);
  W.attribute("simulated", SimulatedCount);
  W.key("candidates");
  W.beginArray();
  for (const CandidateRecord &R : Candidates)
    writeCandidate(W, R);
  W.endArray();
  W.key("pareto_front");
  W.beginArray();
  for (size_t Index : ParetoFront)
    W.value(Index);
  W.endArray();
  W.attribute("best_index", static_cast<int64_t>(BestIndex));
  W.attribute("default_index", static_cast<int64_t>(DefaultIndex));
  if (const CandidateRecord *B = best())
    W.attribute("best", B->Mapping.id());
  if (const CandidateRecord *D = defaultCandidate())
    W.attribute("default", D->Mapping.id());
  W.endObject();
  return Out;
}

std::string TuningReport::summary() const {
  std::string Out = formatString(
      "tuned '%s': %s search over %zu-point space, %zu explored "
      "(%zu pruned), %zu simulated, %zu on the Pareto front\n",
      ProgramName.c_str(), SearchKind.c_str(), SpaceSize, Explored, Pruned,
      SimulatedCount, ParetoFront.size());
  const CandidateRecord *B = best();
  const CandidateRecord *D = defaultCandidate();
  if (B)
    Out += formatString(
        "best: %s — %lld simulated cycles at %.0f MHz on %d device(s), "
        "peak utilization %.0f%%, model error %.2f%%\n",
        B->Mapping.id().c_str(),
        static_cast<long long>(B->SimulatedCycles), B->Cost.FrequencyMHz,
        B->Cost.Devices, B->Cost.PeakUtilization * 100.0, B->ModelErrorPct);
  if (B && D && D->SimulatedCycles > 0 && B->SimulatedCycles > 0 && B != D)
    Out += formatString(
        "default %s: %lld simulated cycles — speedup %.2fx\n",
        D->Mapping.id().c_str(),
        static_cast<long long>(D->SimulatedCycles),
        static_cast<double>(D->SimulatedCycles) /
            static_cast<double>(B->SimulatedCycles));
  return Out;
}
