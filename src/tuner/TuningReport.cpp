//===- tuner/TuningReport.cpp - Machine-readable tuning results ---------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tuner/TuningReport.h"

#include "support/JsonWriter.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace stencilflow;
using namespace stencilflow::tuner;

std::vector<size_t>
stencilflow::tuner::paretoFront(const std::vector<CandidateRecord> &Records) {
  auto Dominates = [](const CandidateCost &A, const CandidateCost &B) {
    bool NoWorse = A.PredictedSeconds <= B.PredictedSeconds &&
                   A.Devices <= B.Devices &&
                   A.PeakUtilization <= B.PeakUtilization;
    bool Better = A.PredictedSeconds < B.PredictedSeconds ||
                  A.Devices < B.Devices ||
                  A.PeakUtilization < B.PeakUtilization;
    return NoWorse && Better;
  };
  std::vector<size_t> Front;
  for (size_t I = 0; I != Records.size(); ++I) {
    if (!Records[I].Cost.Feasible)
      continue;
    bool Dominated = false;
    for (size_t J = 0; J != Records.size() && !Dominated; ++J)
      Dominated = J != I && Records[J].Cost.Feasible &&
                  Dominates(Records[J].Cost, Records[I].Cost);
    if (!Dominated)
      Front.push_back(I);
  }
  return Front;
}

void stencilflow::tuner::calibrateSlowdowns(TuningReport &Report) {
  // Calibration samples: simulated, feasible, non-failed candidates. A
  // sample is memory-class when the memory slowdown dominates (ties go to
  // memory — both at 1 means no correction and the sample is inert).
  struct Accumulator {
    double SumExtraSq = 0.0, SumExtraResidual = 0.0;
    int Samples = 0;
  } Memory, Network;
  auto IsSample = [](const CandidateRecord &R) {
    return R.Simulated && R.SimulationError.empty() &&
           R.SimulatedCycles > 0 && R.Cost.Feasible;
  };
  auto IsMemoryBound = [](const CandidateRecord &R) {
    return R.Cost.MemorySlowdown >= R.Cost.NetworkSlowdown;
  };
  for (const CandidateRecord &R : Report.Candidates) {
    if (!IsSample(R))
      continue;
    double Extra = static_cast<double>(R.Cost.PredictedCycles) -
                   static_cast<double>(R.Cost.ModelCycles);
    double Residual = static_cast<double>(R.SimulatedCycles) -
                      static_cast<double>(R.Cost.ModelCycles);
    Accumulator &Acc = IsMemoryBound(R) ? Memory : Network;
    ++Acc.Samples;
    if (Extra <= 0.0)
      continue; // No correction to scale; contributes nothing to the fit.
    Acc.SumExtraSq += Extra * Extra;
    Acc.SumExtraResidual += Extra * Residual;
  }

  SlowdownCalibration &C = Report.Calibration;
  C.MemorySamples = Memory.Samples;
  C.NetworkSamples = Network.Samples;
  // Closed-form least squares; a negative fit (simulator faster than the
  // uncorrected model) clamps to 0 rather than predicting a speedup from
  // congestion.
  if (Memory.SumExtraSq > 0.0) {
    C.MemoryFactor = std::max(0.0, Memory.SumExtraResidual / Memory.SumExtraSq);
    C.Fitted = true;
  }
  if (Network.SumExtraSq > 0.0) {
    C.NetworkFactor =
        std::max(0.0, Network.SumExtraResidual / Network.SumExtraSq);
    C.Fitted = true;
  }

  double ErrBefore = 0.0, ErrAfter = 0.0;
  int Samples = 0;
  for (CandidateRecord &R : Report.Candidates) {
    if (!IsSample(R))
      continue;
    double Factor = IsMemoryBound(R) ? C.MemoryFactor : C.NetworkFactor;
    double Extra = static_cast<double>(R.Cost.PredictedCycles) -
                   static_cast<double>(R.Cost.ModelCycles);
    R.CalibratedPredictedCycles =
        static_cast<double>(R.Cost.ModelCycles) + Factor * std::max(0.0, Extra);
    R.CalibratedErrorPct =
        100.0 * std::abs(R.CalibratedPredictedCycles -
                         static_cast<double>(R.SimulatedCycles)) /
        static_cast<double>(R.SimulatedCycles);
    ErrBefore += R.ModelErrorPct;
    ErrAfter += R.CalibratedErrorPct;
    ++Samples;
  }
  if (Samples > 0) {
    C.MeanErrorPctBefore = ErrBefore / Samples;
    C.MeanErrorPctAfter = ErrAfter / Samples;
  }
}

namespace {

void writeCandidate(json::JsonWriter &W, const CandidateRecord &R) {
  W.beginObject();
  W.attribute("id", R.Mapping.id());
  W.attribute("vector_width", R.Mapping.VectorWidth);
  W.attribute("fusion_pairs", R.Mapping.FusionPairs);
  W.attribute("max_devices", R.Mapping.MaxDevices);
  W.attribute("target_utilization", R.Mapping.TargetUtilization);
  W.attribute("temporal_degree", R.Mapping.TemporalDegree);
  W.attribute("kernel_engine",
              compute::kernelEngineName(R.Mapping.KernelExec));
  W.attribute("round", R.Round);
  W.attribute("feasible", R.Cost.Feasible);
  if (!R.Cost.Feasible) {
    W.attribute("prune_reason", R.Cost.PruneReason);
  } else {
    W.attribute("model_cycles", R.Cost.ModelCycles);
    W.attribute("predicted_cycles", R.Cost.PredictedCycles);
    W.attribute("predicted_seconds", R.Cost.PredictedSeconds);
    W.attribute("frequency_mhz", R.Cost.FrequencyMHz);
    W.attribute("memory_slowdown", R.Cost.MemorySlowdown);
    W.attribute("network_slowdown", R.Cost.NetworkSlowdown);
    W.attribute("devices", R.Cost.Devices);
    W.attribute("peak_utilization", R.Cost.PeakUtilization);
  }
  W.attribute("simulated", R.Simulated);
  if (R.Simulated) {
    if (!R.SimulationError.empty()) {
      W.attribute("simulation_error", R.SimulationError);
    } else {
      W.attribute("validation_passed", R.ValidationPassed);
      W.attribute("simulated_cycles", R.SimulatedCycles);
      W.attribute("simulated_seconds", R.SimulatedSeconds);
      W.attribute("model_error_pct", R.ModelErrorPct);
      if (R.CalibratedPredictedCycles > 0.0) {
        W.attribute("calibrated_predicted_cycles",
                    R.CalibratedPredictedCycles);
        W.attribute("calibrated_error_pct", R.CalibratedErrorPct);
      }
    }
  }
  W.endObject();
}

} // namespace

std::string TuningReport::toJson() const {
  std::string Out;
  json::JsonWriter W(Out);
  W.beginObject();
  W.attribute("program", ProgramName);
  W.attribute("search", SearchKind);
  W.attribute("seed", static_cast<int64_t>(Seed));
  W.attribute("space_size", SpaceSize);
  W.attribute("explored", Explored);
  W.attribute("pruned", Pruned);
  W.attribute("simulated", SimulatedCount);
  W.key("candidates");
  W.beginArray();
  for (const CandidateRecord &R : Candidates)
    writeCandidate(W, R);
  W.endArray();
  W.key("pareto_front");
  W.beginArray();
  for (size_t Index : ParetoFront)
    W.value(Index);
  W.endArray();
  W.key("calibration");
  W.beginObject();
  W.attribute("fitted", Calibration.Fitted);
  W.attribute("memory_factor", Calibration.MemoryFactor);
  W.attribute("network_factor", Calibration.NetworkFactor);
  W.attribute("memory_samples",
              static_cast<int64_t>(Calibration.MemorySamples));
  W.attribute("network_samples",
              static_cast<int64_t>(Calibration.NetworkSamples));
  W.attribute("mean_error_pct_before", Calibration.MeanErrorPctBefore);
  W.attribute("mean_error_pct_after", Calibration.MeanErrorPctAfter);
  W.endObject();
  W.attribute("best_index", static_cast<int64_t>(BestIndex));
  W.attribute("default_index", static_cast<int64_t>(DefaultIndex));
  if (const CandidateRecord *B = best())
    W.attribute("best", B->Mapping.id());
  if (const CandidateRecord *D = defaultCandidate())
    W.attribute("default", D->Mapping.id());
  W.endObject();
  return Out;
}

std::string TuningReport::summary() const {
  std::string Out = formatString(
      "tuned '%s': %s search over %zu-point space, %zu explored "
      "(%zu pruned), %zu simulated, %zu on the Pareto front\n",
      ProgramName.c_str(), SearchKind.c_str(), SpaceSize, Explored, Pruned,
      SimulatedCount, ParetoFront.size());
  const CandidateRecord *B = best();
  const CandidateRecord *D = defaultCandidate();
  if (B)
    Out += formatString(
        "best: %s — %lld simulated cycles at %.0f MHz on %d device(s), "
        "peak utilization %.0f%%, model error %.2f%%\n",
        B->Mapping.id().c_str(),
        static_cast<long long>(B->SimulatedCycles), B->Cost.FrequencyMHz,
        B->Cost.Devices, B->Cost.PeakUtilization * 100.0, B->ModelErrorPct);
  if (B && D && D->SimulatedCycles > 0 && B->SimulatedCycles > 0 && B != D)
    Out += formatString(
        "default %s: %lld simulated cycles — speedup %.2fx\n",
        D->Mapping.id().c_str(),
        static_cast<long long>(D->SimulatedCycles),
        static_cast<double>(D->SimulatedCycles) /
            static_cast<double>(B->SimulatedCycles));
  if (Calibration.Fitted)
    Out += formatString(
        "calibration: memory x%.3f (%d sample(s)), network x%.3f "
        "(%d sample(s)), mean model error %.2f%% -> %.2f%%\n",
        Calibration.MemoryFactor, Calibration.MemorySamples,
        Calibration.NetworkFactor, Calibration.NetworkSamples,
        Calibration.MeanErrorPctBefore, Calibration.MeanErrorPctAfter);
  return Out;
}
