//===- tuner/Search.h - Deterministic design-space search ---------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The autotuner's search strategies, both deterministic so tuning runs
/// are reproducible and testable:
///
///  - \b exhaustive: when the space fits the candidate budget, every point
///    is costed, in enumeration order;
///  - \b seeded \b beam \b search: otherwise, a beam of the currently best
///    mappings expands along axis neighborhoods (one step along each of
///    the five axes), costing new points until the budget is spent or the
///    frontier stops producing unseen candidates. The initial beam is the
///    default mapping plus deterministically seeded random points
///    (support/Random, splitmix64), so identical (seed, space) inputs
///    yield bit-identical trajectories.
///
/// All ranking ties break on the candidate id string, never on pointer or
/// hash order.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_TUNER_SEARCH_H
#define STENCILFLOW_TUNER_SEARCH_H

#include "tuner/CostModel.h"
#include "tuner/DesignSpace.h"
#include "tuner/TuningReport.h"

#include <cstdint>
#include <string>
#include <vector>

namespace stencilflow {
namespace tuner {

/// Search strategy knobs.
struct SearchOptions {
  /// Maximum candidates the search may cost. Spaces up to this size are
  /// swept exhaustively; larger ones fall back to beam search.
  int CandidateBudget = 64;

  /// Beam width (survivors per round) of the beam search.
  int BeamWidth = 6;

  /// PRNG seed for the initial beam.
  uint64_t Seed = 0x5F3759DF;
};

/// What the search produced.
struct SearchResult {
  /// "exhaustive" or "beam".
  std::string Kind;

  /// Every costed candidate, in exploration order.
  std::vector<CandidateRecord> Records;
};

/// True when \p A ranks strictly before \p B in the analytic order the
/// search optimizes: feasible first, then (PredictedSeconds, Devices,
/// PeakUtilization), with the mapping id as the final deterministic
/// tie-break.
bool rankByPrediction(const CandidateRecord &A, const CandidateRecord &B);

/// Explores \p Space with \p Model. \p Default seeds the beam (it is
/// always costed, even exhaustively — it is part of every space by
/// construction of the axes).
SearchResult searchDesignSpace(const DesignSpace &Space,
                               const CostModel &Model,
                               const SearchOptions &Options,
                               const CandidateMapping &Default);

} // namespace tuner
} // namespace stencilflow

#endif // STENCILFLOW_TUNER_SEARCH_H
