//===- tuner/Search.cpp - Deterministic design-space search -------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tuner/Search.h"

#include "support/Random.h"

#include <algorithm>

using namespace stencilflow;
using namespace stencilflow::tuner;

bool stencilflow::tuner::rankByPrediction(const CandidateRecord &A,
                                          const CandidateRecord &B) {
  if (A.Cost.Feasible != B.Cost.Feasible)
    return A.Cost.Feasible;
  if (A.Cost.Feasible) {
    if (A.Cost.PredictedSeconds != B.Cost.PredictedSeconds)
      return A.Cost.PredictedSeconds < B.Cost.PredictedSeconds;
    if (A.Cost.Devices != B.Cost.Devices)
      return A.Cost.Devices < B.Cost.Devices;
    if (A.Cost.PeakUtilization != B.Cost.PeakUtilization)
      return A.Cost.PeakUtilization < B.Cost.PeakUtilization;
  }
  return A.Mapping.id() < B.Mapping.id();
}

namespace {

/// Linearizes/delinearizes axis indices over the 6D space so visited
/// candidates dedup on a flat bitmap instead of string ids.
struct AxisGrid {
  size_t Sizes[6];

  explicit AxisGrid(const DesignSpace &Space)
      : Sizes{Space.vectorWidths().size(), Space.fusionLevels().size(),
              Space.deviceCounts().size(),
              Space.targetUtilizations().size(),
              Space.temporalDegrees().size(),
              Space.kernelEngines().size()} {}

  size_t linearize(const size_t Index[6]) const {
    size_t Linear = Index[0];
    for (int Axis = 1; Axis != 6; ++Axis)
      Linear = Linear * Sizes[Axis] + Index[Axis];
    return Linear;
  }

  void delinearize(size_t Linear, size_t Index[6]) const {
    for (int Axis = 5; Axis != 0; --Axis) {
      Index[Axis] = Linear % Sizes[Axis];
      Linear /= Sizes[Axis];
    }
    Index[0] = Linear;
  }
};

/// Tracks costed candidates and appends records in exploration order.
class Explorer {
public:
  Explorer(const DesignSpace &Space, const CostModel &Model,
           SearchResult &Result, int Budget)
      : Space(Space), Model(Model), Result(Result), Grid(Space),
        Visited(Space.size(), false), Budget(Budget) {}

  bool budgetLeft() const {
    return Result.Records.size() < static_cast<size_t>(Budget);
  }

  /// Costs the candidate at \p Linear unless already visited or out of
  /// budget. Returns true when a new record was appended.
  bool explore(size_t Linear, int Round) {
    if (Visited[Linear] || !budgetLeft())
      return false;
    Visited[Linear] = true;
    size_t Index[6];
    Grid.delinearize(Linear, Index);
    CandidateRecord Record;
    Record.Mapping = Space.at(Index[0], Index[1], Index[2], Index[3],
                              Index[4], Index[5]);
    Record.Cost = Model.cost(Record.Mapping);
    Record.Round = Round;
    Result.Records.push_back(std::move(Record));
    return true;
  }

  const AxisGrid &grid() const { return Grid; }

private:
  const DesignSpace &Space;
  const CostModel &Model;
  SearchResult &Result;
  AxisGrid Grid;
  std::vector<bool> Visited;
  int Budget;
};

} // namespace

SearchResult
stencilflow::tuner::searchDesignSpace(const DesignSpace &Space,
                                      const CostModel &Model,
                                      const SearchOptions &Options,
                                      const CandidateMapping &Default) {
  SearchResult Result;
  int Budget = std::max(1, Options.CandidateBudget);
  Explorer Exp(Space, Model, Result, Budget);
  AxisGrid Grid(Space);

  if (Space.size() <= static_cast<size_t>(Budget)) {
    // Small space: sweep every point in enumeration order.
    Result.Kind = "exhaustive";
    for (size_t Linear = 0; Linear != Space.size(); ++Linear)
      Exp.explore(Linear, 0);
    return Result;
  }

  // Seeded beam search. The initial beam is the default mapping plus
  // deterministically random points; each round expands every beam member
  // one step along each axis and keeps the analytically best BeamWidth.
  Result.Kind = "beam";
  int BeamWidth = std::max(1, Options.BeamWidth);
  Random Rng(Options.Seed);

  std::vector<size_t> Beam;
  size_t Index[6];
  Space.closestIndices(Default, Index);
  Beam.push_back(Grid.linearize(Index));
  for (int Attempt = 0;
       static_cast<int>(Beam.size()) < BeamWidth && Attempt < 16 * BeamWidth;
       ++Attempt) {
    size_t Pick = Rng.nextBounded(Space.size());
    if (std::find(Beam.begin(), Beam.end(), Pick) == Beam.end())
      Beam.push_back(Pick);
  }
  for (size_t Linear : Beam)
    Exp.explore(Linear, 0);

  for (int Round = 1; Exp.budgetLeft(); ++Round) {
    bool Expanded = false;
    for (size_t Linear : Beam) {
      Grid.delinearize(Linear, Index);
      for (int Axis = 0; Axis != 6; ++Axis) {
        for (int Step : {-1, +1}) {
          if (Step < 0 && Index[Axis] == 0)
            continue;
          if (Step > 0 && Index[Axis] + 1 >= Grid.Sizes[Axis])
            continue;
          size_t Neighbor[6] = {Index[0], Index[1], Index[2],
                                Index[3], Index[4], Index[5]};
          Neighbor[Axis] += Step;
          Expanded |= Exp.explore(Grid.linearize(Neighbor), Round);
        }
      }
    }
    if (!Expanded)
      break; // Frontier closed: every neighbor is already costed.

    // Re-rank everything costed so far and keep the best BeamWidth as the
    // next frontier. Ties break on the id string — never container order.
    std::vector<size_t> Order(Result.Records.size());
    for (size_t I = 0; I != Order.size(); ++I)
      Order[I] = I;
    std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
      return rankByPrediction(Result.Records[A], Result.Records[B]);
    });
    Beam.clear();
    for (size_t I = 0;
         I != Order.size() && static_cast<int>(Beam.size()) < BeamWidth;
         ++I) {
      const CandidateMapping &M = Result.Records[Order[I]].Mapping;
      Space.closestIndices(M, Index);
      Beam.push_back(Grid.linearize(Index));
    }
  }
  return Result;
}
