//===- tuner/Tuner.h - Mapping autotuner front door ---------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mapping autotuner: closes the loop around the paper's analyses by
/// searching the design space of vectorization width x stencil fusion x
/// device count x partitioner target utilization (see tuner/DesignSpace.h)
/// instead of evaluating one hand-picked configuration.
///
/// Flow: enumerate -> prune/cost analytically (tuner/CostModel.h) ->
/// deterministic search (tuner/Search.h) -> validate the top-K candidates
/// bit-exactly on the cycle-level simulator, concurrently across worker
/// threads -> emit the Pareto front and the chosen plan
/// (tuner/TuningReport.h).
///
/// The default mapping (W=1, unfused, base device budget and utilization)
/// is always costed and always simulated, so every report quantifies the
/// tuned-vs-default speedup on simulator ground truth.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_TUNER_TUNER_H
#define STENCILFLOW_TUNER_TUNER_H

#include "runtime/Pipeline.h"
#include "tuner/CostModel.h"
#include "tuner/DesignSpace.h"
#include "tuner/Search.h"
#include "tuner/TuningReport.h"

namespace stencilflow {
namespace tuner {

/// Autotuner configuration.
struct TuneOptions {
  /// Design-space axis overrides (empty axes are derived per program).
  DesignSpaceOptions Space;

  /// Search strategy (budget, beam width, seed).
  SearchOptions Search;

  /// Analytically best candidates to validate on the simulator, in
  /// addition to the default mapping.
  int TopK = 3;

  /// Worker threads for concurrent candidate simulation; 0 = one per
  /// hardware core (capped at the number of simulation jobs).
  int Workers = 0;

  /// When false, skip simulation entirely: the plan is chosen by the
  /// analytic model alone and \c TuningOutcome::BestRun stays empty.
  bool Simulate = true;
};

/// The tuner's result: the chosen mapping, the full report, and — when
/// simulation ran — the winning candidate's complete pipeline result
/// (simulator stats and reference-executor validation included).
struct TuningOutcome {
  CandidateMapping Best;
  TuningReport Report;

  /// Valid when \c TuneOptions::Simulate was set; the winning plan's run.
  PipelineResult BestRun;
};

/// Tunes \p Program under base configuration \p Base (partitioner device
/// and resource calibration, simulator config, kernel options are all
/// taken from it; its MaxDevices caps the device axis). Fails only when
/// the space cannot be enumerated or *no* candidate is feasible —
/// individual infeasible candidates are pruned into the report instead.
Expected<TuningOutcome> tuneProgram(const StencilProgram &Program,
                                    const PipelineOptions &Base,
                                    const TuneOptions &Options = {});

} // namespace tuner
} // namespace stencilflow

#endif // STENCILFLOW_TUNER_TUNER_H
