//===- tuner/TuningReport.h - Machine-readable tuning results -----*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The autotuner's observable output: every candidate the search touched
/// (in exploration order, with its search round — the trajectory), its
/// analytic cost or prune reason, simulator validation results for the
/// top-K, the Pareto front over (predicted runtime, device count, peak
/// utilization), and the chosen plan. \c toJson() serializes the whole
/// report so model-vs-simulator error is observable from scripts and CI.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_TUNER_TUNINGREPORT_H
#define STENCILFLOW_TUNER_TUNINGREPORT_H

#include "tuner/CostModel.h"
#include "tuner/DesignSpace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace stencilflow {
namespace tuner {

/// One explored candidate: mapping, analytic verdict, and — for the top-K
/// — the simulator's ground truth.
struct CandidateRecord {
  CandidateMapping Mapping;
  CandidateCost Cost;

  /// Search round that first reached this candidate (0 = initial beam or
  /// exhaustive sweep).
  int Round = 0;

  /// Whether the cycle-level simulator validated this candidate.
  bool Simulated = false;

  /// Simulator ground truth (valid when Simulated and SimulationError is
  /// empty). SimulatedSeconds uses the cost model's frequency so predicted
  /// and simulated times share one clock.
  bool ValidationPassed = false;
  int64_t SimulatedCycles = 0;
  double SimulatedSeconds = 0.0;

  /// 100 * |predicted - simulated| / simulated cycles.
  double ModelErrorPct = 0.0;

  /// The prediction with the run's fitted slowdown factors applied
  /// (\ref calibrateSlowdowns), and its error against the simulator.
  /// Zero until calibration runs.
  double CalibratedPredictedCycles = 0.0;
  double CalibratedErrorPct = 0.0;

  /// Non-empty when the simulation itself failed (deadlock, cycle limit).
  std::string SimulationError;
};

/// A least-squares refit of the cost model's first-order slowdown terms
/// against this run's simulated candidates. The model predicts
/// PredictedCycles = ModelCycles + Extra, where Extra is the
/// bandwidth/network correction; calibration finds the factor f minimizing
/// sum((ModelCycles + f*Extra - SimulatedCycles)^2), fitted separately for
/// memory-bound and network-bound candidates (their corrections have
/// independent physical causes). A factor near 1 means the analytic
/// correction already matches the simulator; the high-order workloads,
/// whose deep halos shift the memory/compute balance, are the intended
/// calibration diet (bench/highorder).
struct SlowdownCalibration {
  /// True once at least one class had a sample with a non-zero correction.
  bool Fitted = false;

  /// Fitted multipliers on the model's correction term (1 = keep as-is;
  /// a class with no samples keeps 1).
  double MemoryFactor = 1.0;
  double NetworkFactor = 1.0;
  int MemorySamples = 0;
  int NetworkSamples = 0;

  /// Mean ModelErrorPct over the calibration samples, before and after
  /// applying the fitted factors.
  double MeanErrorPctBefore = 0.0;
  double MeanErrorPctAfter = 0.0;
};

/// Indices of the non-dominated feasible records, minimizing the triple
/// (PredictedSeconds, Devices, PeakUtilization). Deterministic: ascending
/// index order; duplicates of an objective vector all survive.
std::vector<size_t> paretoFront(const std::vector<CandidateRecord> &Records);

/// Fits \c Report.Calibration against the report's simulated candidates
/// and fills every such candidate's CalibratedPredictedCycles /
/// CalibratedErrorPct. Safe on reports with no simulations (stays
/// unfitted). Runs automatically at the end of tuneProgram.
void calibrateSlowdowns(struct TuningReport &Report);

/// The complete, machine-readable outcome of one tuning run.
struct TuningReport {
  std::string ProgramName;

  /// "exhaustive" or "beam".
  std::string SearchKind;
  uint64_t Seed = 0;

  /// Size of the full design space vs what the search actually touched.
  size_t SpaceSize = 0;
  size_t Explored = 0;
  size_t Pruned = 0;
  size_t SimulatedCount = 0;

  /// Every explored candidate, in exploration order (the trajectory).
  std::vector<CandidateRecord> Candidates;

  /// Slowdown-factor refit over the simulated candidates (all-defaults
  /// until \ref calibrateSlowdowns runs).
  SlowdownCalibration Calibration;

  /// Indices into \c Candidates of the Pareto-optimal feasible mappings.
  std::vector<size_t> ParetoFront;

  /// Index of the chosen plan and of the default (W=1, unfused) baseline;
  /// -1 when absent.
  int BestIndex = -1;
  int DefaultIndex = -1;

  const CandidateRecord *best() const {
    return BestIndex >= 0 ? &Candidates[BestIndex] : nullptr;
  }
  const CandidateRecord *defaultCandidate() const {
    return DefaultIndex >= 0 ? &Candidates[DefaultIndex] : nullptr;
  }

  /// Serializes the full report (trajectory, prune reasons, predicted vs
  /// simulated cycles, Pareto front, chosen plan) as a JSON document.
  std::string toJson() const;

  /// Short human-readable summary for CLI output.
  std::string summary() const;
};

} // namespace tuner
} // namespace stencilflow

#endif // STENCILFLOW_TUNER_TUNINGREPORT_H
