//===- support/Casting.h - isa/cast/dyn_cast helpers ------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled RTTI in the LLVM style. A class hierarchy opts in by
/// providing a kind discriminator and a static \c classof(const Base*)
/// predicate; \c isa / \c cast / \c dyn_cast then work without enabling
/// C++ RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SUPPORT_CASTING_H
#define STENCILFLOW_SUPPORT_CASTING_H

#include <cassert>

namespace stencilflow {

/// Returns true if \p Val is an instance of \p To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns nullptr when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace stencilflow

#endif // STENCILFLOW_SUPPORT_CASTING_H
