//===- support/CommandLine.cpp - Tiny flag parser --------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cstdlib>

using namespace stencilflow;

Expected<CommandLine>
CommandLine::parse(int Argc, const char *const *Argv,
                   const std::vector<std::string> &Known) {
  CommandLine Result;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (!startsWith(Arg, "--")) {
      Result.Positional.push_back(Arg);
      continue;
    }
    std::string Body = Arg.substr(2);
    std::string Name = Body, Value;
    size_t Eq = Body.find('=');
    if (Eq != std::string::npos) {
      Name = Body.substr(0, Eq);
      Value = Body.substr(Eq + 1);
    } else if (I + 1 < Argc && !startsWith(Argv[I + 1], "--")) {
      Value = Argv[++I];
    }
    if (std::find(Known.begin(), Known.end(), Name) == Known.end())
      return makeError("unknown flag '--" + Name + "'");
    Result.Values[Name] = Value;
  }
  return Result;
}

std::string CommandLine::getString(const std::string &Flag,
                                   const std::string &Default) const {
  auto It = Values.find(Flag);
  return It == Values.end() ? Default : It->second;
}

int64_t CommandLine::getInt(const std::string &Flag, int64_t Default) const {
  auto It = Values.find(Flag);
  if (It == Values.end())
    return Default;
  return std::strtoll(It->second.c_str(), nullptr, 10);
}

double CommandLine::getDouble(const std::string &Flag, double Default) const {
  auto It = Values.find(Flag);
  if (It == Values.end())
    return Default;
  return std::strtod(It->second.c_str(), nullptr);
}
