//===- support/Json.h - Minimal JSON parser and writer ----------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, self-contained JSON implementation used for the StencilFlow
/// program-description format (paper Sec. II, Lst. 1).
///
/// Objects preserve insertion order so that emitted program descriptions are
/// deterministic and diffable. Parsing reports errors with line and column
/// information. No exceptions are used.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SUPPORT_JSON_H
#define STENCILFLOW_SUPPORT_JSON_H

#include "support/Error.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace stencilflow {
namespace json {

class Value;

/// An ordered JSON object: preserves insertion order on iteration while
/// providing O(log n) lookup by key.
class Object {
public:
  Object() = default;
  Object(Object &&) = default;
  Object &operator=(Object &&) = default;
  /// Deep copy (members are held by pointer for stable addresses).
  Object(const Object &Other) { *this = Other; }
  Object &operator=(const Object &Other);

  /// Returns the value for \p Key, or nullptr if absent.
  const Value *get(std::string_view Key) const;
  Value *get(std::string_view Key);

  /// Inserts or overwrites the value for \p Key.
  void set(std::string Key, Value Val);

  /// Returns true if \p Key is present.
  bool contains(std::string_view Key) const { return get(Key) != nullptr; }

  /// Number of members.
  size_t size() const { return Members.size(); }
  bool empty() const { return Members.empty(); }

  /// Iteration in insertion order.
  auto begin() const { return Members.begin(); }
  auto end() const { return Members.end(); }

private:
  std::vector<std::pair<std::string, std::unique_ptr<Value>>> Members;
};

/// Discriminates the type held by a \c Value.
enum class ValueKind { Null, Boolean, Number, String, Array, Object };

/// A JSON value: null, boolean, number, string, array, or object.
class Value {
public:
  Value() : Storage(std::monostate()) {}
  Value(std::nullptr_t) : Storage(std::monostate()) {}
  Value(bool B) : Storage(B) {}
  Value(double D) : Storage(D) {}
  Value(int I) : Storage(static_cast<double>(I)) {}
  Value(int64_t I) : Storage(static_cast<double>(I)) {}
  Value(size_t I) : Storage(static_cast<double>(I)) {}
  Value(std::string S) : Storage(std::move(S)) {}
  Value(const char *S) : Storage(std::string(S)) {}
  Value(std::vector<Value> A) : Storage(std::move(A)) {}
  Value(Object O) : Storage(std::move(O)) {}

  /// Returns the kind of the contained value.
  ValueKind kind() const {
    return static_cast<ValueKind>(Storage.index());
  }

  bool isNull() const { return kind() == ValueKind::Null; }
  bool isBoolean() const { return kind() == ValueKind::Boolean; }
  bool isNumber() const { return kind() == ValueKind::Number; }
  bool isString() const { return kind() == ValueKind::String; }
  bool isArray() const { return kind() == ValueKind::Array; }
  bool isObject() const { return kind() == ValueKind::Object; }

  /// Typed accessors; must only be called when the kind matches.
  bool getBoolean() const { return std::get<bool>(Storage); }
  double getNumber() const { return std::get<double>(Storage); }
  int64_t getInteger() const {
    return static_cast<int64_t>(std::get<double>(Storage));
  }
  const std::string &getString() const { return std::get<std::string>(Storage); }
  const std::vector<Value> &getArray() const {
    return std::get<std::vector<Value>>(Storage);
  }
  std::vector<Value> &getArray() { return std::get<std::vector<Value>>(Storage); }
  const Object &getObject() const { return std::get<Object>(Storage); }
  Object &getObject() { return std::get<Object>(Storage); }

  /// Serializes this value to compact JSON text.
  std::string toString() const;

  /// Serializes this value to indented, human-readable JSON text.
  std::string toPrettyString(unsigned Indent = 2) const;

private:
  std::variant<std::monostate, bool, double, std::string, std::vector<Value>,
               Object>
      Storage;
};

/// Parses JSON text. Errors include 1-based line:column positions.
Expected<Value> parse(std::string_view Text);

/// Reads and parses a JSON file from disk.
Expected<Value> parseFile(const std::string &Path);

} // namespace json
} // namespace stencilflow

#endif // STENCILFLOW_SUPPORT_JSON_H
