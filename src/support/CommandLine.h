//===- support/CommandLine.h - Tiny flag parser ------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal command-line option parsing used by the examples and benchmark
/// harnesses: `--name=value` or `--name value` pairs plus positional
/// arguments. Unknown flags are reported as errors so typos do not silently
/// change experiments.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SUPPORT_COMMANDLINE_H
#define STENCILFLOW_SUPPORT_COMMANDLINE_H

#include "support/Error.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace stencilflow {

/// Parsed command-line options.
class CommandLine {
public:
  /// Parses argv. \p Known lists accepted flag names (without "--").
  static Expected<CommandLine> parse(int Argc, const char *const *Argv,
                                     const std::vector<std::string> &Known);

  /// Returns the string value of \p Flag, or \p Default when absent.
  std::string getString(const std::string &Flag,
                        const std::string &Default = "") const;

  /// Returns the integer value of \p Flag, or \p Default when absent.
  int64_t getInt(const std::string &Flag, int64_t Default) const;

  /// Returns the double value of \p Flag, or \p Default when absent.
  double getDouble(const std::string &Flag, double Default) const;

  /// Returns true if \p Flag was given (with any or no value).
  bool has(const std::string &Flag) const { return Values.count(Flag) != 0; }

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string> &positional() const { return Positional; }

private:
  std::map<std::string, std::string> Values;
  std::vector<std::string> Positional;
};

} // namespace stencilflow

#endif // STENCILFLOW_SUPPORT_COMMANDLINE_H
