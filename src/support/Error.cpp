//===- support/Error.cpp - Error-code taxonomy ---------------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

using namespace stencilflow;

const char *stencilflow::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Unknown:
    return "unknown";
  case ErrorCode::InvalidInput:
    return "invalid-input";
  case ErrorCode::Infeasible:
    return "infeasible";
  case ErrorCode::Deadlock:
    return "deadlock";
  case ErrorCode::Starvation:
    return "starvation";
  case ErrorCode::CycleLimit:
    return "cycle-limit";
  case ErrorCode::LinkFailure:
    return "link-failure";
  case ErrorCode::DataCorruption:
    return "data-corruption";
  case ErrorCode::DeviceLost:
    return "device-lost";
  case ErrorCode::ValidationMismatch:
    return "validation-mismatch";
  case ErrorCode::SnapshotInvalid:
    return "snapshot-invalid";
  case ErrorCode::SnapshotIncompatible:
    return "snapshot-incompatible";
  }
  return "unknown";
}

std::optional<ErrorCode>
stencilflow::errorCodeFromName(std::string_view Name) {
  for (int Code = 0; Code != NumErrorCodes; ++Code)
    if (Name == errorCodeName(static_cast<ErrorCode>(Code)))
      return static_cast<ErrorCode>(Code);
  return std::nullopt;
}

int stencilflow::exitCodeFor(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::ValidationMismatch:
    return 2;
  case ErrorCode::Deadlock:
    return 3;
  case ErrorCode::CycleLimit:
    return 4;
  case ErrorCode::DeviceLost:
    return 5;
  case ErrorCode::LinkFailure:
    return 6;
  case ErrorCode::DataCorruption:
    return 7;
  case ErrorCode::Starvation:
    return 8;
  case ErrorCode::SnapshotInvalid:
    return 9;
  case ErrorCode::SnapshotIncompatible:
    return 10;
  case ErrorCode::Unknown:
  case ErrorCode::InvalidInput:
  case ErrorCode::Infeasible:
    return 1;
  }
  return 1;
}
