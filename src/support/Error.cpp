//===- support/Error.cpp - Error-code taxonomy ---------------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

using namespace stencilflow;

const char *stencilflow::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Unknown:
    return "unknown";
  case ErrorCode::InvalidInput:
    return "invalid-input";
  case ErrorCode::Infeasible:
    return "infeasible";
  case ErrorCode::Deadlock:
    return "deadlock";
  case ErrorCode::Starvation:
    return "starvation";
  case ErrorCode::CycleLimit:
    return "cycle-limit";
  case ErrorCode::LinkFailure:
    return "link-failure";
  case ErrorCode::DataCorruption:
    return "data-corruption";
  case ErrorCode::DeviceLost:
    return "device-lost";
  case ErrorCode::ValidationMismatch:
    return "validation-mismatch";
  case ErrorCode::SnapshotInvalid:
    return "snapshot-invalid";
  case ErrorCode::SnapshotIncompatible:
    return "snapshot-incompatible";
  case ErrorCode::Overloaded:
    return "overloaded";
  }
  return "unknown";
}

std::optional<ErrorCode>
stencilflow::errorCodeFromName(std::string_view Name) {
  for (int Code = 0; Code != NumErrorCodes; ++Code)
    if (Name == errorCodeName(static_cast<ErrorCode>(Code)))
      return static_cast<ErrorCode>(Code);
  return std::nullopt;
}

const std::vector<ExitCodeRow> &stencilflow::exitCodeTable() {
  // One row per ErrorCode, in enum order. This is the single source of
  // truth for process exit codes; support_test asserts completeness,
  // ordering, and distinctness of the classified rows.
  static const std::vector<ExitCodeRow> Table = {
      {ErrorCode::Unknown, 1, "unclassified failure"},
      {ErrorCode::InvalidInput, 1,
       "malformed program description or invalid configuration"},
      {ErrorCode::Infeasible, 1, "no feasible mapping"},
      {ErrorCode::Deadlock, 3, "cyclic-dependency deadlock"},
      {ErrorCode::Starvation, 8, "progress watchdog stall timeout"},
      {ErrorCode::CycleLimit, 4, "hard simulation cycle limit exceeded"},
      {ErrorCode::LinkFailure, 6, "retransmit budget exhausted"},
      {ErrorCode::DataCorruption, 7,
       "payload corruption with no recovery protocol"},
      {ErrorCode::DeviceLost, 5, "permanent device failure"},
      {ErrorCode::ValidationMismatch, 2,
       "simulated outputs disagree with the reference executor"},
      {ErrorCode::SnapshotInvalid, 9, "unreadable checkpoint snapshot"},
      {ErrorCode::SnapshotIncompatible, 10,
       "checkpoint snapshot from a different machine"},
      {ErrorCode::Overloaded, 11,
       "request shed by serving admission control"},
  };
  return Table;
}

int stencilflow::exitCodeFor(ErrorCode Code) {
  for (const ExitCodeRow &Row : exitCodeTable())
    if (Row.Code == Code)
      return Row.ExitCode;
  return 1;
}

std::string stencilflow::exitCodeLegend() {
  std::string Legend = "exit codes: 0 success\n";
  for (const ExitCodeRow &Row : exitCodeTable()) {
    // The unclassified rows collapse into the generic "1" line.
    if (Row.ExitCode == 1 && Row.Code != ErrorCode::Unknown)
      continue;
    Legend += "  " + std::to_string(Row.ExitCode) + "  " +
              (Row.Code == ErrorCode::Unknown ? "error"
                                              : errorCodeName(Row.Code)) +
              ": " + Row.Description + "\n";
  }
  return Legend;
}
