//===- support/Args.cpp - Shared CLI argument surface --------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Args.h"

#include "support/StringUtils.h"

#include <cstdio>

using namespace stencilflow;
using namespace stencilflow::cli;

ArgSet::ArgSet(std::string Tool, std::string Summary, std::string Positional)
    : Tool(std::move(Tool)), Summary(std::move(Summary)),
      Positional(std::move(Positional)) {}

ArgSet &ArgSet::flag(std::string Name, std::string Help) {
  Specs.push_back({std::move(Name), "", std::move(Help)});
  return *this;
}

ArgSet &ArgSet::option(std::string Name, std::string Value,
                       std::string Help) {
  Specs.push_back({std::move(Name), std::move(Value), std::move(Help)});
  return *this;
}

ArgSet &ArgSet::group(std::string Title) {
  Specs.push_back({"", "", std::move(Title)});
  return *this;
}

ArgSet &ArgSet::pack(const std::vector<ArgSpec> &Pack) {
  Specs.insert(Specs.end(), Pack.begin(), Pack.end());
  return *this;
}

std::string ArgSet::usageLine() const {
  std::string Usage = "usage: " + Tool;
  if (!Positional.empty())
    Usage += " " + Positional;
  Usage += " [flags] (--help lists them)";
  return Usage;
}

std::string ArgSet::helpText() const {
  std::string Text = usageLine() + "\n" + Summary + "\n";
  for (const ArgSpec &S : Specs) {
    if (S.Name.empty()) {
      Text += "\n" + S.Help + ":\n";
      continue;
    }
    std::string Left = "--" + S.Name;
    if (!S.Value.empty())
      Left += " <" + S.Value + ">";
    Text += formatString("  %-28s %s\n", Left.c_str(), S.Help.c_str());
  }
  Text += "\n" + exitCodeLegend();
  return Text;
}

Expected<CommandLine> ArgSet::parse(int Argc,
                                    const char *const *Argv) const {
  HelpShown = false;
  std::vector<std::string> Known;
  Known.reserve(Specs.size() + 1);
  Known.push_back("help");
  for (const ArgSpec &S : Specs)
    if (!S.Name.empty())
      Known.push_back(S.Name);

  Expected<CommandLine> Args = CommandLine::parse(Argc, Argv, Known);
  if (!Args)
    return Args.takeError().addContext(usageLine());
  if (Args->has("help")) {
    HelpShown = true;
    std::fputs(helpText().c_str(), stdout);
  }
  return Args;
}

const std::vector<ArgSpec> &cli::sessionFlagSpecs() {
  static const std::vector<ArgSpec> Specs = {
      {"", "", "pipeline"},
      {"fuse", "", "aggressive stencil fusion before analysis"},
      {"simplify", "", "algebraic simplification of every node's code"},
      {"vectorize", "W", "override the program's vectorization width"},
      {"temporal-degree", "T",
       "unroll T timesteps on-chip (requires time_loop bindings)"},
      {"constrained-memory", "",
       "model the finite memory controller (default is ideal memory)"},
      {"kernel-engine", "E",
       "kernel tier: scalar|batched|specialized|jit|auto"},
      {"parallel", "", "the epoch-synchronized parallel simulation engine"},
      {"threads", "N", "parallel-engine worker count (0 = per core)"},
      {"stall-timeout", "N", "progress watchdog threshold in cycles"},
  };
  return Specs;
}

const std::vector<ArgSpec> &cli::checkpointFlagSpecs() {
  static const std::vector<ArgSpec> Specs = {
      {"", "", "checkpoint/restart"},
      {"checkpoint-dir", "DIR", "enable crash-safe snapshots into DIR"},
      {"checkpoint-every", "N", "snapshot cadence in completed cycles"},
      {"checkpoint-every-seconds", "S", "snapshot cadence in wall seconds"},
      {"checkpoint-keep", "K", "snapshots retained (default 3)"},
      {"resume", "PATH", "resume from a snapshot file or directory"},
      {"crash-after-checkpoints", "N",
       "test hook: SIGKILL after the N-th snapshot"},
  };
  return Specs;
}

const std::vector<ArgSpec> &cli::tuneFlagSpecs() {
  static const std::vector<ArgSpec> Specs = {
      {"", "", "autotuner"},
      {"tune-budget", "N", "candidate budget for the design-space search"},
      {"tune-seed", "N", "beam-search PRNG seed (reproducible trajectory)"},
      {"tune-top-k", "N", "analytically best candidates to simulate"},
      {"tune-workers", "N",
       "threads for concurrent candidate simulation (0 = per core)"},
      {"tune-beam", "N", "beam width of the design-space search"},
      {"no-simulate", "",
       "rank by the analytic model alone (skip simulation)"},
  };
  return Specs;
}
