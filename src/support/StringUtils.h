//===- support/StringUtils.h - String helpers -------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string utilities shared across the library: splitting, trimming,
/// joining, and printf-style formatting into std::string.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SUPPORT_STRINGUTILS_H
#define STENCILFLOW_SUPPORT_STRINGUTILS_H

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace stencilflow {

/// Splits \p Text on \p Separator. Empty pieces are kept.
std::vector<std::string> splitString(std::string_view Text, char Separator);

/// Removes leading and trailing whitespace.
std::string_view trimString(std::string_view Text);

/// Joins \p Pieces with \p Separator between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Pieces,
                        std::string_view Separator);

/// Returns true if \p Text starts with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Returns true if \p Text ends with \p Suffix.
bool endsWith(std::string_view Text, std::string_view Suffix);

/// printf-style formatting into a std::string.
std::string formatString(const char *Format, ...)
    __attribute__((format(printf, 1, 2)));

/// Replaces every occurrence of \p From in \p Text with \p To.
std::string replaceAll(std::string Text, std::string_view From,
                       std::string_view To);

} // namespace stencilflow

#endif // STENCILFLOW_SUPPORT_STRINGUTILS_H
