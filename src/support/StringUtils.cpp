//===- support/StringUtils.cpp - String helpers ---------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdio>

using namespace stencilflow;

std::vector<std::string> stencilflow::splitString(std::string_view Text,
                                                  char Separator) {
  std::vector<std::string> Pieces;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Separator, Start);
    if (Pos == std::string_view::npos) {
      Pieces.emplace_back(Text.substr(Start));
      return Pieces;
    }
    Pieces.emplace_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string_view stencilflow::trimString(std::string_view Text) {
  size_t Begin = 0;
  while (Begin < Text.size() &&
         std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  size_t End = Text.size();
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::string stencilflow::joinStrings(const std::vector<std::string> &Pieces,
                                     std::string_view Separator) {
  std::string Result;
  for (size_t I = 0, E = Pieces.size(); I != E; ++I) {
    if (I != 0)
      Result += Separator;
    Result += Pieces[I];
  }
  return Result;
}

bool stencilflow::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}

bool stencilflow::endsWith(std::string_view Text, std::string_view Suffix) {
  return Text.size() >= Suffix.size() &&
         Text.substr(Text.size() - Suffix.size()) == Suffix;
}

std::string stencilflow::formatString(const char *Format, ...) {
  va_list Args;
  va_start(Args, Format);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Size = std::vsnprintf(nullptr, 0, Format, Args);
  va_end(Args);
  if (Size < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Result(static_cast<size_t>(Size), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Format, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

std::string stencilflow::replaceAll(std::string Text, std::string_view From,
                                    std::string_view To) {
  if (From.empty())
    return Text;
  size_t Pos = 0;
  while ((Pos = Text.find(From, Pos)) != std::string::npos) {
    Text.replace(Pos, From.size(), To);
    Pos += To.size();
  }
  return Text;
}
