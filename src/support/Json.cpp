//===- support/Json.cpp - Minimal JSON parser and writer ------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/StringUtils.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace stencilflow;
using namespace stencilflow::json;

//===----------------------------------------------------------------------===//
// Object
//===----------------------------------------------------------------------===//

Object &Object::operator=(const Object &Other) {
  if (this == &Other)
    return *this;
  Members.clear();
  Members.reserve(Other.Members.size());
  for (const auto &[Name, Val] : Other.Members)
    Members.emplace_back(Name, std::make_unique<Value>(*Val));
  return *this;
}

const Value *Object::get(std::string_view Key) const {
  for (const auto &[Name, Val] : Members)
    if (Name == Key)
      return Val.get();
  return nullptr;
}

Value *Object::get(std::string_view Key) {
  for (auto &[Name, Val] : Members)
    if (Name == Key)
      return Val.get();
  return nullptr;
}

void Object::set(std::string Key, Value Val) {
  if (Value *Existing = get(Key)) {
    *Existing = std::move(Val);
    return;
  }
  Members.emplace_back(std::move(Key),
                       std::make_unique<Value>(std::move(Val)));
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

void escapeStringTo(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  Out += '"';
}

void numberTo(std::string &Out, double D) {
  if (std::isfinite(D) && D == std::floor(D) && std::fabs(D) < 1e15) {
    Out += formatString("%lld", static_cast<long long>(D));
    return;
  }
  Out += formatString("%.17g", D);
}

void serialize(std::string &Out, const Value &V, int Indent, int Depth) {
  auto newline = [&](int D) {
    if (Indent < 0)
      return;
    Out += '\n';
    Out.append(static_cast<size_t>(Indent * D), ' ');
  };
  switch (V.kind()) {
  case ValueKind::Null:
    Out += "null";
    return;
  case ValueKind::Boolean:
    Out += V.getBoolean() ? "true" : "false";
    return;
  case ValueKind::Number:
    numberTo(Out, V.getNumber());
    return;
  case ValueKind::String:
    escapeStringTo(Out, V.getString());
    return;
  case ValueKind::Array: {
    const auto &Elements = V.getArray();
    if (Elements.empty()) {
      Out += "[]";
      return;
    }
    Out += '[';
    for (size_t I = 0, E = Elements.size(); I != E; ++I) {
      if (I != 0)
        Out += Indent < 0 ? "," : ",";
      newline(Depth + 1);
      serialize(Out, Elements[I], Indent, Depth + 1);
    }
    newline(Depth);
    Out += ']';
    return;
  }
  case ValueKind::Object: {
    const Object &Obj = V.getObject();
    if (Obj.empty()) {
      Out += "{}";
      return;
    }
    Out += '{';
    bool First = true;
    for (const auto &[Key, Member] : Obj) {
      if (!First)
        Out += ',';
      First = false;
      newline(Depth + 1);
      escapeStringTo(Out, Key);
      Out += Indent < 0 ? ":" : ": ";
      serialize(Out, *Member, Indent, Depth + 1);
    }
    newline(Depth);
    Out += '}';
    return;
  }
  }
}

} // namespace

std::string Value::toString() const {
  std::string Out;
  serialize(Out, *this, /*Indent=*/-1, /*Depth=*/0);
  return Out;
}

std::string Value::toPrettyString(unsigned Indent) const {
  std::string Out;
  serialize(Out, *this, static_cast<int>(Indent), /*Depth=*/0);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

/// Recursive-descent JSON parser with line/column error reporting.
class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  Expected<Value> run() {
    skipWhitespace();
    Expected<Value> Result = parseValue();
    if (!Result)
      return Result;
    skipWhitespace();
    if (Pos != Text.size())
      return error("trailing characters after JSON value");
    return Result;
  }

private:
  std::string_view Text;
  size_t Pos = 0;

  Error error(const std::string &Message) const {
    unsigned Line = 1, Column = 1;
    for (size_t I = 0; I < Pos && I < Text.size(); ++I) {
      if (Text[I] == '\n') {
        ++Line;
        Column = 1;
      } else {
        ++Column;
      }
    }
    return makeError(formatString("%u:%u: %s", Line, Column, Message.c_str()));
  }

  bool atEnd() const { return Pos >= Text.size(); }
  char peek() const { return atEnd() ? '\0' : Text[Pos]; }

  void skipWhitespace() {
    while (!atEnd()) {
      char C = Text[Pos];
      if (C == ' ' || C == '\t' || C == '\n' || C == '\r') {
        ++Pos;
        continue;
      }
      // Allow // line comments as an extension: program descriptions are
      // hand-written, and comments make them far more maintainable.
      if (C == '/' && Pos + 1 < Text.size() && Text[Pos + 1] == '/') {
        while (!atEnd() && Text[Pos] != '\n')
          ++Pos;
        continue;
      }
      return;
    }
  }

  bool consume(char C) {
    if (peek() != C)
      return false;
    ++Pos;
    return true;
  }

  Expected<Value> parseValue() {
    if (atEnd())
      return error("unexpected end of input");
    switch (peek()) {
    case '{':
      return parseObject();
    case '[':
      return parseArray();
    case '"':
      return parseString();
    case 't':
    case 'f':
      return parseBoolean();
    case 'n':
      return parseNull();
    default:
      return parseNumber();
    }
  }

  Expected<Value> parseLiteral(std::string_view Literal, Value Result) {
    if (Text.substr(Pos, Literal.size()) != Literal)
      return error(formatString("expected '%.*s'",
                                static_cast<int>(Literal.size()),
                                Literal.data()));
    Pos += Literal.size();
    return Result;
  }

  Expected<Value> parseNull() { return parseLiteral("null", Value(nullptr)); }

  Expected<Value> parseBoolean() {
    if (peek() == 't')
      return parseLiteral("true", Value(true));
    return parseLiteral("false", Value(false));
  }

  Expected<Value> parseNumber() {
    size_t Start = Pos;
    if (consume('-')) {
    }
    while (!atEnd() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                        peek() == '.' || peek() == 'e' || peek() == 'E' ||
                        peek() == '+' || peek() == '-'))
      ++Pos;
    if (Pos == Start)
      return error("expected a JSON value");
    std::string Token(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    double D = std::strtod(Token.c_str(), &End);
    if (End != Token.c_str() + Token.size())
      return error(formatString("invalid number '%s'", Token.c_str()));
    return Value(D);
  }

  Expected<Value> parseString() {
    std::string Result;
    if (Error Err = parseStringInto(Result))
      return Err;
    return Value(std::move(Result));
  }

  Error parseStringInto(std::string &Result) {
    if (!consume('"'))
      return error("expected '\"'");
    while (true) {
      if (atEnd())
        return error("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return Error::success();
      if (C != '\\') {
        Result += C;
        continue;
      }
      if (atEnd())
        return error("unterminated escape sequence");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Result += '"';
        break;
      case '\\':
        Result += '\\';
        break;
      case '/':
        Result += '/';
        break;
      case 'b':
        Result += '\b';
        break;
      case 'f':
        Result += '\f';
        break;
      case 'n':
        Result += '\n';
        break;
      case 'r':
        Result += '\r';
        break;
      case 't':
        Result += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return error("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return error("invalid \\u escape");
        }
        // Encode as UTF-8 (basic multilingual plane only).
        if (Code < 0x80) {
          Result += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Result += static_cast<char>(0xC0 | (Code >> 6));
          Result += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Result += static_cast<char>(0xE0 | (Code >> 12));
          Result += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Result += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return error(formatString("invalid escape '\\%c'", E));
      }
    }
  }

  Expected<Value> parseArray() {
    consume('[');
    std::vector<Value> Elements;
    skipWhitespace();
    if (consume(']'))
      return Value(std::move(Elements));
    while (true) {
      skipWhitespace();
      Expected<Value> Element = parseValue();
      if (!Element)
        return Element;
      Elements.push_back(Element.takeValue());
      skipWhitespace();
      if (consume(']'))
        return Value(std::move(Elements));
      if (!consume(','))
        return error("expected ',' or ']' in array");
    }
  }

  Expected<Value> parseObject() {
    consume('{');
    Object Obj;
    skipWhitespace();
    if (consume('}'))
      return Value(std::move(Obj));
    while (true) {
      skipWhitespace();
      std::string Key;
      if (Error Err = parseStringInto(Key))
        return Err;
      skipWhitespace();
      if (!consume(':'))
        return error("expected ':' after object key");
      skipWhitespace();
      Expected<Value> Member = parseValue();
      if (!Member)
        return Member;
      Obj.set(std::move(Key), Member.takeValue());
      skipWhitespace();
      if (consume('}'))
        return Value(std::move(Obj));
      if (!consume(','))
        return error("expected ',' or '}' in object");
    }
  }
};

} // namespace

Expected<Value> json::parse(std::string_view Text) {
  return Parser(Text).run();
}

Expected<Value> json::parseFile(const std::string &Path) {
  std::ifstream Stream(Path);
  if (!Stream)
    return makeError("cannot open file '" + Path + "'");
  std::ostringstream Buffer;
  Buffer << Stream.rdbuf();
  Expected<Value> Result = parse(Buffer.str());
  if (!Result)
    return Result.takeError().addContext(Path);
  return Result;
}
