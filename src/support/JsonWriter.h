//===- support/JsonWriter.h - Streaming JSON emitter --------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A forward-only streaming JSON emitter. Unlike json::Value (which builds
/// the whole document in memory), the writer appends directly to a string
/// buffer, so emitters of large documents — e.g. the simulator's Chrome
/// trace export, which can contain hundreds of thousands of events — never
/// materialize a value tree. The writer tracks the container nesting and
/// inserts commas automatically; misuse (a value where a key is required,
/// unbalanced begin/end) is caught by assertions.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SUPPORT_JSONWRITER_H
#define STENCILFLOW_SUPPORT_JSONWRITER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace stencilflow {
namespace json {

/// Appends JSON tokens to an externally owned string buffer.
class JsonWriter {
public:
  /// \p Out receives the serialized text; it must outlive the writer.
  explicit JsonWriter(std::string &Out) : Out(Out) {}

  /// Containers.
  void beginObject();
  void endObject();
  void beginArray();
  void endArray();

  /// Emits an object key; the next emitted token is its value.
  void key(std::string_view Key);

  /// Scalar values.
  void value(std::string_view S);
  void value(const char *S) { value(std::string_view(S)); }
  void value(double D);
  void value(int64_t I);
  void value(int I) { value(static_cast<int64_t>(I)); }
  void value(size_t I) { value(static_cast<int64_t>(I)); }
  void value(bool B);
  void valueNull();

  /// Convenience: key followed by a scalar value.
  template <typename T> void attribute(std::string_view Key, T Val) {
    key(Key);
    value(Val);
  }

  /// True once every opened container has been closed.
  bool complete() const { return Stack.empty() && EmittedValue; }

  /// Escapes \p S for inclusion in a JSON string literal (quotes not
  /// included).
  static void escape(std::string_view S, std::string &Out);

private:
  enum class Scope : uint8_t { Object, Array };
  void beforeValue();

  std::string &Out;
  std::vector<Scope> Stack;
  /// Whether the current container already holds a member (comma needed).
  std::vector<bool> HasMembers;
  /// Whether a key was just emitted (suppresses the comma for its value).
  bool PendingKey = false;
  bool EmittedValue = false;
};

} // namespace json
} // namespace stencilflow

#endif // STENCILFLOW_SUPPORT_JSONWRITER_H
