//===- support/Random.h - Deterministic random numbers ----------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (splitmix64/xoshiro-style) used for test-input
/// and workload generation. Using our own generator rather than std::mt19937
/// guarantees identical sequences across standard libraries, which keeps
/// golden test values and benchmark workloads stable.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SUPPORT_RANDOM_H
#define STENCILFLOW_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace stencilflow {

/// Deterministic 64-bit PRNG with a splitmix64 core.
class Random {
public:
  explicit Random(uint64_t Seed = 0x5F3759DF) : State(Seed) {}

  /// Returns the next 64 random bits.
  uint64_t nextUInt64() {
    State += 0x9E3779B97F4A7C15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t nextBounded(uint64_t Bound) {
    assert(Bound > 0 && "bound must be positive");
    return nextUInt64() % Bound;
  }

  /// Returns a uniform integer in [Low, High] inclusive.
  int64_t nextInRange(int64_t Low, int64_t High) {
    assert(Low <= High && "invalid range");
    return Low + static_cast<int64_t>(
                     nextBounded(static_cast<uint64_t>(High - Low) + 1));
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(nextUInt64() >> 11) * 0x1.0p-53;
  }

  /// Returns a uniform double in [Low, High).
  double nextDoubleInRange(double Low, double High) {
    return Low + (High - Low) * nextDouble();
  }

  /// Returns true with probability \p P.
  bool nextBool(double P = 0.5) { return nextDouble() < P; }

private:
  uint64_t State;
};

} // namespace stencilflow

#endif // STENCILFLOW_SUPPORT_RANDOM_H
