//===- support/Error.h - Lightweight error handling -------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight, exception-free error handling used throughout the library.
///
/// The library follows the LLVM convention of not using C++ exceptions.
/// Recoverable errors (malformed input programs, infeasible mappings, ...)
/// are returned as \c Error or \c Expected<T> values; programmatic errors
/// are handled with assertions.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SUPPORT_ERROR_H
#define STENCILFLOW_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace stencilflow {

/// A recoverable error carrying a human-readable message.
///
/// An \c Error is either a success value (the default state) or a failure
/// value with a message. It converts to \c true when it holds a failure,
/// enabling the idiom:
/// \code
///   if (Error Err = mayFail())
///     return Err;
/// \endcode
class Error {
public:
  /// Creates a success value.
  Error() = default;

  /// Creates a success value explicitly.
  static Error success() { return Error(); }

  /// Creates a failure value with the given message.
  static Error failure(std::string Message) {
    Error Err;
    Err.Message = std::move(Message);
    return Err;
  }

  /// Returns true if this holds a failure.
  explicit operator bool() const { return Message.has_value(); }

  /// Returns the failure message. Must only be called on failure values.
  const std::string &message() const {
    assert(Message && "message() called on a success value");
    return *Message;
  }

  /// Appends context to the failure message ("Context: message").
  /// No-op on success values. Returns *this for chaining.
  Error &addContext(const std::string &Context) {
    if (Message)
      Message = Context + ": " + *Message;
    return *this;
  }

private:
  std::optional<std::string> Message;
};

/// Creates a failure \c Error from a message.
inline Error makeError(std::string Message) {
  return Error::failure(std::move(Message));
}

/// A value-or-error type, analogous to llvm::Expected.
///
/// Holds either a \c T (success) or an error message (failure). Converts to
/// \c true on success:
/// \code
///   Expected<Program> P = parse(Text);
///   if (!P)
///     return P.takeError();
///   use(*P);
/// \endcode
template <typename T> class Expected {
public:
  /// Constructs a success value.
  Expected(T Value) : Storage(std::move(Value)) {}

  /// Constructs a failure value from an \c Error (which must be a failure).
  Expected(Error Err) : Storage(std::move(Err)) {
    assert(std::get<Error>(Storage) &&
           "constructing Expected from a success Error");
  }

  /// Returns true if this holds a value.
  explicit operator bool() const { return std::holds_alternative<T>(Storage); }

  /// Accesses the contained value. Must only be called on success.
  T &operator*() {
    assert(*this && "dereferencing a failed Expected");
    return std::get<T>(Storage);
  }
  const T &operator*() const {
    assert(*this && "dereferencing a failed Expected");
    return std::get<T>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// Moves the contained value out. Must only be called on success.
  T takeValue() {
    assert(*this && "taking value of a failed Expected");
    return std::move(std::get<T>(Storage));
  }

  /// Returns the contained error. Must only be called on failure.
  Error takeError() {
    assert(!*this && "taking error of a successful Expected");
    return std::move(std::get<Error>(Storage));
  }

  /// Returns the failure message. Must only be called on failure.
  const std::string &message() const {
    assert(!*this && "message() called on a successful Expected");
    return std::get<Error>(Storage).message();
  }

private:
  std::variant<T, Error> Storage;
};

} // namespace stencilflow

#endif // STENCILFLOW_SUPPORT_ERROR_H
