//===- support/Error.h - Lightweight error handling -------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight, exception-free error handling used throughout the library.
///
/// The library follows the LLVM convention of not using C++ exceptions.
/// Recoverable errors (malformed input programs, infeasible mappings, ...)
/// are returned as \c Error or \c Expected<T> values; programmatic errors
/// are handled with assertions.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SUPPORT_ERROR_H
#define STENCILFLOW_SUPPORT_ERROR_H

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

namespace stencilflow {

/// Machine-readable classification of a failure. The generic compiler /
/// analysis paths use \c Unknown or \c InvalidInput; the distributed
/// runtime and simulator return the resilience taxonomy (Deadlock,
/// LinkFailure, DeviceLost, ...) so callers — the pipeline's recovery
/// policy, CI scripts keying off exit codes — can branch on the *kind* of
/// failure instead of string-matching messages.
enum class ErrorCode : uint8_t {
  /// Unclassified failure (the default for plain makeError(message)).
  Unknown,
  /// Malformed program description or invalid configuration.
  InvalidInput,
  /// No feasible mapping (partitioning/resources).
  Infeasible,
  /// True cyclic-dependency deadlock: no component can ever progress.
  Deadlock,
  /// Livelock/starvation: the system keeps progressing but a component
  /// exceeded the progress watchdog's stall timeout.
  Starvation,
  /// The simulation exceeded its hard cycle limit.
  CycleLimit,
  /// A remote stream exhausted its bounded retransmit budget.
  LinkFailure,
  /// Payload corruption detected with no recovery protocol enabled.
  DataCorruption,
  /// A device failed permanently (fabric lost a node).
  DeviceLost,
  /// Simulated outputs disagree with the reference executor.
  ValidationMismatch,
  /// A checkpoint snapshot file is unreadable: bad magic, version skew,
  /// truncation, or a CRC mismatch (sim/Checkpoint.h).
  SnapshotInvalid,
  /// A checkpoint snapshot is well-formed but belongs to a different
  /// machine: topology, configuration, or input data do not match.
  SnapshotIncompatible,
  /// The serving layer shed the request: the admission queue was full, a
  /// job would oversubscribe the shared device pool, or the daemon was
  /// draining for shutdown (serve/Server.h). The request was never run;
  /// resubmitting later may succeed.
  Overloaded,
};

/// Number of distinct error codes (for iteration in tests).
constexpr int NumErrorCodes = static_cast<int>(ErrorCode::Overloaded) + 1;

/// Stable kebab-case name, e.g. "device-lost".
const char *errorCodeName(ErrorCode Code);

/// Inverse of \c errorCodeName; empty optional for unknown names.
std::optional<ErrorCode> errorCodeFromName(std::string_view Name);

//===----------------------------------------------------------------------===//
// Process exit-code taxonomy
//===----------------------------------------------------------------------===//
//
// The ONE table mapping error classifications to process exit codes. Every
// CLI (run_program, sf_tune, sf_serve) and the serving protocol's error
// responses go through it; nothing else may invent exit codes. Codes 0 and
// 1 are the POSIX conventions (success / unclassified error); each
// resilience and serving code maps to a distinct small value so CI scripts
// can branch on the *kind* of failure.

/// One row of the exit-code table: a classified failure and the process
/// exit code CLIs return for it. \c errorCodeName(Code) is the stable
/// kebab-case name; \c Description is a one-line human summary.
struct ExitCodeRow {
  ErrorCode Code;
  int ExitCode;
  const char *Description;
};

/// The full table, one row per \c ErrorCode in enum order. Unclassified
/// codes (Unknown, InvalidInput, Infeasible) share exit code 1; every
/// other row's exit code is distinct.
const std::vector<ExitCodeRow> &exitCodeTable();

/// Process exit code for CLI drivers: 0 is success, 1 an unclassified
/// error, and each resilience code maps to a distinct small value so CI
/// scripts can distinguish deadlock from cycle-limit aborts from
/// validation mismatches. A direct lookup into \c exitCodeTable().
int exitCodeFor(ErrorCode Code);

/// Multi-line "N  name: description" rendering of the distinct exit codes
/// (for --help output), prefixed by the 0/1 conventions.
std::string exitCodeLegend();

/// A recoverable error carrying a human-readable message and a
/// machine-readable \c ErrorCode.
///
/// An \c Error is either a success value (the default state) or a failure
/// value with a message. It converts to \c true when it holds a failure,
/// enabling the idiom:
/// \code
///   if (Error Err = mayFail())
///     return Err;
/// \endcode
class Error {
public:
  /// Creates a success value.
  Error() = default;

  /// Creates a success value explicitly.
  static Error success() { return Error(); }

  /// Creates a failure value with the given message.
  static Error failure(std::string Message) {
    Error Err;
    Err.Message = std::move(Message);
    return Err;
  }

  /// Creates a classified failure value.
  static Error failure(ErrorCode Code, std::string Message) {
    Error Err;
    Err.Message = std::move(Message);
    Err.Code = Code;
    return Err;
  }

  /// Returns true if this holds a failure.
  explicit operator bool() const { return Message.has_value(); }

  /// Returns the failure message. Must only be called on failure values.
  const std::string &message() const {
    assert(Message && "message() called on a success value");
    return *Message;
  }

  /// Returns the failure classification (Unknown for unclassified
  /// failures). Must only be called on failure values.
  ErrorCode code() const {
    assert(Message && "code() called on a success value");
    return Code;
  }

  /// Appends context to the failure message ("Context: message").
  /// No-op on success values. Returns *this for chaining. The error code
  /// is preserved.
  Error &addContext(const std::string &Context) {
    if (Message)
      Message = Context + ": " + *Message;
    return *this;
  }

private:
  std::optional<std::string> Message;
  ErrorCode Code = ErrorCode::Unknown;
};

/// Creates a failure \c Error from a message.
inline Error makeError(std::string Message) {
  return Error::failure(std::move(Message));
}

/// Creates a classified failure \c Error.
inline Error makeError(ErrorCode Code, std::string Message) {
  return Error::failure(Code, std::move(Message));
}

/// A value-or-error type, analogous to llvm::Expected.
///
/// Holds either a \c T (success) or an error value (failure). Converts to
/// \c true on success:
/// \code
///   Expected<Program> P = parse(Text);
///   if (!P)
///     return P.takeError();
///   use(*P);
/// \endcode
///
/// The error type defaults to \c Error but can be any type that converts
/// to \c bool (true on failure) and exposes \c message() / \c code() —
/// e.g. \c sim::SimFailure, which carries a structured \c FailureReport
/// next to the error. When \c ErrT is constructible from \c Error, a plain
/// \c Error still converts implicitly, so `return makeError(...)` keeps
/// working at every call site.
template <typename T, typename ErrT = Error> class Expected {
public:
  /// Constructs a success value.
  Expected(T Value) : Storage(std::move(Value)) {}

  /// Constructs a failure value from an \c ErrT (which must be a failure).
  Expected(ErrT Err) : Storage(std::move(Err)) {
    assert(static_cast<bool>(std::get<ErrT>(Storage)) &&
           "constructing Expected from a success error value");
  }

  /// Constructs a failure value from a plain \c Error when \c ErrT is a
  /// richer error type. Keeps `return makeError(...)` working where two
  /// user-defined conversions (Error -> ErrT -> Expected) would not chain.
  template <typename E = ErrT,
            std::enable_if_t<!std::is_same_v<E, Error> &&
                                 std::is_constructible_v<E, Error>,
                             int> = 0>
  Expected(Error Err) : Storage(ErrT(std::move(Err))) {
    assert(static_cast<bool>(std::get<ErrT>(Storage)) &&
           "constructing Expected from a success Error");
  }

  /// Returns true if this holds a value.
  explicit operator bool() const { return std::holds_alternative<T>(Storage); }

  /// Accesses the contained value. Must only be called on success.
  T &operator*() {
    assert(*this && "dereferencing a failed Expected");
    return std::get<T>(Storage);
  }
  const T &operator*() const {
    assert(*this && "dereferencing a failed Expected");
    return std::get<T>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// Moves the contained value out. Must only be called on success.
  T takeValue() {
    assert(*this && "taking value of a failed Expected");
    return std::move(std::get<T>(Storage));
  }

  /// Returns the contained error. Must only be called on failure.
  ErrT takeError() {
    assert(!*this && "taking error of a successful Expected");
    return std::move(std::get<ErrT>(Storage));
  }

  /// Returns the contained error without consuming it. Must only be called
  /// on failure.
  const ErrT &error() const {
    assert(!*this && "error() called on a successful Expected");
    return std::get<ErrT>(Storage);
  }

  /// Returns the failure message. Must only be called on failure.
  const std::string &message() const {
    assert(!*this && "message() called on a successful Expected");
    return std::get<ErrT>(Storage).message();
  }

  /// Returns the failure classification. Must only be called on failure.
  ErrorCode code() const {
    assert(!*this && "code() called on a successful Expected");
    return std::get<ErrT>(Storage).code();
  }

private:
  std::variant<T, ErrT> Storage;
};

} // namespace stencilflow

#endif // STENCILFLOW_SUPPORT_ERROR_H
