//===- support/JsonWriter.cpp - Streaming JSON emitter ------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/JsonWriter.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cmath>

using namespace stencilflow;
using namespace stencilflow::json;

void JsonWriter::escape(std::string_view S, std::string &Out) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
}

void JsonWriter::beforeValue() {
  assert((Stack.empty() ? !EmittedValue : true) &&
         "only one top-level value per document");
  if (PendingKey) {
    PendingKey = false;
    return;
  }
  if (!Stack.empty()) {
    assert(Stack.back() == Scope::Array &&
           "object members need a key() first");
    if (HasMembers.back())
      Out += ',';
    HasMembers.back() = true;
  }
}

void JsonWriter::beginObject() {
  beforeValue();
  Out += '{';
  Stack.push_back(Scope::Object);
  HasMembers.push_back(false);
}

void JsonWriter::endObject() {
  assert(!Stack.empty() && Stack.back() == Scope::Object &&
         "endObject without matching beginObject");
  assert(!PendingKey && "dangling key at endObject");
  Out += '}';
  Stack.pop_back();
  HasMembers.pop_back();
  EmittedValue = true;
}

void JsonWriter::beginArray() {
  beforeValue();
  Out += '[';
  Stack.push_back(Scope::Array);
  HasMembers.push_back(false);
}

void JsonWriter::endArray() {
  assert(!Stack.empty() && Stack.back() == Scope::Array &&
         "endArray without matching beginArray");
  Out += ']';
  Stack.pop_back();
  HasMembers.pop_back();
  EmittedValue = true;
}

void JsonWriter::key(std::string_view Key) {
  assert(!Stack.empty() && Stack.back() == Scope::Object &&
         "key() outside an object");
  assert(!PendingKey && "key() twice without a value");
  if (HasMembers.back())
    Out += ',';
  HasMembers.back() = true;
  Out += '"';
  escape(Key, Out);
  Out += "\":";
  PendingKey = true;
}

void JsonWriter::value(std::string_view S) {
  beforeValue();
  Out += '"';
  escape(S, Out);
  Out += '"';
  EmittedValue = true;
}

void JsonWriter::value(double D) {
  beforeValue();
  // Match json::Value serialization: integral doubles print as integers.
  if (std::isfinite(D) && D == std::floor(D) && std::fabs(D) < 1e15)
    Out += formatString("%lld", static_cast<long long>(D));
  else
    Out += formatString("%.17g", D);
  EmittedValue = true;
}

void JsonWriter::value(int64_t I) {
  beforeValue();
  Out += formatString("%lld", static_cast<long long>(I));
  EmittedValue = true;
}

void JsonWriter::value(bool B) {
  beforeValue();
  Out += B ? "true" : "false";
  EmittedValue = true;
}

void JsonWriter::valueNull() {
  beforeValue();
  Out += "null";
  EmittedValue = true;
}
