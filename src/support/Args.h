//===- support/Args.h - Shared CLI argument surface ---------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The declarative layer every CLI (run_program, sf_tune, sf_serve) parses
/// its arguments through. Each tool registers its flags once — name, value
/// placeholder, one-line help — and gets for free:
///
///  - parsing via support/CommandLine.h with unknown-flag rejection,
///  - a uniform generated `--help` (usage line, grouped flag table, and
///    the shared process exit-code legend from support/Error.h),
///  - the *shared flag packs*: the session, checkpoint, and autotuner
///    knobs are defined here exactly once, so their names and help text
///    cannot drift between tools again (historically run_program said
///    `--tune-budget` while sf_tune said `--budget`; the `--tune-*`
///    spelling is now canonical everywhere).
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SUPPORT_ARGS_H
#define STENCILFLOW_SUPPORT_ARGS_H

#include "support/CommandLine.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace stencilflow {
namespace cli {

/// One registered flag: `--Name` (boolean when \p Value is empty, else
/// `--Name <Value>`), with its help line. A spec whose Name is empty is a
/// group header rendered as a section title in --help.
struct ArgSpec {
  std::string Name;
  std::string Value;
  std::string Help;
};

/// A tool's complete argument surface. Build it fluently, then call
/// \c parse().
class ArgSet {
public:
  /// \p Tool is the binary name; \p Summary the one-line description;
  /// \p Positional the usage-line placeholder for positional arguments
  /// (e.g. "<program.json>"), empty when the tool takes none.
  ArgSet(std::string Tool, std::string Summary,
         std::string Positional = "");

  /// Registers a boolean flag.
  ArgSet &flag(std::string Name, std::string Help);
  /// Registers a value-taking flag.
  ArgSet &option(std::string Name, std::string Value, std::string Help);
  /// Starts a titled group in the help output.
  ArgSet &group(std::string Title);
  /// Appends a pre-built pack (the shared specs below).
  ArgSet &pack(const std::vector<ArgSpec> &Specs);

  /// Parses argv. Handles `--help` itself: prints \c helpText() to stdout
  /// and returns an *empty-message* signal via \c HelpShown so the caller
  /// can exit 0. Unknown flags and malformed values are errors.
  Expected<CommandLine> parse(int Argc, const char *const *Argv) const;

  /// True when the last \c parse() consumed `--help`.
  bool helpShown() const { return HelpShown; }

  /// The generated usage line ("usage: tool <positional> [flags]").
  std::string usageLine() const;
  /// Full help: usage, summary, grouped flag table, exit-code legend.
  std::string helpText() const;

private:
  std::string Tool;
  std::string Summary;
  std::string Positional;
  std::vector<ArgSpec> Specs;
  mutable bool HelpShown = false;
};

//===----------------------------------------------------------------------===//
// Shared flag packs (single source of truth for cross-tool knobs)
//===----------------------------------------------------------------------===//

/// Session/pipeline knobs: --fuse --simplify --vectorize W
/// --constrained-memory --kernel-engine E --parallel --threads N
/// --stall-timeout N.
const std::vector<ArgSpec> &sessionFlagSpecs();

/// Checkpoint/restart knobs: --checkpoint-dir DIR --checkpoint-every N
/// --checkpoint-every-seconds S --checkpoint-keep K --resume PATH|DIR
/// --crash-after-checkpoints N.
const std::vector<ArgSpec> &checkpointFlagSpecs();

/// Autotuner knobs: --tune-budget N --tune-seed N --tune-top-k N
/// --tune-workers N --tune-beam N --no-simulate.
const std::vector<ArgSpec> &tuneFlagSpecs();

} // namespace cli
} // namespace stencilflow

#endif // STENCILFLOW_SUPPORT_ARGS_H
