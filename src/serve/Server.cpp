//===- serve/Server.cpp - Multi-tenant serving core ----------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "frontend/ProgramLoader.h"
#include "support/StringUtils.h"
#include "tuner/Tuner.h"

#include <algorithm>
#include <chrono>
#include <cstring>

using namespace stencilflow;
using namespace stencilflow::serve;

namespace {

int64_t microsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

/// FNV-1a over the output fields' names and bit patterns, in field order
/// — a compact parity token for daemon-vs-direct comparisons.
uint64_t outputsCrc(const std::vector<std::string> &Order,
                    const std::map<std::string, std::vector<double>> &Outputs) {
  uint64_t Hash = 1469598103934665603ull;
  auto Mix = [&Hash](const void *Bytes, size_t Size) {
    const unsigned char *P = static_cast<const unsigned char *>(Bytes);
    for (size_t I = 0; I != Size; ++I) {
      Hash ^= P[I];
      Hash *= 1099511628211ull;
    }
  };
  for (const std::string &Name : Order) {
    auto It = Outputs.find(Name);
    if (It == Outputs.end())
      continue;
    Mix(Name.data(), Name.size());
    Mix(It->second.data(), It->second.size() * sizeof(double));
  }
  return Hash;
}

} // namespace

json::Value ServeStats::toJson() const {
  json::Object O;
  O.set("received", json::Value(Received));
  O.set("completed", json::Value(Completed));
  O.set("failed", json::Value(Failed));
  O.set("shed", json::Value(Shed));
  O.set("rejected", json::Value(Rejected));
  O.set("cache_hits", json::Value(CacheHits));
  O.set("cache_misses", json::Value(CacheMisses));
  O.set("cache_evictions", json::Value(CacheEvictions));
  O.set("cache_size", json::Value(CacheSize));
  O.set("queue_depth", json::Value(QueueDepth));
  O.set("queue_high_water", json::Value(QueueHighWater));
  O.set("devices_busy", json::Value(DevicesBusy));
  O.set("devices_busy_high_water", json::Value(DevicesBusyHighWater));
  return json::Value(std::move(O));
}

Server::Server(ServerOptions Options)
    : Opts(std::move(Options)), Cache(Opts.CacheCapacity) {}

Server::~Server() { stop(); }

void Server::start() {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Started)
    return;
  Started = true;
  Stopping = false;
  int Count = std::max(1, Opts.Workers);
  for (int I = 0; I != Count; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

void Server::stop() {
  std::deque<std::unique_ptr<Job>> Orphans;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (!Started || Stopping) {
      if (!Started)
        return;
    }
    Stopping = true;
    Orphans.swap(Queue);
    Counters.Shed += static_cast<int64_t>(Orphans.size());
  }
  WorkAvailable.notify_all();
  DevicesFreed.notify_all();
  // Queued-but-unstarted jobs are shed, not silently dropped: every
  // submitted future resolves.
  for (std::unique_ptr<Job> &J : Orphans)
    J->Done.set_value(Response::failure(
        J->Req.Id, makeError(ErrorCode::Overloaded,
                             "server is draining for shutdown")));
  std::vector<std::thread> Pool;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Pool.swap(Workers);
  }
  for (std::thread &T : Pool)
    T.join();
  std::lock_guard<std::mutex> Lock(Mutex);
  Started = false;
}

std::future<Response> Server::submit(Request R) {
  std::promise<Response> Done;
  std::future<Response> Result = Done.get_future();

  if (R.Op == RequestOp::Ping || R.Op == RequestOp::Shutdown) {
    Response Pong;
    Pong.Id = R.Id;
    Pong.Ok = true;
    Done.set_value(std::move(Pong));
    return Result;
  }
  if (R.Op == RequestOp::Stats) {
    Response S;
    S.Id = R.Id;
    S.Ok = true;
    S.Stats = stats().toJson();
    Done.set_value(std::move(S));
    return Result;
  }

  auto J = std::make_unique<Job>();
  J->Req = std::move(R);
  J->Done = std::move(Done);
  J->Enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.Received;
    // Admission gate 1: the bounded queue. Excess load and post-shutdown
    // traffic shed immediately with a typed, retryable failure.
    // A non-positive depth admits nothing (useful for drain tests).
    if (Stopping || !Started ||
        Queue.size() >= static_cast<size_t>(std::max(0, Opts.QueueDepth))) {
      ++Counters.Shed;
      const char *Why = Stopping || !Started
                            ? "server is not accepting requests"
                            : "admission queue is full";
      J->Done.set_value(Response::failure(
          J->Req.Id,
          makeError(ErrorCode::Overloaded,
                    formatString("%s (queue depth %d)", Why,
                                 std::max(0, Opts.QueueDepth)))));
      return Result;
    }
    Queue.push_back(std::move(J));
    Counters.QueueHighWater = std::max(
        Counters.QueueHighWater, static_cast<int64_t>(Queue.size()));
  }
  WorkAvailable.notify_one();
  return Result;
}

Response Server::handle(Request R) { return submit(std::move(R)).get(); }

ServeStats Server::stats() const {
  ServeStats S;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    S = Counters;
    S.QueueDepth = static_cast<int64_t>(Queue.size());
    S.DevicesBusy = DevicesBusy;
  }
  S.CacheEvictions = Cache.evictions();
  S.CacheSize = static_cast<int64_t>(Cache.size());
  return S;
}

void Server::workerLoop() {
  for (;;) {
    std::unique_ptr<Job> J;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock,
                         [this] { return Stopping || !Queue.empty(); });
      if (Stopping && Queue.empty())
        return;
      J = std::move(Queue.front());
      Queue.pop_front();
    }
    Response R = process(J->Req, microsSince(J->Enqueued));
    J->Done.set_value(std::move(R));
  }
}

Server::CompileOutcome Server::compileForRequest(const Request &R) {
  auto Start = std::chrono::steady_clock::now();
  CompileOutcome Out;
  auto Fail = [&](Error Err) {
    Out.Err = std::move(Err);
    Out.Micros = microsSince(Start);
    return Out;
  };

  Expected<StencilProgram> Program =
      R.ProgramPath.empty() ? programFromJson(R.Program)
                            : loadProgramFile(R.ProgramPath);
  if (!Program)
    return Fail(Program.takeError().addContext("loading program"));
  StencilProgram P = Program.takeValue();
  if (R.Options.Vectorize > 0)
    P.VectorWidth = R.Options.Vectorize;

  PipelineOptions PO = Opts.Base;
  PO.FuseStencils = R.Options.Fuse;
  PO.SimplifyCode = R.Options.Simplify;
  PO.TemporalDegree = std::max(1, R.Options.TemporalDegree);
  PO.Partitioning.MaxDevices = R.Options.MaxDevices;
  PO.Partitioning.TargetUtilization = R.Options.TargetUtilization;
  PO.Simulator.KernelExec = R.Options.KernelExec;
  PO.EmitCode = false;

  if (R.Options.Tune) {
    // Miss-path autotuning: analytic ranking only (TuneOptions::Simulate
    // off), deterministic seed, so the tuned mapping — not N simulated
    // candidates — is what the cache amortizes.
    tuner::TuneOptions TO;
    TO.Simulate = false;
    TO.Search.CandidateBudget = std::max(1, R.Options.TuneBudget);
    Expected<tuner::TuningOutcome> Tuned = tuner::tuneProgram(P, PO, TO);
    if (!Tuned)
      return Fail(Tuned.takeError().addContext("autotuning"));
    Expected<StencilProgram> Applied =
        tuner::applyMapping(P, Tuned->Best);
    if (!Applied)
      return Fail(Applied.takeError().addContext("applying tuned mapping"));
    P = Applied.takeValue();
    PO.FuseStencils = false; // Fusion is part of the mapping, already applied.
    PO.Partitioning.MaxDevices = Tuned->Best.MaxDevices;
    PO.Partitioning.TargetUtilization = Tuned->Best.TargetUtilization;
  }

  Expected<CompiledPlan> Plan = compilePipeline(std::move(P), PO);
  if (!Plan)
    return Fail(Plan.takeError());
  Out.Plan = std::make_shared<const CompiledPlan>(Plan.takeValue());
  Out.Micros = microsSince(Start);
  return Out;
}

Expected<std::shared_ptr<const CompiledPlan>>
Server::resolvePlan(const Request &R, bool &Hit, int64_t &CompileMicros) {
  Hit = false;
  CompileMicros = 0;

  // The program fingerprint: hash the inline description directly; a
  // path-based request hashes the file's parsed content, so an edited
  // file is a different program, not a stale hit.
  uint64_t ProgramHash = 0;
  json::Value Inline;
  if (!R.ProgramPath.empty()) {
    Expected<json::Value> Parsed = json::parseFile(R.ProgramPath);
    if (!Parsed)
      return Parsed.takeError().addContext("loading program");
    ProgramHash = fingerprintProgramJson(*Parsed);
  } else {
    ProgramHash = fingerprintProgramJson(R.Program);
  }

  PlanKey Key;
  Key.ProgramHash = ProgramHash;
  Key.Fuse = R.Options.Fuse;
  Key.Simplify = R.Options.Simplify;
  Key.VectorWidth = R.Options.Vectorize;
  Key.TemporalDegree = std::max(1, R.Options.TemporalDegree);
  Key.MaxDevices = R.Options.MaxDevices;
  Key.TargetUtilization = R.Options.TargetUtilization;
  Key.KernelExec = R.Options.KernelExec;
  Key.Tuned = R.Options.Tune;
  Key.TuneBudget = R.Options.TuneBudget;
  std::string KeyId = Key.id();

  if (std::shared_ptr<const CompiledPlan> Plan = Cache.find(KeyId)) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.CacheHits;
    Hit = true;
    return Plan;
  }

  // Single-flight: concurrent misses on one key compile once. The leader
  // compiles and publishes; joiners wait on the shared outcome and count
  // as hits (they were served without compiling).
  std::shared_future<CompileOutcome> Flight;
  bool Leader = false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = InFlight.find(KeyId);
    if (It != InFlight.end()) {
      Flight = It->second;
      ++Counters.CacheHits;
      Hit = true;
    } else {
      Leader = true;
      ++Counters.CacheMisses;
    }
  }

  if (!Leader) {
    CompileOutcome Out = Flight.get();
    if (Out.Err)
      return Error(Out.Err);
    return Out.Plan;
  }

  std::promise<CompileOutcome> Publish;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    InFlight[KeyId] = Publish.get_future().share();
  }
  CompileOutcome Out = compileForRequest(R);
  if (Out.Plan)
    Cache.insert(KeyId, Out.Plan);
  Publish.set_value(Out);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    InFlight.erase(KeyId);
  }
  CompileMicros = Out.Micros;
  if (Out.Err)
    return Error(Out.Err);
  return Out.Plan;
}

Response Server::process(Request &R, int64_t QueueMicros) {
  bool Hit = false;
  int64_t CompileMicros = 0;
  Expected<std::shared_ptr<const CompiledPlan>> Plan =
      resolvePlan(R, Hit, CompileMicros);
  if (!Plan) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.Failed;
    Response Fail = Response::failure(R.Id, Plan.error());
    Fail.CacheHit = Hit;
    return Fail;
  }

  // Admission gate 2: the shared device pool. A plan that cannot ever fit
  // is rejected outright; a feasible one waits for devices to free up.
  int Devices = static_cast<int>((*Plan)->Placement.numDevices());
  if (Devices > Opts.DevicePool) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.Rejected;
    Response Fail = Response::failure(
        R.Id, makeError(ErrorCode::Overloaded,
                        formatString(
                            "plan needs %d device(s) but the shared pool "
                            "has %d; resubmit with a smaller max_devices",
                            Devices, Opts.DevicePool)));
    Fail.CacheHit = Hit;
    return Fail;
  }
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    DevicesFreed.wait(Lock, [&] {
      return Stopping || DevicesBusy + Devices <= Opts.DevicePool;
    });
    if (Stopping) {
      ++Counters.Shed;
      Response Fail = Response::failure(
          R.Id, makeError(ErrorCode::Overloaded,
                          "server is draining for shutdown"));
      Fail.CacheHit = Hit;
      return Fail;
    }
    DevicesBusy += Devices;
    Counters.DevicesBusyHighWater =
        std::max(Counters.DevicesBusyHighWater,
                 static_cast<int64_t>(DevicesBusy));
  }

  PipelineOptions EO = Opts.Base;
  EO.Simulate = true;
  EO.Validate = R.Options.Validate;
  EO.Simulator.Engine = R.Options.Engine == "parallel"
                            ? sim::SimEngine::Parallel
                            : sim::SimEngine::Serial;
  EO.Simulator.Threads = R.Options.Threads;
  EO.Simulator.KernelExec = R.Options.KernelExec;

  auto ExecStart = std::chrono::steady_clock::now();
  Expected<PlanExecution, sim::SimFailure> Exec = executePlan(**Plan, EO);
  int64_t ExecuteMicros = microsSince(ExecStart);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    DevicesBusy -= Devices;
  }
  DevicesFreed.notify_all();

  Response Out;
  Out.Id = R.Id;
  Out.CacheHit = Hit;
  Out.QueueMicros = QueueMicros;
  Out.CompileMicros = CompileMicros;
  Out.ExecuteMicros = ExecuteMicros;
  if (!Exec) {
    sim::SimFailure Fail = Exec.takeError();
    Out.Ok = false;
    Out.Code = Fail.code();
    Out.ErrorMessage = Fail.message();
    // The structured report rides along when the run loop produced one.
    if (Fail.report().Code != ErrorCode::Unknown)
      Out.Failure = Fail.report();
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.Failed;
    return Out;
  }

  Out.Ok = true;
  Out.Cycles = Exec->Simulation.Stats.Cycles;
  Out.Devices = static_cast<int>(Exec->Placement.numDevices());
  Out.FrequencyMHz = (*Plan)->FrequencyMHz;
  Out.ValidationPassed = Exec->ValidationPassed;
  Out.KernelTiers = Exec->Simulation.Stats.kernelTierSummary();
  Out.OutputsCrc = outputsCrc((*Plan)->Compiled.program().Outputs,
                              Exec->Simulation.Outputs);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counters.Completed;
  }
  return Out;
}
