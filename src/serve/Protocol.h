//===- serve/Protocol.h - Serving wire protocol -------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sf_serve wire protocol: line-delimited JSON. One request per line,
/// one response line back, in order. The same codec serves the AF_UNIX
/// socket daemon, the `sf_serve --once` stdin/stdout mode used by tests
/// and CI, and the in-process Server::handle path the benchmarks drive.
///
/// Request (only "program" / "program_path" is required for op "run"):
/// \code
///   {"id": "r1", "op": "run", "program": {...} | "program_path": "x.json",
///    "options": {"fuse": false, "simplify": false, "vectorize": 0,
///                "temporal_degree": 1, "max_devices": 8,
///                "target_utilization": 0.85,
///                "kernel_engine": "specialized", "engine": "serial",
///                "threads": 0, "validate": true, "tune": false,
///                "tune_budget": 32}}
/// \endcode
/// Ops: "run" (default), "stats", "ping", "shutdown".
///
/// Response:
/// \code
///   {"id": "r1", "ok": true, "cache": "hit"|"miss", "cycles": N,
///    "devices": N, "frequency_mhz": X, "validation_passed": true,
///    "outputs_crc": "0123456789abcdef", "kernel_tiers": "...",
///    "queue_us": N, "compile_us": N, "execute_us": N}
///   {"id": "r2", "ok": false,
///    "error": {"code": "overloaded", "exit_code": 11, "message": "..."},
///    "failure_report": {...}}   // present when the simulator produced one
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SERVE_PROTOCOL_H
#define STENCILFLOW_SERVE_PROTOCOL_H

#include "compute/Engine.h"
#include "sim/Fault.h"
#include "support/Error.h"
#include "support/Json.h"

#include <optional>
#include <string>

namespace stencilflow {
namespace serve {

/// Protocol operations.
enum class RequestOp : uint8_t { Run, Stats, Ping, Shutdown };

/// Stable name ("run", "stats", "ping", "shutdown").
const char *requestOpName(RequestOp Op);

/// Per-request execution knobs, mirroring the Session fluent setters the
/// CLIs expose. Plan-affecting knobs (fuse/simplify/vectorize/
/// temporal_degree/max_devices/target_utilization/kernel_engine/tune*)
/// enter the plan cache key; the rest only shape execution.
struct RequestOptions {
  bool Fuse = false;
  bool Simplify = false;
  /// Vectorization width override; 0 keeps the program's own width.
  int Vectorize = 0;
  /// Timesteps unrolled on-chip (requires time_loop bindings when > 1).
  int TemporalDegree = 1;
  int MaxDevices = 8;
  double TargetUtilization = 0.85;
  compute::KernelEngine KernelExec = compute::KernelEngine::Specialized;
  /// Simulation engine, "serial" or "parallel", plus the worker pin.
  std::string Engine = "serial";
  int Threads = 0;
  bool Validate = true;
  /// Autotune the mapping on a cache miss (analytic ranking; the tuned
  /// plan is what gets cached).
  bool Tune = false;
  int TuneBudget = 32;
};

/// One decoded request line.
struct Request {
  /// Echoed verbatim in the response so clients can pipeline.
  std::string Id;
  RequestOp Op = RequestOp::Run;
  /// Inline program description (an object), or...
  json::Value Program;
  /// ...a server-side path to one. Exactly one must be set for "run".
  std::string ProgramPath;
  RequestOptions Options;

  static Expected<Request> fromJson(const json::Value &V);
  static Expected<Request> fromJsonText(std::string_view Line);
  /// Encodes one request line (no trailing newline). Used by clients:
  /// the bench driver, tests, and sf_serve's --client mode.
  std::string toJsonText() const;
};

/// One encoded response line.
struct Response {
  std::string Id;
  bool Ok = false;

  /// "run" success payload.
  std::optional<bool> CacheHit; ///< Unset for non-run ops.
  int64_t Cycles = 0;
  int Devices = 0;
  double FrequencyMHz = 0.0;
  bool ValidationPassed = false;
  /// FNV-1a over the bit patterns of every output field, in field order —
  /// lets parity tests compare daemon results against direct Session runs
  /// without shipping whole fields over the wire.
  uint64_t OutputsCrc = 0;
  std::string KernelTiers;
  /// Microseconds queued, compiling (0 on a cache hit), and executing.
  int64_t QueueMicros = 0;
  int64_t CompileMicros = 0;
  int64_t ExecuteMicros = 0;

  /// Failure payload (Ok == false).
  ErrorCode Code = ErrorCode::Unknown;
  std::string ErrorMessage;
  /// The simulator's structured report, when the failure produced one.
  std::optional<sim::FailureReport> Failure;

  /// "stats" payload: the server's counter snapshot as a JSON object.
  std::optional<json::Value> Stats;

  /// Builds a failure response carrying \p Err's classification, message,
  /// and mapped process exit code.
  static Response failure(std::string Id, const Error &Err);

  std::string toJsonText() const;
  /// Decodes one response line (for clients).
  static Expected<Response> fromJsonText(std::string_view Line);
};

} // namespace serve
} // namespace stencilflow

#endif // STENCILFLOW_SERVE_PROTOCOL_H
