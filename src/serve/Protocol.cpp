//===- serve/Protocol.cpp - Serving wire protocol ------------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include "support/StringUtils.h"

#include <cstdlib>

using namespace stencilflow;
using namespace stencilflow::serve;

const char *serve::requestOpName(RequestOp Op) {
  switch (Op) {
  case RequestOp::Run:
    return "run";
  case RequestOp::Stats:
    return "stats";
  case RequestOp::Ping:
    return "ping";
  case RequestOp::Shutdown:
    return "shutdown";
  }
  return "run";
}

namespace {

/// Reads an optional scalar member, type-checked. Returns an error only
/// on a present-but-mistyped member; absence keeps the default.
Error readBool(const json::Object &O, const char *Key, bool &Out) {
  const json::Value *V = O.get(Key);
  if (!V)
    return Error::success();
  if (!V->isBoolean())
    return makeError(ErrorCode::InvalidInput,
                     formatString("'%s' must be a boolean", Key));
  Out = V->getBoolean();
  return Error::success();
}

Error readInt(const json::Object &O, const char *Key, int &Out) {
  const json::Value *V = O.get(Key);
  if (!V)
    return Error::success();
  if (!V->isNumber())
    return makeError(ErrorCode::InvalidInput,
                     formatString("'%s' must be a number", Key));
  Out = static_cast<int>(V->getInteger());
  return Error::success();
}

Error readDouble(const json::Object &O, const char *Key, double &Out) {
  const json::Value *V = O.get(Key);
  if (!V)
    return Error::success();
  if (!V->isNumber())
    return makeError(ErrorCode::InvalidInput,
                     formatString("'%s' must be a number", Key));
  Out = V->getNumber();
  return Error::success();
}

Error readString(const json::Object &O, const char *Key, std::string &Out) {
  const json::Value *V = O.get(Key);
  if (!V)
    return Error::success();
  if (!V->isString())
    return makeError(ErrorCode::InvalidInput,
                     formatString("'%s' must be a string", Key));
  Out = V->getString();
  return Error::success();
}

} // namespace

Expected<Request> Request::fromJson(const json::Value &V) {
  if (!V.isObject())
    return makeError(ErrorCode::InvalidInput, "request must be an object");
  const json::Object &O = V.getObject();

  Request R;
  if (Error Err = readString(O, "id", R.Id))
    return Err;

  std::string OpName = "run";
  if (Error Err = readString(O, "op", OpName))
    return Err;
  if (OpName == "run")
    R.Op = RequestOp::Run;
  else if (OpName == "stats")
    R.Op = RequestOp::Stats;
  else if (OpName == "ping")
    R.Op = RequestOp::Ping;
  else if (OpName == "shutdown")
    R.Op = RequestOp::Shutdown;
  else
    return makeError(ErrorCode::InvalidInput,
                     formatString("unknown op '%s'", OpName.c_str()));

  if (const json::Value *P = O.get("program")) {
    if (!P->isObject())
      return makeError(ErrorCode::InvalidInput,
                       "'program' must be an object");
    R.Program = *P;
  }
  if (Error Err = readString(O, "program_path", R.ProgramPath))
    return Err;
  if (R.Op == RequestOp::Run && R.Program.isNull() && R.ProgramPath.empty())
    return makeError(ErrorCode::InvalidInput,
                     "run request needs 'program' or 'program_path'");
  if (!R.Program.isNull() && !R.ProgramPath.empty())
    return makeError(ErrorCode::InvalidInput,
                     "'program' and 'program_path' are mutually exclusive");

  if (const json::Value *Opt = O.get("options")) {
    if (!Opt->isObject())
      return makeError(ErrorCode::InvalidInput,
                       "'options' must be an object");
    const json::Object &OO = Opt->getObject();
    RequestOptions &RO = R.Options;
    if (Error Err = readBool(OO, "fuse", RO.Fuse))
      return Err;
    if (Error Err = readBool(OO, "simplify", RO.Simplify))
      return Err;
    if (Error Err = readInt(OO, "vectorize", RO.Vectorize))
      return Err;
    if (Error Err = readInt(OO, "temporal_degree", RO.TemporalDegree))
      return Err;
    if (Error Err = readInt(OO, "max_devices", RO.MaxDevices))
      return Err;
    if (Error Err = readDouble(OO, "target_utilization",
                               RO.TargetUtilization))
      return Err;
    std::string Engine;
    if (Error Err = readString(OO, "kernel_engine", Engine))
      return Err;
    if (!Engine.empty()) {
      Expected<compute::KernelEngine> Parsed =
          compute::parseKernelEngine(Engine);
      if (!Parsed)
        return Parsed.takeError();
      RO.KernelExec = *Parsed;
    }
    if (Error Err = readString(OO, "engine", RO.Engine))
      return Err;
    if (RO.Engine != "serial" && RO.Engine != "parallel")
      return makeError(
          ErrorCode::InvalidInput,
          formatString("'engine' must be serial or parallel, got '%s'",
                       RO.Engine.c_str()));
    if (Error Err = readInt(OO, "threads", RO.Threads))
      return Err;
    if (Error Err = readBool(OO, "validate", RO.Validate))
      return Err;
    if (Error Err = readBool(OO, "tune", RO.Tune))
      return Err;
    if (Error Err = readInt(OO, "tune_budget", RO.TuneBudget))
      return Err;
  }
  return R;
}

Expected<Request> Request::fromJsonText(std::string_view Line) {
  Expected<json::Value> V = json::parse(Line);
  if (!V)
    return makeError(ErrorCode::InvalidInput,
                     "request line: " + V.message());
  return fromJson(*V);
}

std::string Request::toJsonText() const {
  json::Object O;
  if (!Id.empty())
    O.set("id", json::Value(Id));
  O.set("op", json::Value(requestOpName(Op)));
  if (!Program.isNull())
    O.set("program", Program);
  if (!ProgramPath.empty())
    O.set("program_path", json::Value(ProgramPath));

  json::Object OO;
  OO.set("fuse", json::Value(Options.Fuse));
  OO.set("simplify", json::Value(Options.Simplify));
  OO.set("vectorize", json::Value(Options.Vectorize));
  OO.set("temporal_degree", json::Value(Options.TemporalDegree));
  OO.set("max_devices", json::Value(Options.MaxDevices));
  OO.set("target_utilization", json::Value(Options.TargetUtilization));
  OO.set("kernel_engine",
         json::Value(compute::kernelEngineName(Options.KernelExec)));
  OO.set("engine", json::Value(Options.Engine));
  OO.set("threads", json::Value(Options.Threads));
  OO.set("validate", json::Value(Options.Validate));
  OO.set("tune", json::Value(Options.Tune));
  OO.set("tune_budget", json::Value(Options.TuneBudget));
  O.set("options", json::Value(std::move(OO)));
  return json::Value(std::move(O)).toString();
}

Response Response::failure(std::string Id, const Error &Err) {
  Response R;
  R.Id = std::move(Id);
  R.Ok = false;
  R.Code = Err.code();
  R.ErrorMessage = Err.message();
  return R;
}

std::string Response::toJsonText() const {
  json::Object O;
  if (!Id.empty())
    O.set("id", json::Value(Id));
  O.set("ok", json::Value(Ok));
  if (CacheHit)
    O.set("cache", json::Value(*CacheHit ? "hit" : "miss"));
  if (Ok && Stats) {
    O.set("stats", *Stats);
    return json::Value(std::move(O)).toString();
  }
  // Run results carry the execution block; ping/shutdown acks are bare.
  // CacheHit doubles as the "this was a run" marker — Server::process
  // always sets it on the run path.
  if (Ok && CacheHit) {
    O.set("cycles", json::Value(Cycles));
    O.set("devices", json::Value(Devices));
    O.set("frequency_mhz", json::Value(FrequencyMHz));
    O.set("validation_passed", json::Value(ValidationPassed));
    // 64-bit CRCs do not survive JSON's double numbers; ship hex text.
    O.set("outputs_crc",
          json::Value(formatString(
              "%016llx", static_cast<unsigned long long>(OutputsCrc))));
    if (!KernelTiers.empty())
      O.set("kernel_tiers", json::Value(KernelTiers));
    O.set("queue_us", json::Value(QueueMicros));
    O.set("compile_us", json::Value(CompileMicros));
    O.set("execute_us", json::Value(ExecuteMicros));
  } else {
    json::Object E;
    E.set("code", json::Value(errorCodeName(Code)));
    E.set("exit_code", json::Value(exitCodeFor(Code)));
    E.set("message", json::Value(ErrorMessage));
    O.set("error", json::Value(std::move(E)));
    if (Failure) {
      // FailureReport serializes itself to text; splice it in as a value.
      Expected<json::Value> Report = json::parse(Failure->toJson());
      if (Report)
        O.set("failure_report", Report.takeValue());
    }
  }
  return json::Value(std::move(O)).toString();
}

Expected<Response> Response::fromJsonText(std::string_view Line) {
  Expected<json::Value> V = json::parse(Line);
  if (!V)
    return makeError(ErrorCode::InvalidInput,
                     "response line: " + V.message());
  if (!V->isObject())
    return makeError(ErrorCode::InvalidInput, "response must be an object");
  const json::Object &O = V->getObject();

  Response R;
  if (Error Err = readString(O, "id", R.Id))
    return Err;
  if (Error Err = readBool(O, "ok", R.Ok))
    return Err;
  std::string Cache;
  if (Error Err = readString(O, "cache", Cache))
    return Err;
  if (!Cache.empty())
    R.CacheHit = Cache == "hit";

  if (const json::Value *S = O.get("stats")) {
    R.Stats = *S;
    return R;
  }

  if (R.Ok) {
    int Devices = 0;
    double Cycles = 0, Queue = 0, Compile = 0, Execute = 0;
    if (Error Err = readDouble(O, "cycles", Cycles))
      return Err;
    if (Error Err = readInt(O, "devices", Devices))
      return Err;
    if (Error Err = readDouble(O, "frequency_mhz", R.FrequencyMHz))
      return Err;
    if (Error Err = readBool(O, "validation_passed", R.ValidationPassed))
      return Err;
    std::string Crc;
    if (Error Err = readString(O, "outputs_crc", Crc))
      return Err;
    if (!Crc.empty())
      R.OutputsCrc = strtoull(Crc.c_str(), nullptr, 16);
    if (Error Err = readString(O, "kernel_tiers", R.KernelTiers))
      return Err;
    if (Error Err = readDouble(O, "queue_us", Queue))
      return Err;
    if (Error Err = readDouble(O, "compile_us", Compile))
      return Err;
    if (Error Err = readDouble(O, "execute_us", Execute))
      return Err;
    R.Cycles = static_cast<int64_t>(Cycles);
    R.Devices = Devices;
    R.QueueMicros = static_cast<int64_t>(Queue);
    R.CompileMicros = static_cast<int64_t>(Compile);
    R.ExecuteMicros = static_cast<int64_t>(Execute);
    return R;
  }

  if (const json::Value *E = O.get("error")) {
    if (!E->isObject())
      return makeError(ErrorCode::InvalidInput,
                       "'error' must be an object");
    std::string Code;
    if (Error Err = readString(E->getObject(), "code", Code))
      return Err;
    if (std::optional<ErrorCode> Parsed = errorCodeFromName(Code))
      R.Code = *Parsed;
    if (Error Err =
            readString(E->getObject(), "message", R.ErrorMessage))
      return Err;
  }
  if (const json::Value *F = O.get("failure_report")) {
    Expected<sim::FailureReport> Report = sim::FailureReport::fromJson(*F);
    if (Report)
      R.Failure = Report.takeValue();
  }
  return R;
}
