//===- serve/SocketServer.h - AF_UNIX line-JSON transport ---------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon transport: an AF_UNIX stream socket speaking the
/// line-delimited JSON protocol (serve/Protocol.h). Each accepted
/// connection gets a reader thread that decodes request lines, drives the
/// shared \c Server, and writes one response line per request, in order.
/// Admission control and the plan cache live in the \c Server — the
/// transport is deliberately dumb.
///
/// Shutdown is graceful and signal-safe: \c requestShutdown() (callable
/// from a SIGTERM/SIGINT handler — it only calls shutdown(2) on the
/// listening descriptor) unblocks the accept loop; \c run() then stops
/// the server (draining admitted jobs, shedding queued ones), joins the
/// connection threads, and unlinks the socket path.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SERVE_SOCKETSERVER_H
#define STENCILFLOW_SERVE_SOCKETSERVER_H

#include "serve/Server.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace stencilflow {
namespace serve {

/// One listening AF_UNIX socket bound to a filesystem path, multiplexing
/// connections onto a shared \c Server.
class SocketServer {
public:
  /// \p Core must outlive this transport.
  SocketServer(Server &Core, std::string Path);
  ~SocketServer();

  /// Binds and listens. Fails with InvalidInput if the path is taken or
  /// unbindable (a stale socket file left by a crashed daemon is
  /// reclaimed automatically when nothing is listening on it).
  Error open();

  /// Accept loop: blocks until \c requestShutdown() (or a fatal accept
  /// error), then stops the core server, joins connection threads, and
  /// removes the socket file. The "shutdown" protocol op triggers the
  /// same path from a connection thread.
  void run();

  /// Async-signal-safe shutdown trigger.
  void requestShutdown();

  const std::string &path() const { return Path; }

private:
  void serveConnection(int Fd);

  Server &Core;
  std::string Path;
  std::atomic<int> ListenFd{-1};
  std::atomic<bool> ShutdownRequested{false};

  std::mutex ConnMutex;
  std::vector<std::thread> Connections;
};

} // namespace serve
} // namespace stencilflow

#endif // STENCILFLOW_SERVE_SOCKETSERVER_H
