//===- serve/PlanCache.cpp - Compiled-plan cache -------------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/PlanCache.h"

#include "compute/Engine.h"
#include "frontend/ProgramLoader.h"
#include "support/StringUtils.h"

using namespace stencilflow;
using namespace stencilflow::serve;

namespace {

/// FNV-1a over a byte string. 64-bit offset basis / prime.
uint64_t fnv1a(std::string_view Bytes) {
  uint64_t Hash = 1469598103934665603ull;
  for (unsigned char C : Bytes) {
    Hash ^= C;
    Hash *= 1099511628211ull;
  }
  return Hash;
}

} // namespace

uint64_t serve::fingerprintProgramJson(const json::Value &Description) {
  return fnv1a(Description.toString());
}

uint64_t serve::fingerprintProgram(const StencilProgram &Program) {
  return fingerprintProgramJson(programToJson(Program));
}

std::string PlanKey::id() const {
  // Utilization is quantized to 1/1000 so float formatting noise cannot
  // split keys that request the same value.
  std::string Id =
      formatString("p%016llx-f%d-s%d-w%d-d%d-u%d-k%s-t%d-b%d",
                   static_cast<unsigned long long>(ProgramHash),
                   Fuse ? 1 : 0, Simplify ? 1 : 0, VectorWidth, MaxDevices,
                   static_cast<int>(TargetUtilization * 1000.0 + 0.5),
                   compute::kernelEngineName(KernelExec), Tuned ? 1 : 0,
                   Tuned ? TuneBudget : 0);
  // Suffix only above 1: keys of temporally-unblocked plans are stable
  // across the introduction of the knob.
  if (TemporalDegree > 1)
    Id += formatString("-T%d", TemporalDegree);
  return Id;
}

std::shared_ptr<const CompiledPlan> PlanCache::find(const std::string &KeyId) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(KeyId);
  if (It == Entries.end())
    return nullptr;
  Lru.splice(Lru.begin(), Lru, It->second.LruIt);
  return It->second.Plan;
}

void PlanCache::insert(const std::string &KeyId,
                       std::shared_ptr<const CompiledPlan> Plan) {
  if (Capacity == 0 || !Plan)
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(KeyId);
  if (It != Entries.end()) {
    It->second.Plan = std::move(Plan);
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    return;
  }
  Lru.push_front(KeyId);
  Entries[KeyId] = Entry{std::move(Plan), Lru.begin()};
  while (Entries.size() > Capacity) {
    Entries.erase(Lru.back());
    Lru.pop_back();
    ++Evictions;
  }
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}

int64_t PlanCache::evictions() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Evictions;
}
