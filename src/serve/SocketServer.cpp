//===- serve/SocketServer.cpp - AF_UNIX line-JSON transport --------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/SocketServer.h"

#include "support/StringUtils.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace stencilflow;
using namespace stencilflow::serve;

SocketServer::SocketServer(Server &Core, std::string Path)
    : Core(Core), Path(std::move(Path)) {}

SocketServer::~SocketServer() {
  int Fd = ListenFd.exchange(-1);
  if (Fd >= 0) {
    ::close(Fd);
    ::unlink(Path.c_str());
  }
}

Error SocketServer::open() {
  if (Path.empty())
    return makeError(ErrorCode::InvalidInput, "socket path is empty");
  sockaddr_un Addr;
  if (Path.size() >= sizeof(Addr.sun_path))
    return makeError(
        ErrorCode::InvalidInput,
        formatString("socket path '%s' exceeds the AF_UNIX limit of %zu",
                     Path.c_str(), sizeof(Addr.sun_path) - 1));

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return makeError(formatString("socket: %s", std::strerror(errno)));

  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);

  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    // A stale socket file from a crashed daemon: reclaim it iff nothing
    // answers on it.
    if (errno == EADDRINUSE) {
      int Probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      bool Live =
          Probe >= 0 &&
          ::connect(Probe, reinterpret_cast<sockaddr *>(&Addr),
                    sizeof(Addr)) == 0;
      if (Probe >= 0)
        ::close(Probe);
      if (!Live && ::unlink(Path.c_str()) == 0 &&
          ::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
              0) {
        // Reclaimed.
      } else {
        ::close(Fd);
        return makeError(
            ErrorCode::InvalidInput,
            formatString("socket path '%s' is in use by a live daemon",
                         Path.c_str()));
      }
    } else {
      Error Err = makeError(ErrorCode::InvalidInput,
                            formatString("bind '%s': %s", Path.c_str(),
                                         std::strerror(errno)));
      ::close(Fd);
      return Err;
    }
  }
  if (::listen(Fd, 64) < 0) {
    Error Err = makeError(formatString("listen '%s': %s", Path.c_str(),
                                       std::strerror(errno)));
    ::close(Fd);
    ::unlink(Path.c_str());
    return Err;
  }
  ListenFd.store(Fd);
  return Error::success();
}

void SocketServer::requestShutdown() {
  ShutdownRequested.store(true);
  int Fd = ListenFd.load();
  // shutdown(2) is async-signal-safe and unblocks the blocked accept(2);
  // the fd itself is closed by run()'s teardown, not here.
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR);
}

void SocketServer::run() {
  Core.start();
  for (;;) {
    int Fd = ListenFd.load();
    if (Fd < 0)
      break;
    int Conn = ::accept(Fd, nullptr, nullptr);
    if (Conn < 0) {
      if (errno == EINTR && !ShutdownRequested.load())
        continue;
      break; // Shutdown or a fatal accept error: drain and exit.
    }
    std::lock_guard<std::mutex> Lock(ConnMutex);
    Connections.emplace_back([this, Conn] { serveConnection(Conn); });
  }

  // Teardown: new connections are refused (listener closed), admitted
  // jobs drain, queued jobs shed, connection writers flush.
  Core.stop();
  std::vector<std::thread> Drain;
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    Drain.swap(Connections);
  }
  for (std::thread &T : Drain)
    T.join();
  int Fd = ListenFd.exchange(-1);
  if (Fd >= 0) {
    ::close(Fd);
    ::unlink(Path.c_str());
  }
}

void SocketServer::serveConnection(int Fd) {
  std::string Buffer;
  char Chunk[4096];
  bool Open = true;
  bool ShutdownOp = false;
  while (Open && !ShutdownRequested.load()) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N <= 0)
      break;
    Buffer.append(Chunk, static_cast<size_t>(N));

    size_t Pos;
    while ((Pos = Buffer.find('\n')) != std::string::npos) {
      std::string Line = Buffer.substr(0, Pos);
      Buffer.erase(0, Pos + 1);
      if (Line.empty())
        continue;

      Response Out;
      Expected<Request> Req = Request::fromJsonText(Line);
      if (!Req) {
        Out = Response::failure("", Req.takeError());
      } else if (Req->Op == RequestOp::Shutdown) {
        Out.Id = Req->Id;
        Out.Ok = true;
        Open = false; // Respond, then trigger the graceful teardown.
        ShutdownOp = true;
      } else {
        Out = Core.handle(std::move(*Req));
      }

      std::string Text = Out.toJsonText();
      Text.push_back('\n');
      size_t Off = 0;
      while (Off < Text.size()) {
        ssize_t W = ::write(Fd, Text.data() + Off, Text.size() - Off);
        if (W <= 0) {
          Open = false;
          break;
        }
        Off += static_cast<size_t>(W);
      }
      if (!Open)
        break;
    }
  }
  ::close(Fd);
  // A client-issued "shutdown" op lands here after its response flushed.
  if (ShutdownOp)
    requestShutdown();
}
