//===- serve/PlanCache.h - Compiled-plan cache --------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer's compiled-plan cache: repeat traffic for the same
/// (program, mapping, kernel engine) skips the pipeline's entire compile
/// half — parse, fusion, kernel compilation, dataflow/buffer analysis,
/// tuning, and partitioning — and goes straight to execution.
///
/// Keying is *syntactic*: the program fingerprint is an FNV-1a hash of the
/// canonical compact JSON rendering of the description, so a cache hit
/// never requires semantic analysis of the request. Two descriptions that
/// differ only in member order or whitespace hash differently — they
/// simply occupy two entries. The rest of the key covers every request
/// knob that changes the compiled plan (fusion, simplification, vector
/// width, device budget, target utilization, autotuning) plus the kernel
/// execution tier, so no knob can leak a stale plan across requests.
///
/// Entries are shared immutable plans (\c std::shared_ptr<const
/// CompiledPlan>): a plan evicted while a request still executes on it
/// stays alive until that request finishes. Bounded LRU; thread-safe.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SERVE_PLANCACHE_H
#define STENCILFLOW_SERVE_PLANCACHE_H

#include "runtime/Pipeline.h"
#include "support/Json.h"

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace stencilflow {
namespace serve {

/// Stable 64-bit FNV-1a fingerprint of a JSON program description
/// (canonical compact rendering; insertion order preserved).
uint64_t fingerprintProgramJson(const json::Value &Description);

/// Fingerprint of an in-memory program, via its round-trippable JSON
/// serialization — identical to hashing the emitted description.
uint64_t fingerprintProgram(const StencilProgram &Program);

/// Everything that selects a distinct compiled plan: the program
/// fingerprint, the mapping knobs consumed by the compile half, whether
/// the mapping was autotuned, and the kernel execution tier. \c id() is
/// the canonical cache key; any field change changes it.
struct PlanKey {
  uint64_t ProgramHash = 0;
  bool Fuse = false;
  bool Simplify = false;
  /// Requested vectorization width; 0 keeps the program's own width.
  int VectorWidth = 0;
  /// Timesteps unrolled on-chip; appears in the id only when above 1 so
  /// keys of temporally-unblocked plans are unchanged.
  int TemporalDegree = 1;
  int MaxDevices = 8;
  double TargetUtilization = 0.85;
  compute::KernelEngine KernelExec = compute::KernelEngine::Specialized;
  /// Autotuned mapping (and the candidate budget the search ran with —
  /// different budgets may choose different mappings).
  bool Tuned = false;
  int TuneBudget = 0;

  /// Canonical key string, e.g. "p1a2b3c4d5e6f708-f1-s0-w4-d8-u850-
  /// kspecialized-t0b0".
  std::string id() const;

  friend bool operator==(const PlanKey &A, const PlanKey &B) {
    return A.id() == B.id();
  }
};

/// Thread-safe bounded LRU cache of shared immutable compiled plans.
/// Lookup/insert only — hit/miss accounting lives with the server's
/// ServeStats, which also counts requests that joined an in-flight
/// compilation.
class PlanCache {
public:
  explicit PlanCache(size_t Capacity = 64) : Capacity(Capacity) {}

  /// The cached plan for \p KeyId, or null. Refreshes LRU order.
  std::shared_ptr<const CompiledPlan> find(const std::string &KeyId);

  /// Inserts (or replaces) the plan for \p KeyId, evicting the least
  /// recently used entries beyond capacity.
  void insert(const std::string &KeyId,
              std::shared_ptr<const CompiledPlan> Plan);

  size_t size() const;
  size_t capacity() const { return Capacity; }
  int64_t evictions() const;

private:
  struct Entry {
    std::shared_ptr<const CompiledPlan> Plan;
    std::list<std::string>::iterator LruIt;
  };

  mutable std::mutex Mutex;
  size_t Capacity;
  /// Most recently used at the front; values are key ids.
  std::list<std::string> Lru;
  std::map<std::string, Entry> Entries;
  int64_t Evictions = 0;
};

} // namespace serve
} // namespace stencilflow

#endif // STENCILFLOW_SERVE_PLANCACHE_H
