//===- serve/Server.h - Multi-tenant serving core -----------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving daemon's core: a worker pool that turns protocol requests
/// into compile+simulate runs, fronted by a compiled-plan cache and
/// admission control. Transport-independent — the AF_UNIX socket daemon
/// (serve/SocketServer.h), the `--once` stdin mode, tests, and the bench
/// driver all submit through the same \c Server.
///
/// Admission control has two gates, both returning typed
/// \c ErrorCode::Overloaded rejections instead of blocking indefinitely
/// or crashing:
///
///  1. A bounded queue: at most \c ServerOptions::QueueDepth requests may
///     be waiting; excess load is shed immediately ("graceful
///     degradation" — the caller gets a retryable failure response, the
///     jobs already admitted are unaffected).
///  2. A shared device pool: a compiled plan that needs more simulated
///     devices than \c ServerOptions::DevicePool exist is rejected
///     outright; feasible jobs wait (bounded by queue admission, not
///     time) until enough devices free up, so concurrent tenants cannot
///     oversubscribe the fabric the resource model sized.
///
/// Cache accounting: a request is a *hit* when it was served without
/// compiling — found in the cache, or joined an identical in-flight
/// compilation (single-flight); it is a *miss* when it triggered the
/// compile half itself.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SERVE_SERVER_H
#define STENCILFLOW_SERVE_SERVER_H

#include "runtime/Pipeline.h"
#include "serve/PlanCache.h"
#include "serve/Protocol.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace stencilflow {
namespace serve {

/// Serving configuration.
struct ServerOptions {
  /// Worker threads executing admitted jobs.
  int Workers = 2;

  /// Bounded admission queue: jobs waiting for a worker beyond this are
  /// shed with ErrorCode::Overloaded.
  int QueueDepth = 16;

  /// Compiled-plan cache capacity (plans, not bytes).
  size_t CacheCapacity = 64;

  /// Simulated devices shared by all in-flight jobs. A plan needing more
  /// than this is rejected; feasible jobs serialize on availability.
  int DevicePool = 8;

  /// Base pipeline configuration each request starts from; request
  /// options overlay it.
  PipelineOptions Base;
};

/// Counter snapshot exported by op "stats" and asserted by tests/CI.
struct ServeStats {
  int64_t Received = 0;  ///< Run requests submitted.
  int64_t Completed = 0; ///< Successful responses.
  int64_t Failed = 0;    ///< Typed failure responses (compile/sim errors).
  int64_t Shed = 0;      ///< Rejected at admission: queue full / draining.
  int64_t Rejected = 0;  ///< Rejected: plan oversubscribes the device pool.

  int64_t CacheHits = 0;      ///< Served without compiling.
  int64_t CacheMisses = 0;    ///< Compiled (single-flight leaders).
  int64_t CacheEvictions = 0; ///< LRU evictions.
  int64_t CacheSize = 0;      ///< Plans resident right now.

  int64_t QueueDepth = 0;          ///< Jobs waiting right now.
  int64_t QueueHighWater = 0;      ///< Max jobs ever waiting.
  int64_t DevicesBusy = 0;         ///< Devices reserved right now.
  int64_t DevicesBusyHighWater = 0;///< Max devices ever reserved.

  json::Value toJson() const;
};

/// The transport-independent serving core. Thread-safe; one instance
/// serves every connection.
class Server {
public:
  explicit Server(ServerOptions Options);
  ~Server();

  /// Spawns the worker pool. Idempotent.
  void start();

  /// Graceful shutdown: stops admitting, sheds the still-queued jobs with
  /// Overloaded responses, drains the jobs workers already picked up, and
  /// joins the pool. Idempotent.
  void stop();

  /// Submits a run request. Admission happens here, synchronously: a shed
  /// request's future is already resolved with the typed failure. Ops
  /// other than "run" are answered inline (they touch only counters).
  std::future<Response> submit(Request R);

  /// Submit-and-wait convenience for in-process callers (tests, --once).
  Response handle(Request R);

  ServeStats stats() const;
  const ServerOptions &options() const { return Opts; }

private:
  struct Job {
    Request Req;
    std::promise<Response> Done;
    std::chrono::steady_clock::time_point Enqueued;
  };

  /// The per-key single-flight rendezvous: the compile outcome, shareable
  /// across every request that raced on the same key.
  struct CompileOutcome {
    std::shared_ptr<const CompiledPlan> Plan;
    Error Err; ///< Set when compilation failed.
    int64_t Micros = 0;
  };

  void workerLoop();
  Response process(Request &R, int64_t QueueMicros);
  /// Resolves the plan for \p R: cache, single-flight join, or compile.
  /// Sets \p Hit and \p CompileMicros.
  Expected<std::shared_ptr<const CompiledPlan>>
  resolvePlan(const Request &R, bool &Hit, int64_t &CompileMicros);
  /// Compiles the plan for \p R (the cache-miss path).
  CompileOutcome compileForRequest(const Request &R);

  ServerOptions Opts;
  PlanCache Cache;

  mutable std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable DevicesFreed;
  std::deque<std::unique_ptr<Job>> Queue;
  std::vector<std::thread> Workers;
  bool Started = false;
  bool Stopping = false;
  int DevicesBusy = 0;
  ServeStats Counters;

  /// In-flight compilations by cache key (single-flight).
  std::map<std::string, std::shared_future<CompileOutcome>> InFlight;
};

} // namespace serve
} // namespace stencilflow

#endif // STENCILFLOW_SERVE_SERVER_H
