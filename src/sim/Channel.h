//===- sim/Channel.h - Bounded FIFO channels ----------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded FIFO channels with full/empty stall semantics — the simulator's
/// model of Intel OpenCL channels (on-chip) and SMI remote streams
/// (cross-device, with per-hop latency and bandwidth arbitration). Channel
/// capacities carry the delay-buffer depths computed by the analysis;
/// undersized channels are exactly what produces the Fig. 4 deadlock.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SIM_CHANNEL_H
#define STENCILFLOW_SIM_CHANNEL_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace stencilflow {
namespace sim {

/// A bounded FIFO of vectors (W lanes each). Remote channels additionally
/// stamp each vector with the cycle at which it becomes visible to the
/// consumer (per-hop network latency).
class Channel {
public:
  Channel(std::string Name, int64_t CapacityVectors, int Lanes,
          int64_t ArrivalLatency = 0)
      : Name(std::move(Name)), Capacity(CapacityVectors), Lanes(Lanes),
        ArrivalLatency(ArrivalLatency) {
    assert(CapacityVectors > 0 && "channels need positive capacity");
    Storage.resize(static_cast<size_t>(Capacity) *
                   static_cast<size_t>(Lanes));
    ReadyCycles.resize(static_cast<size_t>(Capacity));
  }

  const std::string &name() const { return Name; }
  int64_t capacity() const { return Capacity; }
  int lanes() const { return Lanes; }
  int64_t arrivalLatency() const { return ArrivalLatency; }

  bool full() const { return Count == Capacity; }
  bool empty() const { return Count == 0; }
  int64_t size() const { return Count; }

  /// True if a vector is available to the consumer at \p Cycle (non-empty
  /// and past the network latency).
  bool readable(int64_t Cycle) const {
    return Count > 0 && ReadyCycles[static_cast<size_t>(Head)] <= Cycle;
  }

  /// Highest *visible* occupancy ever observed (vectors): enqueued minus
  /// still in flight on the network. Comparing this against the
  /// analysis-computed delay-buffer depth empirically validates the
  /// buffer sizing of Sec. IV-B — in-flight remote vectors must not count
  /// because they occupy the wire, not the FIFO. For local channels
  /// (zero arrival latency) this equals \c peakOccupancy().
  int64_t highWaterMark() const { return VisibleHighWater; }

  /// Highest total occupancy ever observed (vectors), including vectors
  /// still in flight. This is what bounds the physical FIFO allocation.
  int64_t peakOccupancy() const { return PeakOccupancy; }

  /// Enqueues one vector (\p Lanes values); the channel must not be full.
  void push(const double *Vector, int64_t Cycle) {
    assert(!full() && "push into a full channel");
    int64_t Slot = (Head + Count) % Capacity;
    double *Dest = &Storage[static_cast<size_t>(Slot * Lanes)];
    for (int L = 0; L != Lanes; ++L)
      Dest[L] = Vector[L];
    ReadyCycles[static_cast<size_t>(Slot)] = Cycle + ArrivalLatency;
    ++Count;
    PeakOccupancy = std::max(PeakOccupancy, Count);
    recordVisible(Cycle);
  }

  /// Dequeues one vector into \p Vector; must be readable.
  void pop(double *Vector, int64_t Cycle) {
    assert(readable(Cycle) && "pop from an unreadable channel");
    // In-flight vectors may have matured since the last push; fold the
    // maturation into the visible high-water mark before draining.
    recordVisible(Cycle);
    const double *Src = &Storage[static_cast<size_t>(Head * Lanes)];
    for (int L = 0; L != Lanes; ++L)
      Vector[L] = Src[L];
    Head = (Head + 1) % Capacity;
    --Count;
  }

  /// True when any enqueued vector is still in flight (will mature later).
  bool hasPendingArrival(int64_t Cycle) const {
    return Count > 0 && ReadyCycles[static_cast<size_t>(Head)] > Cycle;
  }

  /// The cycle at which the oldest enqueued vector becomes readable; must
  /// only be called on a non-empty channel. Used by the parallel engine's
  /// quiescence fast-forward to compute the next wake-up event.
  int64_t nextReadyCycle() const {
    assert(Count > 0 && "nextReadyCycle on an empty channel");
    return ReadyCycles[static_cast<size_t>(Head)];
  }

  /// Enqueues one vector that was pushed at \p PushCycle but deferred in a
  /// producer-side staging buffer (parallel engine, cross-shard channels).
  /// Identical to \c push except that the occupancy statistics are *not*
  /// sampled here — the epoch barrier replays the interleaved push/pop
  /// trajectory and records the exact peak via \c notePeakOccupancy; the
  /// visible high-water mark needs no replay because every push-time
  /// sample is dominated by the consumer's next pop-time sample, which is
  /// recorded live.
  void pushStaged(const double *Vector, int64_t PushCycle) {
    assert(!full() && "pushStaged into a full channel");
    int64_t Slot = (Head + Count) % Capacity;
    double *Dest = &Storage[static_cast<size_t>(Slot * Lanes)];
    for (int L = 0; L != Lanes; ++L)
      Dest[L] = Vector[L];
    ReadyCycles[static_cast<size_t>(Slot)] = PushCycle + ArrivalLatency;
    ++Count;
  }

  /// Folds a replayed occupancy sample into the peak statistic.
  void notePeakOccupancy(int64_t Occupancy) {
    PeakOccupancy = std::max(PeakOccupancy, Occupancy);
  }

  /// Occupancy visible to the consumer at \p Cycle: enqueued vectors that
  /// have matured past the arrival latency. Ready cycles are
  /// non-decreasing in FIFO order (constant latency, monotone push
  /// cycles), so scanning newest-to-oldest stops at the first matured
  /// vector; the cost is O(in-flight), which is bounded by the arrival
  /// latency, and zero for local channels.
  int64_t visibleSize(int64_t Cycle) const {
    if (ArrivalLatency == 0)
      return Count;
    int64_t InFlight = 0;
    while (InFlight < Count) {
      int64_t Slot = (Head + Count - 1 - InFlight) % Capacity;
      if (ReadyCycles[static_cast<size_t>(Slot)] <= Cycle)
        break;
      ++InFlight;
    }
    return Count - InFlight;
  }

  //===--------------------------------------------------------------------===//
  // Checkpoint support (sim/Checkpoint.h)
  //===--------------------------------------------------------------------===//

  /// The I-th enqueued vector counting from the oldest (0 <= I < size()).
  const double *vectorAt(int64_t I) const {
    assert(I >= 0 && I < Count && "vectorAt out of range");
    int64_t Slot = (Head + I) % Capacity;
    return &Storage[static_cast<size_t>(Slot * Lanes)];
  }
  /// The ready cycle of the I-th enqueued vector (oldest first).
  int64_t readyCycleAt(int64_t I) const {
    assert(I >= 0 && I < Count && "readyCycleAt out of range");
    return ReadyCycles[static_cast<size_t>((Head + I) % Capacity)];
  }

  /// Resets contents and occupancy statistics ahead of a snapshot restore.
  void clearForRestore() {
    Head = Count = 0;
    PeakOccupancy = VisibleHighWater = 0;
  }
  /// Raw re-enqueue of a snapshotted vector: exact ready cycle, no
  /// statistics sampling (the peaks are restored separately).
  void restorePush(const double *Vector, int64_t ReadyCycle) {
    assert(!full() && "restorePush into a full channel");
    int64_t Slot = (Head + Count) % Capacity;
    double *Dest = &Storage[static_cast<size_t>(Slot * Lanes)];
    for (int L = 0; L != Lanes; ++L)
      Dest[L] = Vector[L];
    ReadyCycles[static_cast<size_t>(Slot)] = ReadyCycle;
    ++Count;
  }
  /// Restores the snapshotted occupancy statistics verbatim.
  void restoreStats(int64_t Peak, int64_t HighWater) {
    PeakOccupancy = Peak;
    VisibleHighWater = HighWater;
  }
  /// Grows the capacity to at least \p MinCapacity (rehydrating onto a
  /// re-partitioned machine: a formerly-remote channel carries a deeper
  /// occupancy than the now-local capacity). Preserves contents; no-op
  /// when already large enough.
  void ensureCapacity(int64_t MinCapacity) {
    if (MinCapacity <= Capacity)
      return;
    std::vector<double> NewStorage(static_cast<size_t>(MinCapacity) *
                                   static_cast<size_t>(Lanes));
    std::vector<int64_t> NewReady(static_cast<size_t>(MinCapacity));
    for (int64_t I = 0; I != Count; ++I) {
      const double *Src = vectorAt(I);
      double *Dest = &NewStorage[static_cast<size_t>(I * Lanes)];
      for (int L = 0; L != Lanes; ++L)
        Dest[L] = Src[L];
      NewReady[static_cast<size_t>(I)] = readyCycleAt(I);
    }
    Storage = std::move(NewStorage);
    ReadyCycles = std::move(NewReady);
    Capacity = MinCapacity;
    Head = 0;
  }

private:
  /// Folds the current visible occupancy into the visible high-water mark.
  void recordVisible(int64_t Cycle) {
    VisibleHighWater = std::max(VisibleHighWater, visibleSize(Cycle));
  }

  std::string Name;
  int64_t Capacity;
  int Lanes;
  int64_t ArrivalLatency;
  std::vector<double> Storage;
  std::vector<int64_t> ReadyCycles;
  int64_t Head = 0;
  int64_t Count = 0;
  int64_t PeakOccupancy = 0;
  int64_t VisibleHighWater = 0;
};

} // namespace sim
} // namespace stencilflow

#endif // STENCILFLOW_SIM_CHANNEL_H
