//===- sim/Fault.cpp - Deterministic fault injection ---------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Fault.h"

#include "support/JsonWriter.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace stencilflow;
using namespace stencilflow::sim;

//===----------------------------------------------------------------------===//
// Fault kinds
//===----------------------------------------------------------------------===//

const char *sim::faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::LinkDegrade:
    return "link-degrade";
  case FaultKind::LinkOutage:
    return "link-outage";
  case FaultKind::MemoryBrownout:
    return "memory-brownout";
  case FaultKind::PayloadCorruption:
    return "payload-corruption";
  case FaultKind::DeviceFailure:
    return "device-failure";
  }
  return "link-degrade";
}

std::optional<FaultKind> sim::faultKindFromName(std::string_view Name) {
  for (int Kind = 0; Kind != NumFaultKinds; ++Kind)
    if (Name == faultKindName(static_cast<FaultKind>(Kind)))
      return static_cast<FaultKind>(Kind);
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Plan queries
//===----------------------------------------------------------------------===//

Error FaultPlan::validate() const {
  for (size_t Index = 0; Index != Events.size(); ++Index) {
    const FaultEvent &E = Events[Index];
    auto Context = [&](const char *What) {
      return makeError(ErrorCode::InvalidInput,
                       formatString("fault event %zu (%s): %s", Index,
                                    faultKindName(E.Kind), What));
    };
    if (E.StartCycle < 0)
      return Context("negative start cycle");
    if (E.Kind != FaultKind::DeviceFailure && E.EndCycle <= E.StartCycle)
      return Context("window is empty (end <= start)");
    if ((E.Kind == FaultKind::LinkDegrade ||
         E.Kind == FaultKind::MemoryBrownout) &&
        (E.Factor < 0.0 || E.Factor > 1.0))
      return Context("factor must be in [0, 1]");
    if (E.Kind == FaultKind::PayloadCorruption &&
        (E.Probability < 0.0 || E.Probability > 1.0))
      return Context("probability must be in [0, 1]");
    if ((E.Kind == FaultKind::MemoryBrownout ||
         E.Kind == FaultKind::DeviceFailure) &&
        E.Device < 0)
      return Context("device must be non-negative");
  }
  return Error::success();
}

double FaultPlan::memoryFactor(int Device, int64_t Cycle) const {
  double Factor = 1.0;
  for (const FaultEvent &E : Events)
    if (E.Kind == FaultKind::MemoryBrownout && E.Device == Device &&
        E.activeAt(Cycle))
      Factor *= E.Factor;
  return Factor;
}

bool FaultPlan::memoryBrownoutAt(int Device, int64_t Cycle) const {
  for (const FaultEvent &E : Events)
    if (E.Kind == FaultKind::MemoryBrownout && E.Device == Device &&
        E.activeAt(Cycle))
      return true;
  return false;
}

double FaultPlan::linkFactor(int Hop, int64_t Cycle) const {
  double Factor = 1.0;
  for (const FaultEvent &E : Events) {
    if (!E.activeAt(Cycle) || (E.Hop != -1 && E.Hop != Hop))
      continue;
    if (E.Kind == FaultKind::LinkOutage)
      return 0.0;
    if (E.Kind == FaultKind::LinkDegrade)
      Factor *= E.Factor;
  }
  return Factor;
}

namespace {

/// splitmix64 finalizer: decorrelates the packed key bits.
uint64_t mix64(uint64_t Z) {
  Z += 0x9E3779B97F4A7C15ULL;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

/// Counter-based uniform double in [0, 1) from a composite key.
double hashToUnit(uint64_t A, uint64_t B, uint64_t C, uint64_t D) {
  uint64_t H = mix64(A);
  H = mix64(H ^ B);
  H = mix64(H ^ C);
  H = mix64(H ^ D);
  return static_cast<double>(H >> 11) * 0x1.0p-53;
}

} // namespace

bool FaultPlan::corruptsTransmission(int64_t Cycle, size_t Channel,
                                     int64_t Seq, uint64_t Nonce,
                                     int FirstHop, int LastHop) const {
  for (size_t Index = 0; Index != Events.size(); ++Index) {
    const FaultEvent &E = Events[Index];
    if (E.Kind != FaultKind::PayloadCorruption || !E.activeAt(Cycle) ||
        E.Probability <= 0.0)
      continue;
    if (E.Hop != -1 && (E.Hop < FirstHop || E.Hop >= LastHop))
      continue;
    double Roll = hashToUnit(Seed ^ (Index * 0x9E3779B97F4A7C15ULL),
                             static_cast<uint64_t>(Channel),
                             static_cast<uint64_t>(Seq), Nonce);
    if (Roll < E.Probability)
      return true;
  }
  return false;
}

bool FaultPlan::deviceFailedAt(int Device, int64_t Cycle) const {
  for (const FaultEvent &E : Events)
    if (E.Kind == FaultKind::DeviceFailure && E.Device == Device &&
        Cycle >= E.StartCycle)
      return true;
  return false;
}

int FaultPlan::firstFailedDevice(int64_t Cycle) const {
  int First = -1;
  for (const FaultEvent &E : Events)
    if (E.Kind == FaultKind::DeviceFailure && Cycle >= E.StartCycle &&
        (First == -1 || E.Device < First))
      First = E.Device;
  return First;
}

int64_t FaultPlan::earliestDeviceFailure() const {
  int64_t Earliest = std::numeric_limits<int64_t>::max();
  for (const FaultEvent &E : Events)
    if (E.Kind == FaultKind::DeviceFailure)
      Earliest = std::min(Earliest, E.StartCycle);
  return Earliest;
}

//===----------------------------------------------------------------------===//
// Plan serialization
//===----------------------------------------------------------------------===//

json::Value FaultPlan::toJson() const {
  json::Object Root;
  Root.set("seed", json::Value(static_cast<double>(Seed)));
  std::vector<json::Value> Array;
  for (const FaultEvent &E : Events) {
    json::Object Obj;
    Obj.set("kind", json::Value(faultKindName(E.Kind)));
    Obj.set("start", json::Value(E.StartCycle));
    if (E.Kind != FaultKind::DeviceFailure &&
        E.EndCycle != std::numeric_limits<int64_t>::max())
      Obj.set("end", json::Value(E.EndCycle));
    switch (E.Kind) {
    case FaultKind::MemoryBrownout:
      Obj.set("device", json::Value(E.Device));
      Obj.set("factor", json::Value(E.Factor));
      break;
    case FaultKind::DeviceFailure:
      Obj.set("device", json::Value(E.Device));
      break;
    case FaultKind::LinkDegrade:
      Obj.set("hop", json::Value(E.Hop));
      Obj.set("factor", json::Value(E.Factor));
      break;
    case FaultKind::LinkOutage:
      Obj.set("hop", json::Value(E.Hop));
      break;
    case FaultKind::PayloadCorruption:
      if (E.Hop != -1)
        Obj.set("hop", json::Value(E.Hop));
      Obj.set("probability", json::Value(E.Probability));
      break;
    }
    Array.push_back(json::Value(std::move(Obj)));
  }
  Root.set("events", json::Value(std::move(Array)));
  return json::Value(std::move(Root));
}

Expected<FaultPlan> FaultPlan::fromJson(const json::Value &V) {
  if (!V.isObject())
    return makeError(ErrorCode::InvalidInput,
                     "fault plan must be a JSON object");
  const json::Object &Root = V.getObject();
  FaultPlan Plan;
  if (const json::Value *Seed = Root.get("seed")) {
    if (!Seed->isNumber())
      return makeError(ErrorCode::InvalidInput,
                       "fault plan 'seed' must be a number");
    Plan.Seed = static_cast<uint64_t>(Seed->getNumber());
  }
  const json::Value *Events = Root.get("events");
  if (Events) {
    if (!Events->isArray())
      return makeError(ErrorCode::InvalidInput,
                       "fault plan 'events' must be an array");
    for (const json::Value &Entry : Events->getArray()) {
      if (!Entry.isObject())
        return makeError(ErrorCode::InvalidInput,
                         "fault event must be an object");
      const json::Object &Obj = Entry.getObject();
      FaultEvent E;
      const json::Value *Kind = Obj.get("kind");
      if (!Kind || !Kind->isString())
        return makeError(ErrorCode::InvalidInput,
                         "fault event needs a string 'kind'");
      std::optional<FaultKind> Parsed = faultKindFromName(Kind->getString());
      if (!Parsed)
        return makeError(ErrorCode::InvalidInput,
                         "unknown fault kind '" + Kind->getString() + "'");
      E.Kind = *Parsed;
      auto ReadInt = [&](const char *Key, int64_t &Out) -> Error {
        if (const json::Value *Val = Obj.get(Key)) {
          if (!Val->isNumber())
            return makeError(ErrorCode::InvalidInput,
                             formatString("fault event '%s' must be a "
                                          "number",
                                          Key));
          Out = Val->getInteger();
        }
        return Error::success();
      };
      auto ReadDouble = [&](const char *Key, double &Out) -> Error {
        if (const json::Value *Val = Obj.get(Key)) {
          if (!Val->isNumber())
            return makeError(ErrorCode::InvalidInput,
                             formatString("fault event '%s' must be a "
                                          "number",
                                          Key));
          Out = Val->getNumber();
        }
        return Error::success();
      };
      int64_t Device = E.Device, Hop = E.Hop;
      if (Error Err = ReadInt("start", E.StartCycle))
        return Err;
      if (Error Err = ReadInt("end", E.EndCycle))
        return Err;
      if (Error Err = ReadInt("device", Device))
        return Err;
      if (Error Err = ReadInt("hop", Hop))
        return Err;
      if (Error Err = ReadDouble("factor", E.Factor))
        return Err;
      if (Error Err = ReadDouble("probability", E.Probability))
        return Err;
      E.Device = static_cast<int>(Device);
      E.Hop = static_cast<int>(Hop);
      Plan.Events.push_back(E);
    }
  }
  if (Error Err = Plan.validate())
    return Err;
  return Plan;
}

Expected<FaultPlan> FaultPlan::fromJsonText(std::string_view Text) {
  Expected<json::Value> Parsed = json::parse(Text);
  if (!Parsed)
    return Parsed.takeError().addContext("fault plan");
  return fromJson(*Parsed);
}

//===----------------------------------------------------------------------===//
// Failure reports
//===----------------------------------------------------------------------===//

namespace {

std::optional<StallCause> stallCauseFromName(std::string_view Name) {
  for (int Cause = 0; Cause != NumStallCauses; ++Cause)
    if (Name == stallCauseName(static_cast<StallCause>(Cause)))
      return static_cast<StallCause>(Cause);
  return std::nullopt;
}

} // namespace

std::string FailureReport::render() const {
  std::string Out;
  switch (Code) {
  case ErrorCode::Deadlock:
    Out = formatString("deadlock detected at cycle %lld",
                       static_cast<long long>(Cycle));
    break;
  case ErrorCode::Starvation:
    Out = formatString("progress watchdog timeout (livelock/starvation) "
                       "at cycle %lld",
                       static_cast<long long>(Cycle));
    break;
  case ErrorCode::CycleLimit:
    Out = formatString("simulation exceeded the cycle limit (%lld cycles)",
                       static_cast<long long>(Cycle));
    break;
  case ErrorCode::DeviceLost:
    Out = formatString("device %d lost at cycle %lld", FailedDevice,
                       static_cast<long long>(Cycle));
    break;
  case ErrorCode::LinkFailure:
    Out = formatString("remote stream '%s' exhausted its retransmit "
                       "budget at cycle %lld",
                       FailedChannel.c_str(),
                       static_cast<long long>(Cycle));
    break;
  case ErrorCode::DataCorruption:
    Out = formatString("payload corruption detected on '%s' at cycle "
                       "%lld (reliable transport disabled)",
                       FailedChannel.c_str(),
                       static_cast<long long>(Cycle));
    break;
  default:
    Out = formatString("simulation failed (%s) at cycle %lld",
                       errorCodeName(Code), static_cast<long long>(Cycle));
    break;
  }
  if (!Component.empty())
    Out += formatString("; blocked on %s (%s)", Component.c_str(),
                        stallCauseName(DominantCause));
  if (!Components.empty())
    Out += "; stuck components:";
  Out += "\n";
  for (const FailureComponent &C : Components)
    Out += formatString(
        "  %-6s %-20s device %d, %lld/%lld vectors, stalled %lld cycles "
        "(%s)\n",
        C.Kind.c_str(), C.Name.c_str(), C.Device,
        static_cast<long long>(C.Progress),
        static_cast<long long>(C.Total),
        static_cast<long long>(C.StallCycles), stallCauseName(C.Cause));
  for (const FailureChannel &C : Channels)
    Out += formatString("    channel %-28s %lld/%lld vectors queued%s\n",
                        C.Name.c_str(),
                        static_cast<long long>(C.Occupancy),
                        static_cast<long long>(C.Capacity),
                        C.Full ? "  [FULL]" : "");
  return Out;
}

std::string FailureReport::toJson() const {
  std::string Out;
  json::JsonWriter W(Out);
  W.beginObject();
  W.attribute("code", errorCodeName(Code));
  W.attribute("cycle", Cycle);
  W.attribute("component", Component);
  W.attribute("dominant_cause", stallCauseName(DominantCause));
  W.attribute("failed_device", FailedDevice);
  W.attribute("failed_channel", FailedChannel);
  W.key("components");
  W.beginArray();
  for (const FailureComponent &C : Components) {
    W.beginObject();
    W.attribute("name", C.Name);
    W.attribute("kind", C.Kind);
    W.attribute("device", C.Device);
    W.attribute("cause", stallCauseName(C.Cause));
    W.attribute("stall_cycles", C.StallCycles);
    W.attribute("progress", C.Progress);
    W.attribute("total", C.Total);
    W.endObject();
  }
  W.endArray();
  W.key("channels");
  W.beginArray();
  for (const FailureChannel &C : Channels) {
    W.beginObject();
    W.attribute("name", C.Name);
    W.attribute("occupancy", C.Occupancy);
    W.attribute("capacity", C.Capacity);
    W.attribute("full", C.Full);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  assert(W.complete() && "unbalanced failure report document");
  return Out;
}

Expected<FailureReport> FailureReport::fromJson(const json::Value &V) {
  if (!V.isObject())
    return makeError(ErrorCode::InvalidInput,
                     "failure report must be a JSON object");
  const json::Object &Root = V.getObject();
  FailureReport Report;

  auto GetString = [&](const json::Object &Obj, const char *Key,
                       std::string &Out) -> Error {
    if (const json::Value *Val = Obj.get(Key)) {
      if (!Val->isString())
        return makeError(ErrorCode::InvalidInput,
                         formatString("failure report '%s' must be a "
                                      "string",
                                      Key));
      Out = Val->getString();
    }
    return Error::success();
  };
  auto GetInt = [&](const json::Object &Obj, const char *Key,
                    int64_t &Out) -> Error {
    if (const json::Value *Val = Obj.get(Key)) {
      if (!Val->isNumber())
        return makeError(ErrorCode::InvalidInput,
                         formatString("failure report '%s' must be a "
                                      "number",
                                      Key));
      Out = Val->getInteger();
    }
    return Error::success();
  };

  std::string CodeName, CauseName;
  if (Error Err = GetString(Root, "code", CodeName))
    return Err;
  if (std::optional<ErrorCode> Code = errorCodeFromName(CodeName))
    Report.Code = *Code;
  else
    return makeError(ErrorCode::InvalidInput,
                     "unknown error code '" + CodeName + "'");
  if (Error Err = GetInt(Root, "cycle", Report.Cycle))
    return Err;
  if (Error Err = GetString(Root, "component", Report.Component))
    return Err;
  if (Error Err = GetString(Root, "dominant_cause", CauseName))
    return Err;
  if (std::optional<StallCause> Cause = stallCauseFromName(CauseName))
    Report.DominantCause = *Cause;
  int64_t FailedDevice = -1;
  if (Error Err = GetInt(Root, "failed_device", FailedDevice))
    return Err;
  Report.FailedDevice = static_cast<int>(FailedDevice);
  if (Error Err = GetString(Root, "failed_channel", Report.FailedChannel))
    return Err;

  if (const json::Value *Components = Root.get("components")) {
    if (!Components->isArray())
      return makeError(ErrorCode::InvalidInput,
                       "failure report 'components' must be an array");
    for (const json::Value &Entry : Components->getArray()) {
      if (!Entry.isObject())
        return makeError(ErrorCode::InvalidInput,
                         "failure component must be an object");
      const json::Object &Obj = Entry.getObject();
      FailureComponent C;
      int64_t Device = 0;
      std::string Name;
      if (Error Err = GetString(Obj, "name", C.Name))
        return Err;
      if (Error Err = GetString(Obj, "kind", C.Kind))
        return Err;
      if (Error Err = GetInt(Obj, "device", Device))
        return Err;
      C.Device = static_cast<int>(Device);
      if (Error Err = GetString(Obj, "cause", Name))
        return Err;
      if (std::optional<StallCause> Cause = stallCauseFromName(Name))
        C.Cause = *Cause;
      if (Error Err = GetInt(Obj, "stall_cycles", C.StallCycles))
        return Err;
      if (Error Err = GetInt(Obj, "progress", C.Progress))
        return Err;
      if (Error Err = GetInt(Obj, "total", C.Total))
        return Err;
      Report.Components.push_back(std::move(C));
    }
  }
  if (const json::Value *Channels = Root.get("channels")) {
    if (!Channels->isArray())
      return makeError(ErrorCode::InvalidInput,
                       "failure report 'channels' must be an array");
    for (const json::Value &Entry : Channels->getArray()) {
      if (!Entry.isObject())
        return makeError(ErrorCode::InvalidInput,
                         "failure channel must be an object");
      const json::Object &Obj = Entry.getObject();
      FailureChannel C;
      if (Error Err = GetString(Obj, "name", C.Name))
        return Err;
      if (Error Err = GetInt(Obj, "occupancy", C.Occupancy))
        return Err;
      if (Error Err = GetInt(Obj, "capacity", C.Capacity))
        return Err;
      if (const json::Value *Full = Obj.get("full"))
        C.Full = Full->isBoolean() && Full->getBoolean();
      Report.Channels.push_back(std::move(C));
    }
  }
  return Report;
}

Expected<FailureReport> FailureReport::fromJsonText(std::string_view Text) {
  Expected<json::Value> Parsed = json::parse(Text);
  if (!Parsed)
    return Parsed.takeError().addContext("failure report");
  return fromJson(*Parsed);
}
