//===- sim/Checkpoint.h - Crash-safe machine snapshots ------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checkpoint/restart subsystem: versioned, CRC-guarded binary
/// snapshots of the complete simulator state, written crash-consistently
/// (write-to-temp + fsync + atomic rename) at epoch boundaries so a run
/// killed at cycle 10M does not restart at cycle 0.
///
/// A snapshot captures everything the step functions read or write:
/// channel/ring-buffer contents, in-flight remote vectors and the
/// Go-Back-N reliable-stream windows (sequence numbers, retransmit
/// timers, backoff state, the corruption-PRNG nonce), per-unit pipeline
/// registers and stall counters, per-writer committed output, carry-over
/// bandwidth budgets, and the engine counters — everything needed for the
/// resumed run to be *cycle- and bit-exact* with the uninterrupted one.
///
/// Two restore modes share one format (Machine::run picks automatically
/// by comparing signatures):
///
///  - **Exact**: the snapshot's placement signature matches the machine.
///    State is restored verbatim and the run continues from the snapshot
///    cycle with identical outputs, SimStats, and trace tail.
///  - **Rehydrate**: only the placement-independent topology matches
///    (same program, different device mapping — the device-loss recovery
///    path). Unit/channel/writer state transplants by index, reliable
///    windows are flattened into their delivery FIFOs, and the new
///    reader endpoints take per-channel delivery cursors so no vector is
///    duplicated or lost; the run replays only the tail.
///
/// The file layer is deliberately independent of Machine so tools and
/// tests can inspect/corrupt snapshots without building a simulator.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SIM_CHECKPOINT_H
#define STENCILFLOW_SIM_CHECKPOINT_H

#include "support/Error.h"

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace stencilflow {
namespace sim {

//===----------------------------------------------------------------------===//
// Binary encoding
//===----------------------------------------------------------------------===//

/// Little-endian append-only byte sink for snapshot payloads.
class ByteWriter {
public:
  void u8(uint8_t Value) { Bytes.push_back(Value); }
  void u32(uint32_t Value) { raw(&Value, sizeof(Value)); }
  void u64(uint64_t Value) { raw(&Value, sizeof(Value)); }
  void i64(int64_t Value) { raw(&Value, sizeof(Value)); }
  void f64(double Value) { raw(&Value, sizeof(Value)); }
  void f64span(const double *Data, size_t Count) {
    u64(Count);
    raw(Data, Count * sizeof(double));
  }
  void str(std::string_view Text) {
    u64(Text.size());
    raw(Text.data(), Text.size());
  }
  void blob(const std::vector<uint8_t> &Data) {
    u64(Data.size());
    raw(Data.data(), Data.size());
  }

  const std::vector<uint8_t> &bytes() const { return Bytes; }
  std::vector<uint8_t> take() { return std::move(Bytes); }

private:
  void raw(const void *Data, size_t Size) {
    const uint8_t *Src = static_cast<const uint8_t *>(Data);
    Bytes.insert(Bytes.end(), Src, Src + Size);
  }
  std::vector<uint8_t> Bytes;
};

/// Bounds-checked reader over an encoded payload. All accessors return a
/// zero value once a read runs past the end; callers check \c failed()
/// after a decode section instead of after every field.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit ByteReader(const std::vector<uint8_t> &Bytes)
      : Data(Bytes.data()), Size(Bytes.size()) {}

  uint8_t u8() {
    uint8_t Value = 0;
    raw(&Value, sizeof(Value));
    return Value;
  }
  uint32_t u32() {
    uint32_t Value = 0;
    raw(&Value, sizeof(Value));
    return Value;
  }
  uint64_t u64() {
    uint64_t Value = 0;
    raw(&Value, sizeof(Value));
    return Value;
  }
  int64_t i64() {
    int64_t Value = 0;
    raw(&Value, sizeof(Value));
    return Value;
  }
  double f64() {
    double Value = 0.0;
    raw(&Value, sizeof(Value));
    return Value;
  }
  std::vector<double> f64span() {
    uint64_t Count = u64();
    if (Count > remaining() / sizeof(double)) {
      Fail = true;
      return {};
    }
    std::vector<double> Values(static_cast<size_t>(Count));
    raw(Values.data(), Values.size() * sizeof(double));
    return Values;
  }
  std::string str() {
    uint64_t Count = u64();
    if (Count > remaining()) {
      Fail = true;
      return {};
    }
    std::string Text(reinterpret_cast<const char *>(Data + Pos),
                     static_cast<size_t>(Count));
    Pos += static_cast<size_t>(Count);
    return Text;
  }
  std::vector<uint8_t> blob() {
    uint64_t Count = u64();
    if (Count > remaining()) {
      Fail = true;
      return {};
    }
    std::vector<uint8_t> Data(this->Data + Pos,
                              this->Data + Pos + static_cast<size_t>(Count));
    Pos += static_cast<size_t>(Count);
    return Data;
  }

  bool failed() const { return Fail; }
  size_t remaining() const { return Size - Pos; }
  bool exhausted() const { return Pos == Size; }

private:
  void raw(void *Dest, size_t Count) {
    if (Count > remaining()) {
      Fail = true;
      std::memset(Dest, 0, Count);
      return;
    }
    std::memcpy(Dest, Data + Pos, Count);
    Pos += Count;
  }
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Fail = false;
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib convention) over a byte span.
uint32_t crc32(const void *Data, size_t Size);

/// FNV-1a hash of a byte span (the signature/identity hash).
uint64_t fnv1a(const void *Data, size_t Size,
               uint64_t Seed = 1469598103934665603ull);

/// Placement-independent hash of the program's input field data (names,
/// sizes, raw bytes). A snapshot records it so a resumed run fails with
/// SnapshotIncompatible instead of silently diverging when fed different
/// inputs — reader endpoints re-read the original arrays from the resume
/// cursor onward.
uint64_t
hashInputFields(const std::map<std::string, std::vector<double>> &Inputs);

//===----------------------------------------------------------------------===//
// Snapshot container and file format
//===----------------------------------------------------------------------===//

/// Bumped whenever the encoded state layout changes; readers reject skewed
/// files with ErrorCode::SnapshotInvalid rather than misparse them.
constexpr uint32_t SnapshotFormatVersion = 1;

/// One decoded snapshot: the resume point, the compatibility signatures,
/// and the opaque machine-state payload (encoded/decoded by
/// Machine via Checkpoint.cpp).
struct MachineSnapshot {
  /// Cycles [0, Cycle) completed; the resumed run steps cycle Cycle first.
  int64_t Cycle = 0;
  /// Hash of topology + placement + trajectory-relevant config + fault
  /// plan. Matching it enables the bit-exact verbatim restore.
  uint64_t ExactSignature = 0;
  /// Placement-independent topology hash (units, channels, lanes, stream
  /// length). Matching it (when ExactSignature does not) enables the
  /// rehydrate restore used by device-loss recovery.
  uint64_t TopologySignature = 0;
  /// Hash of the input field data; resuming requires the original inputs
  /// (reader endpoints re-read them from the resume cursor onward).
  uint64_t InputsHash = 0;
  /// The encoded component state.
  std::vector<uint8_t> State;
};

/// Writes \p Snapshot to \p Path crash-consistently: the bytes go to a
/// temporary file in the same directory, are fsync'd, and atomically
/// renamed over \p Path, so a crash at any instant leaves either the old
/// file or the new one — never a torn snapshot.
Error writeSnapshotFile(const std::string &Path,
                        const MachineSnapshot &Snapshot);

/// Reads and validates a snapshot file. Magic/version/length/CRC failures
/// return ErrorCode::SnapshotInvalid with a message naming the defect.
Expected<MachineSnapshot> readSnapshotFile(const std::string &Path);

/// The canonical file name for a snapshot at \p Cycle ("ckpt-<cycle>.sfck",
/// zero-padded so lexical and numeric order agree).
std::string snapshotFileName(int64_t Cycle);

/// Scans \p Dir for snapshot files and returns the path of the one with
/// the highest cycle, or an error when none exists. Accepts a direct file
/// path too (returned unchanged), so CLI --resume takes either form.
Expected<std::string> findLatestSnapshot(const std::string &PathOrDir);

/// Deletes the oldest snapshots in \p Dir beyond the \p Keep most recent.
/// Best-effort: unlink failures are ignored (retention is a hygiene
/// bound, not a correctness property).
void pruneSnapshots(const std::string &Dir, int Keep);

} // namespace sim
} // namespace stencilflow

#endif // STENCILFLOW_SIM_CHECKPOINT_H
