//===- sim/Machine.cpp - Spatial hardware simulator ---------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Machine.h"

#include "sim/Checkpoint.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace stencilflow;
using namespace stencilflow::sim;

namespace {

/// Timeline state label for a stalled component ("stall:<cause>").
const char *stallStateName(StallCause Cause) {
  switch (Cause) {
  case StallCause::InputStarved:
    return "stall:input-starved";
  case StallCause::OutputBlocked:
    return "stall:output-blocked";
  case StallCause::MemoryDenied:
    return "stall:memory-denied";
  case StallCause::NetworkDenied:
    return "stall:network-denied";
  case StallCause::PipelineLatency:
    return "stall:pipeline-latency";
  }
  return "stall";
}

} // namespace

const char *sim::terminationReasonName(TerminationReason Reason) {
  switch (Reason) {
  case TerminationReason::Completed:
    return "completed";
  case TerminationReason::CompletedDegraded:
    return "completed-degraded";
  }
  return "completed";
}

std::string SimStats::kernelTierSummary() const {
  // Count tiers in a fixed display order so the summary is stable.
  std::map<std::string, int64_t> Counts;
  for (const auto &[Name, Tier] : UnitKernelTiers)
    ++Counts[Tier];
  std::string Out;
  for (const char *Tier : {"jit", "specialized", "batched", "scalar"}) {
    auto It = Counts.find(Tier);
    if (It == Counts.end())
      continue;
    if (!Out.empty())
      Out += ", ";
    Out += formatString("%s x%lld", Tier,
                        static_cast<long long>(It->second));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Build
//===----------------------------------------------------------------------===//

Expected<Machine> Machine::build(const CompiledProgram &Compiled,
                                 const DataflowAnalysis &Dataflow,
                                 const Partition *Placement,
                                 const SimConfig &Config) {
  const StencilProgram &Program = Compiled.program();
  if (Error Err = Config.validate())
    return Err;
  if (Config.Faults)
    if (Error Err = Config.Faults->validate())
      return Err.addContext("fault plan");
  Machine M;
  M.Config = Config;
  M.Compiled = &Compiled;
  M.Lanes = Program.VectorWidth;
  M.SpaceExtents = Program.IterationSpace.extents();
  M.StreamVectors = Program.IterationSpace.numCells() / M.Lanes;
  M.ExpectedCycles = Dataflow.PipelineLatency + M.StreamVectors;
  M.ElementBytes = dataTypeSize(Program.Nodes.empty()
                                    ? DataType::Float32
                                    : Program.Nodes.front().Type);

  auto deviceOf = [&](const std::string &Node) {
    return Placement ? Placement->deviceOf(Node) : 0;
  };
  M.NumDevices = 1;
  for (const StencilNode &Node : Program.Nodes)
    M.NumDevices = std::max(M.NumDevices, deviceOf(Node.Name) + 1);

  // Unit shells in topological order (the per-cycle step order; within one
  // cycle data propagates along the topological direction, modeling
  // same-cycle channel handoff in hardware).
  std::map<std::string, size_t> UnitIndex;
  for (size_t NodeIndex : Compiled.topologicalOrder()) {
    const StencilNode &Node = Program.Nodes[NodeIndex];
    Unit U;
    U.Name = Node.Name;
    U.NodeIndex = NodeIndex;
    U.Device = deviceOf(Node.Name);
    U.Kernel = &Compiled.kernel(NodeIndex);
    U.InitSteps = Dataflow.Buffers[NodeIndex].InitCycles;
    U.CircuitLatency = Dataflow.Nodes[NodeIndex].CircuitLatency;
    U.StreamVectors = M.StreamVectors;
    UnitIndex[Node.Name] = M.Units.size();
    M.Units.push_back(std::move(U));
  }

  // Channels for streamed edges. The producer side is wired below; here we
  // attach the consumer-side ring buffers and slot plans.
  auto makeChannel = [&](const std::string &Source, const Unit &Consumer,
                         int64_t BufferDepth, int SourceDevice) {
    int64_t Capacity = Config.ClampChannelsToMinimum
                           ? Config.MinChannelDepth
                           : BufferDepth + Config.MinChannelDepth;
    int64_t Latency = 0;
    RemoteLink Link;
    Link.ChannelIndex = M.Channels.size();
    Link.FirstHop = SourceDevice;
    Link.LastHop = Consumer.Device;
    int ReliableIndex = -1;
    if (SourceDevice != Consumer.Device) {
      int Hops = Consumer.Device - SourceDevice;
      Latency = Config.NetworkLatencyCyclesPerHop * Hops;
      Capacity += Config.NetworkExtraChannelDepth;
      // With a fault plan attached, the reliable transport owns the wire
      // latency; the Channel becomes the zero-latency delivery FIFO.
      if (Config.Faults) {
        ReliableStream RS;
        RS.ChannelIndex = Link.ChannelIndex;
        RS.WireLatency = Latency;
        Latency = 0;
        ReliableIndex = static_cast<int>(M.Reliable.size());
        M.Reliable.push_back(std::move(RS));
      }
    }
    M.Channels.push_back(std::make_unique<Channel>(
        Source + "->" + Consumer.Name, Capacity, M.Lanes, Latency));
    M.RemoteLinks.push_back(Link);
    M.ReliableOf.push_back(ReliableIndex);
    return M.Channels.size() - 1;
  };

  for (Unit &U : M.Units) {
    const StencilNode &Node = Program.Nodes[U.NodeIndex];
    const NodeBuffers &Buffers = Dataflow.Buffers[U.NodeIndex];

    // Streams and ROMs per accessed field.
    std::map<std::string, int> StreamIndexOf;
    std::map<std::string, int> RomIndexOf;
    for (const FieldAccesses &FA : Node.Accesses) {
      std::vector<bool> Mask = Program.fieldDimensionMask(FA.Field);
      bool FullRank = std::all_of(Mask.begin(), Mask.end(),
                                  [](bool Spanned) { return Spanned; });
      if (FullRank) {
        const InternalBuffer *Buffer = nullptr;
        for (const InternalBuffer &Candidate : Buffers.Buffers)
          if (Candidate.Field == FA.Field)
            Buffer = &Candidate;
        assert(Buffer && "streamed field missing from buffer analysis");

        const DataflowEdge *Edge = Dataflow.findEdge(FA.Field, Node.Name);
        assert(Edge && "streamed field missing from dataflow edges");
        int SourceDevice = Program.findInput(FA.Field)
                               ? U.Device // Reader lives on our device.
                               : deviceOf(FA.Field);

        FieldStream Stream;
        Stream.Field = FA.Field;
        Stream.ChannelIndex =
            makeChannel(FA.Field, U, Edge->BufferDepth, SourceDevice);
        Stream.DelaySteps = U.InitSteps - Buffer->InitCycles;
        Stream.RingElements = (Buffer->InitCycles + 1) * M.Lanes +
                              std::max<int64_t>(0, -Buffer->MinLinear);
        StreamIndexOf[FA.Field] = static_cast<int>(U.Streams.size());
        U.Streams.push_back(std::move(Stream));
      } else {
        Rom R;
        R.Field = FA.Field;
        Shape FieldShape = Program.fieldShape(FA.Field);
        R.Extents = FieldShape.extents();
        R.Strides.assign(R.Extents.size(), 1);
        for (size_t Dim = R.Extents.size(); Dim-- > 1;)
          R.Strides[Dim - 1] = R.Strides[Dim] * R.Extents[Dim];
        for (size_t Dim = 0; Dim != Mask.size(); ++Dim)
          if (Mask[Dim])
            R.SpannedDims.push_back(Dim);
        RomIndexOf[FA.Field] = static_cast<int>(U.Roms.size());
        U.Roms.push_back(std::move(R));
      }
    }

    // Kernel input slots.
    for (const compute::KernelInput &Input : U.Kernel->inputs()) {
      SlotRef Slot;
      BoundaryCondition Boundary = Node.boundaryFor(Input.Field);
      Slot.Boundary = Boundary.Kind;
      Slot.BoundaryValue = Boundary.Value;

      auto StreamIt = StreamIndexOf.find(Input.Field);
      if (StreamIt != StreamIndexOf.end()) {
        Slot.IsStream = true;
        Slot.SourceIndex = StreamIt->second;
        const InternalBuffer *Buffer = nullptr;
        for (const InternalBuffer &Candidate : Buffers.Buffers)
          if (Candidate.Field == Input.Field)
            Buffer = &Candidate;
        int64_t Linear = Program.IterationSpace.linearize(Input.Off);
        Slot.OffsetFromNewest =
            (Buffer->InitCycles + 1) * M.Lanes - 1 - Linear;
        Slot.CenterFromNewest = (Buffer->InitCycles + 1) * M.Lanes - 1;
        Slot.DimOffsets.assign(Input.Off.begin(), Input.Off.end());
      } else {
        Slot.IsStream = false;
        Slot.SourceIndex = RomIndexOf.at(Input.Field);
        Slot.DimOffsets.assign(Input.Off.begin(), Input.Off.end());
      }
      U.Slots.push_back(std::move(Slot));
    }

    // Compile the kernel for the configured execution tier (the whole
    // tape-pass pipeline runs once here, not per cycle).
    U.Eval = compute::KernelEvaluator::compile(*U.Kernel, Config.KernelExec,
                                               M.Lanes);
  }

  // Producer wiring: for every channel, find who pushes into it.
  // Off-chip inputs get one reader per (device, field); node outputs push
  // from the producing unit.
  std::map<std::pair<int, std::string>, size_t> ReaderOf;
  for (Unit &U : M.Units) {
    for (FieldStream &Stream : U.Streams) {
      if (const Field *Input = Program.findInput(Stream.Field)) {
        auto Key = std::make_pair(U.Device, Stream.Field);
        auto It = ReaderOf.find(Key);
        if (It == ReaderOf.end()) {
          Reader R;
          R.Field = Input->Name;
          R.Device = U.Device;
          R.TotalVectors = M.StreamVectors;
          It = ReaderOf.emplace(Key, M.Readers.size()).first;
          M.Readers.push_back(std::move(R));
        }
        M.Readers[It->second].OutChannels.push_back(Stream.ChannelIndex);
      } else {
        M.Units[UnitIndex.at(Stream.Field)].OutChannels.push_back(
            Stream.ChannelIndex);
      }
    }
  }

  // Writers for program outputs.
  for (const std::string &Output : Program.Outputs) {
    Unit &Producer = M.Units[UnitIndex.at(Output)];
    const StencilNode &Node = *Program.findNode(Output);
    Writer W;
    W.Field = Output;
    W.Device = Producer.Device;
    W.TotalVectors = M.StreamVectors;
    W.Shrink = Node.ShrinkOutput;
    W.Region = computeValidRegion(Program, Node);
    // Writer channels only need transient capacity.
    M.Channels.push_back(std::make_unique<Channel>(
        Output + "->memory", Config.MinChannelDepth + 64, M.Lanes));
    RemoteLink Link;
    Link.ChannelIndex = M.Channels.size() - 1;
    Link.FirstHop = Link.LastHop = Producer.Device;
    M.RemoteLinks.push_back(Link);
    M.ReliableOf.push_back(-1);
    W.ChannelIndex = M.Channels.size() - 1;
    Producer.OutChannels.push_back(W.ChannelIndex);
    M.Writers.push_back(std::move(W));
  }

  // Per-cycle bookkeeping.
  M.MemoryBudget.assign(static_cast<size_t>(M.NumDevices), 0.0);
  M.WriterBudget.assign(static_cast<size_t>(M.NumDevices), 0.0);
  M.MemoryBytesMoved.assign(static_cast<size_t>(M.NumDevices), 0.0);
  M.HopBudget.assign(static_cast<size_t>(std::max(0, M.NumDevices - 1)),
                     0.0);
  M.EarliestDeviceFail = Config.Faults
                             ? Config.Faults->earliestDeviceFailure()
                             : std::numeric_limits<int64_t>::max();
  return M;
}

//===----------------------------------------------------------------------===//
// Per-cycle component steps
//===----------------------------------------------------------------------===//

bool Machine::grantMemory(int Device, double DataBytes, bool IsWriter,
                          ExecCtx &Ctx) {
  // A memory brownout overrides unconstrained memory: the device falls
  // back to the budgeted path, whose refill is scaled by the brownout
  // factor.
  bool BrownedOut =
      Config.Faults && Brownout[static_cast<size_t>(Device)];
  if (Config.UnconstrainedMemory && !BrownedOut) {
    MemoryBytesMoved[static_cast<size_t>(Device)] += DataBytes;
    return true;
  }
  double Cost = DataBytes + Config.TransactionOverheadBytes;
  // Writers draw from their reserved pool plus whatever the readers (who
  // ran earlier this cycle) left unspent.
  double &Pool = IsWriter ? WriterBudget[static_cast<size_t>(Device)]
                          : MemoryBudget[static_cast<size_t>(Device)];
  double Available =
      IsWriter ? Pool + MemoryBudget[static_cast<size_t>(Device)] : Pool;
  if (Available < Cost) {
    Ctx.BandwidthWait = true;
    return false;
  }
  if (IsWriter && Pool < Cost) {
    MemoryBudget[static_cast<size_t>(Device)] -= Cost - Pool;
    Pool = 0.0;
  } else {
    Pool -= Cost;
  }
  MemoryBytesMoved[static_cast<size_t>(Device)] += DataBytes;
  return true;
}

bool Machine::grantNetwork(size_t ChannelIndex, ExecCtx &Ctx) {
  const RemoteLink &Link = RemoteLinks[ChannelIndex];
  if (Link.FirstHop == Link.LastHop)
    return true;
  double Bytes = static_cast<double>(Lanes) *
                 static_cast<double>(ElementBytes);
  for (int Hop = Link.FirstHop; Hop != Link.LastHop; ++Hop)
    if (HopBudget[static_cast<size_t>(Hop)] < Bytes) {
      Ctx.BandwidthWait = true;
      return false;
    }
  for (int Hop = Link.FirstHop; Hop != Link.LastHop; ++Hop)
    HopBudget[static_cast<size_t>(Hop)] -= Bytes;
  Ctx.NetworkBytesMoved +=
      Bytes * static_cast<double>(Link.LastHop - Link.FirstHop);
  return true;
}

//===----------------------------------------------------------------------===//
// Reliable remote streams (Go-Back-N; active only with a fault plan)
//===----------------------------------------------------------------------===//

bool Machine::channelFull(size_t ChannelIndex) const {
  // During a parallel epoch, cross-shard channels answer from the
  // epoch-start snapshot plus this epoch's staged pushes. The snapshot is
  // an upper bound on the serial occupancy (the consumer's in-epoch pops
  // are invisible to the producer), and the epoch length is chosen so the
  // bound never crosses the capacity/window threshold when the serial
  // engine's occupancy would not — see computeEpochLength.
  if (!Stages.empty() && Stages[ChannelIndex].Active) {
    const ChannelStage &St = Stages[ChannelIndex];
    int64_t Staged = static_cast<int64_t>(St.PushCycles.size());
    if (St.OccSnapshot + Staged >= Channels[ChannelIndex]->capacity())
      return true;
    if (ReliableOf[ChannelIndex] >= 0 &&
        St.OutstandingSnapshot + Staged >= Config.SendWindowVectors)
      return true;
    // ResendNext >= 0 never holds here: dirty streams force serial
    // fallback chunks before an epoch starts.
    return false;
  }
  int Rel = ReliableOf[ChannelIndex];
  if (Rel < 0)
    return Channels[ChannelIndex]->full();
  const ReliableStream &RS = Reliable[static_cast<size_t>(Rel)];
  // Backpressure mirrors the plain transport exactly in the fault-free
  // case: outstanding (unacked, i.e. in flight) plus delivered-not-popped
  // equals the plain channel's total occupancy. The send window and the
  // rewind block only engage under faults.
  int64_t Outstanding = RS.NextSeq - RS.SendBase;
  if (Outstanding + Channels[ChannelIndex]->size() >=
      Channels[ChannelIndex]->capacity())
    return true;
  if (Outstanding >= Config.SendWindowVectors)
    return true;
  return RS.ResendNext >= 0; // Rewinding: no fresh vectors until caught up.
}

void Machine::channelPush(size_t ChannelIndex, const double *Vector,
                          int64_t Cycle) {
  int Rel = ReliableOf[ChannelIndex];
  // During a parallel epoch, cross-shard pushes are staged (payload +
  // cycle) and merged into the live channel at the barrier; the
  // corruption flag is computed here because the sender-owned nonce and
  // sequence counters advance push by push.
  if (!Stages.empty() && Stages[ChannelIndex].Active) {
    ChannelStage &St = Stages[ChannelIndex];
    St.PushCycles.push_back(Cycle);
    St.Payloads.insert(St.Payloads.end(), Vector, Vector + Lanes);
    if (Rel >= 0) {
      ReliableStream &RS = Reliable[static_cast<size_t>(Rel)];
      const RemoteLink &Link = RemoteLinks[ChannelIndex];
      St.Corrupt.push_back(Config.Faults->corruptsTransmission(
          Cycle, ChannelIndex, RS.NextSeq, RS.TransmissionNonce++,
          Link.FirstHop, Link.LastHop));
      ++RS.Stats.Transmissions;
      ++RS.NextSeq;
    }
    return;
  }
  if (Rel < 0) {
    Channels[ChannelIndex]->push(Vector, Cycle);
    return;
  }
  ReliableStream &RS = Reliable[static_cast<size_t>(Rel)];
  const RemoteLink &Link = RemoteLinks[ChannelIndex];
  RS.SendBuffer.emplace_back(Vector, Vector + Lanes);
  bool Corrupted = Config.Faults->corruptsTransmission(
      Cycle, ChannelIndex, RS.NextSeq, RS.TransmissionNonce++,
      Link.FirstHop, Link.LastHop);
  RS.Wire.push_back({RS.NextSeq, Cycle + RS.WireLatency, Corrupted});
  ++RS.Stats.Transmissions;
  ++RS.NextSeq;
  RS.PeakOutstanding =
      std::max(RS.PeakOutstanding, RS.NextSeq - RS.SendBase +
                                       Channels[ChannelIndex]->size());
}

Error Machine::linkReceive(int64_t Cycle) {
  for (ReliableStream &RS : Reliable) {
    Channel &Delivery = *Channels[RS.ChannelIndex];
    while (!RS.Wire.empty() && RS.Wire.front().ArriveCycle <= Cycle) {
      ReliableStream::InFlight Arrival = RS.Wire.front();
      RS.Wire.pop_front();
      if (Arrival.Corrupted) {
        ++RS.Stats.CorruptedVectors;
        if (!Config.ReliableStreams)
          return abortRun(ErrorCode::DataCorruption, Cycle,
                          Delivery.name());
        if (Arrival.Seq != RS.ExpectedSeq)
          continue; // Stale pre-rewind transmission: discard silently.
        if (++RS.AttemptsOnExpected > Config.MaxRetransmitAttempts)
          return abortRun(ErrorCode::LinkFailure, Cycle, Delivery.name());
        // NACK: the sender rewinds to the expected vector after an
        // exponential backoff.
        ++RS.Stats.Nacks;
        ++RS.NackStreak;
        RS.BackoffUntil =
            Cycle + (Config.RetransmitBackoffCycles
                     << std::min(RS.NackStreak - 1, 6));
        RS.ResendNext = RS.ExpectedSeq;
        continue;
      }
      if (Arrival.Seq != RS.ExpectedSeq)
        continue; // Duplicate or stale: discard silently.
      // In-order delivery; the instantaneous cumulative ACK releases the
      // sender's window slot.
      Delivery.push(RS.SendBuffer.front().data(), Cycle);
      RS.SendBuffer.pop_front();
      ++RS.ExpectedSeq;
      ++RS.SendBase;
      ++RS.Stats.Delivered;
      RS.AttemptsOnExpected = 0;
      RS.NackStreak = 0;
    }
  }
  return Error::success();
}

void Machine::linkSend(int64_t Cycle) {
  for (ReliableStream &RS : Reliable) {
    if (RS.ResendNext < 0 || Cycle < RS.BackoffUntil)
      continue;
    if (RS.ResendNext >= RS.NextSeq) { // Caught up; resume fresh sends.
      RS.ResendNext = -1;
      continue;
    }
    // Retransmissions pay hop bandwidth like any transmission, from
    // whatever this cycle's emit phase left unspent. linkSend only runs
    // on the serial path (epochs never start with a rewinding stream),
    // so the serial context is the right one.
    if (!grantNetwork(RS.ChannelIndex, SerialCtx))
      continue;
    const RemoteLink &Link = RemoteLinks[RS.ChannelIndex];
    bool Corrupted = Config.Faults->corruptsTransmission(
        Cycle, RS.ChannelIndex, RS.ResendNext, RS.TransmissionNonce++,
        Link.FirstHop, Link.LastHop);
    RS.Wire.push_back({RS.ResendNext, Cycle + RS.WireLatency, Corrupted});
    ++RS.Stats.Transmissions;
    ++RS.Stats.Retransmissions;
    if (++RS.ResendNext == RS.NextSeq)
      RS.ResendNext = -1;
  }
}

bool Machine::stepReader(Reader &R, int64_t Cycle, ExecCtx &Ctx) {
  auto Stalled = [&](StallCause Cause) {
    R.Stalls.add(Cause);
    R.LastCause = Cause;
    if (ActiveTrace)
      ActiveTrace->setState(R.TraceTrack, Cycle, stallStateName(Cause));
    return false;
  };
  if (R.VectorsPushed == R.TotalVectors) {
    if (ActiveTrace)
      ActiveTrace->setState(R.TraceTrack, Cycle, "done");
    return false;
  }
  // After a rehydrating resume, channels that already received vector
  // number VectorsPushed from the pre-recovery placement are skipped
  // (ChannelBase is their delivery cursor) until the cursors even out;
  // on fresh runs and exact resumes every ChannelBase is zero.
  for (size_t I = 0; I != R.OutChannels.size(); ++I)
    if (R.VectorsPushed >= R.ChannelBase[I] &&
        channelFull(R.OutChannels[I]))
      return Stalled(StallCause::OutputBlocked);
  // Charge the arbitration penalty once per requesting endpoint per cycle.
  double DataBytes = static_cast<double>(Lanes) *
                     static_cast<double>(ElementBytes);
  if (!grantMemory(R.Device, DataBytes, /*IsWriter=*/false, Ctx))
    return Stalled(StallCause::MemoryDenied);
  const double *Vector =
      R.Data->data() + static_cast<size_t>(R.VectorsPushed) *
                           static_cast<size_t>(Lanes);
  for (size_t I = 0; I != R.OutChannels.size(); ++I)
    if (R.VectorsPushed >= R.ChannelBase[I])
      channelPush(R.OutChannels[I], Vector, Cycle);
  ++R.VectorsPushed;
  if (ActiveTrace)
    ActiveTrace->setState(R.TraceTrack, Cycle, "active");
  return true;
}

double Machine::readSlot(const Unit &U, const SlotRef &Slot,
                         int Lane) const {
  // Bounds predication against the logical index.
  if (Slot.IsStream) {
    const FieldStream &Stream =
        U.Streams[static_cast<size_t>(Slot.SourceIndex)];
    bool InBounds = true;
    for (size_t Dim = 0, E = SpaceExtents.size(); Dim != E; ++Dim) {
      int64_t Component = U.CenterIndex[Dim] + Slot.DimOffsets[Dim] +
                          (Dim + 1 == E ? Lane : 0);
      if (Component < 0 || Component >= SpaceExtents[Dim]) {
        InBounds = false;
        break;
      }
    }
    int64_t Position;
    if (InBounds)
      Position = Stream.WrittenElements - 1 - (Slot.OffsetFromNewest - Lane);
    else if (Slot.Boundary == BoundaryKind::Constant)
      return Slot.BoundaryValue;
    else // Copy: the center value of this lane.
      Position = Stream.WrittenElements - 1 - (Slot.CenterFromNewest - Lane);
    assert(Position >= 0 && Position < Stream.WrittenElements &&
           "tap ahead of the stream");
    return Stream.Ring[static_cast<size_t>(Position % Stream.RingElements)];
  }

  const Rom &R = U.Roms[static_cast<size_t>(Slot.SourceIndex)];
  int64_t Linear = 0;
  bool InBounds = true;
  for (size_t Dim = 0, E = R.SpannedDims.size(); Dim != E; ++Dim) {
    size_t SpaceDim = R.SpannedDims[Dim];
    int64_t Component = U.CenterIndex[SpaceDim] + Slot.DimOffsets[Dim] +
                        (SpaceDim + 1 == SpaceExtents.size() ? Lane : 0);
    if (Component < 0 || Component >= R.Extents[Dim]) {
      InBounds = false;
      break;
    }
    Linear += Component * R.Strides[Dim];
  }
  if (!InBounds) {
    if (Slot.Boundary == BoundaryKind::Constant)
      return Slot.BoundaryValue;
    Linear = 0;
    for (size_t Dim = 0, E = R.SpannedDims.size(); Dim != E; ++Dim) {
      size_t SpaceDim = R.SpannedDims[Dim];
      int64_t Component = U.CenterIndex[SpaceDim] +
                          (SpaceDim + 1 == SpaceExtents.size() ? Lane : 0);
      Linear += Component * R.Strides[Dim];
    }
  }
  return R.Data[static_cast<size_t>(Linear)];
}

void Machine::gatherSlot(const Unit &U, const SlotRef &Slot,
                         double *Dst) const {
  if (Slot.IsStream) {
    // Interior fast path: when every lane of this tap is in bounds, the
    // per-lane ring positions are consecutive (Pos0 + Lane), so the
    // vector is one modulo plus at most one wrap (RingElements >= W).
    size_t E = SpaceExtents.size();
    bool Interior = true;
    for (size_t Dim = 0; Dim + 1 < E; ++Dim) {
      int64_t Component = U.CenterIndex[Dim] + Slot.DimOffsets[Dim];
      if (Component < 0 || Component >= SpaceExtents[Dim]) {
        Interior = false;
        break;
      }
    }
    if (Interior) {
      // The innermost dimension sweeps Lane = 0 .. Lanes-1; clip that
      // range against the innermost extent. Fully interior vectors copy
      // every lane in two ring spans; boundary columns keep the span copy
      // for their in-bounds lanes [LaneLo, LaneHi) — whose ring positions
      // are still consecutive (Pos0 + Lane) — and take the predicated
      // per-lane read only where the tap actually leaves the domain.
      int64_t Innermost = U.CenterIndex[E - 1] + Slot.DimOffsets[E - 1];
      int64_t LaneLo = std::max<int64_t>(0, -Innermost);
      int64_t LaneHi =
          std::min<int64_t>(Lanes, SpaceExtents[E - 1] - Innermost);
      if (LaneLo < LaneHi) {
        const FieldStream &Stream =
            U.Streams[static_cast<size_t>(Slot.SourceIndex)];
        int64_t Pos0 = Stream.WrittenElements - 1 - Slot.OffsetFromNewest;
        assert(Pos0 + LaneLo >= 0 &&
               Pos0 + LaneHi <= Stream.WrittenElements &&
               "tap ahead of the stream");
        for (int64_t Lane = 0; Lane != LaneLo; ++Lane)
          Dst[Lane] = readSlot(U, Slot, static_cast<int>(Lane));
        int64_t Count = LaneHi - LaneLo;
        int64_t Base = (Pos0 + LaneLo) % Stream.RingElements;
        int64_t Span = std::min<int64_t>(Count, Stream.RingElements - Base);
        const double *Ring = Stream.Ring.data();
        std::copy(Ring + Base, Ring + Base + Span, Dst + LaneLo);
        std::copy(Ring, Ring + (Count - Span), Dst + LaneLo + Span);
        for (int64_t Lane = LaneHi; Lane != Lanes; ++Lane)
          Dst[Lane] = readSlot(U, Slot, static_cast<int>(Lane));
        return;
      }
    }
  }
  // Boundary vectors and ROM slots: the per-lane reference read.
  for (int Lane = 0; Lane != Lanes; ++Lane)
    Dst[Lane] = readSlot(U, Slot, Lane);
}

bool Machine::stepUnit(Unit &U, int64_t Cycle, ExecCtx &Ctx) {
  bool MadeProgress = false;
  int64_t TotalSteps = U.StreamVectors + U.InitSteps;
  // First blocking condition observed this cycle; the emit phase below
  // overrides it — a matured result that cannot leave blocks the unit
  // regardless of its inputs. If nothing external blocked, a stalled
  // cycle is attributed to the unit's own circuit latency.
  StallCause Cause = StallCause::PipelineLatency;

  // Consume phase: pop scheduled streams, advance rings, issue an output
  // into the pipeline once past the initialization phase. Requires pipe
  // room (structural hazard: the pipeline holds at most CircuitLatency+1
  // in-flight results).
  if (U.Step < TotalSteps &&
      static_cast<int64_t>(U.PipeReady.size()) <= U.CircuitLatency) {
    bool InputsReady = true;
    for (FieldStream &Stream : U.Streams) {
      bool Pops = U.Step >= Stream.DelaySteps &&
                  U.Step < Stream.DelaySteps + U.StreamVectors;
      if (Pops && !Channels[Stream.ChannelIndex]->readable(Cycle)) {
        InputsReady = false;
        break;
      }
    }
    if (!InputsReady)
      Cause = StallCause::InputStarved;
    if (InputsReady) {
      for (FieldStream &Stream : U.Streams) {
        bool Pops = U.Step >= Stream.DelaySteps &&
                    U.Step < Stream.DelaySteps + U.StreamVectors;
        bool Pads = U.Step >= Stream.DelaySteps + U.StreamVectors;
        if (!Pops && !Pads)
          continue; // Not yet scheduled.
        // Write W elements into the ring (popped data or drain padding).
        // The ring size is not necessarily a multiple of W, so the vector
        // may wrap — but at most once (RingElements >= W), so one modulo
        // and two straight-line spans cover every case.
        int64_t Base = Stream.WrittenElements % Stream.RingElements;
        int64_t First = std::min<int64_t>(Lanes, Stream.RingElements - Base);
        double *Ring = Stream.Ring.data();
        if (Pops) {
          Channels[Stream.ChannelIndex]->pop(U.PopStaging.data(), Cycle);
          // During a parallel epoch, cross-shard pops are logged so the
          // barrier can replay the exact occupancy trajectory.
          if (!Stages.empty() && Stages[Stream.ChannelIndex].Active)
            Stages[Stream.ChannelIndex].PopCycles.push_back(Cycle);
          const double *Src = U.PopStaging.data();
          std::copy(Src, Src + First, Ring + Base);
          std::copy(Src + First, Src + Lanes, Ring);
        } else {
          std::fill(Ring + Base, Ring + Base + First, 0.0);
          std::fill(Ring, Ring + (Lanes - First), 0.0);
        }
        Stream.WrittenElements += Lanes;
      }
      // Issue an output once the initialization phase has passed.
      if (U.Step >= U.InitSteps) {
        if (U.Eval.tier() == compute::KernelEngine::Scalar) {
          // Reference path: per-lane gather and scalar interpretation.
          for (int Lane = 0; Lane != Lanes; ++Lane) {
            for (size_t Slot = 0, E = U.Slots.size(); Slot != E; ++Slot)
              U.SlotValues[Slot] = readSlot(U, U.Slots[Slot], Lane);
            U.OutVector[static_cast<size_t>(Lane)] =
                U.Kernel->evaluate(U.SlotValues.data(), U.Scratch.data());
          }
        } else {
          // Batched path: gather each slot's whole vector, then run the
          // compiled tape once for all lanes.
          for (size_t Slot = 0, E = U.Slots.size(); Slot != E; ++Slot)
            gatherSlot(U, U.Slots[Slot],
                       U.SlotSoA.data() + Slot * static_cast<size_t>(Lanes));
          U.Eval.evaluate(U.SlotSoA.data(), U.OutVector.data(),
                          U.EvalScratch.data());
        }
        for (int Lane = 0; Lane != Lanes; ++Lane)
          U.PipeValues.push_back(U.OutVector[static_cast<size_t>(Lane)]);
        U.PipeReady.push_back(Cycle + U.CircuitLatency);
        ++U.Issued;
        // Advance the output center index by one vector.
        for (size_t Dim = SpaceExtents.size(); Dim-- > 0;) {
          U.CenterIndex[Dim] += Dim + 1 == SpaceExtents.size() ? Lanes : 1;
          if (U.CenterIndex[Dim] < SpaceExtents[Dim] || Dim == 0)
            break;
          U.CenterIndex[Dim] = 0;
        }
      }
      ++U.Step;
      MadeProgress = true;
    }
  }

  // Emit phase: push the oldest pipeline result to every consumer once it
  // has traversed the circuit and all output channels can accept it.
  if (!U.PipeReady.empty() && U.PipeReady.front() <= Cycle) {
    bool CanPush = true;
    for (size_t ChannelIndex : U.OutChannels)
      if (channelFull(ChannelIndex))
        CanPush = false;
    if (!CanPush)
      Cause = StallCause::OutputBlocked;
    // Network feasibility for all remote pushes together. HopNeeded is
    // hoisted scratch on the context: no per-cycle allocation.
    if (CanPush) {
      double Bytes = static_cast<double>(Lanes) *
                     static_cast<double>(ElementBytes);
      std::fill(Ctx.HopNeeded.begin(), Ctx.HopNeeded.end(), 0.0);
      for (size_t ChannelIndex : U.OutChannels) {
        const RemoteLink &Link = RemoteLinks[ChannelIndex];
        for (int Hop = Link.FirstHop; Hop != Link.LastHop; ++Hop)
          Ctx.HopNeeded[static_cast<size_t>(Hop)] += Bytes;
      }
      for (size_t Hop = 0; Hop != Ctx.HopNeeded.size(); ++Hop)
        if (Ctx.HopNeeded[Hop] > 0 && HopBudget[Hop] < Ctx.HopNeeded[Hop]) {
          CanPush = false;
          Ctx.BandwidthWait = true;
          Cause = StallCause::NetworkDenied;
        }
      if (CanPush) {
        // Touch only hops this unit actually crosses: under the parallel
        // engine every other HopBudget slot belongs to a different shard,
        // and even a -= 0.0 write there is a cross-thread race.
        for (size_t Hop = 0; Hop != Ctx.HopNeeded.size(); ++Hop) {
          if (Ctx.HopNeeded[Hop] == 0.0)
            continue;
          HopBudget[Hop] -= Ctx.HopNeeded[Hop];
          Ctx.NetworkBytesMoved += Ctx.HopNeeded[Hop];
        }
      }
    }
    if (CanPush) {
      for (int Lane = 0; Lane != Lanes; ++Lane) {
        U.OutVector[static_cast<size_t>(Lane)] = U.PipeValues.front();
        U.PipeValues.pop_front();
      }
      U.PipeReady.pop_front();
      for (size_t ChannelIndex : U.OutChannels)
        channelPush(ChannelIndex, U.OutVector.data(), Cycle);
      ++U.Emitted;
      MadeProgress = true;
    }
  }

  bool Finished = U.Emitted == U.StreamVectors;
  if (!MadeProgress && !Finished) {
    ++U.StallCycles;
    U.Stalls.add(Cause);
    U.LastCause = Cause;
  }
  if (ActiveTrace) {
    const char *State;
    if (Finished)
      State = "done";
    else if (!MadeProgress)
      State = stallStateName(Cause);
    else if (U.Step <= U.InitSteps)
      State = "init";
    else if (U.Issued == U.StreamVectors)
      State = "drain";
    else
      State = "active";
    ActiveTrace->setState(U.TraceTrack, Cycle, State);
  }
  return MadeProgress;
}

bool Machine::stepWriter(Writer &W, int64_t Cycle, ExecCtx &Ctx) {
  auto Stalled = [&](StallCause Cause) {
    W.Stalls.add(Cause);
    W.LastCause = Cause;
    if (ActiveTrace)
      ActiveTrace->setState(W.TraceTrack, Cycle, stallStateName(Cause));
    return false;
  };
  if (W.VectorsWritten == W.TotalVectors) {
    if (ActiveTrace)
      ActiveTrace->setState(W.TraceTrack, Cycle, "done");
    return false;
  }
  Channel &In = *Channels[W.ChannelIndex];
  if (!In.readable(Cycle))
    return Stalled(StallCause::InputStarved);
  double DataBytes = static_cast<double>(Lanes) *
                     static_cast<double>(ElementBytes);
  if (!grantMemory(W.Device, DataBytes, /*IsWriter=*/true, Ctx))
    return Stalled(StallCause::MemoryDenied);
  In.pop(W.InVector.data(), Cycle);
  int64_t BaseCell = W.VectorsWritten * Lanes;
  for (int Lane = 0; Lane != Lanes; ++Lane) {
    bool Valid = true;
    if (W.Shrink) {
      // The lane's multi-dim index: W.Index tracks lane 0.
      std::vector<int64_t> LaneIndex = W.Index;
      LaneIndex.back() += Lane;
      Valid = W.Region.contains(LaneIndex);
    }
    if (Valid)
      W.Data[static_cast<size_t>(BaseCell + Lane)] =
          W.InVector[static_cast<size_t>(Lane)];
  }
  ++W.VectorsWritten;
  for (size_t Dim = SpaceExtents.size(); Dim-- > 0;) {
    W.Index[Dim] += Dim + 1 == SpaceExtents.size() ? Lanes : 1;
    if (W.Index[Dim] < SpaceExtents[Dim] || Dim == 0)
      break;
    W.Index[Dim] = 0;
  }
  if (ActiveTrace)
    ActiveTrace->setState(W.TraceTrack, Cycle, "active");
  return true;
}

//===----------------------------------------------------------------------===//
// Run
//===----------------------------------------------------------------------===//

void Machine::buildFailureReport(ErrorCode Code, int64_t Cycle) {
  LastFailure = FailureReport();
  LastFailure.Code = Code;
  LastFailure.Cycle = Cycle;
  if (Config.Faults)
    LastFailure.FailedDevice = Config.Faults->firstFailedDevice(Cycle);

  // Channels adjacent to any stuck component, each reported once.
  std::vector<char> ChannelSeen(Channels.size(), 0);
  auto AddChannel = [&](size_t ChannelIndex) {
    if (ChannelSeen[ChannelIndex])
      return;
    ChannelSeen[ChannelIndex] = 1;
    const Channel &C = *Channels[ChannelIndex];
    FailureChannel FC;
    FC.Name = C.name();
    FC.Occupancy = C.visibleSize(Cycle);
    FC.Capacity = C.capacity();
    FC.Full = channelFull(ChannelIndex);
    LastFailure.Channels.push_back(std::move(FC));
  };

  for (const Reader &R : Readers) {
    if (R.VectorsPushed == R.TotalVectors)
      continue;
    FailureComponent FC;
    FC.Name = R.Field;
    FC.Kind = "reader";
    FC.Device = R.Device;
    FC.Cause = R.Stalls.dominant();
    FC.StallCycles = R.Stalls.total();
    FC.Progress = R.VectorsPushed;
    FC.Total = R.TotalVectors;
    LastFailure.Components.push_back(std::move(FC));
    for (size_t ChannelIndex : R.OutChannels)
      AddChannel(ChannelIndex);
  }
  for (const Unit &U : Units) {
    if (U.Emitted == U.StreamVectors)
      continue;
    FailureComponent FC;
    FC.Name = U.Name;
    FC.Kind = "unit";
    FC.Device = U.Device;
    FC.Cause = U.Stalls.dominant();
    FC.StallCycles = U.StallCycles;
    FC.Progress = U.Emitted;
    FC.Total = U.StreamVectors;
    LastFailure.Components.push_back(std::move(FC));
    for (const FieldStream &Stream : U.Streams)
      AddChannel(Stream.ChannelIndex);
    for (size_t ChannelIndex : U.OutChannels)
      AddChannel(ChannelIndex);
  }
  for (const Writer &W : Writers) {
    if (W.VectorsWritten == W.TotalVectors)
      continue;
    FailureComponent FC;
    FC.Name = W.Field;
    FC.Kind = "writer";
    FC.Device = W.Device;
    FC.Cause = W.Stalls.dominant();
    FC.StallCycles = W.Stalls.total();
    FC.Progress = W.VectorsWritten;
    FC.Total = W.TotalVectors;
    LastFailure.Components.push_back(std::move(FC));
    AddChannel(W.ChannelIndex);
  }

  // The headline component: the most-stalled stuck one.
  const FailureComponent *Worst = nullptr;
  for (const FailureComponent &FC : LastFailure.Components)
    if (!Worst || FC.StallCycles > Worst->StallCycles)
      Worst = &FC;
  if (Worst) {
    LastFailure.Component = Worst->Name;
    LastFailure.DominantCause = Worst->Cause;
  }
}

SimFailure Machine::abortRun(ErrorCode Code, int64_t Cycle,
                             const std::string &FailedChannel) {
  buildFailureReport(Code, Cycle);
  LastFailure.FailedChannel = FailedChannel;
  if (ActiveTrace)
    ActiveTrace->finish(Cycle);
  return SimFailure(makeError(Code, LastFailure.render()), LastFailure);
}

Error Machine::prepareRun(
    const std::map<std::string, std::vector<double>> &Inputs) {
  const StencilProgram &Program = Compiled->program();

  // Bind inputs and reset runtime state.
  for (Reader &R : Readers) {
    auto It = Inputs.find(R.Field);
    if (It == Inputs.end())
      return makeError("missing data for input field '" + R.Field + "'");
    if (static_cast<int64_t>(It->second.size()) !=
        Program.IterationSpace.numCells())
      return makeError("input field '" + R.Field +
                       "' has the wrong number of cells");
    R.Data = &It->second;
    R.VectorsPushed = 0;
    R.ChannelBase.assign(R.OutChannels.size(), 0);
    R.Stalls = StallBreakdown();
    R.LastCause = StallCause::OutputBlocked;
    R.LastProgress = 0;
  }
  for (Unit &U : Units) {
    for (FieldStream &Stream : U.Streams) {
      Stream.Ring.assign(static_cast<size_t>(Stream.RingElements), 0.0);
      Stream.WrittenElements = 0;
    }
    for (Rom &R : U.Roms) {
      auto It = Inputs.find(R.Field);
      if (It == Inputs.end())
        return makeError("missing data for input field '" + R.Field + "'");
      Shape FieldShape = Program.fieldShape(R.Field);
      if (static_cast<int64_t>(It->second.size()) != FieldShape.numCells())
        return makeError("input field '" + R.Field +
                         "' has the wrong number of cells");
      R.Data = It->second;
    }
    U.Step = 0;
    U.Issued = 0;
    U.Emitted = 0;
    U.PipeReady.clear();
    U.PipeValues.clear();
    U.CenterIndex.assign(SpaceExtents.size(), 0);
    U.StallCycles = 0;
    U.Stalls = StallBreakdown();
    U.LastCause = StallCause::PipelineLatency;
    U.LastProgress = 0;
    U.Scratch.assign(U.Kernel->instructions().size(), 0.0);
    U.SlotValues.assign(U.Slots.size(), 0.0);
    U.OutVector.assign(static_cast<size_t>(Lanes), 0.0);
    U.PopStaging.assign(static_cast<size_t>(Lanes), 0.0);
    U.SlotSoA.assign(U.Slots.size() * static_cast<size_t>(Lanes), 0.0);
    U.EvalScratch.assign(U.Eval.scratchDoubles(), 0.0);
  }
  for (Writer &W : Writers) {
    W.Data.assign(static_cast<size_t>(Program.IterationSpace.numCells()),
                  0.0);
    W.Index.assign(SpaceExtents.size(), 0);
    W.VectorsWritten = 0;
    W.InVector.assign(static_cast<size_t>(Lanes), 0.0);
    W.Stalls = StallBreakdown();
    W.LastCause = StallCause::InputStarved;
    W.LastProgress = 0;
  }
  std::fill(MemoryBytesMoved.begin(), MemoryBytesMoved.end(), 0.0);
  std::fill(MemoryBudget.begin(), MemoryBudget.end(), 0.0);
  std::fill(WriterBudget.begin(), WriterBudget.end(), 0.0);
  std::fill(HopBudget.begin(), HopBudget.end(), 0.0);

  // Resilience state.
  for (ReliableStream &RS : Reliable) {
    RS.SendBuffer.clear();
    RS.Wire.clear();
    RS.NextSeq = RS.SendBase = RS.ExpectedSeq = 0;
    RS.ResendNext = -1;
    RS.BackoffUntil = 0;
    RS.NackStreak = 0;
    RS.AttemptsOnExpected = 0;
    RS.TransmissionNonce = 0;
    RS.PeakOutstanding = 0;
    RS.Stats = LinkStats();
  }
  DeadDevice.assign(static_cast<size_t>(NumDevices), 0);
  Brownout.assign(static_cast<size_t>(NumDevices), 0);
  LastFailure = FailureReport();

  // Per-cycle scratch (hoisted: the run loop must not allocate).
  ActiveReaders.assign(MemoryBudget.size(), 0);
  ActiveWriters.assign(MemoryBudget.size(), 0);
  SerialCtx.BandwidthWait = false;
  SerialCtx.NetworkBytesMoved = 0.0;
  SerialCtx.HopNeeded.assign(HopBudget.size(), 0.0);

  // Engine bookkeeping.
  EngineNote = simEngineName(SimEngine::Serial);
  EpochCount = 0;
  SerialFallbackCount = 0;
  for (ChannelStage &St : Stages) {
    St.Active = false;
    St.PushCycles.clear();
    St.Payloads.clear();
    St.Corrupt.clear();
    St.PopCycles.clear();
  }
  for (Shard &S : Shards) {
    S.Ctx.BandwidthWait = false;
    S.Ctx.NetworkBytesMoved = 0.0;
    S.Ctx.HopNeeded.assign(HopBudget.size(), 0.0);
    S.AllWritersDoneCycle =
        S.WriterIdx.empty() ? -1 : std::numeric_limits<int64_t>::max();
    S.SkippedCycles = 0;
  }

  // Checkpoint bookkeeping: a fresh run starts at cycle zero; a resume
  // overrides these after restoreSnapshot succeeds.
  ResumeCycle = 0;
  NextCheckpointCycle = Config.CheckpointEveryCycles;
  LastCheckpointWall = std::chrono::steady_clock::now();
  CheckpointsWritten = 0;
  CheckpointFailures = 0;
  ResumedFromCycle = -1;
  TierReassignedUnits = 0;
  RestoredSkippedCycles = 0;

  // Observability: attach the tracer, discarding any previous recording.
  ActiveTrace = Config.Trace;
  if (ActiveTrace) {
    ActiveTrace->clear();
    registerTrace(*ActiveTrace);
  }

  MaxCycles = Config.MaxCycleFactor *
                  (ExpectedCycles +
                   Config.NetworkLatencyCyclesPerHop * NumDevices) +
              Config.MaxCycleSlack;
  return Error::success();
}

void Machine::refillDeviceBudgets(size_t Device, int64_t Cycle, int ActiveR,
                                  int ActiveW) {
  const FaultPlan *Plan = Config.Faults;
  double TransactionBytes = static_cast<double>(Lanes) *
                                static_cast<double>(ElementBytes) +
                            Config.TransactionOverheadBytes;
  double MemoryClamp = Config.PeakMemoryBytesPerCycle + TransactionBytes;
  int Total = ActiveR + ActiveW;
  double WriterShare =
      Total == 0 ? 0.0
                 : static_cast<double>(ActiveW) / static_cast<double>(Total);
  double Refill = Config.PeakMemoryBytesPerCycle;
  // A brownout throttles the refill rate, not the accumulated budget.
  if (Plan && Brownout[Device])
    Refill *= Plan->memoryFactor(static_cast<int>(Device), Cycle);
  WriterBudget[Device] =
      std::min(WriterBudget[Device] + Refill * WriterShare,
               MemoryClamp * WriterShare + TransactionBytes);
  MemoryBudget[Device] =
      std::min(MemoryBudget[Device] + Refill * (1.0 - WriterShare),
               MemoryClamp);
}

void Machine::refillHopBudget(size_t Hop, int64_t Cycle) {
  const FaultPlan *Plan = Config.Faults;
  double HopRate = Config.LinkBytesPerCycle * Config.LinksPerHop;
  double HopClamp = HopRate + static_cast<double>(Lanes) *
                                  static_cast<double>(ElementBytes) *
                                  static_cast<double>(
                                      std::max(1, NumDevices - 1));
  double Rate = HopRate;
  if (Plan)
    Rate *= Plan->linkFactor(static_cast<int>(Hop), Cycle);
  HopBudget[Hop] = std::min(HopBudget[Hop] + Rate, HopClamp);
}

void Machine::applyArbitrationPenalty(size_t Device, int ActiveR,
                                      int ActiveW) {
  MemoryBudget[Device] =
      std::max(0.0, MemoryBudget[Device] -
                        Config.ArbitrationPenaltyBytesPerEndpoint * ActiveR);
  WriterBudget[Device] =
      std::max(0.0, WriterBudget[Device] -
                        Config.ArbitrationPenaltyBytesPerEndpoint * ActiveW);
}

Machine::StepOutcome Machine::stepCycleSerial(int64_t Cycle,
                                              SimFailure &Failure) {
  const FaultPlan *Plan = Config.Faults;
  if (Cycle >= MaxCycles) {
    Failure = abortRun(ErrorCode::CycleLimit, Cycle);
    return StepOutcome::Failed;
  }

  // Refresh the per-device fault state for this cycle.
  if (Plan && !Plan->empty())
    for (int Device = 0; Device != NumDevices; ++Device) {
      Brownout[static_cast<size_t>(Device)] =
          Plan->memoryBrownoutAt(Device, Cycle);
      if (Cycle >= EarliestDeviceFail)
        DeadDevice[static_cast<size_t>(Device)] =
            Plan->deviceFailedAt(Device, Cycle);
    }
  auto IsDead = [&](int Device) {
    return Plan && DeadDevice[static_cast<size_t>(Device)] != 0;
  };

  // Refill per-cycle budgets. Unused budget carries over (bounded by one
  // transaction beyond the per-cycle rate), so rates smaller than a
  // single transaction still make progress every few cycles.
  // Split the refill between reader and writer pools proportionally to
  // the number of active endpoints on each device.
  std::fill(ActiveReaders.begin(), ActiveReaders.end(), 0);
  std::fill(ActiveWriters.begin(), ActiveWriters.end(), 0);
  for (const Reader &R : Readers)
    if (R.VectorsPushed != R.TotalVectors && !IsDead(R.Device))
      ++ActiveReaders[static_cast<size_t>(R.Device)];
  for (const Writer &W : Writers)
    if (W.VectorsWritten != W.TotalVectors && !IsDead(W.Device))
      ++ActiveWriters[static_cast<size_t>(W.Device)];
  for (size_t Device = 0; Device != MemoryBudget.size(); ++Device)
    refillDeviceBudgets(Device, Cycle, ActiveReaders[Device],
                        ActiveWriters[Device]);
  for (size_t Hop = 0; Hop != HopBudget.size(); ++Hop)
    refillHopBudget(Hop, Cycle);
  SerialCtx.BandwidthWait = false;

  // Reliable streams: matured wire transmissions are verified and
  // delivered before any component steps, so the consumer-visible
  // timing is identical to the plain transport's arrival latency.
  if (!Reliable.empty())
    if (Error Err = linkReceive(Cycle)) {
      Failure = SimFailure(std::move(Err), LastFailure);
      return StepOutcome::Failed;
    }

  // Crossbar arbitration pressure: each active endpoint costs a small
  // amount of routing bandwidth (the mild pre-plateau droop of Fig. 16).
  // Pools never go negative: the penalty can only consume this cycle's
  // refill.
  if (!Config.UnconstrainedMemory &&
      Config.ArbitrationPenaltyBytesPerEndpoint > 0.0)
    for (size_t Device = 0; Device != MemoryBudget.size(); ++Device)
      applyArbitrationPenalty(Device, ActiveReaders[Device],
                              ActiveWriters[Device]);

  // Readers and writers are served in a rotating order so bandwidth
  // arbitration is fair when the controller is oversubscribed (a fixed
  // priority would starve the tail endpoints and halve throughput).
  bool Progress = false;
  if (!Readers.empty()) {
    size_t Offset = static_cast<size_t>(Cycle) % Readers.size();
    for (size_t Index = 0; Index != Readers.size(); ++Index) {
      Reader &R = Readers[(Index + Offset) % Readers.size()];
      if (IsDead(R.Device)) {
        if (ActiveTrace)
          ActiveTrace->setState(R.TraceTrack, Cycle, "dead");
        continue;
      }
      if (stepReader(R, Cycle, SerialCtx)) {
        R.LastProgress = Cycle;
        Progress = true;
      }
    }
  }
  for (Unit &U : Units) {
    if (IsDead(U.Device)) {
      if (ActiveTrace)
        ActiveTrace->setState(U.TraceTrack, Cycle, "dead");
      continue;
    }
    if (stepUnit(U, Cycle, SerialCtx)) {
      U.LastProgress = Cycle;
      Progress = true;
    }
  }
  if (!Writers.empty()) {
    size_t Offset = static_cast<size_t>(Cycle) % Writers.size();
    for (size_t Index = 0; Index != Writers.size(); ++Index) {
      Writer &W = Writers[(Index + Offset) % Writers.size()];
      if (IsDead(W.Device)) {
        if (ActiveTrace)
          ActiveTrace->setState(W.TraceTrack, Cycle, "dead");
        continue;
      }
      if (stepWriter(W, Cycle, SerialCtx)) {
        W.LastProgress = Cycle;
        Progress = true;
      }
    }
  }

  // Reliable streams: rewound senders retransmit from leftover hop
  // bandwidth (fresh emissions had priority this cycle).
  if (!Reliable.empty())
    linkSend(Cycle);

  if (ActiveTrace && Cycle % ActiveTrace->sampleStride() == 0)
    sampleTrace(*ActiveTrace, Cycle);

  bool Done = true;
  for (const Writer &W : Writers)
    Done &= W.VectorsWritten == W.TotalVectors;
  if (Done)
    return StepOutcome::Finished;

  if (!Progress) {
    // Time-dependent state (in-flight network vectors, retransmissions,
    // pipeline stages) may still mature; otherwise no component can
    // ever step again — a true deadlock, unless the quiescence was
    // caused by a permanently failed device.
    bool Pending = SerialCtx.BandwidthWait;
    for (const auto &C : Channels)
      Pending |= C->hasPendingArrival(Cycle);
    for (const Unit &U : Units)
      Pending |= !U.PipeReady.empty() && U.PipeReady.front() > Cycle;
    for (const ReliableStream &RS : Reliable)
      Pending |= !RS.Wire.empty() || RS.ResendNext >= 0;
    if (!Pending) {
      ErrorCode Code = Plan && Plan->firstFailedDevice(Cycle) >= 0
                           ? ErrorCode::DeviceLost
                           : ErrorCode::Deadlock;
      Failure = abortRun(Code, Cycle);
      return StepOutcome::Failed;
    }
  }

  // Progress watchdog: a component stuck past the timeout while the
  // system as a whole still moves is livelock/starvation, not deadlock
  // (the global no-progress check above catches true deadlocks the
  // cycle they happen). A permanently failed device is reported as the
  // root cause instead of the starvation it induces downstream.
  if (Config.StallTimeoutCycles > 0 && Cycle != 0 && Cycle % 256 == 0) {
    bool Starved = false;
    for (const Reader &R : Readers)
      Starved |= R.VectorsPushed != R.TotalVectors &&
                 Cycle - R.LastProgress > Config.StallTimeoutCycles;
    for (const Unit &U : Units)
      Starved |= U.Emitted != U.StreamVectors &&
                 Cycle - U.LastProgress > Config.StallTimeoutCycles;
    for (const Writer &W : Writers)
      Starved |= W.VectorsWritten != W.TotalVectors &&
                 Cycle - W.LastProgress > Config.StallTimeoutCycles;
    if (Starved) {
      ErrorCode Code = Plan && Plan->firstFailedDevice(Cycle) >= 0
                           ? ErrorCode::DeviceLost
                           : ErrorCode::Starvation;
      Failure = abortRun(Code, Cycle);
      return StepOutcome::Failed;
    }
  }
  return StepOutcome::Running;
}

Machine::StepOutcome Machine::runSerialLoop(int64_t &FinalCycles,
                                            SimFailure &Failure) {
  for (int64_t Cycle = ResumeCycle;; ++Cycle) {
    StepOutcome Outcome = stepCycleSerial(Cycle, Failure);
    if (Outcome == StepOutcome::Running) {
      // Every serial cycle boundary is globally consistent; the wall
      // clock is only consulted every 1024 cycles to keep the fault-free
      // fast path free of syscalls.
      maybeCheckpoint(Cycle + 1, (Cycle & 1023) == 0);
      continue;
    }
    if (Outcome == StepOutcome::Finished)
      FinalCycles = Cycle + 1;
    return Outcome;
  }
}

SimResult Machine::collectResult(int64_t FinalCycles) {
  if (ActiveTrace)
    ActiveTrace->finish(FinalCycles);

  SimResult Result;
  Result.Stats.Cycles = FinalCycles;
  Result.Stats.MemoryBytesMoved = MemoryBytesMoved;
  Result.Stats.AchievedMemoryBytesPerCycle.resize(MemoryBytesMoved.size());
  for (size_t Device = 0; Device != MemoryBytesMoved.size(); ++Device)
    Result.Stats.AchievedMemoryBytesPerCycle[Device] =
        MemoryBytesMoved[Device] / static_cast<double>(FinalCycles);
  Result.Stats.NetworkBytesMoved = SerialCtx.NetworkBytesMoved;
  Result.Stats.Engine = EngineNote;
  Result.Stats.ParallelEpochs = EpochCount;
  Result.Stats.SerialFallbackCycles = SerialFallbackCount;
  Result.Stats.SkippedCycles = RestoredSkippedCycles;
  Result.Stats.CheckpointsWritten = CheckpointsWritten;
  Result.Stats.ResumedFromCycle = ResumedFromCycle;
  Result.Stats.TierReassignedUnits = TierReassignedUnits;
  Result.Stats.KernelExec = compute::kernelEngineName(Config.KernelExec);
  for (const Unit &U : Units) {
    // Record what actually runs, not what was requested: Specialized can
    // degrade to Batched, Jit to Specialized, and Auto chooses per unit.
    compute::KernelEngine Effective = U.Eval.tier();
    if (Effective == compute::KernelEngine::Specialized)
      ++Result.Stats.SpecializedUnits;
    else if (Effective == compute::KernelEngine::Jit)
      ++Result.Stats.JittedUnits;
    Result.Stats.UnitKernelTiers[U.Name] =
        compute::kernelEngineName(Effective);
  }
  for (const Shard &S : Shards) {
    Result.Stats.NetworkBytesMoved += S.Ctx.NetworkBytesMoved;
    Result.Stats.SkippedCycles += S.SkippedCycles;
  }
  for (const Unit &U : Units) {
    Result.Stats.UnitStallCycles[U.Name] = U.StallCycles;
    Result.Stats.UnitStalls[U.Name] = U.Stalls;
  }
  for (const Reader &R : Readers)
    Result.Stats.ReaderStalls[formatString("%s@%d", R.Field.c_str(),
                                           R.Device)] = R.Stalls;
  for (const Writer &W : Writers)
    Result.Stats.WriterStalls[W.Field] = W.Stalls;
  for (size_t Index = 0; Index != Channels.size(); ++Index) {
    const Channel &C = *Channels[Index];
    Result.Stats.ChannelHighWater[C.name()] = C.highWaterMark();
    // Reliable streams model the wire outside the Channel; their peak
    // counts in-flight vectors the same way the plain transport does.
    Result.Stats.ChannelPeakOccupancy[C.name()] =
        ReliableOf[Index] >= 0
            ? Reliable[static_cast<size_t>(ReliableOf[Index])]
                  .PeakOutstanding
            : C.peakOccupancy();
    Result.Stats.ChannelCapacity[C.name()] = C.capacity();
  }
  for (const ReliableStream &RS : Reliable) {
    Result.Stats.Links[Channels[RS.ChannelIndex]->name()] = RS.Stats;
    if (RS.Stats.Retransmissions > 0 || RS.Stats.CorruptedVectors > 0)
      Result.Termination = TerminationReason::CompletedDegraded;
  }
  for (Writer &W : Writers)
    Result.Outputs[W.Field] = std::move(W.Data);
  return Result;
}

Expected<SimResult, SimFailure>
Machine::run(const std::map<std::string, std::vector<double>> &Inputs,
             const MachineSnapshot *Resume) {
  if (Error Err = prepareRun(Inputs))
    return Err;
  InputsHashOfRun = hashInputFields(Inputs);
  if (Resume) {
    if (Error Err = restoreSnapshot(*Resume, InputsHashOfRun))
      return SimFailure(std::move(Err));
    // Both cadences restart relative to the resume point, so the first
    // snapshot of the resumed run lands on the same boundary the killed
    // run would have used next.
    if (Config.CheckpointEveryCycles > 0)
      NextCheckpointCycle =
          (ResumeCycle / Config.CheckpointEveryCycles + 1) *
          Config.CheckpointEveryCycles;
    LastCheckpointWall = std::chrono::steady_clock::now();
  }
  SimFailure Failure;
  int64_t FinalCycles = 0;
  StepOutcome Outcome;
  if (Config.Engine == SimEngine::Parallel && !mustRunSerial())
    Outcome = runParallelLoop(FinalCycles, Failure);
  else
    Outcome = runSerialLoop(FinalCycles, Failure);
  if (Outcome == StepOutcome::Failed)
    return Failure;
  return collectResult(FinalCycles);
}

//===----------------------------------------------------------------------===//
// Tracing
//===----------------------------------------------------------------------===//

void Machine::registerTrace(Tracer &T) {
  for (Reader &R : Readers)
    R.TraceTrack = T.addTrack("read " + R.Field, R.Device);
  for (Unit &U : Units)
    U.TraceTrack = T.addTrack("unit " + U.Name, U.Device);
  for (Writer &W : Writers)
    W.TraceTrack = T.addTrack("write " + W.Field, W.Device);
  ChannelCounters.clear();
  for (size_t Index = 0; Index != Channels.size(); ++Index)
    ChannelCounters.push_back(
        T.addCounter("fifo " + Channels[Index]->name(),
                     RemoteLinks[Index].LastHop, "vectors"));
  MemoryCounters.clear();
  LastMemBytes.assign(MemoryBytesMoved.size(), 0.0);
  for (size_t Device = 0; Device != MemoryBytesMoved.size(); ++Device)
    MemoryCounters.push_back(
        T.addCounter(formatString("memory device %zu", Device),
                     static_cast<int>(Device), "bytes/cycle"));
}

void Machine::sampleTrace(Tracer &T, int64_t Cycle) {
  for (size_t Index = 0; Index != Channels.size(); ++Index)
    T.sample(ChannelCounters[Index], Cycle,
             static_cast<double>(Channels[Index]->size()));
  double Window = static_cast<double>(T.sampleStride());
  for (size_t Device = 0; Device != MemoryBytesMoved.size(); ++Device) {
    T.sample(MemoryCounters[Device], Cycle,
             (MemoryBytesMoved[Device] - LastMemBytes[Device]) / Window);
    LastMemBytes[Device] = MemoryBytesMoved[Device];
  }
}
