//===- sim/Config.cpp - Simulator configuration validation --------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Config.h"

#include "support/StringUtils.h"

namespace stencilflow {
namespace sim {

const char *simEngineName(SimEngine Engine) {
  switch (Engine) {
  case SimEngine::Serial:
    return "serial";
  case SimEngine::Parallel:
    return "parallel";
  }
  return "unknown";
}

Error SimConfig::validate() const {
  auto Invalid = [](std::string Message) {
    return makeError(ErrorCode::InvalidInput,
                     "sim config: " + std::move(Message));
  };

  if (PeakMemoryBytesPerCycle <= 0.0)
    return Invalid("PeakMemoryBytesPerCycle must be positive");
  if (TransactionOverheadBytes < 0.0)
    return Invalid("TransactionOverheadBytes must be non-negative");
  if (ArbitrationPenaltyBytesPerEndpoint < 0.0)
    return Invalid("ArbitrationPenaltyBytesPerEndpoint must be non-negative");
  if (LinkBytesPerCycle <= 0.0)
    return Invalid("LinkBytesPerCycle must be positive");
  if (LinksPerHop < 1)
    return Invalid("LinksPerHop must be at least 1");
  if (NetworkLatencyCyclesPerHop < 0)
    return Invalid("NetworkLatencyCyclesPerHop must be non-negative");
  if (NetworkExtraChannelDepth < 0)
    return Invalid("NetworkExtraChannelDepth must be non-negative");
  if (MinChannelDepth < 1)
    return Invalid("MinChannelDepth must be at least 1 (a zero-capacity "
                   "channel can never transfer a vector)");
  if (StallTimeoutCycles < 0)
    return Invalid("StallTimeoutCycles must be non-negative (0 disables "
                   "the watchdog)");
  if (MaxRetransmitAttempts < 1)
    return Invalid("MaxRetransmitAttempts must be at least 1");
  if (RetransmitBackoffCycles < 0)
    return Invalid("RetransmitBackoffCycles must be non-negative");
  if (SendWindowVectors < 1)
    return Invalid("SendWindowVectors must be at least 1");
  if (CheckpointEveryCycles < 0)
    return Invalid("CheckpointEveryCycles must be non-negative (0 disables "
                   "the cycle cadence)");
  if (CheckpointEverySeconds < 0.0)
    return Invalid("CheckpointEverySeconds must be non-negative (0 disables "
                   "the wall-clock cadence)");
  if ((CheckpointEveryCycles > 0 || CheckpointEverySeconds > 0.0) &&
      CheckpointDir.empty())
    return Invalid("a checkpoint cadence requires CheckpointDir");
  if (CheckpointKeep < 1)
    return Invalid("CheckpointKeep must be at least 1");
  if (CheckpointCrashAfter < 0)
    return Invalid("CheckpointCrashAfter must be non-negative (0 disables "
                   "the crash hook)");
  if (MaxCycleFactor < 1)
    return Invalid("MaxCycleFactor must be at least 1");
  if (MaxCycleSlack < 0)
    return Invalid("MaxCycleSlack must be non-negative");
  if (Threads < 0)
    return Invalid("Threads must be non-negative (0 means one per core)");

  if (Engine == SimEngine::Parallel) {
    // The parallel engine slices time into epochs no longer than the
    // cross-device lookahead; both bounds below would otherwise force a
    // degenerate one-cycle epoch on every barrier, i.e. serial stepping
    // with extra synchronization cost. Reject at construction.
    if (Trace != nullptr)
      return Invalid(
          "tracing requires the serial engine (the tracer records one "
          "global timeline and is not thread-safe); detach the trace or "
          "select SimEngine::Serial");
    if (NetworkLatencyCyclesPerHop < 1)
      return Invalid("the parallel engine needs NetworkLatencyCyclesPerHop "
                     ">= 1: the hop latency is the lookahead that makes "
                     "cross-device epochs exact");
    int64_t RemoteDepth = MinChannelDepth + NetworkExtraChannelDepth;
    if (ClampChannelsToMinimum && RemoteDepth < NetworkLatencyCyclesPerHop)
      return Invalid(formatString(
          "the parallel engine needs remote channel capacity (clamped "
          "MinChannelDepth %lld + NetworkExtraChannelDepth %lld = %lld) of "
          "at least one hop latency (%lld cycles): epochs are bounded by "
          "channel slack and would degenerate",
          static_cast<long long>(MinChannelDepth),
          static_cast<long long>(NetworkExtraChannelDepth),
          static_cast<long long>(RemoteDepth),
          static_cast<long long>(NetworkLatencyCyclesPerHop)));
    if (SendWindowVectors < NetworkLatencyCyclesPerHop)
      return Invalid(formatString(
          "the parallel engine needs SendWindowVectors (%lld) of at least "
          "one hop latency (%lld cycles): the reliable-stream send window "
          "bounds the epoch length",
          static_cast<long long>(SendWindowVectors),
          static_cast<long long>(NetworkLatencyCyclesPerHop)));
  }

  return Error::success();
}

SimConfig::Builder &SimConfig::Builder::unconstrainedMemory(bool Value) {
  C.UnconstrainedMemory = Value;
  return *this;
}
SimConfig::Builder &SimConfig::Builder::peakMemoryBytesPerCycle(double Value) {
  C.PeakMemoryBytesPerCycle = Value;
  return *this;
}
SimConfig::Builder &SimConfig::Builder::transactionOverheadBytes(double Value) {
  C.TransactionOverheadBytes = Value;
  return *this;
}
SimConfig::Builder &
SimConfig::Builder::arbitrationPenaltyBytesPerEndpoint(double Value) {
  C.ArbitrationPenaltyBytesPerEndpoint = Value;
  return *this;
}
SimConfig::Builder &SimConfig::Builder::linkBytesPerCycle(double Value) {
  C.LinkBytesPerCycle = Value;
  return *this;
}
SimConfig::Builder &SimConfig::Builder::linksPerHop(int Value) {
  C.LinksPerHop = Value;
  return *this;
}
SimConfig::Builder &
SimConfig::Builder::networkLatencyCyclesPerHop(int64_t Value) {
  C.NetworkLatencyCyclesPerHop = Value;
  return *this;
}
SimConfig::Builder &
SimConfig::Builder::networkExtraChannelDepth(int64_t Value) {
  C.NetworkExtraChannelDepth = Value;
  return *this;
}
SimConfig::Builder &SimConfig::Builder::minChannelDepth(int64_t Value) {
  C.MinChannelDepth = Value;
  return *this;
}
SimConfig::Builder &SimConfig::Builder::clampChannelsToMinimum(bool Value) {
  C.ClampChannelsToMinimum = Value;
  return *this;
}
SimConfig::Builder &SimConfig::Builder::trace(Tracer *Value) {
  C.Trace = Value;
  return *this;
}
SimConfig::Builder &SimConfig::Builder::faults(const FaultPlan *Value) {
  C.Faults = Value;
  return *this;
}
SimConfig::Builder &SimConfig::Builder::reliableStreams(bool Value) {
  C.ReliableStreams = Value;
  return *this;
}
SimConfig::Builder &SimConfig::Builder::stallTimeoutCycles(int64_t Value) {
  C.StallTimeoutCycles = Value;
  return *this;
}
SimConfig::Builder &SimConfig::Builder::maxRetransmitAttempts(int Value) {
  C.MaxRetransmitAttempts = Value;
  return *this;
}
SimConfig::Builder &SimConfig::Builder::retransmitBackoffCycles(int64_t Value) {
  C.RetransmitBackoffCycles = Value;
  return *this;
}
SimConfig::Builder &SimConfig::Builder::sendWindowVectors(int64_t Value) {
  C.SendWindowVectors = Value;
  return *this;
}
SimConfig::Builder &SimConfig::Builder::checkpointDir(std::string Value) {
  C.CheckpointDir = std::move(Value);
  return *this;
}
SimConfig::Builder &SimConfig::Builder::checkpointEveryCycles(int64_t Value) {
  C.CheckpointEveryCycles = Value;
  return *this;
}
SimConfig::Builder &
SimConfig::Builder::checkpointEverySeconds(double Value) {
  C.CheckpointEverySeconds = Value;
  return *this;
}
SimConfig::Builder &SimConfig::Builder::checkpointKeep(int Value) {
  C.CheckpointKeep = Value;
  return *this;
}
SimConfig::Builder &SimConfig::Builder::checkpointCrashAfter(int Value) {
  C.CheckpointCrashAfter = Value;
  return *this;
}
SimConfig::Builder &SimConfig::Builder::maxCycleFactor(int64_t Value) {
  C.MaxCycleFactor = Value;
  return *this;
}
SimConfig::Builder &SimConfig::Builder::maxCycleSlack(int64_t Value) {
  C.MaxCycleSlack = Value;
  return *this;
}
SimConfig::Builder &SimConfig::Builder::engine(SimEngine Value) {
  C.Engine = Value;
  return *this;
}
SimConfig::Builder &SimConfig::Builder::threads(int Value) {
  C.Threads = Value;
  return *this;
}
SimConfig::Builder &
SimConfig::Builder::kernelEngine(compute::KernelEngine Value) {
  C.KernelExec = Value;
  return *this;
}

Expected<SimConfig> SimConfig::Builder::build() const {
  if (Error Err = C.validate())
    return Err;
  return C;
}

} // namespace sim
} // namespace stencilflow
