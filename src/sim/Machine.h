//===- sim/Machine.h - Spatial hardware simulator -----------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cycle-level simulator of the spatial architectures StencilFlow emits,
/// standing in for the paper's FPGA testbed (see DESIGN.md). It implements
/// the dataflow semantics that the analyses reason about:
///
///  - every stencil node becomes a fully pipelined stencil unit (II = 1)
///    with shift-register internal buffers, boundary predication, and
///    initialization/draining phases (Fig. 12);
///  - edges become bounded FIFO channels whose capacities carry the
///    delay-buffer depths of Sec. IV-B — undersized channels reproduce the
///    Fig. 4 deadlock, which the simulator detects and reports;
///  - off-chip inputs are read once per device by prefetching reader
///    endpoints and fanned out to all consumers; writers commit outputs,
///    both arbitrated by a banked memory controller with per-transaction
///    overhead (the Fig. 16 bandwidth substrate);
///  - multi-device partitions communicate via SMI-style remote streams
///    with per-hop latency and link-bandwidth arbitration (Sec. VI-B).
///
/// In the unconstrained-memory configuration the simulator completes in
/// exactly C = L + N cycles (Eq. 1), which the tests assert.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SIM_MACHINE_H
#define STENCILFLOW_SIM_MACHINE_H

#include "core/CompiledProgram.h"
#include "core/DataflowAnalysis.h"
#include "core/Partitioner.h"
#include "core/ValidRegion.h"
#include "sim/Channel.h"
#include "sim/Config.h"
#include "sim/Fault.h"
#include "sim/Trace.h"
#include "support/Error.h"

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace stencilflow {
namespace sim {

struct MachineSnapshot;

/// Reliable-transport counters for one remote stream (all zero unless a
/// fault plan is attached; see SimConfig::Faults).
struct LinkStats {
  /// Wire transmissions, including retransmissions.
  int64_t Transmissions = 0;
  /// Go-Back-N retransmissions (Transmissions - Retransmissions ==
  /// Delivered on a completed run: every vector is delivered exactly
  /// once).
  int64_t Retransmissions = 0;
  /// Corrupted arrivals discarded by the receiver's checksum.
  int64_t CorruptedVectors = 0;
  /// NACKs the receiver sent (corrupted arrivals of the expected
  /// sequence number only; stale out-of-order arrivals are discarded
  /// silently, so Nacks <= CorruptedVectors).
  int64_t Nacks = 0;
  /// Vectors delivered in order to the consumer.
  int64_t Delivered = 0;
};

/// Execution statistics of one simulation.
struct SimStats {
  /// Total cycles until the last output vector was committed.
  int64_t Cycles = 0;

  /// Per-device bytes moved to/from off-chip memory.
  std::vector<double> MemoryBytesMoved;

  /// Per-device average achieved memory bandwidth in bytes/cycle.
  std::vector<double> AchievedMemoryBytesPerCycle;

  /// Total bytes moved across the network.
  double NetworkBytesMoved = 0.0;

  /// Cycles each stencil unit spent stalled (inputs missing or outputs
  /// blocked).
  std::map<std::string, int64_t> UnitStallCycles;

  /// Per-cause attribution of each unit's stall cycles (sim/Trace.h).
  /// For every unit, UnitStalls[name].total() == UnitStallCycles[name].
  std::map<std::string, StallBreakdown> UnitStalls;

  /// Per-cause stall attribution of the memory reader endpoints, keyed
  /// "field@device". Readers stall when downstream FIFOs are full
  /// (output-blocked) or the memory controller denies bandwidth
  /// (memory-denied).
  std::map<std::string, StallBreakdown> ReaderStalls;

  /// Per-cause stall attribution of the memory writer endpoints, keyed by
  /// output field. Writers stall waiting for produced data
  /// (input-starved — this includes the pipeline's initialization phase)
  /// or on memory bandwidth (memory-denied).
  std::map<std::string, StallBreakdown> WriterStalls;

  /// Highest observed *visible* occupancy per channel (vectors), keyed by
  /// the channel name "source->consumer"; in-flight remote vectors are
  /// excluded. Together with the analysis' per-edge BufferDepth this
  /// empirically validates the delay-buffer sizing: the critical edges
  /// fill to (at least close to) their computed depth, and no channel
  /// ever needs more.
  std::map<std::string, int64_t> ChannelHighWater;

  /// Highest total occupancy per channel including in-flight vectors —
  /// what the physical FIFO allocation must cover.
  std::map<std::string, int64_t> ChannelPeakOccupancy;

  /// Configured capacity per channel (vectors), for occupancy ratios in
  /// the metrics export.
  std::map<std::string, int64_t> ChannelCapacity;

  /// Reliable-transport counters per remote stream, keyed by channel
  /// name. Present (with zero counters) for every inter-device stream
  /// when a fault plan is attached; empty otherwise.
  std::map<std::string, LinkStats> Links;

  /// The engine that actually stepped the machine ("serial" or
  /// "parallel"), with a parenthesized reason when the parallel engine
  /// fell back to serial stepping for the whole run (e.g. multi-hop
  /// remote streams).
  std::string Engine = "serial";

  /// Parallel-engine introspection (zero under the serial engine):
  /// epoch barriers executed, cycles stepped serially between epochs to
  /// preserve exactness (dirty retransmission state, exhausted channel
  /// slack), and cycles fast-forwarded by the quiescence skip.
  int64_t ParallelEpochs = 0;
  int64_t SerialFallbackCycles = 0;
  int64_t SkippedCycles = 0;

  /// The *requested* kernel execution tier ("scalar", "batched",
  /// "specialized", "jit", "auto") and how many stencil units actually ran
  /// a matched weighted-sum specialization or a jitted tape. Requested and
  /// effective tiers can differ per unit: the Specialized tier falls back
  /// to the batched tape when no pattern matches, the Jit tier falls back
  /// to Specialized when no host compiler is available, and Auto picks a
  /// tier per unit by design.
  std::string KernelExec = "scalar";
  int64_t SpecializedUnits = 0;
  int64_t JittedUnits = 0;

  /// Effective tier per stencil unit (unit name -> tier name) — what
  /// KernelEvaluator::tier() actually reports after any fallback, so
  /// tuner decisions and bench numbers are attributable.
  std::map<std::string, std::string> UnitKernelTiers;

  /// Compact "tier xN" histogram of UnitKernelTiers, e.g.
  /// "jit x3, specialized x1" (empty when there are no units).
  std::string kernelTierSummary() const;

  /// Checkpoint/restart (sim/Checkpoint.h): snapshots persisted during
  /// this run, the cycle the run resumed from (-1 when it started fresh),
  /// and how many stencil units ended up on a different effective kernel
  /// tier than the snapshotting run recorded (tier assignment is
  /// re-derived on restore, so a resumed run on a machine without a host
  /// compiler transparently drops from jit to specialized).
  int64_t CheckpointsWritten = 0;
  int64_t ResumedFromCycle = -1;
  int64_t TierReassignedUnits = 0;
};

/// How a returned simulation terminated. Failed runs return a typed
/// \c SimFailure instead (carrying the structured \c FailureReport), so a
/// \c SimResult either completed cleanly or completed while the reliable
/// transport absorbed injected faults.
enum class TerminationReason : uint8_t {
  /// Ran to completion; no faults were absorbed.
  Completed,
  /// Ran to completion, but the reliable transport detected corrupted
  /// vectors and recovered via retransmission.
  CompletedDegraded,
};

/// Stable name, e.g. "completed-degraded".
const char *terminationReasonName(TerminationReason Reason);

/// Results of one simulation: statistics plus the program outputs.
struct SimResult {
  SimStats Stats;
  std::map<std::string, std::vector<double>> Outputs;
  TerminationReason Termination = TerminationReason::Completed;
};

/// A built simulator instance. Build once, run with concrete inputs.
class Machine {
public:
  /// Assembles the machine from the analyzed program. \p Placement is
  /// optional; without it everything runs on a single device.
  static Expected<Machine> build(const CompiledProgram &Compiled,
                                 const DataflowAnalysis &Dataflow,
                                 const Partition *Placement = nullptr,
                                 const SimConfig &Config = {});

  /// Runs the machine to completion (or deadlock / cycle-limit abort).
  /// \p Inputs maps every program input field to its data. On failure the
  /// returned \c SimFailure carries both the classified error and the
  /// structured \c FailureReport, so no separate accessor call is needed.
  ///
  /// When \p Resume is non-null the machine state is restored from the
  /// snapshot before stepping and the run continues from the snapshot
  /// cycle: bit- and cycle-exact with the uninterrupted run when the
  /// snapshot's exact signature matches, or rehydrated onto the current
  /// placement (device-loss recovery) when only the topology matches.
  /// Incompatible or undecodable snapshots fail with
  /// ErrorCode::SnapshotIncompatible / SnapshotInvalid.
  Expected<SimResult, SimFailure>
  run(const std::map<std::string, std::vector<double>> &Inputs,
      const MachineSnapshot *Resume = nullptr);

  /// The runtime model's expected cycle count C = L + N (Eq. 1), excluding
  /// network latency.
  int64_t expectedCycles() const { return ExpectedCycles; }

  /// Number of devices in the machine.
  int numDevices() const { return NumDevices; }

private:
  //===--------------------------------------------------------------------===//
  // Component state
  //===--------------------------------------------------------------------===//

  /// One streamed input of a stencil unit: channel + shift-register ring.
  struct FieldStream {
    std::string Field;
    size_t ChannelIndex = 0;
    /// Ring capacity in elements: (D_f + 1) * W + lookbehind.
    int64_t RingElements = 0;
    /// Steps to wait before the first pop: node init minus field init.
    int64_t DelaySteps = 0;
    /// Runtime state.
    std::vector<double> Ring;
    int64_t WrittenElements = 0;
  };

  /// A preloaded lower-dimensional input (on-chip ROM).
  struct Rom {
    std::string Field;
    std::vector<int64_t> Extents;
    std::vector<int64_t> Strides;
    std::vector<size_t> SpannedDims;
    std::vector<double> Data; // Filled at run().
  };

  /// How one kernel input slot is materialized each cycle.
  struct SlotRef {
    bool IsStream = true;
    int SourceIndex = 0; ///< Index into Streams or Roms.
    /// Stream slots: distance from the newest ring element for lane 0.
    int64_t OffsetFromNewest = 0;
    int64_t CenterFromNewest = 0;
    /// Per-program-dimension logical offsets (bounds predication). For ROM
    /// slots only the spanned dimensions are used, in field order.
    std::vector<int64_t> DimOffsets;
    BoundaryKind Boundary = BoundaryKind::Constant;
    double BoundaryValue = 0.0;
  };

  /// One stencil unit.
  struct Unit {
    std::string Name;
    size_t NodeIndex = 0;
    int Device = 0;
    const compute::Kernel *Kernel = nullptr;
    std::vector<FieldStream> Streams;
    std::vector<Rom> Roms;
    std::vector<SlotRef> Slots;
    int64_t InitSteps = 0;       ///< D: node initialization in vectors.
    int64_t CircuitLatency = 0;  ///< Pipeline depth in cycles.
    int64_t StreamVectors = 0;   ///< N_v: real vectors per stream.
    std::vector<size_t> OutChannels;
    /// Runtime state.
    int64_t Step = 0;    ///< Consume steps completed (0 .. N_v + D).
    int64_t Issued = 0;  ///< Outputs entered into the pipe.
    int64_t Emitted = 0; ///< Outputs pushed to consumers.
    std::deque<int64_t> PipeReady;  ///< Ready cycle per in-flight output.
    std::deque<double> PipeValues;  ///< W values per in-flight output.
    std::vector<int64_t> CenterIndex; ///< Multi-dim index of next output.
    int64_t StallCycles = 0;
    StallBreakdown Stalls; ///< Per-cause split of StallCycles.
    StallCause LastCause = StallCause::PipelineLatency; ///< Most recent stall.
    int64_t LastProgress = 0; ///< Last cycle the unit made progress.
    int TraceTrack = -1;   ///< Timeline track when tracing.
    std::vector<double> Scratch;    ///< Kernel evaluation scratch.
    std::vector<double> SlotValues; ///< Kernel input staging.
    std::vector<double> OutVector;  ///< Output staging.
    std::vector<double> PopStaging; ///< Channel pop staging.
    /// Lane-batched kernel evaluator (compute/Engine.h), compiled at
    /// build() for the configured tier. Immutable after build, so shards
    /// can share it; the staging/scratch buffers below are per-unit and
    /// each unit belongs to exactly one shard.
    compute::KernelEvaluator Eval;
    std::vector<double> SlotSoA;     ///< Gathered inputs [slot*W + lane].
    std::vector<double> EvalScratch; ///< Batched register file scratch.
  };

  /// A memory reader endpoint: streams one input field on one device.
  struct Reader {
    std::string Field;
    int Device = 0;
    std::vector<size_t> OutChannels;
    int64_t TotalVectors = 0;
    /// Runtime state.
    const std::vector<double> *Data = nullptr;
    int64_t VectorsPushed = 0;
    /// Per-channel delivery cursor for snapshot rehydration: OutChannels[i]
    /// already received the first ChannelBase[i] vectors (pushed by a
    /// reader of the pre-recovery placement), so pushes are skipped for
    /// that channel until VectorsPushed catches up. All zero on fresh runs
    /// and exact resumes.
    std::vector<int64_t> ChannelBase;
    StallBreakdown Stalls;
    StallCause LastCause = StallCause::OutputBlocked; ///< Most recent stall.
    int64_t LastProgress = 0;
    int TraceTrack = -1;
  };

  /// A memory writer endpoint: commits one program output.
  struct Writer {
    std::string Field;
    int Device = 0;
    size_t ChannelIndex = 0;
    int64_t TotalVectors = 0;
    bool Shrink = false;
    ValidRegion Region;
    /// Runtime state.
    std::vector<double> Data;
    std::vector<int64_t> Index;
    int64_t VectorsWritten = 0;
    std::vector<double> InVector;
    StallBreakdown Stalls;
    StallCause LastCause = StallCause::InputStarved; ///< Most recent stall.
    int64_t LastProgress = 0;
    int TraceTrack = -1;
  };

  /// Network bandwidth tracking for one remote channel.
  struct RemoteLink {
    size_t ChannelIndex = 0;
    int FirstHop = 0; ///< Crosses hops [FirstHop, LastHop).
    int LastHop = 0;
  };

  /// Go-Back-N reliable transport state for one remote channel, active
  /// only when a fault plan is attached. The Channel object becomes the
  /// receiver-side delivery FIFO (arrival latency zero); the wire — with
  /// the hop latency — is modeled here, so corrupted transmissions can be
  /// detected by the receiver's checksum and retransmitted from the
  /// sender's window. Control-plane feedback (cumulative ACKs and NACKs)
  /// is instantaneous, a fair simplification for a cycle simulator: the
  /// data plane still pays full per-hop latency and bandwidth. With no
  /// corruption events firing, the protocol is cycle- and bit-exact with
  /// the plain transport.
  struct ReliableStream {
    size_t ChannelIndex = 0;
    int64_t WireLatency = 0;

    /// Sender: payloads of the unacknowledged window [SendBase, NextSeq).
    std::deque<std::vector<double>> SendBuffer;
    int64_t NextSeq = 0;     ///< Next fresh sequence number.
    int64_t SendBase = 0;    ///< Lowest unacknowledged sequence number.
    int64_t ResendNext = -1; ///< Next seq to retransmit; -1 = normal mode.
    int64_t BackoffUntil = 0;
    int NackStreak = 0;       ///< Consecutive NACKs (exponential backoff).
    uint64_t TransmissionNonce = 0; ///< Keys the corruption PRNG.

    /// One transmission in flight on the wire (payload lives in
    /// SendBuffer; stale transmissions are discarded without it).
    struct InFlight {
      int64_t Seq;
      int64_t ArriveCycle;
      bool Corrupted; ///< Set in flight; detected by the receiver.
    };
    std::deque<InFlight> Wire;

    /// Receiver.
    int64_t ExpectedSeq = 0;
    int AttemptsOnExpected = 0; ///< Corrupted arrivals of ExpectedSeq.

    /// Highest outstanding occupancy (unacked + delivered-not-popped),
    /// the reliable-mode equivalent of Channel::peakOccupancy.
    int64_t PeakOutstanding = 0;

    LinkStats Stats;
  };

  //===--------------------------------------------------------------------===//
  // Execution context
  //===--------------------------------------------------------------------===//

  /// Mutable per-stepper state that must not be shared between shards:
  /// the serial engine owns one instance (SerialCtx); the parallel engine
  /// gives each shard its own, merging the totals at result collection.
  struct ExecCtx {
    /// Set when a component was ready to move data but was denied
    /// bandwidth this cycle; such waiting is progress-pending, not
    /// deadlock (unused budget carries over, so the grant eventually
    /// succeeds).
    bool BandwidthWait = false;
    /// Bytes this context moved across the network.
    double NetworkBytesMoved = 0.0;
    /// Per-hop scratch for the emit phase's all-or-nothing feasibility
    /// check, hoisted so the run loop performs no per-cycle allocation.
    std::vector<double> HopNeeded;
  };

  /// What one stepped cycle (or one merged epoch) concluded.
  enum class StepOutcome : uint8_t { Running, Finished, Failed };

  //===--------------------------------------------------------------------===//
  // Helpers
  //===--------------------------------------------------------------------===//

  bool stepReader(Reader &R, int64_t Cycle, ExecCtx &Ctx);
  bool stepUnit(Unit &U, int64_t Cycle, ExecCtx &Ctx);
  bool stepWriter(Writer &W, int64_t Cycle, ExecCtx &Ctx);

  /// Refills one device's reader/writer memory pools for \p Cycle given
  /// the active endpoint counts (shared by the serial stepper and the
  /// per-shard parallel stepper; each device is touched by exactly one).
  void refillDeviceBudgets(size_t Device, int64_t Cycle, int ActiveR,
                           int ActiveW);

  /// Refills one hop's link budget for \p Cycle.
  void refillHopBudget(size_t Hop, int64_t Cycle);

  /// Charges the crossbar arbitration penalty against one device's pools.
  void applyArbitrationPenalty(size_t Device, int ActiveR, int ActiveW);

  /// Requests a memory transaction of \p DataBytes on \p Device. Returns
  /// true (and charges the budget) if granted this cycle. The per-cycle
  /// budget is split between reader and writer pools proportionally to
  /// the active endpoint counts, so the writers (served after the
  /// readers) cannot be starved under oversubscription; reader leftovers
  /// spill into the writer pool.
  bool grantMemory(int Device, double DataBytes, bool IsWriter, ExecCtx &Ctx);

  /// Requests network bandwidth for pushing one vector into channel
  /// \p ChannelIndex, if it is remote. Returns true if granted (or local).
  bool grantNetwork(size_t ChannelIndex, ExecCtx &Ctx);

  /// Computes the value of slot \p Slot of \p U for lane \p Lane.
  double readSlot(const Unit &U, const SlotRef &Slot, int Lane) const;

  /// Gathers all lanes of one slot into \p Dst (Lanes doubles) for the
  /// batched kernel engine. Interior stream taps take a precomputed
  /// two-span ring copy (one modulo per vector instead of one per lane);
  /// boundary vectors and ROM slots fall back to readSlot per lane.
  void gatherSlot(const Unit &U, const SlotRef &Slot, double *Dst) const;

  /// Producer-side view of channel \p ChannelIndex: plain Channel::full,
  /// or the reliable stream's capacity/window/rewind backpressure. During
  /// a parallel epoch, cross-shard channels answer from the epoch-start
  /// snapshot plus this epoch's staged pushes (an upper bound on the
  /// serial occupancy that the epoch length guarantees never differs on
  /// the full/not-full question — see DESIGN.md).
  bool channelFull(size_t ChannelIndex) const;

  /// Producer-side push: plain Channel::push, or accept-and-transmit on
  /// the reliable stream (the emit phase has already paid hop bandwidth).
  /// During a parallel epoch, cross-shard pushes are staged and merged at
  /// the barrier.
  void channelPush(size_t ChannelIndex, const double *Vector, int64_t Cycle);

  /// Start-of-cycle receiver step: matured wire transmissions are
  /// checksum-verified and delivered in order; corrupted or stale ones
  /// are discarded (NACKing the sender when the expected vector was hit).
  /// Fails with LinkFailure (retransmit budget exhausted) or
  /// DataCorruption (recovery disabled).
  Error linkReceive(int64_t Cycle);

  /// End-of-cycle sender step: streams in rewind mode retransmit one
  /// vector per cycle from leftover hop bandwidth, after backoff.
  void linkSend(int64_t Cycle);

  /// Fills LastFailure with the structured state of every stuck
  /// component and its adjacent channels.
  void buildFailureReport(ErrorCode Code, int64_t Cycle);

  /// Builds the failure report, finalizes the trace, and returns the
  /// typed failure carrying both the rendered Error and the structured
  /// report.
  SimFailure abortRun(ErrorCode Code, int64_t Cycle,
                      const std::string &FailedChannel = std::string());

  //===--------------------------------------------------------------------===//
  // Engine decomposition (Machine.cpp)
  //===--------------------------------------------------------------------===//

  /// Binds inputs, resets all runtime state, and registers the trace.
  Error prepareRun(const std::map<std::string, std::vector<double>> &Inputs);

  /// Steps every component through one cycle in the global reference
  /// order. The unit of exactness: the parallel engine is defined as
  /// producing the same state trajectory as repeated calls to this.
  StepOutcome stepCycleSerial(int64_t Cycle, SimFailure &Failure);

  /// Reference engine: stepCycleSerial until completion or failure.
  StepOutcome runSerialLoop(int64_t &FinalCycles, SimFailure &Failure);

  /// Gathers stats and outputs after a completed run.
  SimResult collectResult(int64_t FinalCycles);

  //===--------------------------------------------------------------------===//
  // Checkpoint/restart (Checkpoint.cpp)
  //===--------------------------------------------------------------------===//

  /// Compatibility hash over the machine structure. With
  /// \p IncludePlacement: topology + device placement + every
  /// trajectory-relevant config knob + the fault plan (the *exact*
  /// signature — matching it makes a verbatim restore bit-exact). Without:
  /// the placement-independent topology only (the *rehydrate* signature
  /// used by device-loss recovery across re-partitionings).
  uint64_t machineSignature(bool IncludePlacement) const;

  /// Serializes the complete runtime state after completing cycles
  /// [0, \p Cycle). Only legal at a globally consistent boundary (between
  /// serial cycles or parallel epochs).
  MachineSnapshot captureSnapshot(int64_t Cycle) const;

  /// Overwrites the freshly prepared runtime state from \p Snap,
  /// dispatching to the exact or rehydrate path by signature; sets
  /// ResumeCycle on success. \p InputsHash guards against resuming with
  /// different input data.
  Error restoreSnapshot(const MachineSnapshot &Snap, uint64_t InputsHash);
  Error restoreExact(const MachineSnapshot &Snap);
  Error restoreRehydrate(const MachineSnapshot &Snap);

  /// Writes a snapshot when the cycle or wall-clock cadence says one is
  /// due after completing \p CompletedCycles cycles. The wall clock is
  /// only consulted when \p WallEligible (the serial loop rate-limits the
  /// clock read; the parallel driver is eligible at every epoch boundary).
  void maybeCheckpoint(int64_t CompletedCycles, bool WallEligible);
  void writeCheckpoint(int64_t CompletedCycles);

  int64_t ResumeCycle = 0; ///< First cycle the current run steps.
  uint64_t InputsHashOfRun = 0; ///< hashInputFields of the bound inputs.
  int64_t NextCheckpointCycle = 0;
  std::chrono::steady_clock::time_point LastCheckpointWall;
  int64_t CheckpointsWritten = 0;  ///< Snapshots persisted this run.
  int64_t CheckpointFailures = 0;  ///< Failed writes (the run continues).
  int64_t ResumedFromCycle = -1;   ///< Snapshot cycle, -1 when fresh.
  int64_t TierReassignedUnits = 0; ///< Units whose tier changed on restore.
  /// Quiescence-skip cycles accumulated before the snapshot (per-shard
  /// counters reset on resume; collectResult adds this base back).
  int64_t RestoredSkippedCycles = 0;

  //===--------------------------------------------------------------------===//
  // Parallel engine (Parallel.cpp)
  //===--------------------------------------------------------------------===//

  /// Epoch-local logs for one cross-shard (remote) channel. The producer
  /// shard appends pushes (payload + cycle, plus the precomputed
  /// corruption flag on reliable streams); the consumer shard appends pop
  /// cycles. The two roles touch disjoint members, so no lock is needed;
  /// the barrier merges pushes into the live channel and replays the
  /// interleaved trajectory to recover the exact peak occupancy.
  struct ChannelStage {
    bool Active = false; ///< True during a parallel epoch.
    /// Producer-visible occupancy at epoch start: channel size (plain) or
    /// outstanding + delivered-not-popped (reliable).
    int64_t OccSnapshot = 0;
    /// Reliable only: unacknowledged vectors at epoch start.
    int64_t OutstandingSnapshot = 0;
    // Producer-written.
    std::vector<int64_t> PushCycles;
    std::vector<double> Payloads; ///< Lanes values per push.
    std::vector<uint8_t> Corrupt; ///< Reliable only.
    // Consumer-written.
    std::vector<int64_t> PopCycles;
  };

  /// One device's slice of the machine: index lists into the global
  /// component arrays (kept sorted so the serial rotation order can be
  /// reproduced locally), the channels it consumes and the remote
  /// channels it produces, plus its private execution context and
  /// per-epoch progress/pending bits.
  struct Shard {
    int Device = 0;
    std::vector<size_t> ReaderIdx, UnitIdx, WriterIdx; ///< Sorted global.
    std::vector<size_t> InChannels;  ///< Channels consumed on this device.
    std::vector<size_t> OutRemote;   ///< Remote channels produced here.
    std::vector<size_t> InRemote;    ///< Remote channels consumed here.
    std::vector<int> InReliable;     ///< Reliable streams delivered here.
    std::vector<size_t> OwnedHops;   ///< Hops whose budget this shard pays.
    ExecCtx Ctx;
    /// Per-epoch records, indexed by cycle - T0.
    std::vector<uint8_t> ProgressBits, PendingBits;
    /// First absolute cycle at which every local writer had finished;
    /// INT64_MAX until observed, -1 for shards with no writers.
    int64_t AllWritersDoneCycle = 0;
    /// Cycles the quiescence fast-forward skipped on this shard.
    int64_t SkippedCycles = 0;
  };

  /// Parallel engine driver: epoch sizing, worker coordination, serial
  /// fallback chunks, and barrier merges.
  StepOutcome runParallelLoop(int64_t &FinalCycles, SimFailure &Failure);

  /// Builds the per-device shards and channel stages (first parallel run).
  void buildShards();

  /// True when the machine cannot run parallel epochs at all for this
  /// run; sets EngineNote with the reason.
  bool mustRunSerial();

  /// Largest exact epoch length starting at \p T0 (at most \p MaxLen),
  /// or 0 when the next cycle must be stepped serially (dirty
  /// retransmission state, corrupted arrival due, no channel slack).
  int64_t computeEpochLength(int64_t T0) const;

  /// Steps one shard through cycles [T0, T1], including the quiescence
  /// fast-forward. Runs on a worker thread; touches only shard-owned
  /// state plus the staged channel logs.
  void runShardEpoch(Shard &S, int64_t T0, int64_t T1);

  /// Takes the epoch-start snapshots and activates the channel stages.
  void beginEpoch(int64_t T0, int64_t T1);

  /// Merges staged pushes, replays occupancy peaks, scans the combined
  /// progress/pending bits for completion/deadlock/watchdog, and rolls
  /// back overrun stall counters when the run ended mid-epoch.
  StepOutcome mergeEpoch(int64_t T0, int64_t T1, int64_t &FinalCycles,
                         SimFailure &Failure);

  //===--------------------------------------------------------------------===//
  // Configuration (set at build)
  //===--------------------------------------------------------------------===//

  SimConfig Config;
  const CompiledProgram *Compiled = nullptr;
  int NumDevices = 1;
  int Lanes = 1;
  size_t ElementBytes = 4;
  int64_t ExpectedCycles = 0;
  int64_t StreamVectors = 0;
  std::vector<int64_t> SpaceExtents;

  std::vector<std::unique_ptr<Channel>> Channels;
  std::vector<RemoteLink> RemoteLinks; ///< Indexed like Channels (entry per
                                       ///< channel; LastHop==FirstHop means
                                       ///< local).
  std::vector<Reader> Readers;
  std::vector<Unit> Units; ///< Global topological order.
  std::vector<Writer> Writers;

  //===--------------------------------------------------------------------===//
  // Resilience (active only when Config.Faults is set)
  //===--------------------------------------------------------------------===//

  std::vector<ReliableStream> Reliable;
  std::vector<int> ReliableOf; ///< Per channel: index into Reliable or -1.
  int64_t EarliestDeviceFail = 0; ///< INT64_MAX when no failure scheduled.
  std::vector<char> DeadDevice;   ///< Per device, refreshed each cycle.
  std::vector<char> Brownout;     ///< Per device, refreshed each cycle.
  FailureReport LastFailure;

  //===--------------------------------------------------------------------===//
  // Per-cycle state
  //===--------------------------------------------------------------------===//

  std::vector<double> MemoryBudget;      ///< Reader pool per device.
  std::vector<double> WriterBudget;      ///< Writer pool per device.
  std::vector<double> HopBudget;         ///< Per hop, bytes this cycle.
  std::vector<double> MemoryBytesMoved;  ///< Per device, total.

  /// The serial engine's execution context (also used for the parallel
  /// engine's serial fallback chunks).
  ExecCtx SerialCtx;

  /// Per-cycle scratch, hoisted out of the run loop so the simulator
  /// performs no heap allocation per simulated cycle.
  std::vector<int> ActiveReaders;  ///< Per device, cleared each cycle.
  std::vector<int> ActiveWriters;  ///< Per device, cleared each cycle.

  /// Hard cycle limit of the current run (set by prepareRun).
  int64_t MaxCycles = 0;

  //===--------------------------------------------------------------------===//
  // Parallel engine state (empty under the serial engine)
  //===--------------------------------------------------------------------===//

  std::vector<Shard> Shards;
  std::vector<ChannelStage> Stages; ///< Indexed like Channels.
  /// Sorted fault-event boundary cycles (starts and ends); the quiescence
  /// skip never jumps across one, so per-cycle fault refresh stays exact.
  std::vector<int64_t> FaultBoundaries;
  /// Per device: first cycle at which a DeviceFailure event has it dead
  /// (INT64_MAX when none). Used to roll back bulk-accounted stalls when
  /// an epoch aborts mid-way.
  std::vector<int64_t> DeviceFailCycle;
  /// What SimStats::Engine reports: the configured engine plus fallback
  /// notes.
  std::string EngineNote;
  int64_t EpochCount = 0;          ///< Parallel epochs executed.
  int64_t SerialFallbackCount = 0; ///< Cycles stepped serially mid-run.

  //===--------------------------------------------------------------------===//
  // Tracing (active only while run() executes with Config.Trace set)
  //===--------------------------------------------------------------------===//

  /// Registers tracks/counters on \p T for all components.
  void registerTrace(Tracer &T);
  /// Emits the per-stride occupancy and bandwidth counter samples.
  void sampleTrace(Tracer &T, int64_t Cycle);

  Tracer *ActiveTrace = nullptr;       ///< Null when tracing is off.
  std::vector<int> ChannelCounters;    ///< Tracer counter id per channel.
  std::vector<int> MemoryCounters;     ///< Tracer counter id per device.
  std::vector<double> LastMemBytes;    ///< Previous sample's totals.
};

} // namespace sim
} // namespace stencilflow

#endif // STENCILFLOW_SIM_MACHINE_H
