//===- sim/Machine.h - Spatial hardware simulator -----------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cycle-level simulator of the spatial architectures StencilFlow emits,
/// standing in for the paper's FPGA testbed (see DESIGN.md). It implements
/// the dataflow semantics that the analyses reason about:
///
///  - every stencil node becomes a fully pipelined stencil unit (II = 1)
///    with shift-register internal buffers, boundary predication, and
///    initialization/draining phases (Fig. 12);
///  - edges become bounded FIFO channels whose capacities carry the
///    delay-buffer depths of Sec. IV-B — undersized channels reproduce the
///    Fig. 4 deadlock, which the simulator detects and reports;
///  - off-chip inputs are read once per device by prefetching reader
///    endpoints and fanned out to all consumers; writers commit outputs,
///    both arbitrated by a banked memory controller with per-transaction
///    overhead (the Fig. 16 bandwidth substrate);
///  - multi-device partitions communicate via SMI-style remote streams
///    with per-hop latency and link-bandwidth arbitration (Sec. VI-B).
///
/// In the unconstrained-memory configuration the simulator completes in
/// exactly C = L + N cycles (Eq. 1), which the tests assert.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SIM_MACHINE_H
#define STENCILFLOW_SIM_MACHINE_H

#include "core/CompiledProgram.h"
#include "core/DataflowAnalysis.h"
#include "core/Partitioner.h"
#include "core/ValidRegion.h"
#include "sim/Channel.h"
#include "sim/Config.h"
#include "sim/Trace.h"
#include "support/Error.h"

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace stencilflow {
namespace sim {

/// Execution statistics of one simulation.
struct SimStats {
  /// Total cycles until the last output vector was committed.
  int64_t Cycles = 0;

  /// Per-device bytes moved to/from off-chip memory.
  std::vector<double> MemoryBytesMoved;

  /// Per-device average achieved memory bandwidth in bytes/cycle.
  std::vector<double> AchievedMemoryBytesPerCycle;

  /// Total bytes moved across the network.
  double NetworkBytesMoved = 0.0;

  /// Cycles each stencil unit spent stalled (inputs missing or outputs
  /// blocked).
  std::map<std::string, int64_t> UnitStallCycles;

  /// Per-cause attribution of each unit's stall cycles (sim/Trace.h).
  /// For every unit, UnitStalls[name].total() == UnitStallCycles[name].
  std::map<std::string, StallBreakdown> UnitStalls;

  /// Per-cause stall attribution of the memory reader endpoints, keyed
  /// "field@device". Readers stall when downstream FIFOs are full
  /// (output-blocked) or the memory controller denies bandwidth
  /// (memory-denied).
  std::map<std::string, StallBreakdown> ReaderStalls;

  /// Per-cause stall attribution of the memory writer endpoints, keyed by
  /// output field. Writers stall waiting for produced data
  /// (input-starved — this includes the pipeline's initialization phase)
  /// or on memory bandwidth (memory-denied).
  std::map<std::string, StallBreakdown> WriterStalls;

  /// Highest observed *visible* occupancy per channel (vectors), keyed by
  /// the channel name "source->consumer"; in-flight remote vectors are
  /// excluded. Together with the analysis' per-edge BufferDepth this
  /// empirically validates the delay-buffer sizing: the critical edges
  /// fill to (at least close to) their computed depth, and no channel
  /// ever needs more.
  std::map<std::string, int64_t> ChannelHighWater;

  /// Highest total occupancy per channel including in-flight vectors —
  /// what the physical FIFO allocation must cover.
  std::map<std::string, int64_t> ChannelPeakOccupancy;

  /// Configured capacity per channel (vectors), for occupancy ratios in
  /// the metrics export.
  std::map<std::string, int64_t> ChannelCapacity;
};

/// Results of one simulation: statistics plus the program outputs.
struct SimResult {
  SimStats Stats;
  std::map<std::string, std::vector<double>> Outputs;
};

/// A built simulator instance. Build once, run with concrete inputs.
class Machine {
public:
  /// Assembles the machine from the analyzed program. \p Placement is
  /// optional; without it everything runs on a single device.
  static Expected<Machine> build(const CompiledProgram &Compiled,
                                 const DataflowAnalysis &Dataflow,
                                 const Partition *Placement = nullptr,
                                 const SimConfig &Config = {});

  /// Runs the machine to completion (or deadlock / cycle-limit abort).
  /// \p Inputs maps every program input field to its data.
  Expected<SimResult>
  run(const std::map<std::string, std::vector<double>> &Inputs);

  /// The runtime model's expected cycle count C = L + N (Eq. 1), excluding
  /// network latency.
  int64_t expectedCycles() const { return ExpectedCycles; }

  /// Number of devices in the machine.
  int numDevices() const { return NumDevices; }

private:
  //===--------------------------------------------------------------------===//
  // Component state
  //===--------------------------------------------------------------------===//

  /// One streamed input of a stencil unit: channel + shift-register ring.
  struct FieldStream {
    std::string Field;
    size_t ChannelIndex = 0;
    /// Ring capacity in elements: (D_f + 1) * W + lookbehind.
    int64_t RingElements = 0;
    /// Steps to wait before the first pop: node init minus field init.
    int64_t DelaySteps = 0;
    /// Runtime state.
    std::vector<double> Ring;
    int64_t WrittenElements = 0;
  };

  /// A preloaded lower-dimensional input (on-chip ROM).
  struct Rom {
    std::string Field;
    std::vector<int64_t> Extents;
    std::vector<int64_t> Strides;
    std::vector<size_t> SpannedDims;
    std::vector<double> Data; // Filled at run().
  };

  /// How one kernel input slot is materialized each cycle.
  struct SlotRef {
    bool IsStream = true;
    int SourceIndex = 0; ///< Index into Streams or Roms.
    /// Stream slots: distance from the newest ring element for lane 0.
    int64_t OffsetFromNewest = 0;
    int64_t CenterFromNewest = 0;
    /// Per-program-dimension logical offsets (bounds predication). For ROM
    /// slots only the spanned dimensions are used, in field order.
    std::vector<int64_t> DimOffsets;
    BoundaryKind Boundary = BoundaryKind::Constant;
    double BoundaryValue = 0.0;
  };

  /// One stencil unit.
  struct Unit {
    std::string Name;
    size_t NodeIndex = 0;
    int Device = 0;
    const compute::Kernel *Kernel = nullptr;
    std::vector<FieldStream> Streams;
    std::vector<Rom> Roms;
    std::vector<SlotRef> Slots;
    int64_t InitSteps = 0;       ///< D: node initialization in vectors.
    int64_t CircuitLatency = 0;  ///< Pipeline depth in cycles.
    int64_t StreamVectors = 0;   ///< N_v: real vectors per stream.
    std::vector<size_t> OutChannels;
    /// Runtime state.
    int64_t Step = 0;    ///< Consume steps completed (0 .. N_v + D).
    int64_t Issued = 0;  ///< Outputs entered into the pipe.
    int64_t Emitted = 0; ///< Outputs pushed to consumers.
    std::deque<int64_t> PipeReady;  ///< Ready cycle per in-flight output.
    std::deque<double> PipeValues;  ///< W values per in-flight output.
    std::vector<int64_t> CenterIndex; ///< Multi-dim index of next output.
    int64_t StallCycles = 0;
    StallBreakdown Stalls; ///< Per-cause split of StallCycles.
    int TraceTrack = -1;   ///< Timeline track when tracing.
    std::vector<double> Scratch;    ///< Kernel evaluation scratch.
    std::vector<double> SlotValues; ///< Kernel input staging.
    std::vector<double> OutVector;  ///< Output staging.
    std::vector<double> PopStaging; ///< Channel pop staging.
  };

  /// A memory reader endpoint: streams one input field on one device.
  struct Reader {
    std::string Field;
    int Device = 0;
    std::vector<size_t> OutChannels;
    int64_t TotalVectors = 0;
    /// Runtime state.
    const std::vector<double> *Data = nullptr;
    int64_t VectorsPushed = 0;
    StallBreakdown Stalls;
    int TraceTrack = -1;
  };

  /// A memory writer endpoint: commits one program output.
  struct Writer {
    std::string Field;
    int Device = 0;
    size_t ChannelIndex = 0;
    int64_t TotalVectors = 0;
    bool Shrink = false;
    ValidRegion Region;
    /// Runtime state.
    std::vector<double> Data;
    std::vector<int64_t> Index;
    int64_t VectorsWritten = 0;
    std::vector<double> InVector;
    StallBreakdown Stalls;
    int TraceTrack = -1;
  };

  /// Network bandwidth tracking for one remote channel.
  struct RemoteLink {
    size_t ChannelIndex = 0;
    int FirstHop = 0; ///< Crosses hops [FirstHop, LastHop).
    int LastHop = 0;
  };

  //===--------------------------------------------------------------------===//
  // Helpers
  //===--------------------------------------------------------------------===//

  bool stepReader(Reader &R, int64_t Cycle);
  bool stepUnit(Unit &U, int64_t Cycle);
  bool stepWriter(Writer &W, int64_t Cycle);

  /// Requests a memory transaction of \p DataBytes on \p Device. Returns
  /// true (and charges the budget) if granted this cycle. The per-cycle
  /// budget is split between reader and writer pools proportionally to
  /// the active endpoint counts, so the writers (served after the
  /// readers) cannot be starved under oversubscription; reader leftovers
  /// spill into the writer pool.
  bool grantMemory(int Device, double DataBytes, bool IsWriter);

  /// Requests network bandwidth for pushing one vector into channel
  /// \p ChannelIndex, if it is remote. Returns true if granted (or local).
  bool grantNetwork(size_t ChannelIndex);

  /// Computes the value of slot \p Slot of \p U for lane \p Lane.
  double readSlot(const Unit &U, const SlotRef &Slot, int Lane) const;

  std::string deadlockReport() const;

  //===--------------------------------------------------------------------===//
  // Configuration (set at build)
  //===--------------------------------------------------------------------===//

  SimConfig Config;
  const CompiledProgram *Compiled = nullptr;
  int NumDevices = 1;
  int Lanes = 1;
  size_t ElementBytes = 4;
  int64_t ExpectedCycles = 0;
  int64_t StreamVectors = 0;
  std::vector<int64_t> SpaceExtents;

  std::vector<std::unique_ptr<Channel>> Channels;
  std::vector<RemoteLink> RemoteLinks; ///< Indexed like Channels (entry per
                                       ///< channel; LastHop==FirstHop means
                                       ///< local).
  std::vector<Reader> Readers;
  std::vector<Unit> Units; ///< Global topological order.
  std::vector<Writer> Writers;

  //===--------------------------------------------------------------------===//
  // Per-cycle state
  //===--------------------------------------------------------------------===//

  std::vector<double> MemoryBudget;      ///< Reader pool per device.
  std::vector<double> WriterBudget;      ///< Writer pool per device.
  std::vector<double> HopBudget;         ///< Per hop, bytes this cycle.
  std::vector<double> MemoryBytesMoved;  ///< Per device, total.
  double NetworkBytesMoved = 0.0;
  /// Set when a component was ready to move data but was denied bandwidth
  /// this cycle; such waiting is progress-pending, not deadlock (unused
  /// budget carries over, so the grant eventually succeeds).
  bool BandwidthWait = false;

  /// Per-cycle scratch, hoisted out of the run loop so the simulator
  /// performs no heap allocation per simulated cycle.
  std::vector<int> ActiveReaders;  ///< Per device, cleared each cycle.
  std::vector<int> ActiveWriters;  ///< Per device, cleared each cycle.
  std::vector<double> HopNeeded;   ///< Per hop, stepUnit emit scratch.

  //===--------------------------------------------------------------------===//
  // Tracing (active only while run() executes with Config.Trace set)
  //===--------------------------------------------------------------------===//

  /// Registers tracks/counters on \p T for all components.
  void registerTrace(Tracer &T);
  /// Emits the per-stride occupancy and bandwidth counter samples.
  void sampleTrace(Tracer &T, int64_t Cycle);

  Tracer *ActiveTrace = nullptr;       ///< Null when tracing is off.
  std::vector<int> ChannelCounters;    ///< Tracer counter id per channel.
  std::vector<int> MemoryCounters;     ///< Tracer counter id per device.
  std::vector<double> LastMemBytes;    ///< Previous sample's totals.
};

} // namespace sim
} // namespace stencilflow

#endif // STENCILFLOW_SIM_MACHINE_H
