//===- sim/Checkpoint.cpp - Crash-safe machine snapshots ----------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Three layers live here:
//
//  1. Primitives: CRC-32, FNV-1a, the input-data hash.
//  2. The file format: magic | version | crc | body-size | body, written
//     crash-consistently (temp file + fsync + atomic rename) with bounded
//     retention, read back with typed SnapshotInvalid errors.
//  3. The Machine side: signatures, captureSnapshot, the exact and
//     rehydrate restore paths, and the checkpoint cadence the run loops
//     call into.
//
//===----------------------------------------------------------------------===//

#include "sim/Checkpoint.h"

#include "sim/Machine.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cerrno>
#include <limits>
#include <csignal>
#include <cstdio>
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace stencilflow;
using namespace stencilflow::sim;

//===----------------------------------------------------------------------===//
// Primitives
//===----------------------------------------------------------------------===//

uint32_t sim::crc32(const void *Data, size_t Size) {
  static uint32_t Table[256];
  static bool TableReady = [] {
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      Table[I] = C;
    }
    return true;
  }();
  (void)TableReady;
  uint32_t Crc = 0xFFFFFFFFu;
  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I != Size; ++I)
    Crc = Table[(Crc ^ Bytes[I]) & 0xFFu] ^ (Crc >> 8);
  return Crc ^ 0xFFFFFFFFu;
}

uint64_t sim::fnv1a(const void *Data, size_t Size, uint64_t Seed) {
  uint64_t Hash = Seed;
  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I != Size; ++I) {
    Hash ^= Bytes[I];
    Hash *= 1099511628211ull;
  }
  return Hash;
}

uint64_t sim::hashInputFields(
    const std::map<std::string, std::vector<double>> &Inputs) {
  uint64_t Hash = 1469598103934665603ull;
  for (const auto &[Name, Data] : Inputs) {
    Hash = fnv1a(Name.data(), Name.size(), Hash);
    uint64_t Count = Data.size();
    Hash = fnv1a(&Count, sizeof(Count), Hash);
    Hash = fnv1a(Data.data(), Data.size() * sizeof(double), Hash);
  }
  return Hash;
}

//===----------------------------------------------------------------------===//
// File format
//===----------------------------------------------------------------------===//

namespace {

/// 8-byte magic at offset 0. The trailing byte is a format generation
/// marker independent of SnapshotFormatVersion, so a future incompatible
/// *container* change (not just a payload layout change) is also caught.
constexpr char SnapshotMagic[8] = {'S', 'F', 'C', 'K', 'P', 'T', '0', '\n'};
constexpr size_t HeaderBytes = 8 + 4 + 4 + 8; // magic, version, crc, size.

Error invalidSnapshot(const std::string &Path, const std::string &What) {
  return makeError(ErrorCode::SnapshotInvalid,
                   "snapshot '" + Path + "': " + What);
}

} // namespace

std::string sim::snapshotFileName(int64_t Cycle) {
  return formatString("ckpt-%020lld.sfck", static_cast<long long>(Cycle));
}

Error sim::writeSnapshotFile(const std::string &Path,
                             const MachineSnapshot &Snapshot) {
  ByteWriter Body;
  Body.i64(Snapshot.Cycle);
  Body.u64(Snapshot.ExactSignature);
  Body.u64(Snapshot.TopologySignature);
  Body.u64(Snapshot.InputsHash);
  Body.blob(Snapshot.State);

  ByteWriter File;
  for (char C : SnapshotMagic)
    File.u8(static_cast<uint8_t>(C));
  File.u32(SnapshotFormatVersion);
  File.u32(crc32(Body.bytes().data(), Body.bytes().size()));
  File.u64(Body.bytes().size());
  const std::vector<uint8_t> &Bytes = Body.bytes();

  // Crash consistency: write the full image to a temp file in the same
  // directory, fsync it, then atomically rename over the final path. A
  // crash at any instant leaves either no file, the previous snapshot, or
  // the complete new one — never a torn image. The directory fsync makes
  // the rename itself durable; failures there are ignored (the data is
  // already safe, only the name could be lost).
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  std::string Temp =
      Path + formatString(".tmp.%ld", static_cast<long>(::getpid()));
  int Fd = ::open(Temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return makeError("cannot create snapshot temp file '" + Temp +
                     "': " + std::strerror(errno));
  auto WriteAll = [&](const uint8_t *Data, size_t Size) {
    size_t Done = 0;
    while (Done != Size) {
      ssize_t N = ::write(Fd, Data + Done, Size - Done);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      Done += static_cast<size_t>(N);
    }
    return true;
  };
  bool Ok = WriteAll(File.bytes().data(), File.bytes().size()) &&
            WriteAll(Bytes.data(), Bytes.size());
  if (Ok && ::fsync(Fd) != 0)
    Ok = false;
  int SavedErrno = errno;
  ::close(Fd);
  if (!Ok) {
    ::unlink(Temp.c_str());
    return makeError("cannot write snapshot '" + Path +
                     "': " + std::strerror(SavedErrno));
  }
  if (::rename(Temp.c_str(), Path.c_str()) != 0) {
    SavedErrno = errno;
    ::unlink(Temp.c_str());
    return makeError("cannot publish snapshot '" + Path +
                     "': " + std::strerror(SavedErrno));
  }
  if (int DirFd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY); DirFd >= 0) {
    ::fsync(DirFd); // Best-effort durability of the rename.
    ::close(DirFd);
  }
  return Error::success();
}

Expected<MachineSnapshot> sim::readSnapshotFile(const std::string &Path) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return invalidSnapshot(Path, std::strerror(errno));
  std::vector<uint8_t> Bytes;
  uint8_t Buffer[1 << 16];
  for (;;) {
    ssize_t N = ::read(Fd, Buffer, sizeof(Buffer));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      int SavedErrno = errno;
      ::close(Fd);
      return invalidSnapshot(Path, std::strerror(SavedErrno));
    }
    if (N == 0)
      break;
    Bytes.insert(Bytes.end(), Buffer, Buffer + N);
  }
  ::close(Fd);

  if (Bytes.size() < HeaderBytes)
    return invalidSnapshot(Path, "truncated header");
  if (std::memcmp(Bytes.data(), SnapshotMagic, sizeof(SnapshotMagic)) != 0)
    return invalidSnapshot(Path, "bad magic (not a snapshot file)");
  ByteReader Header(Bytes.data() + sizeof(SnapshotMagic),
                    HeaderBytes - sizeof(SnapshotMagic));
  uint32_t Version = Header.u32();
  uint32_t Crc = Header.u32();
  uint64_t BodySize = Header.u64();
  if (Version != SnapshotFormatVersion)
    return invalidSnapshot(
        Path, formatString("format version skew (file v%u, reader v%u)",
                           Version, SnapshotFormatVersion));
  if (Bytes.size() - HeaderBytes != BodySize)
    return invalidSnapshot(
        Path, formatString("truncated body (%zu bytes, header says %llu)",
                           Bytes.size() - HeaderBytes,
                           static_cast<unsigned long long>(BodySize)));
  if (crc32(Bytes.data() + HeaderBytes, static_cast<size_t>(BodySize)) != Crc)
    return invalidSnapshot(Path, "CRC mismatch (corrupted snapshot)");

  ByteReader Body(Bytes.data() + HeaderBytes, static_cast<size_t>(BodySize));
  MachineSnapshot Snap;
  Snap.Cycle = Body.i64();
  Snap.ExactSignature = Body.u64();
  Snap.TopologySignature = Body.u64();
  Snap.InputsHash = Body.u64();
  Snap.State = Body.blob();
  if (Body.failed() || !Body.exhausted())
    return invalidSnapshot(Path, "malformed snapshot body");
  if (Snap.Cycle < 0)
    return invalidSnapshot(Path, "negative snapshot cycle");
  return Snap;
}

namespace {

/// Snapshot file names in \p Dir, lexically sorted — zero-padded cycles
/// make lexical and numeric order agree.
std::vector<std::string> listSnapshots(const std::string &Dir) {
  std::vector<std::string> Names;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Names;
  while (struct dirent *Entry = ::readdir(D)) {
    std::string_view Name = Entry->d_name;
    if (Name.size() > 10 && Name.substr(0, 5) == "ckpt-" &&
        Name.substr(Name.size() - 5) == ".sfck")
      Names.emplace_back(Name);
  }
  ::closedir(D);
  std::sort(Names.begin(), Names.end());
  return Names;
}

} // namespace

Expected<std::string> sim::findLatestSnapshot(const std::string &PathOrDir) {
  struct stat St;
  if (::stat(PathOrDir.c_str(), &St) != 0)
    return makeError(ErrorCode::SnapshotInvalid,
                     "no snapshot at '" + PathOrDir +
                         "': " + std::strerror(errno));
  if (S_ISREG(St.st_mode))
    return PathOrDir;
  std::vector<std::string> Names = listSnapshots(PathOrDir);
  if (Names.empty())
    return makeError(ErrorCode::SnapshotInvalid,
                     "no snapshot files (ckpt-*.sfck) in '" + PathOrDir +
                         "'");
  return PathOrDir + "/" + Names.back();
}

void sim::pruneSnapshots(const std::string &Dir, int Keep) {
  std::vector<std::string> Names = listSnapshots(Dir);
  if (Keep < 1)
    Keep = 1;
  for (size_t I = 0; I + static_cast<size_t>(Keep) < Names.size(); ++I)
    ::unlink((Dir + "/" + Names[I]).c_str());
}

//===----------------------------------------------------------------------===//
// Signatures
//===----------------------------------------------------------------------===//

uint64_t Machine::machineSignature(bool IncludePlacement) const {
  // Serialize every structural fact into one byte stream and hash it;
  // ByteWriter keeps the encoding canonical (no struct padding).
  ByteWriter W;
  W.u32(SnapshotFormatVersion);
  W.u8(IncludePlacement ? 1 : 0);
  W.i64(Lanes);
  W.u64(ElementBytes);
  W.i64(StreamVectors);
  W.i64(ExpectedCycles);
  W.u64(SpaceExtents.size());
  for (int64_t Extent : SpaceExtents)
    W.i64(Extent);

  W.u64(Channels.size());
  for (size_t Index = 0; Index != Channels.size(); ++Index) {
    W.str(Channels[Index]->name());
    if (IncludePlacement) {
      W.i64(Channels[Index]->capacity());
      W.i64(Channels[Index]->arrivalLatency());
      W.i64(RemoteLinks[Index].FirstHop);
      W.i64(RemoteLinks[Index].LastHop);
      W.i64(ReliableOf[Index]);
    }
  }

  W.u64(Units.size());
  for (const Unit &U : Units) {
    W.str(U.Name);
    W.i64(U.InitSteps);
    W.i64(U.CircuitLatency);
    W.u64(U.Kernel->instructions().size());
    if (IncludePlacement)
      W.i64(U.Device);
    W.u64(U.Streams.size());
    for (const FieldStream &Stream : U.Streams) {
      W.str(Stream.Field);
      W.u64(Stream.ChannelIndex);
      W.i64(Stream.RingElements);
      W.i64(Stream.DelaySteps);
    }
    W.u64(U.OutChannels.size());
    for (size_t ChannelIndex : U.OutChannels)
      W.u64(ChannelIndex);
  }

  W.u64(Writers.size());
  for (const Writer &Wr : Writers) {
    W.str(Wr.Field);
    W.u64(Wr.ChannelIndex);
    W.i64(Wr.TotalVectors);
    W.u8(Wr.Shrink ? 1 : 0);
    if (IncludePlacement)
      W.i64(Wr.Device);
  }

  if (IncludePlacement) {
    W.i64(NumDevices);
    W.u64(Readers.size());
    for (const Reader &R : Readers) {
      W.str(R.Field);
      W.i64(R.Device);
      W.i64(R.TotalVectors);
      W.u64(R.OutChannels.size());
      for (size_t ChannelIndex : R.OutChannels)
        W.u64(ChannelIndex);
    }

    // Every config knob the state trajectory depends on. Engine, thread
    // count, and kernel tier are deliberately absent — all engines and
    // tiers are bit-exact with each other, so a serial-engine snapshot
    // resumes exactly under the parallel engine and vice versa. The cycle
    // limits are absent so a run aborted by a tight limit can resume under
    // a normal one (the kill/resume tests rely on this).
    W.u8(Config.UnconstrainedMemory ? 1 : 0);
    W.f64(Config.PeakMemoryBytesPerCycle);
    W.f64(Config.TransactionOverheadBytes);
    W.f64(Config.ArbitrationPenaltyBytesPerEndpoint);
    W.f64(Config.LinkBytesPerCycle);
    W.i64(Config.LinksPerHop);
    W.i64(Config.NetworkLatencyCyclesPerHop);
    W.i64(Config.NetworkExtraChannelDepth);
    W.i64(Config.MinChannelDepth);
    W.u8(Config.ClampChannelsToMinimum ? 1 : 0);
    W.u8(Config.ReliableStreams ? 1 : 0);
    W.i64(Config.StallTimeoutCycles);
    W.i64(Config.MaxRetransmitAttempts);
    W.i64(Config.RetransmitBackoffCycles);
    W.i64(Config.SendWindowVectors);

    // The fault plan: the corruption PRNG and the event schedule shape
    // the trajectory, so a snapshot only restores exactly under the same
    // plan (device-loss recovery runs under a *stripped* plan and takes
    // the rehydrate path by design).
    W.u8(Config.Faults ? 1 : 0);
    if (Config.Faults) {
      W.u64(Config.Faults->Seed);
      W.u64(Config.Faults->Events.size());
      for (const FaultEvent &Ev : Config.Faults->Events) {
        W.u8(static_cast<uint8_t>(Ev.Kind));
        W.i64(Ev.StartCycle);
        W.i64(Ev.EndCycle);
        W.i64(Ev.Device);
        W.i64(Ev.Hop);
        W.f64(Ev.Factor);
        W.f64(Ev.Probability);
      }
    }
  }

  return fnv1a(W.bytes().data(), W.bytes().size());
}

//===----------------------------------------------------------------------===//
// Capture
//===----------------------------------------------------------------------===//

MachineSnapshot Machine::captureSnapshot(int64_t Cycle) const {
  ByteWriter W;

  // Component counts up front so a restore can verify shape before
  // touching any state.
  W.u64(Readers.size());
  W.u64(Units.size());
  W.u64(Writers.size());
  W.u64(Channels.size());
  W.u64(Reliable.size());
  W.i64(NumDevices);
  W.i64(Lanes);

  // Producer cursors per channel: how many vectors its single producer
  // has pushed (transport-accepted for reliable streams). Only the
  // rehydrate path consumes these — they become the reader-side delivery
  // cursors after a re-partitioning regroups the reader endpoints.
  std::vector<int64_t> Produced(Channels.size(), 0);
  for (const Reader &R : Readers)
    for (size_t ChannelIndex : R.OutChannels)
      Produced[ChannelIndex] = R.VectorsPushed;
  for (const Unit &U : Units)
    for (size_t ChannelIndex : U.OutChannels)
      Produced[ChannelIndex] = U.Emitted;

  for (const Reader &R : Readers) {
    W.str(R.Field);
    W.i64(R.Device);
    W.i64(R.VectorsPushed);
    for (int64_t Count : R.Stalls.Counts)
      W.i64(Count);
    W.u8(static_cast<uint8_t>(R.LastCause));
    W.i64(R.LastProgress);
  }

  for (const Unit &U : Units) {
    W.str(U.Name);
    W.u64(U.Streams.size());
    for (const FieldStream &Stream : U.Streams) {
      W.f64span(Stream.Ring.data(), Stream.Ring.size());
      W.i64(Stream.WrittenElements);
    }
    W.i64(U.Step);
    W.i64(U.Issued);
    W.i64(U.Emitted);
    W.u64(U.PipeReady.size());
    for (int64_t Ready : U.PipeReady)
      W.i64(Ready);
    W.u64(U.PipeValues.size());
    for (double Value : U.PipeValues)
      W.f64(Value);
    W.u64(U.CenterIndex.size());
    for (int64_t Component : U.CenterIndex)
      W.i64(Component);
    W.i64(U.StallCycles);
    for (int64_t Count : U.Stalls.Counts)
      W.i64(Count);
    W.u8(static_cast<uint8_t>(U.LastCause));
    W.i64(U.LastProgress);
    // The effective kernel tier, so the restore can report how many units
    // were reassigned (e.g. jit -> specialized on a host without a
    // compiler). Informational: all tiers are bit-exact.
    W.str(compute::kernelEngineName(U.Eval.tier()));
  }

  for (const Writer &Wr : Writers) {
    W.str(Wr.Field);
    W.f64span(Wr.Data.data(), Wr.Data.size());
    W.u64(Wr.Index.size());
    for (int64_t Component : Wr.Index)
      W.i64(Component);
    W.i64(Wr.VectorsWritten);
    for (int64_t Count : Wr.Stalls.Counts)
      W.i64(Count);
    W.u8(static_cast<uint8_t>(Wr.LastCause));
    W.i64(Wr.LastProgress);
  }

  for (size_t Index = 0; Index != Channels.size(); ++Index) {
    const Channel &C = *Channels[Index];
    W.str(C.name());
    W.i64(Produced[Index]);
    W.i64(C.size());
    for (int64_t I = 0; I != C.size(); ++I) {
      W.i64(C.readyCycleAt(I));
      const double *Vector = C.vectorAt(I);
      for (int Lane = 0; Lane != Lanes; ++Lane)
        W.f64(Vector[Lane]);
    }
    W.i64(C.peakOccupancy());
    W.i64(C.highWaterMark());
  }

  for (const ReliableStream &RS : Reliable) {
    W.u64(RS.ChannelIndex);
    W.u64(RS.SendBuffer.size());
    for (const std::vector<double> &Payload : RS.SendBuffer)
      for (double Value : Payload)
        W.f64(Value);
    W.i64(RS.NextSeq);
    W.i64(RS.SendBase);
    W.i64(RS.ResendNext);
    W.i64(RS.BackoffUntil);
    W.i64(RS.NackStreak);
    W.u64(RS.TransmissionNonce);
    W.u64(RS.Wire.size());
    for (const ReliableStream::InFlight &F : RS.Wire) {
      W.i64(F.Seq);
      W.i64(F.ArriveCycle);
      W.u8(F.Corrupted ? 1 : 0);
    }
    W.i64(RS.ExpectedSeq);
    W.i64(RS.AttemptsOnExpected);
    W.i64(RS.PeakOutstanding);
    W.i64(RS.Stats.Transmissions);
    W.i64(RS.Stats.Retransmissions);
    W.i64(RS.Stats.CorruptedVectors);
    W.i64(RS.Stats.Nacks);
    W.i64(RS.Stats.Delivered);
  }

  // Globals: engine counters, carry-over bandwidth budgets (unused budget
  // persists across cycles, so they are state, not scratch), and the
  // accumulated transfer totals.
  W.i64(EpochCount);
  W.i64(SerialFallbackCount);
  int64_t Skipped = RestoredSkippedCycles;
  for (const Shard &S : Shards)
    Skipped += S.SkippedCycles;
  W.i64(Skipped);
  double Network = SerialCtx.NetworkBytesMoved;
  for (const Shard &S : Shards)
    Network += S.Ctx.NetworkBytesMoved;
  W.f64(Network);
  for (int Device = 0; Device != NumDevices; ++Device) {
    W.f64(MemoryBytesMoved[static_cast<size_t>(Device)]);
    W.f64(MemoryBudget[static_cast<size_t>(Device)]);
    W.f64(WriterBudget[static_cast<size_t>(Device)]);
  }
  W.u64(HopBudget.size());
  for (double Budget : HopBudget)
    W.f64(Budget);

  MachineSnapshot Snap;
  Snap.Cycle = Cycle;
  Snap.ExactSignature = machineSignature(/*IncludePlacement=*/true);
  Snap.TopologySignature = machineSignature(/*IncludePlacement=*/false);
  Snap.InputsHash = InputsHashOfRun;
  Snap.State = W.take();
  return Snap;
}

//===----------------------------------------------------------------------===//
// Restore
//===----------------------------------------------------------------------===//

namespace {

Error incompatible(const std::string &What) {
  return makeError(ErrorCode::SnapshotIncompatible, "snapshot: " + What);
}

Error malformed() {
  return makeError(ErrorCode::SnapshotInvalid,
                   "snapshot: state payload is malformed (decoder ran past "
                   "the end or left trailing bytes)");
}

/// Decoded per-component state shared by both restore paths.
struct ReaderState {
  std::string Field;
  int64_t Device = 0;
  int64_t VectorsPushed = 0;
  StallBreakdown Stalls;
  uint8_t LastCause = 0;
  int64_t LastProgress = 0;
};

struct StreamState {
  std::vector<double> Ring;
  int64_t WrittenElements = 0;
};

struct UnitState {
  std::string Name;
  std::vector<StreamState> Streams;
  int64_t Step = 0, Issued = 0, Emitted = 0;
  std::vector<int64_t> PipeReady;
  std::vector<double> PipeValues;
  std::vector<int64_t> CenterIndex;
  int64_t StallCycles = 0;
  StallBreakdown Stalls;
  uint8_t LastCause = 0;
  int64_t LastProgress = 0;
  std::string Tier;
};

struct WriterState {
  std::string Field;
  std::vector<double> Data;
  std::vector<int64_t> Index;
  int64_t VectorsWritten = 0;
  StallBreakdown Stalls;
  uint8_t LastCause = 0;
  int64_t LastProgress = 0;
};

struct ChannelState {
  std::string Name;
  int64_t Produced = 0;
  std::vector<int64_t> ReadyCycles;
  std::vector<double> Vectors; ///< Lanes doubles per entry.
  int64_t PeakOccupancy = 0;
  int64_t HighWater = 0;
};

struct ReliableState {
  uint64_t ChannelIndex = 0;
  std::vector<std::vector<double>> SendBuffer;
  int64_t NextSeq = 0, SendBase = 0, ResendNext = -1, BackoffUntil = 0;
  int64_t NackStreak = 0;
  uint64_t TransmissionNonce = 0;
  struct WireEntry {
    int64_t Seq, ArriveCycle;
    uint8_t Corrupted;
  };
  std::vector<WireEntry> Wire;
  int64_t ExpectedSeq = 0, AttemptsOnExpected = 0, PeakOutstanding = 0;
  LinkStats Stats;
};

struct DecodedState {
  uint64_t NumReaders = 0, NumUnits = 0, NumWriters = 0, NumChannels = 0,
           NumReliable = 0;
  int64_t NumDevices = 0, Lanes = 0;
  std::vector<ReaderState> Readers;
  std::vector<UnitState> Units;
  std::vector<WriterState> Writers;
  std::vector<ChannelState> Channels;
  std::vector<ReliableState> Reliable;
  int64_t EpochCount = 0, SerialFallbackCount = 0, SkippedCycles = 0;
  double NetworkBytesMoved = 0.0;
  std::vector<double> MemoryBytesMoved, MemoryBudget, WriterBudget,
      HopBudget;
};

/// Decodes the full state payload. Count fields are sanity-bounded before
/// any allocation so a corrupted-but-CRC-colliding payload cannot OOM the
/// process; the CRC makes this path unreachable in practice.
bool decodeState(const std::vector<uint8_t> &State, DecodedState &D) {
  ByteReader R(State);
  constexpr uint64_t SaneCount = 1ull << 32;

  D.NumReaders = R.u64();
  D.NumUnits = R.u64();
  D.NumWriters = R.u64();
  D.NumChannels = R.u64();
  D.NumReliable = R.u64();
  D.NumDevices = R.i64();
  D.Lanes = R.i64();
  if (R.failed() || D.NumReaders > SaneCount || D.NumUnits > SaneCount ||
      D.NumWriters > SaneCount || D.NumChannels > SaneCount ||
      D.NumReliable > SaneCount || D.NumDevices < 1 || D.Lanes < 1)
    return false;

  auto ReadCounts = [&](StallBreakdown &Stalls) {
    for (int Cause = 0; Cause != NumStallCauses; ++Cause)
      Stalls.Counts[Cause] = R.i64();
  };

  D.Readers.resize(static_cast<size_t>(D.NumReaders));
  for (ReaderState &RS : D.Readers) {
    RS.Field = R.str();
    RS.Device = R.i64();
    RS.VectorsPushed = R.i64();
    ReadCounts(RS.Stalls);
    RS.LastCause = R.u8();
    RS.LastProgress = R.i64();
  }

  D.Units.resize(static_cast<size_t>(D.NumUnits));
  for (UnitState &U : D.Units) {
    U.Name = R.str();
    uint64_t NumStreams = R.u64();
    if (R.failed() || NumStreams > SaneCount)
      return false;
    U.Streams.resize(static_cast<size_t>(NumStreams));
    for (StreamState &Stream : U.Streams) {
      Stream.Ring = R.f64span();
      Stream.WrittenElements = R.i64();
    }
    U.Step = R.i64();
    U.Issued = R.i64();
    U.Emitted = R.i64();
    uint64_t PipeLen = R.u64();
    if (R.failed() || PipeLen > SaneCount)
      return false;
    U.PipeReady.resize(static_cast<size_t>(PipeLen));
    for (int64_t &Ready : U.PipeReady)
      Ready = R.i64();
    uint64_t ValueLen = R.u64();
    if (R.failed() || ValueLen > SaneCount)
      return false;
    U.PipeValues.resize(static_cast<size_t>(ValueLen));
    for (double &Value : U.PipeValues)
      Value = R.f64();
    uint64_t Dims = R.u64();
    if (R.failed() || Dims > SaneCount)
      return false;
    U.CenterIndex.resize(static_cast<size_t>(Dims));
    for (int64_t &Component : U.CenterIndex)
      Component = R.i64();
    U.StallCycles = R.i64();
    ReadCounts(U.Stalls);
    U.LastCause = R.u8();
    U.LastProgress = R.i64();
    U.Tier = R.str();
  }

  D.Writers.resize(static_cast<size_t>(D.NumWriters));
  for (WriterState &Wr : D.Writers) {
    Wr.Field = R.str();
    Wr.Data = R.f64span();
    uint64_t Dims = R.u64();
    if (R.failed() || Dims > SaneCount)
      return false;
    Wr.Index.resize(static_cast<size_t>(Dims));
    for (int64_t &Component : Wr.Index)
      Component = R.i64();
    Wr.VectorsWritten = R.i64();
    ReadCounts(Wr.Stalls);
    Wr.LastCause = R.u8();
    Wr.LastProgress = R.i64();
  }

  D.Channels.resize(static_cast<size_t>(D.NumChannels));
  for (ChannelState &C : D.Channels) {
    C.Name = R.str();
    C.Produced = R.i64();
    int64_t Count = R.i64();
    if (R.failed() || Count < 0 ||
        static_cast<uint64_t>(Count) > SaneCount)
      return false;
    C.ReadyCycles.resize(static_cast<size_t>(Count));
    C.Vectors.resize(static_cast<size_t>(Count) *
                     static_cast<size_t>(D.Lanes));
    for (int64_t I = 0; I != Count; ++I) {
      C.ReadyCycles[static_cast<size_t>(I)] = R.i64();
      for (int64_t Lane = 0; Lane != D.Lanes; ++Lane)
        C.Vectors[static_cast<size_t>(I * D.Lanes + Lane)] = R.f64();
    }
    C.PeakOccupancy = R.i64();
    C.HighWater = R.i64();
  }

  D.Reliable.resize(static_cast<size_t>(D.NumReliable));
  for (ReliableState &RS : D.Reliable) {
    RS.ChannelIndex = R.u64();
    uint64_t BufLen = R.u64();
    if (R.failed() || BufLen > SaneCount)
      return false;
    RS.SendBuffer.resize(static_cast<size_t>(BufLen));
    for (std::vector<double> &Payload : RS.SendBuffer) {
      Payload.resize(static_cast<size_t>(D.Lanes));
      for (double &Value : Payload)
        Value = R.f64();
    }
    RS.NextSeq = R.i64();
    RS.SendBase = R.i64();
    RS.ResendNext = R.i64();
    RS.BackoffUntil = R.i64();
    RS.NackStreak = R.i64();
    RS.TransmissionNonce = R.u64();
    uint64_t WireLen = R.u64();
    if (R.failed() || WireLen > SaneCount)
      return false;
    RS.Wire.resize(static_cast<size_t>(WireLen));
    for (ReliableState::WireEntry &F : RS.Wire) {
      F.Seq = R.i64();
      F.ArriveCycle = R.i64();
      F.Corrupted = R.u8();
    }
    RS.ExpectedSeq = R.i64();
    RS.AttemptsOnExpected = R.i64();
    RS.PeakOutstanding = R.i64();
    RS.Stats.Transmissions = R.i64();
    RS.Stats.Retransmissions = R.i64();
    RS.Stats.CorruptedVectors = R.i64();
    RS.Stats.Nacks = R.i64();
    RS.Stats.Delivered = R.i64();
  }

  D.EpochCount = R.i64();
  D.SerialFallbackCount = R.i64();
  D.SkippedCycles = R.i64();
  D.NetworkBytesMoved = R.f64();
  D.MemoryBytesMoved.resize(static_cast<size_t>(D.NumDevices));
  D.MemoryBudget.resize(static_cast<size_t>(D.NumDevices));
  D.WriterBudget.resize(static_cast<size_t>(D.NumDevices));
  for (int64_t Device = 0; Device != D.NumDevices; ++Device) {
    D.MemoryBytesMoved[static_cast<size_t>(Device)] = R.f64();
    D.MemoryBudget[static_cast<size_t>(Device)] = R.f64();
    D.WriterBudget[static_cast<size_t>(Device)] = R.f64();
  }
  uint64_t Hops = R.u64();
  if (R.failed() || Hops > SaneCount)
    return false;
  D.HopBudget.resize(static_cast<size_t>(Hops));
  for (double &Budget : D.HopBudget)
    Budget = R.f64();

  return !R.failed() && R.exhausted();
}

} // namespace

Error Machine::restoreSnapshot(const MachineSnapshot &Snap,
                               uint64_t InputsHash) {
  if (Snap.InputsHash != InputsHash)
    return incompatible("taken against different input data (resuming "
                        "requires the original inputs)");
  Error Err;
  if (Snap.ExactSignature == machineSignature(/*IncludePlacement=*/true))
    Err = restoreExact(Snap);
  else if (Snap.TopologySignature ==
           machineSignature(/*IncludePlacement=*/false))
    Err = restoreRehydrate(Snap);
  else
    return incompatible(
        "belongs to a different program or machine (neither the exact nor "
        "the topology signature matches)");
  if (Err)
    return Err;
  ResumeCycle = Snap.Cycle;
  ResumedFromCycle = Snap.Cycle;
  return Error::success();
}

Error Machine::restoreExact(const MachineSnapshot &Snap) {
  DecodedState D;
  if (!decodeState(Snap.State, D))
    return malformed();
  // The exact signature already matched, so shape mismatches here mean an
  // undetected payload defect, not a legitimate different machine.
  if (D.Readers.size() != Readers.size() || D.Units.size() != Units.size() ||
      D.Writers.size() != Writers.size() ||
      D.Channels.size() != Channels.size() ||
      D.Reliable.size() != Reliable.size() || D.NumDevices != NumDevices ||
      D.Lanes != Lanes || D.HopBudget.size() != HopBudget.size())
    return malformed();

  for (size_t Index = 0; Index != Readers.size(); ++Index) {
    Reader &R = Readers[Index];
    const ReaderState &RS = D.Readers[Index];
    if (RS.Field != R.Field || RS.Device != R.Device)
      return malformed();
    R.VectorsPushed = RS.VectorsPushed;
    R.Stalls = RS.Stalls;
    R.LastCause = static_cast<StallCause>(RS.LastCause);
    R.LastProgress = RS.LastProgress;
  }

  for (size_t Index = 0; Index != Units.size(); ++Index) {
    Unit &U = Units[Index];
    UnitState &US = D.Units[Index];
    if (US.Name != U.Name || US.Streams.size() != U.Streams.size() ||
        US.CenterIndex.size() != U.CenterIndex.size())
      return malformed();
    for (size_t S = 0; S != U.Streams.size(); ++S) {
      if (US.Streams[S].Ring.size() != U.Streams[S].Ring.size())
        return malformed();
      U.Streams[S].Ring = std::move(US.Streams[S].Ring);
      U.Streams[S].WrittenElements = US.Streams[S].WrittenElements;
    }
    U.Step = US.Step;
    U.Issued = US.Issued;
    U.Emitted = US.Emitted;
    U.PipeReady.assign(US.PipeReady.begin(), US.PipeReady.end());
    U.PipeValues.assign(US.PipeValues.begin(), US.PipeValues.end());
    U.CenterIndex = std::move(US.CenterIndex);
    U.StallCycles = US.StallCycles;
    U.Stalls = US.Stalls;
    U.LastCause = static_cast<StallCause>(US.LastCause);
    U.LastProgress = US.LastProgress;
    if (US.Tier != compute::kernelEngineName(U.Eval.tier()))
      ++TierReassignedUnits;
  }

  for (size_t Index = 0; Index != Writers.size(); ++Index) {
    Writer &Wr = Writers[Index];
    WriterState &WS = D.Writers[Index];
    if (WS.Field != Wr.Field || WS.Data.size() != Wr.Data.size() ||
        WS.Index.size() != Wr.Index.size())
      return malformed();
    Wr.Data = std::move(WS.Data);
    Wr.Index = std::move(WS.Index);
    Wr.VectorsWritten = WS.VectorsWritten;
    Wr.Stalls = WS.Stalls;
    Wr.LastCause = static_cast<StallCause>(WS.LastCause);
    Wr.LastProgress = WS.LastProgress;
  }

  for (size_t Index = 0; Index != Channels.size(); ++Index) {
    Channel &C = *Channels[Index];
    const ChannelState &CS = D.Channels[Index];
    int64_t Count = static_cast<int64_t>(CS.ReadyCycles.size());
    if (CS.Name != C.name() || Count > C.capacity())
      return malformed();
    C.clearForRestore();
    for (int64_t I = 0; I != Count; ++I)
      C.restorePush(&CS.Vectors[static_cast<size_t>(I * Lanes)],
                    CS.ReadyCycles[static_cast<size_t>(I)]);
    C.restoreStats(CS.PeakOccupancy, CS.HighWater);
  }

  for (size_t Index = 0; Index != Reliable.size(); ++Index) {
    ReliableStream &RS = Reliable[Index];
    ReliableState &DS = D.Reliable[Index];
    if (DS.ChannelIndex != RS.ChannelIndex)
      return malformed();
    RS.SendBuffer.assign(DS.SendBuffer.begin(), DS.SendBuffer.end());
    RS.NextSeq = DS.NextSeq;
    RS.SendBase = DS.SendBase;
    RS.ResendNext = DS.ResendNext;
    RS.BackoffUntil = DS.BackoffUntil;
    RS.NackStreak = static_cast<int>(DS.NackStreak);
    RS.TransmissionNonce = DS.TransmissionNonce;
    RS.Wire.clear();
    for (const ReliableState::WireEntry &F : DS.Wire)
      RS.Wire.push_back({F.Seq, F.ArriveCycle, F.Corrupted != 0});
    RS.ExpectedSeq = DS.ExpectedSeq;
    RS.AttemptsOnExpected = static_cast<int>(DS.AttemptsOnExpected);
    RS.PeakOutstanding = DS.PeakOutstanding;
    RS.Stats = DS.Stats;
  }

  EpochCount = D.EpochCount;
  SerialFallbackCount = D.SerialFallbackCount;
  RestoredSkippedCycles = D.SkippedCycles;
  SerialCtx.NetworkBytesMoved = D.NetworkBytesMoved;
  MemoryBytesMoved = D.MemoryBytesMoved;
  MemoryBudget = D.MemoryBudget;
  WriterBudget = D.WriterBudget;
  HopBudget = D.HopBudget;
  return Error::success();
}

Error Machine::restoreRehydrate(const MachineSnapshot &Snap) {
  DecodedState D;
  if (!decodeState(Snap.State, D))
    return malformed();
  // Topology-derived shape must match; the placement-derived shape
  // (readers, devices, reliable streams) legitimately differs.
  if (D.Units.size() != Units.size() ||
      D.Writers.size() != Writers.size() ||
      D.Channels.size() != Channels.size() || D.Lanes != Lanes)
    return malformed();

  // Units and writers transplant by index: Machine::build creates both in
  // a placement-independent order (topological for units, program output
  // order for writers), which the topology signature pins down.
  for (size_t Index = 0; Index != Units.size(); ++Index) {
    Unit &U = Units[Index];
    UnitState &US = D.Units[Index];
    if (US.Name != U.Name || US.Streams.size() != U.Streams.size() ||
        US.CenterIndex.size() != U.CenterIndex.size())
      return malformed();
    for (size_t S = 0; S != U.Streams.size(); ++S) {
      if (US.Streams[S].Ring.size() != U.Streams[S].Ring.size())
        return malformed();
      U.Streams[S].Ring = std::move(US.Streams[S].Ring);
      U.Streams[S].WrittenElements = US.Streams[S].WrittenElements;
    }
    U.Step = US.Step;
    U.Issued = US.Issued;
    U.Emitted = US.Emitted;
    U.PipeReady.assign(US.PipeReady.begin(), US.PipeReady.end());
    U.PipeValues.assign(US.PipeValues.begin(), US.PipeValues.end());
    U.CenterIndex = std::move(US.CenterIndex);
    U.StallCycles = US.StallCycles;
    U.Stalls = US.Stalls;
    U.LastCause = static_cast<StallCause>(US.LastCause);
    // Avoid spurious watchdog trips right after the placement change.
    U.LastProgress = Snap.Cycle;
    if (US.Tier != compute::kernelEngineName(U.Eval.tier()))
      ++TierReassignedUnits;
  }

  for (size_t Index = 0; Index != Writers.size(); ++Index) {
    Writer &Wr = Writers[Index];
    WriterState &WS = D.Writers[Index];
    if (WS.Field != Wr.Field || WS.Data.size() != Wr.Data.size() ||
        WS.Index.size() != Wr.Index.size())
      return malformed();
    Wr.Data = std::move(WS.Data);
    Wr.Index = std::move(WS.Index);
    Wr.VectorsWritten = WS.VectorsWritten;
    Wr.Stalls = WS.Stalls;
    Wr.LastCause = static_cast<StallCause>(WS.LastCause);
    Wr.LastProgress = Snap.Cycle;
  }

  // Channels transplant by index too (channel creation order is
  // placement-independent), but their physical parameters changed with
  // the placement: capacities may have shrunk (a formerly-remote channel
  // lost its extra network depth) and in-flight arrival stamps belong to
  // links that no longer exist. Grow undersized channels and clamp every
  // ready cycle to the resume cycle — the data already traversed the old
  // wire; replaying the tail must not pay its latency twice.
  for (size_t Index = 0; Index != Channels.size(); ++Index) {
    Channel &C = *Channels[Index];
    const ChannelState &CS = D.Channels[Index];
    if (CS.Name != C.name())
      return malformed();
    int64_t Count = static_cast<int64_t>(CS.ReadyCycles.size());
    C.clearForRestore();
    C.ensureCapacity(Count);
    for (int64_t I = 0; I != Count; ++I)
      C.restorePush(&CS.Vectors[static_cast<size_t>(I * Lanes)],
                    std::min(CS.ReadyCycles[static_cast<size_t>(I)],
                             Snap.Cycle));
    C.restoreStats(CS.PeakOccupancy, CS.HighWater);
  }

  // Old reliable streams are flattened into their delivery channels: the
  // channel already holds the delivered-not-popped window, and the send
  // buffer holds [SendBase, NextSeq) — everything accepted from the
  // producer but not yet delivered (including vectors in flight on the
  // old wire). Appending it gives the consumer the contiguous prefix the
  // producer already accounted for (Emitted == NextSeq). If the channel
  // is still remote in the new placement its fresh stream starts at
  // sequence zero on both ends, so the protocol stays consistent; the old
  // link statistics carry over for reporting continuity.
  for (ReliableState &DS : D.Reliable) {
    if (DS.ChannelIndex >= Channels.size())
      return malformed();
    Channel &C = *Channels[DS.ChannelIndex];
    C.ensureCapacity(C.size() +
                     static_cast<int64_t>(DS.SendBuffer.size()));
    for (const std::vector<double> &Payload : DS.SendBuffer)
      C.restorePush(Payload.data(), Snap.Cycle);
    int Rel = ReliableOf[DS.ChannelIndex];
    if (Rel >= 0) {
      Reliable[static_cast<size_t>(Rel)].Stats = DS.Stats;
      Reliable[static_cast<size_t>(Rel)].PeakOutstanding =
          DS.PeakOutstanding;
    }
  }

  // Reader endpoints were regrouped by the re-partitioning: one reader
  // per (new device, field), serving whatever consumer channels now live
  // there. Each channel remembers how many vectors its old producer
  // pushed; the new reader starts at the minimum over its channels and
  // skips per-channel until the cursors even out, so no vector is
  // duplicated or lost. Stall attribution aggregates per field onto the
  // field's first new reader.
  std::map<std::string, StallBreakdown> FieldStalls;
  std::map<std::string, uint8_t> FieldCause;
  for (const ReaderState &RS : D.Readers) {
    FieldStalls[RS.Field] += RS.Stalls;
    FieldCause.emplace(RS.Field, RS.LastCause);
  }
  std::map<std::string, bool> FieldClaimed;
  for (Reader &R : Readers) {
    int64_t Minimum = std::numeric_limits<int64_t>::max();
    R.ChannelBase.assign(R.OutChannels.size(), 0);
    for (size_t I = 0; I != R.OutChannels.size(); ++I) {
      R.ChannelBase[I] = D.Channels[R.OutChannels[I]].Produced;
      Minimum = std::min(Minimum, R.ChannelBase[I]);
    }
    R.VectorsPushed = R.OutChannels.empty() ? 0 : Minimum;
    if (!FieldClaimed[R.Field]) {
      FieldClaimed[R.Field] = true;
      R.Stalls = FieldStalls[R.Field];
      auto It = FieldCause.find(R.Field);
      if (It != FieldCause.end())
        R.LastCause = static_cast<StallCause>(It->second);
    }
    R.LastProgress = Snap.Cycle;
  }

  // Globals: engine counters and transfer totals carry over; per-device
  // accounting folds lost devices onto device 0; carry-over budgets stay
  // zeroed (sub-transaction amounts — rehydration is not exactness-bound).
  EpochCount = D.EpochCount;
  SerialFallbackCount = D.SerialFallbackCount;
  RestoredSkippedCycles = D.SkippedCycles;
  SerialCtx.NetworkBytesMoved = D.NetworkBytesMoved;
  for (int64_t Device = 0; Device != D.NumDevices; ++Device) {
    size_t Dest = Device < NumDevices ? static_cast<size_t>(Device) : 0;
    if (Device < NumDevices)
      MemoryBytesMoved[Dest] =
          D.MemoryBytesMoved[static_cast<size_t>(Device)];
    else
      MemoryBytesMoved[Dest] +=
          D.MemoryBytesMoved[static_cast<size_t>(Device)];
  }
  return Error::success();
}

//===----------------------------------------------------------------------===//
// Checkpoint cadence
//===----------------------------------------------------------------------===//

void Machine::maybeCheckpoint(int64_t CompletedCycles, bool WallEligible) {
  if (Config.CheckpointDir.empty())
    return;
  if (CompletedCycles <= ResumeCycle)
    return; // Nothing beyond the restored state yet.
  bool Due = Config.CheckpointEveryCycles > 0 &&
             CompletedCycles >= NextCheckpointCycle;
  if (!Due && WallEligible && Config.CheckpointEverySeconds > 0.0) {
    std::chrono::duration<double> Elapsed =
        std::chrono::steady_clock::now() - LastCheckpointWall;
    Due = Elapsed.count() >= Config.CheckpointEverySeconds;
  }
  if (Due)
    writeCheckpoint(CompletedCycles);
}

void Machine::writeCheckpoint(int64_t CompletedCycles) {
  ::mkdir(Config.CheckpointDir.c_str(), 0755); // First write; EEXIST is fine.
  MachineSnapshot Snap = captureSnapshot(CompletedCycles);
  std::string Path =
      Config.CheckpointDir + "/" + snapshotFileName(CompletedCycles);
  if (Error Err = writeSnapshotFile(Path, Snap)) {
    // A failing checkpoint sink (disk full, permissions) must not take
    // down an otherwise healthy simulation; the failure is counted and
    // the run continues with the previous snapshot as its restart point.
    ++CheckpointFailures;
  } else {
    ++CheckpointsWritten;
    pruneSnapshots(Config.CheckpointDir, Config.CheckpointKeep);
    if (Config.CheckpointCrashAfter > 0 &&
        CheckpointsWritten >= Config.CheckpointCrashAfter)
      ::raise(SIGKILL); // Crash-consistency test hook: die *after* publish.
  }
  // Both cadences restart from this attempt, successful or not (a dead
  // sink must not retry every cycle).
  if (Config.CheckpointEveryCycles > 0)
    NextCheckpointCycle = (CompletedCycles / Config.CheckpointEveryCycles + 1) *
                          Config.CheckpointEveryCycles;
  LastCheckpointWall = std::chrono::steady_clock::now();
}
