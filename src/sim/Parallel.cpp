//===- sim/Parallel.cpp - Event-sliced parallel engine -------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel simulation engine: one shard per simulated device, stepped
/// concurrently in fixed cycle epochs whose length is bounded so that no
/// cross-device interaction can occur inside an epoch (conservative
/// lookahead). The engine is cycle- and bit-exact with the serial stepper:
///
///  - Epoch length E never exceeds the minimum cross-device wire latency,
///    so every vector pushed onto a remote stream during the epoch arrives
///    in a later epoch; producers stage such pushes and the barrier merges
///    them into the consumer-owned channel.
///  - E never exceeds the free capacity (and reliable-transport window
///    slack) of any remote channel at epoch start, so the producer's stale,
///    pop-free occupancy view provably answers every full/not-full query
///    exactly as the serial engine would (neither ever observes "full"
///    inside the epoch).
///  - Cycles that the reliable transport makes history-dependent — a
///    rewinding sender, out-of-order or corrupted transmissions about to
///    arrive — are stepped serially, one reference cycle at a time.
///  - A quiescent shard (no progress, nobody denied bandwidth) fast-forwards
///    to its next event, bulk-accounting the per-cycle stall attribution
///    that the serial engine would have recorded cycle by cycle.
///
/// See DESIGN.md ("Epoch synchronization") for the full exactness argument.
///
//===----------------------------------------------------------------------===//

#include "sim/Machine.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cassert>
#include <limits>
#include <thread>

using namespace stencilflow;
using namespace stencilflow::sim;

namespace {
constexpr int64_t Infinite = std::numeric_limits<int64_t>::max();
/// Epoch cap when no remote stream bounds the lookahead (single device):
/// bounds the per-epoch bit vectors and the merge scan.
constexpr int64_t MaxEpochLength = 4096;
} // namespace

//===----------------------------------------------------------------------===//
// Shard construction
//===----------------------------------------------------------------------===//

void Machine::buildShards() {
  Shards.assign(static_cast<size_t>(NumDevices), Shard());
  for (int Device = 0; Device != NumDevices; ++Device)
    Shards[static_cast<size_t>(Device)].Device = Device;

  // Component index lists stay ascending (push in iteration order), so a
  // shard can reproduce the serial engine's rotating arbitration order and
  // topological unit order locally.
  for (size_t Index = 0; Index != Readers.size(); ++Index)
    Shards[static_cast<size_t>(Readers[Index].Device)].ReaderIdx.push_back(
        Index);
  for (size_t Index = 0; Index != Units.size(); ++Index)
    Shards[static_cast<size_t>(Units[Index].Device)].UnitIdx.push_back(Index);
  for (size_t Index = 0; Index != Writers.size(); ++Index)
    Shards[static_cast<size_t>(Writers[Index].Device)].WriterIdx.push_back(
        Index);

  // Channels are owned by their consumer shard; remote channels are
  // additionally staged on the producer shard. Reader and writer channels
  // are always device-local by construction (asserted below), so only
  // unit-to-unit streams cross shards.
  Stages.assign(Channels.size(), ChannelStage());
  for (size_t Index = 0; Index != Channels.size(); ++Index) {
    const RemoteLink &Link = RemoteLinks[Index];
    Shards[static_cast<size_t>(Link.LastHop)].InChannels.push_back(Index);
    if (Link.FirstHop == Link.LastHop)
      continue;
    Shards[static_cast<size_t>(Link.FirstHop)].OutRemote.push_back(Index);
    Shards[static_cast<size_t>(Link.LastHop)].InRemote.push_back(Index);
    if (ReliableOf[Index] >= 0)
      Shards[static_cast<size_t>(Link.LastHop)].InReliable.push_back(
          ReliableOf[Index]);
  }
#ifndef NDEBUG
  for (const Reader &R : Readers)
    for (size_t ChannelIndex : R.OutChannels)
      assert(RemoteLinks[ChannelIndex].FirstHop == R.Device &&
             RemoteLinks[ChannelIndex].LastHop == R.Device &&
             "reader channels must be device-local");
  for (const Writer &W : Writers)
    assert(RemoteLinks[W.ChannelIndex].FirstHop ==
               RemoteLinks[W.ChannelIndex].LastHop &&
           "writer channels must be device-local");
#endif

  // Hop d connects devices d and d+1; with the single-hop restriction
  // (mustRunSerial) only producers on device d spend hop d's budget, so
  // shard d refills it. Every hop is refilled by exactly one shard every
  // epoch cycle, mirroring the serial engine's unconditional refill.
  for (int Device = 0; Device + 1 < NumDevices; ++Device)
    Shards[static_cast<size_t>(Device)].OwnedHops.push_back(
        static_cast<size_t>(Device));

  // Fault-event boundaries: the quiescence fast-forward never skips across
  // one, so the per-cycle dead/brownout refresh stays exact.
  FaultBoundaries.clear();
  DeviceFailCycle.assign(static_cast<size_t>(NumDevices), Infinite);
  if (Config.Faults) {
    for (const FaultEvent &Ev : Config.Faults->Events) {
      FaultBoundaries.push_back(Ev.StartCycle);
      if (Ev.Kind != FaultKind::DeviceFailure && Ev.EndCycle != Infinite)
        FaultBoundaries.push_back(Ev.EndCycle);
      if (Ev.Kind == FaultKind::DeviceFailure && Ev.Device >= 0 &&
          Ev.Device < NumDevices)
        DeviceFailCycle[static_cast<size_t>(Ev.Device)] =
            std::min(DeviceFailCycle[static_cast<size_t>(Ev.Device)],
                     Ev.StartCycle);
    }
    std::sort(FaultBoundaries.begin(), FaultBoundaries.end());
    FaultBoundaries.erase(
        std::unique(FaultBoundaries.begin(), FaultBoundaries.end()),
        FaultBoundaries.end());
  }

  for (Shard &S : Shards) {
    S.Ctx.HopNeeded.assign(HopBudget.size(), 0.0);
    S.AllWritersDoneCycle = S.WriterIdx.empty() ? -1 : Infinite;
  }
}

bool Machine::mustRunSerial() {
  for (const RemoteLink &Link : RemoteLinks)
    if (std::abs(Link.LastHop - Link.FirstHop) > 1) {
      EngineNote = "serial (parallel requested; multi-hop remote streams "
                   "step serially)";
      return true;
    }
  return false;
}

//===----------------------------------------------------------------------===//
// Epoch sizing
//===----------------------------------------------------------------------===//

int64_t Machine::computeEpochLength(int64_t T0) const {
  int64_t E = MaxEpochLength;

  for (const RemoteLink &Link : RemoteLinks) {
    if (Link.FirstHop == Link.LastHop)
      continue;
    const Channel &C = *Channels[Link.ChannelIndex];
    int64_t WireLatency = Config.NetworkLatencyCyclesPerHop *
                          static_cast<int64_t>(Link.LastHop - Link.FirstHop);
    int Rel = ReliableOf[Link.ChannelIndex];
    if (Rel < 0) {
      // In-epoch pushes must arrive next epoch, and the producer's stale
      // occupancy view (epoch-start size plus staged pushes, at most one
      // per cycle) must never reach the capacity — then neither the
      // staged view nor the serial engine ever observes "full" inside the
      // epoch, so the views agree on every query.
      E = std::min(E, WireLatency);
      E = std::min(E, C.capacity() - C.size());
      continue;
    }
    const ReliableStream &RS = Reliable[static_cast<size_t>(Rel)];
    // History-dependent transport state steps serially: a rewinding
    // sender retransmits via linkSend, a receiver mid-recovery NACKs, and
    // a wire carrying out-of-order (stale post-rewind) transmissions
    // delivers out of sequence — none of which the in-epoch receiver
    // models.
    if (RS.ResendNext >= 0 || RS.AttemptsOnExpected > 0)
      return 0;
    if (RS.ExpectedSeq != RS.SendBase)
      return 0;
    for (size_t K = 0; K != RS.Wire.size(); ++K)
      if (RS.Wire[K].Seq != RS.ExpectedSeq + static_cast<int64_t>(K))
        return 0;
    E = std::min(E, RS.WireLatency);
    int64_t Outstanding = RS.NextSeq - RS.SendBase;
    int64_t Occupied = Outstanding + C.size();
    // A delivery leaves outstanding + delivered-not-popped unchanged, so
    // the epoch-start sum plus staged pushes bounds both the capacity and
    // the send-window backpressure tests.
    E = std::min(E, C.capacity() - Occupied);
    E = std::min(E, Config.SendWindowVectors - Outstanding);
    // Corrupted transmissions already in flight must arrive after the
    // epoch; the serial chunk in front of them runs the full receiver.
    for (const ReliableStream::InFlight &F : RS.Wire)
      if (F.Corrupted) {
        E = std::min(E, F.ArriveCycle - T0);
        break;
      }
  }

  if (E < 1)
    return 0;

  // The watchdog samples LastProgress exactly at multiples of 256; align
  // epochs so such a cycle is always an epoch's last cycle, where the
  // merged component state equals the serial state.
  if (Config.StallTimeoutCycles > 0) {
    int64_t NextW = std::max<int64_t>(256, ((T0 + 255) / 256) * 256);
    if (NextW <= T0 + E - 1)
      E = NextW - T0 + 1;
  }

  E = std::min(E, MaxCycles - T0);
  return std::max<int64_t>(E, 0);
}

//===----------------------------------------------------------------------===//
// Epoch start
//===----------------------------------------------------------------------===//

void Machine::beginEpoch(int64_t T0, int64_t T1) {
  (void)T0;
  (void)T1;
  for (const Shard &S : Shards)
    for (size_t ChannelIndex : S.OutRemote) {
      ChannelStage &St = Stages[ChannelIndex];
      St.Active = true;
      St.PushCycles.clear();
      St.Payloads.clear();
      St.Corrupt.clear();
      St.PopCycles.clear();
      int Rel = ReliableOf[ChannelIndex];
      if (Rel < 0) {
        St.OccSnapshot = Channels[ChannelIndex]->size();
        St.OutstandingSnapshot = 0;
      } else {
        const ReliableStream &RS = Reliable[static_cast<size_t>(Rel)];
        St.OutstandingSnapshot = RS.NextSeq - RS.SendBase;
        St.OccSnapshot =
            St.OutstandingSnapshot + Channels[ChannelIndex]->size();
      }
    }
}

//===----------------------------------------------------------------------===//
// Per-shard epoch stepping
//===----------------------------------------------------------------------===//

void Machine::runShardEpoch(Shard &S, int64_t T0, int64_t T1) {
  const FaultPlan *Plan = Config.Faults;
  size_t Dev = static_cast<size_t>(S.Device);
  int64_t E = T1 - T0 + 1;
  S.ProgressBits.assign(static_cast<size_t>(E), 0);
  S.PendingBits.assign(static_cast<size_t>(E), 0);

  for (int64_t Cycle = T0; Cycle <= T1; ++Cycle) {
    // Fault state of this shard's device only (disjoint writes).
    if (Plan && !Plan->empty()) {
      Brownout[Dev] = Plan->memoryBrownoutAt(S.Device, Cycle);
      if (Cycle >= EarliestDeviceFail)
        DeadDevice[Dev] = Plan->deviceFailedAt(S.Device, Cycle);
    }
    bool Dead = Plan && DeadDevice[Dev] != 0;

    // Budget refill for the owned device and hops, with the serial
    // engine's per-cycle formulas.
    int ActiveR = 0, ActiveW = 0;
    for (size_t Index : S.ReaderIdx)
      if (Readers[Index].VectorsPushed != Readers[Index].TotalVectors &&
          !Dead)
        ++ActiveR;
    for (size_t Index : S.WriterIdx)
      if (Writers[Index].VectorsWritten != Writers[Index].TotalVectors &&
          !Dead)
        ++ActiveW;
    refillDeviceBudgets(Dev, Cycle, ActiveR, ActiveW);
    for (size_t Hop : S.OwnedHops)
      refillHopBudget(Hop, Cycle);
    S.Ctx.BandwidthWait = false;

    // Receiver step for reliable streams delivered on this device. Epoch
    // sizing guarantees every arrival in [T0, T1] is clean and in order,
    // so this is the exact fault-free slice of linkReceive.
    for (int Rel : S.InReliable) {
      ReliableStream &RS = Reliable[static_cast<size_t>(Rel)];
      Channel &Delivery = *Channels[RS.ChannelIndex];
      while (!RS.Wire.empty() && RS.Wire.front().ArriveCycle <= Cycle) {
        assert(!RS.Wire.front().Corrupted &&
               RS.Wire.front().Seq == RS.ExpectedSeq &&
               "epoch admitted a non-clean arrival");
        RS.Wire.pop_front();
        Delivery.push(RS.SendBuffer.front().data(), Cycle);
        RS.SendBuffer.pop_front();
        ++RS.ExpectedSeq;
        ++RS.SendBase;
        ++RS.Stats.Delivered;
      }
    }

    if (!Config.UnconstrainedMemory &&
        Config.ArbitrationPenaltyBytesPerEndpoint > 0.0)
      applyArbitrationPenalty(Dev, ActiveR, ActiveW);

    // Components, in the serial engine's order: readers (rotating), units
    // (topological), writers (rotating). The rotation offset is defined
    // over the *global* component array; the sorted local index lists
    // reproduce the relative order by starting at the first local index
    // >= offset and wrapping.
    bool Progress = false;
    if (!S.ReaderIdx.empty() && !Dead) {
      size_t Offset = static_cast<size_t>(Cycle) % Readers.size();
      auto Start = std::lower_bound(S.ReaderIdx.begin(), S.ReaderIdx.end(),
                                    Offset);
      auto StepOne = [&](size_t Index) {
        if (stepReader(Readers[Index], Cycle, S.Ctx)) {
          Readers[Index].LastProgress = Cycle;
          Progress = true;
        }
      };
      for (auto It = Start; It != S.ReaderIdx.end(); ++It)
        StepOne(*It);
      for (auto It = S.ReaderIdx.begin(); It != Start; ++It)
        StepOne(*It);
    }
    if (!Dead)
      for (size_t Index : S.UnitIdx)
        if (stepUnit(Units[Index], Cycle, S.Ctx)) {
          Units[Index].LastProgress = Cycle;
          Progress = true;
        }
    if (!S.WriterIdx.empty() && !Dead) {
      size_t Offset = static_cast<size_t>(Cycle) % Writers.size();
      auto Start = std::lower_bound(S.WriterIdx.begin(), S.WriterIdx.end(),
                                    Offset);
      auto StepOne = [&](size_t Index) {
        if (stepWriter(Writers[Index], Cycle, S.Ctx)) {
          Writers[Index].LastProgress = Cycle;
          Progress = true;
        }
      };
      for (auto It = Start; It != S.WriterIdx.end(); ++It)
        StepOne(*It);
      for (auto It = S.WriterIdx.begin(); It != Start; ++It)
        StepOne(*It);
    }

    if (S.AllWritersDoneCycle == Infinite) {
      bool Done = true;
      for (size_t Index : S.WriterIdx)
        Done &= Writers[Index].VectorsWritten == Writers[Index].TotalVectors;
      if (Done)
        S.AllWritersDoneCycle = Cycle;
    }

    // Shard-local slice of the serial engine's progress/pending facts.
    // Producer-staged pushes count as pending here (the consumer cannot
    // see them yet); everything else mirrors the serial checks.
    bool Pending = S.Ctx.BandwidthWait;
    if (!Pending)
      for (size_t ChannelIndex : S.InRemote)
        if (Channels[ChannelIndex]->hasPendingArrival(Cycle)) {
          Pending = true;
          break;
        }
    if (!Pending)
      for (size_t Index : S.UnitIdx) {
        const Unit &U = Units[Index];
        if (!U.PipeReady.empty() && U.PipeReady.front() > Cycle) {
          Pending = true;
          break;
        }
      }
    if (!Pending)
      for (int Rel : S.InReliable)
        if (!Reliable[static_cast<size_t>(Rel)].Wire.empty()) {
          Pending = true;
          break;
        }
    if (!Pending)
      for (size_t ChannelIndex : S.OutRemote)
        if (!Stages[ChannelIndex].PushCycles.empty()) {
          Pending = true;
          break;
        }
    S.ProgressBits[static_cast<size_t>(Cycle - T0)] = Progress;
    S.PendingBits[static_cast<size_t>(Cycle - T0)] = Pending;

    if (Progress || S.Ctx.BandwidthWait || Cycle == T1)
      continue;

    // Quiescence fast-forward: with no progress and nobody waiting on
    // bandwidth, the shard's state is frozen until its next event — the
    // earliest in-flight arrival, pipeline maturation, or reliable-wire
    // arrival. The skip stops at fault boundaries (dead/brownout flags
    // and the accrual set change there) and at the epoch end.
    int64_t NextEvent = Infinite;
    for (size_t ChannelIndex : S.InRemote) {
      const Channel &C = *Channels[ChannelIndex];
      if (C.hasPendingArrival(Cycle))
        NextEvent = std::min(NextEvent, C.nextReadyCycle());
    }
    for (size_t Index : S.UnitIdx) {
      const Unit &U = Units[Index];
      if (!U.PipeReady.empty() && U.PipeReady.front() > Cycle)
        NextEvent = std::min(NextEvent, U.PipeReady.front());
    }
    for (int Rel : S.InReliable) {
      const ReliableStream &RS = Reliable[static_cast<size_t>(Rel)];
      if (!RS.Wire.empty())
        NextEvent = std::min(NextEvent, RS.Wire.front().ArriveCycle);
    }
    int64_t Wake = std::min(NextEvent, T1 + 1);
    auto Boundary = std::upper_bound(FaultBoundaries.begin(),
                                     FaultBoundaries.end(), Cycle);
    if (Boundary != FaultBoundaries.end())
      Wake = std::min(Wake, *Boundary);
    int64_t Skipped = Wake - (Cycle + 1);
    if (Skipped <= 0)
      continue;

    // Bulk-account the skipped cycles: exact per-cycle budget refills
    // (brownout/link factors are cycle-dependent), one stall per
    // unfinished non-dead component per cycle with the cause the frozen
    // state pins, and the frozen progress/pending bits.
    for (int64_t C = Cycle + 1; C != Wake; ++C) {
      refillDeviceBudgets(Dev, C, ActiveR, ActiveW);
      for (size_t Hop : S.OwnedHops)
        refillHopBudget(Hop, C);
      if (!Config.UnconstrainedMemory &&
          Config.ArbitrationPenaltyBytesPerEndpoint > 0.0)
        applyArbitrationPenalty(Dev, ActiveR, ActiveW);
    }
    if (!Dead) {
      for (size_t Index : S.ReaderIdx) {
        Reader &R = Readers[Index];
        if (R.VectorsPushed != R.TotalVectors)
          R.Stalls.Counts[static_cast<int>(R.LastCause)] += Skipped;
      }
      for (size_t Index : S.UnitIdx) {
        Unit &U = Units[Index];
        if (U.Emitted != U.StreamVectors) {
          U.StallCycles += Skipped;
          U.Stalls.Counts[static_cast<int>(U.LastCause)] += Skipped;
        }
      }
      for (size_t Index : S.WriterIdx) {
        Writer &W = Writers[Index];
        if (W.VectorsWritten != W.TotalVectors)
          W.Stalls.Counts[static_cast<int>(W.LastCause)] += Skipped;
      }
    }
    uint8_t FrozenPending = Pending || NextEvent != Infinite;
    for (int64_t C = Cycle + 1; C != Wake; ++C)
      S.PendingBits[static_cast<size_t>(C - T0)] = FrozenPending;
    S.SkippedCycles += Skipped;
    Cycle = Wake - 1; // Resumes at Wake.
  }
}

//===----------------------------------------------------------------------===//
// Epoch merge
//===----------------------------------------------------------------------===//

Machine::StepOutcome Machine::mergeEpoch(int64_t T0, int64_t T1,
                                         int64_t &FinalCycles,
                                         SimFailure &Failure) {
  const FaultPlan *Plan = Config.Faults;

  // Merge every staged cross-shard channel: append the staged pushes (they
  // mature next epoch), and replay the interleaved push/pop trajectory
  // from the epoch-start snapshot to recover the serial engine's exact
  // peak-occupancy samples. Pushes sort before pops at equal cycles
  // because the producing unit is topologically earlier than the
  // consuming one; peaks are sampled at pushes, as the serial push does.
  for (const Shard &S : Shards)
    for (size_t ChannelIndex : S.OutRemote) {
      ChannelStage &St = Stages[ChannelIndex];
      Channel &C = *Channels[ChannelIndex];
      size_t Pushes = St.PushCycles.size();
      int Rel = ReliableOf[ChannelIndex];
      if (Rel < 0) {
        size_t PI = 0, QI = 0;
        int64_t Occ = St.OccSnapshot;
        while (PI != Pushes || QI != St.PopCycles.size()) {
          if (PI != Pushes &&
              (QI == St.PopCycles.size() ||
               St.PushCycles[PI] <= St.PopCycles[QI])) {
            C.pushStaged(&St.Payloads[PI * static_cast<size_t>(Lanes)],
                         St.PushCycles[PI]);
            C.notePeakOccupancy(++Occ);
            ++PI;
          } else {
            --Occ;
            ++QI;
          }
        }
      } else {
        ReliableStream &RS = Reliable[static_cast<size_t>(Rel)];
        int64_t StartSeq = RS.NextSeq - static_cast<int64_t>(Pushes);
        size_t PI = 0, QI = 0;
        int64_t Occ = St.OccSnapshot;
        while (PI != Pushes || QI != St.PopCycles.size()) {
          if (PI != Pushes &&
              (QI == St.PopCycles.size() ||
               St.PushCycles[PI] <= St.PopCycles[QI])) {
            const double *Payload =
                &St.Payloads[PI * static_cast<size_t>(Lanes)];
            RS.SendBuffer.emplace_back(Payload, Payload + Lanes);
            RS.Wire.push_back({StartSeq + static_cast<int64_t>(PI),
                               St.PushCycles[PI] + RS.WireLatency,
                               St.Corrupt[PI] != 0});
            RS.PeakOutstanding = std::max(RS.PeakOutstanding, ++Occ);
            ++PI;
          } else {
            --Occ;
            ++QI;
          }
        }
      }
      St.Active = false;
      St.PushCycles.clear();
      St.Payloads.clear();
      St.Corrupt.clear();
      St.PopCycles.clear();
    }

  // Global per-cycle scan over the combined shard facts, in the serial
  // order: completion first, then the deadlock check, then (at the
  // aligned epoch end) the watchdog.
  int64_t DoneCycle = -1;
  for (const Shard &S : Shards)
    DoneCycle = std::max(DoneCycle, S.AllWritersDoneCycle);

  auto Rollback = [&](int64_t AbortCycle) {
    // The serial engine would have stopped at AbortCycle; every stall the
    // shards accrued past it must be withdrawn. A global no-progress,
    // no-pending cycle freezes every shard for the rest of the epoch
    // (nothing can mature, nobody is owed bandwidth), so each unfinished
    // non-dead component accrued exactly one stall of its frozen LastCause
    // per overrun cycle — dead devices stopped accruing at failure time.
    auto OverrunFor = [&](int Device) {
      int64_t Stop = T1;
      if (Plan)
        Stop = std::min(Stop, DeviceFailCycle[static_cast<size_t>(Device)] - 1);
      return std::max<int64_t>(0, Stop - AbortCycle);
    };
    for (Reader &R : Readers)
      if (R.VectorsPushed != R.TotalVectors)
        R.Stalls.Counts[static_cast<int>(R.LastCause)] -= OverrunFor(R.Device);
    for (Unit &U : Units)
      if (U.Emitted != U.StreamVectors) {
        int64_t K = OverrunFor(U.Device);
        U.StallCycles -= K;
        U.Stalls.Counts[static_cast<int>(U.LastCause)] -= K;
      }
    for (Writer &W : Writers)
      if (W.VectorsWritten != W.TotalVectors)
        W.Stalls.Counts[static_cast<int>(W.LastCause)] -= OverrunFor(W.Device);
  };

  for (int64_t Cycle = T0; Cycle <= T1; ++Cycle) {
    if (DoneCycle >= 0 && Cycle >= DoneCycle) {
      FinalCycles = DoneCycle + 1;
      return StepOutcome::Finished;
    }
    size_t Bit = static_cast<size_t>(Cycle - T0);
    bool Progress = false, Pending = false;
    for (const Shard &S : Shards) {
      Progress |= S.ProgressBits[Bit] != 0;
      Pending |= S.PendingBits[Bit] != 0;
    }
    if (!Progress && !Pending) {
      Rollback(Cycle);
      ErrorCode Code = Plan && Plan->firstFailedDevice(Cycle) >= 0
                           ? ErrorCode::DeviceLost
                           : ErrorCode::Deadlock;
      Failure = abortRun(Code, Cycle);
      return StepOutcome::Failed;
    }
  }

  // Watchdog: epoch sizing aligned multiples of 256 to epoch ends, where
  // the merged LastProgress values equal the serial engine's.
  if (Config.StallTimeoutCycles > 0 && T1 != 0 && T1 % 256 == 0) {
    bool Starved = false;
    for (const Reader &R : Readers)
      Starved |= R.VectorsPushed != R.TotalVectors &&
                 T1 - R.LastProgress > Config.StallTimeoutCycles;
    for (const Unit &U : Units)
      Starved |= U.Emitted != U.StreamVectors &&
                 T1 - U.LastProgress > Config.StallTimeoutCycles;
    for (const Writer &W : Writers)
      Starved |= W.VectorsWritten != W.TotalVectors &&
                 T1 - W.LastProgress > Config.StallTimeoutCycles;
    if (Starved) {
      ErrorCode Code = Plan && Plan->firstFailedDevice(T1) >= 0
                           ? ErrorCode::DeviceLost
                           : ErrorCode::Starvation;
      Failure = abortRun(Code, T1);
      return StepOutcome::Failed;
    }
  }
  return StepOutcome::Running;
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

Machine::StepOutcome Machine::runParallelLoop(int64_t &FinalCycles,
                                              SimFailure &Failure) {
  if (Shards.size() != static_cast<size_t>(NumDevices))
    buildShards();
  EngineNote = simEngineName(SimEngine::Parallel);

  int Hardware = static_cast<int>(std::thread::hardware_concurrency());
  int NumWorkers = Config.Threads > 0 ? Config.Threads
                                      : std::max(Hardware, 1);
  NumWorkers = std::min<int>(NumWorkers, static_cast<int>(Shards.size()));

  // Persistent worker pool: one start and one end barrier per epoch. The
  // shard-to-worker assignment is fixed, but any assignment produces the
  // same result — shards only read and write disjoint state between
  // barriers, so the simulation is deterministic across thread counts.
  std::atomic<bool> PoolExit{false};
  int64_t EpochT0 = 0, EpochT1 = 0;
  std::vector<std::thread> Workers;
  std::barrier<> StartBar(NumWorkers > 1 ? NumWorkers + 1 : 1);
  std::barrier<> EndBar(NumWorkers > 1 ? NumWorkers + 1 : 1);
  if (NumWorkers > 1)
    for (int W = 0; W != NumWorkers; ++W)
      Workers.emplace_back([this, W, NumWorkers, &StartBar, &EndBar,
                            &PoolExit, &EpochT0, &EpochT1] {
        while (true) {
          StartBar.arrive_and_wait();
          if (PoolExit.load(std::memory_order_relaxed))
            return;
          for (size_t Index = static_cast<size_t>(W); Index < Shards.size();
               Index += static_cast<size_t>(NumWorkers))
            runShardEpoch(Shards[Index], EpochT0, EpochT1);
          EndBar.arrive_and_wait();
        }
      });

  StepOutcome Outcome = StepOutcome::Running;
  int64_t T0 = ResumeCycle;
  while (Outcome == StepOutcome::Running) {
    // T0 is always an epoch (or serial-fallback cycle) boundary, where
    // shard state is globally consistent — the only points a snapshot is
    // legal under this engine.
    maybeCheckpoint(T0, /*WallEligible=*/true);
    if (T0 >= MaxCycles) {
      Failure = abortRun(ErrorCode::CycleLimit, T0);
      Outcome = StepOutcome::Failed;
      break;
    }
    int64_t E = computeEpochLength(T0);
    if (E < 1) {
      // Reference chunk: one serial cycle restores exactness wherever the
      // transport state is history-dependent or a channel is out of slack.
      Outcome = stepCycleSerial(T0, Failure);
      ++SerialFallbackCount;
      if (Outcome == StepOutcome::Finished)
        FinalCycles = T0 + 1;
      ++T0;
      continue;
    }
    int64_t T1 = T0 + E - 1;
    beginEpoch(T0, T1);
    if (NumWorkers > 1) {
      EpochT0 = T0;
      EpochT1 = T1;
      StartBar.arrive_and_wait();
      EndBar.arrive_and_wait();
    } else {
      for (Shard &S : Shards)
        runShardEpoch(S, T0, T1);
    }
    ++EpochCount;
    Outcome = mergeEpoch(T0, T1, FinalCycles, Failure);
    T0 = T1 + 1;
  }

  if (NumWorkers > 1) {
    PoolExit.store(true, std::memory_order_relaxed);
    StartBar.arrive_and_wait();
    for (std::thread &W : Workers)
      W.join();
  }
  return Outcome;
}
