//===- sim/Trace.cpp - Simulation observability --------------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Trace.h"

#include "sim/Machine.h"
#include "support/JsonWriter.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>

#include <fcntl.h>
#include <unistd.h>

using namespace stencilflow;
using namespace stencilflow::sim;

//===----------------------------------------------------------------------===//
// Stall causes
//===----------------------------------------------------------------------===//

const char *sim::stallCauseName(StallCause Cause) {
  switch (Cause) {
  case StallCause::InputStarved:
    return "input-starved";
  case StallCause::OutputBlocked:
    return "output-blocked";
  case StallCause::MemoryDenied:
    return "memory-denied";
  case StallCause::NetworkDenied:
    return "network-denied";
  case StallCause::PipelineLatency:
    return "pipeline-latency";
  }
  return "unknown";
}

StallCause StallBreakdown::dominant() const {
  int Best = NumStallCauses - 1;
  for (int Cause = 0; Cause != NumStallCauses; ++Cause)
    if (Counts[Cause] > Counts[Best])
      Best = Cause;
  return static_cast<StallCause>(Best);
}

//===----------------------------------------------------------------------===//
// Tracer recording
//===----------------------------------------------------------------------===//

Tracer::Tracer(int64_t SampleStride)
    : SampleStride(std::max<int64_t>(1, SampleStride)) {}

void Tracer::clear() {
  Tracks.clear();
  Counters.clear();
  Intervals.clear();
  Samples.clear();
  StateNames.clear();
  StateIndex.clear();
  FinalCycle = 0;
}

int Tracer::addTrack(std::string Name, int Device) {
  Track T;
  T.Name = std::move(Name);
  T.Device = Device;
  Tracks.push_back(std::move(T));
  return static_cast<int>(Tracks.size()) - 1;
}

int Tracer::addCounter(std::string Name, int Device, std::string Series) {
  Counter C;
  C.Name = std::move(Name);
  C.Device = Device;
  C.Series = std::move(Series);
  Counters.push_back(std::move(C));
  return static_cast<int>(Counters.size()) - 1;
}

int Tracer::internState(std::string_view State) {
  auto It = StateIndex.find(State);
  if (It != StateIndex.end())
    return It->second;
  int Index = static_cast<int>(StateNames.size());
  StateNames.emplace_back(State);
  StateIndex.emplace(StateNames.back(), Index);
  return Index;
}

void Tracer::setState(int TrackId, int64_t Cycle, std::string_view State) {
  assert(TrackId >= 0 &&
         TrackId < static_cast<int>(Tracks.size()) && "unknown track");
  Track &T = Tracks[static_cast<size_t>(TrackId)];
  int StateId = internState(State);
  if (T.Open && T.State == StateId)
    return;
  if (T.Open && Cycle > T.Since)
    Intervals.push_back({TrackId, T.State, T.Since, Cycle});
  T.State = StateId;
  T.Since = Cycle;
  T.Open = true;
}

void Tracer::sample(int CounterId, int64_t Cycle, double Value) {
  assert(CounterId >= 0 &&
         CounterId < static_cast<int>(Counters.size()) && "unknown counter");
  Samples.push_back({CounterId, Cycle, Value});
}

void Tracer::finish(int64_t Cycle) {
  FinalCycle = Cycle;
  for (size_t TrackId = 0; TrackId != Tracks.size(); ++TrackId) {
    Track &T = Tracks[TrackId];
    if (T.Open && Cycle > T.Since)
      Intervals.push_back(
          {static_cast<int>(TrackId), T.State, T.Since, Cycle});
    T.Open = false;
  }
}

//===----------------------------------------------------------------------===//
// Chrome trace-event export
//===----------------------------------------------------------------------===//

std::string Tracer::chromeTraceJson() const {
  std::string Out;
  Out.reserve(128 + 96 * (Intervals.size() + Samples.size()));
  json::JsonWriter W(Out);
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();

  // Process metadata: one "process" per simulated device.
  std::set<int> Devices;
  for (const Track &T : Tracks)
    Devices.insert(T.Device);
  for (const Counter &C : Counters)
    Devices.insert(C.Device);
  for (int Device : Devices) {
    W.beginObject();
    W.attribute("ph", "M");
    W.attribute("name", "process_name");
    W.attribute("pid", Device);
    W.attribute("tid", 0);
    W.key("args");
    W.beginObject();
    W.attribute("name", formatString("device %d", Device));
    W.endObject();
    W.endObject();
  }

  // Thread metadata: one "thread" per timeline track. tid 0 is reserved
  // for the process row, so tracks start at 1.
  for (size_t TrackId = 0; TrackId != Tracks.size(); ++TrackId) {
    const Track &T = Tracks[TrackId];
    W.beginObject();
    W.attribute("ph", "M");
    W.attribute("name", "thread_name");
    W.attribute("pid", T.Device);
    W.attribute("tid", static_cast<int64_t>(TrackId) + 1);
    W.key("args");
    W.beginObject();
    W.attribute("name", T.Name);
    W.endObject();
    W.endObject();
    W.beginObject();
    W.attribute("ph", "M");
    W.attribute("name", "thread_sort_index");
    W.attribute("pid", T.Device);
    W.attribute("tid", static_cast<int64_t>(TrackId) + 1);
    W.key("args");
    W.beginObject();
    W.attribute("sort_index", static_cast<int64_t>(TrackId));
    W.endObject();
    W.endObject();
  }

  // State intervals as complete ("X") events; 1 cycle = 1 microsecond.
  for (const Interval &I : Intervals) {
    const Track &T = Tracks[static_cast<size_t>(I.Track)];
    W.beginObject();
    W.attribute("ph", "X");
    W.attribute("name",
                StateNames[static_cast<size_t>(I.State)]);
    W.attribute("cat", "sim");
    W.attribute("ts", I.Start);
    W.attribute("dur", I.End - I.Start);
    W.attribute("pid", T.Device);
    W.attribute("tid", static_cast<int64_t>(I.Track) + 1);
    W.endObject();
  }

  // Counter ("C") samples.
  for (const Sample &S : Samples) {
    const Counter &C = Counters[static_cast<size_t>(S.Counter)];
    W.beginObject();
    W.attribute("ph", "C");
    W.attribute("name", C.Name);
    W.attribute("ts", S.Cycle);
    W.attribute("pid", C.Device);
    W.key("args");
    W.beginObject();
    W.attribute(C.Series, S.Value);
    W.endObject();
    W.endObject();
  }

  W.endArray();
  W.attribute("displayTimeUnit", "ms");
  W.key("otherData");
  W.beginObject();
  W.attribute("generator", "stencilflow-sim");
  W.attribute("cycles", FinalCycle);
  W.attribute("sampleStride", SampleStride);
  W.attribute("timeUnit", "1 cycle = 1 us");
  W.endObject();
  W.endObject();
  assert(W.complete() && "unbalanced trace document");
  return Out;
}

Error Tracer::writeChromeTrace(const std::string &Path) const {
  return writeTextFileAtomic(Path, chromeTraceJson());
}

//===----------------------------------------------------------------------===//
// Metrics CSV
//===----------------------------------------------------------------------===//

namespace {

void csvNumber(std::string &Out, double Value) {
  if (std::isfinite(Value) && Value == std::floor(Value) &&
      std::fabs(Value) < 1e15)
    Out += formatString("%lld", static_cast<long long>(Value));
  else
    Out += formatString("%.6g", Value);
}

void csvRow(std::string &Out, const char *Section, const std::string &Name,
            const std::string &Metric, double Value) {
  Out += Section;
  Out += ',';
  Out += Name;
  Out += ',';
  Out += Metric;
  Out += ',';
  csvNumber(Out, Value);
  Out += '\n';
}

void csvBreakdown(std::string &Out, const char *Section,
                  const std::string &Name, const StallBreakdown &Stalls) {
  csvRow(Out, Section, Name, "stall_cycles",
         static_cast<double>(Stalls.total()));
  for (int Cause = 0; Cause != NumStallCauses; ++Cause)
    csvRow(Out, Section, Name,
           formatString("stall.%s", stallCauseName(
                                        static_cast<StallCause>(Cause))),
           static_cast<double>(Stalls.Counts[Cause]));
}

} // namespace

std::string sim::formatMetricsCsv(const SimStats &Stats) {
  std::string Out = "section,name,metric,value\n";
  csvRow(Out, "sim", "total", "cycles",
         static_cast<double>(Stats.Cycles));
  csvRow(Out, "sim", "total", "network_bytes", Stats.NetworkBytesMoved);
  for (size_t Device = 0; Device != Stats.MemoryBytesMoved.size();
       ++Device) {
    std::string Name = formatString("%zu", Device);
    csvRow(Out, "device", Name, "memory_bytes",
           Stats.MemoryBytesMoved[Device]);
    csvRow(Out, "device", Name, "memory_bytes_per_cycle",
           Stats.AchievedMemoryBytesPerCycle[Device]);
  }
  for (const auto &[Name, Stalls] : Stats.UnitStalls)
    csvBreakdown(Out, "unit", Name, Stalls);
  for (const auto &[Name, Stalls] : Stats.ReaderStalls)
    csvBreakdown(Out, "reader", Name, Stalls);
  for (const auto &[Name, Stalls] : Stats.WriterStalls)
    csvBreakdown(Out, "writer", Name, Stalls);
  for (const auto &[Name, HighWater] : Stats.ChannelHighWater) {
    csvRow(Out, "channel", Name, "high_water",
           static_cast<double>(HighWater));
    auto Peak = Stats.ChannelPeakOccupancy.find(Name);
    if (Peak != Stats.ChannelPeakOccupancy.end())
      csvRow(Out, "channel", Name, "peak_occupancy",
             static_cast<double>(Peak->second));
    auto Capacity = Stats.ChannelCapacity.find(Name);
    if (Capacity != Stats.ChannelCapacity.end())
      csvRow(Out, "channel", Name, "capacity",
             static_cast<double>(Capacity->second));
  }
  return Out;
}

Error sim::writeTextFile(const std::string &Path, std::string_view Text) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return makeError("cannot open '" + Path + "' for writing: " +
                     std::strerror(errno));
  // The stream must be closed on every path — a short fwrite must not
  // leak the FILE*, and fclose can itself fail when buffered bytes hit
  // a full disk at flush time.
  errno = 0;
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), File);
  int WriteErrno = errno;
  errno = 0;
  bool CloseOk = std::fclose(File) == 0;
  if (Written != Text.size() || !CloseOk) {
    int Cause = Written != Text.size() ? WriteErrno : errno;
    return makeError("failed to write '" + Path + "'" +
                     (Cause ? std::string(": ") + std::strerror(Cause)
                            : std::string()));
  }
  return Error::success();
}

Error sim::writeTextFileAtomic(const std::string &Path,
                               std::string_view Text) {
  // The temp file lives in the target's directory so the final rename
  // stays within one filesystem (rename across mounts is a copy, not an
  // atomic replace). The pid suffix keeps concurrent writers from
  // clobbering each other's staging files.
  std::string Temp =
      Path + formatString(".tmp.%ld", static_cast<long>(::getpid()));
  int Fd = ::open(Temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return makeError("cannot open '" + Temp + "' for writing: " +
                     std::strerror(errno));
  const char *Data = Text.data();
  size_t Left = Text.size();
  bool WriteOk = true;
  int WriteErrno = 0;
  while (Left > 0) {
    ssize_t N = ::write(Fd, Data, Left);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      WriteOk = false;
      WriteErrno = errno;
      break;
    }
    Data += N;
    Left -= static_cast<size_t>(N);
  }
  // fsync before rename: the rename must never become visible while the
  // data behind it is still only in the page cache.
  if (WriteOk && ::fsync(Fd) != 0) {
    WriteOk = false;
    WriteErrno = errno;
  }
  bool CloseOk = ::close(Fd) == 0;
  if (!WriteOk || !CloseOk) {
    int Cause = WriteOk ? errno : WriteErrno;
    ::unlink(Temp.c_str());
    return makeError("failed to write '" + Temp + "'" +
                     (Cause ? std::string(": ") + std::strerror(Cause)
                            : std::string()));
  }
  if (::rename(Temp.c_str(), Path.c_str()) != 0) {
    int Cause = errno;
    ::unlink(Temp.c_str());
    return makeError("failed to rename '" + Temp + "' to '" + Path +
                     "': " + std::strerror(Cause));
  }
  return Error::success();
}
