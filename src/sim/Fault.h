//===- sim/Fault.h - Deterministic fault injection ----------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulator's fault model. Deployments of distributed FPGA fabrics
/// (paper Sec. III-B, VI-B; cf. the FPGA-stack related work in PAPERS.md)
/// must survive flaky links, memory brownouts and node loss; this file
/// provides the deterministic, seeded \c FaultPlan that schedules such
/// events against a simulation, and the structured \c FailureReport the
/// simulator produces when a run cannot complete.
///
/// Everything is reproducible: payload corruption is decided by a counter-
/// based PRNG keyed on (plan seed, channel, sequence number, transmission
/// nonce), so the same plan against the same program produces the same
/// faults — and the same recovery — every run.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SIM_FAULT_H
#define STENCILFLOW_SIM_FAULT_H

#include "sim/Trace.h"
#include "support/Error.h"
#include "support/Json.h"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace stencilflow {
namespace sim {

//===----------------------------------------------------------------------===//
// Fault plan
//===----------------------------------------------------------------------===//

/// The kinds of scheduled fault events.
enum class FaultKind : uint8_t {
  /// Transient bandwidth loss on one inter-device hop: the per-cycle link
  /// budget is multiplied by \c Factor over the window.
  LinkDegrade,
  /// Complete link outage over the window (Factor is ignored; treated as
  /// zero bandwidth).
  LinkOutage,
  /// Memory brownout: the device's peak DRAM bytes/cycle are multiplied
  /// by \c Factor over the window. Overrides UnconstrainedMemory while
  /// active.
  MemoryBrownout,
  /// Each vector transmitted on a matching remote stream during the
  /// window is corrupted in flight with probability \c Probability.
  PayloadCorruption,
  /// Permanent device failure at \c StartCycle: every component on the
  /// device stops forever (EndCycle is ignored).
  DeviceFailure,
};

constexpr int NumFaultKinds = static_cast<int>(FaultKind::DeviceFailure) + 1;

/// Stable kebab-case name, e.g. "memory-brownout".
const char *faultKindName(FaultKind Kind);

/// Inverse of \c faultKindName.
std::optional<FaultKind> faultKindFromName(std::string_view Name);

/// One scheduled fault. Fields are interpreted per \c FaultKind; unused
/// fields keep their defaults.
struct FaultEvent {
  FaultKind Kind = FaultKind::LinkDegrade;

  /// Active over cycles [StartCycle, EndCycle). DeviceFailure is
  /// permanent from StartCycle on.
  int64_t StartCycle = 0;
  int64_t EndCycle = std::numeric_limits<int64_t>::max();

  /// Target device (MemoryBrownout, DeviceFailure).
  int Device = 0;

  /// Target hop for link faults; -1 matches every hop. PayloadCorruption
  /// matches any hop a remote stream crosses.
  int Hop = -1;

  /// Bandwidth multiplier in [0, 1] (LinkDegrade, MemoryBrownout).
  double Factor = 0.5;

  /// Per-transmission corruption probability (PayloadCorruption).
  double Probability = 0.0;

  bool activeAt(int64_t Cycle) const {
    return Cycle >= StartCycle &&
           (Kind == FaultKind::DeviceFailure || Cycle < EndCycle);
  }
};

/// A deterministic, seeded schedule of fault events, hung off
/// \c SimConfig::Faults. An attached plan — even an empty one — also
/// switches every inter-device stream to the reliable transport
/// (sequence numbers, checksums, bounded retransmit).
struct FaultPlan {
  /// Seeds the corruption PRNG; two plans with the same events but
  /// different seeds corrupt different vectors.
  uint64_t Seed = 0;

  std::vector<FaultEvent> Events;

  bool empty() const { return Events.empty(); }

  /// Basic consistency checks (windows ordered, factors in [0,1], ...).
  Error validate() const;

  //===--------------------------------------------------------------------===//
  // Per-cycle queries (used by the simulator's refill/step loops)
  //===--------------------------------------------------------------------===//

  /// Product of the active brownout factors for \p Device.
  double memoryFactor(int Device, int64_t Cycle) const;

  /// True if any brownout is active for \p Device at \p Cycle.
  bool memoryBrownoutAt(int Device, int64_t Cycle) const;

  /// Product of the active degrade/outage factors for \p Hop (0.0 during
  /// an outage).
  double linkFactor(int Hop, int64_t Cycle) const;

  /// Decides whether the transmission of vector \p Seq (attempt nonce
  /// \p Nonce) on channel \p Channel crossing hops [FirstHop, LastHop) is
  /// corrupted in flight at \p Cycle. Deterministic in all arguments.
  bool corruptsTransmission(int64_t Cycle, size_t Channel, int64_t Seq,
                            uint64_t Nonce, int FirstHop, int LastHop) const;

  /// True once \p Device has permanently failed at or before \p Cycle.
  bool deviceFailedAt(int Device, int64_t Cycle) const;

  /// Lowest-numbered device that has failed at or before \p Cycle, or -1.
  int firstFailedDevice(int64_t Cycle) const;

  /// Cycle of the earliest DeviceFailure event, or INT64_MAX when none.
  int64_t earliestDeviceFailure() const;

  //===--------------------------------------------------------------------===//
  // Serialization (the --fault-plan <json> format)
  //===--------------------------------------------------------------------===//

  /// {"seed": N, "events": [{"kind": "...", "start": N, "end": N,
  ///  "device": N, "hop": N, "factor": X, "probability": X}, ...]}
  /// Absent fields keep their defaults; "end" is exclusive.
  json::Value toJson() const;
  static Expected<FaultPlan> fromJson(const json::Value &V);

  /// Parses a plan from JSON text (convenience for CLI drivers).
  static Expected<FaultPlan> fromJsonText(std::string_view Text);
};

//===----------------------------------------------------------------------===//
// Structured failure reports
//===----------------------------------------------------------------------===//

/// State of one stuck component at failure time.
struct FailureComponent {
  std::string Name;
  std::string Kind; ///< "unit", "reader" or "writer".
  int Device = 0;
  /// Dominant attributed stall cause (the PR-1 counters).
  StallCause Cause = StallCause::PipelineLatency;
  int64_t StallCycles = 0;
  /// Vectors completed vs. expected.
  int64_t Progress = 0;
  int64_t Total = 0;
};

/// State of one channel adjacent to a stuck component at failure time.
struct FailureChannel {
  std::string Name;
  /// Occupancy visible to the consumer (excludes in-flight vectors).
  int64_t Occupancy = 0;
  int64_t Capacity = 0;
  bool Full = false;
};

/// A machine-readable description of why a simulation failed: the error
/// class, the cycle, the most-stalled component with its attributed stall
/// cause, and the occupancy of every channel adjacent to a stuck
/// component. Produced by \c Machine::run on every failure path and
/// carried by the returned \c SimFailure (rendered into its message) for
/// recovery policies and JSON export.
struct FailureReport {
  ErrorCode Code = ErrorCode::Unknown;
  int64_t Cycle = 0;

  /// The most-stalled unfinished component and its dominant cause.
  std::string Component;
  StallCause DominantCause = StallCause::PipelineLatency;

  /// The permanently failed device (DeviceLost), else -1.
  int FailedDevice = -1;

  /// The remote channel that exhausted its retransmit budget
  /// (LinkFailure), else empty.
  std::string FailedChannel;

  std::vector<FailureComponent> Components;
  std::vector<FailureChannel> Channels;

  /// Human-readable rendering (what Error::message carries).
  std::string render() const;

  /// Serializes via the streaming JsonWriter.
  std::string toJson() const;
  static Expected<FailureReport> fromJson(const json::Value &V);
  static Expected<FailureReport> fromJsonText(std::string_view Text);
};

/// The failure value of \c Machine::run: a classified \c Error plus the
/// structured \c FailureReport behind it, carried together so callers
/// never pair the returned error with a second accessor call.
/// Converts implicitly from and to \c Error, so generic error
/// plumbing (\c makeError returns, \c Error::addContext, exit-code
/// mapping) keeps working unchanged:
/// \code
///   Expected<SimResult, SimFailure> Result = M->run(Inputs);
///   if (!Result) {
///     SimFailure Failure = Result.takeError();
///     recoverFrom(Failure.report());    // structured
///     return Error(Failure);            // plain, for propagation
///   }
/// \endcode
class SimFailure {
public:
  /// Success value (no failure). Exists so SimFailure composes with
  /// Expected's assertions; real instances always carry a failure.
  SimFailure() = default;

  /// Wraps a plain error with an empty report (e.g. invalid inputs caught
  /// before the run loop starts).
  SimFailure(Error Err) : Err(std::move(Err)) {}

  /// Wraps an abort from inside the run loop with its structured report.
  SimFailure(Error Err, FailureReport Report)
      : Err(std::move(Err)), Failure(std::move(Report)) {}

  /// True when this holds a failure.
  explicit operator bool() const { return static_cast<bool>(Err); }

  /// The plain error view, for propagation through Error-typed plumbing.
  operator Error() const { return Err; }

  const std::string &message() const { return Err.message(); }
  ErrorCode code() const { return Err.code(); }
  SimFailure &addContext(const std::string &Context) {
    Err.addContext(Context);
    return *this;
  }

  /// The structured report. Empty (default-constructed) when the failure
  /// occurred before the run loop produced one.
  const FailureReport &report() const { return Failure; }

private:
  Error Err;
  FailureReport Failure;
};

} // namespace sim
} // namespace stencilflow

#endif // STENCILFLOW_SIM_FAULT_H
