//===- sim/Config.h - Simulator configuration ---------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the spatial-hardware simulator. Defaults model the
/// paper's testbed (Sec. VIII-B): a BittWare 520N with 4 DDR4 banks
/// (76.8 GB/s peak) and four 40 Gbit/s network ports, of which two links
/// connect each pair of consecutive devices, at a 300 MHz design clock.
///
/// All rates are expressed per clock cycle so the simulator is frequency
/// agnostic; callers convert to wall-clock time using the frequency from
/// the resource model.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SIM_CONFIG_H
#define STENCILFLOW_SIM_CONFIG_H

#include <cstdint>

namespace stencilflow {
namespace sim {

class Tracer;

/// Simulator knobs.
struct SimConfig {
  //===--------------------------------------------------------------------===//
  // Off-chip memory system (per device)
  //===--------------------------------------------------------------------===//

  /// If true, memory serves any request instantly (the paper's simulated
  /// "infinite" bandwidth experiment, Sec. IX-B: "replacing memory
  /// accesses with compile-time constants fed to the computational
  /// circuit").
  bool UnconstrainedMemory = false;

  /// Peak DRAM bytes per cycle: 76.8 GB/s at 300 MHz.
  double PeakMemoryBytesPerCycle = 256.0;

  /// Fixed bus overhead charged per endpoint transaction (address/command
  /// and partial-burst waste). Calibrated so scalar endpoints flatten at
  /// ~47% of peak and 4-wide endpoints at ~76% (Fig. 16).
  double TransactionOverheadBytes = 4.4;

  /// Additional crossbar pressure per active endpoint, modeling the
  /// routing cost of many parallel access points (the mild droop before
  /// the plateau in Fig. 16).
  double ArbitrationPenaltyBytesPerEndpoint = 0.3;

  //===--------------------------------------------------------------------===//
  // Network (SMI remote streams)
  //===--------------------------------------------------------------------===//

  /// Bytes per cycle per physical link: 40 Gbit/s = 5 GB/s at 300 MHz.
  double LinkBytesPerCycle = 16.67;

  /// Physical links between consecutive devices (the testbed exposes two
  /// 40 Gbit/s links per hop).
  int LinksPerHop = 2;

  /// Cycles a vector takes to traverse one hop.
  int64_t NetworkLatencyCyclesPerHop = 32;

  /// FIFO depth (vectors) added to remote streams for latency hiding.
  int64_t NetworkExtraChannelDepth = 256;

  //===--------------------------------------------------------------------===//
  // Channels
  //===--------------------------------------------------------------------===//

  /// Slack added on top of each analysis-computed delay-buffer depth so
  /// pipelining transients never stall producers.
  int64_t MinChannelDepth = 8;

  /// If true, ignore the delay-buffer analysis and size every channel at
  /// exactly MinChannelDepth. Used by the deadlock ablation (Fig. 4): DAGs
  /// with reconvergent paths then deadlock, which the detector reports.
  bool ClampChannelsToMinimum = false;

  //===--------------------------------------------------------------------===//
  // Observability
  //===--------------------------------------------------------------------===//

  /// Optional timeline tracer (see sim/Trace.h), not owned. When null —
  /// the default — the simulator records no timelines and the run loop
  /// pays nothing beyond the null check; stall-cause attribution counters
  /// are maintained either way. A previous recording on the tracer is
  /// discarded when the run starts, and the trace is finalized even when
  /// the run aborts (deadlock or cycle limit), so stuck configurations
  /// can be inspected in chrome://tracing.
  Tracer *Trace = nullptr;

  //===--------------------------------------------------------------------===//
  // Safety
  //===--------------------------------------------------------------------===//

  /// Hard cycle limit multiplier: simulation aborts after
  /// MaxCycleFactor * (expected cycles) + MaxCycleSlack cycles.
  int64_t MaxCycleFactor = 64;
  int64_t MaxCycleSlack = 1000000;
};

} // namespace sim
} // namespace stencilflow

#endif // STENCILFLOW_SIM_CONFIG_H
