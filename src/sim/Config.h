//===- sim/Config.h - Simulator configuration ---------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the spatial-hardware simulator. Defaults model the
/// paper's testbed (Sec. VIII-B): a BittWare 520N with 4 DDR4 banks
/// (76.8 GB/s peak) and four 40 Gbit/s network ports, of which two links
/// connect each pair of consecutive devices, at a 300 MHz design clock.
///
/// All rates are expressed per clock cycle so the simulator is frequency
/// agnostic; callers convert to wall-clock time using the frequency from
/// the resource model.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SIM_CONFIG_H
#define STENCILFLOW_SIM_CONFIG_H

#include "compute/Engine.h"
#include "support/Error.h"

#include <cstdint>
#include <string>

namespace stencilflow {
namespace sim {

class Tracer;
struct FaultPlan;

/// Which simulation engine steps the machine.
enum class SimEngine : uint8_t {
  /// The single-threaded reference stepper: every reader/unit/writer is
  /// stepped on every cycle, in one global order. Always available, always
  /// exact; the parallel engine is validated against it.
  Serial,
  /// The event-sliced parallel engine: one shard per simulated device,
  /// worker threads synchronized in epochs bounded by the minimum
  /// cross-device channel slack, plus a quiescence fast-forward that skips
  /// cycles on which a device provably cannot progress. Produces cycle-
  /// and bit-exact results relative to \c Serial (asserted by the parity
  /// suite in tests/sim_test.cpp and tests/fault_test.cpp).
  Parallel,
};

/// Stable name for an engine, e.g. "parallel".
const char *simEngineName(SimEngine Engine);

/// Simulator knobs.
struct SimConfig {
  //===--------------------------------------------------------------------===//
  // Off-chip memory system (per device)
  //===--------------------------------------------------------------------===//

  /// If true, memory serves any request instantly (the paper's simulated
  /// "infinite" bandwidth experiment, Sec. IX-B: "replacing memory
  /// accesses with compile-time constants fed to the computational
  /// circuit").
  bool UnconstrainedMemory = false;

  /// Peak DRAM bytes per cycle: 76.8 GB/s at 300 MHz.
  double PeakMemoryBytesPerCycle = 256.0;

  /// Fixed bus overhead charged per endpoint transaction (address/command
  /// and partial-burst waste). Calibrated so scalar endpoints flatten at
  /// ~47% of peak and 4-wide endpoints at ~76% (Fig. 16).
  double TransactionOverheadBytes = 4.4;

  /// Additional crossbar pressure per active endpoint, modeling the
  /// routing cost of many parallel access points (the mild droop before
  /// the plateau in Fig. 16).
  double ArbitrationPenaltyBytesPerEndpoint = 0.3;

  //===--------------------------------------------------------------------===//
  // Network (SMI remote streams)
  //===--------------------------------------------------------------------===//

  /// Bytes per cycle per physical link: 40 Gbit/s = 5 GB/s at 300 MHz.
  double LinkBytesPerCycle = 16.67;

  /// Physical links between consecutive devices (the testbed exposes two
  /// 40 Gbit/s links per hop).
  int LinksPerHop = 2;

  /// Cycles a vector takes to traverse one hop.
  int64_t NetworkLatencyCyclesPerHop = 32;

  /// FIFO depth (vectors) added to remote streams for latency hiding.
  int64_t NetworkExtraChannelDepth = 256;

  //===--------------------------------------------------------------------===//
  // Channels
  //===--------------------------------------------------------------------===//

  /// Slack added on top of each analysis-computed delay-buffer depth so
  /// pipelining transients never stall producers.
  int64_t MinChannelDepth = 8;

  /// If true, ignore the delay-buffer analysis and size every channel at
  /// exactly MinChannelDepth. Used by the deadlock ablation (Fig. 4): DAGs
  /// with reconvergent paths then deadlock, which the detector reports.
  bool ClampChannelsToMinimum = false;

  //===--------------------------------------------------------------------===//
  // Observability
  //===--------------------------------------------------------------------===//

  /// Optional timeline tracer (see sim/Trace.h), not owned. When null —
  /// the default — the simulator records no timelines and the run loop
  /// pays nothing beyond the null check; stall-cause attribution counters
  /// are maintained either way. A previous recording on the tracer is
  /// discarded when the run starts, and the trace is finalized even when
  /// the run aborts (deadlock or cycle limit), so stuck configurations
  /// can be inspected in chrome://tracing.
  Tracer *Trace = nullptr;

  //===--------------------------------------------------------------------===//
  // Resilience (see sim/Fault.h)
  //===--------------------------------------------------------------------===//

  /// Optional fault-injection plan, not owned. When null — the default —
  /// no faults are scheduled and remote streams use the plain (fire and
  /// forget) transport, so fault-free runs pay nothing. Attaching a plan,
  /// even an empty one, switches every inter-device stream to the
  /// reliable transport: sequence numbers, per-vector checksums, and
  /// bounded retransmission.
  const FaultPlan *Faults = nullptr;

  /// When false, corruption is still detected by the receiver's checksum
  /// but never recovered: the first corrupted vector aborts the run with
  /// ErrorCode::DataCorruption. Models detection-only deployments and
  /// demonstrates what the retransmission protocol buys.
  bool ReliableStreams = true;

  /// Progress watchdog: if a component makes no progress for this many
  /// cycles while the rest of the system still advances, the run aborts
  /// with ErrorCode::Starvation (livelock / unfair arbitration), as
  /// opposed to the global no-progress check which reports a true
  /// Deadlock. 0 disables the watchdog.
  int64_t StallTimeoutCycles = 0;

  /// Reliable transport: how many times one vector may be retransmitted
  /// before the stream declares the link dead (ErrorCode::LinkFailure).
  int MaxRetransmitAttempts = 16;

  /// Reliable transport: base backoff, in cycles, the sender waits after
  /// a NACK before rewinding; doubles per consecutive NACK of the same
  /// vector (capped at 64x).
  int64_t RetransmitBackoffCycles = 8;

  /// Reliable transport: maximum unacknowledged vectors in flight per
  /// remote stream before the sender blocks (Go-Back-N send window).
  int64_t SendWindowVectors = 512;

  //===--------------------------------------------------------------------===//
  // Checkpoint/restart (see sim/Checkpoint.h)
  //===--------------------------------------------------------------------===//

  /// Directory snapshot files are written to (created on first write) and
  /// pruned in. Empty — the default — disables checkpointing entirely and
  /// the run loops pay nothing beyond one branch per cycle.
  std::string CheckpointDir;

  /// Write a snapshot every N completed cycles (0 disables the cycle
  /// cadence). Under the parallel engine snapshots land on the first epoch
  /// boundary at or after each multiple, where the machine state is
  /// globally consistent.
  int64_t CheckpointEveryCycles = 0;

  /// Write a snapshot once this much wall-clock time has passed since the
  /// previous one (0 disables the wall-clock cadence). Both cadences may
  /// be active at once; whichever fires first wins.
  double CheckpointEverySeconds = 0.0;

  /// Bounded retention: after each write, only the most recent K snapshot
  /// files are kept in CheckpointDir.
  int CheckpointKeep = 3;

  /// Test hook for the crash-consistency suite: raise SIGKILL immediately
  /// after the N-th snapshot of the run has been persisted (0 = never).
  int CheckpointCrashAfter = 0;

  //===--------------------------------------------------------------------===//
  // Safety
  //===--------------------------------------------------------------------===//

  /// Hard cycle limit multiplier: simulation aborts after
  /// MaxCycleFactor * (expected cycles) + MaxCycleSlack cycles.
  int64_t MaxCycleFactor = 64;
  int64_t MaxCycleSlack = 1000000;

  //===--------------------------------------------------------------------===//
  // Engine
  //===--------------------------------------------------------------------===//

  /// Which stepper runs the machine. The parallel engine requires
  /// consistent settings (see \c validate) and falls back to serial
  /// stepping cycle-by-cycle whenever exactness demands it (dirty
  /// retransmission state, corrupted in-flight vectors, exhausted channel
  /// slack); \c SimStats reports what actually ran.
  SimEngine Engine = SimEngine::Serial;

  /// Worker threads for the parallel engine; 0 means one per hardware
  /// core, and the effective count never exceeds the number of simulated
  /// devices. Ignored by the serial engine. The result is identical for
  /// every thread count (asserted by the repeatability test).
  int Threads = 0;

  /// Which kernel execution tier evaluates the stencil compute tapes (see
  /// compute/Engine.h). Orthogonal to \c Engine: both the serial stepper
  /// and every parallel shard use the selected tier. All tiers are
  /// bit-exact with each other (asserted by the engine parity suite), so
  /// the default is the fastest broadly-applicable one; Scalar remains
  /// the reference implementation, Jit compiles each unit's tape to
  /// native code at machine-build time (falling back to Specialized when
  /// no host compiler exists), and Auto picks a tier per unit. The
  /// effective per-unit tiers appear in \c SimStats::UnitKernelTiers.
  compute::KernelEngine KernelExec = compute::KernelEngine::Specialized;

  /// Checks the configuration for inconsistent settings — the same rules
  /// \c Builder::build enforces; \c Machine::build calls this too, so a
  /// hand-assembled config fails fast at construction instead of mid-run.
  Error validate() const;

  class Builder;
};

/// A validating builder for \c SimConfig. Chain setters, then call
/// \c build(), which either returns a checked config or a classified
/// InvalidInput error naming the inconsistent settings:
/// \code
///   Expected<SimConfig> Config = SimConfig::Builder()
///                                    .engine(SimEngine::Parallel)
///                                    .threads(8)
///                                    .unconstrainedMemory(true)
///                                    .build();
/// \endcode
class SimConfig::Builder {
public:
  Builder() = default;
  /// Starts from an existing config (e.g. to toggle the engine on an
  /// otherwise-validated setup).
  explicit Builder(SimConfig Base) : C(Base) {}

  Builder &unconstrainedMemory(bool Value = true);
  Builder &peakMemoryBytesPerCycle(double Value);
  Builder &transactionOverheadBytes(double Value);
  Builder &arbitrationPenaltyBytesPerEndpoint(double Value);
  Builder &linkBytesPerCycle(double Value);
  Builder &linksPerHop(int Value);
  Builder &networkLatencyCyclesPerHop(int64_t Value);
  Builder &networkExtraChannelDepth(int64_t Value);
  Builder &minChannelDepth(int64_t Value);
  Builder &clampChannelsToMinimum(bool Value = true);
  Builder &trace(Tracer *Value);
  Builder &faults(const FaultPlan *Value);
  Builder &reliableStreams(bool Value);
  Builder &stallTimeoutCycles(int64_t Value);
  Builder &maxRetransmitAttempts(int Value);
  Builder &retransmitBackoffCycles(int64_t Value);
  Builder &sendWindowVectors(int64_t Value);
  Builder &checkpointDir(std::string Value);
  Builder &checkpointEveryCycles(int64_t Value);
  Builder &checkpointEverySeconds(double Value);
  Builder &checkpointKeep(int Value);
  Builder &checkpointCrashAfter(int Value);
  Builder &maxCycleFactor(int64_t Value);
  Builder &maxCycleSlack(int64_t Value);
  Builder &engine(SimEngine Value);
  Builder &threads(int Value);
  Builder &kernelEngine(compute::KernelEngine Value);

  /// Validates and returns the config, or an InvalidInput error.
  Expected<SimConfig> build() const;

private:
  SimConfig C;
};

} // namespace sim
} // namespace stencilflow

#endif // STENCILFLOW_SIM_CONFIG_H
