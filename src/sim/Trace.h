//===- sim/Trace.h - Simulation observability -------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulator's observability layer. Three pieces:
///
///  1. **Stall attribution.** Every cycle a component fails to make
///     progress is attributed to exactly one \c StallCause, accumulated in
///     a \c StallBreakdown per unit/reader/writer. The per-cause counters
///     always sum to the component's total stall cycles, which the tests
///     cross-check against the aggregate \c SimStats::UnitStallCycles.
///     Attribution is always on — it costs one branch and one increment on
///     cycles that were already stalled.
///
///  2. **Timelines.** When a \c Tracer is attached via
///     \c SimConfig::Trace, the simulator records state intervals
///     (init/active/stall:<cause>/drain/done) per component and sampled
///     occupancy counters per channel and per-device memory bandwidth.
///
///  3. **Export.** The tracer serializes to the Chrome trace-event JSON
///     format — open the file in chrome://tracing or https://ui.perfetto.dev
///     (1 simulated cycle = 1 microsecond of trace time) — and to a tidy
///     CSV (`section,name,metric,value`) for scripted analysis; see
///     \c formatMetricsCsv for the latter on plain \c SimStats.
///
/// This is the profiling substrate behind the paper's evaluation story
/// (Figs. 14-16): it shows *why* a pipeline falls short of the Eq. 1 bound
/// — initialization latency, FIFO backpressure, memory-bandwidth
/// saturation, or network throttling — instead of only reporting that it
/// does.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SIM_TRACE_H
#define STENCILFLOW_SIM_TRACE_H

#include "support/Error.h"

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace stencilflow {
namespace sim {

struct SimStats;

//===----------------------------------------------------------------------===//
// Stall attribution
//===----------------------------------------------------------------------===//

/// Why a component failed to make progress on a stalled cycle. One cause
/// is charged per stalled cycle; when several apply simultaneously the
/// output side wins (a matured result that cannot leave blocks the
/// component regardless of its inputs).
enum class StallCause : uint8_t {
  /// A scheduled input channel had no readable vector (upstream has not
  /// produced it yet, or it is still in flight on the network).
  InputStarved,
  /// A matured result could not be pushed because a consumer-side FIFO
  /// was full (downstream backpressure).
  OutputBlocked,
  /// The memory controller denied the transaction this cycle (bandwidth
  /// saturation; readers and writers only).
  MemoryDenied,
  /// An inter-device link had insufficient bandwidth for the push
  /// (remote streams only).
  NetworkDenied,
  /// Nothing was blocked externally: the component is waiting for its own
  /// in-flight pipeline results to mature (circuit latency).
  PipelineLatency,
};

constexpr int NumStallCauses = 5;

/// Short kebab-case name, e.g. "input-starved".
const char *stallCauseName(StallCause Cause);

/// Per-cause stall-cycle counters for one component.
struct StallBreakdown {
  int64_t Counts[NumStallCauses] = {0, 0, 0, 0, 0};

  void add(StallCause Cause) {
    ++Counts[static_cast<size_t>(Cause)];
  }
  int64_t operator[](StallCause Cause) const {
    return Counts[static_cast<size_t>(Cause)];
  }
  int64_t total() const {
    int64_t Sum = 0;
    for (int64_t Count : Counts)
      Sum += Count;
    return Sum;
  }
  StallBreakdown &operator+=(const StallBreakdown &Other) {
    for (int Cause = 0; Cause != NumStallCauses; ++Cause)
      Counts[Cause] += Other.Counts[Cause];
    return *this;
  }
  /// The cause with the most cycles, or PipelineLatency when empty.
  StallCause dominant() const;
};

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

/// Records sampled timelines of one simulation run. Attach to
/// \c SimConfig::Trace before \c Machine::run; the machine registers its
/// components, feeds state transitions and counter samples, and closes the
/// trace when the run ends (including deadlock/cycle-limit aborts, so
/// stuck configurations can be inspected visually).
///
/// A tracer records one run at a time; a subsequent run on the same
/// machine resets it.
class Tracer {
public:
  /// \p SampleStride is the period, in cycles, of the occupancy and
  /// bandwidth counter samples. State intervals are exact (recorded at
  /// every transition) regardless of the stride.
  explicit Tracer(int64_t SampleStride = 16);

  int64_t sampleStride() const { return SampleStride; }

  //===--------------------------------------------------------------------===//
  // Recording interface (driven by Machine::run)
  //===--------------------------------------------------------------------===//

  /// Drops all recorded data and registered tracks (new run).
  void clear();

  /// Registers a timeline track (one unit/reader/writer). Returns its id.
  int addTrack(std::string Name, int Device);

  /// Registers an occupancy/bandwidth counter. Returns its id.
  int addCounter(std::string Name, int Device, std::string Series);

  /// Records that \p Track is in \p State as of \p Cycle. Consecutive
  /// identical states merge into one interval.
  void setState(int Track, int64_t Cycle, std::string_view State);

  /// Records a counter sample.
  void sample(int Counter, int64_t Cycle, double Value);

  /// Closes all open state intervals at \p FinalCycle.
  void finish(int64_t FinalCycle);

  //===--------------------------------------------------------------------===//
  // Export
  //===--------------------------------------------------------------------===//

  /// Serializes the recorded run in Chrome trace-event JSON.
  std::string chromeTraceJson() const;

  /// Writes \c chromeTraceJson() to \p Path.
  Error writeChromeTrace(const std::string &Path) const;

private:
  struct Track {
    std::string Name;
    int Device = 0;
    int State = -1;       ///< Interned current state, -1 = none yet.
    int64_t Since = 0;    ///< Cycle the current state began.
    bool Open = false;
  };
  struct Counter {
    std::string Name;
    std::string Series;
    int Device = 0;
  };
  struct Interval {
    int Track;
    int State;
    int64_t Start;
    int64_t End;
  };
  struct Sample {
    int Counter;
    int64_t Cycle;
    double Value;
  };

  int internState(std::string_view State);

  int64_t SampleStride;
  int64_t FinalCycle = 0;
  std::vector<Track> Tracks;
  std::vector<Counter> Counters;
  std::vector<Interval> Intervals;
  std::vector<Sample> Samples;
  std::vector<std::string> StateNames;
  std::map<std::string, int, std::less<>> StateIndex;
};

//===----------------------------------------------------------------------===//
// Metrics export
//===----------------------------------------------------------------------===//

/// Serializes \p Stats as a tidy CSV with the header
/// `section,name,metric,value` — one row per metric, suitable for direct
/// ingestion into pandas/R. Sections: `sim` (totals), `device`, `unit`,
/// `reader`, `writer`, `channel`.
std::string formatMetricsCsv(const SimStats &Stats);

/// Writes \p Text to \p Path, reporting I/O failures.
Error writeTextFile(const std::string &Path, std::string_view Text);

/// Crash-consistent variant of \c writeTextFile: writes to a temporary
/// file in the same directory, fsyncs, and renames over \p Path. A crash
/// (or a failure partway through) leaves either the complete old file or
/// the complete new file — never a truncated artifact. Report writers
/// (Chrome traces, metrics CSVs, tuning JSON) route through this.
Error writeTextFileAtomic(const std::string &Path, std::string_view Text);

} // namespace sim
} // namespace stencilflow

#endif // STENCILFLOW_SIM_TRACE_H
