//===- sdfg/Graph.h - SDFG-lite dataflow IR -----------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact reimplementation of the concepts StencilFlow uses from the
/// DaCe framework (paper Sec. V): stateful dataflow multigraphs whose
/// nodes are data access nodes, tasklets, parametric map scopes, pipeline
/// scopes (with initialization and draining phases), and — the extension
/// introduced by the paper — domain-specific *library nodes* carrying
/// stencil semantics that expand into implementation subgraphs.
///
/// The graph is deliberately small: it supports exactly what the
/// StencilFlow workflow needs — building a dataflow view of a stencil
/// program, expanding stencil library nodes into the shift/update/compute
/// structure of Fig. 12, applying the NestDim / MapFission / StencilFusion
/// transformations, and extracting canonical stencil programs from
/// externally-built SDFGs (Fig. 13).
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SDFG_GRAPH_H
#define STENCILFLOW_SDFG_GRAPH_H

#include "ir/StencilProgram.h"
#include "support/Casting.h"
#include "support/Error.h"

#include <memory>
#include <string>
#include <vector>

namespace stencilflow {
namespace sdfg {

/// Node discriminator.
enum class NodeKind {
  Access,
  Tasklet,
  MapEntry,
  MapExit,
  PipelineEntry,
  PipelineExit,
  StencilLibrary
};

/// Base class of SDFG nodes.
class Node {
public:
  virtual ~Node();

  NodeKind kind() const { return Kind; }
  int id() const { return Id; }
  const std::string &label() const { return Label; }

protected:
  Node(NodeKind Kind, int Id, std::string Label)
      : Kind(Kind), Id(Id), Label(std::move(Label)) {}

private:
  const NodeKind Kind;
  const int Id;
  std::string Label;
};

/// How a data container is realized.
enum class ContainerKind {
  Array, ///< Off-chip or host memory.
  Stream ///< FIFO channel with a buffer depth.
};

/// A data container declaration (SDFG-level, shared across states).
struct Container {
  std::string Name;
  DataType Type = DataType::Float32;
  /// Which global domain dimensions this container spans.
  std::vector<bool> DimensionMask;
  ContainerKind Kind = ContainerKind::Array;
  /// Stream buffer depth (delay buffer), for Kind == Stream.
  int64_t BufferDepth = 0;
  /// Transients are internal to the SDFG (candidates for removal by
  /// fusion); non-transients are program inputs/outputs.
  bool Transient = false;
};

/// Read/write access to a container.
class AccessNode : public Node {
public:
  AccessNode(int Id, std::string Data)
      : Node(NodeKind::Access, Id, Data), Data(std::move(Data)) {}

  const std::string &data() const { return Data; }

  static bool classof(const Node *N) { return N->kind() == NodeKind::Access; }

private:
  std::string Data;
};

/// An opaque code node (the leaves of expanded subgraphs).
class TaskletNode : public Node {
public:
  TaskletNode(int Id, std::string Label, std::string Code)
      : Node(NodeKind::Tasklet, Id, std::move(Label)),
        Code(std::move(Code)) {}

  const std::string &code() const { return Code; }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::Tasklet;
  }

private:
  std::string Code;
};

/// Opening node of a parametric map scope (trapezoid in Fig. 12).
class MapEntryNode : public Node {
public:
  MapEntryNode(int Id, std::string Param, int64_t Begin, int64_t End,
               bool Unrolled = false)
      : Node(NodeKind::MapEntry, Id, "map " + Param), Param(std::move(Param)),
        Begin(Begin), End(End), Unrolled(Unrolled) {}

  const std::string &param() const { return Param; }
  int64_t begin() const { return Begin; }
  int64_t end() const { return End; }
  bool unrolled() const { return Unrolled; }
  int exitId() const { return ExitId; }
  void setExitId(int Id) { ExitId = Id; }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::MapEntry;
  }

private:
  std::string Param;
  int64_t Begin, End;
  bool Unrolled;
  int ExitId = -1;
};

/// Closing node of a map scope.
class MapExitNode : public Node {
public:
  MapExitNode(int Id, int EntryId)
      : Node(NodeKind::MapExit, Id, "endmap"), EntryId(EntryId) {}

  int entryId() const { return EntryId; }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::MapExit;
  }

private:
  int EntryId;
};

/// Opening node of a pipeline scope: a fully pipelined iteration space
/// annotated with initialization and draining phases (paper Sec. V-A),
/// during which reads from inputs / writes to outputs are suppressed.
class PipelineEntryNode : public Node {
public:
  PipelineEntryNode(int Id, std::string Param, int64_t Iterations,
                    int64_t InitIterations, int64_t DrainIterations)
      : Node(NodeKind::PipelineEntry, Id, "pipeline " + Param),
        Param(std::move(Param)), Iterations(Iterations),
        InitIterations(InitIterations), DrainIterations(DrainIterations) {}

  const std::string &param() const { return Param; }
  int64_t iterations() const { return Iterations; }
  int64_t initIterations() const { return InitIterations; }
  int64_t drainIterations() const { return DrainIterations; }
  int exitId() const { return ExitId; }
  void setExitId(int Id) { ExitId = Id; }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::PipelineEntry;
  }

private:
  std::string Param;
  int64_t Iterations, InitIterations, DrainIterations;
  int ExitId = -1;
};

/// Closing node of a pipeline scope.
class PipelineExitNode : public Node {
public:
  PipelineExitNode(int Id, int EntryId)
      : Node(NodeKind::PipelineExit, Id, "endpipeline"), EntryId(EntryId) {}

  int entryId() const { return EntryId; }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::PipelineExit;
  }

private:
  int EntryId;
};

/// The domain-specific stencil library node introduced by the paper
/// (Sec. V-A). Carries full stencil semantics; expandable into the
/// shift/update/compute subgraph of Fig. 12.
class StencilLibraryNode : public Node {
public:
  StencilLibraryNode(int Id, StencilNode Stencil)
      : Node(NodeKind::StencilLibrary, Id, "stencil " + Stencil.Name),
        Stencil(std::move(Stencil)) {}

  const StencilNode &stencil() const { return Stencil; }
  StencilNode &stencil() { return Stencil; }

  static bool classof(const Node *N) {
    return N->kind() == NodeKind::StencilLibrary;
  }

private:
  StencilNode Stencil;
};

/// A dataflow edge annotated with the moved data (memlet).
struct Memlet {
  int Src = -1;
  int Dst = -1;
  /// Container being moved (empty for pure scope-nesting edges).
  std::string Data;
  /// Human-readable subset, e.g. "k, j, i+1" (annotation only).
  std::string Subset;
};

/// One dataflow state.
class State {
public:
  explicit State(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  /// Node creation. Returned pointers remain owned by the state.
  AccessNode *addAccess(const std::string &Data);
  TaskletNode *addTasklet(const std::string &Label, const std::string &Code);
  std::pair<MapEntryNode *, MapExitNode *>
  addMap(const std::string &Param, int64_t Begin, int64_t End,
         bool Unrolled = false);
  std::pair<PipelineEntryNode *, PipelineExitNode *>
  addPipeline(const std::string &Param, int64_t Iterations,
              int64_t InitIterations, int64_t DrainIterations);
  StencilLibraryNode *addStencil(StencilNode Stencil);

  /// Adds an edge.
  void connect(const Node *Src, const Node *Dst, std::string Data = "",
               std::string Subset = "");

  /// Removes a node and all incident edges.
  void removeNode(int Id);

  const std::vector<std::unique_ptr<Node>> &nodes() const { return Nodes; }
  const std::vector<Memlet> &edges() const { return Edges; }

  /// Returns the node with \p Id, or nullptr.
  Node *findNode(int Id);
  const Node *findNode(int Id) const;

  /// Ids of nodes with an edge into \p Id / out of \p Id.
  std::vector<int> predecessors(int Id) const;
  std::vector<int> successors(int Id) const;

  /// All nodes of a kind, in creation order.
  template <typename T> std::vector<T *> nodesOfType() {
    std::vector<T *> Result;
    for (const std::unique_ptr<Node> &N : Nodes)
      if (auto *Typed = dyn_cast<T>(N.get()))
        Result.push_back(const_cast<T *>(Typed));
    return Result;
  }

  /// Ids of nodes strictly inside the scope of \p EntryId (between the
  /// scope entry and its exit).
  std::vector<int> scopeContents(int EntryId) const;

private:
  friend class SDFG;
  std::string Name;
  int NextId = 0;
  std::vector<std::unique_ptr<Node>> Nodes;
  std::vector<Memlet> Edges;
};

/// A stateful dataflow multigraph.
class SDFG {
public:
  explicit SDFG(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  /// The global iteration domain shared by all stencil nodes.
  Shape Domain;

  /// Declares a data container; returns an error on duplicates.
  Error addContainer(Container C);

  /// Returns the container named \p Name, or nullptr.
  const Container *findContainer(const std::string &Name) const;
  Container *findContainer(const std::string &Name);

  const std::vector<Container> &containers() const { return Containers; }

  /// Appends a new state.
  State &addState(const std::string &Name);

  std::vector<State> &states() { return States; }
  const std::vector<State> &states() const { return States; }

  /// Structural sanity checks: edges reference existing nodes, access
  /// nodes reference declared containers, scopes are well nested.
  Error validate() const;

  /// Graphviz rendering for documentation and debugging.
  std::string toDot() const;

private:
  std::string Name;
  std::vector<Container> Containers;
  std::vector<State> States;
};

} // namespace sdfg
} // namespace stencilflow

#endif // STENCILFLOW_SDFG_GRAPH_H
